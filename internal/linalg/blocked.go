package linalg

import (
	"errors"
	"fmt"
	"math"

	"earthing/internal/faultinject"
	"earthing/internal/sched"
)

// Blocked packed Cholesky: a tiled right-looking factorization over
// cache-sized panels of the packed lower triangle, replacing the per-column
// sweep of NewCholesky on the solve hot path.
//
// The factorization proceeds panel by panel (BlockSize columns at a time):
//
//  1. panel factor — the nb×nb diagonal block is factored in place
//     (reference arithmetic restricted to the panel's columns);
//  2. triangular solve — every row below the panel solves its nb panel
//     entries against the factored diagonal block, one independent row at a
//     time (parallelized over row tiles via sched.ForTiles);
//  3. blocked SYRK — the trailing triangle is downdated by the panel's outer
//     product, again over independent row tiles.
//
// Every stage subtracts products term by term in ascending column order —
// exactly the operation sequence of the reference column sweep — so the
// float64 blocked factor, its Solve, Det and LogDet are bit-identical to
// NewCholesky's. What changes is the memory access pattern: all inner loops
// walk contiguous row segments of the packed triangle (no per-element index
// arithmetic), and the O(n³) trailing update touches each panel row while it
// is cache-hot instead of streaming the whole triangle once per column.
//
// Mixed precision (FactorOpts.Mixed) converts the panel to float32 for the
// trailing SYRK — the dominant O(n³) stage — halving its memory traffic.
// The panel factor, triangular solves and substitutions stay float64. The
// factor then carries O(1e-7) relative error, which Solve repairs by
// float64 iterative refinement on the residual (the handle retains the
// matrix for that); see Solve for the accuracy contract.

// ErrRefinementStalled is returned by Solve on a mixed-precision handle when
// iterative refinement cannot drive the correction below the float64
// round-off target: the system is too ill-conditioned for the float32
// factor to act as a contraction. Callers must re-factor in full precision
// (core.solveSystem does this automatically) — the error exists so mixed
// precision never degrades accuracy silently.
var ErrRefinementStalled = errors.New("linalg: mixed-precision refinement stalled")

// FactorOpts configures NewCholeskyBlocked.
type FactorOpts struct {
	// BlockSize is the panel width in columns (default 64). A panel row of
	// 64 float64 is one 512-byte streak — two cache lines under prefetch —
	// and the 64×64 diagonal block stays L1-resident.
	BlockSize int
	// Workers is the parallel width for the triangular-solve and SYRK
	// stages; ≤ 1 runs sequentially in the caller. The per-element
	// arithmetic is identical at any width, so results are bit-identical
	// across worker counts.
	Workers int
	// Mixed enables float32 trailing updates + float64 iterative refinement
	// in Solve. The handle retains a reference to the input matrix for the
	// refinement residuals; the caller must not mutate it while the handle
	// is in use. Results are within refinement tolerance of, but not
	// bit-identical to, the full-precision factor.
	Mixed bool
}

func (o FactorOpts) withDefaults() FactorOpts {
	if o.BlockSize <= 0 {
		o.BlockSize = 64
	}
	return o
}

// rowBase returns the packed offset of row i's first column.
func rowBase(i int) int { return i * (i + 1) / 2 }

// NewCholeskyBlocked factorizes the SPD matrix a with the tiled right-looking
// algorithm described in the package comment above. The input matrix is not
// modified. With opt.Mixed == false the returned factor (and everything
// derived from it: Solve, Det, LogDet) is bit-identical to NewCholesky's;
// with Mixed the handle additionally retains a for refinement in Solve.
func NewCholeskyBlocked(a *SymMatrix, opt FactorOpts) (*Cholesky, error) {
	opt = opt.withDefaults()
	n := a.n
	l := make([]float64, len(a.data))
	copy(l, a.data)
	c := &Cholesky{n: n, l: l, workers: opt.Workers}
	if opt.Mixed {
		c.refineA = a
	}

	nb := opt.BlockSize
	var f32 []float32 // mixed-precision panel mirror, reused across panels
	if opt.Mixed && n > nb {
		f32 = make([]float32, n*nb)
	}
	// Row-tile width for the parallel stages: big enough that a tile
	// amortizes its chunk claim, small enough that dynamic scheduling can
	// balance the triangular row costs.
	const rowTile = 16
	tileSched := sched.Schedule{Kind: sched.Dynamic, Chunk: 1}

	for p0 := 0; p0 < n; p0 += nb {
		p1 := p0 + nb
		if p1 > n {
			p1 = n
		}
		if faultinject.Active() {
			faultinject.Fire(faultinject.CholeskyPanel, p0/nb, l[rowBase(p0)+p0:rowBase(p0)+p0+1])
		}

		// Stage 1: factor the diagonal block in place (columns and rows
		// [p0, p1)). Prior panels already downdated it, so this is the
		// reference recurrence restricted to k ∈ [p0, j).
		for j := p0; j < p1; j++ {
			jb := rowBase(j)
			d := l[jb+j]
			rowJ := l[jb+p0 : jb+j]
			for _, v := range rowJ {
				d -= v * v
			}
			if d <= 0 || math.IsNaN(d) {
				return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, j, d)
			}
			dj := math.Sqrt(d)
			l[jb+j] = dj
			for i := j + 1; i < p1; i++ {
				ib := rowBase(i)
				s := l[ib+j]
				rowI := l[ib+p0 : ib+j]
				for k, v := range rowJ {
					s -= rowI[k] * v
				}
				l[ib+j] = s / dj
			}
		}
		if p1 == n {
			break
		}

		// Stage 2: triangular solve — row i ≥ p1 resolves its panel entries
		// L[i, p0:p1] against the factored diagonal block. Rows are
		// independent (row i reads only itself and the diagonal block), so
		// they distribute over tiles without synchronization.
		solveRow := func(i int) {
			ib := rowBase(i)
			for j := p0; j < p1; j++ {
				jb := rowBase(j)
				s := l[ib+j]
				rowI := l[ib+p0 : ib+j]
				rowJ := l[jb+p0 : jb+j]
				for k, v := range rowJ {
					s -= rowI[k] * v
				}
				l[ib+j] = s / l[jb+j]
			}
		}
		// Stage 3: blocked SYRK — downdate the trailing triangle row by row:
		// L[i, j] -= L[i, p0:p1]·L[j, p0:p1] for p1 ≤ j ≤ i, subtracting
		// term by term in ascending k so the op sequence matches the
		// reference sweep. All reads of rows < i are panel segments finalized
		// in stage 2; writes stay within row i, so row tiles are disjoint.
		width := p1 - p0
		syrkRow := func(i int) {
			ib := rowBase(i)
			panelI := l[ib+p0 : ib+p1]
			if f32 != nil {
				fi := f32[(i-p1)*width : (i-p1+1)*width]
				for j := p1; j <= i; j++ {
					fj := f32[(j-p1)*width : (j-p1+1)*width]
					var acc float32
					for k, v := range fj {
						acc += fi[k] * v
					}
					l[ib+j] -= float64(acc)
				}
				return
			}
			for j := p1; j <= i; j++ {
				jb := rowBase(j)
				panelJ := l[jb+p0 : jb+p1]
				s := l[ib+j]
				for k, v := range panelJ {
					s -= panelI[k] * v
				}
				l[ib+j] = s
			}
		}

		rows := n - p1
		if opt.Workers > 1 && rows >= 2*rowTile {
			sched.ForTiles(rows, rowTile, opt.Workers, tileSched, func(lo, hi int) {
				for r := lo; r < hi; r++ {
					solveRow(p1 + r)
				}
			})
			if f32 != nil {
				mirrorPanel(l, f32, p0, p1, n)
			}
			sched.ForTiles(rows, rowTile, opt.Workers, tileSched, func(lo, hi int) {
				for r := lo; r < hi; r++ {
					syrkRow(p1 + r)
				}
			})
		} else {
			for i := p1; i < n; i++ {
				solveRow(i)
			}
			if f32 != nil {
				mirrorPanel(l, f32, p0, p1, n)
			}
			for i := p1; i < n; i++ {
				syrkRow(i)
			}
		}
	}
	return c, nil
}

// mirrorPanel converts the finalized panel segments of rows [p1, n) to the
// float32 mirror used by the mixed-precision SYRK.
func mirrorPanel(l []float64, f32 []float32, p0, p1, n int) {
	width := p1 - p0
	for i := p1; i < n; i++ {
		ib := rowBase(i)
		row := l[ib+p0 : ib+p1]
		dst := f32[(i-p1)*width : (i-p1+1)*width]
		for k, v := range row {
			dst[k] = float32(v)
		}
	}
}
