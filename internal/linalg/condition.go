package linalg

import "math"

// EstimateExtremeEigenvalues estimates the largest and smallest eigenvalues
// of an SPD matrix by power iteration on A and inverse iteration through a
// Cholesky factorization. It is a diagnostic for the conditioning of the
// Galerkin grounding matrices (well conditioned for sane discretizations —
// the reason plain Jacobi-PCG converges in few iterations, §4.3).
func EstimateExtremeEigenvalues(a *SymMatrix, iters int) (min, max float64, err error) {
	if a.Order() == 0 {
		return 0, 0, nil
	}
	ch, err := NewCholesky(a)
	if err != nil {
		return 0, 0, err
	}
	return extremeEigenvalues(a, ch, iters)
}

// extremeEigenvalues is the shared estimator core: power iteration on a for
// λmax, inverse iteration through the provided factorization for λmin. The
// factorization may come from any of the Cholesky constructors; the inverse
// iteration normalizes every step, so the O(1e-7) perturbation of a
// mixed-precision factor does not disturb the leading digits of the
// estimate (it is a diagnostic, quoted to ~3 digits).
func extremeEigenvalues(a *SymMatrix, ch *Cholesky, iters int) (min, max float64, err error) {
	n := a.Order()
	if n == 0 {
		return 0, 0, nil
	}
	if iters <= 0 {
		iters = 60
	}

	// Deterministic pseudo-random start vector (reproducible diagnostics).
	v := make([]float64, n)
	seed := uint64(0x9e3779b97f4a7c15)
	for i := range v {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		v[i] = float64(seed%2000)/1000 - 1
	}
	normalize := func(x []float64) {
		s := Norm2(x)
		if s == 0 {
			x[0] = 1
			return
		}
		for i := range x {
			x[i] /= s
		}
	}
	normalize(v)

	// Power iteration for λmax.
	w := make([]float64, n)
	for k := 0; k < iters; k++ {
		a.MulVec(v, w)
		copy(v, w)
		normalize(v)
	}
	a.MulVec(v, w)
	max = Dot(v, w)

	// Inverse iteration for λmin, reusing the factorization's triangular
	// sweeps directly (no per-step allocation or refinement).
	for i := range v {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		v[i] = float64(seed%2000)/1000 - 1
	}
	normalize(v)
	for k := 0; k < iters; k++ {
		ch.solveInto(w, v)
		copy(v, w)
		normalize(v)
	}
	a.MulVec(v, w)
	min = Dot(v, w)
	if min > max {
		min, max = max, min
	}
	return min, max, nil
}

// ConditionEstimate returns the 2-norm condition number estimate
// λmax/λmin of an SPD matrix. Callers that already hold a Cholesky handle
// of a should prefer its ConditionEstimate method, which reuses the
// factorization and caches the result.
func ConditionEstimate(a *SymMatrix, iters int) (float64, error) {
	min, max, err := EstimateExtremeEigenvalues(a, iters)
	if err != nil {
		return 0, err
	}
	if min <= 0 {
		return math.Inf(1), nil
	}
	return max / min, nil
}
