package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestEstimateExtremeEigenvaluesDiagonal(t *testing.T) {
	// Diagonal matrix with known spectrum {1, 2, …, 10}.
	a := NewSymMatrix(10)
	for i := 0; i < 10; i++ {
		a.Set(i, i, float64(i+1))
	}
	min, max, err := EstimateExtremeEigenvalues(a, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(max-10) > 1e-6 || math.Abs(min-1) > 1e-6 {
		t.Errorf("eigen estimates (%v, %v), want (1, 10)", min, max)
	}
	cond, err := ConditionEstimate(a, 200)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond-10) > 1e-5 {
		t.Errorf("condition = %v", cond)
	}
}

func TestConditionOfIdentityIsOne(t *testing.T) {
	a := NewSymMatrix(25)
	for i := 0; i < 25; i++ {
		a.Set(i, i, 3)
	}
	cond, err := ConditionEstimate(a, 50)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cond-1) > 1e-9 {
		t.Errorf("condition of scaled identity = %v", cond)
	}
}

func TestEigenEstimatesBracketRayleighQuotients(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	a := randSPD(40, r)
	min, max, err := EstimateExtremeEigenvalues(a, 120)
	if err != nil {
		t.Fatal(err)
	}
	if min <= 0 || max < min {
		t.Fatalf("estimates (%v, %v)", min, max)
	}
	// Any Rayleigh quotient must lie within [min, max] (allow the small
	// slack of an unconverged iteration).
	y := make([]float64, 40)
	for trial := 0; trial < 20; trial++ {
		x := randVector(40, r)
		a.MulVec(x, y)
		q := Dot(x, y) / Dot(x, x)
		if q < min*0.99 || q > max*1.01 {
			t.Fatalf("Rayleigh quotient %v outside [%v, %v]", q, min, max)
		}
	}
}

func TestConditionRejectsIndefinite(t *testing.T) {
	a := NewSymMatrix(2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := ConditionEstimate(a, 10); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func TestConditionEmptyMatrix(t *testing.T) {
	min, max, err := EstimateExtremeEigenvalues(NewSymMatrix(0), 10)
	if err != nil || min != 0 || max != 0 {
		t.Errorf("empty: %v %v %v", min, max, err)
	}
}
