package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestMulVecParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 10, 64, 65, 137, 300} {
		a := randSPD(n, r)
		x := randVector(n, r)
		ys := make([]float64, n)
		yp := make([]float64, n)
		a.MulVec(x, ys)
		for _, w := range []int{1, 2, 4, 7} {
			a.MulVecParallel(x, yp, w)
			for i := range ys {
				if math.Abs(ys[i]-yp[i]) > 1e-10*(1+math.Abs(ys[i])) {
					t.Fatalf("n=%d w=%d: row %d: %v vs %v", n, w, i, yp[i], ys[i])
				}
			}
		}
	}
}

func TestSolveCGParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(33))
	for _, n := range []int{50, 150} {
		a := randSPD(n, r)
		b := randVector(n, r)
		serial, err := SolveCG(a, b, CGOptions{Tol: 1e-12})
		if err != nil || !serial.Converged {
			t.Fatalf("serial CG: %v", err)
		}
		par, err := SolveCGParallel(a, b, CGOptions{Tol: 1e-12}, 4)
		if err != nil || !par.Converged {
			t.Fatalf("parallel CG: %v", err)
		}
		for i := range serial.X {
			if math.Abs(serial.X[i]-par.X[i]) > 1e-7*(1+math.Abs(serial.X[i])) {
				t.Fatalf("n=%d: x[%d] %v vs %v", n, i, par.X[i], serial.X[i])
			}
		}
	}
	// workers ≤ 1 routes to the serial path.
	a := randSPD(20, r)
	b := randVector(20, r)
	if _, err := SolveCGParallel(a, b, CGOptions{}, 1); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyParallelMatchesSerial(t *testing.T) {
	r := rand.New(rand.NewSource(44))
	for _, n := range []int{64, 128, 200} { // below and above the parallel cutoff
		a := randSPD(n, r)
		b := randVector(n, r)
		serial, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewCholeskyParallel(a, 4)
		if err != nil {
			t.Fatal(err)
		}
		xs, err := serial.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		xp, err := par.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range xs {
			if math.Abs(xs[i]-xp[i]) > 1e-9*(1+math.Abs(xs[i])) {
				t.Fatalf("n=%d: x[%d] %v vs %v", n, i, xp[i], xs[i])
			}
		}
		if math.Abs(serial.LogDet()-par.LogDet()) > 1e-9*(1+math.Abs(serial.LogDet())) {
			t.Fatalf("n=%d: log det %v vs %v", n, par.LogDet(), serial.LogDet())
		}
	}
}

func TestCholeskyParallelRejectsIndefinite(t *testing.T) {
	a := NewSymMatrix(200)
	for i := 0; i < 200; i++ {
		a.Set(i, i, 1)
	}
	a.Set(150, 150, -1)
	if _, err := NewCholeskyParallel(a, 4); err == nil {
		t.Error("indefinite matrix accepted")
	}
}

func BenchmarkCholeskyParallel(b *testing.B) {
	a := randSPD(500, rand.New(rand.NewSource(1)))
	for _, w := range []int{1, 4} {
		name := "serial"
		if w > 1 {
			name = "parallel4"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewCholeskyParallel(a, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMulVecParallel(b *testing.B) {
	a := randSPD(800, rand.New(rand.NewSource(1)))
	x := randVector(800, rand.New(rand.NewSource(2)))
	y := make([]float64, 800)
	for _, w := range []int{1, 4} {
		b.Run(map[bool]string{true: "serial", false: "parallel4"}[w == 1], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.MulVecParallel(x, y, w)
			}
		})
	}
}
