package linalg

import "math"

// Dot returns the inner product of x and y, which must have equal length.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("linalg: Dot length mismatch")
	}
	var s float64
	for i, xi := range x {
		s += xi * y[i]
	}
	return s
}

// Norm2 returns the Euclidean norm ‖x‖₂, computed with scaling to avoid
// premature overflow/underflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64 = 0, 1
	for _, v := range x {
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the max-norm ‖x‖∞.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Axpy computes y ← a·x + y in place.
func Axpy(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("linalg: Axpy length mismatch")
	}
	for i, xi := range x {
		y[i] += a * xi
	}
}

// Sum returns Σ x[i].
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Residual returns ‖b − A·x‖₂.
func Residual(a *SymMatrix, x, b []float64) float64 {
	ax := make([]float64, len(x))
	a.MulVec(x, ax)
	r := make([]float64, len(x))
	for i := range r {
		r[i] = b[i] - ax[i]
	}
	return Norm2(r)
}
