package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSPD builds a random symmetric positive definite matrix A = BᵀB + n·I.
func randSPD(n int, r *rand.Rand) *SymMatrix {
	b := make([][]float64, n)
	for i := range b {
		b[i] = make([]float64, n)
		for j := range b[i] {
			b[i][j] = r.NormFloat64()
		}
	}
	a := NewSymMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b[k][i] * b[k][j]
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
		}
	}
	return a
}

func randVector(n int, r *rand.Rand) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestSymMatrixAccess(t *testing.T) {
	m := NewSymMatrix(4)
	m.Set(2, 1, 7)
	if m.At(1, 2) != 7 || m.At(2, 1) != 7 {
		t.Error("symmetric access broken")
	}
	m.Add(1, 2, 3)
	if m.At(2, 1) != 10 {
		t.Error("Add via upper index broken")
	}
	m.Set(3, 3, -2)
	d := m.Diag()
	if d[3] != -2 || d[0] != 0 {
		t.Errorf("Diag = %v", d)
	}
	if m.Order() != 4 {
		t.Error("Order wrong")
	}
	if got := m.MaxAbs(); got != 10 {
		t.Errorf("MaxAbs = %v", got)
	}
}

func TestSymMatrixMulVec(t *testing.T) {
	// A = [2 1; 1 3], x = [1, 2] → Ax = [4, 7].
	m := NewSymMatrix(2)
	m.Set(0, 0, 2)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	y := make([]float64, 2)
	m.MulVec([]float64{1, 2}, y)
	if y[0] != 4 || y[1] != 7 {
		t.Errorf("MulVec = %v", y)
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(30)
		a := randSPD(n, r)
		x := randVector(n, r)
		y := make([]float64, n)
		a.MulVec(x, y)
		d := a.Dense()
		for i := 0; i < n; i++ {
			var want float64
			for j := 0; j < n; j++ {
				want += d[i][j] * x[j]
			}
			if math.Abs(y[i]-want) > 1e-10*(1+math.Abs(want)) {
				t.Fatalf("n=%d row %d: %v vs %v", n, i, y[i], want)
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(40)
		a := randSPD(n, r)
		xTrue := randVector(n, r)
		b := make([]float64, n)
		a.MulVec(xTrue, b)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		x, err := ch.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if math.Abs(x[i]-xTrue[i]) > 1e-8*(1+math.Abs(xTrue[i])) {
				t.Fatalf("n=%d: x[%d]=%v want %v", n, i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewSymMatrix(2)
	a.Set(0, 0, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 1) // eigenvalues 3, −1
	if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("err = %v, want ErrNotPositiveDefinite", err)
	}
}

func TestCholeskyDet(t *testing.T) {
	// det([4 2; 2 3]) = 8.
	a := NewSymMatrix(2)
	a.Set(0, 0, 4)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	ch, err := NewCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if d := ch.Det(); math.Abs(d-8) > 1e-12 {
		t.Errorf("Det = %v", d)
	}
	if ld := ch.LogDet(); math.Abs(ld-math.Log(8)) > 1e-12 {
		t.Errorf("LogDet = %v", ld)
	}
}

func TestCGMatchesCholesky(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		n := 2 + r.Intn(60)
		a := randSPD(n, r)
		b := randVector(n, r)
		ch, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		xd, err := ch.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveCG(a, b, CGOptions{Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("CG did not converge: residual %v", res.Residual)
		}
		for i := range xd {
			if math.Abs(res.X[i]-xd[i]) > 1e-7*(1+math.Abs(xd[i])) {
				t.Fatalf("n=%d: CG x[%d]=%v Cholesky %v", n, i, res.X[i], xd[i])
			}
		}
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := randSPD(5, rand.New(rand.NewSource(1)))
	res, err := SolveCG(a, make([]float64, 5), CGOptions{})
	if err != nil || !res.Converged {
		t.Fatalf("zero rhs: %v %+v", err, res)
	}
	if NormInf(res.X) != 0 {
		t.Error("zero rhs should give zero solution")
	}
}

func TestCGInitialGuess(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	a := randSPD(20, r)
	xTrue := randVector(20, r)
	b := make([]float64, 20)
	a.MulVec(xTrue, b)
	// Starting at the exact solution must converge in 0 iterations.
	res, err := SolveCG(a, b, CGOptions{X0: xTrue, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 || !res.Converged {
		t.Errorf("warm start: %+v", res)
	}
}

func TestCGBreakdownOnIndefinite(t *testing.T) {
	a := NewSymMatrix(2)
	a.Set(0, 0, 1)
	a.Set(1, 0, 0)
	a.Set(1, 1, -1)
	_, err := SolveCG(a, []float64{0, 1}, CGOptions{MaxIter: 50})
	if !errors.Is(err, ErrCGBreakdown) {
		t.Errorf("err = %v, want ErrCGBreakdown", err)
	}
}

func TestVectorOps(t *testing.T) {
	x := []float64{3, 4}
	if Norm2(x) != 5 {
		t.Errorf("Norm2 = %v", Norm2(x))
	}
	if NormInf([]float64{-7, 2}) != 7 {
		t.Error("NormInf wrong")
	}
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Error("Dot wrong")
	}
	y := []float64{1, 1}
	Axpy(2, x, y)
	if y[0] != 7 || y[1] != 9 {
		t.Errorf("Axpy = %v", y)
	}
	if Sum([]float64{1, 2, 3.5}) != 6.5 {
		t.Error("Sum wrong")
	}
}

func TestNorm2OverflowSafe(t *testing.T) {
	big := math.MaxFloat64 / 2
	if got := Norm2([]float64{big, big}); math.IsInf(got, 0) {
		t.Error("Norm2 overflowed")
	}
	tiny := 1e-300
	got := Norm2([]float64{tiny, tiny})
	want := tiny * math.Sqrt2
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("Norm2 underflow: %v want %v", got, want)
	}
}

func TestMulVecSymmetryProperty(t *testing.T) {
	// For symmetric A: xᵀ(A·y) = yᵀ(A·x).
	r := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		n := 1 + rr.Intn(25)
		a := randSPD(n, rr)
		x := randVector(n, r)
		y := randVector(n, r)
		ax := make([]float64, n)
		ay := make([]float64, n)
		a.MulVec(x, ax)
		a.MulVec(y, ay)
		l, rv := Dot(y, ax), Dot(x, ay)
		return math.Abs(l-rv) <= 1e-8*(1+math.Abs(l))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestResidual(t *testing.T) {
	a := NewSymMatrix(2)
	a.Set(0, 0, 1)
	a.Set(1, 1, 1)
	if got := Residual(a, []float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("Residual = %v", got)
	}
	if got := Residual(a, []float64{0, 0}, []float64{3, 4}); math.Abs(got-5) > 1e-14 {
		t.Errorf("Residual = %v", got)
	}
}

func BenchmarkCholesky(b *testing.B) {
	a := randSPD(238, rand.New(rand.NewSource(1))) // Barberá-sized system
	rhs := randVector(238, rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch, err := NewCholesky(a)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ch.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCG(b *testing.B) {
	a := randSPD(238, rand.New(rand.NewSource(1)))
	rhs := randVector(238, rand.New(rand.NewSource(2)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveCG(a, rhs, CGOptions{Tol: 1e-10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulVec(b *testing.B) {
	a := randSPD(500, rand.New(rand.NewSource(1)))
	x := randVector(500, rand.New(rand.NewSource(2)))
	y := make([]float64, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x, y)
	}
}
