// Package linalg implements the dense linear algebra required by the
// Galerkin boundary-element solver: packed symmetric matrices, Cholesky and
// LDLᵀ direct factorizations, and a conjugate-gradient solver with Jacobi
// (diagonal) preconditioning — the method the paper identifies as the most
// efficient for large grounding systems (§4.3).
//
// Galerkin BEM matrices are symmetric positive definite but fully dense, so
// the package stores only the lower triangle in packed row-major order,
// halving memory against a square layout.
package linalg

import (
	"fmt"
	"math"
)

// SymMatrix is a symmetric n×n matrix holding only the lower triangle in
// packed row-major order: element (i, j) with i ≥ j lives at i(i+1)/2 + j.
type SymMatrix struct {
	n    int
	data []float64
}

// NewSymMatrix returns a zero symmetric matrix of order n.
func NewSymMatrix(n int) *SymMatrix {
	if n < 0 {
		panic(fmt.Sprintf("linalg: negative matrix order %d", n))
	}
	return &SymMatrix{n: n, data: make([]float64, n*(n+1)/2)}
}

// Order returns the matrix dimension n.
func (m *SymMatrix) Order() int { return m.n }

// index maps (i, j), i ≥ j, to packed storage.
func (m *SymMatrix) index(i, j int) int { return i*(i+1)/2 + j }

// At returns element (i, j).
func (m *SymMatrix) At(i, j int) float64 {
	if i < j {
		i, j = j, i
	}
	return m.data[m.index(i, j)]
}

// Set assigns element (i, j) (and by symmetry (j, i)).
func (m *SymMatrix) Set(i, j int, v float64) {
	if i < j {
		i, j = j, i
	}
	m.data[m.index(i, j)] = v
}

// Add accumulates v into element (i, j).
func (m *SymMatrix) Add(i, j int, v float64) {
	if i < j {
		i, j = j, i
	}
	m.data[m.index(i, j)] += v
}

// Diag returns a copy of the diagonal, walking the packed storage with a
// running offset (diagonal i sits at offset(i)+i, advancing by i+2 per row)
// instead of one index product per element.
func (m *SymMatrix) Diag() []float64 {
	d := make([]float64, m.n)
	off := 0
	for i := 0; i < m.n; i++ {
		d[i] = m.data[off]
		off += i + 2
	}
	return d
}

// MulVec computes y = A·x. y must have length n and may not alias x.
func (m *SymMatrix) MulVec(x, y []float64) {
	if len(x) != m.n || len(y) != m.n {
		panic("linalg: MulVec dimension mismatch")
	}
	for i := range y {
		y[i] = 0
	}
	// Walk the packed lower triangle once, scattering the symmetric
	// contribution: row i covers y[i] += a·x[j] and y[j] += a·x[i].
	k := 0
	for i := 0; i < m.n; i++ {
		var yi float64
		xi := x[i]
		for j := 0; j < i; j++ {
			a := m.data[k]
			k++
			yi += a * x[j]
			y[j] += a * xi
		}
		yi += m.data[k] * xi // diagonal
		k++
		y[i] += yi
	}
}

// Clone returns a deep copy of the matrix.
func (m *SymMatrix) Clone() *SymMatrix {
	c := &SymMatrix{n: m.n, data: make([]float64, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Scale multiplies every entry by s in place.
func (m *SymMatrix) Scale(s float64) {
	for i := range m.data {
		m.data[i] *= s
	}
}

// MaxAbs returns the largest entry magnitude (0 for an empty matrix).
func (m *SymMatrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// AllFinite reports whether every stored entry is finite (no NaN or ±Inf) —
// the cheap O(N²) pre-solve guard of the numerical health checks.
func (m *SymMatrix) AllFinite() bool {
	for _, v := range m.data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Dense expands the matrix into a full row-major n×n slice (for tests and
// small-problem debugging only).
func (m *SymMatrix) Dense() [][]float64 {
	d := make([][]float64, m.n)
	for i := range d {
		d[i] = make([]float64, m.n)
		for j := range d[i] {
			d[i][j] = m.At(i, j)
		}
	}
	return d
}
