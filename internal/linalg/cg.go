package linalg

import (
	"errors"
	"fmt"
	"math"
)

// CGResult reports the outcome of a conjugate-gradient solve.
type CGResult struct {
	X          []float64 // solution vector
	Iterations int       // iterations performed
	Residual   float64   // final relative residual ‖b−Ax‖/‖b‖
	Converged  bool
}

// CGOptions configures SolveCG. The zero value selects sensible defaults.
type CGOptions struct {
	Tol     float64   // relative residual target (default 1e-10)
	MaxIter int       // iteration cap (default 10·n)
	X0      []float64 // initial guess (default zero vector)
}

// ErrCGBreakdown is returned when the preconditioned CG recurrence encounters
// a zero or negative curvature direction, i.e. the matrix is not SPD.
var ErrCGBreakdown = errors.New("linalg: conjugate gradient breakdown (matrix not SPD?)")

// Operator abstracts the matrix-vector product of the CG kernel, so the
// solver serves both the packed dense SymMatrix and implicit operators such
// as the compressed H-matrix (whose product is a sum over near-field dense
// and low-rank block applications). Apply must compute y = A·x without
// retaining either slice.
type Operator interface {
	Order() int
	Apply(x, y []float64)
}

// Preconditioner abstracts the z = M⁻¹·r application of preconditioned CG.
// Precondition must not retain its arguments; z and r never alias.
type Preconditioner interface {
	Precondition(r, z []float64)
}

// JacobiPreconditioner is the diagonal preconditioner M = diag(d). The
// reciprocals are taken once at construction.
type JacobiPreconditioner struct{ invD []float64 }

// NewJacobiPreconditioner builds a Jacobi preconditioner from the matrix
// diagonal d (consumed: overwritten with its reciprocals). A zero diagonal
// is a breakdown — SPD matrices have strictly positive diagonals.
func NewJacobiPreconditioner(d []float64) (*JacobiPreconditioner, error) {
	for i, v := range d {
		if v == 0 {
			return nil, fmt.Errorf("%w: zero diagonal at %d", ErrCGBreakdown, i)
		}
		d[i] = 1 / v
	}
	return &JacobiPreconditioner{invD: d}, nil
}

// Precondition implements Preconditioner: z = D⁻¹·r.
func (j *JacobiPreconditioner) Precondition(r, z []float64) {
	for i, v := range r {
		z[i] = j.invD[i] * v
	}
}

// SolveCG solves A·x = b by conjugate gradients with Jacobi (diagonal)
// preconditioning — the "diagonal preconditioned conjugate gradient algorithm
// with assembly of the global matrix" that §4.3 reports as the best solver
// for large grounding problems. A must be symmetric positive definite.
func SolveCG(a *SymMatrix, b []float64, opt CGOptions) (CGResult, error) {
	return solveCGWith(serialOperator{a}, a.Diag(), b, opt)
}

type serialOperator struct{ m *SymMatrix }

func (s serialOperator) Order() int           { return s.m.Order() }
func (s serialOperator) Apply(x, y []float64) { s.m.MulVec(x, y) }

// solveCGWith is the Jacobi-preconditioned CG kernel over an abstract
// operator. diag is consumed (overwritten with its reciprocals).
func solveCGWith(a Operator, diag, b []float64, opt CGOptions) (CGResult, error) {
	m, err := NewJacobiPreconditioner(diag)
	if err != nil {
		return CGResult{}, err
	}
	return SolveCGOp(a, m, b, opt)
}

// SolveCGOp is the preconditioned CG kernel over an abstract operator and an
// abstract preconditioner — the entry point of implicit-operator solves (the
// H-matrix path pairs its block matvec with a near-field block-Cholesky or
// Jacobi preconditioner here). The arithmetic is identical to SolveCG when
// given the dense operator and the Jacobi preconditioner.
func SolveCGOp(a Operator, m Preconditioner, b []float64, opt CGOptions) (CGResult, error) {
	n := a.Order()
	if len(b) != n {
		return CGResult{}, fmt.Errorf("linalg: rhs length %d, want %d", len(b), n)
	}
	if opt.Tol <= 0 {
		opt.Tol = 1e-10
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 10 * n
	}

	x := make([]float64, n)
	if opt.X0 != nil {
		if len(opt.X0) != n {
			return CGResult{}, fmt.Errorf("linalg: x0 length %d, want %d", len(opt.X0), n)
		}
		copy(x, opt.X0)
	}

	r := make([]float64, n)  // residual b − A·x
	z := make([]float64, n)  // preconditioned residual
	p := make([]float64, n)  // search direction
	ap := make([]float64, n) // A·p

	a.Apply(x, ap)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	normB := Norm2(b)
	if normB == 0 {
		return CGResult{X: x, Converged: true}, nil
	}

	m.Precondition(r, z)
	copy(p, z)
	rz := Dot(r, z)

	res := CGResult{X: x}
	for k := 0; k < opt.MaxIter; k++ {
		normR := Norm2(r)
		res.Iterations = k
		res.Residual = normR / normB
		if res.Residual <= opt.Tol {
			res.Converged = true
			return res, nil
		}
		a.Apply(p, ap)
		pap := Dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return res, fmt.Errorf("%w: pᵀAp = %g at iteration %d", ErrCGBreakdown, pap, k)
		}
		alpha := rz / pap
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		m.Precondition(r, z)
		rzNew := Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	res.Residual = Norm2(r) / normB
	res.Converged = res.Residual <= opt.Tol
	res.Iterations = opt.MaxIter
	return res, nil
}
