package linalg

import (
	"fmt"
	"math"

	"earthing/internal/sched"
)

// MulVecParallel computes y = A·x with rows distributed over workers.
// Unlike MulVec's single sweep of the packed triangle (which scatters into
// y and cannot run concurrently), each row is computed independently:
// y_i = Σ_{j≤i} L[i,j]·x_j + Σ_{j>i} L[j,i]·x_j. That doubles the memory
// traffic but removes all write sharing, so it scales with cores for the
// large dense systems where the CG solve starts to matter.
//
// workers ≤ 1 falls back to the sequential MulVec.
func (m *SymMatrix) MulVecParallel(x, y []float64, workers int) {
	if len(x) != m.n || len(y) != m.n {
		panic("linalg: MulVecParallel dimension mismatch")
	}
	if workers <= 1 || m.n < 64 {
		m.MulVec(x, y)
		return
	}
	// Dynamic chunks balance the triangular row costs.
	s := sched.Schedule{Kind: sched.Dynamic, Chunk: 8}
	sched.For(m.n, workers, s, func(i int) {
		base := i * (i + 1) / 2
		var sum float64
		row := m.data[base : base+i+1]
		for j, a := range row {
			sum += a * x[j]
		}
		// Upper part via the transposed packed entries: element (j, i) sits
		// at offset(j) + i with offset advancing by j+1 per row, so the walk
		// is a single running offset instead of a multiply per element.
		off := base + i + 1 + i // (i+1)(i+2)/2 + i
		for j := i + 1; j < m.n; j++ {
			sum += m.data[off] * x[j]
			off += j + 1
		}
		y[i] = sum
	})
}

// SolveCGParallel is SolveCG with the matrix-vector products distributed
// over the given number of workers. Results are identical to SolveCG up to
// floating-point association in the row sums.
func SolveCGParallel(a *SymMatrix, b []float64, opt CGOptions, workers int) (CGResult, error) {
	if workers <= 1 {
		return SolveCG(a, b, opt)
	}
	pa := &parallelOperator{m: a, workers: workers}
	return solveCGWith(pa, a.Diag(), b, opt)
}

// NewCholeskyParallel factorizes an SPD matrix with the row updates of each
// column distributed over workers (column-Cholesky: the pivot of column j is
// computed serially, then every row i > j updates independently). The §4.3
// observation that direct solves are "out of range" for large grounding
// systems softens somewhat when the O(n³/3) factorization parallelizes; the
// ablation benches quantify it.
//
// workers ≤ 1 falls back to the sequential NewCholesky.
func NewCholeskyParallel(a *SymMatrix, workers int) (*Cholesky, error) {
	n := a.Order()
	if workers <= 1 || n < 128 {
		return NewCholesky(a)
	}
	l := make([]float64, len(a.data))
	copy(l, a.data)
	idx := func(i, j int) int { return i*(i+1)/2 + j }
	s := sched.Schedule{Kind: sched.Dynamic, Chunk: 16}
	for j := 0; j < n; j++ {
		d := l[idx(j, j)]
		rowJ := l[idx(j, 0) : idx(j, 0)+j]
		for _, v := range rowJ {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, j, d)
		}
		dj := math.Sqrt(d)
		l[idx(j, j)] = dj
		inv := 1 / dj
		rows := n - 1 - j
		if rows <= 0 {
			continue
		}
		sched.For(rows, workers, s, func(r int) {
			i := j + 1 + r
			base := idx(i, 0)
			rowI := l[base : base+j]
			sum := l[base+j]
			for k, v := range rowJ {
				sum -= rowI[k] * v
			}
			l[base+j] = sum * inv
		})
	}
	return &Cholesky{n: n, l: l}, nil
}

type parallelOperator struct {
	m       *SymMatrix
	workers int
}

func (p *parallelOperator) Order() int           { return p.m.Order() }
func (p *parallelOperator) Apply(x, y []float64) { p.m.MulVecParallel(x, y, p.workers) }
