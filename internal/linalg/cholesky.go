package linalg

import (
	"errors"
	"fmt"
	"math"
	"sync"
)

// ErrNotPositiveDefinite is returned by Cholesky factorization when a pivot
// is non-positive. For a Galerkin grounding matrix this indicates a modelling
// error (e.g. duplicated elements or a degenerate discretization).
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ in packed
// storage. Obtain one from NewCholesky (reference column sweep),
// NewCholeskyParallel (column sweep, parallel row updates) or
// NewCholeskyBlocked (tiled panels, optionally mixed precision).
type Cholesky struct {
	n int
	l []float64 // packed lower triangle of L

	// workers is the parallel width the factorization ran at; refinement
	// residuals reuse it for their matrix-vector products.
	workers int
	// refineA is the factored matrix, retained only by mixed-precision
	// handles: Solve then runs float64 iterative refinement against it.
	refineA *SymMatrix

	// condOnce caches the first ConditionEstimate so repeated health checks
	// sharing one factorization (cached unit-GPR solves, sweep columns) pay
	// the power iteration once.
	condOnce sync.Once
	condVal  float64
	condErr  error
}

// NewCholesky factorizes the symmetric positive definite matrix a. The input
// matrix is not modified. O(n³/3) operations, matching the direct-solve cost
// quoted in §4.3 of the paper. This is the reference factorization the
// blocked variant is pinned against; its per-column sweep walks each packed
// row segment linearly.
func NewCholesky(a *SymMatrix) (*Cholesky, error) {
	n := a.n
	l := make([]float64, len(a.data))
	copy(l, a.data)
	for j := 0; j < n; j++ {
		jb := rowBase(j)
		d := l[jb+j]
		rowJ := l[jb : jb+j]
		for _, v := range rowJ {
			d -= v * v
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, j, d)
		}
		dj := math.Sqrt(d)
		l[jb+j] = dj
		for i := j + 1; i < n; i++ {
			ib := rowBase(i)
			s := l[ib+j]
			rowI := l[ib : ib+j]
			for k, v := range rowJ {
				s -= rowI[k] * v
			}
			l[ib+j] = s / dj
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve returns x with A·x = b. On a mixed-precision handle the triangular
// solves are followed by float64 iterative refinement on the residual until
// the correction reaches float64 round-off; if refinement cannot contract
// (hopelessly ill-conditioned system), ErrRefinementStalled is returned
// rather than a silently degraded solution.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), c.n)
	}
	x := make([]float64, c.n)
	c.solveInto(x, b)
	if c.refineA == nil {
		return x, nil
	}
	if err := c.refine(x, b); err != nil {
		return nil, err
	}
	return x, nil
}

// solveInto solves A·x = b into x (len n, may not alias b) by forward and
// back substitution. Both sweeps subtract products term by term in the same
// ascending order as the textbook loops, so the result is bit-identical
// regardless of which factorization built L; the forward sweep walks packed
// rows linearly and the back sweep replaces the per-element index product
// with an incremental offset (off += j+1), keeping the reference operation
// order over column i (a bit-identity the panel-reordered form would lose).
func (c *Cholesky) solveInto(x, b []float64) {
	l := c.l
	// Forward substitution L·y = b: row i's coefficients are contiguous.
	base := 0
	for i := 0; i < c.n; i++ {
		s := b[i]
		row := l[base : base+i]
		for j, v := range row {
			s -= v * x[j]
		}
		x[i] = s / l[base+i]
		base += i + 1
	}
	// Back substitution Lᵀ·x = y: column i of L, walked with an incremental
	// packed offset.
	for i := c.n - 1; i >= 0; i-- {
		s := x[i]
		off := rowBase(i+1) + i
		for j := i + 1; j < c.n; j++ {
			s -= l[off] * x[j]
			off += j + 1
		}
		x[i] = s / l[rowBase(i)+i]
	}
}

// refineTol is the refinement convergence target: iterate until the
// correction is below ~10 ulp of the iterate, i.e. the float32 factor error
// has been repaired to float64 working accuracy.
const refineTol = 1e-14

// refineMaxIter bounds refinement; a float32 factor of a sanely conditioned
// system contracts by ~1e-7 per step, so 2–3 steps suffice and 40 means the
// iteration is not contracting at all.
const refineMaxIter = 40

// refine runs float64 iterative refinement x ← x + A⁻¹(b − A·x) in place,
// using the (mixed-precision) factor as the approximate inverse. Returns
// ErrRefinementStalled when the correction will not drop below refineTol —
// the caller must fall back to a full-precision factorization.
func (c *Cholesky) refine(x, b []float64) error {
	n := c.n
	r := make([]float64, n)
	d := make([]float64, n)
	prev := math.Inf(1)
	for it := 0; it < refineMaxIter; it++ {
		// r = b − A·x in float64 against the original matrix.
		c.refineA.MulVecParallel(x, r, c.workers)
		for i := range r {
			r[i] = b[i] - r[i]
		}
		c.solveInto(d, r)
		normX, normD := maxAbs(x), maxAbs(d)
		for i := range x {
			x[i] += d[i]
		}
		if normD <= refineTol*normX || normD == 0 {
			return nil
		}
		// Not contracting by at least 2× per step means the float32 factor
		// is no contraction for this system; more steps will oscillate.
		if normD > 0.5*prev {
			return fmt.Errorf("%w: correction %.3g after %d iterations", ErrRefinementStalled, normD, it+1)
		}
		prev = normD
	}
	return fmt.Errorf("%w: correction floor not reached in %d iterations", ErrRefinementStalled, refineMaxIter)
}

func maxAbs(v []float64) float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Det returns the determinant of A (= Π L_ii²).
func (c *Cholesky) Det() float64 {
	det := 1.0
	for i := 0; i < c.n; i++ {
		d := c.l[rowBase(i)+i]
		det *= d * d
	}
	return det
}

// LogDet returns log det A, which stays finite when Det would overflow.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += 2 * math.Log(c.l[rowBase(i)+i])
	}
	return s
}

// ConditionEstimate returns the 2-norm condition estimate λmax/λmin of the
// factored matrix a, reusing this handle's factorization for the inverse
// iteration and caching the result: repeated health checks that share one
// factorization (cached unit-GPR solves, sweep scenarios of one job) pay the
// power iteration once. a must be the matrix this handle factored; iters ≤ 0
// selects the default. The first call's estimate is returned to all callers.
func (c *Cholesky) ConditionEstimate(a *SymMatrix, iters int) (float64, error) {
	c.condOnce.Do(func() {
		min, max, err := extremeEigenvalues(a, c, iters)
		if err != nil {
			c.condErr = err
			return
		}
		if min <= 0 {
			c.condVal = math.Inf(1)
			return
		}
		c.condVal = max / min
	})
	return c.condVal, c.condErr
}
