package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky factorization when a pivot
// is non-positive. For a Galerkin grounding matrix this indicates a modelling
// error (e.g. duplicated elements or a degenerate discretization).
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds the lower-triangular factor L with A = L·Lᵀ in packed
// storage.
type Cholesky struct {
	n int
	l []float64 // packed lower triangle of L
}

// NewCholesky factorizes the symmetric positive definite matrix a. The input
// matrix is not modified. O(n³/3) operations, matching the direct-solve cost
// quoted in §4.3 of the paper.
func NewCholesky(a *SymMatrix) (*Cholesky, error) {
	n := a.n
	l := make([]float64, len(a.data))
	copy(l, a.data)
	idx := func(i, j int) int { return i*(i+1)/2 + j }
	for j := 0; j < n; j++ {
		d := l[idx(j, j)]
		for k := 0; k < j; k++ {
			d -= l[idx(j, k)] * l[idx(j, k)]
		}
		if d <= 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrNotPositiveDefinite, j, d)
		}
		dj := math.Sqrt(d)
		l[idx(j, j)] = dj
		for i := j + 1; i < n; i++ {
			s := l[idx(i, j)]
			for k := 0; k < j; k++ {
				s -= l[idx(i, k)] * l[idx(j, k)]
			}
			l[idx(i, j)] = s / dj
		}
	}
	return &Cholesky{n: n, l: l}, nil
}

// Solve returns x with A·x = b.
func (c *Cholesky) Solve(b []float64) ([]float64, error) {
	if len(b) != c.n {
		return nil, fmt.Errorf("linalg: rhs length %d, want %d", len(b), c.n)
	}
	idx := func(i, j int) int { return i*(i+1)/2 + j }
	// Forward substitution L·y = b.
	y := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s := b[i]
		for j := 0; j < i; j++ {
			s -= c.l[idx(i, j)] * y[j]
		}
		y[i] = s / c.l[idx(i, i)]
	}
	// Back substitution Lᵀ·x = y.
	x := y
	for i := c.n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < c.n; j++ {
			s -= c.l[idx(j, i)] * x[j]
		}
		x[i] = s / c.l[idx(i, i)]
	}
	return x, nil
}

// Det returns the determinant of A (= Π L_ii²).
func (c *Cholesky) Det() float64 {
	det := 1.0
	for i := 0; i < c.n; i++ {
		d := c.l[i*(i+1)/2+i]
		det *= d * d
	}
	return det
}

// LogDet returns log det A, which stays finite when Det would overflow.
func (c *Cholesky) LogDet() float64 {
	var s float64
	for i := 0; i < c.n; i++ {
		s += 2 * math.Log(c.l[i*(i+1)/2+i])
	}
	return s
}
