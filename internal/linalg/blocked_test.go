package linalg

import (
	"errors"
	"math"
	"testing"

	"earthing/internal/faultinject"
)

// spdMatrix builds a deterministic, well-conditioned SPD matrix of order n:
// B·Bᵀ + n·I with B filled from a xorshift stream.
func spdMatrix(n int, seed uint64) *SymMatrix {
	b := make([]float64, n*n)
	for i := range b {
		seed ^= seed << 13
		seed ^= seed >> 7
		seed ^= seed << 17
		b[i] = float64(seed%2000)/1000 - 1
	}
	a := NewSymMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += b[i*n+k] * b[j*n+k]
			}
			if i == j {
				s += float64(n)
			}
			a.Set(i, j, s)
		}
	}
	return a
}

// nearSingular builds an SPD matrix with one eigenvalue shrunk to eps of the
// rest: Q·D·Qᵀ with a Householder Q, exercising the factorizations close to
// the positive-definiteness boundary.
func nearSingular(n int, eps float64) *SymMatrix {
	// Householder vector v = normalized ones.
	inv := 1 / math.Sqrt(float64(n))
	a := NewSymMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			// Q = I − 2vvᵀ, D = diag(eps, 1, 1, …): A = Q D Qᵀ.
			var s float64
			for k := 0; k < n; k++ {
				d := 1.0
				if k == 0 {
					d = eps
				}
				qik := -2 * inv * inv
				if i == k {
					qik++
				}
				qjk := -2 * inv * inv
				if j == k {
					qjk++
				}
				s += qik * d * qjk
			}
			a.Set(i, j, s)
		}
	}
	return a
}

func rhs(n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = 1 + float64(i%7)/3
	}
	return b
}

// equivalenceSizes spans 1…300 including panel-boundary cases around the
// default block size 64 and the small-block sizes the suite re-runs with.
var equivalenceSizes = []int{1, 2, 3, 5, 8, 13, 21, 34, 63, 64, 65, 100, 127, 128, 129, 200, 300}

// TestBlockedCholeskyBitIdentical pins the float64 blocked factorization to
// the reference column sweep bit for bit: factor, solve, Det and LogDet, at
// several block sizes and worker widths, across sizes 1…300.
func TestBlockedCholeskyBitIdentical(t *testing.T) {
	for _, n := range equivalenceSizes {
		a := spdMatrix(n, uint64(n)*0x9e3779b9+1)
		ref, err := NewCholesky(a)
		if err != nil {
			t.Fatalf("n=%d: reference: %v", n, err)
		}
		b := rhs(n)
		xRef, err := ref.Solve(b)
		if err != nil {
			t.Fatalf("n=%d: reference solve: %v", n, err)
		}
		for _, opt := range []FactorOpts{
			{},
			{BlockSize: 8},
			{BlockSize: 48, Workers: 4},
			{BlockSize: 64, Workers: 8},
		} {
			bl, err := NewCholeskyBlocked(a, opt)
			if err != nil {
				t.Fatalf("n=%d opt=%+v: blocked: %v", n, opt, err)
			}
			for i, v := range bl.l {
				if v != ref.l[i] {
					t.Fatalf("n=%d opt=%+v: factor entry %d: blocked %v != reference %v", n, opt, i, v, ref.l[i])
				}
			}
			x, err := bl.Solve(b)
			if err != nil {
				t.Fatalf("n=%d opt=%+v: blocked solve: %v", n, opt, err)
			}
			for i := range x {
				if x[i] != xRef[i] {
					t.Fatalf("n=%d opt=%+v: solution entry %d: blocked %v != reference %v", n, opt, i, x[i], xRef[i])
				}
			}
			if bl.Det() != ref.Det() || bl.LogDet() != ref.LogDet() {
				t.Fatalf("n=%d opt=%+v: Det/LogDet mismatch: (%v, %v) != (%v, %v)",
					n, opt, bl.Det(), bl.LogDet(), ref.Det(), ref.LogDet())
			}
		}
	}
}

// TestBlockedCholeskyNearSingular runs both factorizations at the
// positive-definiteness boundary: for solvable eps they must agree bit for
// bit; for an indefinite perturbation both must fail with
// ErrNotPositiveDefinite.
func TestBlockedCholeskyNearSingular(t *testing.T) {
	for _, n := range []int{5, 65, 130} {
		for _, eps := range []float64{1e-8, 1e-12} {
			a := nearSingular(n, eps)
			ref, refErr := NewCholesky(a)
			bl, blErr := NewCholeskyBlocked(a, FactorOpts{BlockSize: 32, Workers: 4})
			if (refErr == nil) != (blErr == nil) {
				t.Fatalf("n=%d eps=%g: reference err %v, blocked err %v", n, eps, refErr, blErr)
			}
			if refErr != nil {
				continue
			}
			for i, v := range bl.l {
				if v != ref.l[i] {
					t.Fatalf("n=%d eps=%g: factor entry %d differs", n, eps, i)
				}
			}
		}
		// Indefinite: flip the smallest eigenvalue negative.
		a := nearSingular(n, -1e-3)
		if _, err := NewCholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
			t.Fatalf("n=%d: reference accepted an indefinite matrix: %v", n, err)
		}
		if _, err := NewCholeskyBlocked(a, FactorOpts{}); !errors.Is(err, ErrNotPositiveDefinite) {
			t.Fatalf("n=%d: blocked accepted an indefinite matrix: %v", n, err)
		}
	}
}

// TestMixedPrecisionRefinement checks the mixed-precision accuracy contract:
// the refined solution matches the full-precision one to float64 working
// accuracy (≪ the 1e-10 acceptance bar), while the unrefined float32-updated
// factor alone is visibly coarser than the reference.
func TestMixedPrecisionRefinement(t *testing.T) {
	for _, n := range []int{150, 300} {
		a := spdMatrix(n, 7)
		b := rhs(n)
		ref, err := NewCholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		xRef, err := ref.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		mixed, err := NewCholeskyBlocked(a, FactorOpts{BlockSize: 48, Workers: 2, Mixed: true})
		if err != nil {
			t.Fatalf("n=%d: mixed factor: %v", n, err)
		}
		x, err := mixed.Solve(b)
		if err != nil {
			t.Fatalf("n=%d: mixed solve: %v", n, err)
		}
		var maxRel float64
		for i := range x {
			rel := math.Abs(x[i]-xRef[i]) / math.Max(1e-300, math.Abs(xRef[i]))
			if rel > maxRel {
				maxRel = rel
			}
		}
		if maxRel > 1e-12 {
			t.Fatalf("n=%d: refined mixed solution off by %g relative", n, maxRel)
		}
		// The raw mixed factor (no refinement) must be measurably coarser —
		// proving refinement is doing real work, not that float32 was free.
		raw := make([]float64, n)
		mixed.solveInto(raw, b)
		var rawRel float64
		for i := range raw {
			rel := math.Abs(raw[i]-xRef[i]) / math.Max(1e-300, math.Abs(xRef[i]))
			if rel > rawRel {
				rawRel = rel
			}
		}
		if rawRel < 1e-9 {
			t.Fatalf("n=%d: unrefined mixed solution suspiciously exact (%g); float32 path not engaged?", n, rawRel)
		}
	}
}

// TestMixedPrecisionRefusesGarbage pins the no-silent-degradation contract:
// on a system too ill-conditioned for the float32 factor to contract,
// Solve returns ErrRefinementStalled instead of a half-refined solution.
func TestMixedPrecisionRefusesGarbage(t *testing.T) {
	n := 120
	a := nearSingular(n, 1e-13)
	mixed, err := NewCholeskyBlocked(a, FactorOpts{BlockSize: 32, Mixed: true})
	if err != nil {
		// The float32 downdates may already break positive definiteness at
		// this conditioning; that is an acceptable loud failure too.
		if errors.Is(err, ErrNotPositiveDefinite) {
			return
		}
		t.Fatal(err)
	}
	if _, err := mixed.Solve(rhs(n)); !errors.Is(err, ErrRefinementStalled) {
		t.Fatalf("expected ErrRefinementStalled on a cond≈1e13 system, got %v", err)
	}
}

// TestConditionEstimateCached pins the handle-level cache: the estimate
// matches the free-function estimator and repeated calls return the first
// result without re-running the iteration.
func TestConditionEstimateCached(t *testing.T) {
	a := spdMatrix(80, 3)
	want, err := ConditionEstimate(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := NewCholeskyBlocked(a, FactorOpts{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := ch.ConditionEstimate(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("handle estimate %v != free estimate %v", got, want)
	}
	// A second call must serve the cache even with absurd iteration counts.
	again, err := ch.ConditionEstimate(a, 1)
	if err != nil || again != got {
		t.Fatalf("cached estimate changed: %v (err %v)", again, err)
	}
}

// TestCholeskyPanelFaultPoint proves the faultinject site is live: poisoning
// the first panel pivot surfaces as a typed ErrNotPositiveDefinite, the
// failure mode the sweep isolates per scenario.
func TestCholeskyPanelFaultPoint(t *testing.T) {
	defer faultinject.Set(faultinject.CholeskyPanel, faultinject.Once(faultinject.PoisonNaN()))()
	a := spdMatrix(100, 11)
	if _, err := NewCholeskyBlocked(a, FactorOpts{BlockSize: 32}); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("poisoned panel did not fail the factorization: %v", err)
	}
}

func benchmarkMatrix(n int) *SymMatrix { return spdMatrix(n, 42) }

// BenchmarkCholeskyReference / BenchmarkCholeskyBlocked are the CI bench
// smoke pair for the factorization rewrite (single-thread).
func BenchmarkCholeskyReference(b *testing.B) {
	a := benchmarkMatrix(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholesky(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyBlocked(b *testing.B) {
	a := benchmarkMatrix(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholeskyBlocked(a, FactorOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCholeskyBlockedMixed(b *testing.B) {
	a := benchmarkMatrix(300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewCholeskyBlocked(a, FactorOpts{Mixed: true}); err != nil {
			b.Fatal(err)
		}
	}
}
