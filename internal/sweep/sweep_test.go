package sweep

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/soil"
)

// threeLayer builds a 3-layer model whose interfaces lie below every
// electrode of the paper grids, so all elements stay in the top layer and
// the assembly uses the (fast) top-layer image expansion of MultiLayer.
func threeLayer(t *testing.T) soil.Model {
	t.Helper()
	m, err := soil.NewMultiLayer([]float64{0.02, 0.019, 0.021}, []float64{6, 6})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// testConfig keeps the paper discretizations but truncates the kernel
// series aggressively: the tests pin bit-identity between two code paths,
// not physical accuracy, and both sides run under the same tolerance.
func testConfig(workers int) core.Config {
	return core.Config{
		GPR:         10_000,
		RodElements: 2,
		BEM:         bem.Options{Workers: workers, SeriesTol: 1e-2},
	}
}

// sameFloats demands bitwise equality.
func sameFloats(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: %v != %v (Δ %g)", label, i, got[i], want[i], got[i]-want[i])
		}
	}
}

// TestSweepMatchesAnalyze is the bit-identity contract: a sweep over
// {uniform, two-layer, three-layer} on each paper grid reproduces sequential
// Analyze exactly — same Sigma, Req, Current and GPR — at every worker
// count (each side run at the same width).
func TestSweepMatchesAnalyze(t *testing.T) {
	grids := []struct {
		name string
		g    *grid.Grid
	}{
		{"barbera", grid.Barbera()},
		{"balaidos", grid.Balaidos()},
	}
	models := []struct {
		name  string
		model soil.Model
		gpr   float64
	}{
		{"uniform", soil.NewUniform(0.020), 10_000},
		{"two-layer", soil.NewTwoLayer(0.0025, 0.020, 0.7), 12_500},
		{"three-layer", nil, 8_000}, // filled per test (needs t)
	}
	for _, gc := range grids {
		for _, workers := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/w%d", gc.name, workers), func(t *testing.T) {
				cfg := testConfig(workers)
				var scens []Scenario
				for _, mc := range models {
					model := mc.model
					if model == nil {
						model = threeLayer(t)
					}
					scens = append(scens, Scenario{ID: mc.name, Model: model, GPR: mc.gpr})
				}
				got, err := Run(context.Background(), gc.g, scens, Options{Config: cfg})
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(scens) {
					t.Fatalf("got %d results, want %d", len(got), len(scens))
				}
				for i, r := range got {
					if r.Index != i || r.ID != scens[i].ID {
						t.Fatalf("result %d: index %d id %q out of order", i, r.Index, r.ID)
					}
					if r.Reuse != ReuseAssembled {
						t.Fatalf("result %s: reuse %q, want assembled (all models distinct)", r.ID, r.Reuse)
					}
					seqCfg := cfg
					seqCfg.GPR = scens[i].GPR
					want, err := core.Analyze(gc.g, scens[i].Model, seqCfg)
					if err != nil {
						t.Fatal(err)
					}
					if r.Res.Req != want.Req {
						t.Errorf("%s: Req %v != %v", r.ID, r.Res.Req, want.Req)
					}
					if r.Res.Current != want.Current {
						t.Errorf("%s: Current %v != %v", r.ID, r.Res.Current, want.Current)
					}
					if r.Res.GPR != want.GPR {
						t.Errorf("%s: GPR %v != %v", r.ID, r.Res.GPR, want.GPR)
					}
					sameFloats(t, r.ID+" Sigma", r.Res.Sigma, want.Sigma)
				}
			})
		}
	}
}

// TestSweepGPRReuse pins the solve-reuse tier: N GPR variants of one model
// cost one assembly, and every variant is bit-identical to a fresh analysis
// at its GPR.
func TestSweepGPRReuse(t *testing.T) {
	g := grid.Balaidos()
	model := soil.NewTwoLayer(0.0025, 0.020, 0.7)
	cfg := testConfig(0)
	var scens []Scenario
	for i := 0; i < 10; i++ {
		scens = append(scens, Scenario{Model: model, GPR: 1_000 * float64(i+1)})
	}
	got, err := Run(context.Background(), g, scens, Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	assembled := 0
	for _, r := range got {
		if r.Reuse == ReuseAssembled {
			assembled++
		} else if r.Reuse != ReuseSolve {
			t.Errorf("scenario %d: reuse %q, want solve", r.Index, r.Reuse)
		}
	}
	if assembled != 1 {
		t.Fatalf("%d assemblies for 10 GPR variants, want exactly 1", assembled)
	}
	for _, i := range []int{0, 4, 9} {
		seqCfg := cfg
		seqCfg.GPR = scens[i].GPR
		want, err := core.Analyze(g, model, seqCfg)
		if err != nil {
			t.Fatal(err)
		}
		r := got[i]
		if r.Res.Req != want.Req || r.Res.Current != want.Current || r.Res.GPR != want.GPR {
			t.Errorf("scenario %d: (Req, Current, GPR) = (%v, %v, %v), want (%v, %v, %v)",
				i, r.Res.Req, r.Res.Current, r.Res.GPR, want.Req, want.Current, want.GPR)
		}
		sameFloats(t, fmt.Sprintf("scenario %d Sigma", i), r.Res.Sigma, want.Sigma)
	}
}

// TestSweepHMatrix pins the compressed-solver sweep mode: under
// Solver = SolverHMatrix each job runs the whole H-matrix pipeline as one
// work unit, reuse tiers still apply, and every assembled result is
// bit-identical to a sequential analysis of the same scenario (the compressed
// build and matvec are bit-identical across worker counts, so the sweep's
// pool-width division cannot show through).
func TestSweepHMatrix(t *testing.T) {
	g := grid.Barbera()
	cfg := testConfig(2)
	cfg.Solver = core.SolverHMatrix
	scens := []Scenario{
		{ID: "uniform", Model: soil.NewUniform(0.020), GPR: 10_000},
		{ID: "two-layer", Model: soil.NewTwoLayer(0.0025, 0.020, 0.7), GPR: 12_500},
		{ID: "gpr-variant", Model: soil.NewUniform(0.020), GPR: 5_000},
	}
	got, err := Run(context.Background(), g, scens, Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Reuse != ReuseAssembled || got[1].Reuse != ReuseAssembled {
		t.Fatalf("reuse (%q, %q), want both assembled", got[0].Reuse, got[1].Reuse)
	}
	if got[2].Reuse != ReuseSolve {
		t.Fatalf("gpr-variant reuse %q, want solve (same model as uniform)", got[2].Reuse)
	}
	for i, r := range got {
		seqCfg := cfg
		seqCfg.GPR = scens[i].GPR
		want, err := core.Analyze(g, scens[i].Model, seqCfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Res.Req != want.Req || r.Res.Current != want.Current {
			t.Errorf("%s: (Req, Current) = (%v, %v), want (%v, %v)",
				r.ID, r.Res.Req, r.Res.Current, want.Req, want.Current)
		}
		sameFloats(t, r.ID+" Sigma", r.Res.Sigma, want.Sigma)
		if r.Res.HMatrix.N == 0 {
			t.Errorf("%s: Result.HMatrix stats empty — compressed path not taken", r.ID)
		}
	}
	if got[0].Assembly <= 0 || got[0].Solve <= 0 {
		t.Errorf("assembled result carries timings (%v, %v), want both positive",
			got[0].Assembly, got[0].Solve)
	}
}

// TestSweepMeshGrouping pins the geometry-reuse tier: models with equal
// interface depths share one mesh; models with different depths do not.
func TestSweepMeshGrouping(t *testing.T) {
	g := grid.Balaidos()
	scens := []Scenario{
		{ID: "a", Model: soil.NewTwoLayer(0.0025, 0.020, 0.7)},
		{ID: "b", Model: soil.NewTwoLayer(0.004, 0.018, 0.7)},
		{ID: "c", Model: soil.NewTwoLayer(0.0025, 0.020, 1.0)},
	}
	got, err := Run(context.Background(), g, scens, Options{Config: testConfig(0)})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Res.Mesh != got[1].Res.Mesh {
		t.Error("same interface depth (0.7 m): meshes not shared")
	}
	if got[0].Res.Mesh == got[2].Res.Mesh {
		t.Error("different interface depths (0.7 vs 1.0 m): meshes unexpectedly shared")
	}
}

// TestSweepMultiGrid covers the per-scenario grid override (the design-loop
// form): distinct grids assemble independently, a duplicated layout collapses
// into the first grid's job as a solve-tier rescale, and every result is
// bit-identical to an independent analysis of that scenario's grid.
func TestSweepMultiGrid(t *testing.T) {
	cfg := testConfig(0)
	model := soil.NewTwoLayer(0.0025, 0.020, 0.7)
	barbera, balaidos := grid.Barbera(), grid.Balaidos()
	// A third *grid.Grid value that serializes identically to barbera: the
	// dedup must key on content, not pointer.
	barberaDup := grid.Barbera()
	scens := []Scenario{
		{ID: "barbera", Model: model, GPR: 10_000, Grid: barbera},
		{ID: "balaidos", Model: model, GPR: 10_000, Grid: balaidos},
		{ID: "barbera-dup", Model: model, GPR: 12_000, Grid: barberaDup},
	}
	// nil shared grid: every scenario carries its own.
	got, err := Run(context.Background(), nil, scens, Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	wantReuse := []Reuse{ReuseAssembled, ReuseAssembled, ReuseSolve}
	for i, r := range got {
		if r.Reuse != wantReuse[i] {
			t.Errorf("%s: reuse %q, want %q", r.ID, r.Reuse, wantReuse[i])
		}
		seqCfg := cfg
		seqCfg.GPR = scens[i].GPR
		want, err := core.Analyze(scens[i].Grid, model, seqCfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.Res.Req != want.Req || r.Res.GPR != want.GPR {
			t.Errorf("%s: (Req, GPR) = (%v, %v), want (%v, %v)",
				r.ID, r.Res.Req, r.Res.GPR, want.Req, want.GPR)
		}
		sameFloats(t, r.ID+" Sigma", r.Res.Sigma, want.Sigma)
	}
	if got[0].Res.Mesh == got[1].Res.Mesh {
		t.Error("distinct grids share a mesh")
	}
	if got[0].Res.Mesh != got[2].Res.Mesh {
		t.Error("identical layouts under different pointers did not share a mesh")
	}
	// A per-scenario grid also overrides a non-nil shared grid.
	mixed, err := Run(context.Background(), balaidos,
		[]Scenario{
			{ID: "shared", Model: model, GPR: 10_000},
			{ID: "override", Model: model, GPR: 10_000, Grid: barbera},
		}, Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if mixed[0].Res.Req != got[1].Res.Req {
		t.Errorf("shared-grid scenario Req %v != balaidos %v", mixed[0].Res.Req, got[1].Res.Req)
	}
	if mixed[1].Res.Req != got[0].Res.Req {
		t.Errorf("override scenario Req %v != barbera %v", mixed[1].Res.Req, got[0].Res.Req)
	}
}

// TestSweepScaledTier checks the opt-in proportional-conductivity tier:
// exact up to rounding, correct post-processing kernels, no extra assembly.
func TestSweepScaledTier(t *testing.T) {
	g := grid.Barbera()
	base := soil.NewUniform(0.016)
	double := soil.NewUniform(0.032)
	cfg := testConfig(0)
	scens := []Scenario{
		{ID: "base", Model: base, GPR: 10_000},
		{ID: "double", Model: double, GPR: 10_000},
	}
	got, err := Run(context.Background(), g, scens, Options{Config: cfg, AllowScaled: true})
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Reuse != ReuseAssembled || got[1].Reuse != ReuseScaled {
		t.Fatalf("reuse (%q, %q), want (assembled, scaled)", got[0].Reuse, got[1].Reuse)
	}
	seqCfg := cfg
	seqCfg.GPR = 10_000
	want, err := core.Analyze(g, double, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(got[1].Res.Req-want.Req) / want.Req; rel > 1e-12 {
		t.Errorf("scaled Req %v vs fresh %v (rel %g)", got[1].Res.Req, want.Req, rel)
	}
	// Post-processing must use the target model's kernels, not the base's.
	pt := geom.V(5, 5, 0)
	pv, wv := got[1].Res.PotentialAt(pt), want.PotentialAt(pt)
	if rel := math.Abs(pv-wv) / math.Abs(wv); rel > 1e-9 {
		t.Errorf("scaled PotentialAt %v vs fresh %v (rel %g)", pv, wv, rel)
	}
	// Without opt-in the same sweep assembles both models.
	strict, err := Run(context.Background(), g, scens, Options{Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if strict[1].Reuse != ReuseAssembled {
		t.Errorf("without AllowScaled: reuse %q, want assembled", strict[1].Reuse)
	}
	if strict[1].Res.Req != want.Req {
		t.Errorf("without AllowScaled: Req %v != fresh %v", strict[1].Res.Req, want.Req)
	}
}

// TestSweepCancellation: a pre-cancelled context stops the sweep without
// emitting and returns the context error.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	emitted := 0
	err := Stream(ctx, grid.Balaidos(),
		[]Scenario{{Model: soil.NewUniform(0.02)}},
		Options{Config: testConfig(0)},
		func(Result) error { emitted++; return nil })
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if emitted != 0 {
		t.Fatalf("cancelled sweep emitted %d results", emitted)
	}
}

// TestSweepEmitError: an emit failure aborts the sweep and surfaces the
// error.
func TestSweepEmitError(t *testing.T) {
	wantErr := fmt.Errorf("sink full")
	err := Stream(context.Background(), grid.Barbera(),
		[]Scenario{
			{Model: soil.NewUniform(0.016)},
			{Model: soil.NewUniform(0.02)},
		},
		Options{Config: testConfig(0)},
		func(Result) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want wrapped %v", err, wantErr)
	}
}

// TestSweepEmptyAndInvalid covers the degenerate inputs.
func TestSweepEmptyAndInvalid(t *testing.T) {
	if err := Stream(context.Background(), grid.Barbera(), nil, Options{}, nil); err != nil {
		t.Errorf("empty scenario list: %v", err)
	}
	if _, err := Run(context.Background(), grid.Barbera(),
		[]Scenario{{Model: nil}}, Options{}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Run(context.Background(), grid.Barbera(),
		[]Scenario{{Model: soil.NewUniform(0.02), GPR: -5}}, Options{}); err == nil {
		t.Error("negative GPR accepted")
	}
	if err := Stream(context.Background(), nil,
		[]Scenario{{Model: soil.NewUniform(0.02)}}, Options{}, nil); err == nil {
		t.Error("nil grid accepted")
	}
}
