// Package sweep is the batch solve engine: it takes one grounding grid plus
// N scenario variants (soil models, GPR values, optionally per-scenario grid
// overrides) and schedules all of their matrix work through a single shared
// worker pool, exploiting structure across scenarios instead of running N
// independent pipelines.
//
// Reuse tiers, cheapest first:
//
//  1. Geometry cache — scenarios whose grids serialize identically and whose
//     soil models share interface depths discretize to the same mesh, so the
//     mesh and the quadrature geometry (Gauss positions, weights, shape
//     values; bem.Geometry) are built once per group and shared by every
//     assembler in it.
//  2. Solve reuse — scenarios differing only in GPR map to one assembly +
//     factorization at unit GPR; each variant is an O(1) rescale that is
//     bit-identical to a fresh analysis at that GPR (core.Result.WithGPR).
//  3. Scaled reuse (opt-in) — a model that is another scenario's model with
//     every conductivity multiplied by one exact factor s has σ' = s·σ and
//     R' = R/s; mathematically exact but not bit-identical to a fresh
//     assembly, so Options.AllowScaled gates it.
//  4. Fresh assembly — truly distinct models become independent assembly
//     jobs whose element-pair columns are interleaved on one sched.For
//     loop, so the pool never idles between scenarios and the assembled
//     systems stay bit-identical to Analyze's store-then-assemble path.
//
// Under Config.Solver = SolverHMatrix the fresh-assembly tier changes shape:
// each job runs the whole compressed pipeline (core.CompleteHMatrix) as one
// work unit on the shared loop, with the pool width divided across the
// concurrent jobs. The reuse tiers and the per-job fault isolation are
// unchanged — both operate on the solved unit result, which the compressed
// and dense paths produce alike.
package sweep

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/faultinject"
	"earthing/internal/grid"
	"earthing/internal/sched"
	"earthing/internal/soil"
)

// Scenario is one variant of the swept analysis: a soil model plus the GPR
// the results are scaled to, optionally on its own grid.
type Scenario struct {
	// ID labels the scenario in results (default "s<index>").
	ID string
	// Model is the layered soil model (required).
	Model soil.Model
	// GPR is the ground potential rise in volts (0 selects the sweep
	// config's GPR, itself defaulting to 1).
	GPR float64
	// Grid, when non-nil, overrides the shared grid passed to Run/Stream for
	// this scenario — the multi-grid form the design-synthesis engine batches
	// candidate layouts through. Scenarios whose grids serialize identically
	// (and whose soil models share interface depths) land in the same mesh
	// group, so duplicated candidate layouts pay one assembly between them.
	Grid *grid.Grid
}

// Options configures a sweep.
type Options struct {
	// Config carries the shared discretization, solver and BEM knobs; its
	// GPR is the default for scenarios that set none. The BEM Loop and
	// Assembly strategies are ignored: the sweep always generates matrices
	// column-wise into a store and assembles sequentially (the
	// deterministic store-then-assemble path) — except under
	// Solver = SolverHMatrix, where each job runs the compressed pipeline
	// whole (no dense store exists to stream).
	Config core.Config
	// AllowScaled enables the scaled-reuse tier: scenarios whose model is
	// an exact conductivity multiple of another scenario's are derived by
	// scaling instead of assembled. Exact in real arithmetic, but not
	// bit-identical to a fresh assembly — hence opt-in.
	AllowScaled bool
}

// Reuse names which tier produced a scenario's result.
type Reuse string

const (
	// ReuseAssembled marks the scenario that paid the fresh assembly of
	// its (mesh, model) job.
	ReuseAssembled Reuse = "assembled"
	// ReuseSolve marks a scenario rescaled from an already-solved job
	// (same model, different GPR) — bit-identical to a fresh analysis.
	ReuseSolve Reuse = "solve"
	// ReuseScaled marks a scenario derived through the opt-in
	// proportional-conductivity tier.
	ReuseScaled Reuse = "scaled"
	// ReuseFailed marks a scenario whose assembly job failed — a panicking
	// worker or a failed numerical health check. Res is nil and Err carries
	// the cause; the rest of the batch is unaffected.
	ReuseFailed Reuse = "failed"
)

// Result is one scenario's outcome.
type Result struct {
	// Index is the scenario's position in the input slice.
	Index int
	// ID echoes the scenario ID (defaulted when empty).
	ID string
	// Reuse names the tier that produced Res.
	Reuse Reuse
	// Res is the solved analysis at the scenario's GPR (nil when Err is
	// set).
	Res *core.Result
	// Err is the failure of this scenario's assembly job: a contained
	// worker panic (*sched.PanicError) or a numerical health failure
	// (*core.HealthError). Scenarios sharing the failed job all carry the
	// same Err; scenarios of other jobs complete normally.
	Err error
	// Wall is the time from sweep start to this result's emission.
	Wall time.Duration
	// Assembly is the aggregate worker-busy time spent generating this
	// scenario's system matrix (zero for reused tiers).
	Assembly time.Duration
	// Solve is the wall time of the assemble-scatter + factorization +
	// solve of this scenario's job (zero for reused tiers).
	Solve time.Duration
}

// meshGroup is the geometry-reuse tier: one mesh + quadrature geometry per
// distinct interface-depth signature.
type meshGroup struct {
	mesh     *grid.Mesh
	warnings []string
	geo      *bem.Geometry
}

// job is one fresh assembly: a distinct (mesh, model) pair. In the dense
// solvers it is a stream of matrix columns interleaved with other jobs; under
// Config.Solver = SolverHMatrix it is a single work unit that runs the whole
// compressed pipeline (cluster tree, ACA build, preconditioned CG) in one
// worker while sibling jobs occupy the rest of the pool.
type job struct {
	group *meshGroup
	model soil.Model
	asm   *bem.Assembler
	units int   // work units on the shared loop: NumColumns, or 1 (hmatrix)
	scens []int // scenario indices served by this job, ascending
	// scaled lists the proportional models derived from this job's
	// solution (AllowScaled tier).
	scaled []*scaledTier

	store []float64
	// hres is the unit-GPR result of an H-matrix job (nil for column jobs
	// and for failed jobs).
	hres      *core.Result
	remaining atomic.Int64
	busyNanos atomic.Int64
	// failErr holds the first failure of this job (worker panic, health
	// check); once set, the job's remaining columns are skipped and its
	// scenarios are emitted as ReuseFailed results.
	failErr atomic.Pointer[error]
}

// fail records the job's first failure; later failures are dropped.
func (j *job) fail(err error) {
	j.failErr.CompareAndSwap(nil, &err)
}

// failed returns the job's failure, or nil while it is healthy.
func (j *job) failed() error {
	if p := j.failErr.Load(); p != nil {
		return *p
	}
	return nil
}

// scaledTier is one proportional model hanging off a base job.
type scaledTier struct {
	model soil.Model
	scale float64
	asm   *bem.Assembler
	scens []int
}

// plan is the grouped, deduplicated work list of a sweep.
type plan struct {
	cfg     core.Config
	hmatrix bool      // Solver == SolverHMatrix: jobs are single units
	gprs    []float64 // resolved per-scenario GPR
	ids     []string  // resolved per-scenario ID
	jobs    []*job
	offsets []int // offsets[j] = first global work-unit index of jobs[j]
	total   int   // total work units across jobs
}

// depthsKey renders interface depths at full precision.
func depthsKey(depths []float64) string {
	var b strings.Builder
	for _, d := range depths {
		fmt.Fprintf(&b, "%.17g;", d)
	}
	return b.String()
}

// gridKeys canonicalizes scenario grids through their text serialization,
// memoized per pointer: two *grid.Grid values that serialize identically key
// identically, so duplicated candidate layouts collapse into one mesh group.
type gridKeys map[*grid.Grid]string

func (gk gridKeys) key(g *grid.Grid) (string, error) {
	if k, ok := gk[g]; ok {
		return k, nil
	}
	var b strings.Builder
	if err := grid.Write(&b, g); err != nil {
		return "", err
	}
	gk[g] = b.String()
	return b.String(), nil
}

// buildPlan groups scenarios into mesh groups and assembly jobs.
func buildPlan(g *grid.Grid, scenarios []Scenario, opt Options) (*plan, error) {
	cfg := opt.Config
	if cfg.GPR == 0 {
		cfg.GPR = 1
	}
	if cfg.GPR < 0 || math.IsNaN(cfg.GPR) || math.IsInf(cfg.GPR, 0) {
		return nil, fmt.Errorf("sweep: invalid default GPR %g", opt.Config.GPR)
	}
	p := &plan{
		cfg:     cfg,
		hmatrix: cfg.Solver == core.SolverHMatrix,
		gprs:    make([]float64, len(scenarios)),
		ids:     make([]string, len(scenarios)),
	}
	groups := map[string]*meshGroup{}
	jobsByKey := map[string]*job{}
	scaledByKey := map[string]*scaledTier{}
	gkeys := gridKeys{}

	for i, sc := range scenarios {
		if sc.Model == nil {
			return nil, fmt.Errorf("sweep: scenario %d: nil soil model", i)
		}
		sg := sc.Grid
		if sg == nil {
			sg = g
		}
		if sg == nil {
			return nil, fmt.Errorf("sweep: scenario %d: no grid (nil shared grid and no per-scenario override)", i)
		}
		gpr := sc.GPR
		if gpr == 0 {
			gpr = cfg.GPR
		}
		if gpr <= 0 || math.IsNaN(gpr) || math.IsInf(gpr, 0) {
			return nil, fmt.Errorf("sweep: scenario %d: invalid GPR %g", i, sc.GPR)
		}
		p.gprs[i] = gpr
		p.ids[i] = sc.ID
		if p.ids[i] == "" {
			p.ids[i] = fmt.Sprintf("s%d", i)
		}

		gkey, err := gkeys.key(sg)
		if err != nil {
			return nil, fmt.Errorf("sweep: scenario %d: %w", i, err)
		}
		mk := gkey + "\x01" + depthsKey(core.InterfaceDepths(sc.Model))
		grp, ok := groups[mk]
		if !ok {
			mesh, warnings, err := core.BuildMesh(sg, sc.Model, cfg)
			if err != nil {
				return nil, fmt.Errorf("sweep: scenario %d: %w", i, err)
			}
			geo, err := bem.NewGeometry(mesh, cfg.BEM)
			if err != nil {
				return nil, fmt.Errorf("sweep: scenario %d: %w", i, err)
			}
			grp = &meshGroup{mesh: mesh, warnings: warnings, geo: geo}
			groups[mk] = grp
		}

		jk := mk + "\x00" + soil.Canonical(sc.Model)
		if j, ok := jobsByKey[jk]; ok {
			j.scens = append(j.scens, i)
			continue
		}
		if st, ok := scaledByKey[jk]; ok {
			st.scens = append(st.scens, i)
			continue
		}
		if opt.AllowScaled {
			// Try to hang this model off an existing job of the same mesh
			// group as a proportional derivation.
			var attached bool
			for _, j := range p.jobs {
				if j.group != grp {
					continue
				}
				s, ok := soil.Proportional(j.model, sc.Model)
				//lint:ignore floatcmp scale exactly 1 means an identical model, which the dedup tier above already serves
				if !ok || s == 1 {
					continue
				}
				asm, err := bem.NewWithGeometry(grp.geo, sc.Model, cfg.BEM)
				if err != nil {
					return nil, fmt.Errorf("sweep: scenario %d: %w", i, err)
				}
				st := &scaledTier{model: sc.Model, scale: s, asm: asm, scens: []int{i}}
				j.scaled = append(j.scaled, st)
				scaledByKey[jk] = st
				attached = true
				break
			}
			if attached {
				continue
			}
		}
		asm, err := bem.NewWithGeometry(grp.geo, sc.Model, cfg.BEM)
		if err != nil {
			return nil, fmt.Errorf("sweep: scenario %d: %w", i, err)
		}
		j := &job{
			group: grp,
			model: sc.Model,
			asm:   asm,
			units: asm.NumColumns(),
			scens: []int{i},
		}
		if p.hmatrix {
			// The compressed pipeline builds and solves as one unit; the
			// pool width is split across concurrent jobs instead, inside
			// each job's own build loop (see Stream).
			j.units = 1
		} else {
			j.store = make([]float64, asm.StoreSize())
		}
		j.remaining.Store(int64(j.units))
		jobsByKey[jk] = j
		p.jobs = append(p.jobs, j)
	}

	p.offsets = make([]int, len(p.jobs))
	for j, jb := range p.jobs {
		p.offsets[j] = p.total
		p.total += jb.units
	}
	return p, nil
}

// locate maps a global column index to (job, local column).
func (p *plan) locate(i int) (*job, int) {
	j := sort.Search(len(p.offsets), func(k int) bool { return p.offsets[k] > i }) - 1
	return p.jobs[j], i - p.offsets[j]
}

// Run executes the sweep and returns one Result per scenario, in input
// order. Scenarios sharing work are deduplicated per the package's reuse
// tiers; see Stream for the incremental form.
func Run(ctx context.Context, g *grid.Grid, scenarios []Scenario, opt Options) ([]Result, error) {
	out := make([]Result, len(scenarios))
	err := Stream(ctx, g, scenarios, opt, func(r Result) error {
		out[r.Index] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Stream executes the sweep, calling emit for each scenario's result as soon
// as its job completes (completion order, not input order; scenarios of one
// job are emitted together, ascending). emit calls are serialized. If emit
// returns an error the sweep is cancelled and Stream returns that error.
// On ctx cancellation the workers stop at the next schedule chunk boundary
// and Stream returns ctx's error; results already emitted stay valid.
//
// g is the shared grid; a scenario with a non-nil Grid overrides it. g may be
// nil when every scenario carries its own grid (the design-synthesis multi-grid
// form).
//
// Faults are isolated per assembly job: a worker panic during one job's
// columns, or a solver/health failure of one job's system, emits ReuseFailed
// results (Err set, Res nil) for that job's scenarios while every other job
// completes normally. Stream itself returns nil in that case — per-scenario
// failures live on the Results, not the sweep.
func Stream(ctx context.Context, g *grid.Grid, scenarios []Scenario, opt Options, emit func(Result) error) error {
	if len(scenarios) == 0 {
		return nil
	}
	workers := opt.Config.BEM.Workers
	maxW := workers
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
	}
	p, err := buildPlan(g, scenarios, opt)
	if err != nil {
		return err
	}
	// Per-worker scratch arenas, shared across every job a worker touches:
	// scratch memory scales with the worker count, not workers × jobs, and a
	// worker hopping between same-shaped jobs reuses one warm scratch.
	arenas := make([]*bem.Arena, maxW+1)
	schedule := p.cfg.BEM.Schedule
	if schedule.IsZero() {
		schedule = sched.Schedule{Kind: sched.Dynamic, Chunk: 1}
	}

	ictx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	var mu sync.Mutex // serializes emissions and guards firstErr
	var firstErr error
	start := time.Now()

	// send delivers one result; callers must hold mu. An emit error cancels
	// the whole sweep (the consumer is gone — nothing left to isolate for).
	send := func(r Result) bool {
		if err := emit(r); err != nil {
			firstErr = fmt.Errorf("sweep: emit: %w", err)
			cancel(firstErr)
			return false
		}
		return true
	}

	// emitFailed delivers a failed job's scenarios as ReuseFailed results —
	// the per-job fault isolation path: one poisoned or panicking scenario
	// reports its error while the rest of the batch completes.
	emitFailed := func(j *job, jerr error) {
		wall := time.Since(start)
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil {
			return
		}
		one := func(si int) bool {
			return send(Result{Index: si, ID: p.ids[si], Reuse: ReuseFailed, Err: jerr, Wall: wall})
		}
		for _, si := range j.scens {
			if !one(si) {
				return
			}
		}
		for _, st := range j.scaled {
			for _, si := range st.scens {
				if !one(si) {
					return
				}
			}
		}
	}

	// finalize assembles, solves and emits a completed job. It runs inside
	// the worker that computed the job's last column while other workers
	// continue on the remaining jobs' columns. Numerical failures (solver,
	// health checks) fail this job alone. H-matrix jobs arrive here already
	// solved (the unit result is stored on the job); finalize only emits.
	finalize := func(j *job) {
		if ictx.Err() != nil {
			return
		}
		var (
			unit            *core.Result
			err             error
			solve, assembly time.Duration
		)
		if p.hmatrix {
			unit = j.hres
			j.hres = nil
			solve, assembly = unit.Timings.Solve, unit.Timings.MatrixGen
		} else {
			t0 := time.Now()
			rmat := j.asm.AssembleStore(j.store)
			j.store = nil
			cfgUnit := p.cfg
			cfgUnit.GPR = 1
			unit, err = core.CompleteAssembled(j.asm, j.model, rmat, sched.Stats{}, j.group.warnings, cfgUnit)
			if err != nil {
				emitFailed(j, err)
				return
			}
			solve = time.Since(t0)
			assembly = time.Duration(j.busyNanos.Load())
		}

		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil {
			return
		}
		for n, si := range j.scens {
			res := unit
			//lint:ignore floatcmp exact unit-GPR sentinel: the job solved at GPR 1, so only other values need the rescale clone
			if p.gprs[si] != 1 {
				res, err = unit.WithGPR(p.gprs[si])
				if err != nil {
					firstErr = err
					cancel(err)
					return
				}
			}
			r := Result{Index: si, ID: p.ids[si], Reuse: ReuseSolve, Res: res, Wall: time.Since(start)}
			if n == 0 {
				r.Reuse, r.Assembly, r.Solve = ReuseAssembled, assembly, solve
			}
			if !send(r) {
				return
			}
		}
		for _, st := range j.scaled {
			for _, si := range st.scens {
				res, err := core.ScaledResult(unit, st.model, st.asm, st.scale, p.gprs[si])
				if err != nil {
					firstErr = err
					cancel(err)
					return
				}
				if !send(Result{Index: si, ID: p.ids[si], Reuse: ReuseScaled, Res: res, Wall: time.Since(start)}) {
					return
				}
			}
		}
	}

	// computeColumn runs one column of one job with the panic contained to
	// that job: a panicking kernel (or injected fault) marks the job failed
	// instead of unwinding the shared loop, so sibling jobs keep assembling.
	computeColumn := func(j *job, local, w, global int) {
		defer func() {
			if v := recover(); v != nil {
				j.fail(&sched.PanicError{Value: v, Stack: debug.Stack(), Iteration: global, Worker: w})
			}
		}()
		// Largest column first within each job, matching the assembler's
		// own outer loop so late chunks are small.
		beta := j.asm.NumColumns() - 1 - local
		wi := w
		if wi >= len(arenas) {
			wi = len(arenas) - 1
		}
		if arenas[wi] == nil {
			arenas[wi] = &bem.Arena{}
		}
		t0 := time.Now()
		j.asm.ComputeColumn(beta, j.store, j.asm.ColumnScratchFromArena(arenas[wi]))
		if faultinject.Active() {
			faultinject.Fire(faultinject.SweepColumn, global, j.asm.ColumnRange(beta, j.store))
		}
		j.busyNanos.Add(int64(time.Since(t0)))
	}

	// runHMatrixJob runs one scenario's whole compressed pipeline as a single
	// work unit, with the same per-job fault containment as computeColumn: a
	// panic or a typed failure (poisoned ACA block, stalled CG, health check)
	// marks this job failed and leaves sibling jobs untouched. The pool width
	// is divided across the concurrent jobs so a multi-scenario sweep does not
	// oversubscribe workers² goroutines; the division cannot change results —
	// the compressed build and matvec are bit-identical across worker counts.
	runHMatrixJob := func(j *job, w, global int) {
		defer func() {
			if v := recover(); v != nil {
				j.fail(&sched.PanicError{Value: v, Stack: debug.Stack(), Iteration: global, Worker: w})
			}
		}()
		cfgUnit := p.cfg
		cfgUnit.GPR = 1
		inner := maxW / len(p.jobs)
		if inner < 1 {
			inner = 1
		}
		cfgUnit.BEM.Workers = inner
		res, err := core.CompleteHMatrix(ictx, j.asm, j.model, j.group.warnings, cfgUnit)
		if err != nil {
			if ictx.Err() == nil {
				j.fail(err)
			}
			return
		}
		j.hres = res
	}

	// completeJob dispatches a job whose last work unit just finished: failed
	// jobs emit error results, healthy ones assemble (dense) and emit.
	completeJob := func(j *job) {
		if err := j.failed(); err != nil {
			emitFailed(j, err)
			return
		}
		finalize(j)
	}

	_, loopErr := sched.ForStatsCtx(ictx, p.total, workers, schedule, func(i, w int) {
		j, local := p.locate(i)
		// Work units of an already-failed job are skipped (their output
		// would be discarded) but still counted, so the job reaches
		// completion and reports its scenarios.
		if j.failed() == nil {
			if p.hmatrix {
				runHMatrixJob(j, w, i)
			} else {
				computeColumn(j, local, w, i)
			}
		}
		if j.remaining.Add(-1) == 0 {
			completeJob(j)
		}
	})

	mu.Lock()
	err = firstErr
	mu.Unlock()
	if err != nil {
		return err
	}
	if loopErr != nil {
		return fmt.Errorf("sweep: %w", loopErr)
	}
	return nil
}
