package sweep

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"earthing/internal/core"
	"earthing/internal/faultinject"
	"earthing/internal/grid"
	"earthing/internal/hmatrix"
	"earthing/internal/linalg"
	"earthing/internal/sched"
	"earthing/internal/soil"
)

// chaosGrid is small so the chaos suites stay fast under -race.
func chaosGrid() *grid.Grid { return grid.RectMesh(0, 0, 10, 10, 2, 2, 0.6, 0.006) }

func chaosConfig() core.Config {
	cfg := testConfig(4)
	cfg.MaxElemLen = 4
	return cfg
}

// chaosScenarios builds n scenarios with pairwise distinct uniform models, so
// every scenario is its own assembly job.
func chaosScenarios(n int) []Scenario {
	scens := make([]Scenario, n)
	for i := range scens {
		scens[i] = Scenario{Model: soil.NewUniform(0.010 + 0.002*float64(i))}
	}
	return scens
}

// firstColumnOf returns the global interleaved column index of the first
// column of the job serving scenario scen — a deterministic fault target.
func firstColumnOf(t *testing.T, g *grid.Grid, scens []Scenario, opt Options, scen int) int {
	t.Helper()
	p, err := buildPlan(g, scens, opt)
	if err != nil {
		t.Fatal(err)
	}
	for ji, j := range p.jobs {
		for _, si := range j.scens {
			if si == scen {
				return p.offsets[ji]
			}
		}
	}
	t.Fatalf("scenario %d not found in any job", scen)
	return -1
}

// runChaosSweep runs the sweep and returns results indexed by scenario.
func runChaosSweep(t *testing.T, g *grid.Grid, scens []Scenario, opt Options) []Result {
	t.Helper()
	out, err := Run(context.Background(), g, scens, opt)
	if err != nil {
		t.Fatalf("sweep failed wholesale: %v", err)
	}
	return out
}

// assertIsolated checks the fault-isolation contract: exactly the scenarios
// in failed carry an Err, and every other scenario is bit-identical to its
// baseline counterpart.
func assertIsolated(t *testing.T, baseline, faulty []Result, failed map[int]bool) {
	t.Helper()
	for i, r := range faulty {
		if failed[i] {
			if r.Err == nil {
				t.Errorf("scenario %d: expected failure, got clean result", i)
			}
			if r.Res != nil {
				t.Errorf("scenario %d: failed result carries a non-nil Res", i)
			}
			if r.Reuse != ReuseFailed {
				t.Errorf("scenario %d: Reuse = %q, want %q", i, r.Reuse, ReuseFailed)
			}
			continue
		}
		if r.Err != nil {
			t.Errorf("scenario %d: unexpected Err %v", i, r.Err)
			continue
		}
		if r.Res.Req != baseline[i].Res.Req {
			t.Errorf("scenario %d: Req %v != baseline %v", i, r.Res.Req, baseline[i].Res.Req)
		}
		sameFloats(t, "sigma", r.Res.Sigma, baseline[i].Res.Sigma)
	}
}

// TestChaosSweepPanicIsolation: a panic injected into exactly one scenario's
// assembly columns fails that scenario alone — the other eight of nine
// complete and are bit-identical to a clean run.
func TestChaosSweepPanicIsolation(t *testing.T) {
	g := chaosGrid()
	opt := Options{Config: chaosConfig()}
	scens := chaosScenarios(9)
	const victim = 4

	baseline := runChaosSweep(t, g, scens, opt)
	for i, r := range baseline {
		if r.Err != nil {
			t.Fatalf("clean run: scenario %d failed: %v", i, r.Err)
		}
	}

	target := firstColumnOf(t, g, scens, opt, victim)
	defer faultinject.Set(faultinject.SweepColumn,
		faultinject.At(target, faultinject.Panic("injected sweep fault")))()

	faulty := runChaosSweep(t, g, scens, opt)
	assertIsolated(t, baseline, faulty, map[int]bool{victim: true})

	var pe *sched.PanicError
	if !errors.As(faulty[victim].Err, &pe) {
		t.Fatalf("victim Err = %v, want *sched.PanicError", faulty[victim].Err)
	}
	if pe.Value != "injected sweep fault" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "faultinject") {
		t.Errorf("captured stack does not reach the injection site:\n%s", pe.Stack)
	}
}

// TestChaosSweepNaNHealthIsolation: a NaN poisoned into one scenario's store
// is caught by the health checks at that scenario's solve — a typed
// *core.HealthError on its Result — while the rest of the batch is clean and
// bit-identical.
func TestChaosSweepNaNHealthIsolation(t *testing.T) {
	g := chaosGrid()
	cfg := chaosConfig()
	cfg.HealthCheck = true
	opt := Options{Config: cfg}
	scens := chaosScenarios(9)
	const victim = 6

	baseline := runChaosSweep(t, g, scens, opt)

	target := firstColumnOf(t, g, scens, opt, victim)
	defer faultinject.Set(faultinject.SweepColumn,
		faultinject.At(target, faultinject.PoisonNaN()))()

	faulty := runChaosSweep(t, g, scens, opt)
	assertIsolated(t, baseline, faulty, map[int]bool{victim: true})

	var he *core.HealthError
	if !errors.As(faulty[victim].Err, &he) {
		t.Fatalf("victim Err = %v, want *core.HealthError", faulty[victim].Err)
	}
	if he.Reason != core.HealthNonFiniteSystem {
		t.Errorf("Reason = %q, want %q", he.Reason, core.HealthNonFiniteSystem)
	}
}

// TestChaosSweepCholeskyPanelIsolation: a NaN poisoned into the first panel
// of the blocked factorization fails that scenario's solve with a typed
// ErrNotPositiveDefinite — the solver-stage counterpart of the
// assembly-column chaos cases — while sibling jobs complete bit-identically.
func TestChaosSweepCholeskyPanelIsolation(t *testing.T) {
	g := chaosGrid()
	cfg := chaosConfig()
	// One worker makes job completion (and thus factorization) order
	// deterministic: job 0 finalizes first and absorbs the Once fault.
	cfg.BEM.Workers = 1
	cfg.Solver = core.CholeskyBlocked
	opt := Options{Config: cfg}
	scens := chaosScenarios(5)

	baseline := runChaosSweep(t, g, scens, opt)
	for i, r := range baseline {
		if r.Err != nil {
			t.Fatalf("clean run: scenario %d failed: %v", i, r.Err)
		}
	}

	defer faultinject.Set(faultinject.CholeskyPanel,
		faultinject.Once(faultinject.PoisonNaN()))()

	faulty := runChaosSweep(t, g, scens, opt)
	assertIsolated(t, baseline, faulty, map[int]bool{0: true})
	if !errors.Is(faulty[0].Err, linalg.ErrNotPositiveDefinite) {
		t.Fatalf("victim Err = %v, want linalg.ErrNotPositiveDefinite", faulty[0].Err)
	}
}

// hmatrixChaosConfig selects the compressed solver with its dense fallback
// disabled (the chaos contract is a typed per-scenario failure, not silent
// degradation) at one worker, so job completion order is deterministic and a
// Once fault always lands on scenario 0's job.
func hmatrixChaosConfig() core.Config {
	cfg := testConfig(1)
	cfg.MaxElemLen = 3
	cfg.Solver = core.SolverHMatrix
	cfg.HMatrix = core.HMatrixConfig{LeafSize: 4, DenseFallbackN: -1}
	return cfg
}

// hmatrixChaosGrid is large enough that the cluster tree at leaf size 4
// yields admissible (ACA-compressed) blocks, so the injection sites fire.
func hmatrixChaosGrid() *grid.Grid { return grid.RectMesh(0, 0, 24, 24, 4, 4, 0.6, 0.006) }

// checkNoGoroutineLeak asserts the sweep left no workers behind (the
// compressed solve path spawns its own inner loops; a failed job must not
// strand them).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines grew from %d to %d after the chaos sweep", before, g)
	}
}

// TestChaosSweepHMatrixPoisonedACA: a NaN poisoned into the first ACA cross
// row fails exactly one compressed scenario with the typed
// hmatrix.ErrNonFinite build error (inside a *hmatrix.BuildError naming the
// block), while sibling scenarios complete bit-identically to a clean run
// and no worker goroutine is left behind.
func TestChaosSweepHMatrixPoisonedACA(t *testing.T) {
	g := hmatrixChaosGrid()
	opt := Options{Config: hmatrixChaosConfig()}
	scens := chaosScenarios(5)

	baseline := runChaosSweep(t, g, scens, opt)
	for i, r := range baseline {
		if r.Err != nil {
			t.Fatalf("clean run: scenario %d failed: %v", i, r.Err)
		}
		if r.Res.HMatrix.LowRank == 0 {
			t.Fatalf("scenario %d built no ACA blocks; the fault site would never fire", i)
		}
	}

	before := runtime.NumGoroutine()
	defer faultinject.Set(faultinject.HMatrixACABlock,
		faultinject.Once(faultinject.PoisonNaN()))()

	faulty := runChaosSweep(t, g, scens, opt)
	assertIsolated(t, baseline, faulty, map[int]bool{0: true})
	if !errors.Is(faulty[0].Err, hmatrix.ErrNonFinite) {
		t.Fatalf("victim Err = %v, want hmatrix.ErrNonFinite", faulty[0].Err)
	}
	var be *hmatrix.BuildError
	if !errors.As(faulty[0].Err, &be) {
		t.Fatalf("victim Err = %v, want *hmatrix.BuildError in the chain", faulty[0].Err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestChaosSweepHMatrixStalledCG: a NaN poisoned into the compressed
// operator's product vector breaks that scenario's CG recurrence with the
// typed linalg.ErrCGBreakdown (inside a *hmatrix.SolveError) — and with the
// dense fallback disabled the failure stays a failure — while sibling
// scenarios are bit-identical to the clean baseline.
func TestChaosSweepHMatrixStalledCG(t *testing.T) {
	g := hmatrixChaosGrid()
	opt := Options{Config: hmatrixChaosConfig()}
	scens := chaosScenarios(5)

	baseline := runChaosSweep(t, g, scens, opt)

	before := runtime.NumGoroutine()
	defer faultinject.Set(faultinject.HMatrixCGIter,
		faultinject.Once(faultinject.PoisonNaN()))()

	faulty := runChaosSweep(t, g, scens, opt)
	assertIsolated(t, baseline, faulty, map[int]bool{0: true})
	if !errors.Is(faulty[0].Err, linalg.ErrCGBreakdown) {
		t.Fatalf("victim Err = %v, want linalg.ErrCGBreakdown", faulty[0].Err)
	}
	var se *hmatrix.SolveError
	if !errors.As(faulty[0].Err, &se) {
		t.Fatalf("victim Err = %v, want *hmatrix.SolveError in the chain", faulty[0].Err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestChaosSweepSharedJobFailure: scenarios riding a failed job through the
// solve-reuse tier fail with it (they have no system of their own), while
// independent jobs are untouched.
func TestChaosSweepSharedJobFailure(t *testing.T) {
	g := chaosGrid()
	opt := Options{Config: chaosConfig()}
	scens := []Scenario{
		{Model: soil.NewUniform(0.010)},
		{Model: soil.NewUniform(0.020)}, // victim job
		{Model: soil.NewUniform(0.030)},
		{Model: soil.NewUniform(0.020), GPR: 25_000}, // solve-reuse on the victim job
	}

	baseline := runChaosSweep(t, g, scens, opt)

	target := firstColumnOf(t, g, scens, opt, 1)
	defer faultinject.Set(faultinject.SweepColumn,
		faultinject.At(target, faultinject.Panic("shared job fault")))()

	faulty := runChaosSweep(t, g, scens, opt)
	assertIsolated(t, baseline, faulty, map[int]bool{1: true, 3: true})
	if faulty[1].Err != faulty[3].Err {
		t.Error("scenarios of one failed job should share the same Err")
	}
}
