// Package optimize provides the derivative-free minimization used by the
// soil-parameter inversion (package wenner): a Nelder–Mead downhill simplex
// with adaptive coefficients and restart support, plus simple bound
// handling by coordinate transform.
//
// Layered-soil misfit surfaces are smooth but can be banana-shaped in
// (γ1, γ2, h); Nelder–Mead with a couple of restarts is the standard tool
// for this 2–5 parameter regime and needs no gradients of the forward
// model.
package optimize

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Options configures NelderMead. The zero value selects the defaults
// documented per field.
type Options struct {
	// MaxIter bounds total function evaluations (default 2000·dim).
	MaxIter int
	// TolF stops when the simplex function-value spread falls below
	// TolF·(1+|f_best|) (default 1e-10).
	TolF float64
	// TolX stops when the simplex diameter falls below TolX (default 1e-10).
	TolX float64
	// Scale is the initial simplex edge length per coordinate (default
	// 0.1·(1+|x0_i|)).
	Scale []float64
	// Restarts re-seeds a fresh simplex at the incumbent best point this
	// many times (default 1 restart).
	Restarts int
}

// Result reports a minimization outcome.
type Result struct {
	X         []float64
	F         float64
	Evals     int
	Converged bool
}

// ErrBadStart is returned when the objective is not finite at the start.
var ErrBadStart = errors.New("optimize: objective not finite at start point")

// NelderMead minimizes f starting from x0.
func NelderMead(f func([]float64) float64, x0 []float64, opt Options) (Result, error) {
	dim := len(x0)
	if dim == 0 {
		return Result{}, errors.New("optimize: empty start point")
	}
	if opt.MaxIter <= 0 {
		opt.MaxIter = 2000 * dim
	}
	if opt.TolF <= 0 {
		opt.TolF = 1e-10
	}
	if opt.TolX <= 0 {
		opt.TolX = 1e-10
	}
	if opt.Restarts < 0 {
		opt.Restarts = 0
	} else if opt.Restarts == 0 {
		opt.Restarts = 1
	}

	evals := 0
	eval := func(x []float64) float64 {
		evals++
		return f(x)
	}

	best := append([]float64(nil), x0...)
	fBest := eval(best)
	if math.IsNaN(fBest) || math.IsInf(fBest, 0) {
		return Result{}, fmt.Errorf("%w: f = %v", ErrBadStart, fBest)
	}

	converged := false
	for attempt := 0; attempt <= opt.Restarts; attempt++ {
		x, fx, ok := nmRun(eval, best, fBest, opt, &evals)
		if fx < fBest {
			best, fBest = x, fx
		}
		converged = ok
		if evals >= opt.MaxIter {
			break
		}
	}
	return Result{X: best, F: fBest, Evals: evals, Converged: converged}, nil
}

// nmRun performs one simplex descent from (x0, f0).
func nmRun(eval func([]float64) float64, x0 []float64, f0 float64, opt Options, evals *int) ([]float64, float64, bool) {
	dim := len(x0)
	// Adaptive coefficients (Gao & Han 2012) behave better in higher dims.
	alpha := 1.0
	beta := 1 + 2/float64(dim)
	gamma := 0.75 - 1/(2*float64(dim))
	delta := 1 - 1/float64(dim)

	type vertex struct {
		x []float64
		f float64
	}
	simplex := make([]vertex, dim+1)
	simplex[0] = vertex{append([]float64(nil), x0...), f0}
	for i := 0; i < dim; i++ {
		x := append([]float64(nil), x0...)
		h := 0.1 * (1 + math.Abs(x0[i]))
		if opt.Scale != nil && i < len(opt.Scale) && opt.Scale[i] > 0 {
			h = opt.Scale[i]
		}
		x[i] += h
		simplex[i+1] = vertex{x, eval(x)}
	}

	centroid := make([]float64, dim)
	xr := make([]float64, dim)
	xe := make([]float64, dim)
	xc := make([]float64, dim)

	for *evals < opt.MaxIter {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		fBest, fWorst := simplex[0].f, simplex[dim].f

		// Convergence: function spread and simplex diameter.
		if math.Abs(fWorst-fBest) <= opt.TolF*(1+math.Abs(fBest)) {
			diam := 0.0
			for i := 1; i <= dim; i++ {
				for j := 0; j < dim; j++ {
					diam = math.Max(diam, math.Abs(simplex[i].x[j]-simplex[0].x[j]))
				}
			}
			if diam <= opt.TolX*(1+vecNorm(simplex[0].x)) {
				return simplex[0].x, simplex[0].f, true
			}
		}

		// Centroid of all but the worst vertex.
		for j := range centroid {
			centroid[j] = 0
		}
		for i := 0; i < dim; i++ {
			for j := range centroid {
				centroid[j] += simplex[i].x[j]
			}
		}
		for j := range centroid {
			centroid[j] /= float64(dim)
		}

		// Reflection.
		for j := range xr {
			xr[j] = centroid[j] + alpha*(centroid[j]-simplex[dim].x[j])
		}
		fr := eval(xr)
		switch {
		case fr < simplex[0].f:
			// Expansion.
			for j := range xe {
				xe[j] = centroid[j] + beta*(xr[j]-centroid[j])
			}
			if fe := eval(xe); fe < fr {
				copy(simplex[dim].x, xe)
				simplex[dim].f = fe
			} else {
				copy(simplex[dim].x, xr)
				simplex[dim].f = fr
			}
		case fr < simplex[dim-1].f:
			copy(simplex[dim].x, xr)
			simplex[dim].f = fr
		default:
			// Contraction (outside if the reflection improved on the worst,
			// inside otherwise).
			if fr < simplex[dim].f {
				for j := range xc {
					xc[j] = centroid[j] + gamma*(xr[j]-centroid[j])
				}
			} else {
				for j := range xc {
					xc[j] = centroid[j] - gamma*(centroid[j]-simplex[dim].x[j])
				}
			}
			if fc := eval(xc); fc < math.Min(fr, simplex[dim].f) {
				copy(simplex[dim].x, xc)
				simplex[dim].f = fc
			} else {
				// Shrink towards the best vertex.
				for i := 1; i <= dim; i++ {
					for j := range simplex[i].x {
						simplex[i].x[j] = simplex[0].x[j] + delta*(simplex[i].x[j]-simplex[0].x[j])
					}
					simplex[i].f = eval(simplex[i].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return simplex[0].x, simplex[0].f, false
}

func vecNorm(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Bounded wraps an objective defined on box [lo, hi] into an unconstrained
// one via the sin² transform x_i = lo_i + (hi_i − lo_i)·sin²(u_i): the
// returned function accepts unconstrained u, and FromUnconstrained maps a
// solution back into the box. This is how the soil inversion keeps
// conductivities and thicknesses positive.
func Bounded(f func([]float64) float64, lo, hi []float64) (wrapped func([]float64) float64, fromU func([]float64) []float64, toU func([]float64) []float64) {
	if len(lo) != len(hi) {
		panic("optimize: bound length mismatch")
	}
	fromU = func(u []float64) []float64 {
		x := make([]float64, len(u))
		for i := range u {
			s := math.Sin(u[i])
			x[i] = lo[i] + (hi[i]-lo[i])*s*s
		}
		return x
	}
	toU = func(x []float64) []float64 {
		u := make([]float64, len(x))
		for i := range x {
			t := (x[i] - lo[i]) / (hi[i] - lo[i])
			t = math.Min(1, math.Max(0, t))
			u[i] = math.Asin(math.Sqrt(t))
		}
		return u
	}
	wrapped = func(u []float64) float64 { return f(fromU(u)) }
	return wrapped, fromU, toU
}
