package optimize

import (
	"math"
	"testing"
)

func TestQuadraticBowl(t *testing.T) {
	f := func(x []float64) float64 {
		return (x[0]-3)*(x[0]-3) + 2*(x[1]+1)*(x[1]+1)
	}
	res, err := NelderMead(f, []float64{0, 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("did not converge")
	}
	if math.Abs(res.X[0]-3) > 1e-5 || math.Abs(res.X[1]+1) > 1e-5 {
		t.Errorf("minimum at %v", res.X)
	}
}

func TestRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res, err := NelderMead(f, []float64{-1.2, 1}, Options{MaxIter: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-4 || math.Abs(res.X[1]-1) > 1e-4 {
		t.Errorf("Rosenbrock minimum at %v (f=%v, evals=%d)", res.X, res.F, res.Evals)
	}
}

func TestHigherDimensional(t *testing.T) {
	// 5-D shifted sphere.
	f := func(x []float64) float64 {
		var s float64
		for i, v := range x {
			d := v - float64(i)
			s += d * d
		}
		return s
	}
	res, err := NelderMead(f, make([]float64, 5), Options{MaxIter: 50000})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.X {
		if math.Abs(v-float64(i)) > 1e-3 {
			t.Fatalf("x = %v", res.X)
		}
	}
}

func TestRejectsNaNStart(t *testing.T) {
	f := func(x []float64) float64 { return math.NaN() }
	if _, err := NelderMead(f, []float64{1}, Options{}); err == nil {
		t.Error("NaN objective accepted")
	}
	if _, err := NelderMead(func([]float64) float64 { return 0 }, nil, Options{}); err == nil {
		t.Error("empty start accepted")
	}
}

func TestEvalBudgetRespected(t *testing.T) {
	count := 0
	f := func(x []float64) float64 {
		count++
		return x[0] * x[0]
	}
	res, err := NelderMead(f, []float64{100}, Options{MaxIter: 50})
	if err != nil {
		t.Fatal(err)
	}
	// Budget may be slightly exceeded by an in-flight simplex operation.
	if count > 70 {
		t.Errorf("evals = %d with budget 50", count)
	}
	if res.Evals != count {
		t.Errorf("Evals %d ≠ count %d", res.Evals, count)
	}
}

func TestCustomScale(t *testing.T) {
	// Narrow valley along x1: a matched initial scale must still find it.
	f := func(x []float64) float64 {
		return x[0]*x[0] + 1e6*x[1]*x[1]
	}
	res, err := NelderMead(f, []float64{5, 0.001}, Options{Scale: []float64{1, 1e-4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.F > 1e-8 {
		t.Errorf("f = %v at %v", res.F, res.X)
	}
}

func TestBoundedTransform(t *testing.T) {
	lo := []float64{0, 10}
	hi := []float64{1, 20}
	inner := func(x []float64) float64 {
		if x[0] < lo[0]-1e-12 || x[0] > hi[0]+1e-12 || x[1] < lo[1]-1e-12 || x[1] > hi[1]+1e-12 {
			t.Fatalf("bounds violated: %v", x)
		}
		return (x[0]-0.3)*(x[0]-0.3) + (x[1]-17)*(x[1]-17)
	}
	wrapped, fromU, toU := Bounded(inner, lo, hi)
	res, err := NelderMead(wrapped, toU([]float64{0.5, 15}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := fromU(res.X)
	if math.Abs(x[0]-0.3) > 1e-4 || math.Abs(x[1]-17) > 1e-3 {
		t.Errorf("bounded minimum at %v", x)
	}
	// Round trip of the transform.
	u := toU([]float64{0.25, 12.5})
	back := fromU(u)
	if math.Abs(back[0]-0.25) > 1e-12 || math.Abs(back[1]-12.5) > 1e-12 {
		t.Errorf("transform round trip: %v", back)
	}
}

func TestBoundedTargetsOnBoundary(t *testing.T) {
	lo, hi := []float64{0}, []float64{1}
	f := func(x []float64) float64 { return x[0] } // minimum at the lower bound
	wrapped, fromU, toU := Bounded(f, lo, hi)
	res, err := NelderMead(wrapped, toU([]float64{0.9}), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if x := fromU(res.X); x[0] > 1e-6 {
		t.Errorf("boundary minimum missed: %v", x)
	}
}
