// Package fsio holds small file-output helpers shared by the command-line
// tools and the experiment writers.
package fsio

import (
	"io"
	"os"
)

// WriteFile creates path, streams write's output into it, and returns the
// first error among create, write and close. Checking the Close error is
// the point of the helper: on buffered filesystems a short write may only
// surface when the descriptor closes, and a bare "defer f.Close()" would
// silently drop it (the errdrop analyzer flags exactly that pattern).
func WriteFile(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
