package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRingDeterministic: two rings built from the same member set (in any
// order) route every key identically — the property that lets each node
// build its own ring from its own flags.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]Member{{ID: "n1"}, {ID: "n2"}, {ID: "n3"}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]Member{{ID: "n3"}, {ID: "n1"}, {ID: "n2"}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("scenario-%x", i*2654435761)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: owner %q vs %q across build orders", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingDistribution: with vnodes, ownership spreads across all members —
// no node is starved or handed everything.
func TestRingDistribution(t *testing.T) {
	r, err := NewRing([]Member{{ID: "n1"}, {ID: "n2"}, {ID: "n3"}, {ID: "n4"}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for id, c := range counts {
		if c < n/16 || c > n/2 {
			t.Errorf("member %s owns %d of %d keys: distribution badly skewed", id, c, n)
		}
	}
	if len(counts) != 4 {
		t.Errorf("only %d members received keys, want all 4", len(counts))
	}
}

// TestRingStabilityUnderMembershipChange: removing one of four members must
// move only the departed member's keys (consistent hashing's whole point).
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	full, err := NewRing([]Member{{ID: "n1"}, {ID: "n2"}, {ID: "n3"}, {ID: "n4"}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing([]Member{{ID: "n1"}, {ID: "n2"}, {ID: "n3"}}, 64)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	const n = 2000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := full.Owner(key), reduced.Owner(key)
		if before == "n4" {
			continue // n4's keys must move somewhere
		}
		if before != after {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys not owned by the departed member changed owner; want 0", moved)
	}
}

// TestRingValidation: empty sets, empty IDs and duplicates are rejected.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRing([]Member{{ID: ""}}, 0); err == nil {
		t.Error("empty member ID accepted")
	}
	if _, err := NewRing([]Member{{ID: "a"}, {ID: "a"}}, 0); err == nil {
		t.Error("duplicate member ID accepted")
	}
}

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

// TestBreakerLifecycle walks the full state machine: threshold failures
// open, cooldown gates the probe, probe success closes, probe failure
// re-opens, and Trip quarantines instantly.
func TestBreakerLifecycle(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	b := NewBreaker(3, time.Second, clock.now)

	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.Failure()
	b.Failure()
	if !b.Allow() {
		t.Fatal("breaker opened before threshold")
	}
	b.Failure()
	if b.Allow() || b.State() != BreakerOpen {
		t.Fatal("breaker not open after threshold failures")
	}
	if b.ProbeDue() {
		t.Fatal("probe due before cooldown elapsed")
	}
	clock.advance(time.Second + time.Millisecond)
	if !b.ProbeDue() {
		t.Fatal("probe not due after cooldown")
	}
	if b.State() != BreakerHalfOpen || b.Allow() {
		t.Fatal("ProbeDue did not claim the half-open slot (or request path allowed)")
	}
	if b.ProbeDue() {
		t.Fatal("second concurrent probe allowed")
	}
	// Probe fails: back to quarantine for a fresh window.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	clock.advance(time.Second + time.Millisecond)
	if !b.ProbeDue() {
		t.Fatal("second probe not due")
	}
	b.Success()
	if !b.Allow() || b.State() != BreakerClosed {
		t.Fatal("successful probe did not close")
	}

	// A lying peer is quarantined on the spot.
	b.Trip()
	if b.Allow() || b.State() != BreakerOpen {
		t.Fatal("Trip did not quarantine instantly")
	}
}

// TestBreakerSuccessResetsFailureStreak: intermittent failures below the
// threshold never open a breaker as long as successes land between them.
func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(2, time.Second, nil)
	for i := 0; i < 10; i++ {
		b.Failure()
		b.Success()
	}
	if !b.Allow() {
		t.Error("breaker opened despite successes resetting the streak")
	}
}

// TestClientFetchEntry covers the client's three dispositions: 200 with
// bytes, 404 as the typed clean miss, and any other status as an error.
func TestClientFetchEntry(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/internal/v1/entry" {
			// Ping hits /internal/v1/ping; this server plays a peer that
			// does not implement it.
			http.Error(w, "boom", http.StatusInternalServerError)
			return
		}
		switch r.URL.Query().Get("key") {
		case "present":
			w.Write([]byte("frame-bytes"))
		case "missing":
			http.NotFound(w, r)
		default:
			http.Error(w, "boom", http.StatusInternalServerError)
		}
	}))
	defer ts.Close()

	var c Client
	data, err := c.FetchEntry(context.Background(), ts.URL, "present", 1)
	if err != nil || string(data) != "frame-bytes" {
		t.Fatalf("FetchEntry(present) = %q, %v", data, err)
	}
	if _, err := c.FetchEntry(context.Background(), ts.URL, "missing", 1); err != ErrNotFound {
		t.Fatalf("FetchEntry(missing) = %v, want ErrNotFound", err)
	}
	if _, err := c.FetchEntry(context.Background(), ts.URL, "broken", 1); err == nil {
		t.Fatal("FetchEntry on 500 did not error")
	}
	if err := c.Ping(context.Background(), ts.URL, time.Second); err == nil {
		t.Fatal("Ping on a server without /internal/v1/ping did not error")
	}
}

// TestClientFetchHonorsContext: a cancelled context aborts the attempt.
func TestClientFetchHonorsContext(t *testing.T) {
	blocked := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-blocked
	}))
	defer ts.Close()
	defer close(blocked)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	var c Client
	if _, err := c.FetchEntry(ctx, ts.URL, "any", 1); err == nil {
		t.Fatal("fetch against a hung peer returned without error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("fetch took %v; per-attempt deadline not honored", elapsed)
	}
}
