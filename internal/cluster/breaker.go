package cluster

import (
	"sync"
	"time"
)

// BreakerState is the classic three-state circuit-breaker lifecycle.
type BreakerState int

const (
	// BreakerClosed: the peer is trusted; requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the peer is quarantined; requests skip it entirely and
	// fall straight to the local solve. Only the half-open probe may test it.
	BreakerOpen
	// BreakerHalfOpen: one probe is in flight; its outcome decides between
	// Closed and a fresh quarantine window.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// Breaker is a per-peer circuit breaker. Consecutive failures open it;
// a poisoned (checksum-failing) response trips it instantly via Trip; after
// Cooldown a single half-open probe — issued by the fleet's prober
// goroutine, not the request path — decides whether to close it again.
// The zero value is not usable; call NewBreaker.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	failures  int
	openUntil time.Time

	threshold int
	cooldown  time.Duration
	now       func() time.Time
}

// NewBreaker builds a breaker opening after threshold consecutive failures
// (≤ 0 selects 3) and cooling down for cooldown before the first probe
// (≤ 0 selects 2 s). now overrides the clock for tests (nil = time.Now).
func NewBreaker(threshold int, cooldown time.Duration, now func() time.Time) *Breaker {
	if threshold <= 0 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = 2 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// Allow reports whether the request path may use this peer: only when the
// breaker is closed. Open and half-open peers are routed around — recovery
// belongs to the probe, so request latency never rides on a sick peer.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == BreakerClosed
}

// ProbeDue reports whether a half-open probe should be sent now, and if so
// transitions Open → HalfOpen (claiming the single probe slot).
func (b *Breaker) ProbeDue() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen || b.now().Before(b.openUntil) {
		return false
	}
	b.state = BreakerHalfOpen
	return true
}

// Success records a working interaction: any state closes.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
}

// Failure records a failed interaction: enough consecutive ones (or any
// failure while half-open) open the breaker for a fresh cooldown window.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.open()
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.open()
		}
	}
}

// Trip quarantines the peer immediately, bypassing the threshold — the
// response for a poisoned payload that failed checksum verification. A peer
// that lies once is not owed two more chances.
func (b *Breaker) Trip() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.open()
}

// open transitions to Open; callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.failures = 0
	b.openUntil = b.now().Add(b.cooldown)
}

// State reports the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
