package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"time"

	"earthing/internal/faultinject"
)

// ErrNotFound reports a clean peer miss: the owner is healthy but has not
// solved this scenario either. Not a peer failure — no retry, no breaker
// penalty, straight to the local solve.
var ErrNotFound = errors.New("cluster: entry not found on peer")

// maxEntryBytes bounds a peer response; anything larger than the store's
// own frame limits is garbage by construction.
const maxEntryBytes = 512 << 20

// Client fetches store records from peer nodes over groundd's internal API.
// The zero value uses http.DefaultClient; fleets configure their own
// transport timeouts via HTTP.
type Client struct {
	// HTTP is the underlying client (nil = http.DefaultClient). Per-attempt
	// deadlines arrive via the context, so no Timeout is needed here.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// FetchEntry performs ONE attempt to fetch the encoded record for key from
// the peer at baseURL, bounded by ctx. attempt (1-based) labels the fault
// injection firing so chaos tests can break exactly the attempt they mean
// to. The returned bytes are the raw frame as the owner stored it — the
// caller decodes and checksum-verifies before trusting a byte of it.
func (c *Client) FetchEntry(ctx context.Context, baseURL, key string, attempt int) ([]byte, error) {
	faultinject.Fire(faultinject.ClusterPeerFetch, attempt, nil)
	u := baseURL + "/internal/v1/entry?key=" + url.QueryEscape(key)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s: %w", key, err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s: %w", key, err)
	}
	//lint:ignore errdrop the frame is checksum-verified after reading; a lossy Close cannot corrupt it undetected
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		//lint:ignore errdrop the miss disposition is decided; the body is empty either way
		io.Copy(io.Discard, resp.Body)
		return nil, ErrNotFound
	default:
		//lint:ignore errdrop the error disposition is decided by the status alone
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: fetch %s: peer answered %s", key, resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxEntryBytes+1))
	if err != nil {
		return nil, fmt.Errorf("cluster: fetch %s: %w", key, err)
	}
	if len(data) > maxEntryBytes {
		return nil, fmt.Errorf("cluster: fetch %s: response exceeds %d bytes", key, maxEntryBytes)
	}
	return data, nil
}

// Ping probes a peer's internal API liveness (the half-open breaker probe).
// Any 200 within the deadline counts as healthy.
func (c *Client) Ping(ctx context.Context, baseURL string, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/internal/v1/ping", nil)
	if err != nil {
		return fmt.Errorf("cluster: ping: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("cluster: ping: %w", err)
	}
	//lint:ignore errdrop only the status decides liveness
	defer resp.Body.Close()
	//lint:ignore errdrop only the status decides liveness
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: ping: peer answered %s", resp.Status)
	}
	return nil
}
