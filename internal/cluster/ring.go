// Package cluster is groundd's fleet substrate: a consistent-hash ring that
// routes content-addressed scenario keys to owner nodes, a per-peer circuit
// breaker that quarantines dead or lying peers, and a small HTTP client that
// fetches store records from an owner under per-attempt timeouts with one
// jittered-backoff retry.
//
// Everything here is mechanism; policy (the degradation ladder peer-hit →
// retry → local-solve) lives in internal/server, which composes these pieces
// so a dead, slow or poisoned peer costs bounded latency, never an error.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Member is one node of the fleet: a stable ID (the ring hashes IDs, so
// routing survives URL changes) and the base URL peers reach it at. The
// local node lists itself with its own ID; its URL may be empty.
type Member struct {
	ID  string
	URL string
}

// Ring is an immutable consistent-hash ring over the fleet membership.
// Every node must build its ring from the same member-ID set (URLs may
// differ per viewpoint) or keys will route inconsistently — harmless for
// correctness here (a mis-route is just a cache miss) but bad for hit rate.
type Ring struct {
	points []ringPoint
	vnodes int
}

type ringPoint struct {
	hash uint64
	id   string
}

// NewRing builds a ring with vnodes virtual points per member (≤ 0 selects
// the default 64). Duplicate or empty member IDs are rejected.
func NewRing(members []Member, vnodes int) (*Ring, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one member")
	}
	if vnodes <= 0 {
		vnodes = 64
	}
	seen := make(map[string]bool, len(members))
	r := &Ring{vnodes: vnodes, points: make([]ringPoint, 0, len(members)*vnodes)}
	for _, m := range members {
		if m.ID == "" {
			return nil, fmt.Errorf("cluster: member with empty ID")
		}
		if seen[m.ID] {
			return nil, fmt.Errorf("cluster: duplicate member ID %q", m.ID)
		}
		seen[m.ID] = true
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", m.ID, v)), id: m.ID})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (astronomically rare with 64-bit FNV) break on ID so
		// every node sorts identically.
		return r.points[i].id < r.points[j].id
	})
	return r, nil
}

// Owner returns the member ID owning key: the first ring point at or after
// the key's hash, wrapping at the top. Deterministic across processes.
func (r *Ring) Owner(key string) string {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].id
}

// hash64 is FNV-1a followed by a splitmix64 finalizer. FNV alone clusters
// badly on short, similar strings like "n2#17", which starves members of
// ring arc; the finalizer spreads those raw hashes uniformly while staying
// stdlib-only and stable across releases.
func hash64(s string) uint64 {
	h := fnv.New64a()
	//lint:ignore errdrop writing to a hash.Hash never fails
	h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}
