package wenner

import (
	"fmt"
	"math"

	"earthing/internal/optimize"
	"earthing/internal/soil"
)

// Fit is the outcome of a two-layer inversion.
type Fit struct {
	// Rho1, Rho2 are the fitted layer resistivities (Ω·m); H the top-layer
	// thickness (m).
	Rho1, Rho2, H float64
	// RMSLog is the root-mean-square misfit of log(ρ_a), the scale-free
	// quality measure (≈ relative error).
	RMSLog float64
	// Evals counts forward-model evaluations spent.
	Evals int
}

// Model returns the fitted two-layer soil model in conductivity form.
func (f Fit) Model() *soil.TwoLayer {
	return soil.NewTwoLayer(1/f.Rho1, 1/f.Rho2, f.H)
}

// String summarises the fit.
func (f Fit) String() string {
	return fmt.Sprintf("two-layer fit: ρ1 = %.1f Ω·m, ρ2 = %.1f Ω·m, h = %.2f m (RMS log misfit %.4f)",
		f.Rho1, f.Rho2, f.H, f.RMSLog)
}

// InvertOptions bounds the two-layer parameter search. The zero value
// selects wide engineering defaults.
type InvertOptions struct {
	RhoMin, RhoMax float64 // resistivity bounds, Ω·m (default 0.5 .. 20000)
	HMin, HMax     float64 // thickness bounds, m (default 0.1 .. 0.5·max spacing)
	MaxEvals       int     // forward-model evaluation budget (default 30000)
}

func (o InvertOptions) withDefaults(maxSpacing float64) InvertOptions {
	if o.RhoMin <= 0 {
		o.RhoMin = 0.5
	}
	if o.RhoMax <= o.RhoMin {
		o.RhoMax = 20_000
	}
	if o.HMin <= 0 {
		o.HMin = 0.1
	}
	if o.HMax <= o.HMin {
		o.HMax = 0.5 * maxSpacing
		if o.HMax <= o.HMin {
			o.HMax = o.HMin * 10
		}
	}
	if o.MaxEvals <= 0 {
		o.MaxEvals = 30_000
	}
	return o
}

// InvertTwoLayer fits ρ1, ρ2, h of a two-layer soil to Wenner measurements
// by minimizing the RMS log-misfit with Nelder–Mead from several starting
// points. The closed-form forward series keeps each residual evaluation
// cheap, so a full inversion takes milliseconds.
func InvertTwoLayer(data []Measurement, opt InvertOptions) (Fit, error) {
	if err := Validate(data); err != nil {
		return Fit{}, err
	}
	maxA := 0.0
	for _, d := range data {
		maxA = math.Max(maxA, d.Spacing)
	}
	opt = opt.withDefaults(maxA)

	misfit := func(x []float64) float64 {
		rho1, rho2, h := x[0], x[1], x[2]
		var ss float64
		for _, d := range data {
			model := ApparentResistivityTwoLayerSeries(rho1, rho2, h, d.Spacing, 64)
			if model <= 0 {
				return math.Inf(1)
			}
			r := math.Log(model / d.RhoA)
			ss += r * r
		}
		return ss / float64(len(data))
	}

	lo := []float64{opt.RhoMin, opt.RhoMin, opt.HMin}
	hi := []float64{opt.RhoMax, opt.RhoMax, opt.HMax}
	wrapped, fromU, toU := optimize.Bounded(misfit, lo, hi)

	// Multi-start: the asymptotes anchor ρ1 (small spacings) and ρ2 (large
	// spacings); try both layer orderings and two thicknesses.
	rhoSmall := data[0].RhoA
	rhoLarge := data[len(data)-1].RhoA
	clamp := func(v, a, b float64) float64 { return math.Min(b, math.Max(a, v)) }
	starts := [][]float64{
		{clamp(rhoSmall, lo[0], hi[0]), clamp(rhoLarge, lo[1], hi[1]), clamp(1, lo[2], hi[2])},
		{clamp(rhoSmall, lo[0], hi[0]), clamp(rhoLarge, lo[1], hi[1]), clamp(0.3*maxA, lo[2], hi[2])},
		{clamp(rhoLarge, lo[0], hi[0]), clamp(rhoSmall, lo[1], hi[1]), clamp(1, lo[2], hi[2])},
		{clamp(math.Sqrt(rhoSmall*rhoLarge), lo[0], hi[0]), clamp(math.Sqrt(rhoSmall*rhoLarge), lo[1], hi[1]), clamp(0.1*maxA, lo[2], hi[2])},
	}

	best := Fit{RMSLog: math.Inf(1)}
	totalEvals := 0
	for _, s := range starts {
		res, err := optimize.NelderMead(wrapped, toU(s), optimize.Options{
			MaxIter: opt.MaxEvals / len(starts),
			TolF:    1e-14,
			TolX:    1e-10,
		})
		if err != nil {
			continue
		}
		totalEvals += res.Evals
		if rms := math.Sqrt(res.F); rms < best.RMSLog {
			x := fromU(res.X)
			best = Fit{Rho1: x[0], Rho2: x[1], H: x[2], RMSLog: rms}
		}
	}
	best.Evals = totalEvals
	if math.IsInf(best.RMSLog, 1) {
		return Fit{}, fmt.Errorf("wenner: inversion failed from all starting points")
	}
	return best, nil
}

// FitUniform returns the best uniform-soil resistivity (the geometric mean
// of the readings, the log-misfit minimizer) and its RMS log-misfit — the
// baseline that tells whether a two-layer model is warranted.
func FitUniform(data []Measurement) (rho float64, rmsLog float64, err error) {
	if err := Validate(data); err != nil {
		return 0, 0, err
	}
	var sum float64
	for _, d := range data {
		sum += math.Log(d.RhoA)
	}
	mean := sum / float64(len(data))
	var ss float64
	for _, d := range data {
		r := math.Log(d.RhoA) - mean
		ss += r * r
	}
	return math.Exp(mean), math.Sqrt(ss / float64(len(data))), nil
}
