package wenner

import (
	"math"
	"math/rand"
	"testing"

	"earthing/internal/soil"
)

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

func TestApparentResistivityUniform(t *testing.T) {
	// Over uniform soil the Wenner reading is the true resistivity at every
	// spacing.
	for _, rho := range []float64{10, 62.5, 400} {
		m := soil.NewUniform(1 / rho)
		for _, a := range []float64{0.5, 2, 10, 50} {
			got := ApparentResistivity(m, a)
			if relDiff(got, rho) > 1e-9 {
				t.Errorf("rho=%v a=%v: apparent %v", rho, a, got)
			}
		}
	}
}

func TestApparentResistivityTwoLayerAsymptotes(t *testing.T) {
	// Small spacings sample the top layer, large ones the bottom.
	rho1, rho2, h := 200.0, 50.0, 2.0
	m := soil.NewTwoLayer(1/rho1, 1/rho2, h)
	small := ApparentResistivity(m, 0.05)
	large := ApparentResistivity(m, 500)
	if relDiff(small, rho1) > 0.02 {
		t.Errorf("small-spacing asymptote %v, want %v", small, rho1)
	}
	if relDiff(large, rho2) > 0.05 {
		t.Errorf("large-spacing asymptote %v, want %v", large, rho2)
	}
	// Monotone transition for a two-layer descending profile.
	prev := small
	for _, a := range []float64{0.2, 0.5, 1, 2, 5, 10, 30, 100} {
		cur := ApparentResistivity(m, a)
		if cur > prev+1e-9 {
			t.Errorf("transition not monotone at a=%v: %v -> %v", a, prev, cur)
		}
		prev = cur
	}
}

// TestForwardModelsAgree cross-validates the kernel-based forward model
// against the classical Tagg series.
func TestForwardModelsAgree(t *testing.T) {
	cases := []struct{ rho1, rho2, h float64 }{
		{200, 50, 2},
		{50, 200, 1},
		{62.5, 62.5, 3}, // degenerate: uniform
		{400, 40, 0.7},  // strong contrast, K ≈ −0.82
		{30, 3000, 5},   // strong contrast, K ≈ +0.98 (slow series)
	}
	for _, c := range cases {
		m := soil.NewTwoLayer(1/c.rho1, 1/c.rho2, c.h)
		m.Control = soil.SeriesControl{Tol: 1e-12, MaxGroups: 5000}
		for _, a := range []float64{0.5, 1, 3, 10, 40} {
			kernel := ApparentResistivity(m, a)
			series := ApparentResistivityTwoLayerSeries(c.rho1, c.rho2, c.h, a, 5000)
			if relDiff(kernel, series) > 1e-6 {
				t.Errorf("ρ1=%v ρ2=%v h=%v a=%v: kernel %v vs series %v",
					c.rho1, c.rho2, c.h, a, kernel, series)
			}
		}
	}
}

func TestSchlumbergerUniform(t *testing.T) {
	// Over uniform soil the Schlumberger reading equals the true
	// resistivity for any electrode geometry.
	m := soil.NewUniform(1.0 / 80)
	for _, c := range []struct{ L, l float64 }{{5, 1}, {20, 2}, {50, 0.5}} {
		got := ApparentResistivitySchlumberger(m, c.L, c.l)
		if relDiff(got, 80) > 1e-9 {
			t.Errorf("L=%v l=%v: %v want 80", c.L, c.l, got)
		}
	}
}

func TestSchlumbergerMatchesWennerAsymptotes(t *testing.T) {
	// Both arrays sample the same earth: over a layered soil their
	// asymptotes agree (ρ1 at small spread, ρ2 at large spread).
	m := soil.NewTwoLayer(1.0/200, 1.0/50, 2.0)
	small := ApparentResistivitySchlumberger(m, 0.2, 0.05)
	large := ApparentResistivitySchlumberger(m, 400, 10)
	if relDiff(small, 200) > 0.03 {
		t.Errorf("small-spread asymptote %v, want 200", small)
	}
	if relDiff(large, 50) > 0.05 {
		t.Errorf("large-spread asymptote %v, want 50", large)
	}
	// Mid-range: the two arrays read similar (not identical) values.
	w := ApparentResistivity(m, 3)
	s := ApparentResistivitySchlumberger(m, 4.5, 1.5) // same outer span as Wenner a=3
	if relDiff(w, s) > 0.15 {
		t.Errorf("arrays diverge: Wenner %v vs Schlumberger %v", w, s)
	}
}

func TestSchlumbergerRejectsBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for l ≥ L")
		}
	}()
	ApparentResistivitySchlumberger(soil.NewUniform(0.01), 1, 2)
}

func TestLogSpacings(t *testing.T) {
	s := LogSpacings(0.5, 50, 11)
	if len(s) != 11 || s[0] != 0.5 || relDiff(s[10], 50) > 1e-12 {
		t.Fatalf("spacings = %v", s)
	}
	// Constant ratio.
	r := s[1] / s[0]
	for i := 1; i+1 < len(s); i++ {
		if relDiff(s[i+1]/s[i], r) > 1e-9 {
			t.Fatal("not logarithmically spaced")
		}
	}
}

func TestSoundAndValidate(t *testing.T) {
	m := soil.NewTwoLayer(1.0/200, 1.0/50, 2)
	r := rand.New(rand.NewSource(1))
	data := Sound(m, LogSpacings(0.5, 50, 10), 0.05, r.NormFloat64)
	if err := Validate(data); err != nil {
		t.Fatal(err)
	}
	if err := Validate(data[:2]); err == nil {
		t.Error("two points accepted")
	}
	bad := []Measurement{{1, 100}, {2, -5}, {3, 80}}
	if err := Validate(bad); err == nil {
		t.Error("negative resistivity accepted")
	}
	// Noiseless sound matches the forward model exactly.
	clean := Sound(m, []float64{2}, 0, nil)
	if relDiff(clean[0].RhoA, ApparentResistivity(m, 2)) > 1e-12 {
		t.Error("noiseless sounding differs from forward model")
	}
}

func TestInvertRecoversTruth(t *testing.T) {
	cases := []struct{ rho1, rho2, h float64 }{
		{200, 50, 2.0},
		{50, 200, 1.0},
		{400, 62.5, 0.8}, // Barberá-like: resistive thin top layer
	}
	for _, c := range cases {
		m := soil.NewTwoLayer(1/c.rho1, 1/c.rho2, c.h)
		data := Sound(m, LogSpacings(0.25, 60, 14), 0, nil)
		fit, err := InvertTwoLayer(data, InvertOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if relDiff(fit.Rho1, c.rho1) > 0.02 || relDiff(fit.Rho2, c.rho2) > 0.02 || relDiff(fit.H, c.h) > 0.05 {
			t.Errorf("truth (%v,%v,%v): fit (%v,%v,%v) rms %v",
				c.rho1, c.rho2, c.h, fit.Rho1, fit.Rho2, fit.H, fit.RMSLog)
		}
		if fit.RMSLog > 1e-4 {
			t.Errorf("noiseless fit misfit %v", fit.RMSLog)
		}
		// The fitted model is directly usable by the solver.
		if got := fit.Model().Conductivity(1); relDiff(got, 1/fit.Rho1) > 1e-12 {
			t.Error("Fit.Model conductivity wrong")
		}
	}
}

func TestInvertWithNoise(t *testing.T) {
	truth := soil.NewTwoLayer(1.0/200, 1.0/50, 2)
	r := rand.New(rand.NewSource(7))
	data := Sound(truth, LogSpacings(0.25, 60, 16), 0.03, r.NormFloat64)
	fit, err := InvertTwoLayer(data, InvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// 3 % multiplicative noise: parameters within ~15 %.
	if relDiff(fit.Rho1, 200) > 0.15 || relDiff(fit.Rho2, 50) > 0.15 || relDiff(fit.H, 2) > 0.3 {
		t.Errorf("noisy fit: %+v", fit)
	}
	if fit.String() == "" {
		t.Error("empty fit description")
	}
}

func TestFitUniform(t *testing.T) {
	u := soil.NewUniform(1.0 / 62.5)
	data := Sound(u, LogSpacings(0.5, 50, 8), 0, nil)
	rho, rms, err := FitUniform(data)
	if err != nil {
		t.Fatal(err)
	}
	if relDiff(rho, 62.5) > 1e-6 || rms > 1e-9 {
		t.Errorf("uniform fit rho=%v rms=%v", rho, rms)
	}
	// Over genuinely layered soil the uniform misfit must be large, which
	// is how a design tool decides a two-layer model is mandatory.
	layered := Sound(soil.NewTwoLayer(1.0/400, 1.0/40, 1), LogSpacings(0.5, 50, 10), 0, nil)
	_, rmsLayered, err := FitUniform(layered)
	if err != nil {
		t.Fatal(err)
	}
	if rmsLayered < 0.2 {
		t.Errorf("layered data should not fit a uniform model: rms %v", rmsLayered)
	}
}

func TestInvertRejectsBadData(t *testing.T) {
	if _, err := InvertTwoLayer(nil, InvertOptions{}); err == nil {
		t.Error("nil data accepted")
	}
}

func BenchmarkForwardSeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ApparentResistivityTwoLayerSeries(200, 50, 2, 5, 64)
	}
}

func BenchmarkInvertTwoLayer(b *testing.B) {
	data := Sound(soil.NewTwoLayer(1.0/200, 1.0/50, 2), LogSpacings(0.25, 60, 12), 0, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := InvertTwoLayer(data, InvertOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
