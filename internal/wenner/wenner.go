// Package wenner implements the field-measurement side of grounding design:
// the Wenner four-electrode resistivity survey, its forward model on any
// layered soil, and the inversion that fits a two-layer model to measured
// apparent resistivities.
//
// The paper's soil models are parameterized by "an apparent scalar
// conductivity that must be experimentally obtained" (§2); in practice the
// experiment is a Wenner sounding: four equally spaced surface electrodes,
// current through the outer pair, voltage across the inner pair, repeated at
// growing spacings a. The apparent resistivity
//
//	ρ_a(a) = 2πa·ΔV/I
//
// equals the true resistivity over uniform soil and transitions between ρ1
// and ρ2 over a two-layer soil as the spacing (and therefore the sampled
// depth) grows.
package wenner

import (
	"errors"
	"fmt"
	"math"

	"earthing/internal/geom"
	"earthing/internal/soil"
)

// Measurement is one Wenner sounding: electrode spacing and the measured
// apparent resistivity.
type Measurement struct {
	Spacing float64 // a, in metres
	RhoA    float64 // apparent resistivity, Ω·m
}

// ApparentResistivity computes the forward model: the apparent resistivity
// a Wenner array with spacing a would read over the given soil model. It
// places the four electrodes on the surface and evaluates the exact
// layered-earth point kernels.
func ApparentResistivity(m soil.Model, a float64) float64 {
	if a <= 0 {
		panic(fmt.Sprintf("wenner: non-positive spacing %g", a))
	}
	// Electrodes at x = 0, a, 2a, 3a; unit current +1 at 0 and −1 at 3a.
	// ΔV = V(a) − V(2a) with V(x) = G(|x−0|) − G(|x−3a|).
	src := geom.V(0, 0, 0)
	g := func(r float64) float64 {
		return m.PointPotential(geom.V(r, 0, 0), src)
	}
	// V(a) = G(a) − G(2a) and V(2a) = G(2a) − G(a) by symmetry, so
	// ΔV = 2·(G(a) − G(2a)).
	dv := 2 * (g(a) - g(2*a))
	return 2 * math.Pi * a * dv
}

// ApparentResistivityTwoLayerSeries is the classical closed form for a
// two-layer soil (Tagg):
//
//	ρ_a = ρ1·[1 + 4·Σ_{n≥1} Kⁿ·(1/√(1+(2nh/a)²) − 1/√(4+(2nh/a)²))]
//
// with K = (ρ2−ρ1)/(ρ2+ρ1). It cross-validates the kernel-based forward
// model in the tests.
func ApparentResistivityTwoLayerSeries(rho1, rho2, h, a float64, terms int) float64 {
	k := (rho2 - rho1) / (rho2 + rho1)
	sum := 0.0
	kn := 1.0
	for n := 1; n <= terms; n++ {
		kn *= k
		q := 2 * float64(n) * h / a
		sum += kn * (1/math.Sqrt(1+q*q) - 1/math.Sqrt(4+q*q))
	}
	return rho1 * (1 + 4*sum)
}

// ApparentResistivitySchlumberger computes the forward model for a
// Schlumberger array: current electrodes at ±L, potential electrodes at ±l
// (l < L), all on the surface and collinear:
//
//	ρ_a = π·(L² − l²)/(2l) · ΔV/I
//
// Schlumberger soundings expand only the current electrodes between
// readings, which is the other standard field protocol; both arrays share
// the same layered-earth kernels and invert to the same model.
func ApparentResistivitySchlumberger(m soil.Model, bigL, smallL float64) float64 {
	if smallL <= 0 || bigL <= smallL {
		panic(fmt.Sprintf("wenner: bad Schlumberger geometry L=%g l=%g", bigL, smallL))
	}
	src := geom.V(0, 0, 0)
	g := func(r float64) float64 {
		return m.PointPotential(geom.V(r, 0, 0), src)
	}
	// +I at −L, −I at +L. V(x) = G(|x+L|) − G(|x−L|).
	vAt := func(x float64) float64 {
		return g(math.Abs(x+bigL)) - g(math.Abs(x-bigL))
	}
	dv := vAt(-smallL) - vAt(+smallL)
	return math.Pi * (bigL*bigL - smallL*smallL) / (2 * smallL) * dv
}

// Sound simulates a survey: it evaluates the forward model at the given
// spacings, optionally perturbing each reading with multiplicative noise
// noise·ε, ε drawn by the caller-supplied source (pass nil for noiseless
// data). This synthesizes the field data the paper's "experimentally
// obtained" parameters come from.
func Sound(m soil.Model, spacings []float64, noise float64, randn func() float64) []Measurement {
	out := make([]Measurement, len(spacings))
	for i, a := range spacings {
		rho := ApparentResistivity(m, a)
		if noise > 0 && randn != nil {
			rho *= 1 + noise*randn()
		}
		out[i] = Measurement{Spacing: a, RhoA: rho}
	}
	return out
}

// LogSpacings returns n logarithmically spaced electrode spacings between
// aMin and aMax — the standard survey design, since the sounding depth
// scales with the spacing.
func LogSpacings(aMin, aMax float64, n int) []float64 {
	if n < 2 || aMin <= 0 || aMax <= aMin {
		panic(fmt.Sprintf("wenner: bad spacing range (%g, %g, %d)", aMin, aMax, n))
	}
	out := make([]float64, n)
	r := math.Log(aMax / aMin)
	for i := range out {
		out[i] = aMin * math.Exp(r*float64(i)/float64(n-1))
	}
	return out
}

// Validate checks a measurement set for inversion.
func Validate(data []Measurement) error {
	if len(data) < 3 {
		return errors.New("wenner: need at least 3 measurements to fit a two-layer model")
	}
	for i, d := range data {
		if d.Spacing <= 0 || d.RhoA <= 0 || math.IsNaN(d.RhoA) {
			return fmt.Errorf("wenner: measurement %d invalid (a=%g, rho=%g)", i, d.Spacing, d.RhoA)
		}
	}
	return nil
}
