package sched

import (
	"math"
	"testing"
)

func TestSimulateConservesWork(t *testing.T) {
	work := TriangleWork(408)
	var total int64
	for _, w := range work {
		total += w
	}
	for _, s := range allSchedules {
		for _, p := range []int{1, 2, 4, 8, 64} {
			makespan, loads := Simulate(work, p, s)
			var sum, max int64
			for _, l := range loads {
				sum += l
				if l > max {
					max = l
				}
			}
			if sum != total {
				t.Fatalf("%v p=%d: loads sum %d, want %d", s, p, sum, total)
			}
			if makespan != max {
				t.Fatalf("%v p=%d: makespan %d ≠ max load %d", s, p, makespan, max)
			}
			if makespan < total/int64(p) {
				t.Fatalf("%v p=%d: makespan below ideal", s, p)
			}
		}
	}
}

// TestStaticTriangleMatchesPaperArithmetic checks the static-no-chunk
// prediction against the closed form 1/(1 − ((p−1)/p)²) for linearly
// decreasing cycle sizes — which is, to two decimals, the paper's measured
// Table 6.2 static row (1.32, 2.32, 4.38 at p = 2, 4, 8).
func TestStaticTriangleMatchesPaperArithmetic(t *testing.T) {
	work := TriangleWork(408)
	for _, c := range []struct {
		p     int
		paper float64
	}{{2, 1.32}, {4, 2.32}, {8, 4.38}} {
		got := PredictSpeedup(work, c.p, Schedule{Kind: Static})
		frac := 1 - math.Pow(float64(c.p-1)/float64(c.p), 2)
		want := 1 / frac
		if math.Abs(got-want) > 0.03*want {
			t.Errorf("p=%d: simulated %v, closed form %v", c.p, got, want)
		}
		if math.Abs(got-c.paper) > 0.15*c.paper {
			t.Errorf("p=%d: simulated %v, paper measured %v", c.p, got, c.paper)
		}
	}
}

func TestDynamic1NearPerfect(t *testing.T) {
	work := TriangleWork(408)
	for _, p := range []int{2, 4, 8} {
		got := PredictSpeedup(work, p, Schedule{Kind: Dynamic, Chunk: 1})
		if got < 0.97*float64(p) {
			t.Errorf("dynamic,1 p=%d: predicted %v", p, got)
		}
	}
}

func TestGuidedSmallChunkGood(t *testing.T) {
	work := TriangleWork(408)
	for _, p := range []int{4, 8} {
		got := PredictSpeedup(work, p, Schedule{Kind: Guided, Chunk: 1})
		if got < 0.90*float64(p) {
			t.Errorf("guided,1 p=%d: predicted %v", p, got)
		}
	}
}

func TestLargeChunksDegrade(t *testing.T) {
	work := TriangleWork(408)
	for _, kind := range []Kind{Static, Dynamic} {
		small := PredictSpeedup(work, 8, Schedule{Kind: kind, Chunk: 1})
		large := PredictSpeedup(work, 8, Schedule{Kind: kind, Chunk: 64})
		if large >= small {
			t.Errorf("%v: chunk 64 (%v) not worse than chunk 1 (%v)", kind, large, small)
		}
	}
}

func TestSimulateEdgeCases(t *testing.T) {
	if ms, _ := Simulate(nil, 4, Schedule{Kind: Static}); ms != 0 {
		t.Error("empty work should have zero makespan")
	}
	// p > n clamps.
	ms, loads := Simulate([]int64{5, 5}, 10, Schedule{Kind: Dynamic, Chunk: 1})
	if ms != 5 || len(loads) != 2 {
		t.Errorf("clamp failed: makespan %d loads %v", ms, loads)
	}
	// p = 1 is the sequential sum.
	ms, _ = Simulate([]int64{1, 2, 3}, 1, Schedule{Kind: Guided})
	if ms != 6 {
		t.Errorf("sequential makespan %d", ms)
	}
}

func TestSimulatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for p=0")
		}
	}()
	Simulate([]int64{1}, 0, Schedule{Kind: Static})
}

func TestSimulateRejectsUnspecified(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unspecified kind")
		}
	}()
	Simulate([]int64{1, 2}, 2, Schedule{})
}

func TestTriangleWork(t *testing.T) {
	w := TriangleWork(4)
	want := []int64{4, 3, 2, 1}
	for i := range want {
		if w[i] != want[i] {
			t.Fatalf("TriangleWork = %v", w)
		}
	}
}

func TestPredictSpeedupEmpty(t *testing.T) {
	if PredictSpeedup(nil, 4, Schedule{Kind: Static}) != 1 {
		t.Error("empty work should predict 1")
	}
}
