package sched

import (
	"fmt"
	"runtime/debug"
)

// PanicError is a panic recovered inside a parallel loop body. The package
// contains worker panics instead of letting them crash the process: the
// panicking worker records the first PanicError, its siblings stop claiming
// chunks at the next schedule boundary, and the loop joins all goroutines
// before reporting.
//
// The ctx variants (ForCtx, ForStatsCtx) return the *PanicError as an
// ordinary error, so long-lived callers (servers, batch engines) degrade
// gracefully. The non-ctx variants (For, ForStats) re-panic the *PanicError
// on the caller's goroutine once every worker has joined, preserving
// library semantics — a panic escapes where the caller can see (and
// recover) it, never on an anonymous worker goroutine where it would be
// unrecoverable and fatal to the process.
type PanicError struct {
	// Value is the original value passed to panic().
	Value any
	// Stack is the panicking goroutine's stack at recovery time, including
	// the frames of the panicking loop body.
	Stack []byte
	// Iteration is the loop index whose body panicked.
	Iteration int
	// Worker is the id of the worker that executed it.
	Worker int
}

// Error implements error. The message carries the original panic value and
// the captured stack, so a logged or HTTP-reported error is a complete
// diagnostic on its own.
func (e *PanicError) Error() string {
	return fmt.Sprintf("sched: panic in loop body (iteration %d, worker %d): %v\n%s",
		e.Iteration, e.Worker, e.Value, e.Stack)
}

// Unwrap exposes the panic value when it was itself an error, so
// errors.Is/As reach through the containment layer.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// UnknownScheduleError reports a Schedule whose Kind is not one of Static,
// Dynamic or Guided reaching a parallel loop. ParseSchedule can never
// produce one; a hand-built Schedule can, and the ctx loop variants return
// this instead of panicking mid-request (see Schedule.Validate for the
// construction-time check).
type UnknownScheduleError struct {
	Kind Kind
}

// Error implements error.
func (e *UnknownScheduleError) Error() string {
	return fmt.Sprintf("sched: unknown schedule kind %d", int(e.Kind))
}

// recordPanic captures the first worker panic of a loop; later panics (a
// sibling may fault in the same chunk window) are dropped — the first is
// the diagnostic that matters and the loop is already aborting.
func (c *canceller) recordPanic(v any, iteration, worker int) {
	c.panicErr.CompareAndSwap(nil, &PanicError{
		Value:     v,
		Stack:     debug.Stack(),
		Iteration: iteration,
		Worker:    worker,
	})
}
