package sched

import (
	"testing"
)

// FuzzParseSchedule: arbitrary schedule labels must parse or error, never
// panic, and an accepted schedule must survive a String() → Parse round trip
// and be runnable by For.
func FuzzParseSchedule(f *testing.F) {
	f.Add("dynamic,1")
	f.Add("static")
	f.Add("static,16")
	f.Add("guided,64")
	f.Add(" STATIC , 4 ")
	f.Add("dynamic,0")
	f.Add("dynamic,-3")
	f.Add("dynamic,99999999999999999999")
	f.Add("guided,")
	f.Add(",")
	f.Add("")
	f.Add("dynamic,1,2")
	f.Fuzz(func(t *testing.T, label string) {
		s, err := ParseSchedule(label)
		if err != nil {
			return
		}
		if s.Kind == Unspecified {
			t.Fatalf("ParseSchedule(%q) accepted an unspecified kind", label)
		}
		if s.Chunk < 0 {
			t.Fatalf("ParseSchedule(%q) produced negative chunk %d", label, s.Chunk)
		}
		// Round trip through the canonical label.
		s2, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("canonical label %q of %q does not re-parse: %v", s, label, err)
		}
		if s2 != s {
			t.Fatalf("round trip changed %v → %v (from %q)", s, s2, label)
		}
		// An accepted schedule must actually run a loop: every iteration
		// exactly once.
		seen := make([]bool, 37)
		For(len(seen), 2, s, func(i int) { seen[i] = true })
		for i, ok := range seen {
			if !ok {
				t.Fatalf("schedule %v skipped iteration %d", s, i)
			}
		}
	})
}
