package sched

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestNumTiles(t *testing.T) {
	cases := []struct{ n, tile, want int }{
		{0, 4, 0},
		{-3, 4, 0},
		{1, 4, 1},
		{4, 4, 1},
		{5, 4, 2},
		{8, 4, 2},
		{9, 4, 3},
		{7, 0, 7},  // tile ≤ 0 treated as 1
		{7, -2, 7}, // tile ≤ 0 treated as 1
		{300, 64, 5},
	}
	for _, c := range cases {
		if got := NumTiles(c.n, c.tile); got != c.want {
			t.Errorf("NumTiles(%d, %d) = %d, want %d", c.n, c.tile, got, c.want)
		}
	}
}

// TestForTilesCoversDisjointly checks the partition contract every tiled
// kernel relies on: the emitted [lo, hi) ranges cover [0, n) exactly once,
// including the short last tile.
func TestForTilesCoversDisjointly(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 65, 127, 300} {
		for _, tile := range []int{1, 3, 64} {
			for _, p := range []int{1, 4} {
				var mu sync.Mutex
				seen := make([]int, n)
				ForTiles(n, tile, p, Schedule{Kind: Dynamic, Chunk: 1}, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("n=%d tile=%d: bad range [%d, %d)", n, tile, lo, hi)
						return
					}
					mu.Lock()
					for i := lo; i < hi; i++ {
						seen[i]++
					}
					mu.Unlock()
				})
				for i, c := range seen {
					if c != 1 {
						t.Fatalf("n=%d tile=%d p=%d: index %d visited %d times", n, tile, p, i, c)
					}
				}
			}
		}
	}
}

func TestForTilesCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	err := ForTilesCtx(ctx, 1000, 8, 2, Schedule{Kind: Dynamic, Chunk: 1}, func(lo, hi int) { ran += hi - lo })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran == 1000 {
		t.Error("cancelled loop still visited every index")
	}
}

func TestForTilesCtxPanicContained(t *testing.T) {
	err := ForTilesCtx(context.Background(), 100, 8, 2, Schedule{Kind: Dynamic, Chunk: 1}, func(lo, hi int) {
		if lo == 0 {
			panic("tile fault")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "tile fault" {
		t.Errorf("PanicError.Value = %v", pe.Value)
	}
}
