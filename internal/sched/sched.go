// Package sched provides an OpenMP-style parallel loop runner over goroutine
// workers. It reproduces the scheduling semantics the paper evaluates in
// Table 6.2 — static, static with chunk, dynamic with chunk, and guided —
// so that the matrix-generation loop of the BEM solver can be distributed
// among P workers exactly the way the original OpenMP code distributed the
// element-pair triangle among processors.
//
// The loop body receives iteration indices, not data, mirroring
// `#pragma omp for schedule(kind, chunk)` applied to `DO i = 1, n`.
package sched

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind identifies an OpenMP schedule kind.
type Kind int

const (
	// Unspecified is the zero value: callers that receive it substitute
	// their documented default (packages bem and post use Dynamic,1, the
	// paper's best schedule). For and ForStats reject it.
	Unspecified Kind = iota
	// Static splits the index range into equal blocks ahead of time. With a
	// chunk it deals fixed-size chunks round-robin, like schedule(static,c).
	Static
	// Dynamic hands out chunks of fixed size on demand: a worker grabs the
	// next chunk when it finishes the previous one, like schedule(dynamic,c).
	Dynamic
	// Guided hands out chunks of exponentially decreasing size, never below
	// the chunk parameter, like schedule(guided,c).
	Guided
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Unspecified:
		return "unspecified"
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	case Guided:
		return "guided"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Schedule is a schedule kind plus chunk parameter. Chunk ≤ 0 means "no
// chunk specified": Static then pre-splits into one block per worker, while
// Dynamic and Guided default the chunk to 1, matching OpenMP defaults.
// The zero value has Kind Unspecified, which For rejects; option structs use
// it to detect "use the package default".
type Schedule struct {
	Kind  Kind
	Chunk int
}

// IsZero reports whether the schedule is unspecified.
func (s Schedule) IsZero() bool { return s.Kind == Unspecified }

// Validate reports whether the schedule can drive a parallel loop: the kind
// must be Static, Dynamic or Guided. Construction-time callers (config
// parsing, servers) should validate here so a bad kind is a 4xx at the
// boundary, not an *UnknownScheduleError mid-loop.
func (s Schedule) Validate() error {
	switch s.Kind {
	case Static, Dynamic, Guided:
		return nil
	default:
		return &UnknownScheduleError{Kind: s.Kind}
	}
}

// String renders the schedule the way the paper's Table 6.2 labels rows,
// e.g. "static", "static,16", "dynamic,1", "guided,64".
func (s Schedule) String() string {
	if s.Chunk <= 0 {
		return s.Kind.String()
	}
	return fmt.Sprintf("%s,%d", s.Kind, s.Chunk)
}

// ParseSchedule parses labels of the form "dynamic,1", "static", "guided,16"
// (case-insensitive, spaces tolerated).
func ParseSchedule(s string) (Schedule, error) {
	parts := strings.SplitN(s, ",", 2)
	var sc Schedule
	switch strings.ToLower(strings.TrimSpace(parts[0])) {
	case "static":
		sc.Kind = Static
	case "dynamic":
		sc.Kind = Dynamic
	case "guided":
		sc.Kind = Guided
	default:
		return Schedule{}, fmt.Errorf("sched: unknown schedule kind %q", parts[0])
	}
	if len(parts) == 2 {
		c, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil || c < 1 {
			return Schedule{}, fmt.Errorf("sched: bad chunk in %q", s)
		}
		sc.Chunk = c
	}
	return sc, nil
}

// Stats reports how a ParallelFor execution distributed work, for load-
// balance analysis in the schedule benchmarks.
type Stats struct {
	Workers    int
	Iterations int
	// PerWorker[w] is the number of loop iterations worker w executed.
	PerWorker []int
	// ChunksPerWorker[w] is the number of chunks worker w fetched.
	ChunksPerWorker []int
}

// Imbalance returns max(PerWorker)/mean(PerWorker) − 1; zero means perfectly
// balanced. Returns 0 for degenerate inputs.
func (s Stats) Imbalance() float64 {
	if s.Workers == 0 || s.Iterations == 0 {
		return 0
	}
	max := 0
	for _, n := range s.PerWorker {
		if n > max {
			max = n
		}
	}
	mean := float64(s.Iterations) / float64(s.Workers)
	if mean == 0 {
		return 0
	}
	return float64(max)/mean - 1
}

// For runs body(i) for every i in [0, n) using p workers under the given
// schedule, blocking until all iterations complete. p ≤ 0 selects
// runtime.GOMAXPROCS(0). p = 1 executes sequentially in the calling
// goroutine (no synchronization cost), which is the baseline the paper's
// speed-ups are referenced to.
//
// A panic in a body is contained: sibling workers stop at the next chunk
// boundary, every worker joins, and the panic is re-raised on the calling
// goroutine as a *PanicError (carrying the original value and stack), where
// the caller can recover it. It never escapes on a worker goroutine, which
// would be unconditionally fatal to the process.
func For(n, p int, s Schedule, body func(i int)) {
	ForStats(n, p, s, func(i, _ int) { body(i) })
}

// ForStats is For with the worker id passed to the body and execution
// statistics returned. Body panics re-raise on the calling goroutine as
// *PanicError, as in For.
func ForStats(n, p int, s Schedule, body func(i, worker int)) Stats {
	st, err := forStats(nil, n, p, s, body)
	if err != nil {
		// With no context there is nothing to cancel, so the only errors are
		// a contained body panic — re-raised here, on the caller's goroutine,
		// after all workers joined — or an unknown schedule kind, which is a
		// programmer error on the non-ctx API and keeps its panic semantics.
		panic(err)
	}
	return st
}

// ForCtx is For with cooperative cancellation: workers observe ctx at every
// chunk boundary and stop claiming new chunks once it is done. Iterations
// already dispatched within a chunk still run to completion (the loop bodies
// in this codebase are single element pairs or field points, so abandonment
// latency is one body call plus one chunk). Returns ctx.Err() if the loop was
// cut short, nil if every iteration ran.
//
// A panic in a body is contained and returned as a *PanicError instead of
// crashing the process: siblings stop at the next chunk boundary, all
// workers join, and the error carries the original panic value plus its
// stack. A *UnknownScheduleError is returned (before any work starts) for a
// Schedule whose kind is not Static, Dynamic or Guided.
func ForCtx(ctx context.Context, n, p int, s Schedule, body func(i int)) error {
	_, err := ForStatsCtx(ctx, n, p, s, func(i, _ int) { body(i) })
	return err
}

// ForStatsCtx is ForStats with the cancellation and panic-containment
// semantics of ForCtx. The returned Stats reflect the iterations actually
// executed, which is fewer than n when err is non-nil.
func ForStatsCtx(ctx context.Context, n, p int, s Schedule, body func(i, worker int)) (Stats, error) {
	if ctx == nil {
		//lint:ignore ctxflow nil ctx defaults to Background by documented contract, mirroring net/http
		ctx = context.Background()
	}
	return forStats(ctx, n, p, s, body)
}

// canceller is the shared per-loop control block: it adapts a context into
// the cheap per-chunk poll the inner loops use (a receive-with-default on
// Done, nil for background contexts) and records the first contained body
// panic, which aborts siblings the same way a cancellation does. aborted
// records whether any worker actually cut its loop short, so a context
// cancelled after the last iteration does not spuriously fail a completed
// loop.
type canceller struct {
	done     <-chan struct{}
	aborted  atomic.Bool
	panicErr atomic.Pointer[PanicError]
}

// stop reports whether the loop should abandon further chunks.
func (c *canceller) stop() bool {
	if c.panicErr.Load() != nil {
		return true
	}
	if c.done == nil {
		return false
	}
	select {
	case <-c.done:
		c.aborted.Store(true)
		return true
	default:
		return false
	}
}

func forStats(ctx context.Context, n, p int, s Schedule, body func(i, worker int)) (Stats, error) {
	cn := &canceller{}
	if ctx != nil {
		cn.done = ctx.Done()
	}
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	st := Stats{Workers: p, Iterations: n}
	if n == 0 {
		return st, nil
	}
	// safeBody contains body panics: the recovered value (with its stack) is
	// recorded on the control block and ok stays false, telling the worker to
	// stop immediately; stop() then halts every sibling at its next chunk
	// boundary. One deferred call per iteration is noise next to the µs-scale
	// kernel evaluations these loops carry.
	safeBody := func(i, w int) (ok bool) {
		defer func() {
			if v := recover(); v != nil {
				cn.recordPanic(v, i, w)
			}
		}()
		body(i, w)
		return true
	}
	st.PerWorker = make([]int, p)
	st.ChunksPerWorker = make([]int, p)
	if p == 1 {
		// Sequential path: every iteration is its own chunk boundary.
		count := 0
		for i := 0; i < n; i++ {
			if cn.stop() || !safeBody(i, 0) {
				break
			}
			count++
		}
		st.PerWorker[0] = count
		st.ChunksPerWorker[0] = 1
		return st, cn.loopErr(ctx)
	}

	switch s.Kind {
	case Static:
		runStatic(n, p, s.Chunk, safeBody, &st, cn)
	case Dynamic:
		c := s.Chunk
		if c < 1 {
			c = 1
		}
		runDynamic(n, p, c, safeBody, &st, cn)
	case Guided:
		c := s.Chunk
		if c < 1 {
			c = 1
		}
		runGuided(n, p, c, safeBody, &st, cn)
	default:
		return st, &UnknownScheduleError{Kind: s.Kind}
	}
	return st, cn.loopErr(ctx)
}

// loopErr resolves how an aborted loop failed: a contained panic wins over a
// concurrent cancellation (it is the severer diagnosis), then an actually
// aborted loop maps to its context error.
func (c *canceller) loopErr(ctx context.Context) error {
	if pe := c.panicErr.Load(); pe != nil {
		return pe
	}
	if c.aborted.Load() && ctx != nil {
		return ctx.Err()
	}
	return nil
}

// runStatic implements schedule(static) and schedule(static,c): the full
// assignment of iterations to workers is fixed before the loop starts.
// body reports false when its iteration panicked, which stops this worker
// immediately (siblings stop at their next cn.stop() poll).
func runStatic(n, p, chunk int, body func(i, w int) bool, st *Stats, cn *canceller) {
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			count, chunks := 0, 0
			if chunk < 1 {
				// One contiguous block per worker, sizes differing by ≤ 1;
				// cancellation is polled every blockCheck iterations so a
				// pre-split block does not run to completion after ctx ends.
				const blockCheck = 64
				lo := w * n / p
				hi := (w + 1) * n / p
				if hi > lo {
					chunks = 1
				}
				for i := lo; i < hi; i++ {
					if (i-lo)%blockCheck == 0 && cn.stop() {
						break
					}
					if !body(i, w) {
						break
					}
					count++
				}
			} else {
				// Fixed chunks dealt round-robin: worker w owns chunks
				// w, w+p, w+2p, …
			chunked:
				for base := w * chunk; base < n; base += p * chunk {
					if cn.stop() {
						break
					}
					chunks++
					hi := base + chunk
					if hi > n {
						hi = n
					}
					for i := base; i < hi; i++ {
						if !body(i, w) {
							break chunked
						}
						count++
					}
				}
			}
			st.PerWorker[w] = count
			st.ChunksPerWorker[w] = chunks
		}(w)
	}
	wg.Wait()
}

// runDynamic implements schedule(dynamic,c): workers atomically claim the
// next chunk of c iterations when they become idle. body reports false when
// its iteration panicked, which stops this worker immediately.
func runDynamic(n, p, chunk int, body func(i, w int) bool, st *Stats, cn *canceller) {
	var next int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			count, chunks := 0, 0
		claim:
			for {
				base := int(atomic.AddInt64(&next, int64(chunk))) - chunk
				if base >= n {
					break
				}
				// Poll only while work remains, so a context cancelled after
				// the final chunk does not fail a completed loop.
				if cn.stop() {
					break
				}
				chunks++
				hi := base + chunk
				if hi > n {
					hi = n
				}
				for i := base; i < hi; i++ {
					if !body(i, w) {
						break claim
					}
					count++
				}
			}
			st.PerWorker[w] = count
			st.ChunksPerWorker[w] = chunks
		}(w)
	}
	wg.Wait()
}

// runGuided implements schedule(guided,c): chunk sizes start at roughly
// remaining/(2p) — the proportion common OpenMP runtimes use — and decay
// exponentially, never below c. A mutex serializes the (cheap) chunk-size
// computation; the loop bodies run fully in parallel. body reports false
// when its iteration panicked, which stops this worker immediately.
func runGuided(n, p, minChunk int, body func(i, w int) bool, st *Stats, cn *canceller) {
	var mu sync.Mutex
	next := 0
	grab := func() (lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		if next >= n {
			return n, n
		}
		remaining := n - next
		size := (remaining + 2*p - 1) / (2 * p)
		if size < minChunk {
			size = minChunk
		}
		lo = next
		hi = lo + size
		if hi > n {
			hi = n
		}
		next = hi
		return lo, hi
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			count, chunks := 0, 0
		claim:
			for {
				lo, hi := grab()
				if lo >= hi {
					break
				}
				// As in runDynamic: poll only while work remains.
				if cn.stop() {
					break
				}
				chunks++
				for i := lo; i < hi; i++ {
					if !body(i, w) {
						break claim
					}
					count++
				}
			}
			st.PerWorker[w] = count
			st.ChunksPerWorker[w] = chunks
		}(w)
	}
	wg.Wait()
}
