package sched

import "context"

// Tile helpers: the blocked linear-algebra kernels distribute work in
// contiguous index ranges (panel rows, trailing-update row tiles) rather than
// single iterations, because a tile owns a cache-sized slab of the packed
// matrix. These wrappers map a tile index space onto the existing schedule
// machinery so tiled loops inherit the OpenMP-style schedules, cancellation
// and panic containment of For/ForCtx.

// NumTiles returns the number of tiles of size tile covering [0, n): the
// last tile may be short. tile ≤ 0 is treated as 1.
func NumTiles(n, tile int) int {
	if tile < 1 {
		tile = 1
	}
	if n <= 0 {
		return 0
	}
	return (n + tile - 1) / tile
}

// ForTiles runs body(lo, hi) for every tile [lo, hi) of size tile covering
// [0, n), distributing tiles over p workers under schedule s. Tiles are
// disjoint, so bodies writing only inside their range need no
// synchronization. Panics in a body re-raise on the caller as *PanicError,
// as in For.
func ForTiles(n, tile, p int, s Schedule, body func(lo, hi int)) {
	if tile < 1 {
		tile = 1
	}
	For(NumTiles(n, tile), p, s, func(t int) {
		lo := t * tile
		hi := lo + tile
		if hi > n {
			hi = n
		}
		body(lo, hi)
	})
}

// ForTilesCtx is ForTiles with the cooperative-cancellation and
// panic-containment semantics of ForCtx: workers observe ctx at tile
// boundaries and a contained body panic is returned as a *PanicError.
func ForTilesCtx(ctx context.Context, n, tile, p int, s Schedule, body func(lo, hi int)) error {
	if tile < 1 {
		tile = 1
	}
	return ForCtx(ctx, NumTiles(n, tile), p, s, func(t int) {
		lo := t * tile
		hi := lo + tile
		if hi > n {
			hi = n
		}
		body(lo, hi)
	})
}
