package sched

import "fmt"

// Simulate computes the makespan of running n weighted loop cycles under a
// schedule on p *ideal* workers: every worker executes one unit of work per
// unit of time, chunk hand-off is free, and for demand-driven schedules each
// chunk goes to the worker that becomes free first.
//
// It returns the per-worker loads and the makespan (the maximum load plus,
// for demand-driven kinds, the serialization implied by assignment order).
// The predicted speed-up Sum(work)/makespan is the host-independent
// load-balance quantity behind the paper's Table 6.2: e.g. for the
// element-pair triangle (linearly decreasing cycle sizes) and schedule
// static with no chunk, the worker owning the largest columns carries
// 1 − ((p−1)/p)² of the work, reproducing the paper's measured 1.32 / 2.32 /
// 4.38 speed-ups at p = 2 / 4 / 8 almost exactly.
//
// work[i] is the cost of cycle i in arbitrary units; cycles are handed out
// in index order, matching ForStats.
func Simulate(work []int64, p int, s Schedule) (makespan int64, perWorker []int64) {
	n := len(work)
	if p <= 0 {
		panic("sched: Simulate needs p ≥ 1")
	}
	if p > n {
		p = n
	}
	if n == 0 {
		return 0, nil
	}
	loads := make([]int64, p)
	if p == 1 {
		for _, w := range work {
			loads[0] += w
		}
		return loads[0], loads
	}

	// chunkAt yields the cycle-index ranges in hand-off order.
	assignGreedy := func(chunks [][2]int) {
		// Demand-driven: each chunk goes to the earliest-free worker.
		for _, c := range chunks {
			w := 0
			for i := 1; i < p; i++ {
				if loads[i] < loads[w] {
					w = i
				}
			}
			for k := c[0]; k < c[1]; k++ {
				loads[w] += work[k]
			}
		}
	}

	switch s.Kind {
	case Static:
		if s.Chunk < 1 {
			// Contiguous equal-count blocks.
			for w := 0; w < p; w++ {
				for k := w * n / p; k < (w+1)*n/p; k++ {
					loads[w] += work[k]
				}
			}
		} else {
			// Fixed chunks dealt round-robin.
			for base, c := 0, 0; base < n; base, c = base+s.Chunk, c+1 {
				hi := base + s.Chunk
				if hi > n {
					hi = n
				}
				w := c % p
				for k := base; k < hi; k++ {
					loads[w] += work[k]
				}
			}
		}
	case Dynamic:
		c := s.Chunk
		if c < 1 {
			c = 1
		}
		var chunks [][2]int
		for base := 0; base < n; base += c {
			hi := base + c
			if hi > n {
				hi = n
			}
			chunks = append(chunks, [2]int{base, hi})
		}
		assignGreedy(chunks)
	case Guided:
		minC := s.Chunk
		if minC < 1 {
			minC = 1
		}
		var chunks [][2]int
		next := 0
		for next < n {
			remaining := n - next
			size := (remaining + 2*p - 1) / (2 * p)
			if size < minC {
				size = minC
			}
			hi := next + size
			if hi > n {
				hi = n
			}
			chunks = append(chunks, [2]int{next, hi})
			next = hi
		}
		assignGreedy(chunks)
	default:
		panic(fmt.Sprintf("sched: Simulate: unsupported schedule kind %v", s.Kind))
	}

	for _, l := range loads {
		if l > makespan {
			makespan = l
		}
	}
	return makespan, loads
}

// PredictSpeedup returns Sum(work)/makespan for the schedule on p ideal
// workers — the wall-clock speed-up a perfectly parallel machine with p
// cores would achieve.
func PredictSpeedup(work []int64, p int, s Schedule) float64 {
	if len(work) == 0 {
		return 1
	}
	makespan, _ := Simulate(work, p, s)
	if makespan == 0 {
		return 1
	}
	var total int64
	for _, w := range work {
		total += w
	}
	return float64(total) / float64(makespan)
}

// TriangleWork returns the cycle costs of the BEM matrix-generation outer
// loop over m elements in largest-first order: cycle i couples element
// β = m−1−i with all α ≤ β, costing β+1 pair evaluations.
func TriangleWork(m int) []int64 {
	w := make([]int64, m)
	for i := range w {
		w[i] = int64(m - i)
	}
	return w
}
