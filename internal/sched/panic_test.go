package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// explode is a named panic site so tests can pin that the captured stack
// identifies the faulting function.
func explode(i int) {
	panic(fmt.Sprintf("injected failure at %d", i))
}

var panicSchedules = []Schedule{
	{Kind: Static},
	{Kind: Static, Chunk: 4},
	{Kind: Dynamic, Chunk: 1},
	{Kind: Dynamic, Chunk: 8},
	{Kind: Guided, Chunk: 2},
}

// TestPanicContainmentCtx: a panicking body surfaces as *PanicError from the
// ctx variants, with the loop joined (no goroutine leak), siblings stopped
// early, and a stack that names the faulting function.
func TestPanicContainmentCtx(t *testing.T) {
	const n = 10_000
	for _, s := range panicSchedules {
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/p%d", s, p), func(t *testing.T) {
				before := runtime.NumGoroutine()
				var executed atomic.Int64
				st, err := ForStatsCtx(context.Background(), n, p, s, func(i, w int) {
					if i == n/2 {
						explode(i)
					}
					executed.Add(1)
				})
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("err = %v, want *PanicError", err)
				}
				if pe.Iteration != n/2 {
					t.Errorf("PanicError.Iteration = %d, want %d", pe.Iteration, n/2)
				}
				if pe.Worker < 0 || pe.Worker >= p {
					t.Errorf("PanicError.Worker = %d outside [0, %d)", pe.Worker, p)
				}
				if want := fmt.Sprintf("injected failure at %d", n/2); pe.Value != want {
					t.Errorf("PanicError.Value = %v, want %q", pe.Value, want)
				}
				if !strings.Contains(string(pe.Stack), "explode") {
					t.Errorf("captured stack does not name the faulting function:\n%s", pe.Stack)
				}
				if !strings.Contains(pe.Error(), "injected failure") {
					t.Errorf("Error() does not carry the panic value: %s", pe.Error())
				}
				// Siblings abandoned the loop: not every iteration ran.
				if got := executed.Load(); got >= n {
					t.Errorf("executed %d iterations, want < %d (siblings should stop)", got, n)
				}
				var statTotal int
				for _, c := range st.PerWorker {
					statTotal += c
				}
				if int64(statTotal) != executed.Load() {
					t.Errorf("Stats count %d iterations, body ran %d", statTotal, executed.Load())
				}
				// All workers joined: the goroutine count returns to baseline.
				deadline := time.Now().Add(5 * time.Second)
				for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
					time.Sleep(time.Millisecond)
				}
				if g := runtime.NumGoroutine(); g > before {
					t.Errorf("goroutines leaked: %d > baseline %d", g, before)
				}
			})
		}
	}
}

// TestPanicRepanicNonCtx: the non-ctx variants re-raise the contained panic
// on the caller's goroutine as a *PanicError, after all workers joined.
func TestPanicRepanicNonCtx(t *testing.T) {
	for _, p := range []int{1, 4} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			recovered := func() (v any) {
				defer func() { v = recover() }()
				ForStats(1000, p, Schedule{Kind: Dynamic, Chunk: 1}, func(i, w int) {
					if i == 100 {
						explode(i)
					}
				})
				return nil
			}()
			pe, ok := recovered.(*PanicError)
			if !ok {
				t.Fatalf("recovered %T (%v), want *PanicError", recovered, recovered)
			}
			if pe.Iteration != 100 {
				t.Errorf("Iteration = %d, want 100", pe.Iteration)
			}
			if !strings.Contains(string(pe.Stack), "explode") {
				t.Errorf("stack does not name the faulting function:\n%s", pe.Stack)
			}
		})
	}
}

// TestPanicErrorUnwrap: a body that panics with an error value stays
// reachable through errors.Is across the containment layer.
func TestPanicErrorUnwrap(t *testing.T) {
	sentinel := errors.New("kernel blew up")
	_, err := ForStatsCtx(context.Background(), 64, 2, Schedule{Kind: Static}, func(i, w int) {
		if i == 10 {
			panic(sentinel)
		}
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is(err, sentinel) = false; err = %v", err)
	}
}

// TestPanicWinsOverCancel: when a panic and a cancellation race, the loop
// reports the panic — the severer diagnosis.
func TestPanicWinsOverCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := ForStatsCtx(ctx, 4096, 4, Schedule{Kind: Dynamic, Chunk: 1}, func(i, w int) {
		if i == 50 {
			cancel()
			panic("boom after cancel")
		}
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError to win over ctx cancellation", err)
	}
}

// TestUnknownScheduleKindPanicFree: the ctx variants reject a hand-built bad
// schedule kind with a typed error before any work starts; Validate catches
// it at construction time.
func TestUnknownScheduleKindPanicFree(t *testing.T) {
	bad := Schedule{Kind: Kind(99)}
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted kind 99")
	}
	var ran atomic.Int64
	_, err := ForStatsCtx(context.Background(), 128, 4, bad, func(i, w int) { ran.Add(1) })
	var ue *UnknownScheduleError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UnknownScheduleError", err)
	}
	if ue.Kind != Kind(99) {
		t.Errorf("UnknownScheduleError.Kind = %v, want 99", ue.Kind)
	}
	if ran.Load() != 0 {
		t.Errorf("%d iterations ran under an invalid schedule", ran.Load())
	}
	// The non-ctx variant keeps panic semantics for this programmer error,
	// but panics on the caller's goroutine with the same typed value.
	defer func() {
		if v := recover(); v == nil {
			t.Error("ForStats did not panic on an unknown schedule kind")
		} else if _, ok := v.(*UnknownScheduleError); !ok {
			t.Errorf("ForStats panicked with %T, want *UnknownScheduleError", v)
		}
	}()
	ForStats(128, 4, bad, func(i, w int) {})
}

// TestValidSchedulesStillComplete guards the containment plumbing: a loop
// without faults still executes every iteration exactly once.
func TestValidSchedulesStillComplete(t *testing.T) {
	const n = 5000
	for _, s := range panicSchedules {
		for _, p := range []int{1, 3, 8} {
			seen := make([]atomic.Int32, n)
			st, err := ForStatsCtx(context.Background(), n, p, s, func(i, w int) {
				seen[i].Add(1)
			})
			if err != nil {
				t.Fatalf("%v/p%d: err = %v", s, p, err)
			}
			for i := range seen {
				if c := seen[i].Load(); c != 1 {
					t.Fatalf("%v/p%d: iteration %d ran %d times", s, p, i, c)
				}
			}
			if st.Iterations != n {
				t.Errorf("%v/p%d: Stats.Iterations = %d", s, p, st.Iterations)
			}
		}
	}
}
