package sched

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// kinds covers every schedule the Ctx variants must honour, including the
// pre-split static block path.
var ctxKinds = []Schedule{
	{Kind: Static},
	{Kind: Static, Chunk: 4},
	{Kind: Dynamic, Chunk: 1},
	{Kind: Dynamic, Chunk: 8},
	{Kind: Guided, Chunk: 2},
}

// TestForCtxCompletesWithoutError: a background context never aborts and the
// Ctx variants match the plain ones exactly.
func TestForCtxCompletesWithoutError(t *testing.T) {
	for _, s := range ctxKinds {
		for _, p := range []int{1, 3} {
			var n64 int64
			err := ForCtx(context.Background(), 100, p, s, func(i int) {
				atomic.AddInt64(&n64, 1)
			})
			if err != nil {
				t.Errorf("%v p=%d: unexpected error %v", s, p, err)
			}
			if n64 != 100 {
				t.Errorf("%v p=%d: ran %d iterations, want 100", s, p, n64)
			}
		}
	}
}

// TestForCtxCancelStopsEarly: cancelling mid-loop stops workers at chunk
// boundaries — far fewer than n iterations run and ctx.Err() is surfaced.
func TestForCtxCancelStopsEarly(t *testing.T) {
	const n = 100_000
	for _, s := range ctxKinds {
		for _, p := range []int{1, 4} {
			ctx, cancel := context.WithCancel(context.Background())
			var ran int64
			err := ForCtx(ctx, n, p, s, func(i int) {
				if atomic.AddInt64(&ran, 1) == 50 {
					cancel()
				}
			})
			cancel()
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%v p=%d: error = %v, want context.Canceled", s, p, err)
			}
			// Workers may finish in-flight chunks; even the largest guided
			// first chunk is bounded well below n.
			if ran >= n {
				t.Errorf("%v p=%d: all %d iterations ran despite cancellation", s, p, ran)
			}
		}
	}
}

// TestForStatsCtxCancelledStatsPartial: the returned stats count only the
// iterations that actually executed.
func TestForStatsCtxCancelledStatsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the loop starts
	st, err := ForStatsCtx(ctx, 1000, 4, Schedule{Kind: Dynamic, Chunk: 1}, func(i, w int) {
		t.Error("body ran under a pre-cancelled context")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	total := 0
	for _, c := range st.PerWorker {
		total += c
	}
	if total != 0 {
		t.Fatalf("%d iterations ran under a pre-cancelled context", total)
	}
}

// TestForCtxLateCancelNoSpuriousError: a context cancelled during the final
// iteration must not fail a loop in which every iteration ran.
func TestForCtxLateCancelNoSpuriousError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran int64
	err := ForCtx(ctx, 64, 2, Schedule{Kind: Dynamic, Chunk: 64}, func(i int) {
		if atomic.AddInt64(&ran, 1) == 64 {
			cancel() // fires with no work left to distribute
		}
	})
	if err != nil {
		t.Fatalf("completed loop returned %v", err)
	}
	if ran != 64 {
		t.Fatalf("ran %d iterations, want 64", ran)
	}
}
