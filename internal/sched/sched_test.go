package sched

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

var allSchedules = []Schedule{
	{Static, 0}, {Static, 1}, {Static, 4}, {Static, 16}, {Static, 64},
	{Dynamic, 0}, {Dynamic, 1}, {Dynamic, 4}, {Dynamic, 16}, {Dynamic, 64},
	{Guided, 0}, {Guided, 1}, {Guided, 4}, {Guided, 16}, {Guided, 64},
}

// TestCoverage verifies every schedule visits each index exactly once —
// the fundamental correctness contract of a work-sharing loop.
func TestCoverage(t *testing.T) {
	for _, s := range allSchedules {
		for _, n := range []int{0, 1, 2, 7, 100, 408, 1000} {
			for _, p := range []int{1, 2, 3, 4, 8, 17} {
				visits := make([]int32, n)
				For(n, p, s, func(i int) {
					atomic.AddInt32(&visits[i], 1)
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("%v n=%d p=%d: index %d visited %d times", s, n, p, i, v)
					}
				}
			}
		}
	}
}

func TestCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(500)
		p := 1 + r.Intn(12)
		s := allSchedules[r.Intn(len(allSchedules))]
		var total int64
		visits := make([]int32, n)
		For(n, p, s, func(i int) {
			atomic.AddInt32(&visits[i], 1)
			atomic.AddInt64(&total, 1)
		})
		if total != int64(n) {
			return false
		}
		for _, v := range visits {
			if v != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStatsAccounting(t *testing.T) {
	for _, s := range allSchedules {
		st := ForStats(1000, 4, s, func(i, w int) {})
		if st.Workers != 4 || st.Iterations != 1000 {
			t.Fatalf("%v: stats header %+v", s, st)
		}
		sum := 0
		for _, c := range st.PerWorker {
			sum += c
		}
		if sum != 1000 {
			t.Fatalf("%v: PerWorker sums to %d", s, sum)
		}
	}
}

func TestStaticNoChunkBalance(t *testing.T) {
	st := ForStats(100, 4, Schedule{Static, 0}, func(i, w int) {})
	for w, c := range st.PerWorker {
		if c != 25 {
			t.Errorf("worker %d got %d iterations, want 25", w, c)
		}
	}
	if st.Imbalance() != 0 {
		t.Errorf("Imbalance = %v", st.Imbalance())
	}
}

func TestStaticChunkRoundRobin(t *testing.T) {
	// With static,2 and p=2 over n=8: worker0 gets {0,1,4,5}, worker1 {2,3,6,7}.
	owner := make([]int32, 8)
	ForStats(8, 2, Schedule{Static, 2}, func(i, w int) {
		atomic.StoreInt32(&owner[i], int32(w))
	})
	want := []int32{0, 0, 1, 1, 0, 0, 1, 1}
	for i := range want {
		if owner[i] != want[i] {
			t.Fatalf("owner = %v, want %v", owner, want)
		}
	}
}

// TestDynamicBalancesSkewedWork feeds a triangular workload (like the BEM
// outer loop, where cycle i couples element i with elements i..M) and checks
// dynamic,1 balances it much better than static with a large chunk.
func TestDynamicBalancesSkewedWork(t *testing.T) {
	n, p := 408, 4
	work := func(i int) {
		// Simulate cost proportional to n−i (linearly decreasing like the
		// element-pair triangle columns in §6.2).
		x := 0.0
		for k := 0; k < (n-i)*40; k++ {
			x += float64(k)
		}
		_ = x
	}
	elapsed := func(s Schedule) time.Duration {
		start := time.Now()
		For(n, p, s, work)
		return time.Since(start)
	}
	// Warm up.
	elapsed(Schedule{Dynamic, 1})
	dyn := elapsed(Schedule{Dynamic, 1})
	// static with one contiguous block per worker puts all heavy columns on
	// worker 0 — expected to be noticeably slower.
	stat := elapsed(Schedule{Static, 0})
	if dyn > stat {
		t.Logf("dynamic=%v static=%v (timing-sensitive; not failing hard)", dyn, stat)
	}
}

func TestGuidedChunkDecay(t *testing.T) {
	st := ForStats(1024, 4, Schedule{Guided, 1}, func(i, w int) {})
	totalChunks := 0
	for _, c := range st.ChunksPerWorker {
		totalChunks += c
	}
	// Guided should need far fewer chunks than dynamic,1 (=1024) but more
	// than static (=4).
	if totalChunks <= 4 || totalChunks >= 1024 {
		t.Errorf("guided chunk count = %d", totalChunks)
	}
}

func TestWorkerIDsWithinRange(t *testing.T) {
	for _, s := range allSchedules {
		bad := int32(0)
		ForStats(500, 3, s, func(i, w int) {
			if w < 0 || w >= 3 {
				atomic.StoreInt32(&bad, 1)
			}
		})
		if bad != 0 {
			t.Fatalf("%v: worker id out of range", s)
		}
	}
}

func TestMoreWorkersThanIterations(t *testing.T) {
	var count int64
	st := ForStats(3, 16, Schedule{Dynamic, 1}, func(i, w int) {
		atomic.AddInt64(&count, 1)
	})
	if count != 3 {
		t.Errorf("count = %d", count)
	}
	if st.Workers > 3 {
		t.Errorf("workers = %d, should be clamped to n", st.Workers)
	}
}

func TestParseSchedule(t *testing.T) {
	cases := []struct {
		in   string
		want Schedule
		ok   bool
	}{
		{"static", Schedule{Static, 0}, true},
		{"Static, 16", Schedule{Static, 16}, true},
		{"dynamic,1", Schedule{Dynamic, 1}, true},
		{"guided,64", Schedule{Guided, 64}, true},
		{"banana", Schedule{}, false},
		{"dynamic,0", Schedule{}, false},
		{"dynamic,x", Schedule{}, false},
	}
	for _, c := range cases {
		got, err := ParseSchedule(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseSchedule(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseSchedule(%q) succeeded, want error", c.in)
		}
	}
}

func TestScheduleString(t *testing.T) {
	if got := (Schedule{Dynamic, 1}).String(); got != "dynamic,1" {
		t.Errorf("String = %q", got)
	}
	if got := (Schedule{Static, 0}).String(); got != "static" {
		t.Errorf("String = %q", got)
	}
	// Round trip.
	for _, s := range allSchedules {
		back, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("round trip %v: %v", s, err)
		}
		// Chunk 0 on dynamic/guided normalizes at run time, not parse time.
		if back.Kind != s.Kind || back.Chunk != s.Chunk {
			t.Errorf("round trip %v -> %v", s, back)
		}
	}
}

func TestImbalanceComputation(t *testing.T) {
	st := Stats{Workers: 2, Iterations: 10, PerWorker: []int{9, 1}}
	if got := st.Imbalance(); got != 0.8 {
		t.Errorf("Imbalance = %v, want 0.8", got)
	}
	if (Stats{}).Imbalance() != 0 {
		t.Error("empty stats imbalance should be 0")
	}
}

func TestSequentialPathNoGoroutines(t *testing.T) {
	// p=1 must run in the calling goroutine: body can use goroutine-unsafe
	// state without races.
	counter := 0
	For(100, 1, Schedule{Dynamic, 1}, func(i int) { counter++ })
	if counter != 100 {
		t.Errorf("counter = %d", counter)
	}
}

func BenchmarkScheduleOverhead(b *testing.B) {
	for _, s := range []Schedule{{Static, 0}, {Dynamic, 1}, {Dynamic, 16}, {Guided, 1}} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				For(4096, 4, s, func(int) {})
			}
		})
	}
}
