package post

import (
	"math"
	"strings"
	"testing"

	"earthing/internal/core"
	"earthing/internal/grid"
	"earthing/internal/soil"
)

func TestComputeLeakage(t *testing.T) {
	res := solved(t)
	rep := ComputeLeakage(res.Mesh, res.Sigma, res.GPR)
	if len(rep.Elements) != len(res.Mesh.Elements) {
		t.Fatal("element count mismatch")
	}
	// Total must equal the engine's current.
	if math.Abs(rep.Total-res.Current) > 1e-6*(1+res.Current) {
		t.Errorf("leakage total %v vs engine current %v", rep.Total, res.Current)
	}
	// Shares sum to 1 and are sorted descending.
	var sum float64
	for i, e := range rep.Elements {
		sum += e.Share
		if i > 0 && e.Current > rep.Elements[i-1].Current+1e-12 {
			t.Fatal("not sorted by current")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("shares sum to %v", sum)
	}
	if rep.MaxDensity < rep.MinDensity || rep.MinDensity <= 0 {
		t.Errorf("density range %v..%v", rep.MinDensity, rep.MaxDensity)
	}
}

// TestEdgeLeaksMoreThanCenter verifies the classical design fact surfaced by
// the report: perimeter conductors carry a higher leakage density than
// interior ones.
func TestEdgeLeaksMoreThanCenter(t *testing.T) {
	g := grid.RectMesh(0, 0, 40, 40, 5, 5, 0.8, 0.006)
	res, err := core.Analyze(g, soil.NewUniform(0.02), core.Config{GPR: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	rep := ComputeLeakage(res.Mesh, res.Sigma, res.GPR)
	var corner, center float64
	for _, e := range rep.Elements {
		m := e.Midpoint
		if m.Y == 0 && m.X < 10 { // first span of the bottom edge
			corner = math.Max(corner, e.MeanDensity)
		}
		if math.Abs(m.X-20) < 6 && math.Abs(m.Y-20) < 6 {
			center = math.Max(center, e.MeanDensity)
		}
	}
	if corner <= center {
		t.Errorf("corner density %v not above center %v", corner, center)
	}
}

func TestRodShare(t *testing.T) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	g.AddRod(0, 0, 0.8, 3, 0.007)
	g.AddRod(20, 20, 0.8, 3, 0.007)
	res, err := core.Analyze(g, soil.NewUniform(0.02), core.Config{GPR: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	rep := ComputeLeakage(res.Mesh, res.Sigma, res.GPR)
	if rep.RodShare <= 0 || rep.RodShare >= 1 {
		t.Errorf("rod share = %v", rep.RodShare)
	}
}

func TestLeakageWriters(t *testing.T) {
	res := solved(t)
	rep := ComputeLeakage(res.Mesh, res.Sigma, res.GPR)
	var csv strings.Builder
	if err := WriteLeakageCSV(&csv, rep); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(csv.String(), "\n"); lines != len(rep.Elements)+1 {
		t.Errorf("csv rows = %d", lines)
	}
	var sum strings.Builder
	if err := WriteLeakageSummary(&sum, rep, 5); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"total leaked current", "top 5 elements"} {
		if !strings.Contains(sum.String(), want) {
			t.Errorf("summary missing %q:\n%s", want, sum.String())
		}
	}
	// n larger than the element count is clamped.
	var big strings.Builder
	if err := WriteLeakageSummary(&big, rep, 10_000); err != nil {
		t.Fatal(err)
	}
}

func TestEFieldRaster(t *testing.T) {
	res := solved(t)
	r := EFieldRaster(res.Assembler(), res.Sigma, res.GPR, -5, -5, 25, 25, SurfaceOptions{NX: 16, NY: 16})
	if len(r.V) != 256 {
		t.Fatal("raster size wrong")
	}
	min, max := r.MinMax()
	if min < 0 || !(max > min) {
		t.Errorf("field range %v..%v", min, max)
	}
	// The field maximum sits near the grid edge, not at its center: locate
	// the max and check it is closer to the perimeter (grid spans 0..20).
	var bi, bj int
	best := math.Inf(-1)
	for j := 0; j < r.NY; j++ {
		for i := 0; i < r.NX; i++ {
			if v := r.At(i, j); v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	x, y := r.Pos(bi, bj)
	distToCenter := math.Hypot(x-10, y-10)
	if distToCenter < 5 {
		t.Errorf("field max at (%v,%v), suspiciously central", x, y)
	}
	// Parallel evaluation is deterministic.
	r2 := EFieldRaster(res.Assembler(), res.Sigma, res.GPR, -5, -5, 25, 25, SurfaceOptions{NX: 16, NY: 16, Workers: 4})
	for i := range r.V {
		if r.V[i] != r2.V[i] {
			t.Fatal("parallel raster differs")
		}
	}
}

func TestStepProfileByField(t *testing.T) {
	res := solved(t)
	s, step := StepProfileByField(res.Assembler(), res.Sigma, res.GPR, 10, 10, 80, 10, 30)
	if len(s) != 30 || len(step) != 30 {
		t.Fatal("profile length wrong")
	}
	for i, v := range step {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("step[%d] = %v", i, v)
		}
	}
	// Compare the gradient-based step against the potential-difference step
	// at a mid-profile point: |V(s) − V(s+1m)| ≈ |E|·1m within a few %.
	sv, vv := ProfilePotential(res.Assembler(), res.Sigma, res.GPR, 10, 10, 80, 10, 71)
	// sv spacing is 1 m exactly (70 m / 70 intervals).
	if math.Abs(sv[1]-sv[0]-1) > 1e-9 {
		t.Fatalf("profile spacing %v", sv[1]-sv[0])
	}
	// Point s = 30 m → index 30 in vv; field profile index at s=30:
	// 30/(70/29) ≈ 12.43 — recompute the field directly instead.
	_, fieldAt := StepProfileByField(res.Assembler(), res.Sigma, res.GPR, 40, 10, 41, 10, 2)
	dv := math.Abs(vv[30] - vv[31])
	if rel := math.Abs(fieldAt[0]-dv) / (1 + dv); rel > 0.05 {
		t.Errorf("gradient step %v vs potential-difference step %v", fieldAt[0], dv)
	}
}
