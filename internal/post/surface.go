// Package post computes the design quantities derived from a solved
// grounding analysis: earth-surface potential rasters (the contour plots of
// Figures 5.2 and 5.4), touch/step/mesh voltages, and equipotential contour
// extraction, with ASCII/CSV/SVG emitters.
//
// Computing potentials at many surface points costs O(M·p) kernel series per
// point (§4.3) — the paper's second massively parallel stage — so rasters
// are evaluated in parallel with the same scheduling substrate as matrix
// generation.
package post

import (
	"context"
	"fmt"
	"math"

	"earthing/internal/bem"
	"earthing/internal/geom"
	"earthing/internal/sched"
)

// Raster is a rectangular sample of a scalar field on the earth surface.
type Raster struct {
	X0, Y0 float64 // lower-left corner
	DX, DY float64 // cell size
	NX, NY int
	// V[j*NX+i] is the value at (X0 + i·DX, Y0 + j·DY).
	V []float64
}

// At returns the value at cell (i, j).
func (r *Raster) At(i, j int) float64 { return r.V[j*r.NX+i] }

// Pos returns the surface position of cell (i, j).
func (r *Raster) Pos(i, j int) (x, y float64) {
	return r.X0 + float64(i)*r.DX, r.Y0 + float64(j)*r.DY
}

// MinMax returns the value range.
func (r *Raster) MinMax() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, v := range r.V {
		min = math.Min(min, v)
		max = math.Max(max, v)
	}
	return min, max
}

// SurfaceOptions configures a surface potential evaluation.
type SurfaceOptions struct {
	// NX, NY are the raster dimensions (default 64 × 64).
	NX, NY int
	// Margin extends the raster beyond the grid bounding box by this many
	// metres on every side (default 15).
	Margin float64
	// Workers and Schedule configure the parallel evaluation (defaults:
	// GOMAXPROCS and dynamic,1).
	Workers  int
	Schedule sched.Schedule
}

func (o SurfaceOptions) withDefaults() SurfaceOptions {
	if o.NX <= 0 {
		o.NX = 64
	}
	if o.NY <= 0 {
		o.NY = 64
	}
	if o.Margin == 0 {
		o.Margin = 15
	}
	if o.Schedule.IsZero() {
		o.Schedule = sched.Schedule{Kind: sched.Dynamic, Chunk: 1}
	}
	return o
}

// SurfacePotential samples V(x, y, z=0)·scale over a rectangle covering the
// mesh bounds plus margin, distributing raster rows over workers. sigma is
// the solved DoF vector (per unit GPR); scale is typically the GPR.
func SurfacePotential(a *bem.Assembler, mesh interface{ Bounds() geom.AABB }, sigma []float64, scale float64, opt SurfaceOptions) *Raster {
	//lint:ignore errdrop background context never cancels, so the error is always nil
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	r, _ := SurfacePotentialCtx(context.Background(), a, mesh, sigma, scale, opt)
	return r
}

// SurfacePotentialCtx is SurfacePotential with cooperative cancellation at
// raster-point boundaries; on cancellation the partial raster is discarded
// and ctx.Err() returned.
func SurfacePotentialCtx(ctx context.Context, a *bem.Assembler, mesh interface{ Bounds() geom.AABB }, sigma []float64, scale float64, opt SurfaceOptions) (*Raster, error) {
	opt = opt.withDefaults()
	b := mesh.Bounds()
	return SurfacePotentialRectCtx(ctx, a, sigma, scale,
		b.Min.X-opt.Margin, b.Min.Y-opt.Margin,
		b.Max.X+opt.Margin, b.Max.Y+opt.Margin, opt)
}

// SurfacePotentialRect samples V·scale on an explicit rectangle
// [x0, x1] × [y0, y1] at z = 0 through the batched field evaluator.
func SurfacePotentialRect(a *bem.Assembler, sigma []float64, scale float64, x0, y0, x1, y1 float64, opt SurfaceOptions) *Raster {
	//lint:ignore errdrop background context never cancels, so the error is always nil
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	r, _ := SurfacePotentialRectCtx(context.Background(), a, sigma, scale, x0, y0, x1, y1, opt)
	return r
}

// SurfacePotentialRectCtx is SurfacePotentialRect with cooperative
// cancellation (see SurfacePotentialCtx).
func SurfacePotentialRectCtx(ctx context.Context, a *bem.Assembler, sigma []float64, scale float64, x0, y0, x1, y1 float64, opt SurfaceOptions) (*Raster, error) {
	opt = opt.withDefaults()
	r := &Raster{
		X0: x0, Y0: y0,
		DX: (x1 - x0) / float64(opt.NX-1),
		DY: (y1 - y0) / float64(opt.NY-1),
		NX: opt.NX, NY: opt.NY,
		V: make([]float64, opt.NX*opt.NY),
	}
	pts := make([]geom.Vec3, opt.NX*opt.NY)
	for j := 0; j < opt.NY; j++ {
		y := r.Y0 + float64(j)*r.DY
		for i := 0; i < opt.NX; i++ {
			pts[j*opt.NX+i] = geom.V(r.X0+float64(i)*r.DX, y, 0)
		}
	}
	if _, err := a.Evaluator().PotentialBatchCtx(ctx, pts, sigma, scale, r.V, batchOpt(opt)); err != nil {
		return nil, err
	}
	return r, nil
}

// batchOpt forwards the worker/schedule knobs of a SurfaceOptions to the
// evaluator's batch loop.
func batchOpt(opt SurfaceOptions) bem.BatchOptions {
	return bem.BatchOptions{Workers: opt.Workers, Schedule: opt.Schedule}
}

// ProfilePotential samples V·scale along the straight surface segment from
// (x0, y0) to (x1, y1) at n evenly spaced points, returning the arc
// coordinates and values. Useful for step-voltage profiles. Points are
// evaluated in parallel; see ProfilePotentialOpt for worker/schedule control.
func ProfilePotential(a *bem.Assembler, sigma []float64, scale float64, x0, y0, x1, y1 float64, n int) (s, v []float64) {
	return ProfilePotentialOpt(a, sigma, scale, x0, y0, x1, y1, n, SurfaceOptions{})
}

// ProfilePotentialOpt is ProfilePotential with explicit worker/schedule
// knobs (only the Workers and Schedule fields of opt are consulted).
func ProfilePotentialOpt(a *bem.Assembler, sigma []float64, scale float64, x0, y0, x1, y1 float64, n int, opt SurfaceOptions) (s, v []float64) {
	if n < 2 {
		panic(fmt.Sprintf("post: profile needs ≥ 2 points, got %d", n))
	}
	opt = opt.withDefaults()
	s = make([]float64, n)
	v = make([]float64, n)
	pts := make([]geom.Vec3, n)
	length := math.Hypot(x1-x0, y1-y0)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		s[i] = t * length
		pts[i] = geom.V(x0+t*(x1-x0), y0+t*(y1-y0), 0)
	}
	a.Evaluator().PotentialBatch(pts, sigma, scale, v, batchOpt(opt))
	return s, v
}
