package post

import (
	"math"
	"strings"
	"testing"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/soil"
)

// solved returns a small solved analysis shared by the tests.
func solved(t *testing.T) *core.Result {
	t.Helper()
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	res, err := core.Analyze(g, soil.NewTwoLayer(0.005, 0.016, 1.0), core.Config{GPR: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSurfacePotentialRaster(t *testing.T) {
	res := solved(t)
	r := SurfacePotential(res.Assembler(), res.Mesh, res.Sigma, res.GPR, SurfaceOptions{NX: 21, NY: 21, Margin: 10})
	if r.NX != 21 || r.NY != 21 || len(r.V) != 441 {
		t.Fatalf("raster dims %dx%d", r.NX, r.NY)
	}
	min, max := r.MinMax()
	if min <= 0 || max > 10_000 || !(max > min) {
		t.Errorf("raster range %v..%v", min, max)
	}
	// The maximum must be over the grid, not at the raster border.
	var bi, bj int
	best := math.Inf(-1)
	for j := 0; j < r.NY; j++ {
		for i := 0; i < r.NX; i++ {
			if v := r.At(i, j); v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	x, y := r.Pos(bi, bj)
	if x < 0 || x > 20 || y < 0 || y > 20 {
		t.Errorf("potential max at (%v,%v), outside the grid footprint", x, y)
	}
	// Raster values agree with direct evaluation.
	xd, yd := r.Pos(3, 17)
	direct := res.PotentialAt(geom.V(xd, yd, 0))
	if math.Abs(direct-r.At(3, 17)) > 1e-9*(1+math.Abs(direct)) {
		t.Errorf("raster %v vs direct %v", r.At(3, 17), direct)
	}
}

func TestSurfaceParallelMatchesSequential(t *testing.T) {
	res := solved(t)
	opt := SurfaceOptions{NX: 15, NY: 15, Margin: 5}
	seq := SurfacePotential(res.Assembler(), res.Mesh, res.Sigma, res.GPR, func() SurfaceOptions { o := opt; o.Workers = 1; return o }())
	par := SurfacePotential(res.Assembler(), res.Mesh, res.Sigma, res.GPR, func() SurfaceOptions { o := opt; o.Workers = 4; return o }())
	for i := range seq.V {
		if seq.V[i] != par.V[i] {
			t.Fatalf("parallel raster differs at %d: %v vs %v", i, seq.V[i], par.V[i])
		}
	}
}

func TestProfilePotential(t *testing.T) {
	res := solved(t)
	s, v := ProfilePotential(res.Assembler(), res.Sigma, res.GPR, 10, 10, 200, 10, 50)
	if len(s) != 50 || len(v) != 50 {
		t.Fatal("wrong profile length")
	}
	if s[0] != 0 || math.Abs(s[49]-190) > 1e-9 {
		t.Errorf("arc coordinates wrong: %v..%v", s[0], s[49])
	}
	// Monotone decay once outside the grid.
	for i := 20; i+1 < 50; i++ {
		if v[i+1] >= v[i] {
			t.Errorf("potential not decaying at s=%v: %v -> %v", s[i], v[i], v[i+1])
		}
	}
}

func TestComputeVoltages(t *testing.T) {
	res := solved(t)
	vv := ComputeVoltages(res.Assembler(), res.Mesh, res.Sigma, res.GPR, 1)
	if vv.GPR != 10_000 {
		t.Errorf("GPR = %v", vv.GPR)
	}
	if vv.MaxTouch <= 0 || vv.MaxTouch >= 10_000 {
		t.Errorf("MaxTouch = %v", vv.MaxTouch)
	}
	if vv.MaxStep <= 0 || vv.MaxStep >= vv.GPR {
		t.Errorf("MaxStep = %v", vv.MaxStep)
	}
	if vv.MaxMesh < 0 || vv.MaxMesh > vv.GPR {
		t.Errorf("MaxMesh = %v", vv.MaxMesh)
	}
	// Touch voltage bounds mesh voltage (mesh points are a subset).
	if vv.MaxMesh > vv.MaxTouch+1e-9 {
		t.Errorf("mesh %v exceeds touch %v", vv.MaxMesh, vv.MaxTouch)
	}
}

func TestContoursClosedAroundPeak(t *testing.T) {
	// Synthetic radial field: contours of a cone are circles; check the
	// marching-squares output stays near the expected radius.
	r := &Raster{X0: -10, Y0: -10, DX: 0.25, DY: 0.25, NX: 81, NY: 81}
	r.V = make([]float64, 81*81)
	for j := 0; j < 81; j++ {
		for i := 0; i < 81; i++ {
			x, y := r.Pos(i, j)
			r.V[j*81+i] = 100 - math.Hypot(x, y)*10
		}
	}
	lines := Contours(r, []float64{50}) // radius 5 circle
	if len(lines) == 0 {
		t.Fatal("no contour lines")
	}
	nPts := 0
	for _, ln := range lines {
		for k := range ln.X {
			rad := math.Hypot(ln.X[k], ln.Y[k])
			if math.Abs(rad-5) > 0.15 {
				t.Fatalf("contour point at radius %v, want 5", rad)
			}
			nPts++
		}
	}
	if nPts < 40 {
		t.Errorf("suspiciously few contour points: %d", nPts)
	}
}

func TestEquallySpacedLevels(t *testing.T) {
	r := &Raster{NX: 2, NY: 1, V: []float64{0, 10}}
	lv := EquallySpacedLevels(r, 4)
	want := []float64{2, 4, 6, 8}
	for i := range want {
		if math.Abs(lv[i]-want[i]) > 1e-12 {
			t.Errorf("levels = %v", lv)
		}
	}
	if EquallySpacedLevels(&Raster{NX: 1, NY: 1, V: []float64{3}}, 2) != nil {
		t.Error("degenerate raster should give no levels")
	}
}

func TestChainSegmentsJoins(t *testing.T) {
	segs := []segment{
		{{0, 0}, {1, 0}},
		{{1, 0}, {2, 0}},
		{{2, 0}, {3, 1}},
		{{10, 10}, {11, 10}}, // disconnected
	}
	polys := chainSegments(segs)
	if len(polys) != 2 {
		t.Fatalf("polylines = %d want 2", len(polys))
	}
	lengths := map[int]bool{}
	for _, p := range polys {
		lengths[len(p)] = true
	}
	if !lengths[4] || !lengths[2] {
		t.Errorf("polyline lengths wrong: %v", polys)
	}
}

func TestWriteCSV(t *testing.T) {
	r := &Raster{X0: 0, Y0: 0, DX: 1, DY: 1, NX: 2, NY: 2, V: []float64{1, 2, 3, 4}}
	var sb strings.Builder
	if err := WriteCSV(&sb, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 || lines[0] != "x,y,v" {
		t.Errorf("csv = %q", sb.String())
	}
	if lines[4] != "1,1,4" {
		t.Errorf("last row = %q", lines[4])
	}
}

func TestWriteASCII(t *testing.T) {
	r := &Raster{X0: 0, Y0: 0, DX: 1, DY: 1, NX: 3, NY: 2, V: []float64{0, 5, 10, 10, 5, 0}}
	var sb strings.Builder
	if err := WriteASCII(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "range:") {
		t.Errorf("ascii output missing range line: %q", out)
	}
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 3 || len(rows[0]) != 3 {
		t.Errorf("ascii shape wrong: %q", out)
	}
}

func TestWriteSVG(t *testing.T) {
	res := solved(t)
	r := SurfacePotential(res.Assembler(), res.Mesh, res.Sigma, res.GPR, SurfaceOptions{NX: 25, NY: 25})
	lines := Contours(r, EquallySpacedLevels(r, 8))
	if len(lines) == 0 {
		t.Fatal("no contours from solved potential")
	}
	var sb strings.Builder
	if err := WriteSVG(&sb, r, lines); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "<svg") || !strings.Contains(out, "<polyline") {
		t.Errorf("svg output malformed: %.80q…", out)
	}
}

func BenchmarkSurfacePotential(b *testing.B) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	res, err := core.Analyze(g, soil.NewTwoLayer(0.005, 0.016, 1.0), core.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SurfacePotential(res.Assembler(), res.Mesh, res.Sigma, 1, SurfaceOptions{NX: 16, NY: 16})
	}
}

var _ = bem.Options{} // keep the import for documentation examples
