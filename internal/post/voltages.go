package post

import (
	"context"
	"math"

	"earthing/internal/bem"
	"earthing/internal/geom"
	"earthing/internal/grid"
)

// Voltages aggregates the safety parameters of §1/§5.2: the voltages a
// person could bridge during a fault.
type Voltages struct {
	// GPR is the ground potential rise (volts).
	GPR float64
	// MaxTouch is the largest GPR − V(surface) over points within reach
	// (1 m) of an electrode — the touch voltage.
	MaxTouch float64
	// MaxStep is the largest |V(p) − V(q)| between surface points 1 m apart
	// found on the sampling raster — the step voltage.
	MaxStep float64
	// MaxMesh is the largest GPR − V(surface) at mesh-cell centers — the
	// mesh voltage (worst touch voltage inside the grid).
	MaxMesh float64
}

// ComputeVoltages estimates touch, step and mesh voltages from a solved
// analysis by sampling the surface potential on a raster at stepRes metres
// resolution (default 1 m when ≤ 0). The electrode proximity predicate uses
// the horizontal distance to the mesh elements.
func ComputeVoltages(a *bem.Assembler, m *grid.Mesh, sigma []float64, gpr float64, stepRes float64) Voltages {
	return ComputeVoltagesOpt(a, m, sigma, gpr, stepRes, SurfaceOptions{})
}

// ComputeVoltagesOpt is ComputeVoltages with explicit worker/schedule knobs
// for the underlying surface raster (only the Workers and Schedule fields of
// opt are consulted; the raster geometry is fixed by stepRes).
func ComputeVoltagesOpt(a *bem.Assembler, m *grid.Mesh, sigma []float64, gpr float64, stepRes float64, opt SurfaceOptions) Voltages {
	//lint:ignore errdrop background context never cancels, so the error is always nil
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	v, _ := ComputeVoltagesCtx(context.Background(), a, m, sigma, gpr, stepRes, opt)
	return v
}

// ComputeVoltagesCtx is ComputeVoltagesOpt with cooperative cancellation of
// the underlying raster evaluation; on cancellation the zero Voltages and
// ctx.Err() are returned.
func ComputeVoltagesCtx(ctx context.Context, a *bem.Assembler, m *grid.Mesh, sigma []float64, gpr float64, stepRes float64, opt SurfaceOptions) (Voltages, error) {
	if stepRes <= 0 {
		stepRes = 1
	}
	b := m.Bounds()
	margin := 2.0
	x0, y0 := b.Min.X-margin, b.Min.Y-margin
	x1, y1 := b.Max.X+margin, b.Max.Y+margin
	nx := int((x1-x0)/stepRes) + 1
	ny := int((y1-y0)/stepRes) + 1
	if nx < 2 {
		nx = 2
	}
	if ny < 2 {
		ny = 2
	}
	r, err := SurfacePotentialRectCtx(ctx, a, sigma, gpr, x0, y0, x1, y1,
		SurfaceOptions{NX: nx, NY: ny, Workers: opt.Workers, Schedule: opt.Schedule})
	if err != nil {
		return Voltages{}, err
	}

	v := Voltages{GPR: gpr}
	// Step voltage: adjacent raster samples stepRes apart (axis-aligned
	// pairs; the 1 m IEEE step distance when stepRes = 1).
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			val := r.At(i, j)
			if i+1 < nx {
				if d := math.Abs(val - r.At(i+1, j)); d > v.MaxStep {
					v.MaxStep = d
				}
			}
			if j+1 < ny {
				if d := math.Abs(val - r.At(i, j+1)); d > v.MaxStep {
					v.MaxStep = d
				}
			}
		}
	}
	// Touch voltage: GPR − V at surface points within horizontal reach of a
	// conductor. Mesh voltage: the same quantity restricted to points at
	// least half a cell away from the nearest conductor (cell centers).
	const reach = 1.0
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			x, y := r.Pos(i, j)
			d := horizontalDistToMesh(m, x, y)
			touch := gpr - r.At(i, j)
			if d <= reach && touch > v.MaxTouch {
				v.MaxTouch = touch
			}
			if d > stepRes/2 && d <= reach && touch > v.MaxMesh {
				v.MaxMesh = touch
			}
		}
	}
	return v, nil
}

// horizontalDistToMesh returns the distance from surface point (x, y) to
// the nearest element axis, measured in the horizontal plane.
func horizontalDistToMesh(m *grid.Mesh, x, y float64) float64 {
	best := math.Inf(1)
	p := geom.V(x, y, 0)
	for _, el := range m.Elements {
		// Project the element to the surface plane before measuring.
		s := geom.Seg(el.Seg.A.WithZ(0), el.Seg.B.WithZ(0))
		if d := s.DistToPoint(p); d < best {
			best = d
		}
	}
	return best
}
