package post

import (
	"bufio"
	"fmt"
	"io"
	"math"
)

// WriteCSV emits the raster as x,y,value rows with a header — the portable
// form of the potential-distribution data behind Figures 5.2 and 5.4.
func WriteCSV(w io.Writer, r *Raster) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "x,y,v")
	for j := 0; j < r.NY; j++ {
		for i := 0; i < r.NX; i++ {
			x, y := r.Pos(i, j)
			fmt.Fprintf(bw, "%.6g,%.6g,%.6g\n", x, y, r.At(i, j))
		}
	}
	return bw.Flush()
}

// WriteASCII renders the raster as a text heat map (one character per cell,
// darker ramp = higher value) — a terminal-friendly rendition of the
// paper's potential contour figures.
func WriteASCII(w io.Writer, r *Raster) error {
	const ramp = " .:-=+*#%@"
	min, max := r.MinMax()
	span := max - min
	if span == 0 {
		span = 1
	}
	bw := bufio.NewWriter(w)
	// Row NY−1 first so y grows upward on screen.
	for j := r.NY - 1; j >= 0; j-- {
		for i := 0; i < r.NX; i++ {
			t := (r.At(i, j) - min) / span
			idx := int(t * float64(len(ramp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			bw.WriteByte(ramp[idx])
		}
		bw.WriteByte('\n')
	}
	fmt.Fprintf(bw, "range: %.4g .. %.4g\n", min, max)
	return bw.Flush()
}

// WriteSVG renders contour lines into a standalone SVG document, optionally
// over the raster extent, for inclusion in reports.
func WriteSVG(w io.Writer, r *Raster, lines []ContourLine) error {
	x1 := r.X0 + float64(r.NX-1)*r.DX
	y1 := r.Y0 + float64(r.NY-1)*r.DY
	const size = 640.0
	sx := size / (x1 - r.X0)
	sy := size / (y1 - r.Y0)
	s := math.Min(sx, sy)
	px := func(x float64) float64 { return (x - r.X0) * s }
	py := func(y float64) float64 { return (y1 - y) * s } // flip y

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n",
		(x1-r.X0)*s, (y1-r.Y0)*s, (x1-r.X0)*s, (y1-r.Y0)*s)
	fmt.Fprintln(bw, `<rect width="100%" height="100%" fill="white"/>`)
	min, max := r.MinMax()
	span := max - min
	if span == 0 {
		span = 1
	}
	for _, ln := range lines {
		if len(ln.X) < 2 {
			continue
		}
		// Color by level: blue (low) → red (high).
		t := (ln.Level - min) / span
		red := int(255 * t)
		blue := 255 - red
		fmt.Fprintf(bw, `<polyline fill="none" stroke="rgb(%d,0,%d)" stroke-width="1" points="`, red, blue)
		for i := range ln.X {
			fmt.Fprintf(bw, "%.2f,%.2f ", px(ln.X[i]), py(ln.Y[i]))
		}
		fmt.Fprintln(bw, `"/>`)
	}
	fmt.Fprintln(bw, "</svg>")
	return bw.Flush()
}
