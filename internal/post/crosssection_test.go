package post

import (
	"math"
	"testing"

	"earthing/internal/geom"
)

func TestCrossSection(t *testing.T) {
	res := solved(t)
	cs := CrossSection(res.Assembler(), res.Sigma, res.GPR, -10, 10, 30, 10, 5, SurfaceOptions{NX: 21, NY: 11})
	if cs.NX != 21 || cs.NY != 11 {
		t.Fatal("dims wrong")
	}
	// Row 0 is the surface; values match direct evaluation.
	x0, d0 := cs.Pos(5, 0)
	want := res.PotentialAt(geom.V(-10+x0, 10, d0))
	if math.Abs(cs.At(5, 0)-want) > 1e-9*(1+want) {
		t.Errorf("surface row %v vs direct %v", cs.At(5, 0), want)
	}
	// The maximum sits near electrode depth (0.8 m) within the grid, not at
	// the bottom of the section.
	var bi, bj int
	best := math.Inf(-1)
	for j := 0; j < cs.NY; j++ {
		for i := 0; i < cs.NX; i++ {
			if v := cs.At(i, j); v > best {
				best, bi, bj = v, i, j
			}
		}
	}
	_, depth := cs.Pos(bi, bj)
	if depth > 2.0 {
		t.Errorf("potential max at depth %v, expected near the electrodes", depth)
	}
	// Deepest row is everywhere below the surface row over the grid (the
	// potential decays away from the electrodes).
	for i := 8; i < 13; i++ { // columns over the grid
		if cs.At(i, cs.NY-1) >= cs.At(i, 2) {
			t.Errorf("no decay with depth at column %d", i)
		}
	}
}

func TestCrossSectionParallelDeterministic(t *testing.T) {
	res := solved(t)
	a := CrossSection(res.Assembler(), res.Sigma, res.GPR, 0, 0, 20, 20, 4, SurfaceOptions{NX: 9, NY: 7, Workers: 1})
	b := CrossSection(res.Assembler(), res.Sigma, res.GPR, 0, 0, 20, 20, 4, SurfaceOptions{NX: 9, NY: 7, Workers: 4})
	for i := range a.V {
		if a.V[i] != b.V[i] {
			t.Fatalf("parallel cross-section differs at %d", i)
		}
	}
}
