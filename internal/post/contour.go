package post

import (
	"math"
	"sort"
)

// ContourLine is a polyline of an equipotential at a fixed level.
type ContourLine struct {
	Level float64
	// X, Y are the polyline vertices.
	X, Y []float64
}

// Contours extracts equipotential lines from a raster at the given levels
// using marching squares with linear interpolation along cell edges.
// Segments are chained into polylines; each level may produce several
// disconnected lines (the output order is deterministic).
func Contours(r *Raster, levels []float64) []ContourLine {
	var out []ContourLine
	for _, lv := range levels {
		segs := marchingSquares(r, lv)
		for _, poly := range chainSegments(segs) {
			line := ContourLine{Level: lv}
			for _, p := range poly {
				line.X = append(line.X, p[0])
				line.Y = append(line.Y, p[1])
			}
			out = append(out, line)
		}
	}
	return out
}

// EquallySpacedLevels returns n levels strictly inside the raster range —
// the level set of a contour plot like Figures 5.2 / 5.4.
func EquallySpacedLevels(r *Raster, n int) []float64 {
	min, max := r.MinMax()
	if n < 1 || !(max > min) {
		return nil
	}
	lv := make([]float64, n)
	for i := range lv {
		lv[i] = min + (max-min)*float64(i+1)/float64(n+1)
	}
	return lv
}

type segment [2][2]float64 // two endpoints (x, y)

// marchingSquares emits one or two line segments per raster cell crossed by
// the level.
func marchingSquares(r *Raster, level float64) []segment {
	var segs []segment
	for j := 0; j+1 < r.NY; j++ {
		for i := 0; i+1 < r.NX; i++ {
			x0, y0 := r.Pos(i, j)
			x1, y1 := r.Pos(i+1, j+1)
			v00 := r.At(i, j)
			v10 := r.At(i+1, j)
			v01 := r.At(i, j+1)
			v11 := r.At(i+1, j+1)

			// Edge crossing points (nil when the edge is not crossed).
			type pt = [2]float64
			var cross []pt
			edge := func(ax, ay, av, bx, by, bv float64) {
				if (av < level) == (bv < level) {
					return
				}
				t := (level - av) / (bv - av)
				cross = append(cross, pt{ax + t*(bx-ax), ay + t*(by-ay)})
			}
			edge(x0, y0, v00, x1, y0, v10) // bottom
			edge(x1, y0, v10, x1, y1, v11) // right
			edge(x0, y1, v01, x1, y1, v11) // top
			edge(x0, y0, v00, x0, y1, v01) // left

			switch len(cross) {
			case 2:
				segs = append(segs, segment{cross[0], cross[1]})
			case 4:
				// Saddle: resolve by the cell-center average.
				c := (v00 + v10 + v01 + v11) / 4
				if (c < level) == (v00 < level) {
					segs = append(segs, segment{cross[0], cross[3]}, segment{cross[1], cross[2]})
				} else {
					segs = append(segs, segment{cross[0], cross[1]}, segment{cross[2], cross[3]})
				}
			}
		}
	}
	return segs
}

// chainSegments greedily joins segments that share endpoints (within a
// tolerance) into polylines.
func chainSegments(segs []segment) [][][2]float64 {
	const tol = 1e-9
	used := make([]bool, len(segs))
	key := func(p [2]float64) [2]int64 {
		return [2]int64{int64(math.Round(p[0] / tol / 1e3)), int64(math.Round(p[1] / tol / 1e3))}
	}
	// Endpoint index for O(1) neighbor lookup.
	index := map[[2]int64][]int{}
	for i, s := range segs {
		index[key(s[0])] = append(index[key(s[0])], i)
		index[key(s[1])] = append(index[key(s[1])], i)
	}
	near := func(a, b [2]float64) bool {
		return math.Abs(a[0]-b[0]) < 1e-6 && math.Abs(a[1]-b[1]) < 1e-6
	}

	var polys [][][2]float64
	for i := range segs {
		if used[i] {
			continue
		}
		used[i] = true
		poly := [][2]float64{segs[i][0], segs[i][1]}
		// Extend forward from the tail, then backward from the head.
		for dir := 0; dir < 2; dir++ {
			for {
				tail := poly[len(poly)-1]
				found := -1
				for _, cand := range index[key(tail)] {
					if used[cand] {
						continue
					}
					if near(segs[cand][0], tail) || near(segs[cand][1], tail) {
						found = cand
						break
					}
				}
				if found < 0 {
					break
				}
				used[found] = true
				if near(segs[found][0], tail) {
					poly = append(poly, segs[found][1])
				} else {
					poly = append(poly, segs[found][0])
				}
			}
			// Reverse to extend the other end.
			for l, r := 0, len(poly)-1; l < r; l, r = l+1, r-1 {
				poly[l], poly[r] = poly[r], poly[l]
			}
		}
		polys = append(polys, poly)
	}
	// Deterministic output order: by first vertex.
	sort.Slice(polys, func(a, b int) bool {
		pa, pb := polys[a][0], polys[b][0]
		//lint:ignore floatcmp sort tie-break on stored vertex values; exact compare is the correct ordering predicate
		if pa[1] != pb[1] {
			return pa[1] < pb[1]
		}
		return pa[0] < pb[0]
	})
	return polys
}
