package post

import (
	"math"
	"testing"

	"earthing/internal/geom"
	"earthing/internal/sched"
)

// TestProfilePotentialOptMatchesSerial checks the parallelized profile path
// against the legacy per-point evaluation, bit-identical across worker
// counts (same per-point arithmetic regardless of schedule).
func TestProfilePotentialOptMatchesSerial(t *testing.T) {
	res := solved(t)
	a := res.Assembler()
	sSeq, vSeq := ProfilePotentialOpt(a, res.Sigma, res.GPR, -5, 3, 25, 17, 40,
		SurfaceOptions{Workers: 1})
	sPar, vPar := ProfilePotentialOpt(a, res.Sigma, res.GPR, -5, 3, 25, 17, 40,
		SurfaceOptions{Workers: 4, Schedule: sched.Schedule{Kind: sched.Static}})
	for i := range vSeq {
		if sSeq[i] != sPar[i] || vSeq[i] != vPar[i] {
			t.Fatalf("point %d: parallel (%v, %v) vs serial (%v, %v)",
				i, sPar[i], vPar[i], sSeq[i], vSeq[i])
		}
	}
	// And against direct per-point evaluation.
	for i, x := range []float64{-5, 25} {
		y := []float64{3, 17}[i]
		direct := res.GPR * a.Potential(geom.V(x, y, 0), res.Sigma)
		got := vSeq[i*(len(vSeq)-1)]
		if math.Abs(got-direct) > 1e-9*(1+math.Abs(direct)) {
			t.Errorf("endpoint %d: %v vs direct %v", i, got, direct)
		}
	}
}

// TestEFieldSurfaceMatchesRect checks the bounds+margin wrapper against an
// explicit-rectangle call and direct gradient evaluation.
func TestEFieldSurfaceMatchesRect(t *testing.T) {
	res := solved(t)
	a := res.Assembler()
	opt := SurfaceOptions{NX: 9, NY: 9, Margin: 4}
	r := EFieldSurface(a, res.Mesh, res.Sigma, res.GPR, opt)
	b := res.Mesh.Bounds()
	want := EFieldRaster(a, res.Sigma, res.GPR,
		b.Min.X-4, b.Min.Y-4, b.Max.X+4, b.Max.Y+4, opt)
	for i := range r.V {
		if r.V[i] != want.V[i] {
			t.Fatalf("cell %d: surface %v vs rect %v", i, r.V[i], want.V[i])
		}
	}
	x, y := r.Pos(2, 6)
	e := a.ElectricField(geom.V(x, y, 0), res.Sigma)
	direct := res.GPR * math.Hypot(e.X, e.Y)
	if math.Abs(r.At(2, 6)-direct) > 1e-9*(1+direct) {
		t.Errorf("raster %v vs direct |E_h| %v", r.At(2, 6), direct)
	}
}

// TestComputeVoltagesOptMatchesDefault checks the knobbed voltage extraction
// reproduces the default path exactly for any worker count.
func TestComputeVoltagesOptMatchesDefault(t *testing.T) {
	res := solved(t)
	a := res.Assembler()
	want := ComputeVoltages(a, res.Mesh, res.Sigma, res.GPR, 2)
	got := ComputeVoltagesOpt(a, res.Mesh, res.Sigma, res.GPR, 2,
		SurfaceOptions{Workers: 3})
	if want != got {
		t.Fatalf("ComputeVoltagesOpt %+v differs from ComputeVoltages %+v", got, want)
	}
}
