package post

import (
	"earthing/internal/bem"
	"earthing/internal/geom"
)

// CrossSection samples the potential on a vertical plane: the section runs
// from (x0, y0) to (x1, y1) on the surface and extends from depth 0 down to
// maxDepth. The result reuses Raster with X = arc length along the section
// and Y = depth (positive down, row 0 at the surface).
//
// Vertical sections make the layered-soil physics visible: equipotentials
// refract at the layer interfaces (the flux continuity condition of
// eq. 2.3), which surface maps cannot show. Points at different depths hit
// different observation layers; the evaluator builds one flattened plan per
// layer on first touch.
func CrossSection(a *bem.Assembler, sigma []float64, scale float64, x0, y0, x1, y1, maxDepth float64, opt SurfaceOptions) *Raster {
	opt = opt.withDefaults()
	length := geom.V(x1-x0, y1-y0, 0).Norm()
	r := &Raster{
		X0: 0, Y0: 0,
		DX: length / float64(opt.NX-1),
		DY: maxDepth / float64(opt.NY-1),
		NX: opt.NX, NY: opt.NY,
		V: make([]float64, opt.NX*opt.NY),
	}
	pts := make([]geom.Vec3, opt.NX*opt.NY)
	for j := 0; j < opt.NY; j++ {
		depth := r.Y0 + float64(j)*r.DY
		for i := 0; i < opt.NX; i++ {
			t := float64(i) / float64(opt.NX-1)
			pts[j*opt.NX+i] = geom.V(x0+t*(x1-x0), y0+t*(y1-y0), depth)
		}
	}
	a.Evaluator().PotentialBatch(pts, sigma, scale, r.V, batchOpt(opt))
	return r
}
