package post

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"sort"

	"earthing/internal/bem"
	"earthing/internal/geom"
	"earthing/internal/grid"
)

// ElementLeakage summarises one element's share of the fault current
// (eq. 4.1's discretized leakage density σ(ξ) = Σ σᵢNᵢ(ξ)).
type ElementLeakage struct {
	Element  int
	Midpoint geom.Vec3
	Vertical bool
	// MeanDensity is the average leakage line density over the element in
	// A/m (at the caller's GPR scale).
	MeanDensity float64
	// Current is the element's total leaked current in A.
	Current float64
	// Share is Current / IΓ.
	Share float64
}

// LeakageReport aggregates the per-element leakage distribution.
type LeakageReport struct {
	Elements []ElementLeakage // sorted by descending current
	Total    float64          // IΓ in A
	// MaxDensity and MinDensity are the extreme element-mean densities.
	MaxDensity, MinDensity float64
	// RodShare is the fraction of IΓ leaked by vertical elements.
	RodShare float64
}

// ComputeLeakage builds the leakage distribution from the solved DoF vector
// (scaled by gpr). The classic design insight it surfaces: perimeter and
// corner conductors leak disproportionately, which is why meshes are graded
// toward the edges.
func ComputeLeakage(m *grid.Mesh, sigma []float64, gpr float64) LeakageReport {
	rep := LeakageReport{MinDensity: math.Inf(1), MaxDensity: math.Inf(-1)}
	for e, el := range m.Elements {
		l := el.Seg.Length()
		var mean float64
		if m.Kind == grid.Linear {
			mean = gpr * (sigma[el.DoF[0]] + sigma[el.DoF[1]]) / 2
		} else {
			mean = gpr * sigma[el.DoF[0]]
		}
		cur := mean * l
		rep.Elements = append(rep.Elements, ElementLeakage{
			Element:     e,
			Midpoint:    el.Seg.Midpoint(),
			Vertical:    el.Seg.IsVertical(1e-9),
			MeanDensity: mean,
			Current:     cur,
		})
		rep.Total += cur
		rep.MaxDensity = math.Max(rep.MaxDensity, mean)
		rep.MinDensity = math.Min(rep.MinDensity, mean)
	}
	for i := range rep.Elements {
		if rep.Total != 0 {
			rep.Elements[i].Share = rep.Elements[i].Current / rep.Total
		}
		if rep.Elements[i].Vertical {
			rep.RodShare += rep.Elements[i].Share
		}
	}
	sort.Slice(rep.Elements, func(a, b int) bool {
		return rep.Elements[a].Current > rep.Elements[b].Current
	})
	return rep
}

// WriteLeakageCSV emits element,x,y,z,density,current,share rows.
func WriteLeakageCSV(w io.Writer, rep LeakageReport) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "element,x,y,z,density_A_per_m,current_A,share")
	for _, e := range rep.Elements {
		fmt.Fprintf(bw, "%d,%.4g,%.4g,%.4g,%.6g,%.6g,%.6g\n",
			e.Element, e.Midpoint.X, e.Midpoint.Y, e.Midpoint.Z,
			e.MeanDensity, e.Current, e.Share)
	}
	return bw.Flush()
}

// WriteLeakageSummary prints the top-n leaking elements and aggregate stats.
func WriteLeakageSummary(w io.Writer, rep LeakageReport, n int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "total leaked current: %.6g A (rods: %.1f%%)\n", rep.Total, 100*rep.RodShare)
	fmt.Fprintf(bw, "leakage density range: %.4g .. %.4g A/m (ratio %.2f)\n",
		rep.MinDensity, rep.MaxDensity, rep.MaxDensity/math.Max(rep.MinDensity, 1e-300))
	if n > len(rep.Elements) {
		n = len(rep.Elements)
	}
	fmt.Fprintf(bw, "top %d elements by leaked current:\n", n)
	for _, e := range rep.Elements[:n] {
		kind := "grid"
		if e.Vertical {
			kind = "rod"
		}
		fmt.Fprintf(bw, "  #%-4d %-4s at (%6.1f, %6.1f, %4.2f): %8.4g A (%5.2f%%)\n",
			e.Element, kind, e.Midpoint.X, e.Midpoint.Y, e.Midpoint.Z,
			e.Current, 100*e.Share)
	}
	return bw.Flush()
}

// EFieldRaster samples the horizontal surface electric-field magnitude
// |E_h|·scale on a rectangle (V/m at the caller's GPR scale when scale is
// the GPR). Multiplied by the 1 m step distance this is the step-voltage
// map, the gradient counterpart of the potential rasters of Figures
// 5.2/5.4; its maxima sit at the grid edges and corners where step hazards
// concentrate.
func EFieldRaster(a *bem.Assembler, sigma []float64, scale float64, x0, y0, x1, y1 float64, opt SurfaceOptions) *Raster {
	//lint:ignore errdrop background context never cancels, so the error is always nil
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	r, _ := EFieldRasterCtx(context.Background(), a, sigma, scale, x0, y0, x1, y1, opt)
	return r
}

// EFieldRasterCtx is EFieldRaster with cooperative cancellation at raster-
// point boundaries; on cancellation the partial raster is discarded and
// ctx.Err() returned.
func EFieldRasterCtx(ctx context.Context, a *bem.Assembler, sigma []float64, scale float64, x0, y0, x1, y1 float64, opt SurfaceOptions) (*Raster, error) {
	opt = opt.withDefaults()
	r := &Raster{
		X0: x0, Y0: y0,
		DX: (x1 - x0) / float64(opt.NX-1),
		DY: (y1 - y0) / float64(opt.NY-1),
		NX: opt.NX, NY: opt.NY,
		V: make([]float64, opt.NX*opt.NY),
	}
	pts := make([]geom.Vec3, opt.NX*opt.NY)
	for j := 0; j < opt.NY; j++ {
		y := r.Y0 + float64(j)*r.DY
		for i := 0; i < opt.NX; i++ {
			pts[j*opt.NX+i] = geom.V(r.X0+float64(i)*r.DX, y, 0)
		}
	}
	grads := make([]geom.Vec3, len(pts))
	if _, err := a.Evaluator().GradBatchCtx(ctx, pts, sigma, grads, batchOpt(opt)); err != nil {
		return nil, err
	}
	// E = −∇V, so |E_h| = |∇V_h| — the sign never survives the magnitude.
	for i, g := range grads {
		r.V[i] = scale * math.Hypot(g.X, g.Y)
	}
	return r, nil
}

// EFieldSurface is EFieldRaster over the mesh bounds plus opt.Margin — the
// step-voltage map companion of SurfacePotential.
func EFieldSurface(a *bem.Assembler, mesh interface{ Bounds() geom.AABB }, sigma []float64, scale float64, opt SurfaceOptions) *Raster {
	//lint:ignore errdrop background context never cancels, so the error is always nil
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	r, _ := EFieldSurfaceCtx(context.Background(), a, mesh, sigma, scale, opt)
	return r
}

// EFieldSurfaceCtx is EFieldSurface with cooperative cancellation (see
// EFieldRasterCtx).
func EFieldSurfaceCtx(ctx context.Context, a *bem.Assembler, mesh interface{ Bounds() geom.AABB }, sigma []float64, scale float64, opt SurfaceOptions) (*Raster, error) {
	opt = opt.withDefaults()
	b := mesh.Bounds()
	return EFieldRasterCtx(ctx, a, sigma, scale,
		b.Min.X-opt.Margin, b.Min.Y-opt.Margin,
		b.Max.X+opt.Margin, b.Max.Y+opt.Margin, opt)
}

// StepProfileByField samples the surface electric-field magnitude along a
// line and converts it to the per-metre step voltage |E|·1 m — the gradient
// counterpart to ProfilePotential's finite differences.
func StepProfileByField(a *bem.Assembler, sigma []float64, scale float64, x0, y0, x1, y1 float64, n int) (s, step []float64) {
	if n < 2 {
		panic("post: profile needs ≥ 2 points")
	}
	s = make([]float64, n)
	step = make([]float64, n)
	pts := make([]geom.Vec3, n)
	length := math.Hypot(x1-x0, y1-y0)
	for i := 0; i < n; i++ {
		t := float64(i) / float64(n-1)
		s[i] = t * length
		pts[i] = geom.V(x0+t*(x1-x0), y0+t*(y1-y0), 0)
	}
	grads := make([]geom.Vec3, n)
	a.Evaluator().GradBatch(pts, sigma, grads, bem.BatchOptions{})
	for i, g := range grads {
		// Horizontal field only: the vertical component vanishes on the
		// surface (air is insulating) and a step spans 1 m horizontally.
		step[i] = scale * math.Hypot(g.X, g.Y)
	}
	return s, step
}
