// Package fdm implements the baseline the paper argues against: a standard
// finite-difference solver for the grounding problem that discretizes the
// whole 3-D soil volume ("the use of standard numerical techniques (FEM or
// FD) should involve a completely out of range computing effort since
// discretization of the domain is required", §3).
//
// It solves div(γ·grad V) = 0 on a box with a 7-point stencil, the
// insulating-surface condition ∂V/∂z = 0 at z = 0, V → 0 on the remote
// (truncated) boundaries and V = 1 on electrode cells, by matrix-free
// Jacobi-preconditioned conjugate gradients.
//
// The comparison experiments quantify the paper's argument: to reach even
// engineering-grade accuracy for a thin-wire electrode the lattice must be
// orders of magnitude larger than the BEM system — the thin conductor
// (radius ~6 mm) cannot be resolved by metre-scale cells at all, only
// mimicked through the lattice's effective singularity radius.
package fdm

import (
	"errors"
	"fmt"
	"math"

	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/soil"
)

// Box describes the truncated soil domain and lattice.
type Box struct {
	X0, Y0 float64 // minimum corner on the surface plane
	X1, Y1 float64
	Depth  float64 // z ∈ [0, Depth]
	H      float64 // lattice spacing (uniform in all directions)
}

// Solver is a configured finite-difference grounding solver.
type Solver struct {
	box        Box
	nx, ny, nz int
	gamma      []float64 // per-node conductivity
	dirichlet  []bool    // electrode nodes (V = 1)
	boundary   []bool    // truncation boundary nodes (V = 0)
}

// Result reports an FD solve.
type Result struct {
	V          []float64 // nodal potentials
	Req        float64   // equivalent resistance, Ω
	Nodes      int       // lattice size (unknowns incl. fixed nodes)
	Iterations int       // CG iterations
	Residual   float64
}

// New builds the solver: lattice, per-node conductivities from the soil
// model, electrode marking from the grid (every lattice node within half a
// cell of a conductor axis becomes a Dirichlet node).
func New(g *grid.Grid, model soil.Model, box Box) (*Solver, error) {
	if box.H <= 0 || box.X1 <= box.X0 || box.Y1 <= box.Y0 || box.Depth <= 0 {
		return nil, errors.New("fdm: invalid box")
	}
	nx := int(math.Round((box.X1-box.X0)/box.H)) + 1
	ny := int(math.Round((box.Y1-box.Y0)/box.H)) + 1
	nz := int(math.Round(box.Depth/box.H)) + 1
	if nx < 3 || ny < 3 || nz < 3 {
		return nil, errors.New("fdm: lattice too small")
	}
	n := nx * ny * nz
	if n > 40_000_000 {
		return nil, fmt.Errorf("fdm: lattice of %d nodes exceeds the sanity cap", n)
	}
	s := &Solver{box: box, nx: nx, ny: ny, nz: nz,
		gamma:     make([]float64, n),
		dirichlet: make([]bool, n),
		boundary:  make([]bool, n),
	}
	for k := 0; k < nz; k++ {
		z := float64(k) * box.H
		gz := model.Conductivity(model.LayerOf(z))
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := s.idx(i, j, k)
				s.gamma[idx] = gz
				if i == 0 || i == nx-1 || j == 0 || j == ny-1 || k == nz-1 {
					s.boundary[idx] = true
				}
			}
		}
	}
	// Electrode marking.
	marked := 0
	for _, c := range g.Conductors {
		marked += s.markConductor(c.Seg)
	}
	if marked == 0 {
		return nil, errors.New("fdm: no lattice node lies on an electrode; refine H or enlarge the box")
	}
	return s, nil
}

func (s *Solver) idx(i, j, k int) int { return (k*s.ny+j)*s.nx + i }

// markConductor sets Dirichlet nodes along a segment axis.
func (s *Solver) markConductor(seg geom.Segment) int {
	steps := int(math.Ceil(seg.Length()/(0.5*s.box.H))) + 1
	marked := 0
	for t := 0; t <= steps; t++ {
		p := seg.Point(float64(t) / float64(steps))
		i := int(math.Round((p.X - s.box.X0) / s.box.H))
		j := int(math.Round((p.Y - s.box.Y0) / s.box.H))
		k := int(math.Round(p.Z / s.box.H))
		if i <= 0 || i >= s.nx-1 || j <= 0 || j >= s.ny-1 || k < 0 || k >= s.nz-1 {
			continue // electrodes on the truncation boundary are ignored
		}
		idx := s.idx(i, j, k)
		if !s.dirichlet[idx] {
			s.dirichlet[idx] = true
			marked++
		}
	}
	return marked
}

// NumNodes returns the lattice size.
func (s *Solver) NumNodes() int { return s.nx * s.ny * s.nz }

// apply computes y = A·x for the variable-coefficient Laplacian with the
// surface Neumann condition, treating Dirichlet and boundary nodes as
// identity rows (their x entries are forced values).
func (s *Solver) apply(x, y []float64) {
	nx, ny, nz := s.nx, s.ny, s.nz
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := s.idx(i, j, k)
				if s.dirichlet[idx] || s.boundary[idx] {
					y[idx] = x[idx]
					continue
				}
				g0 := s.gamma[idx]
				var diag, off float64
				add := func(nIdx int, gn float64) {
					w := 0.5 * (g0 + gn) // face conductivity
					diag += w
					off += w * x[nIdx]
				}
				add(idx-1, s.gamma[idx-1])
				add(idx+1, s.gamma[idx+1])
				add(idx-nx, s.gamma[idx-nx])
				add(idx+nx, s.gamma[idx+nx])
				if k > 0 {
					add(idx-nx*ny, s.gamma[idx-nx*ny])
				}
				// Surface plane k == 0: the ghost node mirrors the interior
				// one (∂V/∂z = 0), doubling the downward face instead.
				add(idx+nx*ny, s.gamma[idx+nx*ny])
				if k == 0 {
					add(idx+nx*ny, s.gamma[idx+nx*ny])
				}
				y[idx] = diag*x[idx] - off
			}
		}
	}
}

// Solve runs PCG to the relative tolerance and extracts Req.
func (s *Solver) Solve(tol float64, maxIter int) (*Result, error) {
	if tol <= 0 {
		tol = 1e-8
	}
	n := s.NumNodes()
	if maxIter <= 0 {
		maxIter = 20 * int(math.Cbrt(float64(n))) * 10
	}

	// Unknown vector with forced values folded into the RHS: solve
	// A·v = b where rows of fixed nodes are identity and b carries their
	// values (1 on electrodes, 0 on the truncation boundary).
	b := make([]float64, n)
	for i := range b {
		if s.dirichlet[i] {
			b[i] = 1
		}
	}

	// Diagonal of A (sum of face conductivities) for Jacobi preconditioning.
	diag := make([]float64, n)
	{
		nx, ny, nz := s.nx, s.ny, s.nz
		for k := 0; k < nz; k++ {
			for j := 0; j < ny; j++ {
				for i := 0; i < nx; i++ {
					idx := s.idx(i, j, k)
					if s.dirichlet[idx] || s.boundary[idx] {
						diag[idx] = 1
						continue
					}
					g0 := s.gamma[idx]
					var d float64
					face := func(nIdx int) { d += 0.5 * (g0 + s.gamma[nIdx]) }
					face(idx - 1)
					face(idx + 1)
					face(idx - nx)
					face(idx + nx)
					if k > 0 {
						face(idx - nx*ny)
					}
					face(idx + nx*ny)
					if k == 0 {
						face(idx + nx*ny)
					}
					diag[idx] = d
				}
			}
		}
	}

	// PCG (matrix-free).
	v := make([]float64, n)
	copy(v, b) // start from the forced values
	r := make([]float64, n)
	z := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	s.apply(v, ap)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	normB := norm2(b)
	if normB == 0 {
		return nil, errors.New("fdm: empty right-hand side")
	}
	for i := range z {
		z[i] = r[i] / diag[i]
	}
	copy(p, z)
	rz := dot(r, z)

	res := &Result{Nodes: n}
	for it := 0; it < maxIter; it++ {
		nr := norm2(r) / normB
		res.Iterations = it
		res.Residual = nr
		if nr <= tol {
			break
		}
		s.apply(p, ap)
		pap := dot(p, ap)
		if pap <= 0 || math.IsNaN(pap) {
			return nil, fmt.Errorf("fdm: CG breakdown at iteration %d", it)
		}
		alpha := rz / pap
		for i := range v {
			v[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		for i := range z {
			z[i] = r[i] / diag[i]
		}
		rzNew := dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	if res.Residual > tol {
		return nil, fmt.Errorf("fdm: CG did not converge: residual %g after %d iterations", res.Residual, res.Iterations)
	}
	res.V = v

	// Total current: flux out of the Dirichlet set, I = Σ faces w·(V_e − V_nb)·h.
	nx, ny := s.nx, s.ny
	var current float64
	flux := func(idx, nIdx int) {
		if s.dirichlet[nIdx] {
			return // interior electrode face
		}
		w := 0.5 * (s.gamma[idx] + s.gamma[nIdx])
		current += w * (v[idx] - v[nIdx]) * s.box.H
	}
	for k := 0; k < s.nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				idx := s.idx(i, j, k)
				if !s.dirichlet[idx] {
					continue
				}
				flux(idx, idx-1)
				flux(idx, idx+1)
				flux(idx, idx-nx)
				flux(idx, idx+nx)
				if k > 0 {
					flux(idx, idx-nx*ny)
				}
				flux(idx, idx+nx*ny)
				if k == 0 { // mirrored upper face
					flux(idx, idx+nx*ny)
				}
			}
		}
	}
	if current <= 0 {
		return nil, errors.New("fdm: non-positive electrode current")
	}
	res.Req = 1 / current
	return res, nil
}

func dot(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }
