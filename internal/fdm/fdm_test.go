package fdm

import (
	"math"
	"testing"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/soil"
)

// hemisphereGrid marks a hemispherical electrode of radius r0 by a dense
// cluster of tiny "conductors" filling the hemisphere surface — the
// classical electrode with the exact half-space resistance ρ/(2π·r0).
func hemisphereGrid(r0, h float64) *grid.Grid {
	g := &grid.Grid{Name: "hemisphere"}
	// Vertical spokes from the surface to the hemisphere boundary sample
	// the volume densely enough that every lattice node inside is marked.
	step := h / 2
	for x := -r0; x <= r0+1e-9; x += step {
		for y := -r0; y <= r0+1e-9; y += step {
			if x*x+y*y > r0*r0 {
				continue
			}
			depth := math.Sqrt(r0*r0 - x*x - y*y)
			if depth < step {
				continue
			}
			g.AddConductor(geom.V(x, y, 0), geom.V(x, y, depth), 0.001)
		}
	}
	return g
}

func TestHemisphereMatchesClosedForm(t *testing.T) {
	const (
		rho = 100.0
		r0  = 1.0
		h   = 0.25
	)
	g := hemisphereGrid(r0, h)
	model := soil.NewUniform(1 / rho)
	box := Box{X0: -12, Y0: -12, X1: 12, Y1: 12, Depth: 12, H: h}
	s, err := New(g, model, box)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Solve(1e-8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two controlled discretization effects shift the closed form
	// ρ/(2π·r0): the staircase marking enlarges the electrode by ≈ h/2,
	// and the V = 0 truncation at distance Rbox shunts ρ/(2π·Rbox).
	rEff := r0 + h/2
	rBox := 12.0
	want := rho / (2 * math.Pi) * (1/rEff - 1/rBox)
	rel := math.Abs(res.Req-want) / want
	if rel > 0.06 {
		t.Errorf("hemisphere Req = %.3f, corrected closed form %.3f (rel %.3f, %d nodes, %d iters)",
			res.Req, want, rel, res.Nodes, res.Iterations)
	}
	// And the uncorrected value brackets it from above.
	if res.Req > rho/(2*math.Pi*r0) {
		t.Errorf("Req %v above the infinite-domain closed form", res.Req)
	}
	// Potentials are bounded by the electrode value and positive inside.
	for _, v := range res.V {
		if v < -1e-12 || v > 1+1e-12 {
			t.Fatalf("potential out of range: %v", v)
		}
	}
}

func TestTwoLayerDegenerateMatchesUniform(t *testing.T) {
	g := grid.SingleRod(0, 0, 0, 2, 0.0075)
	box := Box{X0: -8, Y0: -8, X1: 8, Y1: 8, Depth: 10, H: 0.5}
	solve := func(m soil.Model) float64 {
		s, err := New(g, m, box)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Solve(1e-9, 0)
		if err != nil {
			t.Fatal(err)
		}
		return r.Req
	}
	uni := solve(soil.NewUniform(0.01))
	tl := solve(soil.NewTwoLayer(0.01, 0.01, 1.0))
	if math.Abs(uni-tl) > 1e-9*(1+uni) {
		t.Errorf("degenerate two-layer %v vs uniform %v", tl, uni)
	}
}

// TestRodAgainstBEM compares the FD baseline with the BEM solver on a
// driven rod. The FD lattice cannot represent the 7.5 mm conductor radius —
// its Dirichlet line behaves like a conductor of effective radius ≈ 0.3·h.
// Comparing against the BEM solution *for that effective radius* (with the
// box-truncation shunt added back) isolates the discretization physics: the
// two methods then agree to a few percent, while the FD system is 3–4
// orders of magnitude larger. Both halves are the paper's §3 argument.
func TestRodAgainstBEM(t *testing.T) {
	const gamma = 0.01
	bemFor := func(radius float64) float64 {
		g := grid.SingleRod(0, 0, 0, 3, radius)
		m, err := grid.Discretize(g, grid.Linear, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.AnalyzeMesh(m, soil.NewUniform(gamma), core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Req
	}
	thinReq := bemFor(0.0075)
	g := grid.SingleRod(0, 0, 0, 3, 0.0075)

	for _, h := range []float64{1.0, 0.5} {
		box := Box{X0: -12, Y0: -12, X1: 12, Y1: 12, Depth: 14, H: h}
		s, err := New(g, soil.NewUniform(gamma), box)
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Solve(1e-8, 0)
		if err != nil {
			t.Fatal(err)
		}
		// The fat lattice electrode always reads low vs the thin wire.
		if r.Req > thinReq {
			t.Errorf("h=%v: FD Req %v above thin-wire BEM %v", h, r.Req, thinReq)
		}
		// Add back the truncation shunt and compare with the BEM at the
		// lattice's effective radius.
		corrected := r.Req + 1/(gamma*2*math.Pi*12)
		want := bemFor(0.3 * h)
		if rel := math.Abs(corrected-want) / want; rel > 0.12 {
			t.Errorf("h=%v: FD (corrected) %v vs BEM(r=0.3h) %v (rel %v)", h, corrected, want, rel)
		}
		// The FD system dwarfs the BEM system — the paper's point.
		mDoF := 16 // 15 elements + 1
		if r.Nodes < 300*mDoF {
			t.Errorf("unexpected: FD %d nodes not ≫ BEM %d DoF", r.Nodes, mDoF)
		}
	}
}

func TestValidation(t *testing.T) {
	g := grid.SingleRod(0, 0, 0, 2, 0.0075)
	model := soil.NewUniform(0.01)
	if _, err := New(g, model, Box{X0: 0, X1: -1, Y0: 0, Y1: 1, Depth: 1, H: 0.5}); err == nil {
		t.Error("inverted box accepted")
	}
	if _, err := New(g, model, Box{X0: -1, X1: 1, Y0: -1, Y1: 1, Depth: 1, H: 0}); err == nil {
		t.Error("zero spacing accepted")
	}
	// Electrode outside the box → nothing marked.
	far := grid.SingleRod(100, 100, 0, 2, 0.0075)
	if _, err := New(far, model, Box{X0: -5, X1: 5, Y0: -5, Y1: 5, Depth: 5, H: 0.5}); err == nil {
		t.Error("unmarked electrode accepted")
	}
}

var _ = bem.Options{} // the comparison tests exercise the BEM via core
