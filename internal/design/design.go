// Package design closes the loop the paper's introduction describes — "an
// accurate design of grounding systems … to assure the safety of the
// persons" — by searching grid layouts against resistance and IEEE Std 80
// safety targets. It is the programmatic form of the densify-until-safe
// iteration a design office performs with the CAD system of §5.
package design

import (
	"errors"
	"fmt"

	"earthing/internal/core"
	"earthing/internal/grid"
	"earthing/internal/post"
	"earthing/internal/safety"
	"earthing/internal/soil"
)

// Targets are the acceptance criteria of a design.
type Targets struct {
	// MaxReq is the maximum acceptable equivalent resistance in Ω
	// (0 disables the check).
	MaxReq float64
	// FaultCurrent is the design single-line-to-ground fault current in A;
	// the grid's GPR under it drives the voltage checks.
	FaultCurrent float64
	// Safety holds the IEEE Std 80 criteria; a zero FaultDuration disables
	// the voltage checks.
	Safety safety.Criteria
	// VoltageRes is the surface sampling resolution in metres for the
	// touch/step extraction (default 1, the IEEE step distance; coarser
	// values speed the search up at some risk of missing local maxima).
	VoltageRes float64
}

// enabled reports which checks are active.
func (t Targets) reqCheck() bool    { return t.MaxReq > 0 }
func (t Targets) safetyCheck() bool { return t.Safety.FaultDuration > 0 }

// Space is the layout family searched: square-ish lattices over a fixed
// rectangular area with optional perimeter rods.
type Space struct {
	Width, Height float64 // plan dimensions, m
	Depth         float64 // burial depth, m
	Radius        float64 // conductor radius, m
	// MinLines and MaxLines bound the lattice line count per direction
	// (defaults 3 and 12).
	MinLines, MaxLines int
	// PerimeterRods, when positive, adds that many rods of RodLength along
	// the perimeter of every candidate.
	PerimeterRods int
	RodLength     float64
	RodRadius     float64
}

func (s Space) withDefaults() (Space, error) {
	if s.Width <= 0 || s.Height <= 0 {
		return s, errors.New("design: non-positive plan dimensions")
	}
	if s.Depth <= 0 {
		s.Depth = 0.8
	}
	if s.Radius <= 0 {
		s.Radius = 0.006
	}
	if s.MinLines < 2 {
		s.MinLines = 3
	}
	if s.MaxLines < s.MinLines {
		s.MaxLines = s.MinLines + 9
	}
	if s.PerimeterRods > 0 {
		if s.RodLength <= 0 {
			s.RodLength = 3
		}
		if s.RodRadius <= 0 {
			s.RodRadius = 0.007
		}
	}
	return s, nil
}

// buildCandidate constructs the n-line lattice of the space.
func (s Space) buildCandidate(n int) *grid.Grid {
	g := grid.RectMesh(0, 0, s.Width, s.Height, n, n, s.Depth, s.Radius)
	g.Name = fmt.Sprintf("design-%dx%d", n, n)
	if s.PerimeterRods > 0 {
		perim := 2 * (s.Width + s.Height)
		for k := 0; k < s.PerimeterRods; k++ {
			x, y := perimeterPoint(s.Width, s.Height, perim*float64(k)/float64(s.PerimeterRods))
			g.AddRod(x, y, s.Depth, s.RodLength, s.RodRadius)
		}
	}
	return g
}

func perimeterPoint(w, h, s float64) (x, y float64) {
	switch {
	case s < w:
		return s, 0
	case s < w+h:
		return w, s - w
	case s < 2*w+h:
		return w - (s - w - h), h
	default:
		return 0, h - (s - 2*w - h)
	}
}

// Candidate is one evaluated layout.
type Candidate struct {
	Lines    int
	Grid     *grid.Grid
	Result   *core.Result
	GPR      float64 // FaultCurrent·Req, V
	Voltages post.Voltages
	Verdict  safety.Verdict
	Passes   bool
	// CostLength is the total electrode length — the material-cost proxy
	// the search minimizes.
	CostLength float64
}

// ErrNoFeasibleDesign is returned when no candidate in the space passes.
var ErrNoFeasibleDesign = errors.New("design: no candidate in the search space meets the targets")

// Search evaluates lattice densities in increasing cost order and returns
// the first (cheapest) candidate that meets every active target, plus the
// full evaluation trace. cfg configures the underlying analyses; its GPR is
// ignored (the fault current fixes it per candidate).
func Search(space Space, model soil.Model, tg Targets, cfg core.Config) (*Candidate, []Candidate, error) {
	space, err := space.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if tg.safetyCheck() && tg.FaultCurrent <= 0 {
		return nil, nil, errors.New("design: safety checks need a positive FaultCurrent")
	}
	if !tg.reqCheck() && !tg.safetyCheck() {
		return nil, nil, errors.New("design: no active targets")
	}

	var trace []Candidate
	for n := space.MinLines; n <= space.MaxLines; n++ {
		g := space.buildCandidate(n)
		cand, err := Evaluate(g, model, tg, cfg)
		if err != nil {
			return nil, trace, fmt.Errorf("design: %d-line candidate: %w", n, err)
		}
		cand.Lines = n
		trace = append(trace, *cand)
		if cand.Passes {
			return cand, trace, nil
		}
	}
	return nil, trace, ErrNoFeasibleDesign
}

// Evaluate analyzes one grid against the targets.
func Evaluate(g *grid.Grid, model soil.Model, tg Targets, cfg core.Config) (*Candidate, error) {
	cfg.GPR = 1
	res, err := core.Analyze(g, model, cfg)
	if err != nil {
		return nil, err
	}
	cand := &Candidate{
		Grid:       g,
		CostLength: g.TotalLength(),
		Passes:     true,
	}
	if tg.reqCheck() && res.Req > tg.MaxReq {
		cand.Passes = false
	}
	gpr := res.Req * tg.FaultCurrent
	cand.GPR = gpr

	cand.Result = res
	if tg.safetyCheck() {
		// Every output scales linearly with the GPR (§2), so the unit-GPR
		// solution is rescaled to the fault GPR for the voltage extraction —
		// no second solve needed.
		cand.Voltages = post.ComputeVoltagesOpt(res.Assembler(), res.Mesh, res.Sigma, gpr, tg.VoltageRes,
			post.SurfaceOptions{Workers: cfg.BEM.Workers, Schedule: cfg.BEM.Schedule})
		v, err := tg.Safety.Check(cand.Voltages.MaxStep, cand.Voltages.MaxTouch, cand.Voltages.MaxMesh)
		if err != nil {
			return nil, err
		}
		cand.Verdict = v
		if !v.Safe() {
			cand.Passes = false
		}
	}
	return cand, nil
}
