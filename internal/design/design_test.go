package design

import (
	"errors"
	"math"
	"testing"

	"earthing/internal/core"
	"earthing/internal/safety"
	"earthing/internal/soil"
)

func TestSearchMeetsReqTarget(t *testing.T) {
	space := Space{Width: 40, Height: 40, MinLines: 3, MaxLines: 8}
	model := soil.NewUniform(0.02) // 50 Ω·m
	best, trace, err := Search(space, model, Targets{MaxReq: 0.62}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || !best.Passes {
		t.Fatal("no passing candidate")
	}
	if best.Result.Req > 0.62 {
		t.Errorf("best Req = %v exceeds target", best.Result.Req)
	}
	// The search returns the cheapest passing layout: all earlier trace
	// entries must have failed.
	for _, c := range trace[:len(trace)-1] {
		if c.Passes {
			t.Errorf("earlier candidate %dx%d already passed", c.Lines, c.Lines)
		}
	}
	// Denser lattices reduce Req monotonically (with minor numerical slack).
	for i := 1; i < len(trace); i++ {
		if trace[i].Result.Req > trace[i-1].Result.Req*1.001 {
			t.Errorf("Req not decreasing with density: %v -> %v",
				trace[i-1].Result.Req, trace[i].Result.Req)
		}
	}
}

func TestSearchInfeasible(t *testing.T) {
	space := Space{Width: 10, Height: 10, MinLines: 2, MaxLines: 3}
	model := soil.NewUniform(0.001) // 1000 Ω·m: tiny grid cannot reach 0.1 Ω
	_, trace, err := Search(space, model, Targets{MaxReq: 0.1}, core.Config{})
	if !errors.Is(err, ErrNoFeasibleDesign) {
		t.Fatalf("err = %v, want ErrNoFeasibleDesign", err)
	}
	if len(trace) != 2 {
		t.Errorf("trace length %d", len(trace))
	}
}

func TestSearchWithSafety(t *testing.T) {
	space := Space{Width: 50, Height: 50, MinLines: 3, MaxLines: 9, PerimeterRods: 8}
	model := soil.NewTwoLayer(1.0/150, 1.0/40, 1.5)
	tg := Targets{
		FaultCurrent: 1_500,
		Safety: safety.Criteria{
			FaultDuration:    0.5,
			SoilRho:          150,
			SurfaceRho:       2500,
			SurfaceThickness: 0.1,
		},
		VoltageRes: 2.5, // coarse sampling keeps the test fast
	}
	best, trace, err := Search(space, model, tg, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !best.Verdict.Safe() {
		t.Errorf("winning design not safe: %v", best.Verdict)
	}
	if best.GPR <= 0 || best.Voltages.MaxTouch <= 0 {
		t.Errorf("candidate fields unset: %+v", best)
	}
	if len(trace) == 0 || trace[len(trace)-1].Lines != best.Lines {
		t.Error("trace does not end at the winner")
	}
}

func TestSearchValidation(t *testing.T) {
	model := soil.NewUniform(0.02)
	if _, _, err := Search(Space{}, model, Targets{MaxReq: 1}, core.Config{}); err == nil {
		t.Error("empty space accepted")
	}
	if _, _, err := Search(Space{Width: 10, Height: 10}, model, Targets{}, core.Config{}); err == nil {
		t.Error("no targets accepted")
	}
	if _, _, err := Search(Space{Width: 10, Height: 10}, model,
		Targets{Safety: safety.Criteria{FaultDuration: 0.5, SoilRho: 50}}, core.Config{}); err == nil {
		t.Error("safety without fault current accepted")
	}
}

func TestRodsReduceReq(t *testing.T) {
	model := soil.NewUniform(0.02)
	noRods := Space{Width: 30, Height: 30, Depth: 0.8, Radius: 0.006, MinLines: 4, MaxLines: 4}
	withRods := noRods
	withRods.PerimeterRods = 12
	withRods.RodLength = 4
	withRods.RodRadius = 0.007

	a, err := Evaluate(noRods.buildCandidate(4), model, Targets{MaxReq: 1e9}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(withRods.buildCandidate(4), model, Targets{MaxReq: 1e9}, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Result.Req >= a.Result.Req {
		t.Errorf("rods did not reduce Req: %v vs %v", b.Result.Req, a.Result.Req)
	}
	if b.CostLength <= a.CostLength {
		t.Error("rods should increase cost length")
	}
}

func TestPerimeterPointWraps(t *testing.T) {
	x, y := perimeterPoint(10, 6, 0)
	if x != 0 || y != 0 {
		t.Errorf("start = %v,%v", x, y)
	}
	x, y = perimeterPoint(10, 6, 13)
	if math.Abs(x-10) > 1e-12 || math.Abs(y-3) > 1e-12 {
		t.Errorf("s=13 = %v,%v", x, y)
	}
	// s = 29 lies on the west edge, 3 m down from the top-left corner.
	x, y = perimeterPoint(10, 6, 29)
	if math.Abs(x) > 1e-12 || math.Abs(y-3) > 1e-12 {
		t.Errorf("s=29 = %v,%v", x, y)
	}
}
