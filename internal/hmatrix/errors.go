package hmatrix

import (
	"errors"
	"fmt"
)

// ErrNonFinite is returned when an ACA cross row or column contains NaN or
// ±Inf — a poisoned kernel evaluation. The compressed representation would
// silently propagate the non-finite value into every matvec, so the build
// fails with this typed error instead.
var ErrNonFinite = errors.New("hmatrix: non-finite entry in ACA cross")

// ErrACAStalled is returned when an admissible block does not reach the
// requested relative tolerance within the rank cap. The η-admissible far
// field of the grounding kernels is exponentially low-rank, so a stall means
// the block partition and the geometry disagree (or the cap is set far too
// low for the tolerance).
var ErrACAStalled = errors.New("hmatrix: ACA did not converge within the rank cap")

// ErrCGStalled is returned by Solve when the preconditioned conjugate
// gradient iteration exhausts its iteration cap without reaching the
// residual target.
var ErrCGStalled = errors.New("hmatrix: CG did not converge")

// BuildError wraps a failure of the compression stage with the block it
// occurred in, so sweep logs can localize a poisoned kernel to a matrix
// region.
type BuildError struct {
	Block BlockID // which block tree node failed
	Err   error
}

// BlockID locates a block in the partition: permuted row and column ranges.
type BlockID struct {
	RowLo, RowHi int
	ColLo, ColHi int
}

// Error implements error.
func (e *BuildError) Error() string {
	return fmt.Sprintf("hmatrix: build failed on block rows [%d,%d) cols [%d,%d): %v",
		e.Block.RowLo, e.Block.RowHi, e.Block.ColLo, e.Block.ColHi, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *BuildError) Unwrap() error { return e.Err }

// SolveError wraps a failure of the iterative solve stage with the iteration
// state at failure.
type SolveError struct {
	Iterations int
	Residual   float64
	Err        error
}

// Error implements error.
func (e *SolveError) Error() string {
	return fmt.Sprintf("hmatrix: solve failed after %d iterations (residual %.3g): %v",
		e.Iterations, e.Residual, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *SolveError) Unwrap() error { return e.Err }
