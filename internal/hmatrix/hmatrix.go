package hmatrix

import (
	"context"
	"runtime"
	"sync/atomic"

	"earthing/internal/bem"
	"earthing/internal/faultinject"
	"earthing/internal/sched"
)

// Params configures the H-matrix construction. The zero value selects the
// defaults tuned for the grounding kernels (see DESIGN.md §14).
type Params struct {
	// Eps is the relative Frobenius tolerance of every compressed block
	// (default 1e-6). The global matvec error tracks it within a small
	// partition-dependent constant, which the differential suite pins.
	Eps float64
	// Eta is the admissibility parameter: a block is compressed when
	// min(diam) ≤ η·dist (default 2; larger η compresses more aggressively).
	Eta float64
	// LeafSize is the cluster-tree leaf capacity (default 64).
	LeafSize int
	// MaxRank caps the ACA rank per block (default 96). Hitting the cap
	// without meeting Eps fails the build with ErrACAStalled.
	MaxRank int
	// Workers is the parallel width of the block fill and the matvec
	// (≤ 0 selects GOMAXPROCS).
	Workers int
	// ExactGeometry disables the geometric pair cache, forcing every
	// elemental integral through the assembler's exact pair kernel. By
	// default (false), flat-kernel builds with Eps ≥ 1e-7 evaluate pairs on
	// canonicalized geometry (bem.PairMatrixQuant) and share one elemental
	// matrix across congruent pairs — a large constant-factor win on lattice
	// grids, at a ≲ 1e-9 relative entry perturbation that the enabling
	// threshold keeps two orders below the block tolerance. Set it for
	// bit-level comparisons of the assembled blocks against the dense path.
	ExactGeometry bool
	// Schedule distributes blocks over workers (zero value: dynamic,1 — the
	// block costs are as irregular as the element-pair columns).
	Schedule sched.Schedule
}

func (p Params) withDefaults() Params {
	if p.Eps <= 0 {
		p.Eps = 1e-6
	}
	if p.Eta <= 0 {
		p.Eta = 2
	}
	if p.LeafSize <= 0 {
		p.LeafSize = 64
	}
	if p.MaxRank <= 0 {
		p.MaxRank = 96
	}
	if p.MaxRank > maxRankScratch {
		p.MaxRank = maxRankScratch
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
	if p.Schedule.IsZero() {
		p.Schedule = sched.Schedule{Kind: sched.Dynamic, Chunk: 1}
	}
	return p
}

// blockKind discriminates the stored block variants.
type blockKind uint8

const (
	denseDiag blockKind = iota // symmetric leaf block on the diagonal
	denseOff                   // inadmissible off-diagonal leaf block
	lowRankB                   // ACA-compressed admissible block
)

// block is one stored node of the partition. Off-diagonal blocks are
// applied twice per matvec (direct and transposed) to account for the
// symmetric upper triangle that is not stored.
type block struct {
	kind         blockKind
	rowLo, rowHi int // permuted row range
	colLo, colHi int // permuted column range

	d    []float64 // dense m×n row-major (denseDiag: m == n)
	lr   *lowRank
	rOff int // offset of the row-range contribution in the matvec staging slab
	cOff int // offset of the col-range contribution (off-diagonal kinds only)
}

// BuildStats describes the compressed representation.
type BuildStats struct {
	N           int     // matrix order
	DenseBlocks int     // near-field blocks stored dense
	LowRank     int     // admissible blocks stored as UVᵀ
	MaxRank     int     // largest stored rank after recompression
	AvgRank     float64 // mean stored rank over low-rank blocks
	Bytes       int64   // compressed storage (block payloads)
	DenseBytes  int64   // packed dense equivalent n(n+1)/2 × 8
}

// CompressionRatio returns compressed bytes over packed dense bytes.
func (s BuildStats) CompressionRatio() float64 {
	if s.DenseBytes == 0 {
		return 1
	}
	return float64(s.Bytes) / float64(s.DenseBytes)
}

// HMatrix is the hierarchical representation of one Galerkin system matrix.
// It implements linalg.Operator over the original DoF ordering (the
// permutation is internal). Apply is safe to call repeatedly but not
// concurrently: the staging buffers are owned by the handle.
type HMatrix struct {
	n      int
	perm   []int // permuted position → original DoF
	blocks []block
	diag   []float64 // matrix diagonal in original DoF order
	stats  BuildStats

	workers  int
	schedule sched.Schedule

	// Matvec state: permuted input/output and the per-block staging slab
	// (each block writes only its own staging ranges inside the parallel
	// phase; a sequential scatter in fixed block order then accumulates, so
	// the product is bit-identical at every worker count).
	xp, yp  []float64
	staging []float64

	applies atomic.Int64 // operator applications, reported to fault injection
}

// Build constructs the H-matrix of the assembler's Galerkin system: cluster
// tree over the DoF node positions, η-admissible partition, ACA on the far
// field and dense near-field leaves through the assembler's pair kernels.
// Blocks are filled in parallel; each block is deterministic on its own, so
// the representation does not depend on the schedule. ctx cancels between
// blocks.
func Build(ctx context.Context, asm *bem.Assembler, p Params) (*HMatrix, error) {
	p = p.withDefaults()
	mesh := asm.Mesh()
	tree, err := NewClusterTree(mesh.NodePos, p.LeafSize)
	if err != nil {
		return nil, err
	}
	pairs := partition(tree.Root, p.Eta)

	h := &HMatrix{
		n:        mesh.NumDoF,
		perm:     tree.Perm,
		blocks:   make([]block, len(pairs)),
		workers:  p.Workers,
		schedule: p.Schedule,
	}

	// Per-worker fillers are created lazily inside the loop body; sched may
	// deliver a worker index one past the requested width (the coordinator
	// slot), hence the +1.
	adj := adjacency(mesh)
	k := mesh.DoFCount()
	fillers := make([]*filler, p.Workers+1)
	arenas := make([]bem.Arena, p.Workers+1)
	errs := make([]error, len(pairs))

	_, err = sched.ForStatsCtx(ctx, len(pairs), p.Workers, p.Schedule, func(i, w int) {
		if w >= len(fillers) {
			w = len(fillers) - 1
		}
		f := fillers[w]
		if f == nil {
			f = newFiller(asm, adj, k, asm.ColumnScratchFromArena(&arenas[w]))
			// The geometric cache's ≲ 1e-9 entry perturbation needs two
			// orders of margin under the block tolerance.
			if !p.ExactGeometry && p.Eps >= 1e-7 {
				f.enableGeoCache()
			}
			fillers[w] = f
		}
		f.resetCache()
		errs[i] = h.fillBlock(f, pairs[i], i, p.Eps, p.MaxRank)
	})
	if err != nil {
		return nil, err
	}
	for i, e := range errs {
		if e != nil {
			b := pairs[i]
			return nil, &BuildError{
				Block: BlockID{RowLo: b.row.Lo, RowHi: b.row.Hi, ColLo: b.col.Lo, ColHi: b.col.Hi},
				Err:   e,
			}
		}
	}

	h.finalize()
	return h, nil
}

// fillBlock computes the stored form of partition node i.
func (h *HMatrix) fillBlock(f *filler, bp blockPair, i int, eps float64, maxRank int) error {
	b := &h.blocks[i]
	b.rowLo, b.rowHi = bp.row.Lo, bp.row.Hi
	b.colLo, b.colHi = bp.col.Lo, bp.col.Hi
	m := bp.row.Size()
	n := bp.col.Size()
	switch {
	case bp.admissible:
		lr, err := acaBlock(f, h.perm, b.rowLo, m, b.colLo, n, eps, maxRank, i)
		if err != nil {
			return err
		}
		b.kind = lowRankB
		b.lr = lr
	case b.rowLo == b.colLo:
		b.kind = denseDiag
		b.d = make([]float64, m*n)
		f.dense(h.perm, b.rowLo, m, b.colLo, n, b.d)
	default:
		b.kind = denseOff
		b.d = make([]float64, m*n)
		f.dense(h.perm, b.rowLo, m, b.colLo, n, b.d)
	}
	return nil
}

// finalize lays out the matvec staging slab, extracts the diagonal and
// computes the storage statistics.
func (h *HMatrix) finalize() {
	h.stats = BuildStats{N: h.n, DenseBytes: int64(h.n) * int64(h.n+1) / 2 * 8}
	var rankSum int
	off := 0
	for i := range h.blocks {
		b := &h.blocks[i]
		m := b.rowHi - b.rowLo
		n := b.colHi - b.colLo
		b.rOff = off
		off += m
		if b.kind != denseDiag {
			b.cOff = off
			off += n
		}
		switch b.kind {
		case lowRankB:
			h.stats.LowRank++
			rankSum += b.lr.rank
			if b.lr.rank > h.stats.MaxRank {
				h.stats.MaxRank = b.lr.rank
			}
			h.stats.Bytes += int64(len(b.lr.u)+len(b.lr.v)) * 8
		default:
			h.stats.DenseBlocks++
			h.stats.Bytes += int64(len(b.d)) * 8
		}
	}
	if h.stats.LowRank > 0 {
		h.stats.AvgRank = float64(rankSum) / float64(h.stats.LowRank)
	}
	h.staging = make([]float64, off)
	h.xp = make([]float64, h.n)
	h.yp = make([]float64, h.n)

	// Diagonal: every diagonal DoF lives in exactly one denseDiag leaf.
	h.diag = make([]float64, h.n)
	for i := range h.blocks {
		b := &h.blocks[i]
		if b.kind != denseDiag {
			continue
		}
		m := b.rowHi - b.rowLo
		for ii := 0; ii < m; ii++ {
			h.diag[h.perm[b.rowLo+ii]] = b.d[ii*m+ii]
		}
	}
}

// Stats returns the compression statistics.
func (h *HMatrix) Stats() BuildStats { return h.stats }

// Order implements linalg.Operator.
func (h *HMatrix) Order() int { return h.n }

// Diag returns a copy of the matrix diagonal in original DoF order.
func (h *HMatrix) Diag() []float64 {
	d := make([]float64, h.n)
	copy(d, h.diag)
	return d
}

// Apply implements linalg.Operator: y = H·x in the original DoF ordering.
// Block products run in parallel over sched.ForTiles into disjoint staging
// ranges; the scatter into y is sequential in fixed block order, so the
// result is bit-identical for every worker count and schedule.
func (h *HMatrix) Apply(x, y []float64) {
	if len(x) != h.n || len(y) != h.n {
		panic("hmatrix: Apply dimension mismatch")
	}
	for p, d := range h.perm {
		h.xp[p] = x[d]
	}
	sched.ForTiles(len(h.blocks), 1, h.workers, h.schedule, func(lo, hi int) {
		var w [maxRankScratch]float64
		for i := lo; i < hi; i++ {
			h.blocks[i].compute(h.xp, h.staging, w[:])
		}
	})
	for i := range h.yp {
		h.yp[i] = 0
	}
	for i := range h.blocks {
		b := &h.blocks[i]
		for ii, v := range h.staging[b.rOff : b.rOff+b.rowHi-b.rowLo] {
			h.yp[b.rowLo+ii] += v
		}
		if b.kind != denseDiag {
			for jj, v := range h.staging[b.cOff : b.cOff+b.colHi-b.colLo] {
				h.yp[b.colLo+jj] += v
			}
		}
	}
	for p, d := range h.perm {
		y[d] = h.yp[p]
	}
	faultinject.Fire(faultinject.HMatrixCGIter, int(h.applies.Add(1)), y)
}

// maxRankScratch bounds the per-tile low-rank product scratch; Params
// validation keeps MaxRank within it.
const maxRankScratch = 256

// compute writes the block's matvec contributions into its staging ranges:
// the row-range product, and for off-diagonal blocks also the transposed
// col-range product. w is rank-sized scratch.
func (b *block) compute(xp, staging, w []float64) {
	m := b.rowHi - b.rowLo
	n := b.colHi - b.colLo
	xr := xp[b.rowLo : b.rowLo+m]
	xc := xp[b.colLo : b.colLo+n]
	out := staging[b.rOff : b.rOff+m]
	switch b.kind {
	case denseDiag:
		for ii := 0; ii < m; ii++ {
			row := b.d[ii*n : ii*n+n]
			var s float64
			for jj, a := range row {
				s += a * xc[jj]
			}
			out[ii] = s
		}
	case denseOff:
		outT := staging[b.cOff : b.cOff+n]
		for jj := range outT {
			outT[jj] = 0
		}
		for ii := 0; ii < m; ii++ {
			row := b.d[ii*n : ii*n+n]
			xi := xr[ii]
			var s float64
			for jj, a := range row {
				s += a * xc[jj]
				outT[jj] += a * xi
			}
			out[ii] = s
		}
	case lowRankB:
		r := b.lr.rank
		outT := staging[b.cOff : b.cOff+n]
		if r == 0 {
			for ii := range out {
				out[ii] = 0
			}
			for jj := range outT {
				outT[jj] = 0
			}
			return
		}
		w = w[:r]
		// w = Vᵀ·x_cols, then out = U·w.
		for l := range w {
			w[l] = 0
		}
		for jj := 0; jj < n; jj++ {
			if xj := xc[jj]; xj != 0 {
				row := b.lr.v[jj*r : jj*r+r]
				for l, a := range row {
					w[l] += a * xj
				}
			}
		}
		for ii := 0; ii < m; ii++ {
			row := b.lr.u[ii*r : ii*r+r]
			var s float64
			for l, a := range row {
				s += a * w[l]
			}
			out[ii] = s
		}
		// w = Uᵀ·x_rows, then outT = V·w.
		for l := range w {
			w[l] = 0
		}
		for ii := 0; ii < m; ii++ {
			if xi := xr[ii]; xi != 0 {
				row := b.lr.u[ii*r : ii*r+r]
				for l, a := range row {
					w[l] += a * xi
				}
			}
		}
		for jj := 0; jj < n; jj++ {
			row := b.lr.v[jj*r : jj*r+r]
			var s float64
			for l, a := range row {
				s += a * w[l]
			}
			outT[jj] = s
		}
	}
}
