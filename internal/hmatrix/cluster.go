// Package hmatrix breaks the dense-matrix wall of the Galerkin BEM solver:
// instead of assembling the full N×N system (O(N²) memory, O(N³) Cholesky),
// it partitions the degrees of freedom into a geometric cluster tree,
// splits the matrix into a block tree under the η-admissibility criterion,
// compresses well-separated blocks by adaptive cross approximation (ACA)
// and keeps only the near field dense — the standard hierarchical-matrix
// construction of the fast BEM literature (arXiv 1905.10602, 2110.12165)
// instantiated on the grounding kernels of this repository.
//
// The dense path stays the bit-exact reference: every compressed entry is
// generated from exactly the elemental pair integrals the dense assembler
// computes (bem.Assembler.PairMatrix), so the only error source is the
// ACA truncation, which is pinned to a relative tolerance ε and verified
// against the dense reference by the differential test suite.
package hmatrix

import (
	"fmt"
	"sort"

	"earthing/internal/geom"
)

// Cluster is one node of the geometric cluster tree: a contiguous range
// [Lo, Hi) of the permuted DoF ordering plus the bounding box of the DoF
// node positions it contains. Leaves have nil children.
type Cluster struct {
	Lo, Hi      int // permuted index range
	Box         geom.AABB
	Left, Right *Cluster
}

// Size returns the number of DoFs in the cluster.
func (c *Cluster) Size() int { return c.Hi - c.Lo }

// IsLeaf reports whether the cluster has no children.
func (c *Cluster) IsLeaf() bool { return c.Left == nil }

// Diameter returns the diagonal length of the cluster's bounding box.
func (c *Cluster) Diameter() float64 {
	if c.Hi <= c.Lo {
		return 0
	}
	return c.Box.Size().Norm()
}

// Dist returns the Euclidean distance between the bounding boxes of two
// clusters (0 when they touch or overlap).
func Dist(a, b *Cluster) float64 {
	var d geom.Vec3
	d.X = axisGap(a.Box.Min.X, a.Box.Max.X, b.Box.Min.X, b.Box.Max.X)
	d.Y = axisGap(a.Box.Min.Y, a.Box.Max.Y, b.Box.Min.Y, b.Box.Max.Y)
	d.Z = axisGap(a.Box.Min.Z, a.Box.Max.Z, b.Box.Min.Z, b.Box.Max.Z)
	return d.Norm()
}

// axisGap returns the 1-D distance between the intervals [alo, ahi] and
// [blo, bhi] (0 when they overlap).
func axisGap(alo, ahi, blo, bhi float64) float64 {
	switch {
	case bhi < alo:
		return alo - bhi
	case ahi < blo:
		return blo - ahi
	default:
		return 0
	}
}

// Admissible reports the η-criterion for a cluster pair: the smaller of the
// two cluster diameters must be at most η times the distance between the
// boxes. Pairs at distance 0 (touching or overlapping boxes) are never
// admissible.
func Admissible(a, b *Cluster, eta float64) bool {
	d := Dist(a, b)
	if d <= 0 {
		return false
	}
	da, db := a.Diameter(), b.Diameter()
	if db < da {
		da = db
	}
	return da <= eta*d
}

// ClusterTree is a geometric binary partition of the DoF index set. Perm
// maps a permuted position to the original DoF index (so cluster ranges are
// contiguous in permuted space); Inv is its inverse.
type ClusterTree struct {
	Root   *Cluster
	Perm   []int // permuted position → original DoF index
	Inv    []int // original DoF index → permuted position
	Leaves []*Cluster
}

// NewClusterTree builds the cluster tree over the given DoF node positions
// by recursive bounding-box bisection: each cluster is split at the
// coordinate median of its longest box axis until leafSize or fewer DoFs
// remain (leafSize ≤ 0 selects the default 64). The construction is fully
// deterministic: ties in the median sort break on the original DoF index.
func NewClusterTree(pts []geom.Vec3, leafSize int) (*ClusterTree, error) {
	n := len(pts)
	if n == 0 {
		return nil, fmt.Errorf("hmatrix: empty point set")
	}
	if leafSize <= 0 {
		leafSize = 64
	}
	t := &ClusterTree{Perm: make([]int, n), Inv: make([]int, n)}
	for i := range t.Perm {
		t.Perm[i] = i
	}
	t.Root = t.build(pts, 0, n, leafSize)
	for p, d := range t.Perm {
		t.Inv[d] = p
	}
	return t, nil
}

// build recursively bisects Perm[lo:hi], sorting the slab in place.
func (t *ClusterTree) build(pts []geom.Vec3, lo, hi, leafSize int) *Cluster {
	c := &Cluster{Lo: lo, Hi: hi, Box: boxOf(pts, t.Perm[lo:hi])}
	size := c.Box.Size()
	// Longest axis of the box; a degenerate (single-point) box cannot be
	// split and becomes a leaf regardless of leafSize, which also guards the
	// recursion against duplicate coordinates.
	axis, extent := 0, size.X
	if size.Y > extent {
		axis, extent = 1, size.Y
	}
	if size.Z > extent {
		axis, extent = 2, size.Z
	}
	if hi-lo <= leafSize || extent <= 0 {
		t.Leaves = append(t.Leaves, c)
		return c
	}
	slab := t.Perm[lo:hi]
	sort.Slice(slab, func(i, j int) bool {
		a, b := coord(pts[slab[i]], axis), coord(pts[slab[j]], axis)
		//lint:ignore floatcmp exact inequality guards the deterministic index tie-break; a tolerance would make the sort order input-scale dependent
		if a != b {
			return a < b
		}
		return slab[i] < slab[j] // deterministic tie-break
	})
	mid := lo + (hi-lo)/2
	c.Left = t.build(pts, lo, mid, leafSize)
	c.Right = t.build(pts, mid, hi, leafSize)
	return c
}

func coord(v geom.Vec3, axis int) float64 {
	switch axis {
	case 0:
		return v.X
	case 1:
		return v.Y
	default:
		return v.Z
	}
}

func boxOf(pts []geom.Vec3, idx []int) geom.AABB {
	b := geom.EmptyAABB()
	for _, i := range idx {
		b = b.Extend(pts[i])
	}
	return b
}
