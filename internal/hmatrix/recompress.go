package hmatrix

import "math"

// Recompression. ACA's cross vectors are not orthogonal, so the achieved
// rank usually overshoots what the tolerance needs. The standard fix
// (Bebendorf–Grzhibovskis) re-orthogonalizes both factors and truncates in
// the SVD basis of the small core: with U = Qu·Ru and V = Qv·Rv,
//
//	A ≈ U·Vᵀ = Qu·(Ru·Rvᵀ)·Qvᵀ = Qu·(W·Σ·Zᵀ)·Qvᵀ,
//
// and dropping the trailing singular values whose combined Frobenius mass
// is below ε leaves the optimal rank for the achieved accuracy. All core
// operations are r×r with r capped at the ACA rank limit, so the cost is
// negligible next to entry generation.

// recompress orthogonalizes and truncates the cross factors (us/vs hold the
// rank-major columns of U and V, see acaBlock) and packs the result
// row-major.
func recompress(us, vs []float64, m, n, r int, eps float64) *lowRank {
	if r == 0 {
		return &lowRank{rank: 0}
	}
	qu, ru := mgsQR(us, m, r)
	qv, rv := mgsQR(vs, n, r)

	// Core M = Ru·Rvᵀ; both factors are upper triangular, so the inner sum
	// starts at max(i, j).
	core := make([]float64, r*r)
	for i := 0; i < r; i++ {
		for j := 0; j < r; j++ {
			k0 := i
			if j > k0 {
				k0 = j
			}
			var s float64
			for k := k0; k < r; k++ {
				s += ru[i*r+k] * rv[j*r+k]
			}
			core[i*r+j] = s
		}
	}

	// One-sided Jacobi leaves core = W·Σ (columns of norm σ) and the
	// accumulated right rotations Z.
	z := jacobiSVD(core, r)
	sig2 := make([]float64, r)
	total2 := 0.0
	for j := 0; j < r; j++ {
		var s float64
		for i := 0; i < r; i++ {
			s += core[i*r+j] * core[i*r+j]
		}
		sig2[j] = s
		total2 += s
	}
	order := make([]int, r)
	for i := range order {
		order[i] = i
	}
	// Insertion sort by descending σ² (r is small; deterministic ties by
	// column index).
	less := func(a, b int) bool {
		//lint:ignore floatcmp exact inequality guards the deterministic index tie-break; a tolerance would reorder near-equal singular values by input scale
		if sig2[a] != sig2[b] {
			return sig2[a] > sig2[b]
		}
		return a < b
	}
	for i := 1; i < r; i++ {
		for j := i; j > 0 && less(order[j], order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}

	// Relative Frobenius truncation: discard the largest trailing set whose
	// mass stays within ε²·‖A‖²_F.
	keep := 0
	tail2 := 0.0
	budget := eps * eps * total2
	for t := r - 1; t >= 0; t-- {
		s2 := sig2[order[t]]
		if tail2+s2 > budget {
			keep = t + 1
			break
		}
		tail2 += s2
	}
	if keep == 0 {
		return &lowRank{rank: 0}
	}

	// Unew = Qu·(W·Σ) and Vnew = Qv·Z, packed row-major with the kept
	// columns in descending-σ order.
	u := make([]float64, m*keep)
	v := make([]float64, n*keep)
	for t := 0; t < keep; t++ {
		c := order[t]
		for k := 0; k < r; k++ {
			if w := core[k*r+c]; w != 0 {
				col := qu[k*m : (k+1)*m]
				for i := 0; i < m; i++ {
					u[i*keep+t] += col[i] * w
				}
			}
			if w := z[k*r+c]; w != 0 {
				col := qv[k*n : (k+1)*n]
				for i := 0; i < n; i++ {
					v[i*keep+t] += col[i] * w
				}
			}
		}
	}
	return &lowRank{u: u, v: v, rank: keep}
}

// mgsQR computes a thin QR of the ℓ×r matrix whose columns are packed back
// to back in cols (column l at cols[l·ℓ:(l+1)·ℓ]), by modified Gram–Schmidt
// with a second orthogonalization pass ("twice is enough"). Returns Q in the
// same packed-column layout and R row-major upper triangular. Numerically
// dependent columns yield a zero Q column and a zero R diagonal, which the
// core SVD absorbs.
func mgsQR(cols []float64, l, r int) (q, rMat []float64) {
	q = make([]float64, l*r)
	rMat = make([]float64, r*r)
	w := make([]float64, l)
	for j := 0; j < r; j++ {
		copy(w, cols[j*l:(j+1)*l])
		for pass := 0; pass < 2; pass++ {
			for i := 0; i < j; i++ {
				qi := q[i*l : (i+1)*l]
				p := dot(qi, w)
				rMat[i*r+j] += p
				for t := range w {
					w[t] -= p * qi[t]
				}
			}
		}
		nrm := math.Sqrt(dot(w, w))
		rMat[j*r+j] = nrm
		if nrm > 0 {
			inv := 1 / nrm
			qj := q[j*l : (j+1)*l]
			for t := range w {
				qj[t] = w[t] * inv
			}
		}
	}
	return q, rMat
}

// jacobiSVD runs one-sided Jacobi rotations on the r×r matrix a (row-major,
// modified in place) until all column pairs are numerically orthogonal:
// afterwards a = W·Σ (each column has norm σ_j) and the returned z holds the
// accumulated right rotations, so that a_in = a_out·zᵀ.
func jacobiSVD(a []float64, r int) (z []float64) {
	z = make([]float64, r*r)
	for i := 0; i < r; i++ {
		z[i*r+i] = 1
	}
	const tol = 1e-15
	for sweep := 0; sweep < 30; sweep++ {
		rotated := false
		for p := 0; p < r-1; p++ {
			for q := p + 1; q < r; q++ {
				var app, aqq, apq float64
				for i := 0; i < r; i++ {
					cp, cq := a[i*r+p], a[i*r+q]
					app += cp * cp
					aqq += cq * cq
					apq += cp * cq
				}
				if math.Abs(apq) <= tol*math.Sqrt(app*aqq) || apq == 0 {
					continue
				}
				zeta := (aqq - app) / (2 * apq)
				t := 1 / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				if zeta < 0 {
					t = -t
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < r; i++ {
					cp, cq := a[i*r+p], a[i*r+q]
					a[i*r+p] = c*cp - s*cq
					a[i*r+q] = s*cp + c*cq
					zp, zq := z[i*r+p], z[i*r+q]
					z[i*r+p] = c*zp - s*zq
					z[i*r+q] = s*zp + c*zq
				}
				rotated = true
			}
		}
		if !rotated {
			break
		}
	}
	return z
}
