package hmatrix

import (
	"earthing/internal/bem"
	"earthing/internal/grid"
)

// Entry generation. ACA needs arbitrary rows and columns of the global
// Galerkin matrix without assembling it, so the generator reproduces the
// dense scatter (bem.Assembler's assemblePair) one global entry at a time.
//
// The dense path iterates the element-pair triangle (β, α ≤ β) and scatters
// each elemental matrix into the packed global triangle:
//
//   - self pair (β = α): local diagonal c[j·k+j] onto the global diagonal,
//     symmetrized off-diagonal ½(c[j·k+i]+c[i·k+j]) onto {DoF_j, DoF_i};
//   - β ≠ α: c[j·k+i] onto the unordered global pair {dβ_j, dα_i}, doubled
//     when dβ_j = dα_i (the mirrored ordered pair lands on the same packed
//     diagonal entry).
//
// Inverting the scatter: the global entry A(p, q) is the sum over all
// (element, local-index) incidences (e₁, j) of p and (e₂, i) of q. For
// e₁ = e₂ that is the self-pair rule above; for e₁ ≠ e₂ it is the ordered
// elemental entry with the higher-indexed element first. For p = q and
// e₁ ≠ e₂ the incidence product enumerates both (e₁, e₂) and (e₂, e₁),
// which supplies the dense path's factor-2 diagonal doubling without a
// special case.

// elemRef is one (element, local DoF index) incidence of a degree of
// freedom.
type elemRef struct {
	elem int
	loc  int
}

// adjacency builds the DoF → incidences table of a mesh.
func adjacency(m *grid.Mesh) [][]elemRef {
	adj := make([][]elemRef, m.NumDoF)
	k := m.DoFCount()
	for e := range m.Elements {
		for j := 0; j < k; j++ {
			d := m.Elements[e].DoF[j]
			adj[d] = append(adj[d], elemRef{elem: e, loc: j})
		}
	}
	return adj
}

// filler generates global matrix entries for one worker. It owns a
// per-worker assembly scratch and a cache of elemental pair matrices: within
// one block the same element pair backs up to k² global entries, and ACA
// revisits rows and columns of the same index sets, so the cache turns most
// entry evaluations into table lookups. Reset per block bounds its memory by
// the block's element footprint. A filler must not be shared between
// concurrent workers.
//
// Behind the per-block cache sits an optional geometric cache keyed on
// bem.AppendPairGeomKey signatures and persistent across blocks: grounding
// lattices repeat the same relative pair geometry thousands of times, and
// the canonicalized evaluation (bem.PairMatrixQuant) is an exact function of
// the signature, so reuse is bitwise deterministic no matter which block,
// worker or schedule first computed a configuration. Entries carry the
// quantization's ≲ 1e-9 relative perturbation, which is why Build only
// enables the cache when the block tolerance keeps two orders of margin
// (ε ≥ 1e-7) and ExactGeometry is unset.
type filler struct {
	asm *bem.Assembler
	adj [][]elemRef
	k   int

	cs    *bem.ColumnScratch
	cache map[int64]int // ordered pair key → offset into slab
	slab  []float64     // cached k×k elemental matrices, back to back

	geo     map[string]int // geometric signature → offset into geoSlab
	geoSlab []float64
	keyBuf  []byte
}

// geoCacheCap bounds the geometric cache entries per worker (~2M signatures;
// a few hundred MB worst case). Past the cap, lookups continue but new
// configurations are evaluated without being retained.
const geoCacheCap = 1 << 21

func newFiller(asm *bem.Assembler, adj [][]elemRef, k int, cs *bem.ColumnScratch) *filler {
	return &filler{
		asm:   asm,
		adj:   adj,
		k:     k,
		cs:    cs,
		cache: make(map[int64]int),
	}
}

// enableGeoCache switches the filler to canonicalized pair evaluation with
// cross-block geometric reuse.
func (f *filler) enableGeoCache() {
	f.geo = make(map[string]int)
}

// resetCache drops the per-block pair matrices (called between blocks). The
// geometric cache persists: its values are pure functions of their keys.
func (f *filler) resetCache() {
	clear(f.cache)
	f.slab = f.slab[:0]
}

// pair returns the elemental matrix of the ordered pair (β = max(e1,e2),
// α = min(e1,e2)), computing and caching it on first use.
func (f *filler) pair(e1, e2 int) []float64 {
	beta, alpha := e1, e2
	if beta < alpha {
		beta, alpha = alpha, beta
	}
	key := int64(beta)<<32 | int64(alpha)
	kk := f.k * f.k
	if off, ok := f.cache[key]; ok {
		return f.slab[off : off+kk]
	}
	off := len(f.slab)
	f.slab = append(f.slab, make([]float64, kk)...)
	out := f.slab[off : off+kk]
	f.fillPair(beta, alpha, out)
	f.cache[key] = off
	return out
}

// fillPair computes the elemental matrix of (beta, alpha) into out, through
// the geometric cache when enabled and the pair supports canonicalized
// evaluation.
func (f *filler) fillPair(beta, alpha int, out []float64) {
	if f.geo == nil {
		f.asm.PairMatrix(beta, alpha, out, f.cs)
		return
	}
	buf, ok := f.asm.AppendPairGeomKey(beta, alpha, f.keyBuf[:0])
	f.keyBuf = buf
	if !ok {
		f.asm.PairMatrix(beta, alpha, out, f.cs)
		return
	}
	kk := f.k * f.k
	if off, hit := f.geo[string(buf)]; hit {
		copy(out, f.geoSlab[off:off+kk])
		return
	}
	f.asm.PairMatrixQuant(beta, alpha, out, f.cs)
	if len(f.geo) < geoCacheCap {
		off := len(f.geoSlab)
		f.geoSlab = append(f.geoSlab, out...)
		f.geo[string(buf)] = off
	}
}

// entry returns the global matrix entry A(p, q) for original DoF indices
// p and q, matching the dense assembly up to floating-point association.
func (f *filler) entry(p, q int) float64 {
	k := f.k
	var sum float64
	for _, rp := range f.adj[p] {
		for _, rq := range f.adj[q] {
			c := f.pair(rp.elem, rq.elem)
			switch {
			case rp.elem == rq.elem:
				if p == q {
					sum += c[rp.loc*k+rp.loc]
				} else {
					sum += 0.5 * (c[rp.loc*k+rq.loc] + c[rq.loc*k+rp.loc])
				}
			case rp.elem > rq.elem:
				// p lives in the higher-indexed element β: test index first.
				sum += c[rp.loc*k+rq.loc]
			default:
				sum += c[rq.loc*k+rp.loc]
			}
		}
	}
	return sum
}

// row fills out[jj] = A(perm[rowIdx], perm[colLo+jj]) for jj < len(out):
// one row of a block in permuted coordinates.
func (f *filler) row(perm []int, rowIdx, colLo int, out []float64) {
	p := perm[rowIdx]
	for jj := range out {
		out[jj] = f.entry(p, perm[colLo+jj])
	}
}

// col fills out[ii] = A(perm[rowLo+ii], perm[colIdx]): one column of a block
// in permuted coordinates.
func (f *filler) col(perm []int, rowLo, colIdx int, out []float64) {
	q := perm[colIdx]
	for ii := range out {
		out[ii] = f.entry(perm[rowLo+ii], q)
	}
}

// dense fills an m×n block row-major: out[ii*n+jj] = A(perm[rowLo+ii],
// perm[colLo+jj]).
func (f *filler) dense(perm []int, rowLo, m, colLo, n int, out []float64) {
	for ii := 0; ii < m; ii++ {
		f.row(perm, rowLo+ii, colLo, out[ii*n:(ii+1)*n])
	}
}
