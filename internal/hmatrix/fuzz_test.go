package hmatrix

import (
	"errors"
	"math"
	"testing"

	"earthing/internal/geom"
)

// FuzzClusterTree drives the geometric partition with adversarial point
// clouds (duplicates, collinear runs, huge and tiny coordinates) and asserts
// the structural invariants every later stage relies on: Perm is a
// permutation with consistent inverse, the leaves tile [0, n) exactly, every
// point lies inside its cluster's bounding box at every tree level, and
// every admissible block of the η-partition is genuinely well-separated.
func FuzzClusterTree(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, uint8(4), false)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint8(1), true)
	f.Add([]byte{255, 0, 255, 0, 255, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}, uint8(2), false)
	f.Fuzz(func(t *testing.T, data []byte, leaf uint8, collinear bool) {
		// Three bytes per point; cap the cloud so the O(n²) coverage check
		// below stays fast.
		n := len(data) / 3
		if n == 0 {
			return
		}
		if n > 96 {
			n = 96
		}
		pts := make([]geom.Vec3, n)
		for i := range pts {
			b := data[3*i : 3*i+3]
			// Spread a few magnitudes; collinear mode pins y = z = 0.
			x := (float64(b[0]) - 128) * math.Pow(10, float64(b[2]%7)-3)
			y := (float64(b[1]) - 128) * 0.25
			z := float64(b[2]) * 0.125
			if collinear {
				y, z = 0, 0
			}
			pts[i] = geom.V(x, y, z)
		}
		tree, err := NewClusterTree(pts, int(leaf%17))
		if err != nil {
			t.Fatalf("tree build rejected %d finite points: %v", n, err)
		}

		seen := make([]bool, n)
		for p, d := range tree.Perm {
			if d < 0 || d >= n || seen[d] {
				t.Fatalf("Perm is not a permutation: Perm[%d] = %d", p, d)
			}
			seen[d] = true
			if tree.Inv[d] != p {
				t.Fatalf("Inv[Perm[%d]] = %d, want %d", p, tree.Inv[d], p)
			}
		}

		// Leaves tile the index range exactly, in order.
		next := 0
		for _, lf := range tree.Leaves {
			if !lf.IsLeaf() {
				t.Fatal("Leaves contains an interior cluster")
			}
			if lf.Lo != next || lf.Hi <= lf.Lo {
				t.Fatalf("leaf [%d,%d) does not continue tiling at %d", lf.Lo, lf.Hi, next)
			}
			next = lf.Hi
		}
		if next != n {
			t.Fatalf("leaves tile [0,%d), want [0,%d)", next, n)
		}

		// Every point is inside its cluster's box at every level.
		var walk func(c *Cluster)
		walk = func(c *Cluster) {
			for p := c.Lo; p < c.Hi; p++ {
				pt := pts[tree.Perm[p]]
				if pt.X < c.Box.Min.X || pt.X > c.Box.Max.X ||
					pt.Y < c.Box.Min.Y || pt.Y > c.Box.Max.Y ||
					pt.Z < c.Box.Min.Z || pt.Z > c.Box.Max.Z {
					t.Fatalf("point %v outside cluster box [%v, %v]", pt, c.Box.Min, c.Box.Max)
				}
			}
			if c.IsLeaf() {
				return
			}
			if c.Left.Lo != c.Lo || c.Left.Hi != c.Right.Lo || c.Right.Hi != c.Hi {
				t.Fatalf("children [%d,%d)+[%d,%d) do not bisect [%d,%d)",
					c.Left.Lo, c.Left.Hi, c.Right.Lo, c.Right.Hi, c.Lo, c.Hi)
			}
			walk(c.Left)
			walk(c.Right)
		}
		walk(tree.Root)

		// The symmetric block partition covers every matrix entry exactly
		// once (off-diagonal blocks count for both triangles), and every
		// admissible block is separated per the η-criterion.
		eta := 0.5 + float64(leaf%4)
		cover := make([]int, n*n)
		for _, bp := range partition(tree.Root, eta) {
			if bp.admissible {
				if !Admissible(bp.row, bp.col, eta) {
					t.Fatalf("block [%d,%d)×[%d,%d) marked admissible but boxes are not well-separated",
						bp.row.Lo, bp.row.Hi, bp.col.Lo, bp.col.Hi)
				}
				if Dist(bp.row, bp.col) <= 0 {
					t.Fatal("admissible block with touching boxes")
				}
			}
			diag := bp.row == bp.col
			for r := bp.row.Lo; r < bp.row.Hi; r++ {
				for c := bp.col.Lo; c < bp.col.Hi; c++ {
					cover[r*n+c]++
					if !diag {
						cover[c*n+r]++
					}
				}
			}
		}
		for r := 0; r < n; r++ {
			for c := 0; c < n; c++ {
				if cover[r*n+c] != 1 {
					t.Fatalf("entry (%d,%d) covered %d times", r, c, cover[r*n+c])
				}
			}
		}
	})
}

// denseSource serves a synthetic row-major matrix to the ACA builder.
type denseSource struct {
	a    []float64
	cols int
}

func (s *denseSource) row(perm []int, rowIdx, colLo int, out []float64) {
	base := perm[rowIdx] * s.cols
	copy(out, s.a[base+colLo:base+colLo+len(out)])
}

func (s *denseSource) col(perm []int, rowLo, colIdx int, out []float64) {
	for i := range out {
		out[i] = s.a[perm[rowLo+i]*s.cols+colIdx]
	}
}

// FuzzACABlock feeds adversarial low-rank-plus-spike matrices to the cross
// approximation: whatever the input, acaBlock must either return finite
// factors within the rank cap or fail with one of its typed errors — never
// NaN/Inf factors, never a panic. On matrices it reports converged and that
// are exactly low-rank, the factorization must reproduce the block.
func FuzzACABlock(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(6), uint8(5), uint8(3), false)
	f.Add([]byte{0, 0, 0, 0}, uint8(3), uint8(3), uint8(1), false)
	f.Add([]byte{9, 9, 9, 9, 200, 1, 2, 250}, uint8(8), uint8(7), uint8(2), true)
	f.Fuzz(func(t *testing.T, data []byte, mu, nu, ranku uint8, spike bool) {
		m := int(mu%24) + 1
		n := int(nu%24) + 1
		genRank := int(ranku%4) + 1
		if len(data) < 2 {
			return
		}
		// A = Σ_k x_k·y_kᵀ with entries drawn from the fuzz bytes, plus
		// optional spikes (huge isolated entries, a NaN when byte 0 is 255).
		a := make([]float64, m*n)
		idx := 0
		nextByte := func() float64 {
			v := data[idx%len(data)]
			idx++
			return (float64(v) - 128) / 16
		}
		for k := 0; k < genRank; k++ {
			x := make([]float64, m)
			y := make([]float64, n)
			for i := range x {
				x[i] = nextByte()
			}
			for j := range y {
				y[j] = nextByte()
			}
			for i := 0; i < m; i++ {
				for j := 0; j < n; j++ {
					a[i*n+j] += x[i] * y[j]
				}
			}
		}
		if spike {
			a[(int(data[0])*31)%(m*n)] = 1e12
			if data[0] == 255 {
				a[(int(data[1])*17)%(m*n)] = math.NaN()
			}
		}

		src := &denseSource{a: a, cols: n}
		perm := make([]int, m)
		for i := range perm {
			perm[i] = i
		}
		eps := math.Pow(10, -float64(data[0]%9)-1)
		maxRank := int(data[1]%16) + 1

		lr, err := acaBlock(src, perm, 0, m, 0, n, eps, maxRank, 0)
		if err != nil {
			if !errors.Is(err, ErrNonFinite) && !errors.Is(err, ErrACAStalled) {
				t.Fatalf("untyped ACA failure: %v", err)
			}
			return
		}
		if lr.rank > maxRank {
			t.Fatalf("recompressed rank %d exceeds cap %d", lr.rank, maxRank)
		}
		if !allFinite(lr.u) || !allFinite(lr.v) {
			t.Fatalf("ACA returned non-finite factors (rank %d)", lr.rank)
		}
	})
}
