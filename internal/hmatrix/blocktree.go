package hmatrix

// The block partition. The Galerkin matrix is symmetric, so only blocks on
// or below the diagonal of the permuted matrix are kept and each
// off-diagonal block is applied twice in the matvec (direct and transposed).
// Descending the cluster tree from (root, root):
//
//   - a diagonal pair (c, c) recurses into (L, L), (R, R) and the strictly
//     lower off-diagonal pair (R, L); a leaf diagonal pair becomes a dense
//     block (it is never admissible — distance 0);
//   - an off-diagonal pair (row, col) with row.Lo ≥ col.Hi becomes a
//     low-rank block when η-admissible, a dense block when both clusters
//     are leaves, and otherwise splits its non-leaf sides.
//
// Every child of a lower-triangle pair stays in the lower triangle
// (row.Lo only grows, col.Hi only shrinks), so the partition covers the
// packed triangle exactly once.

// blockPair is one node of the block partition before compression.
type blockPair struct {
	row, col   *Cluster
	admissible bool
}

// partition enumerates the leaves of the symmetric block tree in a
// deterministic depth-first order.
func partition(root *Cluster, eta float64) []blockPair {
	var out []blockPair
	var visitDiag func(c *Cluster)
	var visitOff func(row, col *Cluster)

	visitOff = func(row, col *Cluster) {
		if Admissible(row, col, eta) {
			out = append(out, blockPair{row: row, col: col, admissible: true})
			return
		}
		rl, cl := row.IsLeaf(), col.IsLeaf()
		switch {
		case rl && cl:
			out = append(out, blockPair{row: row, col: col})
		case rl:
			visitOff(row, col.Left)
			visitOff(row, col.Right)
		case cl:
			visitOff(row.Left, col)
			visitOff(row.Right, col)
		default:
			visitOff(row.Left, col.Left)
			visitOff(row.Left, col.Right)
			visitOff(row.Right, col.Left)
			visitOff(row.Right, col.Right)
		}
	}
	visitDiag = func(c *Cluster) {
		if c.IsLeaf() {
			out = append(out, blockPair{row: c, col: c})
			return
		}
		visitDiag(c.Left)
		visitDiag(c.Right)
		visitOff(c.Right, c.Left)
	}
	visitDiag(root)
	return out
}
