package hmatrix

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"earthing/internal/bem"
	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/soil"
)

// The differential suite pins the compressed tier against the dense
// reference: for a matrix of (grid, soil) systems and (ε, η, leaf-size)
// parameters it asserts that the H-matrix product stays within a small
// multiple of ε of the dense product, and that the engineering quantity
// (equivalent resistance for unit GPR) moves by at most the error budget
// the core engine enforces.

// system is one assembled reference problem.
type system struct {
	asm   *bem.Assembler
	mesh  *grid.Mesh
	dense *linalg.SymMatrix
	rhs   []float64
}

func buildSystem(t *testing.T, g *grid.Grid, model soil.Model, maxElem float64) *system {
	t.Helper()
	m, err := grid.Discretize(g, grid.Linear, maxElem)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := bem.New(m, model, bem.Options{Workers: 2, Kernel: bem.FlatKernel})
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := asm.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	return &system{asm: asm, mesh: m, dense: a, rhs: bem.RHS(m)}
}

// matvecRelErr returns max over a few random probes of ‖H·x − A·x‖/‖A·x‖.
func matvecRelErr(t *testing.T, h *HMatrix, a *linalg.SymMatrix, seed int64) float64 {
	t.Helper()
	n := a.Order()
	rng := rand.New(rand.NewSource(seed))
	hx := make([]float64, n)
	ax := make([]float64, n)
	worst := 0.0
	for probe := 0; probe < 3; probe++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		h.Apply(x, hx)
		a.MulVec(x, ax)
		var num, den float64
		for i := range hx {
			d := hx[i] - ax[i]
			num += d * d
			den += ax[i] * ax[i]
		}
		if den == 0 {
			t.Fatal("dense product vanished")
		}
		if e := math.Sqrt(num / den); e > worst {
			worst = e
		}
	}
	return worst
}

func reqDense(t *testing.T, s *system) float64 {
	t.Helper()
	res, err := linalg.SolveCG(s.dense, s.rhs, linalg.CGOptions{Tol: 1e-12})
	if err != nil || !res.Converged {
		t.Fatalf("dense CG: %v (converged=%v)", err, res.Converged)
	}
	i := bem.TotalCurrent(s.mesh, res.X)
	return 1 / i
}

func reqCompressed(t *testing.T, s *system, h *HMatrix) float64 {
	t.Helper()
	res, err := h.Solve(s.rhs, SolveOptions{Tol: 1e-12})
	if err != nil {
		t.Fatalf("compressed solve: %v", err)
	}
	i := bem.TotalCurrent(s.mesh, res.X)
	return 1 / i
}

// TestDifferentialMatrix sweeps (ε, η, leaf) over a set of randomized grids
// and soil models, asserting matvec and Req error budgets per cell.
func TestDifferentialMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type sys struct {
		name string
		s    *system
	}
	var systems []sys

	// Randomized rectangular grids under the three soil families (the
	// 3-layer model exercises the quadrature kernel fallback).
	for trial := 0; trial < 2; trial++ {
		w := 10 + rng.Float64()*20
		hgt := 10 + rng.Float64()*15
		nx := 3 + rng.Intn(3)
		ny := 3 + rng.Intn(3)
		depth := 0.4 + rng.Float64()*0.6
		g := grid.RectMesh(0, 0, w, hgt, nx, ny, depth, 0.01)
		systems = append(systems,
			sys{fmt.Sprintf("rect%d-uniform", trial), buildSystem(t, g, soil.NewUniform(0.01+rng.Float64()*0.05), 2.5)},
			sys{fmt.Sprintf("rect%d-twolayer", trial), buildSystem(t, g, soil.NewTwoLayer(0.02, 0.005, depth+1.5), 2.5)},
		)
	}
	three, err := soil.NewMultiLayer([]float64{0.02, 0.008, 0.03}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	systems = append(systems,
		sys{"tri-threelayer", buildSystem(t, grid.TriangleMesh(16, 12, 3, 3, 0.6, 0.01), three, 4)})

	cells := []struct {
		eps, eta float64
		leaf     int
	}{
		{1e-4, 2, 32},
		{1e-6, 2, 32},
		{1e-6, 1, 16},
		{1e-6, 3, 64},
		{1e-8, 2, 32},
	}

	for _, sy := range systems {
		reqRef := reqDense(t, sy.s)
		for _, cell := range cells {
			cell := cell
			t.Run(fmt.Sprintf("%s/eps=%g,eta=%g,leaf=%d", sy.name, cell.eps, cell.eta, cell.leaf), func(t *testing.T) {
				h, err := Build(context.Background(), sy.s.asm, Params{
					Eps: cell.eps, Eta: cell.eta, LeafSize: cell.leaf, Workers: 2,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := matvecRelErr(t, h, sy.s.dense, 11); got > 50*cell.eps {
					t.Errorf("matvec relative error %.3g exceeds 50·ε = %.3g", got, 50*cell.eps)
				}
				req := reqCompressed(t, sy.s, h)
				if rel := math.Abs(req-reqRef) / reqRef; rel > 10*cell.eps {
					t.Errorf("Req moved by %.3g relative (dense %.8g, compressed %.8g), budget 10·ε = %.3g",
						rel, reqRef, req, 10*cell.eps)
				}
			})
		}
	}
}

// TestDegenerateCollinearRods puts every DoF on one line: the cluster tree
// must still split (single nonzero box extent) and the compressed product
// must stay within budget.
func TestDegenerateCollinearRods(t *testing.T) {
	g := &grid.Grid{}
	for i := 0; i < 40; i++ {
		g.AddRod(float64(i)*1.5, 0, 0.5, 2.0, 0.01)
	}
	s := buildSystem(t, g, soil.NewUniform(0.02), 1.0)
	h, err := Build(context.Background(), s.asm, Params{Eps: 1e-6, Eta: 2, LeafSize: 8, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if h.Stats().LowRank == 0 {
		t.Fatal("collinear geometry produced no admissible blocks; partition is degenerate")
	}
	if got := matvecRelErr(t, h, s.dense, 3); got > 50e-6 {
		t.Errorf("matvec relative error %.3g on collinear rods", got)
	}
	reqRef := reqDense(t, s)
	if req := reqCompressed(t, s, h); math.Abs(req-reqRef)/reqRef > 1e-5 {
		t.Errorf("Req %.8g vs dense %.8g", req, reqRef)
	}
}

// TestDegenerateSingleElementLeaves forces leaf size 1: every diagonal block
// is 1×1 and the near-field preconditioner degenerates to Jacobi-by-blocks.
func TestDegenerateSingleElementLeaves(t *testing.T) {
	g := grid.RectMesh(0, 0, 12, 12, 3, 3, 0.5, 0.01)
	s := buildSystem(t, g, soil.NewUniform(0.02), 3)
	h, err := Build(context.Background(), s.asm, Params{Eps: 1e-6, Eta: 2, LeafSize: 1, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := matvecRelErr(t, h, s.dense, 5); got > 50e-6 {
		t.Errorf("matvec relative error %.3g with single-element leaves", got)
	}
	reqRef := reqDense(t, s)
	if req := reqCompressed(t, s, h); math.Abs(req-reqRef)/reqRef > 1e-5 {
		t.Errorf("Req %.8g vs dense %.8g", req, reqRef)
	}
}

// TestDegenerateAllNearField drives η toward zero so no block is admissible:
// the representation is all-dense and, under ExactGeometry, must reproduce
// the dense matrix to floating-point association (the only difference is
// summation order; the default geometric cache would instead carry its
// documented ≲ 1e-9 canonicalization perturbation).
func TestDegenerateAllNearField(t *testing.T) {
	g := grid.RectMesh(0, 0, 10, 10, 3, 3, 0.5, 0.01)
	s := buildSystem(t, g, soil.NewUniform(0.02), 3)
	h, err := Build(context.Background(), s.asm, Params{Eps: 1e-6, Eta: 1e-9, LeafSize: 8, Workers: 2, ExactGeometry: true})
	if err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.LowRank != 0 {
		t.Fatalf("η=1e-9 still yielded %d admissible blocks", st.LowRank)
	}
	if got := matvecRelErr(t, h, s.dense, 9); got > 1e-12 {
		t.Errorf("all-dense H-matrix differs from dense matrix by %.3g", got)
	}
}

// TestEntryGeneratorMatchesDense checks the generator directly on every
// (p, q): the inverted scatter must reproduce the dense assembly including
// the diagonal-doubling convention at shared nodes.
func TestEntryGeneratorMatchesDense(t *testing.T) {
	g := grid.RectMesh(0, 0, 8, 8, 2, 2, 0.5, 0.008)
	s := buildSystem(t, g, soil.NewTwoLayer(0.02, 0.01, 2), 2)
	adj := adjacency(s.mesh)
	f := newFiller(s.asm, adj, s.mesh.DoFCount(), s.asm.NewColumnScratch())
	n := s.mesh.NumDoF
	for p := 0; p < n; p++ {
		for q := 0; q <= p; q++ {
			want := s.dense.At(p, q)
			got := f.entry(p, q)
			if d := math.Abs(got - want); d > 1e-12*(1+math.Abs(want)) {
				t.Fatalf("entry (%d,%d): generator %.17g, dense %.17g", p, q, got, want)
			}
		}
	}
}

// TestApplyDeterministicAcrossWorkers pins the bit-identity guarantee of the
// staged matvec: the same H built at different worker counts must produce
// bit-identical products.
func TestApplyDeterministicAcrossWorkers(t *testing.T) {
	g := grid.RectMesh(0, 0, 15, 15, 4, 4, 0.5, 0.01)
	s := buildSystem(t, g, soil.NewUniform(0.02), 2)
	n := s.mesh.NumDoF
	x := make([]float64, n)
	rng := rand.New(rand.NewSource(2))
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	var ref []float64
	for _, workers := range []int{1, 2, 7} {
		h, err := Build(context.Background(), s.asm, Params{Eps: 1e-6, Workers: workers, LeafSize: 16})
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, n)
		h.Apply(x, y)
		if ref == nil {
			ref = append([]float64(nil), y...)
			continue
		}
		for i := range y {
			if y[i] != ref[i] {
				t.Fatalf("workers=%d: y[%d] = %x, want %x (bit mismatch)", workers, i, y[i], ref[i])
			}
		}
	}
}
