package hmatrix

import (
	"fmt"
	"math"

	"earthing/internal/faultinject"
)

// Adaptive cross approximation with partial pivoting: build A ≈ Σ u_l·v_lᵀ
// for an admissible block without ever forming it, generating one residual
// row and one residual column per step. The pivot walk is the standard one
// (Bebendorf): the next pivot row maximises |u| among unvisited rows, the
// pivot column maximises |v| within the current residual row. The stopping
// estimate tracks the Frobenius norm of the accumulated approximant
// incrementally, so the iteration stops when the newest rank-1 term falls
// below ε relative to the whole block.

// lowRank is a compressed block A ≈ U·Vᵀ, both factors row-major
// (U is m×rank, V is n×rank).
type lowRank struct {
	u, v []float64
	rank int
}

// crossSource serves matrix rows and columns to the ACA cross builder. The
// production implementation is the filler (BEM entry generator); the fuzz
// harness substitutes synthetic adversarial matrices.
type crossSource interface {
	row(perm []int, rowIdx, colLo int, out []float64)
	col(perm []int, rowLo, colIdx int, out []float64)
}

// acaBlock compresses the permuted block rows [rowLo, rowLo+m) ×
// cols [colLo, colLo+n) to relative Frobenius tolerance eps. blockIdx is the
// partition index reported to the fault-injection site. The returned factors
// are recompressed (re-orthogonalized and truncated), so the stored rank can
// be lower than the number of ACA steps taken.
func acaBlock(f crossSource, perm []int, rowLo, m, colLo, n int, eps float64, maxRank, blockIdx int) (*lowRank, error) {
	// us/vs hold the cross vectors back to back: u_l = us[l·m:(l+1)·m],
	// v_l = vs[l·n:(l+1)·n].
	var us, vs []float64
	rowUsed := make([]bool, m)
	u := make([]float64, m)
	v := make([]float64, n)

	rank := 0
	iStar := 0
	est2 := 0.0 // squared Frobenius norm of the accumulated approximant
	converged := false

	for {
		if rank >= m || rank >= n {
			// As many pivots as rows (or columns): the residual is exactly
			// zero and the factorization is exact.
			converged = true
			break
		}
		if rank >= maxRank {
			break
		}

		// Residual row iStar: generated entries minus the accumulated crosses.
		f.row(perm, rowLo+iStar, colLo, v)
		if rank == 0 {
			faultinject.Fire(faultinject.HMatrixACABlock, blockIdx, v)
		}
		for l := 0; l < rank; l++ {
			if ul := us[l*m+iStar]; ul != 0 {
				vl := vs[l*n : (l+1)*n]
				for j := range v {
					v[j] -= ul * vl[j]
				}
			}
		}
		if !allFinite(v) {
			return nil, ErrNonFinite
		}
		rowUsed[iStar] = true

		jStar := 0
		best := 0.0
		for j, x := range v {
			if a := math.Abs(x); a > best {
				best, jStar = a, j
			}
		}
		delta := v[jStar]
		if delta == 0 {
			// This row is already exactly represented; move to the next
			// unvisited one. Running out of rows means every row's residual
			// vanished — the factorization is exact.
			iStar = nextUnused(rowUsed)
			if iStar < 0 {
				converged = true
				break
			}
			continue
		}

		// Residual column jStar, scaled by 1/δ so that u·vᵀ reproduces the
		// pivot row exactly.
		f.col(perm, rowLo, colLo+jStar, u)
		for l := 0; l < rank; l++ {
			if vl := vs[l*n+jStar]; vl != 0 {
				ul := us[l*m : (l+1)*m]
				for i := range u {
					u[i] -= vl * ul[i]
				}
			}
		}
		if !allFinite(u) {
			return nil, ErrNonFinite
		}
		inv := 1 / delta
		for i := range u {
			u[i] *= inv
		}

		// ‖S + u·vᵀ‖² = ‖S‖² + ‖u‖²‖v‖² + 2·Σ_l (u·u_l)(v·v_l).
		nu2 := dot(u, u)
		nv2 := dot(v, v)
		cross := 0.0
		for l := 0; l < rank; l++ {
			cross += dot(u, us[l*m:(l+1)*m]) * dot(v, vs[l*n:(l+1)*n])
		}
		est2 += nu2*nv2 + 2*cross
		if est2 < nu2*nv2 {
			est2 = nu2 * nv2 // fp cancellation guard: est² ≥ newest term
		}
		us = append(us, u...)
		vs = append(vs, v...)
		rank++

		if math.Sqrt(nu2*nv2) <= eps*math.Sqrt(est2) {
			converged = true
			break
		}

		// Next pivot row: largest |u| among unvisited rows.
		iStar = -1
		best = -1
		for i, x := range u {
			if rowUsed[i] {
				continue
			}
			if a := math.Abs(x); a > best {
				best, iStar = a, i
			}
		}
		if iStar < 0 {
			converged = true
			break
		}
	}

	if !converged {
		return nil, fmt.Errorf("%w: %d×%d block at rank %d (ε=%g)", ErrACAStalled, m, n, rank, eps)
	}
	return recompress(us, vs, m, n, rank, eps), nil
}

// nextUnused returns the first false index of used, or −1.
func nextUnused(used []bool) int {
	for i, u := range used {
		if !u {
			return i
		}
	}
	return -1
}

func allFinite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

func dot(a, b []float64) float64 {
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}
