package hmatrix

import (
	"context"
	"math"
	"testing"

	"earthing/internal/grid"
	"earthing/internal/soil"
)

// TestGeoCacheMatchesExactBuild compares a default build (geometric pair
// cache enabled) against an ExactGeometry build of the same system: the
// cached build's product must stay within the documented canonicalization
// budget of the exact one — far below the ε = 1e-6 block tolerance — and the
// compressed Req must move by an amount negligible against the 10·ε
// engineering budget.
func TestGeoCacheMatchesExactBuild(t *testing.T) {
	g := grid.Interconnected(300, 2)
	s := buildSystem(t, g, soil.NewTwoLayer(0.0025, 0.020, 1.0), 0)

	exact, err := Build(context.Background(), s.asm, Params{Eps: 1e-6, Workers: 2, ExactGeometry: true})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := Build(context.Background(), s.asm, Params{Eps: 1e-6, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	if got := matvecRelErr(t, cached, s.dense, 17); got > 50e-6 {
		t.Errorf("cached build matvec error %.3g vs dense; budget 50·ε", got)
	}
	reqExact := reqCompressed(t, s, exact)
	reqCached := reqCompressed(t, s, cached)
	if rel := math.Abs(reqCached-reqExact) / reqExact; rel > 1e-7 {
		t.Errorf("geometric cache moved Req by %.3g relative (exact %.8g, cached %.8g)",
			rel, reqExact, reqCached)
	}
}

// TestGeoCacheDisabledBelowEps pins the gating contract: a build tighter than
// ε = 1e-7 must not enable the cache (its ≲ 1e-9 perturbation would eat the
// error budget), and neither must ExactGeometry, so both configurations
// reproduce the dense matrix bit-for-bit on an all-near-field partition.
func TestGeoCacheDisabledBelowEps(t *testing.T) {
	g := grid.RectMesh(0, 0, 10, 10, 3, 3, 0.5, 0.01)
	s := buildSystem(t, g, soil.NewUniform(0.02), 3)
	for _, p := range []Params{
		{Eps: 1e-8, Eta: 1e-9, LeafSize: 8, Workers: 2},
		{Eps: 1e-6, Eta: 1e-9, LeafSize: 8, Workers: 2, ExactGeometry: true},
	} {
		h, err := Build(context.Background(), s.asm, p)
		if err != nil {
			t.Fatal(err)
		}
		if got := matvecRelErr(t, h, s.dense, 9); got > 1e-12 {
			t.Errorf("Eps=%g ExactGeometry=%v: all-dense build differs from dense matrix by %.3g",
				p.Eps, p.ExactGeometry, got)
		}
	}
}
