package hmatrix

import (
	"fmt"

	"earthing/internal/linalg"
)

// SolveOptions configures the compressed iterative solve. The zero value
// selects the defaults: near-field block-Cholesky preconditioning, relative
// residual 1e-10 and a 10·n iteration cap (matching the dense CG defaults).
type SolveOptions struct {
	Tol     float64
	MaxIter int
	// Jacobi forces the plain diagonal preconditioner instead of the
	// near-field block factorization.
	Jacobi bool
}

// SolveResult reports a converged compressed solve.
type SolveResult struct {
	X          []float64
	Iterations int
	Residual   float64
	// Preconditioner names the preconditioner actually used ("nearfield"
	// or "jacobi" — the latter also when the block factorization failed and
	// the solve degraded).
	Preconditioner string
}

// Solve runs preconditioned conjugate gradients on the compressed system
// H·x = b. Like the dense solve stage of the core pipeline, it runs to
// completion once started (no mid-solve cancellation): a solve is bounded by
// MaxIter operator applications, each of which is a parallel matvec that
// joins its workers before returning. Non-convergence and recurrence
// breakdowns return a typed *SolveError (wrapping ErrCGStalled or
// linalg.ErrCGBreakdown) rather than a silently inaccurate solution.
func (h *HMatrix) Solve(b []float64, opt SolveOptions) (SolveResult, error) {
	var pre linalg.Preconditioner
	name := "nearfield"
	if !opt.Jacobi {
		if nf, err := h.nearFieldPreconditioner(); err == nil {
			pre = nf
		}
	}
	if pre == nil {
		jp, err := linalg.NewJacobiPreconditioner(h.Diag())
		if err != nil {
			return SolveResult{}, &SolveError{Err: err}
		}
		pre = jp
		name = "jacobi"
	}
	res, err := linalg.SolveCGOp(h, pre, b, linalg.CGOptions{Tol: opt.Tol, MaxIter: opt.MaxIter})
	if err != nil {
		return SolveResult{}, &SolveError{Iterations: res.Iterations, Residual: res.Residual, Err: err}
	}
	if !res.Converged {
		return SolveResult{}, &SolveError{
			Iterations: res.Iterations,
			Residual:   res.Residual,
			Err:        fmt.Errorf("%w: residual %.3g after %d iterations", ErrCGStalled, res.Residual, res.Iterations),
		}
	}
	return SolveResult{
		X:              res.X,
		Iterations:     res.Iterations,
		Residual:       res.Residual,
		Preconditioner: name,
	}, nil
}

// nearFieldPreconditioner factorizes every diagonal dense leaf block: the
// blocks are principal submatrices of an SPD matrix, hence SPD themselves,
// and together they cover the whole diagonal — a block-Jacobi preconditioner
// whose blocks capture exactly the strong near-field couplings the ACA tier
// does not smooth. Construction cost is Σ leaf³/3, negligible against the
// block fill.
func (h *HMatrix) nearFieldPreconditioner() (*nearFieldPreconditioner, error) {
	nf := &nearFieldPreconditioner{n: h.n}
	for i := range h.blocks {
		b := &h.blocks[i]
		if b.kind != denseDiag {
			continue
		}
		m := b.rowHi - b.rowLo
		sym := linalg.NewSymMatrix(m)
		for ii := 0; ii < m; ii++ {
			for jj := 0; jj <= ii; jj++ {
				// The stored full block came from one entry generator pass,
				// so the lower triangle is authoritative.
				sym.Set(ii, jj, b.d[ii*m+jj])
			}
		}
		chol, err := linalg.NewCholesky(sym)
		if err != nil {
			return nil, fmt.Errorf("hmatrix: near-field block at rows [%d,%d): %w", b.rowLo, b.rowHi, err)
		}
		dofs := make([]int, m)
		for ii := range dofs {
			dofs[ii] = h.perm[b.rowLo+ii]
		}
		nf.blocks = append(nf.blocks, nfBlock{chol: chol, dofs: dofs, buf: make([]float64, m)})
		nf.covered += m
	}
	if nf.covered != h.n {
		return nil, fmt.Errorf("hmatrix: near-field blocks cover %d of %d DoFs", nf.covered, h.n)
	}
	return nf, nil
}

// nearFieldPreconditioner applies z = M⁻¹·r with M the block-diagonal matrix
// of the dense near-field leaves, in original DoF ordering.
type nearFieldPreconditioner struct {
	n       int
	covered int
	blocks  []nfBlock
}

type nfBlock struct {
	chol *linalg.Cholesky
	dofs []int
	buf  []float64
}

// Precondition implements linalg.Preconditioner.
func (nf *nearFieldPreconditioner) Precondition(r, z []float64) {
	for i := range nf.blocks {
		b := &nf.blocks[i]
		for ii, d := range b.dofs {
			b.buf[ii] = r[d]
		}
		x, err := b.chol.Solve(b.buf)
		if err != nil {
			// Unreachable for a full-precision factor of matching order; keep
			// the identity action rather than poisoning the iteration.
			x = b.buf
		}
		for ii, d := range b.dofs {
			z[d] = x[ii]
		}
	}
}
