package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastSweep builds a /v1/sweep body over the fastScenario geometry with one
// uniform-soil scenario per (gamma, gpr) pair.
func fastSweep(width float64, extra string, scens ...[2]float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, `{
		"grid": {"rect": {"width": %g, "height": 20, "nx": 4, "ny": 4, "depth": 0.8, "radius": 0.006}},
		"seriesTol": 1e-3,%s
		"scenarios": [`, width, extra)
	for i, s := range scens {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"id": "s%d", "soil": {"kind": "uniform", "gamma1": %g}, "gpr": %g}`,
			i, s[0], s[1])
	}
	sb.WriteString("]}")
	return sb.String()
}

// decodeSweep parses an NDJSON response body into lines.
func decodeSweep(t *testing.T, body []byte) []SweepLine {
	t.Helper()
	var lines []SweepLine
	dec := json.NewDecoder(bytes.NewReader(body))
	for dec.More() {
		var l SweepLine
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("bad NDJSON line: %v\nbody: %s", err, body)
		}
		lines = append(lines, l)
	}
	return lines
}

// TestSweepOneAssemblyForGPRVariants is the regression pinning the reuse
// contract: a sweep over 10 GPR values of one scenario performs exactly one
// assembly — the cache key excludes GPR by design, and the engine rescales
// the unit solve for the other nine.
func TestSweepOneAssemblyForGPRVariants(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})
	var scens [][2]float64
	for i := 0; i < 10; i++ {
		scens = append(scens, [2]float64{0.0125, 1000 * float64(i+1)})
	}
	body := fastSweep(20, "", scens...)

	code, hdr, resp := post(t, context.Background(), ts.URL, "/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, resp)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := decodeSweep(t, resp)
	if len(lines) != 10 {
		t.Fatalf("%d lines, want 10: %s", len(lines), resp)
	}
	assembled, solve := 0, 0
	seen := make(map[int]SweepLine)
	for _, l := range lines {
		if l.Error != "" {
			t.Fatalf("unexpected error line: %+v", l)
		}
		seen[l.Index] = l
		switch l.Cache {
		case "assembled":
			assembled++
		case "solve":
			solve++
		default:
			t.Errorf("line %d: cache %q, want assembled or solve", l.Index, l.Cache)
		}
	}
	if assembled != 1 || solve != 9 {
		t.Errorf("%d assembled + %d solve, want 1 + 9", assembled, solve)
	}
	if n := s.Counters().Assemblies.Load(); n != 1 {
		t.Errorf("assemblies = %d for 10 GPR variants, want exactly 1", n)
	}
	// Every index present once, each at its own GPR, sharing one key and one
	// resistance.
	for i := 0; i < 10; i++ {
		l, ok := seen[i]
		if !ok {
			t.Fatalf("missing line for scenario %d", i)
		}
		if l.ID != fmt.Sprintf("s%d", i) || l.GPR != 1000*float64(i+1) {
			t.Errorf("line %d: id %q gpr %g", i, l.ID, l.GPR)
		}
		if l.Key != seen[0].Key || l.ReqOhms != seen[0].ReqOhms {
			t.Errorf("line %d: key/Req diverge from line 0", i)
		}
		if want := l.GPR / l.ReqOhms; l.CurrentAmps != want {
			t.Errorf("line %d: currentAmps %g, want gpr/Req %g", i, l.CurrentAmps, want)
		}
	}

	// A second identical sweep is served entirely from the cache: all lines
	// "hit", no new assembly.
	code, _, resp = post(t, context.Background(), ts.URL, "/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("second sweep: status %d: %s", code, resp)
	}
	for _, l := range decodeSweep(t, resp) {
		if l.Cache != "hit" {
			t.Errorf("second sweep line %d: cache %q, want hit", l.Index, l.Cache)
		}
	}
	if n := s.Counters().Assemblies.Load(); n != 1 {
		t.Errorf("assemblies = %d after cached replay, want still 1", n)
	}
}

// TestSweepMatchesSolve: /v1/sweep reports byte-identical reqOhms and
// currentAmps to /v1/solve for the same scenario, whichever ran first.
func TestSweepMatchesSolve(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})

	code, _, resp := post(t, context.Background(), ts.URL, "/v1/sweep",
		fastSweep(20, "", [2]float64{0.0125, 10_000}, [2]float64{0.025, 10_000}))
	if code != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", code, resp)
	}
	lines := decodeSweep(t, resp)
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	byIndex := map[int]SweepLine{}
	for _, l := range lines {
		byIndex[l.Index] = l
	}

	// The matching /v1/solve must be a cache hit (the sweep populated the
	// cache) and report the same numbers.
	code, hdr, solveBody := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", code, solveBody)
	}
	if got := hdr.Get("X-Groundd-Cache"); got != "hit" {
		t.Errorf("solve after sweep: cache %q, want hit", got)
	}
	var sr SolveResponse
	if err := json.Unmarshal(solveBody, &sr); err != nil {
		t.Fatal(err)
	}
	l := byIndex[0]
	if l.Key != sr.Key || l.ReqOhms != sr.ReqOhms || l.CurrentAmps != sr.CurrentAmps ||
		l.Elements != sr.Elements || l.DoF != sr.DoF {
		t.Errorf("sweep line %+v does not match solve %+v", l, sr)
	}
}

// TestSweepBadRequests covers the pre-stream rejection paths: they must be
// proper JSON error envelopes with 400 status, not NDJSON.
func TestSweepBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tooMany := make([][2]float64, maxSweepScenarios+1)
	for i := range tooMany {
		tooMany[i] = [2]float64{0.01 + float64(i)*1e-6, 1}
	}
	cases := []struct {
		name, body string
	}{
		{"empty scenarios", `{"grid": {"builtin": "barbera"}, "scenarios": []}`},
		{"no grid", `{"scenarios": [{"soil": {"kind": "uniform", "gamma1": 0.02}}]}`},
		{"bad soil", fastSweep(20, "", [2]float64{-1, 1})},
		{"unknown field", `{"grid": {"builtin": "barbera"}, "scenarios": [], "bogus": 1}`},
		{"negative timeout", fastSweep(20, ` "timeoutMs": -1,`, [2]float64{0.0125, 1})},
		{"too many scenarios", fastSweep(20, "", tooMany...)},
	}
	for _, c := range cases {
		code, hdr, body := post(t, context.Background(), ts.URL, "/v1/sweep", c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", c.name, code, body)
		}
		if ct := hdr.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type %q, want application/json", c.name, ct)
		}
	}
}

// TestSweepQueueFull429: a sweep arriving at a saturated queue is shed with
// 429 before any streaming starts.
func TestSweepQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		postNoFatal(t, ctx, ts.URL, "/v1/solve", slowScenario(120))
	}()
	waitFor(t, func() bool { return s.Counters().BusyWorkers.Load() == 1 })
	go func() {
		defer wg.Done()
		postNoFatal(t, ctx, ts.URL, "/v1/solve", slowScenario(121))
	}()
	waitFor(t, func() bool { return s.Counters().QueueDepth.Load() == 1 })

	code, _, body := post(t, context.Background(), ts.URL, "/v1/sweep",
		fastSweep(20, "", [2]float64{0.0125, 1}))
	if code != http.StatusTooManyRequests {
		t.Errorf("sweep at full queue: status %d, want 429: %s", code, body)
	}
	if n := s.Counters().RejectedQueueFull.Load(); n != 1 {
		t.Errorf("rejectedQueueFull = %d, want 1", n)
	}
	cancel()
	wg.Wait()
}

// TestSweepDeadline504: a deadline shorter than the first assembly yields a
// clean 504 (nothing streamed yet) and the deadline counter moves.
func TestSweepDeadline504(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	body := `{
		"grid": {"rect": {"width": 110, "height": 60, "nx": 12, "ny": 12, "depth": 0.8, "radius": 0.006}},
		"seriesTol": 1e-5,
		"timeoutMs": 50,
		"scenarios": [{"soil": {"kind": "two-layer", "gamma1": 0.005, "gamma2": 0.016, "h1": 1.0}}]
	}`
	code, _, resp := post(t, context.Background(), ts.URL, "/v1/sweep", body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, resp)
	}
	if n := s.Counters().DeadlineExceeded.Load(); n == 0 {
		t.Error("deadlineExceeded did not move")
	}
	waitFor(t, func() bool { return s.Counters().BusyWorkers.Load() == 0 })
}

// TestSweepClientCancel drains cleanly when the client disappears
// mid-sweep: the slot is released, the cancel counter moves, and no
// goroutines are left behind.
func TestSweepClientCancel(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	body := `{
		"grid": {"rect": {"width": 115, "height": 60, "nx": 12, "ny": 12, "depth": 0.8, "radius": 0.006}},
		"seriesTol": 1e-5,
		"scenarios": [
			{"soil": {"kind": "two-layer", "gamma1": 0.005, "gamma2": 0.016, "h1": 1.0}},
			{"soil": {"kind": "two-layer", "gamma1": 0.004, "gamma2": 0.016, "h1": 1.0}}
		]
	}`
	start := time.Now()
	postNoFatal(t, ctx, ts.URL, "/v1/sweep", body)
	if d := time.Since(start); d > 10*time.Second {
		t.Errorf("cancelled sweep took %v to return", d)
	}
	waitFor(t, func() bool {
		return s.Counters().BusyWorkers.Load() == 0 && s.Counters().ClientCancelled.Load() >= 1
	})
	waitFor(t, func() bool { return runtime.NumGoroutine() <= baseline+10 })
	if n := s.Counters().Assemblies.Load(); n != 0 {
		t.Errorf("assemblies = %d after cancelled sweep, want 0", n)
	}
}

// TestSweepScaledTierNotCached: with allowScaled, the proportional scenario
// streams as "scaled" and must NOT seed the system cache — a follow-up
// /v1/solve of that soil is a miss and assembles.
func TestSweepScaledTierNotCached(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})
	code, _, resp := post(t, context.Background(), ts.URL, "/v1/sweep",
		fastSweep(20, ` "allowScaled": true,`, [2]float64{0.0125, 1}, [2]float64{0.025, 1}))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, resp)
	}
	lines := decodeSweep(t, resp)
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	byIndex := map[int]SweepLine{}
	for _, l := range lines {
		byIndex[l.Index] = l
	}
	if byIndex[0].Cache != "assembled" || byIndex[1].Cache != "scaled" {
		t.Fatalf("cache tiers (%q, %q), want (assembled, scaled)", byIndex[0].Cache, byIndex[1].Cache)
	}
	if n := s.Counters().Assemblies.Load(); n != 1 {
		t.Errorf("assemblies = %d, want 1 (scaled tier reuses)", n)
	}

	// The scaled result must not be in the cache: solving scenario 1 for
	// real is a miss.
	code, hdr, body := post(t, context.Background(), ts.URL, "/v1/solve",
		`{"grid": {"rect": {"width": 20, "height": 20, "nx": 4, "ny": 4, "depth": 0.8, "radius": 0.006}},
		  "soil": {"kind": "uniform", "gamma1": 0.025}, "seriesTol": 1e-3}`)
	if code != http.StatusOK {
		t.Fatalf("follow-up solve: status %d: %s", code, body)
	}
	if got := hdr.Get("X-Groundd-Cache"); got != "miss" {
		t.Errorf("follow-up solve of scaled scenario: cache %q, want miss", got)
	}
}
