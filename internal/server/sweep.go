package server

import (
	"errors"
	"fmt"
	"net/http"
	"time"

	"earthing"
	"earthing/internal/core"
	"earthing/internal/sched"
)

// maxSweepScenarios bounds one sweep request; beyond it the request is
// rejected outright rather than queued (it would monopolize a slot).
const maxSweepScenarios = 256

// SweepScenarioSpec is one variant of a sweep: a soil model plus the GPR to
// report results at. Both fall back to the envelope's values (the soil when
// the per-scenario one is absent, the GPR when zero; the final default is
// 1 V, like /v1/solve).
type SweepScenarioSpec struct {
	// ID labels this scenario's output line (default "s<index>").
	ID   string   `json:"id,omitempty"`
	Soil SoilSpec `json:"soil,omitempty"`
	GPR  float64  `json:"gpr,omitempty"`
}

// SweepRequest asks for a batch solve of one grid under many soil/GPR
// variants. It embeds the shared Scenario envelope: the grid and the
// discretization/execution knobs are common to every variant — that is what
// lets the engine amortize meshing and interleave assemblies — and the
// envelope's soil/GPR serve as defaults for scenarios that omit their own.
// The embedding promotes the same JSON field names the endpoint has always
// used (grid, maxElemLen, rodElements, seriesTol, workers, schedule), so
// legacy flattened requests decode unchanged.
type SweepRequest struct {
	Scenario
	Scenarios []SweepScenarioSpec `json:"scenarios"`
	TimeoutMs int                 `json:"timeoutMs,omitempty"`
	// AllowScaled enables the proportional-soil reuse tier. Results served
	// from it are exact up to rounding but not bit-identical to a fresh
	// assembly, and are never entered into the system cache.
	AllowScaled bool `json:"allowScaled,omitempty"`
}

// SweepLine is one NDJSON line of the /v1/sweep response: a solved scenario,
// or (as the final line) a sweep-level error. Lines stream in completion
// order; Index gives the scenario's position in the request.
type SweepLine struct {
	ID    string `json:"id,omitempty"`
	Index int    `json:"index"`
	Key   string `json:"key,omitempty"`
	// Cache is the reuse disposition: "hit" (served from the system cache),
	// "assembled", "solve" or "scaled" (the engine's reuse tiers).
	Cache       string   `json:"cache,omitempty"`
	GPR         float64  `json:"gpr,omitempty"`
	ReqOhms     float64  `json:"reqOhms,omitempty"`
	CurrentAmps float64  `json:"currentAmps,omitempty"`
	Elements    int      `json:"elements,omitempty"`
	DoF         int      `json:"dof,omitempty"`
	AssembleMs  float64  `json:"assembleMs,omitempty"`
	SolveMs     float64  `json:"solveMs,omitempty"`
	WallMs      float64  `json:"wallMs,omitempty"`
	Warnings    []string `json:"warnings,omitempty"`
	Error       string   `json:"error,omitempty"`
	// Code carries the typed error code on the terminal (Index −1) error
	// line, matching the pre-stream ErrorBody envelope.
	Code string `json:"code,omitempty"`
}

// sweepWriter streams NDJSON lines, deferring the status line until the
// first write so pre-stream failures can still use proper status codes.
// Shared by every streaming endpoint (/v1/sweep, /v1/optimize).
type sweepWriter struct {
	w     http.ResponseWriter
	f     http.Flusher
	wrote bool
}

func (sw *sweepWriter) emit(line any) error {
	if !sw.wrote {
		sw.w.Header().Set("Content-Type", "application/x-ndjson")
		sw.w.WriteHeader(http.StatusOK)
		sw.wrote = true
	}
	if err := writeJSONLine(sw.w, line); err != nil {
		return err
	}
	if sw.f != nil {
		sw.f.Flush()
	}
	return nil
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.metrics.SweepRequests.Add(1)
	var req SweepRequest
	if herr := decode(r, &req); herr != nil {
		s.writeError(w, herr)
		return
	}
	if len(req.Scenarios) == 0 {
		s.writeError(w, badRequest(fmt.Errorf("sweep: at least one scenario required")))
		return
	}
	if len(req.Scenarios) > maxSweepScenarios {
		s.writeError(w, badRequest(fmt.Errorf("sweep: %d scenarios exceed the limit of %d",
			len(req.Scenarios), maxSweepScenarios)))
		return
	}

	// Build every scenario up front: one bad variant fails the whole request
	// before any work starts. Each variant is the shared envelope with its
	// own soil/GPR overriding the envelope defaults.
	builts := make([]*built, len(req.Scenarios))
	for i, spec := range req.Scenarios {
		sc := req.Scenario
		if spec.Soil.Kind != "" {
			sc.Soil = spec.Soil
		}
		if spec.GPR != 0 {
			sc.GPR = spec.GPR
		}
		b, err := sc.build(s.cfg.Workers)
		if err != nil {
			s.writeError(w, badRequest(fmt.Errorf("scenario %d: %w", i, err)))
			return
		}
		builts[i] = b
	}

	ctx, cancel, herr := s.requestCtx(r, req.TimeoutMs)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer cancel()

	// The whole sweep runs under ONE admission slot: internally it already
	// interleaves all assemblies on a worker pool of the requested width, so
	// claiming a slot per scenario would overcommit the machine.
	release, herr := s.acquire(ctx)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer release()

	flusher, _ := w.(http.Flusher)
	sw := &sweepWriter{w: w, f: flusher}

	// Partition against the degradation ladder (after acquiring the slot, so
	// a concurrent request that just solved a shared system is visible). LRU
	// hits and store/peer rehydrations stream immediately as "hit" lines —
	// the body is bit-identical regardless of which tier served it, and the
	// serving tier is visible in the metrics — while the rest go to the
	// sweep engine.
	var missIdx []int
	for i, b := range builts {
		res, ok := s.cache.get(b.key)
		if ok {
			s.metrics.CacheHits.Add(1)
		} else {
			s.metrics.CacheMisses.Add(1)
			res, _, ok = s.tierGet(ctx, b)
		}
		if ok {
			if err := sw.emit(s.sweepLine(i, req.Scenarios[i].ID, b, res, "hit", nil)); err != nil {
				return // client gone; nothing to report to
			}
			continue
		}
		missIdx = append(missIdx, i)
	}
	if len(missIdx) == 0 {
		return
	}

	scens := make([]earthing.SweepScenario, len(missIdx))
	for j, i := range missIdx {
		id := req.Scenarios[i].ID
		if id == "" {
			id = fmt.Sprintf("s%d", i)
		}
		scens[j] = earthing.SweepScenario{ID: id, Soil: builts[i].model, GPR: builts[i].gpr}
	}

	var opts []earthing.Option
	if req.AllowScaled {
		opts = append(opts, earthing.WithScaledReuse())
	}
	sweepCfg := builts[0].cfg
	sweepCfg.HealthCheck = s.cfg.HealthCheck
	err := earthing.SweepStream(ctx, builts[0].grid, scens, sweepCfg, func(sr earthing.SweepResult) error {
		i := missIdx[sr.Index]
		b := builts[i]
		if sr.Err != nil {
			// Per-scenario failure (contained worker panic or health-check
			// rejection): this scenario reports its error on its own line —
			// never cached — and the rest of the sweep keeps streaming.
			s.countSweepFailure(sr.Err)
			return sw.emit(SweepLine{
				ID: sr.ID, Index: i, Key: b.key,
				Cache: string(sr.Reuse), Error: sr.Err.Error(),
			})
		}
		if sr.Reuse == earthing.SweepAssembled {
			s.metrics.Assemblies.Add(1)
			s.metrics.AssembleNanos.Add(int64(sr.Wall))
			// Cache the unit-GPR solution under the scenario key, exactly as
			// /v1/solve would have. Scaled-tier results are deliberately NOT
			// cached: the cache only ever serves bit-reproducible solutions.
			if unit, err := sr.Res.WithGPR(1); err == nil {
				s.cache.put(b.key, unit)
				s.storePut(b, unit)
			}
		}
		return sw.emit(s.sweepLine(i, sr.ID, b, sr.Res, string(sr.Reuse), &sr))
	}, opts...)
	if err != nil {
		herr := s.mapCtxErr(err)
		if !sw.wrote {
			s.writeError(w, herr)
			return
		}
		// Mid-stream failure: the status line is gone, so the error travels
		// as a terminal NDJSON line carrying the typed code.
		//lint:ignore errdrop the client is the only consumer of this line; if it is gone, so is the report
		sw.emit(SweepLine{Index: -1, Error: herr.msg, Code: errorCode(herr.status)})
	}
}

// countSweepFailure bumps the resilience counter matching a per-scenario
// sweep failure.
func (s *Server) countSweepFailure(err error) {
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		s.metrics.WorkerPanics.Add(1)
		return
	}
	var he *core.HealthError
	if errors.As(err, &he) {
		s.metrics.HealthFailures.Add(1)
	}
}

// sweepLine renders one scenario result. The GPR-dependent current uses the
// same gpr/Req expression as /v1/solve, so the two endpoints report
// byte-identical numbers for the same scenario.
func (s *Server) sweepLine(index int, id string, b *built, res *earthing.Result, cache string, sr *earthing.SweepResult) SweepLine {
	if id == "" {
		id = fmt.Sprintf("s%d", index)
	}
	line := SweepLine{
		ID:          id,
		Index:       index,
		Key:         b.key,
		Cache:       cache,
		GPR:         b.gpr,
		ReqOhms:     res.Req,
		CurrentAmps: b.gpr / res.Req,
		Elements:    len(res.Mesh.Elements),
		DoF:         len(res.Sigma),
		Warnings:    res.Warnings,
	}
	if sr != nil {
		line.AssembleMs = float64(sr.Assembly) / float64(time.Millisecond)
		line.SolveMs = float64(sr.Solve) / float64(time.Millisecond)
		line.WallMs = float64(sr.Wall) / float64(time.Millisecond)
	}
	return line
}
