package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"
)

// RunUntilSignal serves s on ln until a value arrives on sig, then drains:
// readiness flips to 503 (load balancers stop routing here), new solves are
// refused with Retry-After, and in-flight requests get up to drainTimeout to
// finish before the listener is torn down. It returns nil on a clean drain,
// the shutdown error when the timeout expired with work still running, or
// the serve error if the listener failed before any signal.
//
// handler is what actually serves (cmd/groundd wraps s in a mux that also
// mounts expvar); nil serves s directly. The signal channel is an injection
// point: cmd/groundd feeds it from signal.Notify, the drain tests feed it
// directly.
func RunUntilSignal(s *Server, handler http.Handler, ln net.Listener, sig <-chan os.Signal, drainTimeout time.Duration, logf func(format string, v ...any)) error {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if handler == nil {
		handler = s
	}
	hs := &http.Server{Handler: handler}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died on its own; Shutdown would have nothing to drain.
		return fmt.Errorf("groundd: serve: %w", err)
	case got := <-sig:
		logf("groundd: received %v, draining (timeout %s)", got, drainTimeout)
	}

	s.SetDraining(true)
	//lint:ignore ctxflow the drain deadline is process-lifecycle scope; every request ctx is already ending
	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		return fmt.Errorf("groundd: drain timeout after %s: %w", drainTimeout, err)
	}
	// Shutdown closed the listener, so Serve has returned ErrServerClosed;
	// reap it so the goroutine is gone before we report the clean drain.
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("groundd: serve: %w", err)
	}
	// With no requests left, stop the background goroutines and flush the
	// durable store's write-behind queue so the next boot warm-starts from a
	// complete snapshot.
	if err := s.Close(); err != nil {
		return fmt.Errorf("groundd: close: %w", err)
	}
	logf("groundd: drained cleanly")
	return nil
}
