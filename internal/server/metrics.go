package server

import (
	"expvar"
	"sync/atomic"
)

// Metrics holds the server's observability counters. All fields are updated
// atomically; a consistent snapshot is not needed (each counter is
// independently meaningful), so reads are plain atomic loads.
//
// The struct is per-Server rather than package-global expvar variables so
// tests can spin up many servers without tripping expvar's duplicate-name
// panic; cmd/groundd publishes one server's Metrics into expvar at startup
// (see PublishExpvar).
type Metrics struct {
	// Request counters by endpoint.
	SolveRequests    atomic.Int64
	SweepRequests    atomic.Int64
	RasterRequests   atomic.Int64
	SafetyRequests   atomic.Int64
	OptimizeRequests atomic.Int64

	// Design-loop accounting: OptimizeCandidates is the cumulative count of
	// unique candidate layouts solved by /v1/optimize searches;
	// OptimizeNanos the wall time spent inside the search engine.
	OptimizeCandidates atomic.Int64
	OptimizeNanos      atomic.Int64

	// Cache accounting. Assemblies counts full pipeline runs (matrix
	// generation + factorization); on a pure cache hit it does not move —
	// the acceptance check for "cache hit performs no assembly".
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	Assemblies  atomic.Int64

	// Load-shedding outcomes.
	RejectedQueueFull atomic.Int64 // 429: admission queue at capacity
	DeadlineExceeded  atomic.Int64 // 504: deadline elapsed before/while solving
	ClientCancelled   atomic.Int64 // 499: client went away

	// Resilience counters. WorkerPanics counts panics contained inside the
	// parallel compute loops and surfaced as request errors; HandlerPanics
	// counts panics recovered at the HTTP handler boundary (the process
	// stays up either way). HealthFailures counts solves rejected by the
	// numerical health checks instead of serving garbage.
	WorkerPanics   atomic.Int64
	HandlerPanics  atomic.Int64
	HealthFailures atomic.Int64

	// QueueDepth is the current number of requests admitted but not yet
	// holding a worker slot; BusyWorkers the number of slots in use.
	QueueDepth  atomic.Int64
	BusyWorkers atomic.Int64

	// Per-stage wall time accumulators, nanoseconds (summed across
	// requests; divide by Assemblies for mean cost per cold solve).
	AssembleNanos atomic.Int64 // matrix generation + solve (cold path)
	PostNanos     atomic.Int64 // rasters, voltages, serialization
}

// Snapshot is a plain-value copy of the counters for JSON serialization.
type Snapshot struct {
	SolveRequests      int64 `json:"solveRequests"`
	SweepRequests      int64 `json:"sweepRequests"`
	RasterRequests     int64 `json:"rasterRequests"`
	SafetyRequests     int64 `json:"safetyRequests"`
	OptimizeRequests   int64 `json:"optimizeRequests"`
	OptimizeCandidates int64 `json:"optimizeCandidates"`
	OptimizeNanos      int64 `json:"optimizeNanos"`
	CacheHits          int64 `json:"cacheHits"`
	CacheMisses        int64 `json:"cacheMisses"`
	CacheEntries       int   `json:"cacheEntries"`
	Assemblies         int64 `json:"assemblies"`
	RejectedQueueFull  int64 `json:"rejectedQueueFull"`
	DeadlineExceeded   int64 `json:"deadlineExceeded"`
	ClientCancelled    int64 `json:"clientCancelled"`
	WorkerPanics       int64 `json:"workerPanics"`
	HandlerPanics      int64 `json:"handlerPanics"`
	HealthFailures     int64 `json:"healthFailures"`
	QueueDepth         int64 `json:"queueDepth"`
	BusyWorkers        int64 `json:"busyWorkers"`
	AssembleNanos      int64 `json:"assembleNanos"`
	PostNanos          int64 `json:"postNanos"`
}

// snapshot captures the counters plus the cache size.
func (m *Metrics) snapshot(cacheEntries int) Snapshot {
	return Snapshot{
		SolveRequests:      m.SolveRequests.Load(),
		SweepRequests:      m.SweepRequests.Load(),
		RasterRequests:     m.RasterRequests.Load(),
		SafetyRequests:     m.SafetyRequests.Load(),
		OptimizeRequests:   m.OptimizeRequests.Load(),
		OptimizeCandidates: m.OptimizeCandidates.Load(),
		OptimizeNanos:      m.OptimizeNanos.Load(),
		CacheHits:          m.CacheHits.Load(),
		CacheMisses:        m.CacheMisses.Load(),
		CacheEntries:       cacheEntries,
		Assemblies:         m.Assemblies.Load(),
		RejectedQueueFull:  m.RejectedQueueFull.Load(),
		DeadlineExceeded:   m.DeadlineExceeded.Load(),
		ClientCancelled:    m.ClientCancelled.Load(),
		WorkerPanics:       m.WorkerPanics.Load(),
		HandlerPanics:      m.HandlerPanics.Load(),
		HealthFailures:     m.HealthFailures.Load(),
		QueueDepth:         m.QueueDepth.Load(),
		BusyWorkers:        m.BusyWorkers.Load(),
		AssembleNanos:      m.AssembleNanos.Load(),
		PostNanos:          m.PostNanos.Load(),
	}
}

// PublishExpvar exposes the server's counters under the "groundd" expvar map
// (visible at /debug/vars). Call at most once per process: expvar panics on
// duplicate names, which is why the counters live on the Server rather than
// in package-level expvar variables.
func (s *Server) PublishExpvar() {
	m := expvar.NewMap("groundd")
	pub := func(name string, f func() int64) {
		m.Set(name, expvar.Func(func() any { return f() }))
	}
	pub("solveRequests", s.metrics.SolveRequests.Load)
	pub("sweepRequests", s.metrics.SweepRequests.Load)
	pub("rasterRequests", s.metrics.RasterRequests.Load)
	pub("safetyRequests", s.metrics.SafetyRequests.Load)
	pub("optimizeRequests", s.metrics.OptimizeRequests.Load)
	pub("optimizeCandidates", s.metrics.OptimizeCandidates.Load)
	pub("optimizeNanos", s.metrics.OptimizeNanos.Load)
	pub("cacheHits", s.metrics.CacheHits.Load)
	pub("cacheMisses", s.metrics.CacheMisses.Load)
	pub("assemblies", s.metrics.Assemblies.Load)
	pub("rejectedQueueFull", s.metrics.RejectedQueueFull.Load)
	pub("deadlineExceeded", s.metrics.DeadlineExceeded.Load)
	pub("clientCancelled", s.metrics.ClientCancelled.Load)
	pub("workerPanics", s.metrics.WorkerPanics.Load)
	pub("handlerPanics", s.metrics.HandlerPanics.Load)
	pub("healthFailures", s.metrics.HealthFailures.Load)
	pub("queueDepth", s.metrics.QueueDepth.Load)
	pub("busyWorkers", s.metrics.BusyWorkers.Load)
	pub("assembleNanos", s.metrics.AssembleNanos.Load)
	pub("postNanos", s.metrics.PostNanos.Load)
	m.Set("cacheEntries", expvar.Func(func() any { return s.cache.len() }))
}
