package server

import (
	"expvar"
	"sync/atomic"
)

// Metrics holds the server's observability counters. All fields are updated
// atomically; a consistent snapshot is not needed (each counter is
// independently meaningful), so reads are plain atomic loads.
//
// The struct is per-Server rather than package-global expvar variables so
// tests can spin up many servers without tripping expvar's duplicate-name
// panic; cmd/groundd publishes one server's Metrics into expvar at startup
// (see PublishExpvar).
type Metrics struct {
	// Request counters by endpoint.
	SolveRequests    atomic.Int64
	SweepRequests    atomic.Int64
	RasterRequests   atomic.Int64
	SafetyRequests   atomic.Int64
	OptimizeRequests atomic.Int64

	// Design-loop accounting: OptimizeCandidates is the cumulative count of
	// unique candidate layouts solved by /v1/optimize searches;
	// OptimizeNanos the wall time spent inside the search engine.
	OptimizeCandidates atomic.Int64
	OptimizeNanos      atomic.Int64

	// Cache accounting. Assemblies counts full pipeline runs (matrix
	// generation + factorization); on a pure cache hit it does not move —
	// the acceptance check for "cache hit performs no assembly". CacheHits
	// and CacheMisses are LRU-level; the tiers below it count separately.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	Assemblies  atomic.Int64

	// Degradation-ladder accounting. StoreHits counts scenarios rehydrated
	// from the durable store (no assembly, no solve); PeerHits those served
	// by the ring owner; PeerFallbacks scenarios that wanted a peer but
	// ended in a local solve (dead, slow, quarantined or poisoned owner);
	// PeerPoisoned the subset whose response failed checksum verification
	// and tripped the owner's breaker.
	StoreHits     atomic.Int64
	PeerHits      atomic.Int64
	PeerFallbacks atomic.Int64
	PeerPoisoned  atomic.Int64

	// Load-shedding outcomes.
	RejectedQueueFull atomic.Int64 // 429: admission queue at capacity
	DeadlineExceeded  atomic.Int64 // 504: deadline elapsed before/while solving
	ClientCancelled   atomic.Int64 // 499: client went away

	// Resilience counters. WorkerPanics counts panics contained inside the
	// parallel compute loops and surfaced as request errors; HandlerPanics
	// counts panics recovered at the HTTP handler boundary (the process
	// stays up either way). HealthFailures counts solves rejected by the
	// numerical health checks instead of serving garbage.
	WorkerPanics   atomic.Int64
	HandlerPanics  atomic.Int64
	HealthFailures atomic.Int64

	// QueueDepth is the current number of requests admitted but not yet
	// holding a worker slot; BusyWorkers the number of slots in use.
	QueueDepth  atomic.Int64
	BusyWorkers atomic.Int64

	// Per-stage wall time accumulators, nanoseconds (summed across
	// requests; divide by Assemblies for mean cost per cold solve).
	AssembleNanos atomic.Int64 // matrix generation + solve (cold path)
	PostNanos     atomic.Int64 // rasters, voltages, serialization
}

// Snapshot is a plain-value copy of the counters for JSON serialization.
type Snapshot struct {
	SolveRequests      int64 `json:"solveRequests"`
	SweepRequests      int64 `json:"sweepRequests"`
	RasterRequests     int64 `json:"rasterRequests"`
	SafetyRequests     int64 `json:"safetyRequests"`
	OptimizeRequests   int64 `json:"optimizeRequests"`
	OptimizeCandidates int64 `json:"optimizeCandidates"`
	OptimizeNanos      int64 `json:"optimizeNanos"`
	CacheHits          int64 `json:"cacheHits"`
	CacheMisses        int64 `json:"cacheMisses"`
	CacheEntries       int   `json:"cacheEntries"`
	CacheBytes         int64 `json:"cacheBytes"`
	Assemblies         int64 `json:"assemblies"`
	StoreHits          int64 `json:"storeHits"`
	StoreRecords       int64 `json:"storeRecords"`
	StoreSkipped       int64 `json:"storeSkippedRecords"`
	StoreDropped       int64 `json:"storeDroppedWrites"`
	StoreWriteErrors   int64 `json:"storeWriteErrors"`
	PeerHits           int64 `json:"peerHits"`
	PeerFallbacks      int64 `json:"peerFallbacks"`
	PeerPoisoned       int64 `json:"peerPoisoned"`
	BreakerOpen        int64 `json:"breakerOpen"`
	RejectedQueueFull  int64 `json:"rejectedQueueFull"`
	DeadlineExceeded   int64 `json:"deadlineExceeded"`
	ClientCancelled    int64 `json:"clientCancelled"`
	WorkerPanics       int64 `json:"workerPanics"`
	HandlerPanics      int64 `json:"handlerPanics"`
	HealthFailures     int64 `json:"healthFailures"`
	QueueDepth         int64 `json:"queueDepth"`
	BusyWorkers        int64 `json:"busyWorkers"`
	AssembleNanos      int64 `json:"assembleNanos"`
	PostNanos          int64 `json:"postNanos"`
}

// snapshot captures the counters plus the cache size.
func (m *Metrics) snapshot(cacheEntries int) Snapshot {
	return Snapshot{
		SolveRequests:      m.SolveRequests.Load(),
		SweepRequests:      m.SweepRequests.Load(),
		RasterRequests:     m.RasterRequests.Load(),
		SafetyRequests:     m.SafetyRequests.Load(),
		OptimizeRequests:   m.OptimizeRequests.Load(),
		OptimizeCandidates: m.OptimizeCandidates.Load(),
		OptimizeNanos:      m.OptimizeNanos.Load(),
		CacheHits:          m.CacheHits.Load(),
		CacheMisses:        m.CacheMisses.Load(),
		CacheEntries:       cacheEntries,
		Assemblies:         m.Assemblies.Load(),
		StoreHits:          m.StoreHits.Load(),
		PeerHits:           m.PeerHits.Load(),
		PeerFallbacks:      m.PeerFallbacks.Load(),
		PeerPoisoned:       m.PeerPoisoned.Load(),
		RejectedQueueFull:  m.RejectedQueueFull.Load(),
		DeadlineExceeded:   m.DeadlineExceeded.Load(),
		ClientCancelled:    m.ClientCancelled.Load(),
		WorkerPanics:       m.WorkerPanics.Load(),
		HandlerPanics:      m.HandlerPanics.Load(),
		HealthFailures:     m.HealthFailures.Load(),
		QueueDepth:         m.QueueDepth.Load(),
		BusyWorkers:        m.BusyWorkers.Load(),
		AssembleNanos:      m.AssembleNanos.Load(),
		PostNanos:          m.PostNanos.Load(),
	}
}

// snapshot assembles the full observability view: the atomic counters plus
// live gauges from the cache, the durable store (when configured) and the
// fleet's circuit breakers (when clustered).
func (s *Server) snapshot() Snapshot {
	snap := s.metrics.snapshot(s.cache.len())
	snap.CacheBytes = s.cache.bytes()
	if s.store != nil {
		st := s.store.Stats()
		snap.StoreRecords = int64(st.Records)
		snap.StoreSkipped = st.SkippedRecords
		snap.StoreDropped = st.DroppedWrites
		snap.StoreWriteErrors = st.WriteErrors
	}
	if s.fleet != nil {
		snap.BreakerOpen = s.fleet.openBreakers()
	}
	return snap
}

// PublishExpvar exposes the server's counters under the "groundd" expvar map
// (visible at /debug/vars). Call at most once per process: expvar panics on
// duplicate names, which is why the counters live on the Server rather than
// in package-level expvar variables.
func (s *Server) PublishExpvar() {
	m := expvar.NewMap("groundd")
	pub := func(name string, f func() int64) {
		m.Set(name, expvar.Func(func() any { return f() }))
	}
	pub("solveRequests", s.metrics.SolveRequests.Load)
	pub("sweepRequests", s.metrics.SweepRequests.Load)
	pub("rasterRequests", s.metrics.RasterRequests.Load)
	pub("safetyRequests", s.metrics.SafetyRequests.Load)
	pub("optimizeRequests", s.metrics.OptimizeRequests.Load)
	pub("optimizeCandidates", s.metrics.OptimizeCandidates.Load)
	pub("optimizeNanos", s.metrics.OptimizeNanos.Load)
	pub("cacheHits", s.metrics.CacheHits.Load)
	pub("cacheMisses", s.metrics.CacheMisses.Load)
	pub("assemblies", s.metrics.Assemblies.Load)
	pub("rejectedQueueFull", s.metrics.RejectedQueueFull.Load)
	pub("deadlineExceeded", s.metrics.DeadlineExceeded.Load)
	pub("clientCancelled", s.metrics.ClientCancelled.Load)
	pub("workerPanics", s.metrics.WorkerPanics.Load)
	pub("handlerPanics", s.metrics.HandlerPanics.Load)
	pub("healthFailures", s.metrics.HealthFailures.Load)
	pub("queueDepth", s.metrics.QueueDepth.Load)
	pub("busyWorkers", s.metrics.BusyWorkers.Load)
	pub("assembleNanos", s.metrics.AssembleNanos.Load)
	pub("postNanos", s.metrics.PostNanos.Load)
	pub("storeHits", s.metrics.StoreHits.Load)
	pub("peerHits", s.metrics.PeerHits.Load)
	pub("peerFallbacks", s.metrics.PeerFallbacks.Load)
	pub("peerPoisoned", s.metrics.PeerPoisoned.Load)
	m.Set("cacheEntries", expvar.Func(func() any { return s.cache.len() }))
	m.Set("cacheBytes", expvar.Func(func() any { return s.cache.bytes() }))
	m.Set("storeSkippedRecords", expvar.Func(func() any {
		if s.store == nil {
			return int64(0)
		}
		return s.store.Stats().SkippedRecords
	}))
	m.Set("breakerOpen", expvar.Func(func() any {
		if s.fleet == nil {
			return 0
		}
		return s.fleet.openBreakers()
	}))
}
