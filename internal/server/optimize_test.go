package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// fastOptimize builds a small /v1/optimize body: a 10 m × 10 m site in
// uniform soil searched over a few dozen candidates with a loose series
// tolerance — the tests pin service mechanics, not physical accuracy.
func fastOptimize(extra string) string {
	return fmt.Sprintf(`{
		"soil": {"kind": "uniform", "gamma1": 0.02},
		"seriesTol": 1e-2, "rodElements": 2,%s
		"width": 10, "height": 10,
		"faultCurrentA": 100,
		"criteria": {"faultDurationS": 0.5, "soilRho": 50},
		"minLines": 2, "maxLines": 4, "maxRods": 2,
		"minDepth": 0.5, "maxDepth": 0.7, "depthStep": 0.1,
		"voltageResM": 2.5,
		"starts": 2, "maxEvals": 120
	}`, extra)
}

// decodeOptimize parses an NDJSON /v1/optimize body into lines.
func decodeOptimize(t *testing.T, body []byte) []OptimizeLine {
	t.Helper()
	var lines []OptimizeLine
	dec := json.NewDecoder(bytes.NewReader(body))
	for dec.More() {
		var l OptimizeLine
		if err := dec.Decode(&l); err != nil {
			t.Fatalf("bad NDJSON line: %v\nbody: %s", err, body)
		}
		lines = append(lines, l)
	}
	return lines
}

// TestOptimizeEndpoint: the happy path streams improving designs and closes
// with a final summary line whose best design is feasible.
func TestOptimizeEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})
	code, hdr, body := post(t, context.Background(), ts.URL, "/v1/optimize", fastOptimize(""))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	lines := decodeOptimize(t, body)
	if len(lines) < 2 {
		t.Fatalf("%d lines, want at least one progress + the final line: %s", len(lines), body)
	}
	final := lines[len(lines)-1]
	if !final.Final || final.Stats == nil || final.Error != "" {
		t.Fatalf("terminal line %+v, want final summary without error", final)
	}
	if final.Best == nil || !final.Best.Feasible || !final.Best.Verdict.Safe() {
		t.Fatalf("final best %+v, want a feasible design", final.Best)
	}
	lastGen := 0
	for _, l := range lines[:len(lines)-1] {
		if l.Final || l.Best == nil {
			t.Fatalf("progress line %+v malformed", l)
		}
		if l.Generation <= lastGen {
			t.Errorf("generations not strictly increasing: %d after %d", l.Generation, lastGen)
		}
		lastGen = l.Generation
	}
	// The final best is the last streamed best.
	last := lines[len(lines)-2].Best
	if last.Objective != final.Best.Objective || last.NX != final.Best.NX {
		t.Errorf("final best %+v differs from last progress %+v", final.Best, last)
	}
	// Stats accounting and the per-server optimize counters.
	st := final.Stats
	if st.Requested != st.Evaluated+st.CacheHits || st.Evaluated == 0 {
		t.Errorf("stats accounting broken: %+v", st)
	}
	snap := getStats(t, ts.URL)
	if snap.OptimizeRequests != 1 {
		t.Errorf("optimizeRequests = %d, want 1", snap.OptimizeRequests)
	}
	if snap.OptimizeCandidates != int64(st.Evaluated) {
		t.Errorf("optimizeCandidates = %d, want %d", snap.OptimizeCandidates, st.Evaluated)
	}
	if got := s.Counters().OptimizeNanos.Load(); got <= 0 {
		t.Errorf("optimizeNanos = %d, want > 0", got)
	}
}

// TestOptimizeDeterministicAcrossWorkersHTTP pins the acceptance contract at
// the service boundary: the whole NDJSON stream — every progress line, the
// final design, the counters — is byte-identical at any worker count for a
// fixed seed.
func TestOptimizeDeterministicAcrossWorkersHTTP(t *testing.T) {
	run := func(workers int) []byte {
		_, ts := newTestServer(t, Config{MaxConcurrent: 2})
		code, _, body := post(t, context.Background(), ts.URL, "/v1/optimize",
			fastOptimize(fmt.Sprintf(` "workers": %d,`, workers)))
		if code != http.StatusOK {
			t.Fatalf("workers=%d: status %d: %s", workers, code, body)
		}
		return body
	}
	base := run(1)
	for _, w := range []int{2, 4} {
		if got := run(w); !bytes.Equal(got, base) {
			t.Errorf("workers=%d stream differs from workers=1:\n%s\nvs\n%s", w, got, base)
		}
	}
}

// TestOptimizeNoFeasible: an impossible fault current still streams the
// least-violating designs and closes with the typed no_feasible code on the
// terminal line (the stream already committed status 200).
func TestOptimizeNoFeasible(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	body := strings.Replace(fastOptimize(""), `"faultCurrentA": 100`, `"faultCurrentA": 1e6`, 1)
	code, _, resp := post(t, context.Background(), ts.URL, "/v1/optimize", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, resp)
	}
	lines := decodeOptimize(t, resp)
	final := lines[len(lines)-1]
	if !final.Final || final.Code != "no_feasible" || final.Error == "" {
		t.Fatalf("terminal line %+v, want final with code no_feasible", final)
	}
	if final.Best == nil || final.Best.Feasible {
		t.Errorf("final best %+v, want the least-violating infeasible design", final.Best)
	}
	if final.Stats == nil || final.Stats.Evaluated == 0 {
		t.Errorf("terminal stats %+v, want non-empty", final.Stats)
	}
}

// TestOptimizeBadRequests covers the pre-stream 400 paths of the unified
// envelope: they must be typed JSON error envelopes, never NDJSON.
func TestOptimizeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"grid present", strings.Replace(fastOptimize(""), `"soil"`, `"grid": {"builtin": "barbera"}, "soil"`, 1)},
		{"gpr present", strings.Replace(fastOptimize(""), `"soil"`, `"gpr": 100, "soil"`, 1)},
		{"zero width", strings.Replace(fastOptimize(""), `"width": 10`, `"width": 0`, 1)},
		{"negative fault current", strings.Replace(fastOptimize(""), `"faultCurrentA": 100`, `"faultCurrentA": -5`, 1)},
		{"bad soil", strings.Replace(fastOptimize(""), `"gamma1": 0.02`, `"gamma1": -1`, 1)},
		{"no criteria", strings.Replace(fastOptimize(""), `"faultDurationS": 0.5, `, ``, 1)},
		{"bad series tol", strings.Replace(fastOptimize(""), `"seriesTol": 1e-2`, `"seriesTol": 2`, 1)},
		{"too many starts", strings.Replace(fastOptimize(""), `"starts": 2`, `"starts": 99`, 1)},
		{"over eval budget", strings.Replace(fastOptimize(""), `"maxEvals": 120`, `"maxEvals": 99999`, 1)},
		{"negative depth", strings.Replace(fastOptimize(""), `"minDepth": 0.5`, `"minDepth": -1`, 1)},
		{"unknown field", strings.Replace(fastOptimize(""), `"width": 10`, `"width": 10, "bogus": 1`, 1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, hdr, body := post(t, context.Background(), ts.URL, "/v1/optimize", tc.body)
			if code != http.StatusBadRequest {
				t.Fatalf("status %d, want 400: %s", code, body)
			}
			if ct := hdr.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type %q, want application/json", ct)
			}
			var eb ErrorBody
			if err := json.Unmarshal(body, &eb); err != nil {
				t.Fatalf("error body is not the typed envelope: %v: %s", err, body)
			}
			if eb.Code != "bad_request" || eb.Message == "" {
				t.Errorf("error body %+v, want code bad_request with a message", eb)
			}
		})
	}
}

// TestOptimizeDeadline504: a deadline far shorter than the search surfaces
// the typed deadline_exceeded error — pre-stream as a 504 envelope when the
// budget dies before the first generation, or as the terminal NDJSON error
// line when an early generation already committed the 200.
func TestOptimizeDeadline504(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	body := strings.Replace(fastOptimize(""), `"width"`, `"timeoutMs": 1, "width"`, 1)
	code, _, resp := post(t, context.Background(), ts.URL, "/v1/optimize", body)
	switch code {
	case http.StatusGatewayTimeout:
		var eb ErrorBody
		if err := json.Unmarshal(resp, &eb); err != nil || eb.Code != "deadline_exceeded" {
			t.Errorf("error body %s, want typed deadline_exceeded envelope (err %v)", resp, err)
		}
	case http.StatusOK:
		lines := decodeOptimize(t, resp)
		final := lines[len(lines)-1]
		if !final.Final || final.Code != "deadline_exceeded" || final.Error == "" {
			t.Errorf("terminal line %+v, want deadline_exceeded error line", final)
		}
	default:
		t.Fatalf("status %d, want 504 or mid-stream 200: %s", code, resp)
	}
	if n := s.Counters().DeadlineExceeded.Load(); n != 1 {
		t.Errorf("deadlineExceeded = %d, want 1", n)
	}
	waitFor(t, func() bool { return s.Counters().BusyWorkers.Load() == 0 })
}

// TestOptimizeQueueFull429: an optimize arriving at a saturated queue is shed
// pre-stream with 429, a Retry-After header and the typed queue_full body.
func TestOptimizeQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		postNoFatal(t, ctx, ts.URL, "/v1/solve", slowScenario(130))
	}()
	waitFor(t, func() bool { return s.Counters().BusyWorkers.Load() == 1 })
	go func() {
		defer wg.Done()
		postNoFatal(t, ctx, ts.URL, "/v1/solve", slowScenario(131))
	}()
	waitFor(t, func() bool { return s.Counters().QueueDepth.Load() == 1 })

	code, hdr, body := post(t, context.Background(), ts.URL, "/v1/optimize", fastOptimize(""))
	if code != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 response lacks a Retry-After header")
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not the typed envelope: %v: %s", err, body)
	}
	if eb.Code != "queue_full" || eb.RetryAfterS < 1 {
		t.Errorf("error body %+v, want code queue_full with retry_after ≥ 1", eb)
	}
	cancel()
	wg.Wait()
}

// TestTypedErrorBodyEveryEndpoint: all five /v1/* endpoints emit the same
// {code, message} envelope on a malformed body.
func TestTypedErrorBodyEveryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/solve", "/v1/sweep", "/v1/raster", "/v1/safety", "/v1/optimize"} {
		code, _, body := post(t, context.Background(), ts.URL, path, `{"bogus":`)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
		var eb ErrorBody
		if err := json.Unmarshal(body, &eb); err != nil {
			t.Errorf("%s: error body is not the typed envelope: %v: %s", path, err, body)
			continue
		}
		if eb.Code != "bad_request" || eb.Message == "" {
			t.Errorf("%s: error body %+v, want code bad_request with a message", path, eb)
		}
	}
	// Draining responses carry the draining code and a retry hint.
	s2, ts2 := newTestServer(t, Config{})
	s2.SetDraining(true)
	code, _, body := post(t, context.Background(), ts2.URL, "/v1/solve", fastScenario(20, 1))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("draining status %d, want 503: %s", code, body)
	}
	var eb ErrorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Code != "draining" || eb.RetryAfterS < 1 {
		t.Errorf("draining body %s, want typed draining envelope with retry_after (err %v)", body, err)
	}
}

// TestSweepEnvelopeSoilDefault: the unified envelope lets a sweep name its
// soil once at the top level; scenarios that omit theirs inherit it, and the
// results are identical to the legacy per-scenario form.
func TestSweepEnvelopeSoilDefault(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	envelope := `{
		"grid": {"rect": {"width": 20, "height": 20, "nx": 4, "ny": 4, "depth": 0.8, "radius": 0.006}},
		"soil": {"kind": "uniform", "gamma1": 0.0125},
		"seriesTol": 1e-3,
		"scenarios": [{"id": "a", "gpr": 1000}, {"id": "b", "gpr": 2000}]
	}`
	code, _, resp := post(t, context.Background(), ts.URL, "/v1/sweep", envelope)
	if code != http.StatusOK {
		t.Fatalf("envelope sweep: status %d: %s", code, resp)
	}
	lines := decodeSweep(t, resp)
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2: %s", len(lines), resp)
	}
	for _, l := range lines {
		if l.Error != "" || l.ReqOhms <= 0 {
			t.Errorf("envelope sweep line %+v", l)
		}
	}
	// The legacy flattened form produces the same numbers (fresh server so
	// both sweeps assemble cold).
	_, ts2 := newTestServer(t, Config{MaxConcurrent: 2})
	legacy := fastSweep(20, "", [2]float64{0.0125, 1000}, [2]float64{0.0125, 2000})
	code, _, resp2 := post(t, context.Background(), ts2.URL, "/v1/sweep", legacy)
	if code != http.StatusOK {
		t.Fatalf("legacy sweep: status %d: %s", code, resp2)
	}
	legacyLines := decodeSweep(t, resp2)
	for i := range lines {
		if lines[i].ReqOhms != legacyLines[i].ReqOhms || lines[i].Key != legacyLines[i].Key ||
			lines[i].GPR != legacyLines[i].GPR {
			t.Errorf("envelope line %+v != legacy line %+v", lines[i], legacyLines[i])
		}
	}
}
