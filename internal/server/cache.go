package server

import (
	"container/list"
	"sync"

	"earthing"
	"earthing/internal/faultinject"
)

// entry is one cached unit-GPR solve keyed by its canonical scenario key.
// bytes is the Footprint estimate charged against the byte budget at insert
// time (recomputing it at eviction would double-count a Result whose
// assembler lazily grew post-processing state).
type entry struct {
	key   string
	res   *earthing.Result
	bytes int64
}

// lruCache is a bounded LRU of solved systems. A hit hands back the
// factorized, solved *earthing.Result — everything downstream (resistance,
// rasters, safety voltages) is pure post-processing over Sigma and the
// assembler, so a hit skips both matrix generation and the Cholesky solve
// entirely.
//
// Results are stored at unit GPR. Because the Galerkin system is linear in
// the imposed boundary potential (§2 of the paper), the response for any GPR
// is the cached solution scaled — one entry serves every fault level.
//
// The cache is bounded two ways: by entry count and by resident bytes
// (Result.Footprint). The byte bound is the one that matters in production —
// a 64-entry cache of small survey grids is a few MiB while 64 interconnected
// systems can be GiBs — and the entry bound keeps the map from growing
// unbounded when every result is tiny.
//
// The cache is safe for concurrent use. Cached results are shared across
// requests; callers must treat them as immutable (the post-processing
// engines only read Sigma and the assembler's precomputed element data).
type lruCache struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	resident   int64
	order      *list.List // front = most recently used; values are *entry
	items      map[string]*list.Element
}

// newLRUCache returns a cache bounded to maxEntries entries (maxEntries ≤ 0
// disables caching: every get misses and put is a no-op) and maxBytes
// resident bytes (maxBytes ≤ 0 leaves the byte bound off).
func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	return &lruCache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		order:      list.New(),
		items:      make(map[string]*list.Element),
	}
}

// get returns the cached result for key, promoting it to most recently used.
func (c *lruCache) get(key string) (*earthing.Result, bool) {
	faultinject.Fire(faultinject.CacheGet, 0, nil)
	if c.maxEntries <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// put inserts (or refreshes) key, evicting least recently used entries while
// either bound is exceeded. A single result larger than the whole byte budget
// is not cached at all — admitting it would evict everything else and then
// thrash.
func (c *lruCache) put(key string, res *earthing.Result) {
	if c.maxEntries <= 0 {
		return
	}
	fp := res.Footprint()
	if c.maxBytes > 0 && fp > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.resident += fp - e.bytes
		e.res, e.bytes = res, fp
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&entry{key: key, res: res, bytes: fp})
		c.resident += fp
	}
	for c.order.Len() > 1 &&
		(c.order.Len() > c.maxEntries || (c.maxBytes > 0 && c.resident > c.maxBytes)) {
		tail := c.order.Back()
		e := tail.Value.(*entry)
		c.order.Remove(tail)
		delete(c.items, e.key)
		c.resident -= e.bytes
	}
}

// len reports the current number of cached systems.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// bytes reports the resident-byte estimate currently charged to the cache.
func (c *lruCache) bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resident
}
