package server

import (
	"container/list"
	"sync"

	"earthing"
	"earthing/internal/faultinject"
)

// entry is one cached unit-GPR solve keyed by its canonical scenario key.
type entry struct {
	key string
	res *earthing.Result
}

// lruCache is a size-bounded LRU of solved systems. A hit hands back the
// factorized, solved *earthing.Result — everything downstream (resistance,
// rasters, safety voltages) is pure post-processing over Sigma and the
// assembler, so a hit skips both matrix generation and the Cholesky solve
// entirely.
//
// Results are stored at unit GPR. Because the Galerkin system is linear in
// the imposed boundary potential (§2 of the paper), the response for any GPR
// is the cached solution scaled — one entry serves every fault level.
//
// The cache is safe for concurrent use. Cached results are shared across
// requests; callers must treat them as immutable (the post-processing
// engines only read Sigma and the assembler's precomputed element data).
type lruCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recently used; values are *entry
	items map[string]*list.Element
}

// newLRUCache returns a cache bounded to max entries (max ≤ 0 disables
// caching: every get misses and put is a no-op).
func newLRUCache(max int) *lruCache {
	return &lruCache{
		max:   max,
		order: list.New(),
		items: make(map[string]*list.Element),
	}
}

// get returns the cached result for key, promoting it to most recently used.
func (c *lruCache) get(key string) (*earthing.Result, bool) {
	faultinject.Fire(faultinject.CacheGet, 0, nil)
	if c.max <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*entry).res, true
}

// put inserts (or refreshes) key, evicting the least recently used entry
// when over capacity.
func (c *lruCache) put(key string, res *earthing.Result) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).res = res
		c.order.MoveToFront(el)
		return
	}
	c.items[key] = c.order.PushFront(&entry{key: key, res: res})
	for c.order.Len() > c.max {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.items, tail.Value.(*entry).key)
	}
}

// len reports the current number of cached systems.
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
