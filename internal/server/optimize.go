package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"earthing"
)

// maxOptimizeEvals and maxOptimizeStarts bound one /v1/optimize search: the
// whole search runs under a single admission slot, so an unbounded budget
// would let one request monopolize it until the deadline.
const (
	maxOptimizeEvals  = 4096
	maxOptimizeStarts = 16
)

// OptimizeRequest asks the design-loop engine to synthesize the cheapest grid
// layout meeting the IEEE Std 80 limits. It reuses the shared Scenario
// envelope for the soil model and the discretization/execution knobs; the
// envelope's grid MUST be omitted (this endpoint synthesizes candidate grids)
// and so must its GPR (each candidate's GPR is Req · faultCurrentA).
type OptimizeRequest struct {
	Scenario
	TimeoutMs int `json:"timeoutMs,omitempty"`

	// Site and electrical problem.
	Width         float64      `json:"width"`
	Height        float64      `json:"height"`
	FaultCurrentA float64      `json:"faultCurrentA"`
	Criteria      CriteriaSpec `json:"criteria"`

	// Layout family bounds and material parameters (0 = engine defaults).
	MinLines        int     `json:"minLines,omitempty"`
	MaxLines        int     `json:"maxLines,omitempty"`
	MaxRods         int     `json:"maxRods,omitempty"`
	MinDepth        float64 `json:"minDepth,omitempty"`
	MaxDepth        float64 `json:"maxDepth,omitempty"`
	DepthStep       float64 `json:"depthStep,omitempty"`
	ConductorRadius float64 `json:"conductorRadius,omitempty"`
	RodLength       float64 `json:"rodLength,omitempty"`
	RodRadius       float64 `json:"rodRadius,omitempty"`
	ConductorCost   float64 `json:"conductorCost,omitempty"`
	RodCost         float64 `json:"rodCost,omitempty"`
	VoltageResM     float64 `json:"voltageResM,omitempty"`

	// Search knobs (0 = engine defaults; evals and starts are capped).
	Starts        int     `json:"starts,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	MaxEvals      int     `json:"maxEvals,omitempty"`
	PenaltyWeight float64 `json:"penaltyWeight,omitempty"`
}

// OptimizeLine is one NDJSON line of the /v1/optimize response: an improving
// best-so-far design per generation, then a terminal line (final: true) with
// the search stats — or, after a mid-stream failure, the typed error fields.
type OptimizeLine struct {
	// Generation is the improving round's ordinal (1-based; 0 on the
	// terminal line).
	Generation int `json:"generation,omitempty"`
	// Evaluated, CacheHits, Failed are cumulative counts at emission time.
	Evaluated int `json:"evaluated,omitempty"`
	CacheHits int `json:"cacheHits,omitempty"`
	Failed    int `json:"failed,omitempty"`
	// Best is the incumbent best design (monotonically improving under the
	// feasible-first, cheapest-first order).
	Best *earthing.OptimizedDesign `json:"best,omitempty"`
	// Final marks the terminal summary line, which carries Stats and — for a
	// search that found no feasible design or failed mid-stream — the typed
	// Error/Code pair matching the pre-stream ErrorBody envelope.
	Final bool                    `json:"final,omitempty"`
	Stats *earthing.OptimizeStats `json:"stats,omitempty"`
	Error string                  `json:"error,omitempty"`
	Code  string                  `json:"code,omitempty"`
}

// build validates the request and assembles the engine spec and options.
func (req OptimizeRequest) build(defaultWorkers int) (earthing.OptimizeSpec, earthing.OptimizeOptions, error) {
	var spec earthing.OptimizeSpec
	var opt earthing.OptimizeOptions
	if req.Grid != (GridSpec{}) {
		return spec, opt, fmt.Errorf("optimize: grid must be omitted (the endpoint synthesizes candidate layouts)")
	}
	if req.GPR != 0 {
		return spec, opt, fmt.Errorf("optimize: gpr must be omitted (each candidate's GPR is Req · faultCurrentA)")
	}
	if !finitePos(req.Width) || !finitePos(req.Height) {
		return spec, opt, fmt.Errorf("optimize: site %g × %g must be positive and finite", req.Width, req.Height)
	}
	if !finitePos(req.FaultCurrentA) {
		return spec, opt, fmt.Errorf("optimize: faultCurrentA %g must be positive and finite", req.FaultCurrentA)
	}
	model, err := req.Soil.buildSoil()
	if err != nil {
		return spec, opt, err
	}
	crit, err := req.Criteria.criteria()
	if err != nil {
		return spec, opt, err
	}
	cfg, err := req.Scenario.buildConfig(defaultWorkers)
	if err != nil {
		return spec, opt, err
	}
	for name, v := range map[string]float64{
		"minDepth": req.MinDepth, "maxDepth": req.MaxDepth, "depthStep": req.DepthStep,
		"conductorRadius": req.ConductorRadius, "rodLength": req.RodLength,
		"rodRadius": req.RodRadius, "conductorCost": req.ConductorCost,
		"rodCost": req.RodCost, "voltageResM": req.VoltageResM,
		"penaltyWeight": req.PenaltyWeight,
	} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return spec, opt, fmt.Errorf("optimize: %s %g must be non-negative and finite", name, v)
		}
	}
	if req.MinLines < 0 || req.MaxLines < 0 || req.MaxRods < 0 || req.Starts < 0 || req.MaxEvals < 0 {
		return spec, opt, fmt.Errorf("optimize: negative search bounds")
	}
	if req.Starts > maxOptimizeStarts {
		return spec, opt, fmt.Errorf("optimize: %d starts exceed the limit of %d", req.Starts, maxOptimizeStarts)
	}
	if req.MaxEvals > maxOptimizeEvals {
		return spec, opt, fmt.Errorf("optimize: %d evals exceed the limit of %d", req.MaxEvals, maxOptimizeEvals)
	}

	spec = earthing.OptimizeSpec{
		Width: req.Width, Height: req.Height,
		Model:           model,
		FaultCurrent:    req.FaultCurrentA,
		Safety:          crit,
		ConductorRadius: req.ConductorRadius,
		RodLength:       req.RodLength,
		RodRadius:       req.RodRadius,
		MinLines:        req.MinLines,
		MaxLines:        req.MaxLines,
		MaxRods:         req.MaxRods,
		MinDepth:        req.MinDepth,
		MaxDepth:        req.MaxDepth,
		DepthStep:       req.DepthStep,
		ConductorCost:   req.ConductorCost,
		RodCost:         req.RodCost,
		VoltageRes:      req.VoltageResM,
	}
	opt = earthing.OptimizeOptions{
		Config:        cfg,
		Starts:        req.Starts,
		Seed:          req.Seed,
		MaxEvals:      req.MaxEvals,
		PenaltyWeight: req.PenaltyWeight,
	}
	// The engine default budget (250 × starts) overshoots the request cap;
	// pin the capped default here so the bound above is authoritative.
	if opt.MaxEvals == 0 {
		opt.MaxEvals = 1024
	}
	return spec, opt, nil
}

// handleOptimize runs the grid-synthesis search and streams improving designs
// as NDJSON, exactly like /v1/sweep streams scenario results: pre-stream
// failures (400/422/429/503/504) use the typed error envelope with a proper
// status, mid-stream failures travel as a terminal error line.
//
// The whole search holds ONE admission slot: the engine already batches each
// candidate population through the sweep worker pool at the requested width.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	s.metrics.OptimizeRequests.Add(1)
	var req OptimizeRequest
	if herr := decode(r, &req); herr != nil {
		s.writeError(w, herr)
		return
	}
	spec, opt, err := req.build(s.cfg.Workers)
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	opt.Config.HealthCheck = s.cfg.HealthCheck
	ctx, cancel, herr := s.requestCtx(r, req.TimeoutMs)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer cancel()
	release, herr := s.acquire(ctx)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer release()

	flusher, _ := w.(http.Flusher)
	sw := &sweepWriter{w: w, f: flusher}

	start := time.Now()
	best, stats, err := earthing.OptimizeStream(ctx, spec, opt, func(p earthing.OptimizeProgress) error {
		b := p.Best
		return sw.emit(OptimizeLine{
			Generation: p.Generation,
			Evaluated:  p.Evaluated,
			CacheHits:  p.CacheHits,
			Failed:     p.Failed,
			Best:       &b,
		})
	})
	s.metrics.OptimizeCandidates.Add(int64(stats.Evaluated))
	s.metrics.OptimizeNanos.Add(int64(time.Since(start)))

	if err != nil && !errors.Is(err, earthing.ErrNoFeasibleOptimize) {
		// Hard failure: cancellation/deadline, every candidate failed, or an
		// invalid spec the engine rejected.
		var herr *httpError
		switch {
		case ctx.Err() != nil:
			herr = s.mapCtxErr(ctx.Err())
		default:
			herr = &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
		}
		if !sw.wrote {
			s.writeError(w, herr)
			return
		}
		//lint:ignore errdrop the client is the only consumer of this line; if it is gone, so is the report
		sw.emit(OptimizeLine{Final: true, Error: herr.msg, Code: errorCode(herr.status)})
		return
	}

	// Terminal summary line: the final best (feasible, or least-violating
	// under the no-feasible sentinel) plus the search counters.
	line := OptimizeLine{Final: true, Best: best, Stats: &stats}
	if err != nil {
		line.Error = err.Error()
		line.Code = "no_feasible"
	}
	//lint:ignore errdrop the client is the only consumer of this line; if it is gone, so is the report
	sw.emit(line)
}
