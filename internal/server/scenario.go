// Package server implements groundd, the concurrent grounding-analysis
// service: an HTTP/JSON front end over the earthing facade that runs many
// scenarios in parallel, caches solved systems, enforces per-request
// deadlines with cooperative cancellation, sheds load with a bounded queue,
// and exposes its counters for observation.
//
// The economics come straight from Table 6.1 of the paper: matrix generation
// plus the direct solve is ≫ 99 % of a request, and both depend only on the
// (grid, soil, discretization) triple — not on the GPR, which scales the
// solution linearly, nor on worker counts or schedules, which change wall
// time but not results. Scenarios are therefore canonicalized into a
// deterministic cache key over exactly the result-affecting inputs, and a
// size-bounded LRU of solved systems turns repeat queries (any GPR, any
// raster window, any safety criteria) into pure post-processing.
package server

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"

	"earthing"
	"earthing/internal/grid"
)

// RodSpec is one vertical ground rod of a synthesized grid.
type RodSpec struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	// Top is the burial depth of the rod top in metres.
	Top    float64 `json:"top"`
	Length float64 `json:"length"`
	Radius float64 `json:"radius"`
}

// RectSpec synthesizes a rectangular lattice grid, optionally edge-graded
// and with rods.
type RectSpec struct {
	X0     float64   `json:"x0"`
	Y0     float64   `json:"y0"`
	Width  float64   `json:"width"`
	Height float64   `json:"height"`
	NX     int       `json:"nx"`
	NY     int       `json:"ny"`
	Depth  float64   `json:"depth"`
	Radius float64   `json:"radius"`
	Beta   float64   `json:"beta,omitempty"` // edge grading ∈ [0, 1)
	Rods   []RodSpec `json:"rods,omitempty"`
}

// GridSpec selects the electrode geometry: exactly one of Builtin, Text or
// Rect must be set.
type GridSpec struct {
	// Builtin names a paper grid: "barbera" or "balaidos".
	Builtin string `json:"builtin,omitempty"`
	// Text is a grid in the text format of package grid (conductor/rod
	// lines).
	Text string `json:"text,omitempty"`
	// Rect synthesizes a rectangular lattice.
	Rect *RectSpec `json:"rect,omitempty"`
}

// SoilSpec selects the layered soil model.
type SoilSpec struct {
	// Kind is "uniform", "two-layer" or "multi".
	Kind string `json:"kind"`
	// Gamma1/Gamma2/H1 parameterize uniform and two-layer models
	// (conductivities in (Ω·m)⁻¹, thickness in m).
	Gamma1 float64 `json:"gamma1,omitempty"`
	Gamma2 float64 `json:"gamma2,omitempty"`
	H1     float64 `json:"h1,omitempty"`
	// Gammas/Thicknesses parameterize the N-layer model
	// (len(Thicknesses) = len(Gammas) − 1).
	Gammas      []float64 `json:"gammas,omitempty"`
	Thicknesses []float64 `json:"thicknesses,omitempty"`
}

// Scenario is the canonical unit of work: one grid in one soil under one
// discretization. GPR, Workers and Schedule deliberately do NOT enter the
// cache key — GPR scales results linearly and is applied at response time,
// while Workers/Schedule only change how fast the deterministic answer is
// produced.
type Scenario struct {
	Grid GridSpec `json:"grid"`
	Soil SoilSpec `json:"soil"`
	// GPR is the ground potential rise in volts (default 1).
	GPR float64 `json:"gpr,omitempty"`
	// MaxElemLen subdivides conductors (metres; 0 = one element per
	// conductor, the paper's discretization).
	MaxElemLen float64 `json:"maxElemLen,omitempty"`
	// RodElements forces vertical conductors to ≥ this many elements.
	RodElements int `json:"rodElements,omitempty"`
	// SeriesTol is the image-series truncation tolerance (0 = default 1e-7).
	SeriesTol float64 `json:"seriesTol,omitempty"`
	// Workers is the parallel width for this request (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Schedule is the loop schedule label, e.g. "dynamic,1" (default).
	Schedule string `json:"schedule,omitempty"`
}

// built is a validated, constructed scenario ready to solve. soil keeps the
// validated spec so the durable store can persist a rehydratable description
// of the scenario alongside the solution vector.
type built struct {
	grid  *earthing.Grid
	model earthing.SoilModel
	soil  SoilSpec
	cfg   earthing.Config
	gpr   float64
	key   string
}

// finitePos reports whether v is a positive finite float.
func finitePos(v float64) bool {
	return v > 0 && !math.IsInf(v, 1) && !math.IsNaN(v)
}

// buildGrid constructs and validates the electrode geometry.
func (g GridSpec) buildGrid() (*earthing.Grid, error) {
	set := 0
	for _, on := range []bool{g.Builtin != "", g.Text != "", g.Rect != nil} {
		if on {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("grid: exactly one of builtin, text or rect must be set")
	}
	switch {
	case g.Builtin == "barbera":
		return earthing.Barbera(), nil
	case g.Builtin == "balaidos":
		return earthing.Balaidos(), nil
	case g.Builtin != "":
		return nil, fmt.Errorf("grid: unknown builtin %q (want barbera or balaidos)", g.Builtin)
	case g.Text != "":
		gr, err := earthing.ReadGrid(strings.NewReader(g.Text))
		if err != nil {
			return nil, err
		}
		return gr, nil
	default:
		r := g.Rect
		if !finitePos(r.Width) || !finitePos(r.Height) {
			return nil, fmt.Errorf("grid: rect size %g × %g must be positive", r.Width, r.Height)
		}
		if r.NX < 2 || r.NY < 2 {
			return nil, fmt.Errorf("grid: rect needs ≥ 2 lattice lines per direction, got %d × %d", r.NX, r.NY)
		}
		if r.NX > 512 || r.NY > 512 {
			return nil, fmt.Errorf("grid: rect lattice %d × %d too dense (max 512)", r.NX, r.NY)
		}
		if !finitePos(r.Radius) || r.Depth < 0 || math.IsNaN(r.Depth) || math.IsInf(r.Depth, 0) {
			return nil, fmt.Errorf("grid: rect radius %g must be positive and depth %g non-negative", r.Radius, r.Depth)
		}
		if r.Beta < 0 || r.Beta >= 1 || math.IsNaN(r.Beta) {
			return nil, fmt.Errorf("grid: grading beta %g must be in [0, 1)", r.Beta)
		}
		gr := earthing.RectGridGraded(r.X0, r.Y0, r.Width, r.Height, r.NX, r.NY, r.Depth, r.Radius, r.Beta)
		for i, rod := range r.Rods {
			if !finitePos(rod.Length) || !finitePos(rod.Radius) || rod.Top < 0 {
				return nil, fmt.Errorf("grid: rod %d: length %g and radius %g must be positive, top %g non-negative",
					i, rod.Length, rod.Radius, rod.Top)
			}
			gr.AddRod(rod.X, rod.Y, rod.Top, rod.Length, rod.Radius)
		}
		if err := gr.Validate(); err != nil {
			return nil, err
		}
		return gr, nil
	}
}

// Build constructs and validates the soil model; exported so CLI sweep
// inputs can reuse the same JSON spec and validation as the server.
func (s SoilSpec) Build() (earthing.SoilModel, error) { return s.buildSoil() }

// buildSoil constructs and validates the soil model without tripping the
// panicking constructors on hostile input.
func (s SoilSpec) buildSoil() (earthing.SoilModel, error) {
	switch s.Kind {
	case "uniform":
		if !finitePos(s.Gamma1) {
			return nil, fmt.Errorf("soil: conductivity gamma1 %g must be positive and finite", s.Gamma1)
		}
		return earthing.UniformSoil(s.Gamma1), nil
	case "two-layer":
		if !finitePos(s.Gamma1) || !finitePos(s.Gamma2) {
			return nil, fmt.Errorf("soil: conductivities γ1=%g, γ2=%g must be positive and finite", s.Gamma1, s.Gamma2)
		}
		if !finitePos(s.H1) {
			return nil, fmt.Errorf("soil: layer thickness h1 %g must be positive and finite", s.H1)
		}
		return earthing.TwoLayerSoil(s.Gamma1, s.Gamma2, s.H1), nil
	case "multi":
		for _, g := range s.Gammas {
			if !finitePos(g) {
				return nil, fmt.Errorf("soil: conductivity %g must be positive and finite", g)
			}
		}
		for _, h := range s.Thicknesses {
			if !finitePos(h) {
				return nil, fmt.Errorf("soil: thickness %g must be positive and finite", h)
			}
		}
		return earthing.MultiLayerSoil(s.Gammas, s.Thicknesses)
	default:
		return nil, fmt.Errorf("soil: unknown kind %q (want uniform, two-layer or multi)", s.Kind)
	}
}

// canonicalSoil renders the result-affecting soil parameters at full float64
// precision.
func (s SoilSpec) canonicalSoil() string {
	switch s.Kind {
	case "uniform":
		return fmt.Sprintf("uniform;%.17g", s.Gamma1)
	case "two-layer":
		return fmt.Sprintf("two-layer;%.17g;%.17g;%.17g", s.Gamma1, s.Gamma2, s.H1)
	default:
		var b strings.Builder
		b.WriteString("multi")
		for _, g := range s.Gammas {
			fmt.Fprintf(&b, ";%.17g", g)
		}
		b.WriteString("|")
		for _, h := range s.Thicknesses {
			fmt.Fprintf(&b, ";%.17g", h)
		}
		return b.String()
	}
}

// buildConfig validates the envelope's discretization and execution knobs and
// assembles the engine configuration shared by every /v1/* endpoint (unit
// GPR, deterministic Cholesky). Factored out of build so grid-free requests
// (/v1/optimize synthesizes its own grids) reuse exactly the same validation.
func (sc Scenario) buildConfig(defaultWorkers int) (earthing.Config, error) {
	var cfg earthing.Config
	if sc.MaxElemLen < 0 || math.IsNaN(sc.MaxElemLen) {
		return cfg, fmt.Errorf("maxElemLen %g must be non-negative", sc.MaxElemLen)
	}
	if sc.RodElements < 0 {
		return cfg, fmt.Errorf("rodElements %d must be non-negative", sc.RodElements)
	}
	seriesTol := sc.SeriesTol
	if seriesTol == 0 {
		seriesTol = 1e-7 // the bem.Options default; pinned here so it keys identically
	}
	if seriesTol < 0 || seriesTol >= 1 || math.IsNaN(seriesTol) {
		return cfg, fmt.Errorf("seriesTol %g must be in (0, 1)", sc.SeriesTol)
	}
	if sc.Workers < 0 {
		return cfg, fmt.Errorf("workers %d must be non-negative", sc.Workers)
	}
	workers := sc.Workers
	if workers == 0 {
		workers = defaultWorkers
	}
	schedule := earthing.Schedule{}
	if sc.Schedule != "" {
		var err error
		schedule, err = earthing.ParseSchedule(sc.Schedule)
		if err != nil {
			return cfg, err
		}
	}
	return earthing.Config{
		// Solved at unit GPR; responses scale by the request GPR, so one
		// cache entry serves every fault level.
		GPR:         1,
		MaxElemLen:  sc.MaxElemLen,
		RodElements: sc.RodElements,
		// Cholesky is deterministic across worker counts (each entry of L is
		// reduced in a fixed order; only independent row updates run in
		// parallel), which PCG's worker-partitioned dot products are not —
		// and the factorization is exactly what the LRU amortizes.
		Solver: earthing.Cholesky,
		BEM: earthing.BEMOptions{
			Workers:   workers,
			Schedule:  schedule,
			SeriesTol: seriesTol,
		},
	}, nil
}

// build validates the scenario, constructs the grid and soil model, and
// derives the canonical cache key.
func (sc Scenario) build(defaultWorkers int) (*built, error) {
	g, err := sc.Grid.buildGrid()
	if err != nil {
		return nil, err
	}
	model, err := sc.Soil.buildSoil()
	if err != nil {
		return nil, err
	}
	gpr := sc.GPR
	if gpr == 0 {
		gpr = 1
	}
	if !finitePos(gpr) {
		return nil, fmt.Errorf("gpr %g must be positive and finite", sc.GPR)
	}
	cfg, err := sc.buildConfig(defaultWorkers)
	if err != nil {
		return nil, err
	}
	return &built{
		grid:  g,
		model: model,
		soil:  sc.Soil,
		cfg:   cfg,
		gpr:   gpr,
		key:   scenarioKey(g, sc.Soil, sc.MaxElemLen, sc.RodElements, cfg.BEM.SeriesTol),
	}, nil
}

// scenarioKey hashes the result-affecting inputs into a deterministic key.
// The grid is canonicalized through its text serialization (so a rect spec
// and the equivalent hand-written conductor list key identically), the soil
// through full-precision parameter rendering, and the discretization knobs
// are appended verbatim. Workers, schedules and GPR are excluded: they do
// not change the solution.
func scenarioKey(g *earthing.Grid, soil SoilSpec, maxElemLen float64, rodElements int, seriesTol float64) string {
	h := sha256.New()
	if err := grid.Write(h, g); err != nil {
		// The hash writer never fails; keep the compiler honest.
		panic(err)
	}
	//lint:ignore errdrop writing to a hash.Hash never fails
	fmt.Fprintf(h, "\n%s\nelemlen=%.17g;rodelems=%d;seriestol=%.17g;solver=cholesky;kind=linear\n",
		soil.canonicalSoil(), maxElemLen, rodElements, seriesTol)
	return hex.EncodeToString(h.Sum(nil)[:16])
}
