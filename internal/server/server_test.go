package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// fastScenario solves in ~10 ms: a coarse lattice in uniform soil with a
// loose series tolerance. width parameterizes the cache key.
func fastScenario(width float64, gpr float64) string {
	return fmt.Sprintf(`{
		"grid": {"rect": {"width": %g, "height": 20, "nx": 4, "ny": 4, "depth": 0.8, "radius": 0.006}},
		"soil": {"kind": "uniform", "gamma1": 0.0125},
		"seriesTol": 1e-3,
		"gpr": %g
	}`, width, gpr)
}

// slowScenario takes ~1 s to assemble (≫ under -race): a denser lattice in
// two-layer soil, whose kernel series dominate matrix generation.
func slowScenario(width float64) string {
	return fmt.Sprintf(`{
		"grid": {"rect": {"width": %g, "height": 60, "nx": 12, "ny": 12, "depth": 0.8, "radius": 0.006}},
		"soil": {"kind": "two-layer", "gamma1": 0.005, "gamma2": 0.016, "h1": 1.0},
		"seriesTol": 1e-5
	}`, width)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends body to path and returns the response status, headers and body.
func post(t *testing.T, ctx context.Context, base, path, body string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

func getStats(t *testing.T, base string) Snapshot {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var s Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSolveCacheHitMiss(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 2})

	code, hdr, first := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusOK {
		t.Fatalf("first solve: status %d: %s", code, first)
	}
	if got := hdr.Get("X-Groundd-Cache"); got != "miss" {
		t.Errorf("first solve cache disposition = %q, want miss", got)
	}
	var resp SolveResponse
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ReqOhms <= 0 || resp.GPR != 10_000 || resp.Elements == 0 {
		t.Errorf("implausible solve response: %+v", resp)
	}
	// Current must respect Ohm's law at the requested GPR.
	if want := resp.GPR / resp.ReqOhms; resp.CurrentAmps != want {
		t.Errorf("CurrentAmps = %g, want GPR/Req = %g", resp.CurrentAmps, want)
	}

	code, hdr, second := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusOK {
		t.Fatalf("second solve: status %d: %s", code, second)
	}
	if got := hdr.Get("X-Groundd-Cache"); got != "hit" {
		t.Errorf("second solve cache disposition = %q, want hit", got)
	}
	if !bytes.Equal(first, second) {
		t.Errorf("cached response differs from fresh:\n%s\n%s", first, second)
	}
	if n := s.Counters().Assemblies.Load(); n != 1 {
		t.Errorf("assemblies = %d after one unique scenario, want 1", n)
	}
	if st := getStats(t, ts.URL); st.CacheHits != 1 || st.CacheMisses != 1 || st.CacheEntries != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss / 1 entry", st)
	}
}

// TestGPRLinearity: the cached unit solve serves every GPR; doubling the GPR
// exactly doubles every raster sample (×2 is exact in binary floating point).
func TestGPRLinearity(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	raster := func(gpr float64) RasterResponse {
		body := fmt.Sprintf(`{
			"grid": {"rect": {"width": 20, "height": 20, "nx": 4, "ny": 4, "depth": 0.8, "radius": 0.006}},
			"soil": {"kind": "uniform", "gamma1": 0.0125},
			"seriesTol": 1e-3, "gpr": %g, "nx": 8, "ny": 8
		}`, gpr)
		code, _, b := post(t, context.Background(), ts.URL, "/v1/raster", body)
		if code != http.StatusOK {
			t.Fatalf("raster gpr=%g: status %d: %s", gpr, code, b)
		}
		var r RasterResponse
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1, r2 := raster(1), raster(2)
	if len(r1.V) != 64 || len(r2.V) != len(r1.V) {
		t.Fatalf("raster sizes %d, %d; want 64", len(r1.V), len(r2.V))
	}
	for i := range r1.V {
		if r2.V[i] != 2*r1.V[i] {
			t.Fatalf("V[%d]: gpr=2 sample %g != 2 × gpr=1 sample %g", i, r2.V[i], r1.V[i])
		}
		if r1.V[i] <= 0 || r1.V[i] > 1 {
			t.Fatalf("V[%d] = %g outside (0, GPR]", i, r1.V[i])
		}
	}
}

// TestDeterminismAcrossWorkers pins the acceptance contract: the same
// scenario solved fresh at different parallel widths and schedules, or
// served from cache, yields byte-identical response bodies.
func TestDeterminismAcrossWorkers(t *testing.T) {
	variants := []string{
		`"workers": 1`,
		`"workers": 2`,
		`"workers": 4, "schedule": "static"`,
		`"workers": 3, "schedule": "guided,2"`,
	}
	scenario := func(extra string) string {
		return fmt.Sprintf(`{
			"grid": {"rect": {"width": 30, "height": 30, "nx": 5, "ny": 5, "depth": 0.8, "radius": 0.006}},
			"soil": {"kind": "two-layer", "gamma1": 0.005, "gamma2": 0.016, "h1": 1.0},
			"seriesTol": 1e-4, "gpr": 10000, %s
		}`, extra)
	}

	var bodies [][]byte
	for _, v := range variants {
		// A fresh server per variant: every solve is a genuine cold
		// assembly + factorization at that worker count.
		_, ts := newTestServer(t, Config{MaxConcurrent: 4})
		code, hdr, b := post(t, context.Background(), ts.URL, "/v1/solve", scenario(v))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", v, code, b)
		}
		if hdr.Get("X-Groundd-Cache") != "miss" {
			t.Fatalf("%s: expected a cold solve", v)
		}
		bodies = append(bodies, b)

		// And the warm replay on the same server must be byte-identical too.
		_, hdr, cached := post(t, context.Background(), ts.URL, "/v1/solve", scenario(v))
		if hdr.Get("X-Groundd-Cache") != "hit" {
			t.Fatalf("%s: replay did not hit the cache", v)
		}
		if !bytes.Equal(b, cached) {
			t.Errorf("%s: cached body differs from fresh", v)
		}
	}
	for i := 1; i < len(bodies); i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("variant %q response differs from %q:\n%s\n%s",
				variants[i], variants[0], bodies[i], bodies[0])
		}
	}
}

// TestConcurrentMixedLoadWithCancellation is the acceptance scenario: ≥ 16
// concurrent requests with mixed cache hits and misses, half cancelled
// mid-flight. Cancelled requests must return promptly without leaking
// goroutines, cache hits must perform no assembly, and the server must drain
// back to idle.
func TestConcurrentMixedLoadWithCancellation(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 4, QueueDepth: 32, CacheEntries: 16})

	// Pre-warm the hit scenario: exactly one assembly.
	if code, _, b := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000)); code != http.StatusOK {
		t.Fatalf("pre-warm: status %d: %s", code, b)
	}
	if n := s.Counters().Assemblies.Load(); n != 1 {
		t.Fatalf("pre-warm assemblies = %d, want 1", n)
	}
	baselineGoroutines := runtime.NumGoroutine()

	const half = 8 // 8 cache hits + 8 cancelled misses = 16 concurrent
	type outcome struct {
		code int
		hdr  http.Header
		body []byte
	}
	hits := make([]outcome, half)
	cancelled := make([]outcome, half)
	var wg sync.WaitGroup

	// Half the load: distinct heavy scenarios, each cancelled mid-flight
	// (the solves take ~1 s; the cancel fires at 100 ms, landing either
	// mid-assembly or in the admission queue).
	for i := 0; i < half; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(100 * time.Millisecond)
				cancel()
			}()
			defer cancel()
			start := time.Now()
			code, hdr, body := postNoFatal(t, ctx, ts.URL, "/v1/solve", slowScenario(60+float64(i)))
			if d := time.Since(start); d > 10*time.Second {
				t.Errorf("cancelled request %d took %v to return", i, d)
			}
			cancelled[i] = outcome{code, hdr, body}
		}(i)
	}
	// The other half: repeats of the pre-warmed scenario.
	for i := 0; i < half; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, hdr, body := postNoFatal(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000))
			hits[i] = outcome{code, hdr, body}
		}(i)
	}
	wg.Wait()

	for i, o := range hits {
		if o.code != http.StatusOK {
			t.Errorf("hit %d: status %d: %s", i, o.code, o.body)
			continue
		}
		if got := o.hdr.Get("X-Groundd-Cache"); got != "hit" {
			t.Errorf("hit %d: cache disposition %q, want hit", i, got)
		}
		if !bytes.Equal(o.body, hits[0].body) {
			t.Errorf("hit %d: body differs from hit 0", i)
		}
	}
	for i, o := range cancelled {
		// Client-side cancellation surfaces as a transport error (code 0):
		// the HTTP client abandons the response. The server-side accounting
		// below confirms the request was seen and aborted.
		if o.code != 0 && o.code != StatusClientClosedRequest {
			t.Errorf("cancelled %d: status %d, want transport abort or %d: %s",
				i, o.code, StatusClientClosedRequest, o.body)
		}
	}

	// (b) No cache-hit performed an assembly, and none of the cancelled
	// solves completed one: the counter still reads the pre-warm value.
	if n := s.Counters().Assemblies.Load(); n != 1 {
		t.Errorf("assemblies = %d after mixed load, want 1 (pre-warm only)", n)
	}
	if h := s.Counters().CacheHits.Load(); h < half {
		t.Errorf("cache hits = %d, want ≥ %d", h, half)
	}

	// (a) Cancelled requests released their slots and goroutines: the server
	// drains back to idle.
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := getStats(t, ts.URL)
		if st.BusyWorkers == 0 && st.QueueDepth == 0 {
			if g := runtime.NumGoroutine(); g <= baselineGoroutines+10 {
				break
			}
		}
		if time.Now().After(deadline) {
			st := getStats(t, ts.URL)
			t.Fatalf("server did not drain: busy=%d queued=%d goroutines=%d (baseline %d)",
				st.BusyWorkers, st.QueueDepth, runtime.NumGoroutine(), baselineGoroutines)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// (c) Responses stayed deterministic throughout: a post-load replay is
	// byte-identical to the concurrent hits.
	_, _, replay := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000))
	if len(hits[0].body) > 0 && !bytes.Equal(replay, hits[0].body) {
		t.Errorf("post-load replay differs from concurrent hit")
	}
}

// postNoFatal is post for concurrent goroutines: transport errors (e.g.
// context cancellation aborting the request) return code 0 instead of
// failing the test.
func postNoFatal(t *testing.T, ctx context.Context, base, path, body string) (int, http.Header, []byte) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, strings.NewReader(body))
	if err != nil {
		t.Error(err)
		return 0, nil, nil
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, b
}

// TestQueueFull429 drives the admission queue to capacity and checks the
// overflow request is shed immediately with 429.
func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	// Occupy the single slot with a heavy solve.
	wg.Add(1)
	go func() {
		defer wg.Done()
		postNoFatal(t, ctx, ts.URL, "/v1/solve", slowScenario(100))
	}()
	waitFor(t, func() bool { return s.Counters().BusyWorkers.Load() == 1 })

	// Fill the queue's single place.
	wg.Add(1)
	go func() {
		defer wg.Done()
		postNoFatal(t, ctx, ts.URL, "/v1/solve", slowScenario(101))
	}()
	waitFor(t, func() bool { return s.Counters().QueueDepth.Load() == 1 })

	// The next distinct scenario must be rejected, not queued.
	code, _, body := post(t, context.Background(), ts.URL, "/v1/solve", slowScenario(102))
	if code != http.StatusTooManyRequests {
		t.Errorf("overflow request: status %d, want 429: %s", code, body)
	}
	if n := s.Counters().RejectedQueueFull.Load(); n != 1 {
		t.Errorf("rejectedQueueFull = %d, want 1", n)
	}

	cancel()
	wg.Wait()
}

// TestDeadline504: a request deadline shorter than the solve returns 504 and
// bumps the deadline counter.
func TestDeadline504(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1})
	body := strings.Replace(slowScenario(110), `"seriesTol"`, `"timeoutMs": 50, "seriesTol"`, 1)
	code, _, resp := post(t, context.Background(), ts.URL, "/v1/solve", body)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, resp)
	}
	if n := s.Counters().DeadlineExceeded.Load(); n != 1 {
		t.Errorf("deadlineExceeded = %d, want 1", n)
	}
	waitFor(t, func() bool { return s.Counters().BusyWorkers.Load() == 0 })
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 15s")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSafetyEndpoint checks the IEEE Std 80 verdict path end to end.
func TestSafetyEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	body := `{
		"grid": {"rect": {"width": 20, "height": 20, "nx": 4, "ny": 4, "depth": 0.8, "radius": 0.006}},
		"soil": {"kind": "uniform", "gamma1": 0.0125},
		"seriesTol": 1e-3, "gpr": 5000,
		"criteria": {"faultDurationS": 0.5, "soilRho": 80, "surfaceRho": 3000, "surfaceThicknessM": 0.1}
	}`
	code, _, b := post(t, context.Background(), ts.URL, "/v1/safety", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	var resp SafetyResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.GPR != 5000 || resp.StepLimitV <= 0 || resp.TouchLimitV <= 0 {
		t.Errorf("implausible safety response: %+v", resp)
	}
	if resp.StepV <= 0 || resp.TouchV <= 0 || resp.TouchV > resp.GPR {
		t.Errorf("implausible voltages: %+v", resp)
	}
	if want := resp.StepOK && resp.TouchOK && resp.MeshOK; resp.Safe != want {
		t.Errorf("Safe = %v inconsistent with per-criterion flags %+v", resp.Safe, resp)
	}
}

// TestStepRasterEndpoint checks the gradient field path.
func TestStepRasterEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 2})
	body := `{
		"grid": {"rect": {"width": 20, "height": 20, "nx": 4, "ny": 4, "depth": 0.8, "radius": 0.006}},
		"soil": {"kind": "uniform", "gamma1": 0.0125},
		"seriesTol": 1e-3, "gpr": 1000, "kind": "step", "nx": 8, "ny": 8
	}`
	code, _, b := post(t, context.Background(), ts.URL, "/v1/raster", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, b)
	}
	var resp RasterResponse
	if err := json.Unmarshal(b, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Kind != "step" || len(resp.V) != 64 {
		t.Fatalf("raster %q with %d samples, want step/64", resp.Kind, len(resp.V))
	}
	for i, v := range resp.V {
		if v < 0 {
			t.Fatalf("V[%d] = %g: step-voltage magnitude must be non-negative", i, v)
		}
	}
}

// TestBadRequests: hostile inputs must come back 400, never panic the
// handler (the soil constructors panic on non-positive parameters when not
// validated first).
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrent: 1})
	cases := []struct {
		name, path, body string
	}{
		{"malformed json", "/v1/solve", `{"grid":`},
		{"unknown field", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 1}, "bogus": 1}`},
		{"no grid selected", "/v1/solve", `{"soil": {"kind": "uniform", "gamma1": 1}}`},
		{"two grids selected", "/v1/solve", `{"grid": {"builtin": "barbera", "text": "x"}, "soil": {"kind": "uniform", "gamma1": 1}}`},
		{"unknown builtin", "/v1/solve", `{"grid": {"builtin": "fenwick"}, "soil": {"kind": "uniform", "gamma1": 1}}`},
		{"bad grid text", "/v1/solve", `{"grid": {"text": "conductor 1 2"}, "soil": {"kind": "uniform", "gamma1": 1}}`},
		{"unknown soil kind", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "volcanic"}}`},
		{"negative gamma", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": -1}}`},
		{"zero gamma", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 0}}`},
		{"negative layer depth", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "two-layer", "gamma1": 1, "gamma2": 2, "h1": -3}}`},
		{"bad multi soil", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "multi", "gammas": [1, -2], "thicknesses": [1]}}`},
		{"negative gpr", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 1}, "gpr": -5}`},
		{"negative workers", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 1}, "workers": -2}`},
		{"bad schedule", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 1}, "schedule": "fifo"}`},
		{"bad chunk", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 1}, "schedule": "dynamic,0"}`},
		{"negative timeout", "/v1/solve", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 1}, "timeoutMs": -1}`},
		{"degenerate rect", "/v1/solve", `{"grid": {"rect": {"width": -5, "height": 10, "nx": 3, "ny": 3, "radius": 0.01}}, "soil": {"kind": "uniform", "gamma1": 1}}`},
		{"degenerate rod", "/v1/solve", `{"grid": {"rect": {"width": 5, "height": 5, "nx": 2, "ny": 2, "radius": 0.01, "rods": [{"x": 0, "y": 0, "length": -2, "radius": 0.01}]}}, "soil": {"kind": "uniform", "gamma1": 1}}`},
		{"unknown raster kind", "/v1/raster", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 1}, "kind": "aura"}`},
		{"oversize raster", "/v1/raster", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 1}, "nx": 4096}`},
		{"no fault duration", "/v1/safety", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 1}, "criteria": {"soilRho": 100}}`},
		{"bad body weight", "/v1/safety", `{"grid": {"builtin": "barbera"}, "soil": {"kind": "uniform", "gamma1": 1}, "criteria": {"faultDurationS": 0.5, "soilRho": 100, "weight": "90kg"}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, _, body := post(t, context.Background(), ts.URL, tc.path, tc.body)
			if code != http.StatusBadRequest {
				t.Errorf("status %d, want 400: %s", code, body)
			}
		})
	}
}

// TestHealthz and the method guard on the JSON endpoints.
func TestRoutes(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/solve: %d, want 405", resp.StatusCode)
	}
}

// TestLRUEviction: the cache is size-bounded; the oldest system leaves.
func TestLRUEviction(t *testing.T) {
	c := newLRUCache(2, 0)
	c.put("a", nil)
	c.put("b", nil)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a evicted prematurely")
	}
	c.put("c", nil) // evicts b (a was just used)
	if _, ok := c.get("b"); ok {
		t.Error("b survived past capacity")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted out of LRU order")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}
