package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"earthing"
	"earthing/internal/core"
	"earthing/internal/faultinject"
	"earthing/internal/sched"
	"earthing/internal/store"
)

// StatusClientClosedRequest is the (de facto standard) status for requests
// abandoned by the client before the solve finished.
const StatusClientClosedRequest = 499

// Config configures a Server. The zero value serves with GOMAXPROCS worker
// slots, a queue of 4× that, a 30 s default / 120 s maximum deadline and a
// 64-entry system cache.
type Config struct {
	// MaxConcurrent bounds the number of scenarios solving or
	// post-processing at once (default GOMAXPROCS). Each admitted request
	// runs its parallel loops at the width the scenario asks for, so this
	// is a request-level bound, not a core-level one.
	MaxConcurrent int
	// QueueDepth bounds how many admitted requests may wait for a slot
	// (default 4 × MaxConcurrent). Beyond it the server sheds load with 429
	// instead of building an unbounded backlog.
	QueueDepth int
	// DefaultTimeout applies when a request names none (default 30 s);
	// MaxTimeout clamps what a request may ask for (default 120 s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// CacheEntries bounds the LRU of solved systems (default 64; negative
	// disables caching).
	CacheEntries int
	// CacheBytes bounds the LRU by the resident-byte estimate of its results
	// (Result.Footprint): a 64-entry cache of survey grids is a few MiB while
	// 64 interconnected systems can be GiBs, so bytes — not entries — is the
	// bound that protects the process. Default 256 MiB; negative disables the
	// byte bound (entry bound still applies).
	CacheBytes int64
	// Workers is the parallel width for scenarios that do not set one
	// (default GOMAXPROCS).
	Workers int
	// HealthCheck enables the engine's numerical health checks on every
	// solve (earthing.Config.HealthCheck): poisoned or ill-conditioned
	// systems are rejected with 422 instead of served.
	HealthCheck bool
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// Store, when non-nil, is the durable scenario store: solved unit-GPR
	// densities are appended write-behind and replayed on the next start, so
	// a redeploy warm-starts instead of re-solving its whole working set.
	// The server owns the store from here on and closes it in Close.
	Store *store.Store
	// Fleet, when non-nil, enables cluster mode: scenario keys route to ring
	// owners and local misses ask the owner before solving (see FleetConfig).
	Fleet *FleetConfig
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.MaxConcurrent
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 120 * time.Second
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	return c
}

// Server is the grounding-analysis HTTP service. Create with New; it
// implements http.Handler.
type Server struct {
	cfg     Config
	cache   *lruCache
	metrics Metrics
	// slots is the admission semaphore: holding a token is the licence to
	// run a solve or a post-processing raster.
	slots chan struct{}
	mux   *http.ServeMux
	// draining flips when shutdown starts: /readyz turns 503 and new work
	// is refused while in-flight requests finish (see RunUntilSignal).
	draining atomic.Bool

	// Fleet-mode state (see fleet.go): the durable store, the ring/peer
	// machinery, and the lifecycle plumbing of their background goroutines.
	store *store.Store
	fleet *fleet
	// replayReady closes when snapshot replay finishes (immediately when
	// there is no store); /readyz and the internal peer API gate on it.
	replayReady chan struct{}
	stop        chan struct{}
	bg          sync.WaitGroup
	closeOnce   sync.Once
}

// New constructs a Server. It panics on an invalid fleet membership — fleet
// deployments (cmd/groundd) use NewFleet, which reports the error instead.
func New(cfg Config) *Server {
	s, err := NewFleet(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewFleet constructs a Server, validating the fleet membership when cluster
// mode is configured.
func NewFleet(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	cacheBytes := cfg.CacheBytes
	if cacheBytes < 0 {
		cacheBytes = 0
	}
	s := &Server{
		cfg:         cfg,
		cache:       newLRUCache(cfg.CacheEntries, cacheBytes),
		slots:       make(chan struct{}, cfg.MaxConcurrent),
		mux:         http.NewServeMux(),
		store:       cfg.Store,
		replayReady: make(chan struct{}),
		stop:        make(chan struct{}),
	}
	if cfg.Fleet != nil {
		f, err := newFleet(*cfg.Fleet)
		if err != nil {
			return nil, err
		}
		s.fleet = f
	}
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/raster", s.handleRaster)
	s.mux.HandleFunc("POST /v1/safety", s.handleSafety)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		//lint:ignore errdrop a failed health-probe write has no one left to report to
		fmt.Fprintln(w, "ok")
	})
	// Liveness (/healthz) and readiness (/readyz) deliberately differ: a
	// draining server is still alive (don't restart it) but must stop
	// receiving traffic (load balancers watch readiness).
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			//lint:ignore errdrop a failed readiness-probe write has no one left to report to
			fmt.Fprintln(w, "draining")
			return
		}
		// A node still replaying its snapshot must not receive traffic: its
		// warm-start working set is incomplete, so it would cold-solve
		// scenarios it is about to learn it already knows.
		if !s.replayDone() {
			w.WriteHeader(http.StatusServiceUnavailable)
			//lint:ignore errdrop a failed readiness-probe write has no one left to report to
			fmt.Fprintln(w, "replaying")
			return
		}
		//lint:ignore errdrop a failed readiness-probe write has no one left to report to
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /internal/v1/entry", s.handleInternalEntry)
	s.mux.HandleFunc("GET /internal/v1/ping", s.handleInternalPing)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	if s.store != nil {
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			defer close(s.replayReady)
			// Replay errors only surface directory-level I/O failures; data
			// damage is absorbed into the skipped-records counter, which
			// /v1/stats exposes.
			//lint:ignore errdrop replay failure leaves an empty (valid) index; the stats counters carry the evidence
			s.store.Replay()
		}()
	} else {
		close(s.replayReady)
	}
	if s.fleet != nil {
		s.bg.Add(1)
		go func() {
			defer s.bg.Done()
			s.probeLoop()
		}()
	}
	return s, nil
}

// ServeHTTP implements http.Handler. It is the last line of panic defence:
// a panic that escapes a handler is recovered here and answered with a 500
// diagnostic instead of tearing down the connection (and, under some serving
// setups, the process). Parallel-loop worker panics normally never reach
// this — sched contains them and they surface as *sched.PanicError values
// through the error mapping in solved.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if v := recover(); v != nil {
			s.metrics.HandlerPanics.Add(1)
			// Best effort: if the handler already wrote a status line this
			// turns into a trailing body fragment, which is all HTTP allows.
			s.writeError(w, &httpError{
				status: http.StatusInternalServerError,
				msg:    fmt.Sprintf("internal panic: %v", v),
			})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// Counters exposes the metrics for tests and for expvar publication.
func (s *Server) Counters() *Metrics { return &s.metrics }

// SetDraining flips the readiness state: a draining server answers 503 on
// /readyz and refuses new solves while in-flight work completes.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is refusing new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// httpError carries a status code with the message reported to the client.
type httpError struct {
	status int
	msg    string
	// code overrides the machine-readable error code; when empty writeError
	// derives it from the status.
	code string
	// retryAfter, when > 0, emits a Retry-After header (seconds) so
	// load-shedding responses (429/503) tell well-behaved clients when to
	// come back.
	retryAfter int
}

func (e *httpError) Error() string { return e.msg }

func badRequest(err error) *httpError {
	return &httpError{status: http.StatusBadRequest, msg: err.Error()}
}

// ErrorBody is the typed error envelope every /v1/* handler emits: a stable
// machine-readable code, the human diagnostic, and (for load-shedding
// responses) the Retry-After hint mirrored into the body.
type ErrorBody struct {
	Code        string `json:"code"`
	Message     string `json:"message"`
	RetryAfterS int    `json:"retry_after,omitempty"`
}

// errorCode maps a status to its stable error code. Clients switch on these
// rather than parsing messages or memorizing status-code nuances.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusUnprocessableEntity:
		return "unprocessable"
	case http.StatusTooManyRequests:
		return "queue_full"
	case http.StatusServiceUnavailable:
		return "draining"
	case http.StatusGatewayTimeout:
		return "deadline_exceeded"
	case StatusClientClosedRequest:
		return "client_cancelled"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return "error"
	}
}

// errorBody renders the typed envelope for an httpError.
func (e *httpError) errorBody() ErrorBody {
	code := e.code
	if code == "" {
		code = errorCode(e.status)
	}
	return ErrorBody{Code: code, Message: e.msg, RetryAfterS: e.retryAfter}
}

// writeError emits the typed JSON error envelope.
func (s *Server) writeError(w http.ResponseWriter, he *httpError) {
	w.Header().Set("Content-Type", "application/json")
	if he.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(he.retryAfter))
	}
	w.WriteHeader(he.status)
	//lint:ignore errdrop encode-to-client failure means the client is gone; nothing to do
	json.NewEncoder(w).Encode(he.errorBody())
}

// Cache tiers of the degradation ladder, most to least preferred. tierSolve
// is the floor every other tier degrades to.
const (
	tierLRU   = "lru"   // resident solved system
	tierStore = "store" // rehydrated from the durable snapshot
	tierPeer  = "peer"  // fetched from the ring owner, checksum-verified
	tierSolve = "solve" // full pipeline run
)

// writeJSON emits a 200 with v as the body and the cache disposition in
// headers: X-Groundd-Cache is hit/miss as always, X-Groundd-Cache-Tier names
// the ladder rung that served it. The disposition deliberately travels
// out-of-band: response BODIES are bit-identical between cache hits and fresh
// solves — on any tier, on any node — which is the determinism contract the
// test suite pins down.
func (s *Server) writeJSON(w http.ResponseWriter, tier string, v any) {
	w.Header().Set("Content-Type", "application/json")
	if tier != tierSolve {
		w.Header().Set("X-Groundd-Cache", "hit")
	} else {
		w.Header().Set("X-Groundd-Cache", "miss")
	}
	w.Header().Set("X-Groundd-Cache-Tier", tier)
	//lint:ignore errdrop encode-to-client failure means the client is gone; nothing to do
	json.NewEncoder(w).Encode(v)
}

// writeJSONLine emits one NDJSON line (Encode appends the newline).
func writeJSONLine(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

// requestCtx derives the request's working context from its deadline knob.
func (s *Server) requestCtx(r *http.Request, timeoutMs int) (context.Context, context.CancelFunc, *httpError) {
	if timeoutMs < 0 {
		return nil, nil, badRequest(fmt.Errorf("timeoutMs %d must be non-negative", timeoutMs))
	}
	d := s.cfg.DefaultTimeout
	if timeoutMs > 0 {
		d = time.Duration(timeoutMs) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	return ctx, cancel, nil
}

// mapCtxErr translates a cancellation into the load-shedding status codes,
// bumping the matching counter.
func (s *Server) mapCtxErr(err error) *httpError {
	if errors.Is(err, context.DeadlineExceeded) {
		s.metrics.DeadlineExceeded.Add(1)
		return &httpError{status: http.StatusGatewayTimeout, msg: "deadline exceeded"}
	}
	if errors.Is(err, context.Canceled) {
		s.metrics.ClientCancelled.Add(1)
		return &httpError{status: StatusClientClosedRequest, msg: "client cancelled"}
	}
	return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
}

// acquire admits the request to a worker slot, waiting in the bounded queue
// if all slots are busy. It returns a release func on success; otherwise the
// 429/504/499 error to report.
func (s *Server) acquire(ctx context.Context) (func(), *httpError) {
	faultinject.Fire(faultinject.Admission, 0, nil)
	if s.draining.Load() {
		return nil, &httpError{
			status: http.StatusServiceUnavailable, msg: "server draining",
			retryAfter: s.retryAfterSeconds(),
		}
	}
	release := func() {
		<-s.slots
		s.metrics.BusyWorkers.Add(-1)
	}
	// Fast path: a slot is free.
	select {
	case s.slots <- struct{}{}:
		s.metrics.BusyWorkers.Add(1)
		return release, nil
	default:
	}
	// Join the bounded queue or shed immediately.
	if s.metrics.QueueDepth.Add(1) > int64(s.cfg.QueueDepth) {
		s.metrics.QueueDepth.Add(-1)
		s.metrics.RejectedQueueFull.Add(1)
		return nil, &httpError{
			status: http.StatusTooManyRequests, msg: "queue full",
			retryAfter: s.retryAfterSeconds(),
		}
	}
	defer s.metrics.QueueDepth.Add(-1)
	select {
	case s.slots <- struct{}{}:
		s.metrics.BusyWorkers.Add(1)
		return release, nil
	case <-ctx.Done():
		return nil, s.mapCtxErr(ctx.Err())
	}
}

// retryAfterSeconds estimates when shed load is worth retrying: the current
// backlog divided by the service width, at least one second. Derived from
// queue depth so the hint grows with the backlog instead of being a fixed
// constant every rejected client obeys in lockstep.
func (s *Server) retryAfterSeconds() int {
	backlog := s.metrics.QueueDepth.Load() + s.metrics.BusyWorkers.Load()
	ra := int(backlog) / s.cfg.MaxConcurrent
	if ra < 1 {
		ra = 1
	}
	return ra
}

// mapSolveErr translates a pipeline failure into its HTTP disposition,
// bumping the resilience counters: a contained worker panic is a server
// fault (500), a failed numerical health check is an unprocessable scenario
// (422) — the request was well-formed, its system just cannot be trusted.
func (s *Server) mapSolveErr(err error) *httpError {
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		s.metrics.WorkerPanics.Add(1)
		return &httpError{
			status: http.StatusInternalServerError,
			msg: fmt.Sprintf("worker panic (iteration %d, worker %d): %v",
				pe.Iteration, pe.Worker, pe.Value),
		}
	}
	var he *core.HealthError
	if errors.As(err, &he) {
		s.metrics.HealthFailures.Add(1)
	}
	return &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()}
}

// solved obtains the unit-GPR solution for a scenario by walking the
// degradation ladder: the resident LRU, the durable store, the ring owner
// (fleet mode), and finally the full pipeline. The returned tier names the
// rung that served it. On the solve path the slot is HELD when solved
// returns, so the caller's post-processing runs under the same admission
// token; on an LRU hit the returned release is a no-op (cached
// post-processing for /v1/solve is a few arithmetic operations). The store
// and peer rungs rehydrate under the slot too — rebuilding an assembler is
// preprocessing-weight work, far cheaper than a solve but not free. needSlot
// forces slot acquisition even on a hit, for endpoints whose post-processing
// is itself a parallel field evaluation.
func (s *Server) solved(ctx context.Context, b *built, needSlot bool) (res *earthing.Result, tier string, release func(), herr *httpError) {
	noop := func() {}
	if r, ok := s.cache.get(b.key); ok {
		s.metrics.CacheHits.Add(1)
		if !needSlot {
			return r, tierLRU, noop, nil
		}
		rel, herr := s.acquire(ctx)
		if herr != nil {
			return nil, tierLRU, noop, herr
		}
		return r, tierLRU, rel, nil
	}
	s.metrics.CacheMisses.Add(1)
	rel, herr := s.acquire(ctx)
	if herr != nil {
		return nil, tierSolve, noop, herr
	}
	// Double-check: another request may have solved this scenario while we
	// queued for the slot.
	if r, ok := s.cache.get(b.key); ok {
		s.metrics.CacheHits.Add(1)
		if !needSlot {
			rel()
			return r, tierLRU, noop, nil
		}
		return r, tierLRU, rel, nil
	}
	if r, t, ok := s.tierGet(ctx, b); ok {
		if !needSlot {
			rel()
			return r, t, noop, nil
		}
		return r, t, rel, nil
	}
	start := time.Now()
	b.cfg.HealthCheck = s.cfg.HealthCheck
	r, err := earthing.Analyze(ctx, b.grid, b.model, b.cfg)
	if err != nil {
		rel()
		if ctx.Err() != nil {
			return nil, tierSolve, noop, s.mapCtxErr(ctx.Err())
		}
		return nil, tierSolve, noop, s.mapSolveErr(err)
	}
	s.metrics.Assemblies.Add(1)
	s.metrics.AssembleNanos.Add(int64(time.Since(start)))
	s.cache.put(b.key, r)
	s.storePut(b, r)
	return r, tierSolve, rel, nil
}

// --- /v1/solve ---

// SolveRequest is a Scenario plus the request deadline.
type SolveRequest struct {
	Scenario
	// TimeoutMs bounds this request's wall time (0 = server default).
	TimeoutMs int `json:"timeoutMs,omitempty"`
}

// SolveResponse reports the design parameters of eq. 2.2 at the requested
// GPR.
type SolveResponse struct {
	Key string `json:"key"`
	// GPR echoes the ground potential rise the results are scaled to.
	GPR float64 `json:"gpr"`
	// ReqOhms is the equivalent grounding resistance (GPR-independent).
	ReqOhms float64 `json:"reqOhms"`
	// CurrentAmps is the total fault current at this GPR.
	CurrentAmps float64 `json:"currentAmps"`
	// Elements and DoF describe the discretization that was solved.
	Elements int      `json:"elements"`
	DoF      int      `json:"dof"`
	Warnings []string `json:"warnings,omitempty"`
}

func decode[T any](r *http.Request, into *T) *httpError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return badRequest(fmt.Errorf("bad request body: %w", err))
	}
	return nil
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.metrics.SolveRequests.Add(1)
	var req SolveRequest
	if herr := decode(r, &req); herr != nil {
		s.writeError(w, herr)
		return
	}
	b, err := req.Scenario.build(s.cfg.Workers)
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	ctx, cancel, herr := s.requestCtx(r, req.TimeoutMs)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer cancel()
	res, tier, release, herr := s.solved(ctx, b, false)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer release()
	s.writeJSON(w, tier, SolveResponse{
		Key:         b.key,
		GPR:         b.gpr,
		ReqOhms:     res.Req,
		CurrentAmps: b.gpr / res.Req,
		Elements:    len(res.Mesh.Elements),
		DoF:         len(res.Sigma),
		Warnings:    res.Warnings,
	})
}

// --- /v1/raster ---

// RasterRequest asks for a sampled surface field of the solved scenario.
type RasterRequest struct {
	Scenario
	TimeoutMs int `json:"timeoutMs,omitempty"`
	// Kind is "potential" (default; the contour-plot field of Figs. 5.2/5.4)
	// or "step" (the per-metre step-voltage magnitude |E_h|·1 m).
	Kind string `json:"kind,omitempty"`
	// NX, NY are the raster dimensions (default 64 × 64, capped at 512).
	NX int `json:"nx,omitempty"`
	NY int `json:"ny,omitempty"`
	// Margin extends the raster beyond the grid bounds (metres, default 15).
	Margin float64 `json:"margin,omitempty"`
}

// RasterResponse carries the sampled field, row-major
// (V[j*NX+i] at (X0+i·DX, Y0+j·DY)), in volts at the requested GPR.
type RasterResponse struct {
	Key  string    `json:"key"`
	Kind string    `json:"kind"`
	GPR  float64   `json:"gpr"`
	X0   float64   `json:"x0"`
	Y0   float64   `json:"y0"`
	DX   float64   `json:"dx"`
	DY   float64   `json:"dy"`
	NX   int       `json:"nx"`
	NY   int       `json:"ny"`
	V    []float64 `json:"v"`
}

func (s *Server) handleRaster(w http.ResponseWriter, r *http.Request) {
	s.metrics.RasterRequests.Add(1)
	var req RasterRequest
	if herr := decode(r, &req); herr != nil {
		s.writeError(w, herr)
		return
	}
	kind := req.Kind
	if kind == "" {
		kind = "potential"
	}
	if kind != "potential" && kind != "step" {
		s.writeError(w, badRequest(fmt.Errorf("unknown raster kind %q (want potential or step)", req.Kind)))
		return
	}
	if req.NX < 0 || req.NY < 0 || req.NX > 512 || req.NY > 512 {
		s.writeError(w, badRequest(fmt.Errorf("raster size %d × %d out of range (max 512)", req.NX, req.NY)))
		return
	}
	if req.Margin < 0 {
		s.writeError(w, badRequest(fmt.Errorf("margin %g must be non-negative", req.Margin)))
		return
	}
	b, err := req.Scenario.build(s.cfg.Workers)
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	ctx, cancel, herr := s.requestCtx(r, req.TimeoutMs)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer cancel()
	// Raster evaluation is a parallel field sweep comparable in weight to a
	// small assembly, so even cache hits hold a slot.
	res, tier, release, herr := s.solved(ctx, b, true)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer release()

	start := time.Now()
	opt := earthing.SurfaceOptions{
		NX: req.NX, NY: req.NY, Margin: req.Margin,
		Workers: b.cfg.BEM.Workers, Schedule: b.cfg.BEM.Schedule,
	}
	// res is the cached unit-GPR solution; scaled holds the request's GPR so
	// the raster comes out in physical volts without mutating the shared
	// cache entry.
	scaled := *res
	scaled.GPR = b.gpr
	var raster *earthing.Raster
	if kind == "potential" {
		raster, err = earthing.SurfacePotential(ctx, &scaled, opt)
	} else {
		raster, err = earthing.StepVoltageMap(ctx, &scaled, opt)
	}
	if err != nil {
		s.writeError(w, s.mapCtxErr(err))
		return
	}
	s.metrics.PostNanos.Add(int64(time.Since(start)))
	s.writeJSON(w, tier, RasterResponse{
		Key: b.key, Kind: kind, GPR: b.gpr,
		X0: raster.X0, Y0: raster.Y0, DX: raster.DX, DY: raster.DY,
		NX: raster.NX, NY: raster.NY, V: raster.V,
	})
}

// --- /v1/safety ---

// CriteriaSpec is the JSON form of the IEEE Std 80 tolerable-limit inputs.
type CriteriaSpec struct {
	// FaultDurationS is the shock/clearing time in seconds.
	FaultDurationS float64 `json:"faultDurationS"`
	// SoilRho is the native surface soil resistivity, Ω·m.
	SoilRho float64 `json:"soilRho"`
	// SurfaceRho/SurfaceThicknessM describe the crushed-rock layer (0 = none).
	SurfaceRho        float64 `json:"surfaceRho,omitempty"`
	SurfaceThicknessM float64 `json:"surfaceThicknessM,omitempty"`
	// Weight is "50kg" (default) or "70kg".
	Weight string `json:"weight,omitempty"`
}

func (c CriteriaSpec) criteria() (earthing.SafetyCriteria, error) {
	crit := earthing.SafetyCriteria{
		FaultDuration:    c.FaultDurationS,
		SoilRho:          c.SoilRho,
		SurfaceRho:       c.SurfaceRho,
		SurfaceThickness: c.SurfaceThicknessM,
	}
	switch c.Weight {
	case "", "50kg":
		crit.Weight = earthing.Body50kg
	case "70kg":
		crit.Weight = earthing.Body70kg
	default:
		return crit, fmt.Errorf("safety: unknown body weight %q (want 50kg or 70kg)", c.Weight)
	}
	return crit, crit.Validate()
}

// SafetyRequest asks for touch/step/mesh voltages of the solved scenario
// checked against IEEE Std 80 limits.
type SafetyRequest struct {
	Scenario
	TimeoutMs int          `json:"timeoutMs,omitempty"`
	Criteria  CriteriaSpec `json:"criteria"`
	// StepResM is the surface sampling resolution in metres (default 1, the
	// IEEE step distance).
	StepResM float64 `json:"stepResM,omitempty"`
}

// SafetyResponse reports computed voltages, the tolerable limits and the
// verdict.
type SafetyResponse struct {
	Key string  `json:"key"`
	GPR float64 `json:"gpr"`
	// Computed worst-case voltages at this GPR (volts).
	StepV  float64 `json:"stepV"`
	TouchV float64 `json:"touchV"`
	MeshV  float64 `json:"meshV"`
	// Tolerable limits (volts); mesh shares the touch limit.
	StepLimitV  float64 `json:"stepLimitV"`
	TouchLimitV float64 `json:"touchLimitV"`
	StepOK      bool    `json:"stepOK"`
	TouchOK     bool    `json:"touchOK"`
	MeshOK      bool    `json:"meshOK"`
	Safe        bool    `json:"safe"`
}

func (s *Server) handleSafety(w http.ResponseWriter, r *http.Request) {
	s.metrics.SafetyRequests.Add(1)
	var req SafetyRequest
	if herr := decode(r, &req); herr != nil {
		s.writeError(w, herr)
		return
	}
	crit, err := req.Criteria.criteria()
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	if req.StepResM < 0 {
		s.writeError(w, badRequest(fmt.Errorf("stepResM %g must be non-negative", req.StepResM)))
		return
	}
	b, err := req.Scenario.build(s.cfg.Workers)
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	ctx, cancel, herr := s.requestCtx(r, req.TimeoutMs)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer cancel()
	res, tier, release, herr := s.solved(ctx, b, true)
	if herr != nil {
		s.writeError(w, herr)
		return
	}
	defer release()

	start := time.Now()
	scaled := *res
	scaled.GPR = b.gpr
	volt, err := earthing.ComputeVoltages(ctx, &scaled, req.StepResM,
		earthing.SurfaceOptions{Workers: b.cfg.BEM.Workers, Schedule: b.cfg.BEM.Schedule})
	if err != nil {
		s.writeError(w, s.mapCtxErr(err))
		return
	}
	verdict, err := crit.Check(volt.MaxStep, volt.MaxTouch, volt.MaxMesh)
	if err != nil {
		s.writeError(w, badRequest(err))
		return
	}
	s.metrics.PostNanos.Add(int64(time.Since(start)))
	s.writeJSON(w, tier, SafetyResponse{
		Key: b.key, GPR: b.gpr,
		StepV: volt.MaxStep, TouchV: volt.MaxTouch, MeshV: volt.MaxMesh,
		StepLimitV: verdict.StepLimit, TouchLimitV: verdict.TouchLimit,
		StepOK: verdict.StepOK, TouchOK: verdict.TouchOK, MeshOK: verdict.MeshOK,
		Safe: verdict.Safe(),
	})
}

// --- /v1/stats ---

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	//lint:ignore errdrop encode-to-client failure means the client is gone; nothing to do
	json.NewEncoder(w).Encode(s.snapshot())
}
