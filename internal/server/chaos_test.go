package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"earthing/internal/faultinject"
)

// resetFaults guards against a failing test leaving a process-global hook
// installed for the rest of the package run.
func resetFaults(t *testing.T) {
	t.Helper()
	t.Cleanup(faultinject.Reset)
}

// TestChaosPanicContainment16Way is the acceptance chaos suite: under a
// 16-way concurrent load with a panic injected into exactly one assembly
// worker, the poisoned request gets a 500 with a diagnostic, every other
// request's response is byte-identical to an uninjected baseline, the panic
// counter moves by exactly one, the process survives and no goroutines leak.
func TestChaosPanicContainment16Way(t *testing.T) {
	resetFaults(t)
	const n = 16
	// Caching disabled: every request must assemble, so the injected fault
	// can land in any of them and the bit-identity comparison is between
	// fresh solves, not cache echoes.
	s, ts := newTestServer(t, Config{MaxConcurrent: n, QueueDepth: n, Workers: 2, CacheEntries: -1})

	scenario := func(i int) string { return fastScenario(20+float64(i), 10_000) }

	// Uninjected baselines, one per scenario.
	baseline := make([][]byte, n)
	for i := 0; i < n; i++ {
		code, _, body := post(t, context.Background(), ts.URL, "/v1/solve", scenario(i))
		if code != http.StatusOK {
			t.Fatalf("baseline %d: status %d: %s", i, code, body)
		}
		baseline[i] = body
	}

	http.DefaultClient.CloseIdleConnections()
	goroutinesBefore := runtime.NumGoroutine()

	// Exactly one element-pair evaluation, in whichever request's worker
	// reaches it first, panics.
	defer faultinject.Set(faultinject.AssemblyPair,
		faultinject.Once(faultinject.Panic("chaos: injected worker fault")))()

	codes := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], _, bodies[i] = postNoFatal(t, context.Background(), ts.URL, "/v1/solve", scenario(i))
		}(i)
	}
	wg.Wait()

	var failed, ok int
	for i := 0; i < n; i++ {
		switch codes[i] {
		case http.StatusInternalServerError:
			failed++
			if !strings.Contains(string(bodies[i]), "worker panic") ||
				!strings.Contains(string(bodies[i]), "chaos: injected worker fault") {
				t.Errorf("request %d: 500 body lacks the panic diagnostic: %s", i, bodies[i])
			}
		case http.StatusOK:
			ok++
			if !bytes.Equal(bodies[i], baseline[i]) {
				t.Errorf("request %d: response differs from uninjected baseline\n got: %s\nwant: %s",
					i, bodies[i], baseline[i])
			}
		default:
			t.Errorf("request %d: unexpected status %d: %s", i, codes[i], bodies[i])
		}
	}
	if failed != 1 || ok != n-1 {
		t.Errorf("got %d failed / %d ok, want exactly 1 / %d", failed, ok, n-1)
	}
	if got := s.Counters().WorkerPanics.Load(); got != 1 {
		t.Errorf("workerPanics = %d, want 1", got)
	}

	// The process (trivially) survived; prove the pool did too: a fresh
	// solve still works and all request goroutines have drained.
	if code, _, body := post(t, context.Background(), ts.URL, "/v1/solve", scenario(0)); code != http.StatusOK {
		t.Errorf("post-chaos solve: status %d: %s", code, body)
	}
	http.DefaultClient.CloseIdleConnections()
	waitFor(t, func() bool {
		http.DefaultClient.CloseIdleConnections()
		return runtime.NumGoroutine() <= goroutinesBefore+2
	})
}

// TestChaosHandlerPanicRecovery: a panic on the handler goroutine itself
// (outside any parallel loop) is caught at the ServeHTTP boundary — 500 with
// a diagnostic, handlerPanics counter bumped, server keeps serving.
func TestChaosHandlerPanicRecovery(t *testing.T) {
	resetFaults(t)
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, CacheEntries: -1})

	defer faultinject.Set(faultinject.Solve,
		faultinject.Once(faultinject.Panic("solver exploded")))()

	code, _, body := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", code, body)
	}
	if !strings.Contains(string(body), "internal panic: solver exploded") {
		t.Errorf("500 body lacks the diagnostic: %s", body)
	}
	if got := s.Counters().HandlerPanics.Load(); got != 1 {
		t.Errorf("handlerPanics = %d, want 1", got)
	}
	if code, _, body := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000)); code != http.StatusOK {
		t.Errorf("follow-up solve: status %d: %s", code, body)
	}
}

// TestChaosHealthCheck422: with the server's health checks on, a NaN
// poisoned into the solve stage is rejected as 422 with a typed health
// diagnostic instead of serving garbage, and the healthFailures counter
// moves.
func TestChaosHealthCheck422(t *testing.T) {
	resetFaults(t)
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, CacheEntries: -1, HealthCheck: true})

	defer faultinject.Set(faultinject.Solve, faultinject.PoisonNaN())()

	code, _, body := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", code, body)
	}
	if !strings.Contains(string(body), "health check") {
		t.Errorf("422 body lacks the health diagnostic: %s", body)
	}
	if got := s.Counters().HealthFailures.Load(); got != 1 {
		t.Errorf("healthFailures = %d, want 1", got)
	}

	faultinject.Reset()
	if code, _, body := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000)); code != http.StatusOK {
		t.Errorf("clean solve after poison: status %d: %s", code, body)
	}
}

// TestChaosSweepPartialFailure: one poisoned scenario in a sweep batch
// reports its error on its own NDJSON line while the other scenarios keep
// streaming results.
func TestChaosSweepPartialFailure(t *testing.T) {
	resetFaults(t)
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, Workers: 2, CacheEntries: -1})

	var scens []string
	for i := 0; i < 5; i++ {
		scens = append(scens, fmt.Sprintf(`{"id": "c%d", "soil": {"kind": "uniform", "gamma1": %g}}`, i, 0.01+0.002*float64(i)))
	}
	body := fmt.Sprintf(`{
		"grid": {"rect": {"width": 20, "height": 20, "nx": 4, "ny": 4, "depth": 0.8, "radius": 0.006}},
		"seriesTol": 1e-3,
		"scenarios": [%s]
	}`, strings.Join(scens, ","))

	// Poison the first sweep column computed; exactly one job fails.
	defer faultinject.Set(faultinject.SweepColumn,
		faultinject.Once(faultinject.Panic("chaos: sweep worker fault")))()

	code, _, resp := post(t, context.Background(), ts.URL, "/v1/sweep", body)
	if code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", code, resp)
	}
	var failed, ok int
	for _, line := range strings.Split(strings.TrimSpace(string(resp)), "\n") {
		var sl SweepLine
		if err := json.Unmarshal([]byte(line), &sl); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		if sl.Index < 0 {
			t.Fatalf("sweep-level error line, want per-scenario isolation: %s", line)
		}
		if sl.Error != "" {
			failed++
			if !strings.Contains(sl.Error, "chaos: sweep worker fault") {
				t.Errorf("scenario %d error lacks the fault: %s", sl.Index, sl.Error)
			}
			continue
		}
		ok++
		if sl.ReqOhms <= 0 {
			t.Errorf("scenario %d: non-physical ReqOhms %g", sl.Index, sl.ReqOhms)
		}
	}
	if failed != 1 || ok != 4 {
		t.Errorf("got %d failed / %d ok lines, want 1 / 4", failed, ok)
	}
	if got := s.Counters().WorkerPanics.Load(); got != 1 {
		t.Errorf("workerPanics = %d, want 1", got)
	}
}

// TestChaosOptimizePoisonedCandidate: a candidate evaluation poisoned inside
// a /v1/optimize search fails that one design — the search completes, streams
// a 200 and still closes with a feasible best, with exactly one failure in
// the terminal stats.
func TestChaosOptimizePoisonedCandidate(t *testing.T) {
	resetFaults(t)
	_, ts := newTestServer(t, Config{MaxConcurrent: 2, Workers: 2})

	defer faultinject.Set(faultinject.OptimizeCandidate,
		faultinject.At(2, faultinject.PoisonNaN()))()

	code, _, resp := post(t, context.Background(), ts.URL, "/v1/optimize", fastOptimize(""))
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, resp)
	}
	lines := decodeOptimize(t, resp)
	final := lines[len(lines)-1]
	if !final.Final || final.Stats == nil {
		t.Fatalf("terminal line %+v, want final summary", final)
	}
	if final.Stats.Failed != 1 {
		t.Errorf("failed candidates = %d, want exactly the poisoned one", final.Stats.Failed)
	}
	if final.Best == nil || !final.Best.Feasible {
		t.Errorf("final best %+v, want feasible design despite poisoned sibling", final.Best)
	}
	if final.Error != "" {
		t.Errorf("terminal error %q, want clean completion", final.Error)
	}
}

// TestChaosRetryAfterOn429: load-shed responses carry a Retry-After hint
// derived from the backlog.
func TestChaosRetryAfterOn429(t *testing.T) {
	resetFaults(t)
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, QueueDepth: 1, CacheEntries: -1})

	// Hold the single slot long enough to shed the overflow deterministically.
	defer faultinject.Set(faultinject.Solve, faultinject.Delay(500*time.Millisecond))()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postNoFatal(t, ctx, ts.URL, "/v1/solve", fastScenario(30+float64(i), 10_000))
		}(i)
	}
	waitFor(t, func() bool {
		return s.Counters().BusyWorkers.Load() == 1 && s.Counters().QueueDepth.Load() == 1
	})

	code, hdr, body := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(40, 10_000))
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", code, body)
	}
	if ra := hdr.Get("Retry-After"); ra == "" {
		t.Error("429 response lacks a Retry-After header")
	}
	wg.Wait()
}

// drainHarness runs RunUntilSignal on a loopback listener and returns the
// base URL, the signal channel and the exit-error channel.
func drainHarness(t *testing.T, s *Server, drainTimeout time.Duration) (string, chan os.Signal, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- RunUntilSignal(s, nil, ln, sig, drainTimeout, t.Logf) }()
	return "http://" + ln.Addr().String(), sig, done
}

// TestDrainGracefulShutdown races an in-flight solve against SIGTERM: the
// server flips /readyz to 503, refuses new work with Retry-After, lets the
// in-flight request finish with a 200, and RunUntilSignal exits cleanly.
func TestDrainGracefulShutdown(t *testing.T) {
	resetFaults(t)
	s := New(Config{MaxConcurrent: 2, CacheEntries: -1})
	base, sig, done := drainHarness(t, s, 30*time.Second)

	if resp, err := http.Get(base + "/readyz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-drain /readyz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	// Park one request inside the solve stage.
	defer faultinject.Set(faultinject.Solve, faultinject.Delay(700*time.Millisecond))()
	type result struct {
		code int
		body []byte
	}
	inflight := make(chan result, 1)
	go func() {
		code, _, body := postNoFatal(t, context.Background(), base, "/v1/solve", fastScenario(20, 10_000))
		inflight <- result{code, body}
	}()
	waitFor(t, func() bool { return s.Counters().BusyWorkers.Load() == 1 })

	sig <- syscall.SIGTERM
	waitFor(t, s.Draining)

	// Readiness reports draining while the in-flight request completes.
	// (The listener may already be closed for NEW connections — both
	// refusing and 503 are valid shedding here, so tolerate a dial error.)
	if resp, err := http.Get(base + "/readyz"); err == nil {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining /readyz: status %d, want 503", resp.StatusCode)
		}
		resp.Body.Close()
	}

	r := <-inflight
	if r.code != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200: %s", r.code, r.body)
	}
	if err := <-done; err != nil {
		t.Errorf("RunUntilSignal = %v, want clean drain", err)
	}
}

// TestDrainRejectsNewWork: a draining server sheds new solves with 503 and a
// Retry-After hint (checked via SetDraining directly, where the listener
// stays open).
func TestDrainRejectsNewWork(t *testing.T) {
	resetFaults(t)
	s, ts := newTestServer(t, Config{MaxConcurrent: 2, CacheEntries: -1})
	s.SetDraining(true)

	code, hdr, body := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("503 response lacks a Retry-After header")
	}
	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz status %d, want 503", resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Liveness stays green: draining is not a reason to kill the process.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		if resp.StatusCode != http.StatusOK {
			t.Errorf("/healthz status %d, want 200 while draining", resp.StatusCode)
		}
		resp.Body.Close()
	}

	s.SetDraining(false)
	if code, _, body := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000)); code != http.StatusOK {
		t.Errorf("post-drain solve: status %d: %s", code, body)
	}
}

// TestDrainTimeoutExpires: when in-flight work outlives the drain window,
// RunUntilSignal reports the timeout instead of hanging forever.
func TestDrainTimeoutExpires(t *testing.T) {
	resetFaults(t)
	s := New(Config{MaxConcurrent: 1, CacheEntries: -1})
	base, sig, done := drainHarness(t, s, 100*time.Millisecond)

	defer faultinject.Set(faultinject.Solve, faultinject.Delay(2*time.Second))()
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		postNoFatal(t, context.Background(), base, "/v1/solve", fastScenario(20, 10_000))
	}()
	waitFor(t, func() bool { return s.Counters().BusyWorkers.Load() == 1 })

	sig <- syscall.SIGTERM
	err := <-done
	if err == nil || !strings.Contains(err.Error(), "drain timeout") {
		t.Errorf("RunUntilSignal = %v, want drain timeout error", err)
	}
	// The stuck request still finishes on its own; reap it so the test ends
	// with no goroutines in flight.
	<-finished
}
