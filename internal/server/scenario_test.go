package server

import (
	"strings"
	"testing"

	"earthing/internal/grid"
)

func mustBuild(t *testing.T, sc Scenario) *built {
	t.Helper()
	b, err := sc.build(0)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return b
}

func baseScenario() Scenario {
	return Scenario{
		Grid: GridSpec{Rect: &RectSpec{Width: 20, Height: 20, NX: 4, NY: 4, Depth: 0.8, Radius: 0.006}},
		Soil: SoilSpec{Kind: "two-layer", Gamma1: 0.005, Gamma2: 0.016, H1: 1},
	}
}

// TestKeyStability: the canonical key is a pure function of the
// result-affecting inputs.
func TestKeyStability(t *testing.T) {
	a := mustBuild(t, baseScenario())
	b := mustBuild(t, baseScenario())
	if a.key != b.key {
		t.Fatalf("same scenario keyed differently: %s vs %s", a.key, b.key)
	}
}

// TestKeyIgnoresExecutionKnobs: GPR, workers and schedule change neither the
// solution nor the key — they must all land on the same cache entry.
func TestKeyIgnoresExecutionKnobs(t *testing.T) {
	base := mustBuild(t, baseScenario())
	for _, mutate := range []func(*Scenario){
		func(s *Scenario) { s.GPR = 10_000 },
		func(s *Scenario) { s.Workers = 7 },
		func(s *Scenario) { s.Schedule = "static,16" },
	} {
		sc := baseScenario()
		mutate(&sc)
		if got := mustBuild(t, sc).key; got != base.key {
			t.Errorf("execution-only knob changed key: %+v", sc)
		}
	}
}

// TestKeySeparatesResultAffectingKnobs: anything that changes the solved
// system must change the key.
func TestKeySeparatesResultAffectingKnobs(t *testing.T) {
	base := mustBuild(t, baseScenario())
	for name, mutate := range map[string]func(*Scenario){
		"soil gamma1":  func(s *Scenario) { s.Soil.Gamma1 = 0.006 },
		"soil kind":    func(s *Scenario) { s.Soil = SoilSpec{Kind: "uniform", Gamma1: 0.005} },
		"layer depth":  func(s *Scenario) { s.Soil.H1 = 2 },
		"grid width":   func(s *Scenario) { s.Grid.Rect.Width = 21 },
		"grid density": func(s *Scenario) { s.Grid.Rect.NX = 5 },
		"maxElemLen":   func(s *Scenario) { s.MaxElemLen = 2 },
		"rodElements":  func(s *Scenario) { s.RodElements = 2 },
		"seriesTol":    func(s *Scenario) { s.SeriesTol = 1e-4 },
	} {
		sc := baseScenario()
		mutate(&sc)
		if got := mustBuild(t, sc).key; got == base.key {
			t.Errorf("%s: result-affecting knob did not change key", name)
		}
	}
}

// TestKeyCanonicalGeometry: a rect spec and the hand-written text grid of the
// same geometry canonicalize to the same key (both pass through grid.Write).
func TestKeyCanonicalGeometry(t *testing.T) {
	rect := Scenario{
		Grid: GridSpec{Rect: &RectSpec{Width: 10, Height: 10, NX: 2, NY: 2, Depth: 0.5, Radius: 0.01}},
		Soil: SoilSpec{Kind: "uniform", Gamma1: 0.01},
	}
	rb := mustBuild(t, rect)
	var sb strings.Builder
	if err := grid.Write(&sb, rb.grid); err != nil {
		t.Fatal(err)
	}
	text := Scenario{
		Grid: GridSpec{Text: sb.String()},
		Soil: SoilSpec{Kind: "uniform", Gamma1: 0.01},
	}
	tb := mustBuild(t, text)
	if rb.key != tb.key {
		t.Errorf("equivalent geometries keyed differently:\nrect %s\ntext %s", rb.key, tb.key)
	}
}

// TestBuildDefaults: the zero knobs resolve to the documented defaults.
func TestBuildDefaults(t *testing.T) {
	b := mustBuild(t, baseScenario())
	if b.gpr != 1 {
		t.Errorf("default GPR = %g, want 1", b.gpr)
	}
	if b.cfg.GPR != 1 {
		t.Errorf("solve config GPR = %g, want unit (responses scale at request time)", b.cfg.GPR)
	}
	if b.cfg.BEM.SeriesTol != 1e-7 {
		t.Errorf("default series tolerance = %g, want 1e-7", b.cfg.BEM.SeriesTol)
	}
}
