package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"earthing"
	"earthing/internal/backoff"
	"earthing/internal/cluster"
	"earthing/internal/faultinject"
	"earthing/internal/grid"
	"earthing/internal/store"
)

// FleetConfig enables groundd's cluster mode: a consistent-hash ring over the
// fleet membership routes every scenario key to an owner node, and a local
// miss asks the owner for its stored solution before paying for a solve. The
// whole mechanism is an optimization tier — every failure mode (dead peer,
// slow peer, poisoned peer, missing entry) degrades to the local solve the
// node would have done alone, within the PeerDeadline bound.
type FleetConfig struct {
	// NodeID is this node's stable identity on the ring.
	NodeID string
	// Members is the full fleet membership, including the local node. Every
	// node must be configured with the same ID set (URLs may differ per
	// viewpoint); remote members need a reachable base URL.
	Members []cluster.Member
	// FetchTimeout bounds ONE peer-fetch attempt (default 500 ms).
	FetchTimeout time.Duration
	// PeerDeadline bounds the whole peer interaction — attempts plus the
	// backoff between them — before the node gives up and solves locally
	// (default 1.5 s).
	PeerDeadline time.Duration
	// RetryBase is the un-jittered backoff before the single retry
	// (default 100 ms).
	RetryBase time.Duration
	// ProbeInterval is the cadence of the breaker prober goroutine
	// (default 500 ms).
	ProbeInterval time.Duration
	// BreakerThreshold and BreakerCooldown tune the per-peer circuit breaker
	// (defaults 3 consecutive failures, 2 s quarantine before a half-open
	// probe).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// VNodes is the virtual-node count per member (default 64).
	VNodes int
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 500 * time.Millisecond
	}
	if c.PeerDeadline <= 0 {
		c.PeerDeadline = 1500 * time.Millisecond
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 100 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	return c
}

// peer is one remote fleet member plus its circuit breaker.
type peer struct {
	member  cluster.Member
	breaker *cluster.Breaker
}

// fleet is the runtime state of cluster mode: the ring, the remote peers and
// the HTTP client they are fetched through.
type fleet struct {
	cfg    FleetConfig
	ring   *cluster.Ring
	peers  map[string]*peer
	client cluster.Client

	// rng decorrelates retry backoff across nodes; rand.Rand is not
	// goroutine-safe, so it hides behind its own mutex.
	rngMu sync.Mutex
	rng   *rand.Rand
}

// newFleet validates the membership and builds the ring and breakers.
func newFleet(cfg FleetConfig) (*fleet, error) {
	cfg = cfg.withDefaults()
	if cfg.NodeID == "" {
		return nil, fmt.Errorf("fleet: NodeID must be set")
	}
	ring, err := cluster.NewRing(cfg.Members, cfg.VNodes)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	f := &fleet{
		cfg:    cfg,
		ring:   ring,
		peers:  make(map[string]*peer),
		client: cluster.Client{HTTP: &http.Client{}},
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	self := false
	for _, m := range cfg.Members {
		if m.ID == cfg.NodeID {
			self = true
			continue
		}
		if m.URL == "" {
			return nil, fmt.Errorf("fleet: peer %q needs a URL", m.ID)
		}
		f.peers[m.ID] = &peer{
			member:  m,
			breaker: cluster.NewBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown, nil),
		}
	}
	if !self {
		return nil, fmt.Errorf("fleet: members must include the local node %q", cfg.NodeID)
	}
	return f, nil
}

// jitter spreads w over [w/2, w) with the fleet's private rng.
func (f *fleet) jitter(w time.Duration) time.Duration {
	f.rngMu.Lock()
	defer f.rngMu.Unlock()
	return backoff.Jitter(w, f.rng)
}

// openBreakers counts peers currently quarantined (open or probing).
func (f *fleet) openBreakers() int64 {
	var n int64
	for _, p := range f.peers {
		if p.breaker.State() != cluster.BreakerClosed {
			n++
		}
	}
	return n
}

// --- internal peer API ---

// handleInternalEntry serves the encoded store frame for a scenario key to a
// fleet peer. 404 is the clean "never solved it" miss; 503 means the node is
// still replaying its snapshot (the requester treats it as a failure and
// falls back to solving locally). The frame goes on the wire exactly as it
// was encoded at append time, so the CRC computed then is the CRC the
// requester verifies — a flipped byte anywhere along the path is detected.
func (s *Server) handleInternalEntry(w http.ResponseWriter, r *http.Request) {
	if !s.replayDone() {
		http.Error(w, "replaying", http.StatusServiceUnavailable)
		return
	}
	key := r.URL.Query().Get("key")
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	frame, ok := s.encodedEntry(key)
	if !ok {
		http.NotFound(w, r)
		return
	}
	scratch := []float64{0}
	faultinject.Fire(faultinject.ClusterPeerRespond, 0, scratch)
	if scratch[0] != 0 {
		// Poisoned-peer injection: flip one byte of a COPY so the shared
		// frame stays intact and the requester's checksum must fail.
		poisoned := append([]byte(nil), frame...)
		poisoned[len(poisoned)/2] ^= 0x40
		frame = poisoned
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	//lint:ignore errdrop a failed write to a peer is the peer's timeout to handle
	w.Write(frame)
}

// encodedEntry finds the wire frame for key: the store's own frame when one
// exists, otherwise a frame encoded fresh from the LRU (fleet mode without a
// store still serves peers from memory).
func (s *Server) encodedEntry(key string) ([]byte, bool) {
	if s.store != nil {
		if frame, ok := s.store.EncodedLookup(key); ok {
			return frame, true
		}
	}
	if res, ok := s.cache.get(key); ok {
		enc, err := store.Encode(nil, store.Record{Key: key, Sigma: res.Sigma})
		if err == nil {
			return enc, true
		}
	}
	return nil, false
}

// handleInternalPing answers the breaker's half-open probe: 200 only when the
// node is ready to serve entry fetches.
func (s *Server) handleInternalPing(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.replayDone() || s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		//lint:ignore errdrop a failed probe write has no one left to report to
		fmt.Fprintln(w, "not ready")
		return
	}
	//lint:ignore errdrop a failed probe write has no one left to report to
	fmt.Fprintln(w, "ok")
}

// --- degradation ladder: peer tier ---

// peerGet walks the peer rungs of the degradation ladder for key: route to
// the ring owner, fetch under a per-attempt timeout, retry once after a
// jittered backoff, verify the checksum, and give up at the PeerDeadline.
// false always means "solve locally" — a sick fleet costs bounded latency,
// never an error.
func (s *Server) peerGet(ctx context.Context, key string) (store.Record, bool) {
	f := s.fleet
	owner := f.ring.Owner(key)
	if owner == f.cfg.NodeID {
		// This node IS the authority for the key; a local miss means nobody
		// has it.
		return store.Record{}, false
	}
	p := f.peers[owner]
	if p == nil || !p.breaker.Allow() {
		// Quarantined owner: route around it. Recovery belongs to the prober.
		s.metrics.PeerFallbacks.Add(1)
		return store.Record{}, false
	}
	ctx, cancel := context.WithTimeout(ctx, f.cfg.PeerDeadline)
	defer cancel()
	for attempt := 1; attempt <= 2; attempt++ {
		actx, acancel := context.WithTimeout(ctx, f.cfg.FetchTimeout)
		data, err := f.client.FetchEntry(actx, p.member.URL, key, attempt)
		acancel()
		if err == nil {
			rec, _, derr := store.Decode(data)
			if derr != nil || rec.Key != key {
				// The owner answered 200 with bytes that fail the append-time
				// checksum (or carry the wrong key): it is lying or sick in a
				// way retries cannot fix. Quarantine on the spot.
				p.breaker.Trip()
				s.metrics.PeerPoisoned.Add(1)
				s.metrics.PeerFallbacks.Add(1)
				return store.Record{}, false
			}
			p.breaker.Success()
			s.metrics.PeerHits.Add(1)
			return rec, true
		}
		if errors.Is(err, cluster.ErrNotFound) {
			// Clean miss: the owner is healthy, the entry just does not exist.
			// Not a failure — no retry, no breaker penalty.
			p.breaker.Success()
			return store.Record{}, false
		}
		p.breaker.Failure()
		if attempt == 1 {
			if backoff.Sleep(ctx, f.jitter(f.cfg.RetryBase)) != nil {
				break // deadline consumed the backoff window
			}
			if !p.breaker.Allow() {
				break // the failure streak crossed the threshold while we slept
			}
		}
	}
	s.metrics.PeerFallbacks.Add(1)
	return store.Record{}, false
}

// probeLoop is the breaker-recovery goroutine: every ProbeInterval it pings
// quarantined peers whose cooldown has elapsed, closing their breakers on
// success. Recovery lives here — never on the request path — so request
// latency never rides on a sick peer. Runs until s.stop closes.
func (s *Server) probeLoop() {
	t := time.NewTicker(s.fleet.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
		}
		for _, p := range s.fleet.peers {
			if !p.breaker.ProbeDue() {
				continue
			}
			//lint:ignore ctxflow the probe belongs to the server lifecycle, not to any request
			if err := s.fleet.client.Ping(context.Background(), p.member.URL, s.fleet.cfg.FetchTimeout); err != nil {
				p.breaker.Failure()
			} else {
				p.breaker.Success()
			}
		}
	}
}

// --- degradation ladder: store tier ---

// storeMeta is the JSON sidecar persisted with every record: enough to
// rebuild (grid, soil, discretization) offline and re-derive the scenario
// key, making each record self-describing for tooling and audit.
type storeMeta struct {
	Grid        string   `json:"grid"`
	Soil        SoilSpec `json:"soil"`
	MaxElemLen  float64  `json:"maxElemLen,omitempty"`
	RodElements int      `json:"rodElements,omitempty"`
	SeriesTol   float64  `json:"seriesTol,omitempty"`
}

// rehydrate rebuilds the solved Result for b from a stored unit-GPR density:
// deterministic preprocessing plus the results stage, no assembly, no solve.
// A density that fails validation (wrong DoF count, non-physical current)
// reports false and the caller falls through to the solve rung.
func (s *Server) rehydrate(b *built, sigma []float64) (*earthing.Result, bool) {
	res, err := earthing.Rehydrate(b.grid, b.model, sigma, b.cfg)
	if err != nil {
		return nil, false
	}
	return res, true
}

// storeGet consults the durable tier for b's scenario.
func (s *Server) storeGet(b *built) (*earthing.Result, bool) {
	if s.store == nil {
		return nil, false
	}
	rec, ok := s.store.Lookup(b.key)
	if !ok {
		return nil, false
	}
	res, ok := s.rehydrate(b, rec.Sigma)
	if ok {
		s.metrics.StoreHits.Add(1)
	}
	return res, ok
}

// storePut snapshots a freshly solved unit-GPR result into the durable
// store. The append is write-behind: the index insert is synchronous and
// cheap, the disk write happens on the store's own goroutine, so the request
// path never blocks on disk.
func (s *Server) storePut(b *built, res *earthing.Result) {
	if s.store == nil {
		return
	}
	var buf bytes.Buffer
	if err := grid.Write(&buf, b.grid); err != nil {
		return
	}
	meta, err := json.Marshal(storeMeta{
		Grid:        buf.String(),
		Soil:        b.soil,
		MaxElemLen:  b.cfg.MaxElemLen,
		RodElements: b.cfg.RodElements,
		SeriesTol:   b.cfg.BEM.SeriesTol,
	})
	if err != nil {
		return
	}
	//lint:ignore errdrop the store is an optimization tier; a failed append only costs a future cache miss
	s.store.Append(store.Record{Key: b.key, Meta: meta, Sigma: res.Sigma})
}

// tierGet consults the tiers below the LRU — durable store, then ring owner —
// after an LRU miss, promoting any hit into the LRU (and, for peer hits,
// replicating the record into the local store so the next restart warm-starts
// with it). The returned tier labels the serve for the response header.
func (s *Server) tierGet(ctx context.Context, b *built) (*earthing.Result, string, bool) {
	if r, ok := s.storeGet(b); ok {
		s.cache.put(b.key, r)
		return r, tierStore, true
	}
	if s.fleet != nil {
		if rec, ok := s.peerGet(ctx, b.key); ok {
			if r, ok := s.rehydrate(b, rec.Sigma); ok {
				s.cache.put(b.key, r)
				if s.store != nil {
					//lint:ignore errdrop replication is best-effort; the result is already in hand
					s.store.Append(rec)
				}
				return r, tierPeer, true
			}
		}
	}
	return nil, "", false
}

// replayDone reports whether snapshot replay has completed (immediately true
// when the server has no store).
func (s *Server) replayDone() bool {
	select {
	case <-s.replayReady:
		return true
	default:
		return false
	}
}

// Close stops the server's background machinery: the breaker prober, the
// snapshot replay goroutine and the store's write-behind loop (flushing
// queued appends). Idempotent; the HTTP side is expected to be drained
// already (see RunUntilSignal).
func (s *Server) Close() error {
	var err error
	s.closeOnce.Do(func() {
		close(s.stop)
		s.bg.Wait()
		if s.store != nil {
			err = s.store.Close()
		}
	})
	return err
}
