package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"earthing/internal/cluster"
	"earthing/internal/faultinject"
	"earthing/internal/store"
)

// fastFleetConfig tunes the fleet knobs down to test cadence: quick attempts,
// a tight hard deadline, an aggressive breaker and a fast prober.
func fastFleetConfig(nodeID string, members []cluster.Member) *FleetConfig {
	return &FleetConfig{
		NodeID:           nodeID,
		Members:          members,
		FetchTimeout:     200 * time.Millisecond,
		PeerDeadline:     600 * time.Millisecond,
		RetryBase:        10 * time.Millisecond,
		ProbeInterval:    25 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  50 * time.Millisecond,
	}
}

// startFleet brings up n groundd nodes in one process, each listening on its
// own loopback port, all sharing one ring membership. The listeners exist
// before the servers so every node knows every URL at construction time.
func startFleet(t *testing.T, n int, mkCfg func(i int) Config) ([]*Server, []*httptest.Server, []cluster.Member) {
	t.Helper()
	hts := make([]*httptest.Server, n)
	members := make([]cluster.Member, n)
	for i := range hts {
		hts[i] = httptest.NewUnstartedServer(http.NotFoundHandler())
		members[i] = cluster.Member{
			ID:  fmt.Sprintf("node%d", i),
			URL: "http://" + hts[i].Listener.Addr().String(),
		}
	}
	srvs := make([]*Server, n)
	for i := range srvs {
		cfg := mkCfg(i)
		cfg.Fleet = fastFleetConfig(members[i].ID, members)
		s, err := NewFleet(cfg)
		if err != nil {
			t.Fatalf("NewFleet(node%d): %v", i, err)
		}
		srvs[i] = s
		hts[i].Config.Handler = s
		hts[i].Start()
		t.Cleanup(func() { s.Close() })
		t.Cleanup(hts[i].Close)
	}
	return srvs, hts, members
}

// scenarioOwnedBy walks rect widths until it finds a fast scenario whose ring
// owner is the wanted node, returning the request body and the key.
func scenarioOwnedBy(t *testing.T, s *Server, owner string, after float64) (body string, key string, width float64) {
	t.Helper()
	for w := after + 2; w < after+400; w += 2 {
		sc := Scenario{
			Grid: GridSpec{Rect: &RectSpec{
				Width: w, Height: 20, NX: 4, NY: 4, Depth: 0.8, Radius: 0.006,
			}},
			Soil:      SoilSpec{Kind: "uniform", Gamma1: 0.0125},
			SeriesTol: 1e-3,
		}
		b, err := sc.build(0)
		if err != nil {
			t.Fatal(err)
		}
		if s.fleet.ring.Owner(b.key) == owner {
			return fastScenario(w, 10_000), b.key, w
		}
	}
	t.Fatal("no scenario owned by " + owner + " within the search range")
	return "", "", 0
}

// waitReady polls /readyz until it reports 200 or the deadline passes.
func waitReady(t *testing.T, base string, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

// TestStoreWarmStartAcrossRestart is the durability acceptance check: solve,
// restart against the same store directory, and the first repetition of the
// scenario is served as a cache hit from the store tier — byte-identical
// body, zero assemblies.
func TestStoreWarmStartAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{MaxConcurrent: 2, Store: st})
	ts1 := httptest.NewServer(s1)
	waitReady(t, ts1.URL, 2*time.Second)

	code, hdr, first := post(t, context.Background(), ts1.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", code, first)
	}
	if hdr.Get("X-Groundd-Cache") != "miss" {
		t.Fatalf("first solve should be a cold miss")
	}
	ts1.Close()
	if err := s1.Close(); err != nil { // flushes the write-behind queue
		t.Fatalf("close: %v", err)
	}

	// "Redeploy": a fresh process opens the same directory.
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{MaxConcurrent: 2, Store: st2})
	t.Cleanup(func() { s2.Close() })
	ts2 := httptest.NewServer(s2)
	t.Cleanup(ts2.Close)
	waitReady(t, ts2.URL, 2*time.Second)

	code, hdr, warm := post(t, context.Background(), ts2.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusOK {
		t.Fatalf("warm solve: status %d: %s", code, warm)
	}
	if got := hdr.Get("X-Groundd-Cache"); got != "hit" {
		t.Errorf("warm-start disposition = %q, want hit", got)
	}
	if got := hdr.Get("X-Groundd-Cache-Tier"); got != tierStore {
		t.Errorf("warm-start tier = %q, want %q", got, tierStore)
	}
	if !bytes.Equal(first, warm) {
		t.Errorf("rehydrated body differs from the original solve:\n%s\n%s", first, warm)
	}
	if n := s2.Counters().Assemblies.Load(); n != 0 {
		t.Errorf("assemblies = %d after warm-start hit, want 0", n)
	}
	if st := getStats(t, ts2.URL); st.StoreHits != 1 || st.StoreRecords == 0 {
		t.Errorf("stats = %+v, want storeHits=1 and storeRecords>0", st)
	}
}

// TestStoreCorruptTailWarmStart: a snapshot whose tail was damaged on disk
// still warm-starts — the corrupt tail is skipped and counted, the intact
// prefix serves hits.
func TestStoreCorruptTailWarmStart(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s1 := New(Config{MaxConcurrent: 2, Store: st})
	ts1 := httptest.NewServer(s1)
	waitReady(t, ts1.URL, 2*time.Second)
	code, _, first := post(t, context.Background(), ts1.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusOK {
		t.Fatalf("solve 1: status %d", code)
	}
	if code, _, _ := post(t, context.Background(), ts1.URL, "/v1/solve", fastScenario(22, 10_000)); code != http.StatusOK {
		t.Fatalf("solve 2: status %d", code)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage the newest segment's tail: the second record decodes no more,
	// the first must survive.
	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments written: %v", err)
	}
	seg := segs[len(segs)-1]
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{MaxConcurrent: 2, Store: st2})
	t.Cleanup(func() { s2.Close() })
	ts2 := httptest.NewServer(s2)
	t.Cleanup(ts2.Close)
	waitReady(t, ts2.URL, 2*time.Second)

	stats := getStats(t, ts2.URL)
	if stats.StoreSkipped == 0 {
		t.Errorf("storeSkippedRecords = 0 after corrupting the tail, want > 0")
	}
	code, hdr, warm := post(t, context.Background(), ts2.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusOK {
		t.Fatalf("warm solve: status %d: %s", code, warm)
	}
	if hdr.Get("X-Groundd-Cache") != "hit" || !bytes.Equal(first, warm) {
		t.Errorf("intact prefix record did not serve an identical warm hit (disposition %q)",
			hdr.Get("X-Groundd-Cache"))
	}
}

// TestReadyzDuringReplay: a node mid-replay answers 503 on /readyz (load
// balancers must not route to it) and on the internal peer API, then flips
// ready when replay completes.
func TestReadyzDuringReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := st.Append(store.Record{Key: fmt.Sprintf("k%d", i), Sigma: []float64{1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Each replayed record costs 40 ms: a deterministic ~200 ms window in
	// which the node is up but not ready.
	defer faultinject.Set(faultinject.StoreRead, faultinject.Delay(40*time.Millisecond))()

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{MaxConcurrent: 2, Store: st2})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 64)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body[:n]), "replaying") {
		t.Errorf("/readyz mid-replay = %d %q, want 503 replaying", resp.StatusCode, body[:n])
	}
	resp, err = http.Get(ts.URL + "/internal/v1/entry?key=k0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("internal entry mid-replay = %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/internal/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("internal ping mid-replay = %d, want 503", resp.StatusCode)
	}

	waitReady(t, ts.URL, 5*time.Second)
	if st := getStats(t, ts.URL); st.StoreRecords != 5 {
		t.Errorf("storeRecords = %d after replay, want 5", st.StoreRecords)
	}
}

// TestClusterPeerHit: a scenario solved on its ring owner is served to the
// other node over the internal API — checksum-verified, byte-identical,
// no local assembly.
func TestClusterPeerHit(t *testing.T) {
	srvs, hts, _ := startFleet(t, 2, func(int) Config { return Config{MaxConcurrent: 2} })
	a, b := srvs[0], srvs[1]
	tsA, tsB := hts[0], hts[1]

	body, _, _ := scenarioOwnedBy(t, a, "node1", 20)
	code, _, owned := post(t, context.Background(), tsB.URL, "/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("owner solve: status %d: %s", code, owned)
	}

	code, hdr, fetched := post(t, context.Background(), tsA.URL, "/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("peer-served solve: status %d: %s", code, fetched)
	}
	if got := hdr.Get("X-Groundd-Cache"); got != "hit" {
		t.Errorf("peer serve disposition = %q, want hit", got)
	}
	if got := hdr.Get("X-Groundd-Cache-Tier"); got != tierPeer {
		t.Errorf("peer serve tier = %q, want %q", got, tierPeer)
	}
	if !bytes.Equal(owned, fetched) {
		t.Errorf("peer-served body differs from the owner's:\n%s\n%s", owned, fetched)
	}
	if n := a.Counters().Assemblies.Load(); n != 0 {
		t.Errorf("requester assemblies = %d, want 0 (the owner solved it)", n)
	}
	if n := a.Counters().PeerHits.Load(); n != 1 {
		t.Errorf("peerHits = %d, want 1", n)
	}
	if n := b.Counters().Assemblies.Load(); n != 1 {
		t.Errorf("owner assemblies = %d, want 1", n)
	}
}

// TestClusterOwnerMissFallback: a healthy owner that has never solved the
// scenario answers a clean 404; the requester solves locally with no breaker
// penalty and no retry.
func TestClusterOwnerMissFallback(t *testing.T) {
	srvs, hts, _ := startFleet(t, 2, func(int) Config { return Config{MaxConcurrent: 2} })
	a := srvs[0]

	body, _, _ := scenarioOwnedBy(t, a, "node1", 20)
	code, hdr, got := post(t, context.Background(), hts[0].URL, "/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("solve: status %d: %s", code, got)
	}
	if hdr.Get("X-Groundd-Cache") != "miss" || hdr.Get("X-Groundd-Cache-Tier") != tierSolve {
		t.Errorf("clean owner miss should fall to a local cold solve, got %q/%q",
			hdr.Get("X-Groundd-Cache"), hdr.Get("X-Groundd-Cache-Tier"))
	}
	if n := a.Counters().Assemblies.Load(); n != 1 {
		t.Errorf("assemblies = %d, want 1", n)
	}
	if n := a.Counters().PeerFallbacks.Load(); n != 0 {
		t.Errorf("peerFallbacks = %d on a clean miss, want 0", n)
	}
	if n := a.Counters().PeerPoisoned.Load(); n != 0 {
		t.Errorf("peerPoisoned = %d, want 0", n)
	}
	if n := a.fleet.openBreakers(); n != 0 {
		t.Errorf("open breakers = %d after a clean miss, want 0", n)
	}
}

// sweepVariantsOwnedBy searches uniform-soil conductivity variants of the
// width-20 fast grid until n of them route to the wanted ring owner.
func sweepVariantsOwnedBy(t *testing.T, s *Server, owner string, n int) []SoilSpec {
	t.Helper()
	var out []SoilSpec
	for g := 0.0125; len(out) < n && g < 0.0525; g += 0.0001 {
		sc := Scenario{
			Grid: GridSpec{Rect: &RectSpec{
				Width: 20, Height: 20, NX: 4, NY: 4, Depth: 0.8, Radius: 0.006,
			}},
			Soil:      SoilSpec{Kind: "uniform", Gamma1: g},
			SeriesTol: 1e-3,
		}
		b, err := sc.build(0)
		if err != nil {
			t.Fatal(err)
		}
		if s.fleet.ring.Owner(b.key) == owner {
			out = append(out, sc.Soil)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d of %d variants owned by %s", len(out), n, owner)
	}
	return out
}

// solutionFields strips a sweep's NDJSON output down to its deterministic
// solution content (drops the per-run timing fields), keyed by line index.
func solutionFields(t *testing.T, out []byte) map[int]SweepLine {
	t.Helper()
	lines := make(map[int]SweepLine)
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		var sl SweepLine
		if err := json.Unmarshal([]byte(line), &sl); err != nil {
			t.Fatalf("bad sweep line %q: %v", line, err)
		}
		if sl.Error != "" {
			t.Errorf("sweep line %d failed: %s", sl.Index, sl.Error)
		}
		sl.AssembleMs, sl.SolveMs, sl.WallMs, sl.Cache = 0, 0, 0, ""
		lines[sl.Index] = sl
	}
	return lines
}

// TestChaosClusterPeerDeathMidSweep kills the owning node, then drives a
// sweep whose scenarios all route to the corpse: every peer consult times
// out or is breaker-denied mid-sweep, every line still succeeds as a local
// solve, the dead peer's breaker opens, and both the sweep solutions and
// subsequent solve bodies are bit-identical to a single-node control run.
func TestChaosClusterPeerDeathMidSweep(t *testing.T) {
	srvs, hts, _ := startFleet(t, 2, func(int) Config { return Config{MaxConcurrent: 4} })
	a := srvs[0]

	// A standalone control node: the answers a healthy solo groundd serves.
	_, control := newTestServer(t, Config{MaxConcurrent: 4})

	soils := sweepVariantsOwnedBy(t, a, "node1", 3)
	var specs []string
	for _, soil := range soils {
		specs = append(specs, fmt.Sprintf(`{"soil": {"kind": "uniform", "gamma1": %g}}`, soil.Gamma1))
	}
	sweep := fmt.Sprintf(`{
		"grid": {"rect": {"width": 20, "height": 20, "nx": 4, "ny": 4, "depth": 0.8, "radius": 0.006}},
		"seriesTol": 1e-3, "gpr": 10000,
		"scenarios": [%s]
	}`, strings.Join(specs, ","))

	// Node death: the owner disappears before the burst it owns.
	hts[1].Close()

	code, _, out := post(t, context.Background(), hts[0].URL, "/v1/sweep", sweep)
	if code != http.StatusOK {
		t.Fatalf("sweep against dead owner: status %d: %s", code, out)
	}
	code, _, ref := post(t, context.Background(), control.URL, "/v1/sweep", sweep)
	if code != http.StatusOK {
		t.Fatalf("control sweep: status %d", code)
	}
	got, want := solutionFields(t, out), solutionFields(t, ref)
	if len(got) != len(soils) {
		t.Fatalf("sweep produced %d lines, want %d", len(got), len(soils))
	}
	for i, w := range want {
		if g := got[i]; !reflect.DeepEqual(g, w) {
			t.Errorf("sweep line %d solution differs from single-node control:\ngot  %+v\nwant %+v", i, g, w)
		}
	}
	if n := a.Counters().PeerFallbacks.Load(); n == 0 {
		t.Error("peerFallbacks = 0 after a dead owner, want > 0")
	}
	if n := a.fleet.openBreakers(); n != 1 {
		t.Errorf("open breakers = %d after repeated peer failures, want 1", n)
	}

	// Solves owned by the corpse keep degrading to bit-identical local
	// answers while the breaker holds the route closed.
	body, _, _ := scenarioOwnedBy(t, a, "node1", 20)
	code, _, refBody := post(t, context.Background(), control.URL, "/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("control solve: status %d", code)
	}
	code, hdr, gotBody := post(t, context.Background(), hts[0].URL, "/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("solve against dead owner: status %d: %s", code, gotBody)
	}
	if hdr.Get("X-Groundd-Cache-Tier") != tierSolve {
		t.Errorf("tier = %q, want local solve", hdr.Get("X-Groundd-Cache-Tier"))
	}
	if !bytes.Equal(refBody, gotBody) {
		t.Errorf("degraded body differs from single-node control:\n%s\n%s", refBody, gotBody)
	}
}

// TestChaosClusterPoisonedPeer: an owner answering with corrupted bytes is
// detected by checksum verification, quarantined on the spot, and recovered
// by the half-open prober once it behaves again — with every response along
// the way still correct.
func TestChaosClusterPoisonedPeer(t *testing.T) {
	srvs, hts, _ := startFleet(t, 2, func(int) Config { return Config{MaxConcurrent: 2} })
	a := srvs[0]
	tsA, tsB := hts[0], hts[1]

	body, _, width := scenarioOwnedBy(t, a, "node1", 20)
	code, _, owned := post(t, context.Background(), tsB.URL, "/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("owner solve: status %d", code)
	}

	// Poison the owner's wire responses.
	restore := faultinject.Set(faultinject.ClusterPeerRespond, faultinject.PoisonNaN())

	code, hdr, got := post(t, context.Background(), tsA.URL, "/v1/solve", body)
	if code != http.StatusOK {
		t.Fatalf("solve via poisoned owner: status %d: %s", code, got)
	}
	if hdr.Get("X-Groundd-Cache-Tier") != tierSolve {
		t.Errorf("poisoned fetch should degrade to a local solve, got tier %q",
			hdr.Get("X-Groundd-Cache-Tier"))
	}
	if !bytes.Equal(owned, got) {
		t.Errorf("degraded body differs from the owner's healthy solve")
	}
	if n := a.Counters().PeerPoisoned.Load(); n != 1 {
		t.Errorf("peerPoisoned = %d, want 1", n)
	}
	if n := a.fleet.openBreakers(); n != 1 {
		t.Errorf("open breakers = %d after poison, want 1 (instant quarantine)", n)
	}

	// The owner heals; the prober must notice and close the breaker.
	restore()
	deadline := time.Now().Add(5 * time.Second)
	for a.fleet.openBreakers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered via half-open probe")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Back in service: a fresh scenario owned by node1 serves over the peer
	// tier again.
	body2, _, _ := scenarioOwnedBy(t, a, "node1", width)
	if code, _, _ := post(t, context.Background(), tsB.URL, "/v1/solve", body2); code != http.StatusOK {
		t.Fatalf("owner solve 2: status %d", code)
	}
	code, hdr, _ = post(t, context.Background(), tsA.URL, "/v1/solve", body2)
	if code != http.StatusOK || hdr.Get("X-Groundd-Cache-Tier") != tierPeer {
		t.Errorf("post-recovery solve = %d tier %q, want 200 via peer tier",
			code, hdr.Get("X-Groundd-Cache-Tier"))
	}
}

// TestChaosStoreDiskFullWrites: every disk append fails (ENOSPC), yet
// requests keep succeeding — the record survives in memory, the failure is
// counted, and nothing blocks.
func TestChaosStoreDiskFullWrites(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer faultinject.Set(faultinject.StoreWrite, faultinject.PoisonNaN())()

	s := New(Config{MaxConcurrent: 2, Store: st})
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	waitReady(t, ts.URL, 2*time.Second)

	code, _, first := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusOK {
		t.Fatalf("solve with full disk: status %d: %s", code, first)
	}
	st.Flush()
	if stats := st.Stats(); stats.WriteErrors == 0 {
		t.Errorf("writeErrors = 0 with every disk append failing, want > 0")
	}
	// The in-memory index still serves the record (e.g. to peers).
	if _, ok := st.Lookup(scenarioKeyOf(t, 20)); !ok {
		t.Error("record lost from the in-memory index on disk-write failure")
	}
	code, hdr, warm := post(t, context.Background(), ts.URL, "/v1/solve", fastScenario(20, 10_000))
	if code != http.StatusOK || hdr.Get("X-Groundd-Cache") != "hit" {
		t.Errorf("repeat solve = %d %q, want 200 hit", code, hdr.Get("X-Groundd-Cache"))
	}
	if !bytes.Equal(first, warm) {
		t.Error("repeat body differs under disk-write failures")
	}
}

// scenarioKeyOf computes the canonical key of fastScenario(width, ·).
func scenarioKeyOf(t *testing.T, width float64) string {
	t.Helper()
	sc := Scenario{
		Grid: GridSpec{Rect: &RectSpec{
			Width: width, Height: 20, NX: 4, NY: 4, Depth: 0.8, Radius: 0.006,
		}},
		Soil:      SoilSpec{Kind: "uniform", Gamma1: 0.0125},
		SeriesTol: 1e-3,
	}
	b, err := sc.build(0)
	if err != nil {
		t.Fatal(err)
	}
	return b.key
}

// TestCacheByteEviction pins the resident-byte accounting: inserts charge the
// footprint estimate, evictions refund it exactly, and an entry larger than
// the whole budget is never admitted.
func TestCacheByteEviction(t *testing.T) {
	// nil results carry the fixed 256-byte floor, making arithmetic exact.
	c := newLRUCache(10, 600)
	c.put("a", nil)
	c.put("b", nil)
	if got := c.bytes(); got != 512 {
		t.Fatalf("resident = %d after two inserts, want 512", got)
	}
	c.put("c", nil) // 768 > 600: evicts the LRU entry "a"
	if got := c.bytes(); got != 512 {
		t.Errorf("resident = %d after byte-bound eviction, want 512", got)
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
	if _, ok := c.get("a"); ok {
		t.Error("LRU entry survived the byte bound")
	}
	// Refreshing an entry must not double-charge.
	c.put("b", nil)
	if got := c.bytes(); got != 512 {
		t.Errorf("resident = %d after refresh, want 512 (no double charge)", got)
	}
	// An entry bigger than the whole budget is refused outright.
	tiny := newLRUCache(10, 100)
	tiny.put("x", nil)
	if tiny.len() != 0 || tiny.bytes() != 0 {
		t.Errorf("oversized entry admitted: len=%d bytes=%d", tiny.len(), tiny.bytes())
	}
}

// TestServerCloseIdempotent: Close is safe to call twice and stops the
// background goroutines (the -race runs of this file double as the leak
// check — a live prober or replay goroutine would trip the test runner).
func TestServerCloseIdempotent(t *testing.T) {
	hts := httptest.NewUnstartedServer(http.NotFoundHandler())
	t.Cleanup(hts.Close)
	members := []cluster.Member{
		{ID: "node0"},
		{ID: "node1", URL: "http://" + hts.Listener.Addr().String()},
	}
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewFleet(Config{Store: st, Fleet: fastFleetConfig("node0", members)})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}
