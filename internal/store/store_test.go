package store

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"earthing/internal/faultinject"
)

func resetFaults(t *testing.T) {
	t.Helper()
	t.Cleanup(faultinject.Reset)
}

func testRecord(key string, n int) Record {
	sigma := make([]float64, n)
	for i := range sigma {
		sigma[i] = 1.5*float64(i) + 0.125
	}
	return Record{Key: key, Meta: []byte(`{"grid":"demo"}`), Sigma: sigma}
}

// TestCodecRoundTrip: Encode → Decode reproduces the record bit-exactly,
// including non-finite and denormal sigma values.
func TestCodecRoundTrip(t *testing.T) {
	rec := Record{
		Key:  "abcdef0123456789",
		Meta: []byte("meta blob"),
		Sigma: []float64{
			0, 1, -1, math.Pi, math.Inf(1), math.Inf(-1), math.NaN(),
			math.SmallestNonzeroFloat64, -math.MaxFloat64,
		},
	}
	enc, err := Encode(nil, rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != EncodedLen(rec) {
		t.Errorf("encoded length %d, want %d", len(enc), EncodedLen(rec))
	}
	got, n, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(enc) {
		t.Errorf("consumed %d bytes, want %d", n, len(enc))
	}
	if got.Key != rec.Key || !bytes.Equal(got.Meta, rec.Meta) {
		t.Errorf("key/meta mismatch: %+v", got)
	}
	if len(got.Sigma) != len(rec.Sigma) {
		t.Fatalf("sigma length %d, want %d", len(got.Sigma), len(rec.Sigma))
	}
	for i := range rec.Sigma {
		if math.Float64bits(got.Sigma[i]) != math.Float64bits(rec.Sigma[i]) {
			t.Errorf("sigma[%d] = %x, want %x (bit-exact)", i,
				math.Float64bits(got.Sigma[i]), math.Float64bits(rec.Sigma[i]))
		}
	}
}

// TestAppendFlushReplay: records appended in one store generation are
// replayed by the next, bit-exactly, and dedup keeps a repeated key single.
func TestAppendFlushReplay(t *testing.T) {
	resetFaults(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Replay(); err != nil {
		t.Fatal(err)
	}
	r1, r2 := testRecord("key-1", 8), testRecord("key-2", 3)
	for _, r := range []Record{r1, r2, r1} { // the duplicate must not double up
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if st := s.Stats(); st.Records != 2 || st.Appends != 2 || st.WriteErrors != 0 {
		t.Errorf("stats after append = %+v, want 2 records / 2 appends", st)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Replay(); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.Records != 2 || st.SkippedRecords != 0 {
		t.Errorf("stats after replay = %+v, want 2 records / 0 skipped", st)
	}
	got, ok := s2.Lookup("key-1")
	if !ok {
		t.Fatal("key-1 missing after replay")
	}
	for i := range r1.Sigma {
		if math.Float64bits(got.Sigma[i]) != math.Float64bits(r1.Sigma[i]) {
			t.Fatalf("replayed sigma[%d] differs", i)
		}
	}
	if _, ok := s2.Lookup("key-2"); !ok {
		t.Error("key-2 missing after replay")
	}
	if _, ok := s2.Lookup("absent"); ok {
		t.Error("lookup of absent key reported present")
	}
}

// TestSegmentRotation: a tiny segment cap forces rotation; every record
// still replays and old segments are left untouched.
func TestSegmentRotation(t *testing.T) {
	resetFaults(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.Append(testRecord(string(rune('a'+i))+"-key", 6)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) < 3 {
		t.Fatalf("got %d segments, want rotation to have produced several", len(segs))
	}

	s2, err := Open(dir, Options{MaxSegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Replay(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Len(); got != n {
		t.Errorf("replayed %d records across segments, want %d", got, n)
	}
}

// corruptStore writes a one-record store to dir and then applies damage.
func corruptStore(t *testing.T, dir string, damage func(t *testing.T, seg string)) {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(testRecord("victim", 12)); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if len(segs) == 0 {
		t.Fatal("no segment written")
	}
	damage(t, segs[len(segs)-1])
}

// TestReplayCorruption is the corruption table: truncated tail, bit-flipped
// checksum and a zero-length segment each warm-start cleanly — skipped
// records counted where there was something to skip, never a panic.
func TestReplayCorruption(t *testing.T) {
	cases := []struct {
		name        string
		damage      func(t *testing.T, seg string)
		wantRecords int
		wantSkipped int64
	}{
		{
			name: "truncated tail",
			damage: func(t *testing.T, seg string) {
				data, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(seg, data[:len(data)-5], 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: 0, wantSkipped: 1,
		},
		{
			name: "bit-flipped checksum",
			damage: func(t *testing.T, seg string) {
				data, err := os.ReadFile(seg)
				if err != nil {
					t.Fatal(err)
				}
				data[len(data)-1] ^= 0x01 // flip a payload bit; CRC now disagrees
				if err := os.WriteFile(seg, data, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: 0, wantSkipped: 1,
		},
		{
			name: "zero-length segment",
			damage: func(t *testing.T, seg string) {
				if err := os.WriteFile(seg, nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: 0, wantSkipped: 0,
		},
		{
			name: "garbage header",
			damage: func(t *testing.T, seg string) {
				if err := os.WriteFile(seg, []byte("not a segment at all"), 0o644); err != nil {
					t.Fatal(err)
				}
			},
			wantRecords: 0, wantSkipped: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resetFaults(t)
			dir := t.TempDir()
			corruptStore(t, dir, tc.damage)
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("warm start after %s: %v", tc.name, err)
			}
			defer s.Close()
			if err := s.Replay(); err != nil {
				t.Fatalf("replay after %s: %v", tc.name, err)
			}
			st := s.Stats()
			if st.Records != tc.wantRecords || st.SkippedRecords != tc.wantSkipped {
				t.Errorf("stats = %+v, want %d records / %d skipped",
					st, tc.wantRecords, tc.wantSkipped)
			}
			// The store keeps working after damage: a fresh append survives.
			if err := s.Append(testRecord("fresh", 4)); err != nil {
				t.Fatal(err)
			}
			s.Flush()
			if _, ok := s.Lookup("fresh"); !ok {
				t.Error("append after corrupt replay not visible")
			}
		})
	}
}

// TestReplayCorruptTailKeepsPrefix: damage mid-segment loses the tail but
// keeps every record before it.
func TestReplayCorruptTailKeepsPrefix(t *testing.T) {
	resetFaults(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"first", "second", "third"} {
		if err := s.Append(testRecord(k, 5)); err != nil {
			t.Fatal(err)
		}
	}
	s.Flush()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	data, err := os.ReadFile(segs[len(segs)-1])
	if err != nil {
		t.Fatal(err)
	}
	// Cut into the last record's frame.
	if err := os.WriteFile(segs[len(segs)-1], data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.Replay(); err != nil {
		t.Fatal(err)
	}
	st := s2.Stats()
	if st.Records != 2 || st.SkippedRecords != 1 {
		t.Errorf("stats = %+v, want the 2 intact records and 1 skipped tail", st)
	}
	for _, k := range []string{"first", "second"} {
		if _, ok := s2.Lookup(k); !ok {
			t.Errorf("intact record %q lost with the tail", k)
		}
	}
}

// TestWriteFaultInjection: a poisoned store.write (simulated ENOSPC) and a
// panicking one are both absorbed into WriteErrors; the in-memory index
// keeps serving and later writes proceed.
func TestWriteFaultInjection(t *testing.T) {
	resetFaults(t)
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	restore := faultinject.Set(faultinject.StoreWrite, faultinject.PoisonNaN())
	if err := s.Append(testRecord("poisoned-write", 4)); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	restore()
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Errorf("writeErrors = %d after poisoned write, want 1", st.WriteErrors)
	}
	if _, ok := s.Lookup("poisoned-write"); !ok {
		t.Error("record lost from memory index on disk-full")
	}

	restore = faultinject.Set(faultinject.StoreWrite, faultinject.Once(faultinject.Panic("disk exploded")))
	if err := s.Append(testRecord("panicked-write", 4)); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	restore()
	if st := s.Stats(); st.WriteErrors != 2 {
		t.Errorf("writeErrors = %d after panicking write, want 2", st.WriteErrors)
	}

	// Clean writes still land on disk afterwards.
	if err := s.Append(testRecord("clean", 4)); err != nil {
		t.Fatal(err)
	}
	s.Flush()
	if st := s.Stats(); st.WriteErrors != 2 {
		t.Errorf("writeErrors moved on a clean write: %+v", st)
	}
}

// TestEncodeRejectsOutOfRange: caller bugs surface as errors, not frames
// that would poison the log.
func TestEncodeRejectsOutOfRange(t *testing.T) {
	if _, err := Encode(nil, Record{Key: ""}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := Encode(nil, Record{Key: string(make([]byte, maxKeyLen+1))}); err == nil {
		t.Error("oversized key accepted")
	}
}
