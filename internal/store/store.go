// Package store is groundd's durable scenario store: a content-addressed,
// append-only snapshot of solved unit-GPR systems keyed by the server's
// SHA-256 scenario keys. The paper's economics motivate it directly — matrix
// generation dominates a request (~99.9 %, Table 6.1), so the most expensive
// thing a redeploy can do is forget solves it already paid for. With the
// store, a restarted node replays its snapshot index and serves repeat
// scenarios as cache hits instead of cold-starting.
//
// Design:
//
//   - Records are CRC-framed (codec.go) and appended to numbered segment
//     files. A segment is never modified after rotation, and every process
//     start opens a fresh segment, so pre-existing data is read-only.
//   - Replay is skip-and-count: a truncated or bit-flipped tail aborts that
//     segment with the SkippedRecords counter bumped — never a panic, never
//     a failed startup. Durability is a cache property here, not a ledger
//     property; correctness always has the local solve to fall back on.
//   - Writes are write-behind: Append inserts into the in-memory index
//     synchronously (so peers and later requests see it immediately) and
//     queues the disk append to a single writer goroutine. The hot path
//     never blocks on disk; a full queue drops the disk copy and counts it.
//
// Fault injection: the write loop fires faultinject.StoreWrite per record
// (poison ⇒ simulated disk-full, panic ⇒ recovered and counted) and Replay
// fires faultinject.StoreRead per decoded record (delay ⇒ a deterministic
// mid-replay window for readiness tests).
package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"earthing/internal/faultinject"
)

// segment file naming and header.
const (
	segPrefix = "seg-"
	segSuffix = ".log"
)

var segMagic = []byte("GDSTOR1\n")

// Options tunes a Store. The zero value rotates segments at 64 MiB with a
// 256-record write-behind queue.
type Options struct {
	// MaxSegmentBytes rotates the active segment when it would exceed this
	// size (default 64 MiB).
	MaxSegmentBytes int64
	// QueueDepth bounds the write-behind queue (default 256); beyond it the
	// disk copy of an append is dropped and counted, never blocked on.
	QueueDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 64 << 20
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 256
	}
	return o
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	// Records is the in-memory index size (replayed + appended this run).
	Records int
	// SkippedRecords counts corrupt or truncated tail events replay skipped.
	SkippedRecords int64
	// DroppedWrites counts appends whose disk copy was dropped because the
	// write-behind queue was full.
	DroppedWrites int64
	// WriteErrors counts disk appends that failed (or were failed by fault
	// injection); the record survives in memory only.
	WriteErrors int64
	// Appends counts records accepted into the index this run.
	Appends int64
}

// Store is a durable scenario store. Create with Open, load pre-existing
// segments with Replay, and Close when done. All methods are safe for
// concurrent use.
type Store struct {
	dir string
	opt Options

	mu    sync.RWMutex
	index map[string][]byte // key → encoded frame, immutable once inserted

	// replayFiles is the read-only segment set found at Open, consumed by
	// Replay exactly once.
	replayFiles []string
	replayOnce  sync.Once

	// Writer state, owned by the write-behind goroutine after Open.
	active     *os.File
	activeSize int64
	activeSeq  int

	queue   chan []byte
	flushCh chan chan struct{}
	done    chan struct{}
	wg      sync.WaitGroup

	skipped   atomic.Int64
	dropped   atomic.Int64
	writeErrs atomic.Int64
	appends   atomic.Int64
}

// Open prepares the store directory: existing segments are recorded for
// Replay (not read yet), a fresh segment is created for this run's appends —
// a prior torn tail can therefore never corrupt new data — and the
// write-behind goroutine starts. Open is cheap; the disk scan happens in
// Replay so servers can gate readiness on it explicitly.
func Open(dir string, opt Options) (*Store, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	names, err := filepath.Glob(filepath.Join(dir, segPrefix+"*"+segSuffix))
	if err != nil {
		return nil, fmt.Errorf("store: list segments: %w", err)
	}
	sort.Strings(names)
	maxSeq := 0
	for _, n := range names {
		var seq int
		if _, err := fmt.Sscanf(filepath.Base(n), segPrefix+"%06d"+segSuffix, &seq); err == nil && seq > maxSeq {
			maxSeq = seq
		}
	}
	s := &Store{
		dir:         dir,
		opt:         opt,
		index:       make(map[string][]byte),
		replayFiles: names,
		activeSeq:   maxSeq,
		queue:       make(chan []byte, opt.QueueDepth),
		flushCh:     make(chan chan struct{}),
		done:        make(chan struct{}),
	}
	if err := s.rotate(); err != nil {
		return nil, err
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.writeLoop()
	}()
	return s, nil
}

// rotate atomically creates the next segment (header written and synced
// under a temp name, then renamed into place) and makes it the active one.
// Called by Open and then only by the writer goroutine.
func (s *Store) rotate() error {
	if s.active != nil {
		//lint:ignore errdrop best-effort sync of a finished segment; replay tolerates a torn tail
		s.active.Sync()
		//lint:ignore errdrop the handle is abandoned either way
		s.active.Close()
	}
	s.activeSeq++
	final := filepath.Join(s.dir, fmt.Sprintf("%s%06d%s", segPrefix, s.activeSeq, segSuffix))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: create segment: %w", err)
	}
	if _, err := f.Write(segMagic); err != nil {
		//lint:ignore errdrop the create already failed; report that
		f.Close()
		return fmt.Errorf("store: write segment header: %w", err)
	}
	if err := f.Sync(); err != nil {
		//lint:ignore errdrop the sync already failed; report that
		f.Close()
		return fmt.Errorf("store: sync segment header: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		//lint:ignore errdrop the rename already failed; report that
		f.Close()
		return fmt.Errorf("store: publish segment: %w", err)
	}
	s.active = f
	s.activeSize = int64(len(segMagic))
	return nil
}

// Replay scans the segments that existed at Open into the index, skipping
// and counting corrupt or truncated tails. Records appended after Open win
// over replayed ones (they are newer). Replay returns only directory-level
// I/O failures; data damage is always absorbed into SkippedRecords. It runs
// at most once.
func (s *Store) Replay() error {
	var err error
	s.replayOnce.Do(func() { err = s.replay() })
	return err
}

func (s *Store) replay() error {
	ord := 0
	scratch := make([]float64, 1)
	for _, name := range s.replayFiles {
		data, err := os.ReadFile(name)
		if err != nil {
			return fmt.Errorf("store: replay %s: %w", name, err)
		}
		if len(data) == 0 {
			// A segment created but never written (crash between create and
			// header sync): nothing in it to skip.
			continue
		}
		if !bytes.HasPrefix(data, segMagic) {
			s.skipped.Add(1)
			continue
		}
		rest := data[len(segMagic):]
		off := 0
		for off < len(rest) {
			rec, n, derr := Decode(rest[off:])
			if derr != nil {
				// Torn or corrupted tail: everything from here on in this
				// segment is untrustworthy. Skip it, count it, move on.
				s.skipped.Add(1)
				break
			}
			frame := append([]byte(nil), rest[off:off+n]...)
			off += n
			scratch[0] = 0
			faultinject.Fire(faultinject.StoreRead, ord, scratch)
			ord++
			s.mu.Lock()
			if _, ok := s.index[rec.Key]; !ok {
				s.index[rec.Key] = frame
			}
			s.mu.Unlock()
		}
	}
	return nil
}

// Lookup decodes the stored record for key, if present.
func (s *Store) Lookup(key string) (Record, bool) {
	enc, ok := s.EncodedLookup(key)
	if !ok {
		return Record{}, false
	}
	rec, _, err := Decode(enc)
	if err != nil {
		// An index entry is written by Encode and never mutated; a decode
		// failure here means memory corruption — treat as absent.
		return Record{}, false
	}
	return rec, true
}

// EncodedLookup returns the encoded frame for key. The returned slice is the
// store's own copy and must not be mutated; it is what peer handlers put on
// the wire, so the CRC computed at append time travels end-to-end.
func (s *Store) EncodedLookup(key string) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc, ok := s.index[key]
	return enc, ok
}

// Len reports the index size.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Append accepts a record: it is inserted into the in-memory index
// synchronously (deduplicated on key — the key is content-addressed, so a
// duplicate is byte-identical by construction) and its disk append is queued
// to the write-behind goroutine. Append never blocks on disk; when the queue
// is full the disk copy is dropped and counted.
func (s *Store) Append(rec Record) error {
	enc, err := Encode(nil, rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.index[rec.Key]; ok {
		s.mu.Unlock()
		return nil
	}
	s.index[rec.Key] = enc
	s.mu.Unlock()
	s.appends.Add(1)
	select {
	case s.queue <- enc:
	default:
		s.dropped.Add(1)
	}
	return nil
}

// Flush blocks until every append queued so far has been handed to the
// filesystem (a test and shutdown aid; production writes stay behind).
func (s *Store) Flush() {
	ack := make(chan struct{})
	select {
	case s.flushCh <- ack:
		<-ack
	case <-s.done:
	}
}

// Close drains the queue, syncs and closes the active segment, and stops the
// writer goroutine. The store must not be used afterwards.
func (s *Store) Close() error {
	select {
	case <-s.done:
		return nil
	default:
	}
	close(s.done)
	s.wg.Wait()
	if err := s.active.Sync(); err != nil {
		//lint:ignore errdrop close still has to run; the sync error wins
		s.active.Close()
		return fmt.Errorf("store: close: %w", err)
	}
	return s.active.Close()
}

// Stats snapshots the counters.
func (s *Store) Stats() Stats {
	return Stats{
		Records:        s.Len(),
		SkippedRecords: s.skipped.Load(),
		DroppedWrites:  s.dropped.Load(),
		WriteErrors:    s.writeErrs.Load(),
		Appends:        s.appends.Load(),
	}
}

// writeLoop is the write-behind goroutine: it owns the active segment and
// serializes all disk appends, so the request path never touches a file.
func (s *Store) writeLoop() {
	ord := 0
	for {
		select {
		case enc := <-s.queue:
			s.writeFrame(enc, &ord)
		case ack := <-s.flushCh:
			s.drainQueue(&ord)
			close(ack)
		case <-s.done:
			s.drainQueue(&ord)
			return
		}
	}
}

// drainQueue writes everything currently queued without blocking.
func (s *Store) drainQueue(ord *int) {
	for {
		select {
		case enc := <-s.queue:
			s.writeFrame(enc, ord)
		default:
			return
		}
	}
}

// writeFrame appends one encoded record to the active segment, rotating
// first when it would overflow. Failures — real ENOSPC, an injected poison,
// even an injected panic — are absorbed into WriteErrors: a lost disk copy
// costs warm-start coverage, never a request.
func (s *Store) writeFrame(enc []byte, ord *int) {
	defer func() {
		if v := recover(); v != nil {
			s.writeErrs.Add(1)
		}
	}()
	scratch := []float64{0}
	faultinject.Fire(faultinject.StoreWrite, *ord, scratch)
	*ord++
	if scratch[0] != 0 {
		// Injected disk-full: behave exactly as a failed write would.
		s.writeErrs.Add(1)
		return
	}
	if s.activeSize+int64(len(enc)) > s.opt.MaxSegmentBytes && s.activeSize > int64(len(segMagic)) {
		if err := s.rotate(); err != nil {
			s.writeErrs.Add(1)
			return
		}
	}
	n, err := s.active.Write(enc)
	s.activeSize += int64(n)
	if err != nil {
		s.writeErrs.Add(1)
	}
}
