package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Record is one durable scenario entry: the content-addressed key the server
// derived from the scenario inputs, an opaque metadata blob (the server
// stores the canonical grid text, soil spec and discretization knobs — what
// it needs to rebuild mesh and assembler), and the solved unit-GPR leakage
// density. Sigma is stored bit-exactly (raw IEEE-754 little-endian), which
// is what makes a warm-started response byte-identical to the original.
type Record struct {
	Key   string
	Meta  []byte
	Sigma []float64
}

// Frame layout, little-endian:
//
//	u32 payloadLen | u32 crc32c(payload) | payload
//	payload = u16 keyLen | key | u32 metaLen | meta | u32 nSigma | nSigma × f64
//
// The CRC is computed over the payload only; a truncated or bit-flipped
// record fails structurally or on the checksum, never by panicking, so a
// damaged segment tail degrades to "skip and count" on replay.
const (
	frameHeaderLen = 8
	maxKeyLen      = 1 << 10
	maxMetaLen     = 16 << 20
	maxSigmaLen    = 1 << 26 // 64 Mi entries ≈ 512 MiB, far above any real system
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports a record that failed structural validation or its
// checksum. Callers distinguish it from io errors to drive the
// skip-and-count replay policy and the poisoned-peer quarantine.
var ErrCorrupt = errors.New("store: corrupt record")

// ErrShort reports a frame whose declared payload extends past the available
// bytes — the signature of a torn tail write.
var ErrShort = errors.New("store: truncated record")

// EncodedLen returns the full frame size of r.
func EncodedLen(r Record) int {
	return frameHeaderLen + payloadLen(r)
}

func payloadLen(r Record) int {
	return 2 + len(r.Key) + 4 + len(r.Meta) + 4 + 8*len(r.Sigma)
}

// Encode appends the framed record to dst and returns the extended slice.
// It fails only on out-of-range field sizes, which indicate a caller bug.
func Encode(dst []byte, r Record) ([]byte, error) {
	if len(r.Key) == 0 || len(r.Key) > maxKeyLen {
		return dst, fmt.Errorf("store: key length %d out of range (0, %d]", len(r.Key), maxKeyLen)
	}
	if len(r.Meta) > maxMetaLen {
		return dst, fmt.Errorf("store: meta length %d exceeds %d", len(r.Meta), maxMetaLen)
	}
	if len(r.Sigma) > maxSigmaLen {
		return dst, fmt.Errorf("store: sigma length %d exceeds %d", len(r.Sigma), maxSigmaLen)
	}
	plen := payloadLen(r)
	start := len(dst)
	dst = append(dst, make([]byte, frameHeaderLen+plen)...)
	p := dst[start+frameHeaderLen:]
	binary.LittleEndian.PutUint16(p, uint16(len(r.Key)))
	copy(p[2:], r.Key)
	off := 2 + len(r.Key)
	binary.LittleEndian.PutUint32(p[off:], uint32(len(r.Meta)))
	copy(p[off+4:], r.Meta)
	off += 4 + len(r.Meta)
	binary.LittleEndian.PutUint32(p[off:], uint32(len(r.Sigma)))
	off += 4
	for _, v := range r.Sigma {
		binary.LittleEndian.PutUint64(p[off:], math.Float64bits(v))
		off += 8
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(plen))
	binary.LittleEndian.PutUint32(dst[start+4:], crc32.Checksum(p, crcTable))
	return dst, nil
}

// Decode reads one framed record from the front of b, returning the record
// and the number of bytes consumed. A frame extending past b returns
// ErrShort; any structural or checksum mismatch returns ErrCorrupt. Decode
// never panics on hostile input (FuzzStoreDecode pins this).
func Decode(b []byte) (Record, int, error) {
	var r Record
	if len(b) < frameHeaderLen {
		return r, 0, ErrShort
	}
	plen := int(binary.LittleEndian.Uint32(b))
	if plen < 2+4+4 || plen > frameHeaderLen+maxKeyLen+maxMetaLen+8*maxSigmaLen {
		return r, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, plen)
	}
	if len(b) < frameHeaderLen+plen {
		return r, 0, ErrShort
	}
	p := b[frameHeaderLen : frameHeaderLen+plen]
	if got, want := crc32.Checksum(p, crcTable), binary.LittleEndian.Uint32(b[4:]); got != want {
		return r, 0, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	keyLen := int(binary.LittleEndian.Uint16(p))
	if keyLen == 0 || keyLen > maxKeyLen || 2+keyLen+4 > plen {
		return r, 0, fmt.Errorf("%w: key length %d", ErrCorrupt, keyLen)
	}
	r.Key = string(p[2 : 2+keyLen])
	off := 2 + keyLen
	metaLen := int(binary.LittleEndian.Uint32(p[off:]))
	if metaLen > maxMetaLen || off+4+metaLen+4 > plen {
		return r, 0, fmt.Errorf("%w: meta length %d", ErrCorrupt, metaLen)
	}
	r.Meta = append([]byte(nil), p[off+4:off+4+metaLen]...)
	off += 4 + metaLen
	nSigma := int(binary.LittleEndian.Uint32(p[off:]))
	off += 4
	if nSigma > maxSigmaLen || off+8*nSigma != plen {
		return r, 0, fmt.Errorf("%w: sigma length %d does not fill payload", ErrCorrupt, nSigma)
	}
	r.Sigma = make([]float64, nSigma)
	for i := range r.Sigma {
		r.Sigma[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[off:]))
		off += 8
	}
	return r, frameHeaderLen + plen, nil
}
