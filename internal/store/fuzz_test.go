package store

import (
	"bytes"
	"math"
	"testing"
)

// FuzzStoreDecode fuzzes the record codec both ways: arbitrary bytes must
// never panic Decode (corrupt input yields ErrCorrupt/ErrShort, the
// contract replay's skip-and-count policy rests on), and any frame that
// does decode must re-encode to the identical bytes — the round-trip that
// makes peer transport and disk replay bit-faithful.
func FuzzStoreDecode(f *testing.F) {
	seed := func(r Record) {
		enc, err := Encode(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	seed(Record{Key: "k", Sigma: []float64{1, 2, 3}})
	seed(Record{Key: "0123456789abcdef0123456789abcdef", Meta: []byte(`{"grid":"x"}`),
		Sigma: []float64{math.Pi, math.Inf(1), math.NaN(), 0}})
	seed(Record{Key: "empty-sigma", Meta: []byte{}})
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := Decode(data)
		if err != nil {
			return // corrupt input is the expected outcome; no panic = pass
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("Decode consumed %d of %d bytes", n, len(data))
		}
		enc, err := Encode(nil, rec)
		if err != nil {
			t.Fatalf("decoded record fails to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data[:n]) {
			t.Fatalf("round-trip mismatch:\n got %x\nwant %x", enc, data[:n])
		}
	})
}
