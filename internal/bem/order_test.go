package bem

import (
	"math"
	"testing"

	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/soil"
)

// reqWithOptions assembles and solves a fixed grid with given options.
func reqWithOptions(t *testing.T, opt Options) float64 {
	t.Helper()
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	m, err := grid.Discretize(g, grid.Linear, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(m, soil.NewTwoLayer(0.005, 0.016, 1.0), opt)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := a.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-12})
	if err != nil || !res.Converged {
		t.Fatalf("CG: %v", err)
	}
	return 1 / TotalCurrent(m, res.X)
}

// TestGaussOrderConvergence: raising the outer order converges Req; the
// default near-field refinement already sits close to the converged value.
func TestGaussOrderConvergence(t *testing.T) {
	// A high-order reference.
	ref := reqWithOptions(t, Options{GaussOrder: 16, NearGaussOrder: 16, SeriesTol: 1e-9})

	type cfg struct {
		name string
		opt  Options
	}
	cases := []cfg{
		{"order2-flat", Options{GaussOrder: 2, NearGaussOrder: 2, SeriesTol: 1e-9}},
		{"order4-flat", Options{GaussOrder: 4, NearGaussOrder: 4, SeriesTol: 1e-9}},
		{"order4-near8", Options{GaussOrder: 4, SeriesTol: 1e-9}}, // default refinement
		{"order8-flat", Options{GaussOrder: 8, NearGaussOrder: 8, SeriesTol: 1e-9}},
	}
	errs := map[string]float64{}
	for _, c := range cases {
		req := reqWithOptions(t, c.opt)
		errs[c.name] = math.Abs(req-ref) / ref
	}
	if errs["order4-flat"] > errs["order2-flat"]+1e-9 {
		t.Errorf("order 4 (%v) worse than order 2 (%v)", errs["order4-flat"], errs["order2-flat"])
	}
	if errs["order8-flat"] > errs["order4-flat"]+1e-9 {
		t.Errorf("order 8 (%v) worse than order 4 (%v)", errs["order8-flat"], errs["order4-flat"])
	}
	// Near-field refinement recovers most of the order-8 accuracy at
	// order-4 cost.
	if errs["order4-near8"] > errs["order4-flat"] {
		t.Errorf("near refinement (%v) worse than flat order 4 (%v)",
			errs["order4-near8"], errs["order4-flat"])
	}
	// Everything is within engineering tolerance of the reference anyway.
	for name, e := range errs {
		if e > 0.01 {
			t.Errorf("%s: relative error %v", name, e)
		}
	}
}

// TestNearOrderOptionNormalization: NearGaussOrder below GaussOrder is
// clamped up; zero defaults to 2×.
func TestNearOrderOptionNormalization(t *testing.T) {
	o := Options{GaussOrder: 6, NearGaussOrder: 2}.withDefaults()
	if o.NearGaussOrder != 6 {
		t.Errorf("NearGaussOrder = %d, want clamped 6", o.NearGaussOrder)
	}
	o = Options{GaussOrder: 6}.withDefaults()
	if o.NearGaussOrder != 12 {
		t.Errorf("default NearGaussOrder = %d, want 12", o.NearGaussOrder)
	}
	o = Options{GaussOrder: 12}.withDefaults()
	if o.NearGaussOrder != 16 {
		t.Errorf("capped NearGaussOrder = %d, want 16", o.NearGaussOrder)
	}
}
