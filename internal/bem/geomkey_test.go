package bem

import (
	"math"
	"testing"

	"earthing/internal/grid"
	"earthing/internal/soil"
)

// TestPairGeomKeyCanonicalizes pins the two contracts of the geometric pair
// signature on a uniform lattice: congruent pairs (lattice translates) share
// one key, and every pair sharing a key yields a bitwise-identical elemental
// matrix through PairMatrixQuant — the property the H-matrix geometric cache
// relies on for schedule-independent reuse. It also bounds the quantization
// perturbation: PairMatrixQuant must agree with PairMatrix to well under the
// 1e-9 relative budget the cache documents.
func TestPairGeomKeyCanonicalizes(t *testing.T) {
	g := grid.RectMesh(0, 0, 12, 12, 4, 4, 0.6, 0.01)
	m, err := grid.Discretize(g, grid.Linear, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := New(m, soil.NewTwoLayer(0.02, 0.005, 2.0), Options{Kernel: FlatKernel})
	if err != nil {
		t.Fatal(err)
	}
	cs := asm.NewColumnScratch()
	k := m.DoFCount()
	kk := k * k

	type rep struct {
		beta, alpha int
		mat         []float64
	}
	byKey := make(map[string]rep)
	shared, pairs := 0, 0
	worstRel := 0.0
	exact := make([]float64, kk)
	quant := make([]float64, kk)
	var buf []byte
	n := len(m.Elements)
	for beta := 0; beta < n; beta++ {
		for alpha := 0; alpha <= beta; alpha++ {
			var ok bool
			buf, ok = asm.AppendPairGeomKey(beta, alpha, buf[:0])
			if !ok {
				t.Fatalf("pair (%d,%d): key unsupported on a two-layer flat-kernel assembler", beta, alpha)
			}
			pairs++
			asm.PairMatrixQuant(beta, alpha, quant, cs)

			// Quantized vs exact evaluation: the canonicalization budget.
			asm.PairMatrix(beta, alpha, exact, cs)
			for i := range exact {
				if d := math.Abs(quant[i] - exact[i]); exact[i] != 0 {
					if rel := d / math.Abs(exact[i]); rel > worstRel {
						worstRel = rel
					}
				}
			}

			if prev, seen := byKey[string(buf)]; seen {
				shared++
				for i := range quant {
					if quant[i] != prev.mat[i] {
						t.Fatalf("pairs (%d,%d) and (%d,%d) share a signature but differ at entry %d: %x vs %x",
							beta, alpha, prev.beta, prev.alpha, i, quant[i], prev.mat[i])
					}
				}
			} else {
				byKey[string(buf)] = rep{beta, alpha, append([]float64(nil), quant...)}
			}
		}
	}
	if shared == 0 {
		t.Fatalf("uniform %d-element lattice produced no shared signatures across %d pairs", n, pairs)
	}
	if worstRel > 1e-9 {
		t.Errorf("quantized evaluation perturbs entries by %.3g relative; budget 1e-9", worstRel)
	}
	t.Logf("%d pairs, %d unique signatures (%d shared), worst quantization error %.3g",
		pairs, len(byKey), shared, worstRel)
}

// TestPairGeomKeyUnsupported checks the two refusal paths: an assembler on
// the reference kernel has no flat plan to canonicalize, and a layer pair
// without an image expansion (the quadrature fallback in a 3-layer model)
// cannot be keyed either.
func TestPairGeomKeyUnsupported(t *testing.T) {
	g := grid.RectMesh(0, 0, 8, 8, 2, 2, 0.5, 0.01)
	m, err := grid.Discretize(g, grid.Linear, 3)
	if err != nil {
		t.Fatal(err)
	}

	ref, err := New(m, soil.NewUniform(0.02), Options{Kernel: ReferenceKernel})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ref.AppendPairGeomKey(1, 0, nil); ok {
		t.Error("reference-kernel assembler reported a canonical signature")
	}

	three, err := soil.NewMultiLayer([]float64{0.02, 0.008, 0.03}, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// A MultiLayer model only carries an image expansion for (src, obs) =
	// (1, 1), so rods buried inside layer 2 (z ∈ [2, 5]) force the
	// quadrature fallback for every pair touching them.
	deep := &grid.Grid{}
	for i := 0; i < 3; i++ {
		deep.AddRod(float64(i)*2, 0, 0.5, 1.0, 0.01) // layer 1
		deep.AddRod(float64(i)*2, 3, 2.5, 2.0, 0.01) // layer 2
	}
	dm, err := grid.Discretize(deep, grid.Linear, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := New(dm, three, Options{Kernel: FlatKernel})
	if err != nil {
		t.Fatal(err)
	}
	anyUnsupported := false
	var buf []byte
	for beta := range dm.Elements {
		for alpha := 0; alpha <= beta; alpha++ {
			if _, ok := asm.AppendPairGeomKey(beta, alpha, buf[:0]); !ok {
				anyUnsupported = true
			}
		}
	}
	if !anyUnsupported {
		t.Error("3-layer model keyed every pair; expected quadrature-fallback refusals")
	}
}
