package bem

import (
	"encoding/binary"
	"math"
)

// Geometric pair signatures. Grounding grids are dominated by congruent
// element pairs — a lattice of equal-pitch meshes repeats the same relative
// geometry thousands of times — and the flat kernel consumes a pair only
// through translation-invariant quantities: the horizontal offsets of the
// observation Gauss points from the source origin, the source direction and
// lengths, the absolute depths, and the per-layer image tables. Rounding the
// translation-dependent inputs to geomKeyBits (quantGeom) therefore gives
// every pair a canonical signature; pairMatrixFlatOn evaluated in quant mode
// is an exact function of that signature, so congruent pairs can share one
// elemental matrix regardless of which pair (or worker) computed it first.
// The H-matrix entry generator keys its cross-block cache on this signature;
// the dense assembly path never uses it.

// AppendPairGeomKey appends the canonical geometric signature of the ordered
// element pair (beta, alpha) to dst and reports whether the pair supports
// canonicalized evaluation. It returns ok = false — leaving dst's appended
// content unspecified — when the assembler does not run the flat kernel or
// the layer pair has no image expansion (the quadrature fallback path);
// callers must then evaluate through PairMatrix. Two pairs with equal
// signatures yield bitwise-identical PairMatrixQuant results.
func (a *Assembler) AppendPairGeomKey(beta, alpha int, dst []byte) ([]byte, bool) {
	if a.opt.Kernel != FlatKernel {
		return dst, false
	}
	p := a.Evaluator().plan(a.elemLayer[beta])
	pi := p.byElem[alpha]
	if pi < 0 {
		return dst, false
	}
	pe := &p.elems[pi]
	elA := &a.mesh.Elements[alpha]
	elB := &a.mesh.Elements[beta]
	lenB := elB.Seg.Length()

	// Outer-rule selection mirrors pairMatrixFlat exactly; the chosen rule is
	// the first discriminator of the signature.
	gpPos := a.gpPos[beta]
	rule := uint64(0)
	if beta == alpha ||
		elB.Seg.DistToSegment(elA.Seg) < 0.5*(lenB+elA.Seg.Length()) {
		gpPos = a.gpPosN[beta]
		rule = 1
	}

	dst = binary.LittleEndian.AppendUint64(dst, rule|
		uint64(a.elemLayer[alpha])<<1|uint64(a.elemLayer[beta])<<9|uint64(len(gpPos))<<17)
	// Image-table identity: the per-element image ladder is a pure function
	// of (source layer, observation layer, source depth, source direction z),
	// the layers being in the header word above.
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(elA.Seg.A.Z))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(pe.tz))
	// Canonicalized source scalars, exactly as quant-mode evaluation uses
	// them; radius2 is an exact configuration constant.
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(quantGeom(pe.tx)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(quantGeom(pe.ty)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(quantGeom(pe.l)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(quantGeom(pe.invL)))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(pe.radius2))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(quantGeom(lenB)))
	// Per observation Gauss point: canonical horizontal offsets and the raw
	// depth (depth is translation-invariant and feeds the image ladder).
	for _, chi := range gpPos {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(quantGeom(chi.X-pe.ax)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(quantGeom(chi.Y-pe.ay)))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(chi.Z))
	}
	return dst, true
}

// PairMatrixQuant computes the elemental matrix of the ordered pair
// (beta, alpha) on the canonicalized geometry: identical to PairMatrix up to
// the quantGeom rounding of the translation-dependent inputs (≲ 1e-9
// relative on the integrals), and an exact function of the pair's
// AppendPairGeomKey signature. Only valid for pairs whose key construction
// reported ok; cs must not be shared between concurrent workers.
func (a *Assembler) PairMatrixQuant(beta, alpha int, out []float64, cs *ColumnScratch) {
	for i := range out {
		out[i] = 0
	}
	a.pairMatrixFlatOn(beta, alpha, out, cs.s, true)
}
