package bem

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"earthing/internal/faultinject"
	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/sched"
	"earthing/internal/soil"
)

// Assembler holds the precomputed state of a (mesh, soil model)
// discretization and generates the Galerkin system. Create one with New,
// then call Matrix (and RHS) — or reuse it for repeated assemblies in
// benchmarks. The embedded Geometry (quadrature positions, weights, shape
// values) is soil-independent and may be shared across assemblers via
// NewWithGeometry.
type Assembler struct {
	*Geometry
	model soil.Model
	opt   Options

	elemLayer []int // soil layer of each element

	// lastBusy and lastPairs record per-worker busy time and element-pair
	// counts of the most recent Matrix() call, for load-balance analysis
	// (see WorkerBusy and WorkerPairs).
	lastBusy  []time.Duration
	lastPairs []int64

	// Image expansions per (src, obs) layer pair, grouped by series index.
	// Pairs without a closed image form are absent and fall back to
	// quadrature of Model.PointPotential, so a model may mix fast image
	// kernels (e.g. the top layer of an N-layer soil) with slow exact ones.
	groups map[[2]int][][]soil.Image
	// images reports whether every layer pair has an image expansion (the
	// analytic-gradient fast path requires all of them).
	images bool

	// innerScratch pools k-sized inner-integral buffers so the legacy
	// per-point Potential path does not allocate per call.
	innerScratch sync.Pool

	// evalOnce/eval lazily build the batched field evaluator shared by all
	// post-processing consumers (see fieldeval.go).
	evalOnce sync.Once
	eval     *FieldEvaluator
}

// New prepares an assembler. It validates that no element spans a layer
// interface (the kernels assume each source element lies wholly inside one
// layer; use Grid.SplitAtDepths before discretizing).
func New(m *grid.Mesh, model soil.Model, opt Options) (*Assembler, error) {
	geo, err := NewGeometry(m, opt)
	if err != nil {
		return nil, err
	}
	return NewWithGeometry(geo, model, opt)
}

// NewWithGeometry prepares an assembler on an existing shared Geometry: only
// the soil-dependent state (element layers, image expansions) is rebuilt, so
// N assemblers over the same mesh pay the quadrature-geometry setup once.
// The options must select the same integration orders the geometry was built
// with.
func NewWithGeometry(geo *Geometry, model soil.Model, opt Options) (*Assembler, error) {
	if geo == nil {
		return nil, fmt.Errorf("bem: nil geometry")
	}
	opt = opt.withDefaults()
	if opt.GaussOrder != geo.gaussOrder || opt.NearGaussOrder != geo.nearGaussOrder {
		return nil, fmt.Errorf("bem: options select Gauss orders (%d, %d) but the geometry was built for (%d, %d)",
			opt.GaussOrder, opt.NearGaussOrder, geo.gaussOrder, geo.nearGaussOrder)
	}
	m := geo.mesh
	a := &Assembler{
		Geometry: geo,
		model:    model,
		opt:      opt,
	}

	a.elemLayer = make([]int, len(m.Elements))
	for e, el := range m.Elements {
		layer := model.LayerOf(el.Seg.Midpoint().Z)
		for _, t := range []float64{0.125, 0.375, 0.625, 0.875} {
			if l := model.LayerOf(el.Seg.Point(t).Z); l != layer {
				return nil, fmt.Errorf(
					"bem: element %d (%v) spans soil layers %d and %d; split conductors at the interfaces first",
					e, el.Seg, layer, l)
			}
		}
		a.elemLayer[e] = layer
	}

	a.groups = map[[2]int][][]soil.Image{}
	a.images = true
	nl := model.NumLayers()
	for src := 1; src <= nl; src++ {
		for obs := 1; obs <= nl; obs++ {
			imgs, ok := model.ImageExpansion(src, obs, opt.MaxGroups)
			if !ok {
				a.images = false
				continue
			}
			var grouped [][]soil.Image
			for _, im := range imgs {
				for im.Group >= len(grouped) {
					grouped = append(grouped, nil)
				}
				grouped[im.Group] = append(grouped[im.Group], im)
			}
			a.groups[[2]int{src, obs}] = grouped
		}
	}
	return a, nil
}

// Footprint estimates the resident bytes an assembler pins beyond its mesh:
// the quadrature geometry plus the per-layer-pair image expansions (32 B per
// soil.Image). It is the sizing input of groundd's byte-bounded cache of
// solved systems.
func (a *Assembler) Footprint() int64 {
	n := a.Geometry.Footprint() + int64(len(a.elemLayer))*8
	for _, series := range a.groups {
		for _, imgs := range series {
			n += int64(len(imgs)) * 32
		}
	}
	return n
}

// WorkerBusy returns the per-worker busy durations of the most recent
// Matrix call. On a host with one free core per worker, Σbusy/max(busy)
// approximates the achievable wall-clock speed-up; on oversubscribed hosts
// the intervals include descheduled time, so prefer WorkerPairs there.
func (a *Assembler) WorkerBusy() []time.Duration { return a.lastBusy }

// WorkerPairs returns the number of element pairs each worker computed in
// the most recent Matrix call. Because every pair costs a near-identical
// kernel-series evaluation, Σpairs/max(pairs) is a host-independent
// prediction of the wall-clock speed-up a schedule achieves on a machine
// with one core per worker — the load-balance quantity behind Table 6.2
// (the paper's "static" row, for instance, is exactly the triangular-
// imbalance arithmetic this ratio computes; see EXPERIMENTS.md).
func (a *Assembler) WorkerPairs() []int64 { return a.lastPairs }

// PredictedSpeedup returns Σpairs/max(pairs) of the most recent Matrix call.
func (a *Assembler) PredictedSpeedup() float64 {
	var total, max int64
	for _, n := range a.lastPairs {
		total += n
		if n > max {
			max = n
		}
	}
	if max == 0 {
		return 1
	}
	return float64(total) / float64(max)
}

// NumPairs returns the number of element pairs M(M+1)/2 of the triangle.
func (a *Assembler) NumPairs() int {
	m := len(a.mesh.Elements)
	return m * (m + 1) / 2
}

// Matrix generates the Galerkin system matrix (eq. 4.4–4.5) using the
// configured loop strategy, schedule and assembly mode. The returned
// statistics describe how the parallel loop distributed its work.
func (a *Assembler) Matrix() (*linalg.SymMatrix, sched.Stats, error) {
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	return a.MatrixCtx(context.Background())
}

// MatrixCtx is Matrix with cooperative cancellation: the parallel pair loop
// observes ctx at every schedule chunk boundary (see sched.ForStatsCtx), so
// an abandoned request stops burning cores after at most one element-pair
// cycle. On cancellation the matrix is discarded and ctx.Err() is returned.
func (a *Assembler) MatrixCtx(ctx context.Context) (*linalg.SymMatrix, sched.Stats, error) {
	m := len(a.mesh.Elements)
	k := a.k
	r := linalg.NewSymMatrix(a.mesh.NumDoF)

	switch a.opt.Assembly {
	case StoreThenAssemble:
		// The paper's transformation: compute all elemental matrices into
		// flat storage inside the parallel loop, assemble sequentially after.
		store := make([]float64, a.NumPairs()*k*k)
		stats, err := a.runPairLoop(ctx, func(beta, alpha int, scratch *pairScratch) {
			idx := (beta*(beta+1)/2 + alpha) * k * k
			a.pairMatrix(beta, alpha, store[idx:idx+k*k], scratch)
		})
		if err != nil {
			return nil, stats, err
		}
		for beta := 0; beta < m; beta++ {
			for alpha := 0; alpha <= beta; alpha++ {
				idx := (beta*(beta+1)/2 + alpha) * k * k
				a.assemblePair(r, beta, alpha, store[idx:idx+k*k])
			}
		}
		return r, stats, nil

	case MutexAssemble:
		var mu sync.Mutex
		stats, err := a.runPairLoop(ctx, func(beta, alpha int, scratch *pairScratch) {
			buf := scratch.elemental
			a.pairMatrix(beta, alpha, buf, scratch)
			mu.Lock()
			a.assemblePair(r, beta, alpha, buf)
			mu.Unlock()
		})
		if err != nil {
			return nil, stats, err
		}
		return r, stats, nil

	default:
		return nil, sched.Stats{}, fmt.Errorf("bem: unknown assembly mode %v", a.opt.Assembly)
	}
}

// pairScratch holds per-worker scratch buffers so the hot loop does not
// allocate.
type pairScratch struct {
	elemental []float64 // k×k
	group     []float64 // k×k per-series-group accumulator
	inner     []float64 // k inner shape integrals

	// Flat-kernel per-Gauss-point hoists (maxGauss-sized): the observation
	// geometry and the weight×shape products each image of a pair shares.
	hxy  []float64 // axial projection of the horizontal offset
	dxy2 []float64 // squared horizontal distance
	chiZ []float64 // observation depth
	wsh0 []float64 // gpW·lenB·shape₀ (gpW·lenB for constant elements)
	wsh1 []float64 // gpW·lenB·shape₁ (unused for constant elements)
}

// maxGauss returns the larger of the far- and near-field outer rule sizes —
// the capacity the flat-kernel hoist arrays need.
func (g *Geometry) maxGauss() int {
	n := len(g.gpW)
	if len(g.gpWN) > n {
		n = len(g.gpWN)
	}
	return n
}

func (a *Assembler) newScratch() *pairScratch {
	kk := a.k * a.k
	ng := a.maxGauss()
	return &pairScratch{
		elemental: make([]float64, kk),
		group:     make([]float64, kk),
		inner:     make([]float64, a.k),
		hxy:       make([]float64, ng),
		dxy2:      make([]float64, ng),
		chiZ:      make([]float64, ng),
		wsh0:      make([]float64, ng),
		wsh1:      make([]float64, ng),
	}
}

// runPairLoop executes body over every pair (β, α ≤ β) under the configured
// loop strategy and schedule, giving each worker its own scratch. ctx is
// observed at chunk boundaries (and between columns for InnerLoop).
func (a *Assembler) runPairLoop(ctx context.Context, body func(beta, alpha int, scratch *pairScratch)) (sched.Stats, error) {
	m := len(a.mesh.Elements)
	p := a.opt.Workers
	if p <= 0 {
		p = 0 // sched resolves to GOMAXPROCS
	}
	maxW := p
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
	}
	scratches := make([]*pairScratch, maxW+1)
	getScratch := func(w int) *pairScratch {
		if w >= len(scratches) {
			w = len(scratches) - 1
		}
		if scratches[w] == nil {
			scratches[w] = a.newScratch()
		}
		return scratches[w]
	}

	busy := make([]time.Duration, maxW+1)
	pairs := make([]int64, maxW+1)
	defer func() {
		a.lastBusy = busy
		a.lastPairs = pairs
	}()

	switch a.opt.Loop {
	case OuterLoop:
		// One cycle per column β of the element-pair triangle; column β has
		// β+1 rows, so cycle sizes decrease linearly — exactly the
		// granularity situation of §6.2. Columns are iterated largest first
		// (i = 0 → β = M−1) so late chunks are small.
		return sched.ForStatsCtx(ctx, m, p, a.opt.Schedule, func(i, w int) {
			beta := m - 1 - i
			s := getScratch(w)
			start := time.Now()
			for alpha := 0; alpha <= beta; alpha++ {
				body(beta, alpha, s)
			}
			wi := w
			if wi >= len(busy) {
				wi = len(busy) - 1
			}
			busy[wi] += time.Since(start)
			pairs[wi] += int64(beta + 1)
		})
	case InnerLoop:
		// The rows of each column are distributed among workers; the program
		// moves to the next column only when the previous one is finished —
		// one synchronization barrier per column.
		var agg sched.Stats
		for beta := m - 1; beta >= 0; beta-- {
			st, err := sched.ForStatsCtx(ctx, beta+1, p, a.opt.Schedule, func(alpha, w int) {
				start := time.Now()
				body(beta, alpha, getScratch(w))
				wi := w
				if wi >= len(busy) {
					wi = len(busy) - 1
				}
				busy[wi] += time.Since(start)
				pairs[wi]++
			})
			agg.Iterations += st.Iterations
			if st.Workers > agg.Workers {
				agg.Workers = st.Workers
				agg.PerWorker = make([]int, st.Workers)
				agg.ChunksPerWorker = make([]int, st.Workers)
			}
			for i := 0; i < st.Workers && i < agg.Workers; i++ {
				agg.PerWorker[i] += st.PerWorker[i]
				agg.ChunksPerWorker[i] += st.ChunksPerWorker[i]
			}
			if err != nil {
				return agg, err
			}
		}
		return agg, nil
	default:
		// A typed error, not a panic: the loop strategy arrives via Options
		// from serving paths that must degrade per-request.
		return sched.Stats{}, fmt.Errorf("bem: unknown loop strategy %v", a.opt.Loop)
	}
}

// pairMatrix computes the elemental matrix of the (β, α) pair into out
// (row-major k×k, out[j·k+i] = ∫_β w_j ∫_α N_i G dΓ_α dΓ_β): the double
// integral of eq. (4.5) with the kernel series truncated group by group
// "until a tolerance is fulfilled or an upper limit of summands is achieved"
// (§4.3).
func (a *Assembler) pairMatrix(beta, alpha int, out []float64, s *pairScratch) {
	for i := range out {
		out[i] = 0
	}
	if _, ok := a.groups[[2]int{a.elemLayer[alpha], a.elemLayer[beta]}]; ok {
		if a.opt.Kernel == FlatKernel {
			a.pairMatrixFlat(beta, alpha, out, s)
		} else {
			a.pairMatrixImages(beta, alpha, out, s)
		}
	} else {
		faultinject.Fire(faultinject.Quadrature, beta, out)
		a.pairMatrixQuadrature(beta, alpha, out, s)
	}
	faultinject.Fire(faultinject.AssemblyPair, beta, out)
}

func (a *Assembler) pairMatrixImages(beta, alpha int, out []float64, s *pairScratch) {
	k := a.k
	elA := &a.mesh.Elements[alpha]
	elB := &a.mesh.Elements[beta]
	srcLayer := a.elemLayer[alpha]
	obsLayer := a.elemLayer[beta]
	groups := a.groups[[2]int{srcLayer, obsLayer}]
	pref := 1 / (4 * math.Pi * a.model.Conductivity(srcLayer))
	lenB := elB.Seg.Length()

	// Near pairs (self, touching, adjacent) get the refined outer rule: the
	// inner analytic integral varies sharply along the test element there.
	gpPos, gpW, gpShape := a.gpPos[beta], a.gpW, a.gpShape
	if beta == alpha ||
		elB.Seg.DistToSegment(elA.Seg) < 0.5*(lenB+elA.Seg.Length()) {
		gpPos, gpW, gpShape = a.gpPosN[beta], a.gpWN, a.gpShapeN
	}

	maxAccum := 0.0
	smallGroups := 0
	for _, grp := range groups {
		for i := range s.group {
			s.group[i] = 0
		}
		for _, im := range grp {
			segI := im.ApplySegment(elA.Seg)
			for g, chi := range gpPos {
				shapeIntegrals(chi, segI.A, segI.B, elA.Radius, a.linear, s.inner)
				wg := gpW[g] * lenB * im.Weight
				for j := 0; j < k; j++ {
					wj := wg * gpShape[g][j]
					for i := 0; i < k; i++ {
						s.group[j*k+i] += wj * s.inner[i]
					}
				}
			}
		}
		gmax := 0.0
		for i, v := range s.group {
			out[i] += v
			if av := math.Abs(v); av > gmax {
				gmax = av
			}
			if av := math.Abs(out[i]); av > maxAccum {
				maxAccum = av
			}
		}
		if gmax <= a.opt.SeriesTol*maxAccum {
			smallGroups++
			if smallGroups >= 2 {
				break
			}
		} else {
			smallGroups = 0
		}
	}
	for i := range out {
		out[i] *= pref
	}
}

// pairMatrixQuadrature is the fallback for models without an image
// expansion (N ≥ 3 layers): the primary 1/r part is still integrated
// analytically; the smooth secondary part is integrated by Gauss quadrature
// of Model.PointPotential minus the primary term.
func (a *Assembler) pairMatrixQuadrature(beta, alpha int, out []float64, s *pairScratch) {
	k := a.k
	elA := &a.mesh.Elements[alpha]
	elB := &a.mesh.Elements[beta]
	srcLayer := a.elemLayer[alpha]
	pref := 1 / (4 * math.Pi * a.model.Conductivity(srcLayer))
	lenA := elA.Seg.Length()
	lenB := elB.Seg.Length()

	for g, chiAxis := range a.gpPos[beta] {
		// Field points live on the conductor surface: offset horizontally
		// so the secondary kernel sees the correct depth.
		chi := surfacePoint(chiAxis, elB)
		// Analytic primary.
		shapeIntegrals(chi, elA.Seg.A, elA.Seg.B, elA.Radius, a.linear, s.inner)
		wg := a.gpW[g] * lenB
		for j := 0; j < k; j++ {
			wj := wg * a.gpShape[g][j] * pref
			for i := 0; i < k; i++ {
				out[j*k+i] += wj * s.inner[i]
			}
		}
		// Quadrature of the secondary (total − primary) kernel.
		for h, th := range a.gpT {
			xi := elA.Seg.Point(th)
			rTrue := chi.Dist(xi)
			if rTrue < elA.Radius {
				rTrue = elA.Radius
			}
			sec := a.model.PointPotential(chi, xi) - pref/rTrue
			wh := a.gpW[h] * lenA * wg
			for j := 0; j < k; j++ {
				wj := wh * a.gpShape[g][j] * sec
				for i := 0; i < k; i++ {
					var ni float64
					if a.linear {
						ni = a.gpShape[h][i]
					} else {
						ni = 1
					}
					out[j*k+i] += wj * ni
				}
			}
		}
	}
}

// surfacePoint offsets an axis point of element el to the conductor surface
// along a horizontal direction perpendicular to the element axis (keeping
// the depth, and therefore the soil layer, unchanged).
func surfacePoint(p geom.Vec3, el *grid.Element) geom.Vec3 {
	dir := el.Seg.Dir()
	perp := dir.Cross(geom.V(0, 0, 1))
	if perp.Norm() < 1e-12 { // vertical element: any horizontal direction
		perp = geom.V(1, 0, 0)
	} else {
		perp = perp.Unit()
	}
	return p.Add(perp.Scale(el.Radius))
}

// assemblePair scatters one elemental matrix into the global symmetric
// matrix. For β ≠ α the mirrored ordered pair (α, β) is accounted for by
// symmetry: off-diagonal global entries receive the value once (packed
// storage represents both (J, I) and (I, J)), while global diagonal hits
// J = I receive it twice (once from each ordered pair). Self pairs (β = α)
// symmetrize the elemental off-diagonal to compensate quadrature asymmetry.
func (a *Assembler) assemblePair(r *linalg.SymMatrix, beta, alpha int, c []float64) {
	k := a.k
	db := a.mesh.Elements[beta].DoF
	da := a.mesh.Elements[alpha].DoF
	if beta == alpha {
		for j := 0; j < k; j++ {
			r.Add(db[j], db[j], c[j*k+j])
			for i := 0; i < j; i++ {
				r.Add(db[j], da[i], 0.5*(c[j*k+i]+c[i*k+j]))
			}
		}
		return
	}
	for j := 0; j < k; j++ {
		for i := 0; i < k; i++ {
			v := c[j*k+i]
			if db[j] == da[i] {
				r.Add(db[j], da[i], 2*v)
			} else {
				r.Add(db[j], da[i], v)
			}
		}
	}
}

// RHS builds the load vector ν of eq. (4.6) for the unit GPR boundary
// condition V = 1 on Γ: ν_j = ∫ w_j dΓ, which is exactly L/2 per linear
// shape function and L per constant element.
func RHS(m *grid.Mesh) []float64 {
	nu := make([]float64, m.NumDoF)
	for _, el := range m.Elements {
		l := el.Seg.Length()
		if m.Kind == grid.Linear {
			nu[el.DoF[0]] += l / 2
			nu[el.DoF[1]] += l / 2
		} else {
			nu[el.DoF[0]] += l
		}
	}
	return nu
}

// TotalCurrent integrates the solved leakage density over the electrode:
// IΓ = Σ_i σ_i ∫ N_i dΓ (eq. 2.2). sigma is the DoF vector in A/m for a
// unit GPR.
func TotalCurrent(m *grid.Mesh, sigma []float64) float64 {
	var total float64
	for _, el := range m.Elements {
		l := el.Seg.Length()
		if m.Kind == grid.Linear {
			total += l / 2 * (sigma[el.DoF[0]] + sigma[el.DoF[1]])
		} else {
			total += l * sigma[el.DoF[0]]
		}
	}
	return total
}
