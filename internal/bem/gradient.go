package bem

import (
	"math"

	"earthing/internal/geom"
)

// segmentIntegralGrads returns the closed-form gradients (with respect to
// the field point x) of the segment integrals i0 and i1 of
// segmentIntegrals. With p the axial coordinate, ρ the (clamped) radial
// distance, R0 = R(0), R1 = R(L):
//
//	∂i0/∂p = 1/R0 − 1/R1
//	∂i0/∂ρ = −( p/R0 + (L−p)/R1 ) / ρ
//	∂i1/∂p = ( ∂R1/∂p − ∂R0/∂p + i0 + p·∂i0/∂p ) / L
//	∂i1/∂ρ = ( ρ/R1 − ρ/R0 + p·∂i0/∂ρ ) / L
//
// mapped back to Cartesian through ∇p = t̂ and ∇ρ = ρ̂ (the unit radial
// direction from the axis to x). On the axis ρ̂ is undefined and the radial
// component vanishes by symmetry.
//
// The gradients feed the electric field E = −∇V and the current density
// σ = −γ∇V of eq. (2.1), and the surface-gradient step-voltage estimates.
func segmentIntegralGrads(x geom.Vec3, a, b geom.Vec3, minRho float64) (g0, g1 geom.Vec3) {
	ab := b.Sub(a)
	l := ab.Norm()
	if l == 0 {
		return geom.Vec3{}, geom.Vec3{}
	}
	t := ab.Scale(1 / l)
	xa := x.Sub(a)
	p := xa.Dot(t)
	radial := xa.Sub(t.Scale(p)) // x − its axis projection
	rhoTrue := radial.Norm()
	rho := rhoTrue
	clamped := false
	if rho < minRho {
		rho = minRho
		clamped = true
	}
	var rhoHat geom.Vec3
	if rhoTrue > 1e-14*(1+l) && !clamped {
		rhoHat = radial.Scale(1 / rhoTrue)
	}
	// Inside the clamp region the integrals are constant in the radial
	// direction (ρ is pinned), so the radial gradient is zero there too —
	// consistent with the thin-wire surface evaluation.

	r0 := math.Sqrt(rho*rho + p*p)
	r1 := math.Sqrt(rho*rho + (l-p)*(l-p))
	i0 := math.Asinh((l-p)/rho) + math.Asinh(p/rho)

	di0dp := 1/r0 - 1/r1
	di0drho := -(p/r0 + (l-p)/r1) / rho

	dr0dp := p / r0
	dr1dp := -(l - p) / r1
	di1dp := (dr1dp - dr0dp + i0 + p*di0dp) / l
	di1drho := (rho/r1 - rho/r0 + p*di0drho) / l

	g0 = t.Scale(di0dp).Add(rhoHat.Scale(di0drho))
	g1 = t.Scale(di1dp).Add(rhoHat.Scale(di1drho))
	return g0, g1
}

// GradPotential evaluates ∇V(x) (volts per metre, per unit GPR) from the
// solved DoF vector by differentiating the image-series potential term by
// term; for models without an image expansion it falls back to central
// finite differences of Potential.
func (a *Assembler) GradPotential(x geom.Vec3, sigma []float64) geom.Vec3 {
	obsLayer := a.model.LayerOf(math.Max(x.Z, 0))
	var total geom.Vec3
	for e := range a.mesh.Elements {
		el := &a.mesh.Elements[e]
		srcLayer := a.elemLayer[e]
		groups, ok := a.groups[[2]int{srcLayer, obsLayer}]
		if !ok {
			total = total.Add(a.elementGradByDifferences(e, x, sigma))
			continue
		}
		pref := 1 / (4 * math.Pi * a.model.Conductivity(srcLayer))

		s0 := sigma[el.DoF[0]]
		var s1 float64
		if a.linear {
			s1 = sigma[el.DoF[1]]
		}

		var accum geom.Vec3
		maxAccum := 0.0
		smallGroups := 0
		for _, grp := range groups {
			var gsum geom.Vec3
			for _, im := range grp {
				segI := im.ApplySegment(el.Seg)
				g0, g1 := segmentIntegralGrads(x, segI.A, segI.B, el.Radius)
				var g geom.Vec3
				if a.linear {
					// ∇(∫N_A/r)·s0 + ∇(∫N_B/r)·s1 = (g0−g1)s0 + g1·s1.
					g = g0.Sub(g1).Scale(s0).Add(g1.Scale(s1))
				} else {
					g = g0.Scale(s0)
				}
				gsum = gsum.Add(g.Scale(im.Weight))
			}
			accum = accum.Add(gsum)
			if n := accum.Norm(); n > maxAccum {
				maxAccum = n
			}
			if gsum.Norm() <= a.opt.SeriesTol*maxAccum {
				smallGroups++
				if smallGroups >= 2 {
					break
				}
			} else {
				smallGroups = 0
			}
		}
		total = total.Add(accum.Scale(pref))
	}
	return total
}

// elementGradByDifferences is the finite-difference fallback for one
// element's contribution when its layer pair has no image expansion
// (Hankel-based kernels).
func (a *Assembler) elementGradByDifferences(e int, x geom.Vec3, sigma []float64) geom.Vec3 {
	const h = 1e-4
	v := func(p geom.Vec3) float64 { return a.elementPotentialQuadrature(e, p, sigma) }
	dx := (v(x.Add(geom.V(h, 0, 0))) - v(x.Add(geom.V(-h, 0, 0)))) / (2 * h)
	dy := (v(x.Add(geom.V(0, h, 0))) - v(x.Add(geom.V(0, -h, 0)))) / (2 * h)
	var dz float64
	if x.Z > h {
		dz = (v(x.Add(geom.V(0, 0, h))) - v(x.Add(geom.V(0, 0, -h)))) / (2 * h)
	} else {
		// One-sided at the surface to stay in the ground.
		dz = (v(x.Add(geom.V(0, 0, h))) - v(x)) / h
	}
	return geom.V(dx, dy, dz)
}

// ElectricField returns E = −∇V at x in V/m per unit GPR.
func (a *Assembler) ElectricField(x geom.Vec3, sigma []float64) geom.Vec3 {
	return a.GradPotential(x, sigma).Scale(-1)
}

// CurrentDensity returns the conduction current density σ = −γ·∇V (A/m²
// per unit GPR) at a point strictly inside the ground, using the
// conductivity of the layer containing x (eq. 2.1).
func (a *Assembler) CurrentDensity(x geom.Vec3, sigma []float64) geom.Vec3 {
	gamma := a.model.Conductivity(a.model.LayerOf(math.Max(x.Z, 0)))
	return a.GradPotential(x, sigma).Scale(-gamma)
}
