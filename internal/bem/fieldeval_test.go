package bem

import (
	"math"
	"math/rand"
	"testing"

	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/soil"
)

// fieldEvalFixture builds an assembler over a mesh that mixes horizontal
// grid elements and a rod (split at the model interfaces when needed), plus
// a deterministic pseudo-solution vector.
func fieldEvalFixture(t testing.TB, model soil.Model, kind grid.ElementKind) (*Assembler, []float64) {
	t.Helper()
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	g.AddRod(5, 5, 0.8, 2.5, 0.007)
	var depths []float64
	if model.NumLayers() > 1 {
		depths = []float64{1.0, 3.0} // interfaces of the layered fixtures below
	}
	gs := g.SplitAtDepths(depths...)
	m, err := grid.Discretize(gs, kind, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(m, model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigma := make([]float64, m.NumDoF)
	for i := range sigma {
		sigma[i] = 0.5 + 0.03*float64(i%17)
	}
	return a, sigma
}

// fieldEvalPoints samples observation points on the surface, at depth inside
// every layer, and close to the conductors (where the ρ clamp engages).
func fieldEvalPoints() []geom.Vec3 {
	r := rand.New(rand.NewSource(7))
	pts := []geom.Vec3{
		geom.V(10, 10, 0),       // surface over the grid
		geom.V(-12, 25, 0),      // surface outside the grid
		geom.V(10, 0.001, 0),    // surface above an edge conductor
		geom.V(5, 5, 0.81),      // just below the rod top
		geom.V(3, 3, 0.8),       // on the conductor plane
		geom.V(10, 10.005, 0.8), // ~radius from a conductor axis
		geom.V(7, 9, 1.5),       // second layer (two-layer models)
		geom.V(9, 6, 2.5),       // third layer (multilayer models)
		geom.V(40, -30, 5),      // far field at depth
	}
	for i := 0; i < 40; i++ {
		pts = append(pts, geom.V(r.Float64()*40-10, r.Float64()*40-10, r.Float64()*3))
	}
	return pts
}

// TestFieldEvaluatorMatchesPotential is the core equivalence suite: the
// batched engine must reproduce the legacy per-point Potential to ≤ 1e-10
// across uniform, two-layer and multilayer soils (the latter exercising the
// mixed image/quadrature plan), for linear and constant elements.
func TestFieldEvaluatorMatchesPotential(t *testing.T) {
	ml, err := soil.NewMultiLayer([]float64{0.004, 0.02, 0.01}, []float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	ml.Tol = 1e-6
	cases := []struct {
		name  string
		model soil.Model
	}{
		{"uniform", soil.NewUniform(0.016)},
		{"two-layer", soil.NewTwoLayer(0.005, 0.016, 1.0)},
		{"three-layer", ml},
	}
	for _, kind := range []grid.ElementKind{grid.Linear, grid.Constant} {
		for _, c := range cases {
			a, sigma := fieldEvalFixture(t, c.model, kind)
			fe := a.Evaluator()
			for _, x := range fieldEvalPoints() {
				want := a.Potential(x, sigma)
				got := fe.PotentialAt(x, sigma)
				if d := math.Abs(got - want); d > 1e-10 {
					t.Errorf("%s/%v: V(%v) batch %v vs legacy %v (Δ=%g)",
						c.name, kind, x, got, want, d)
				}
			}
		}
	}
}

// TestFieldEvaluatorMatchesGradPotential checks the gradient engine against
// the legacy GradPotential (including the finite-difference fallback of
// multilayer off-top pairs) to ≤ 1e-10 per component.
func TestFieldEvaluatorMatchesGradPotential(t *testing.T) {
	ml, err := soil.NewMultiLayer([]float64{0.004, 0.02, 0.01}, []float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	ml.Tol = 1e-6
	cases := []struct {
		name  string
		model soil.Model
	}{
		{"uniform", soil.NewUniform(0.016)},
		{"two-layer", soil.NewTwoLayer(0.005, 0.016, 1.0)},
		{"three-layer", ml},
	}
	for _, c := range cases {
		a, sigma := fieldEvalFixture(t, c.model, grid.Linear)
		fe := a.Evaluator()
		for _, x := range fieldEvalPoints() {
			want := a.GradPotential(x, sigma)
			got := fe.GradientAt(x, sigma)
			d := got.Sub(want).Norm()
			// The FD fallback integrand is itself noisy at the quadrature
			// tolerance; image-kernel layers must agree to 1e-10.
			tol := 1e-10 * (1 + want.Norm())
			if d > tol {
				t.Errorf("%s: ∇V(%v) batch %v vs legacy %v (Δ=%g)", c.name, x, got, want, d)
			}
		}
	}
}

// TestPotentialBatchMatchesSequentialExactly asserts the parallel batch is
// bit-identical to the sequential batch — the analog of the matrix
// generation's parallel-correctness invariant.
func TestPotentialBatchMatchesSequentialExactly(t *testing.T) {
	a, sigma := fieldEvalFixture(t, soil.NewTwoLayer(0.005, 0.016, 1.0), grid.Linear)
	fe := a.Evaluator()
	pts := fieldEvalPoints()
	seq := make([]float64, len(pts))
	par := make([]float64, len(pts))
	fe.PotentialBatch(pts, sigma, 2.5, seq, BatchOptions{Workers: 1})
	st := fe.PotentialBatch(pts, sigma, 2.5, par, BatchOptions{Workers: 4})
	if st.Sched.Iterations != len(pts) {
		t.Errorf("stats report %d iterations, want %d", st.Sched.Iterations, len(pts))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("point %d: parallel %v != sequential %v", i, par[i], seq[i])
		}
	}
	// Spot-check scaling against the per-point core.
	if want := 2.5 * fe.PotentialAt(pts[3], sigma); seq[3] != want {
		t.Errorf("scale not applied: %v vs %v", seq[3], want)
	}

	grads := make([]geom.Vec3, len(pts))
	fe.GradBatch(pts, sigma, grads, BatchOptions{Workers: 3})
	for i, x := range pts[:8] {
		if grads[i] != fe.GradientAt(x, sigma) {
			t.Fatalf("grad batch differs at %d", i)
		}
	}
}

// TestFieldEvaluatorZeroAllocs guards the engine's central property: once
// the plan is built, the per-point evaluation allocates nothing.
func TestFieldEvaluatorZeroAllocs(t *testing.T) {
	a, sigma := fieldEvalFixture(t, soil.NewTwoLayer(0.005, 0.016, 1.0), grid.Linear)
	fe := a.Evaluator()
	x := geom.V(11, 7, 0)
	fe.PotentialAt(x, sigma) // build the plan outside the measurement
	if n := testing.AllocsPerRun(100, func() { fe.PotentialAt(x, sigma) }); n != 0 {
		t.Errorf("PotentialAt allocates %v times per point", n)
	}
	fe.GradientAt(x, sigma)
	if n := testing.AllocsPerRun(100, func() { fe.GradientAt(x, sigma) }); n != 0 {
		t.Errorf("GradientAt allocates %v times per point", n)
	}
	// The hoisted scratch pool keeps the legacy path allocation-free too.
	a.Potential(x, sigma)
	if n := testing.AllocsPerRun(100, func() { a.Potential(x, sigma) }); n != 0 {
		t.Errorf("legacy Potential allocates %v times per point", n)
	}
}

// TestEvaluatorCachedAndConcurrent checks Assembler.Evaluator returns one
// shared instance and that concurrent first-use (lazy plan build) is safe —
// run under -race in CI.
func TestEvaluatorCachedAndConcurrent(t *testing.T) {
	a, sigma := fieldEvalFixture(t, soil.NewTwoLayer(0.005, 0.016, 1.0), grid.Linear)
	if a.Evaluator() != a.Evaluator() {
		t.Fatal("Evaluator not cached")
	}
	pts := fieldEvalPoints()
	out := make([]float64, len(pts))
	a.Evaluator().PotentialBatch(pts, sigma, 1, out, BatchOptions{Workers: 8})
	for i, v := range out {
		if math.IsNaN(v) {
			t.Fatalf("NaN at point %d", i)
		}
	}
}

func benchFixture(b *testing.B) (*Assembler, []float64, []geom.Vec3) {
	m, err := grid.BarberaMesh()
	if err != nil {
		b.Fatal(err)
	}
	a, err := New(m, soil.NewTwoLayer(0.005, 0.016, 1.0), Options{})
	if err != nil {
		b.Fatal(err)
	}
	sigma := make([]float64, m.NumDoF)
	for i := range sigma {
		sigma[i] = 0.5 + 0.03*float64(i%17)
	}
	var pts []geom.Vec3
	for j := 0; j < 8; j++ {
		for i := 0; i < 8; i++ {
			pts = append(pts, geom.V(-10+float64(i)*10, -10+float64(j)*9, 0))
		}
	}
	return a, sigma, pts
}

// BenchmarkPotentialLegacy measures the per-point path the evaluator
// replaces (ns/op is ns/point).
func BenchmarkPotentialLegacy(b *testing.B) {
	a, sigma, pts := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Potential(pts[i%len(pts)], sigma)
	}
}

// BenchmarkPotentialBatch measures the batched engine on the same points
// (ns/op is ns/point; must report 0 allocs/op).
func BenchmarkPotentialBatch(b *testing.B) {
	a, sigma, pts := benchFixture(b)
	fe := a.Evaluator()
	fe.PotentialAt(pts[0], sigma) // plan build outside the timer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fe.PotentialAt(pts[i%len(pts)], sigma)
	}
}

// BenchmarkGradLegacy / BenchmarkGradBatch are the gradient counterparts.
func BenchmarkGradLegacy(b *testing.B) {
	a, sigma, pts := benchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.GradPotential(pts[i%len(pts)], sigma)
	}
}

func BenchmarkGradBatch(b *testing.B) {
	a, sigma, pts := benchFixture(b)
	fe := a.Evaluator()
	fe.GradientAt(pts[0], sigma)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fe.GradientAt(pts[i%len(pts)], sigma)
	}
}
