package bem

import (
	"fmt"

	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/quad"
)

// Geometry is the soil-independent precomputed state of a discretized mesh:
// Gauss point positions on every element axis, reference weights, shape
// function values and reference coordinates, for both the far-field and the
// refined near-field outer rules. It depends only on (mesh, GaussOrder,
// NearGaussOrder), so one Geometry can be shared by many Assemblers that
// analyze the same mesh under different soil models — the geometry-reuse
// tier of the sweep engine. A Geometry is immutable after NewGeometry.
type Geometry struct {
	mesh   *grid.Mesh
	linear bool
	k      int // DoF per element

	// The integration orders the Gauss data was built for (after the
	// Options defaults were applied); NewWithGeometry validates that an
	// assembler's options agree.
	gaussOrder     int
	nearGaussOrder int

	// Per-element outer (test) integration data (far-field order).
	gpPos   [][]geom.Vec3 // Gauss point positions on each element axis
	gpW     []float64     // reference Gauss weights ×½ (apply ×length)
	gpShape [][2]float64  // shape function values at each reference point
	gpT     []float64     // reference coordinates t ∈ (0,1)

	// Refined outer integration for near pairs (self/touching/adjacent);
	// aliases the far-field data when NearGaussOrder == GaussOrder.
	gpPosN   [][]geom.Vec3
	gpWN     []float64
	gpShapeN [][2]float64
}

// NewGeometry precomputes the quadrature geometry of a mesh for the
// integration orders selected by opt (only GaussOrder and NearGaussOrder are
// consulted; the remaining options do not affect geometry).
func NewGeometry(m *grid.Mesh, opt Options) (*Geometry, error) {
	if m == nil || len(m.Elements) == 0 {
		return nil, fmt.Errorf("bem: empty mesh")
	}
	opt = opt.withDefaults()
	g := &Geometry{
		mesh:           m,
		linear:         m.Kind == grid.Linear,
		k:              m.DoFCount(),
		gaussOrder:     opt.GaussOrder,
		nearGaussOrder: opt.NearGaussOrder,
	}

	buildSet := func(order int) (pos [][]geom.Vec3, w []float64, shape [][2]float64, ts []float64) {
		rule := quad.GaussLegendre(order)
		w = make([]float64, rule.Len())
		shape = make([][2]float64, rule.Len())
		ts = make([]float64, rule.Len())
		for gp, xg := range rule.X {
			t := 0.5 * (xg + 1)
			ts[gp] = t
			w[gp] = 0.5 * rule.W[gp]
			if g.linear {
				shape[gp] = [2]float64{1 - t, t}
			} else {
				shape[gp] = [2]float64{1, 0}
			}
		}
		pos = make([][]geom.Vec3, len(m.Elements))
		for e, el := range m.Elements {
			pts := make([]geom.Vec3, rule.Len())
			for gp, t := range ts {
				pts[gp] = el.Seg.Point(t)
			}
			pos[e] = pts
		}
		return pos, w, shape, ts
	}
	g.gpPos, g.gpW, g.gpShape, g.gpT = buildSet(opt.GaussOrder)
	if opt.NearGaussOrder == opt.GaussOrder {
		g.gpPosN, g.gpWN, g.gpShapeN = g.gpPos, g.gpW, g.gpShape
	} else {
		g.gpPosN, g.gpWN, g.gpShapeN, _ = buildSet(opt.NearGaussOrder)
	}
	return g, nil
}

// Mesh returns the discretized mesh the geometry was built from.
func (g *Geometry) Mesh() *grid.Mesh { return g.mesh }

// Footprint estimates the resident bytes of the precomputed quadrature data:
// Gauss point positions (24 B per point), weights, shape values and reference
// coordinates, counting the refined near-field set only when it does not
// alias the far-field one. Used to size byte-bounded caches of solved
// systems; an estimate, not an accounting of every allocator header.
func (g *Geometry) Footprint() int64 {
	var n int64
	for _, p := range g.gpPos {
		n += int64(len(p)) * 24
	}
	n += int64(len(g.gpW))*8 + int64(len(g.gpShape))*16 + int64(len(g.gpT))*8
	if g.nearGaussOrder != g.gaussOrder {
		for _, p := range g.gpPosN {
			n += int64(len(p)) * 24
		}
		n += int64(len(g.gpWN))*8 + int64(len(g.gpShapeN))*16
	}
	return n
}
