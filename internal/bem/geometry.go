package bem

import (
	"fmt"

	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/quad"
)

// Geometry is the soil-independent precomputed state of a discretized mesh:
// Gauss point positions on every element axis, reference weights, shape
// function values and reference coordinates, for both the far-field and the
// refined near-field outer rules. It depends only on (mesh, GaussOrder,
// NearGaussOrder), so one Geometry can be shared by many Assemblers that
// analyze the same mesh under different soil models — the geometry-reuse
// tier of the sweep engine. A Geometry is immutable after NewGeometry.
type Geometry struct {
	mesh   *grid.Mesh
	linear bool
	k      int // DoF per element

	// The integration orders the Gauss data was built for (after the
	// Options defaults were applied); NewWithGeometry validates that an
	// assembler's options agree.
	gaussOrder     int
	nearGaussOrder int

	// Per-element outer (test) integration data (far-field order).
	gpPos   [][]geom.Vec3 // Gauss point positions on each element axis
	gpW     []float64     // reference Gauss weights ×½ (apply ×length)
	gpShape [][2]float64  // shape function values at each reference point
	gpT     []float64     // reference coordinates t ∈ (0,1)

	// Refined outer integration for near pairs (self/touching/adjacent);
	// aliases the far-field data when NearGaussOrder == GaussOrder.
	gpPosN   [][]geom.Vec3
	gpWN     []float64
	gpShapeN [][2]float64
}

// NewGeometry precomputes the quadrature geometry of a mesh for the
// integration orders selected by opt (only GaussOrder and NearGaussOrder are
// consulted; the remaining options do not affect geometry).
func NewGeometry(m *grid.Mesh, opt Options) (*Geometry, error) {
	if m == nil || len(m.Elements) == 0 {
		return nil, fmt.Errorf("bem: empty mesh")
	}
	opt = opt.withDefaults()
	g := &Geometry{
		mesh:           m,
		linear:         m.Kind == grid.Linear,
		k:              m.DoFCount(),
		gaussOrder:     opt.GaussOrder,
		nearGaussOrder: opt.NearGaussOrder,
	}

	buildSet := func(order int) (pos [][]geom.Vec3, w []float64, shape [][2]float64, ts []float64) {
		rule := quad.GaussLegendre(order)
		w = make([]float64, rule.Len())
		shape = make([][2]float64, rule.Len())
		ts = make([]float64, rule.Len())
		for gp, xg := range rule.X {
			t := 0.5 * (xg + 1)
			ts[gp] = t
			w[gp] = 0.5 * rule.W[gp]
			if g.linear {
				shape[gp] = [2]float64{1 - t, t}
			} else {
				shape[gp] = [2]float64{1, 0}
			}
		}
		pos = make([][]geom.Vec3, len(m.Elements))
		for e, el := range m.Elements {
			pts := make([]geom.Vec3, rule.Len())
			for gp, t := range ts {
				pts[gp] = el.Seg.Point(t)
			}
			pos[e] = pts
		}
		return pos, w, shape, ts
	}
	g.gpPos, g.gpW, g.gpShape, g.gpT = buildSet(opt.GaussOrder)
	if opt.NearGaussOrder == opt.GaussOrder {
		g.gpPosN, g.gpWN, g.gpShapeN = g.gpPos, g.gpW, g.gpShape
	} else {
		g.gpPosN, g.gpWN, g.gpShapeN, _ = buildSet(opt.NearGaussOrder)
	}
	return g, nil
}

// Mesh returns the discretized mesh the geometry was built from.
func (g *Geometry) Mesh() *grid.Mesh { return g.mesh }
