package bem

import (
	"testing"
	"time"

	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/soil"
)

// TestThreeLayerImageAssemblyMatchesQuadrature runs the same 3-layer
// analysis twice: with the top-layer double-series image expansion (fast
// path, grid wholly in layer 1) and with the expansion disabled (pure
// Hankel quadrature), and compares the resulting equivalent resistances.
func TestThreeLayerImageAssemblyMatchesQuadrature(t *testing.T) {
	if testing.Short() {
		t.Skip("quadrature assembly is slow")
	}
	g := grid.RectMesh(0, 0, 10, 10, 2, 2, 0.5, 0.006)
	m, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	gammas := []float64{0.004, 0.02, 0.008}
	thick := []float64{1.2, 2.0}

	mk := func() *soil.MultiLayer {
		ml, err := soil.NewMultiLayer(gammas, thick)
		if err != nil {
			t.Fatal(err)
		}
		ml.Tol = 1e-8
		return ml
	}

	reqOf := func(model soil.Model, opt Options) (float64, time.Duration) {
		a, err := New(m, model, opt)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		r, _, err := a.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		dur := time.Since(start)
		res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-11})
		if err != nil || !res.Converged {
			t.Fatalf("CG: %v", err)
		}
		return 1 / TotalCurrent(m, res.X), dur
	}

	reqImg, tImg := reqOf(mk(), Options{GaussOrder: 6, SeriesTol: 1e-8, MaxGroups: 200})
	reqQuad, tQuad := reqOf(noImages{mk()}, Options{GaussOrder: 6})

	if rel := relDiff(reqImg, reqQuad); rel > 0.01 {
		t.Errorf("image Req %v vs quadrature Req %v (rel %v)", reqImg, reqQuad, rel)
	}
	// The image path should be dramatically faster (each quadrature entry
	// costs dozens of Hankel integrals).
	if tImg > tQuad {
		t.Logf("note: image path (%v) not faster than quadrature (%v) on this run", tImg, tQuad)
	}
}

// noImages hides a model's image expansion, forcing the quadrature path.
type noImages struct {
	soil.Model
}

func (n noImages) ImageExpansion(src, obs, maxGroup int) ([]soil.Image, bool) {
	return nil, false
}

// TestMixedModeLayers runs a grid with electrodes in layers 1 and 2 of a
// 3-layer soil: pairs within layer 1 use images, everything touching layer
// 2 uses quadrature, and the result must still satisfy the boundary
// condition.
func TestMixedModeLayers(t *testing.T) {
	if testing.Short() {
		t.Skip("quadrature assembly is slow")
	}
	g := grid.HorizontalWire(0, 0, 0.5, 8, 0.005) // layer 1
	g.AddRod(4, 0, 0.5, 1.2, 0.007)               // crosses into layer 2 (interface 1.0)
	gs := g.SplitAtDepths(1.0)
	m, err := grid.DiscretizeN(gs, grid.Linear, func(c grid.Conductor) int { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	ml, err := soil.NewMultiLayer([]float64{0.004, 0.02, 0.008}, []float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	ml.Tol = 1e-7
	a, err := New(m, ml, Options{GaussOrder: 4, SeriesTol: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := a.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-10})
	if err != nil || !res.Converged {
		t.Fatalf("CG: %v", err)
	}
	// Boundary condition recovered on a layer-1 element surface.
	el := m.Elements[1]
	p := surfacePoint(el.Seg.Midpoint(), &el)
	if v := a.Potential(p, res.X); v < 0.9 || v > 1.1 {
		t.Errorf("V on electrode = %v, want ≈1", v)
	}
}
