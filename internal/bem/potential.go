package bem

import (
	"math"

	"earthing/internal/geom"
	"earthing/internal/quad"
	"earthing/internal/soil"
)

// Potential evaluates the earth potential V(x) = Σ_i σ_i·V_i(x) of
// eq. (4.2)–(4.3) at an arbitrary point from the solved DoF vector sigma
// (leakage line density per unit GPR, scaled by the caller if GPR ≠ 1).
//
// x may be anywhere in the ground or on its surface. Cost is O(M·p) series
// evaluations per point (§4.3), so computing dense potential contours is the
// second parallelizable hot spot of the paper; package post distributes
// batches of points over workers.
func (a *Assembler) Potential(x geom.Vec3, sigma []float64) float64 {
	obsLayer := a.model.LayerOf(math.Max(x.Z, 0))
	buf, _ := a.innerScratch.Get().(*[]float64)
	if buf == nil {
		s := make([]float64, a.k)
		buf = &s
	}
	inner := *buf
	var total quad.KahanSum
	for e := range a.mesh.Elements {
		el := &a.mesh.Elements[e]
		srcLayer := a.elemLayer[e]
		groups, ok := a.groups[[2]int{srcLayer, obsLayer}]
		if !ok {
			total.Add(a.elementPotentialQuadrature(e, x, sigma))
			continue
		}
		pref := 1 / (4 * math.Pi * a.model.Conductivity(srcLayer))

		// Nodal weights of this element's contribution.
		var s0, s1 float64
		s0 = sigma[el.DoF[0]]
		if a.linear {
			s1 = sigma[el.DoF[1]]
		}

		var accum float64
		maxAccum := 0.0
		smallGroups := 0
		for _, grp := range groups {
			var gsum float64
			for _, im := range grp {
				segI := im.ApplySegment(el.Seg)
				shapeIntegrals(x, segI.A, segI.B, el.Radius, a.linear, inner)
				if a.linear {
					gsum += im.Weight * (inner[0]*s0 + inner[1]*s1)
				} else {
					gsum += im.Weight * inner[0] * s0
				}
			}
			accum += gsum
			if av := math.Abs(accum); av > maxAccum {
				maxAccum = av
			}
			if math.Abs(gsum) <= a.opt.SeriesTol*maxAccum {
				smallGroups++
				if smallGroups >= 2 {
					break
				}
			} else {
				smallGroups = 0
			}
		}
		total.Add(pref * accum)
	}
	a.innerScratch.Put(buf)
	return total.Sum()
}

// elementPotentialQuadrature integrates one element's contribution to V(x)
// by Gauss quadrature of the exact point kernel (used for layer pairs with
// no image expansion).
func (a *Assembler) elementPotentialQuadrature(e int, x geom.Vec3, sigma []float64) float64 {
	el := &a.mesh.Elements[e]
	l := el.Seg.Length()
	var total quad.KahanSum
	for h, th := range a.gpT {
		xi := el.Seg.Point(th)
		var dens float64
		if a.linear {
			dens = a.gpShape[h][0]*sigma[el.DoF[0]] + a.gpShape[h][1]*sigma[el.DoF[1]]
		} else {
			dens = sigma[el.DoF[0]]
		}
		total.Add(a.gpW[h] * l * dens * a.model.PointPotential(x, xi))
	}
	return total.Sum()
}

// LeakageDensity returns the leakage line density σ(t) at parametric
// position t ∈ [0, 1] along element e (eq. 4.1), in A/m per unit GPR.
func (a *Assembler) LeakageDensity(e int, t float64, sigma []float64) float64 {
	el := &a.mesh.Elements[e]
	if a.linear {
		return (1-t)*sigma[el.DoF[0]] + t*sigma[el.DoF[1]]
	}
	return sigma[el.DoF[0]]
}

// Model returns the soil model the assembler was built with.
func (a *Assembler) Model() soil.Model { return a.model }
