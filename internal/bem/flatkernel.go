package bem

import "math"

// farT gates the series fast path of the inner integral: when
// pp²+q² < farT·ρ² both asinh arguments x = pp/ρ, q/ρ satisfy x² ≤ 0.017
// (|x| ≤ 0.131), where the degree-8 Maclaurin polynomial of asinh(x)/x is
// accurate to < 1e-16 relative (next term c₉x¹⁶ ≈ 7e-17 at the boundary) —
// below one ulp, so the fast path is numerically indistinguishable from the
// log form it replaces.
const farT = 0.017

// asinhRatio evaluates asinh(x)/x as its Maclaurin polynomial in t = x²,
// with the exact Taylor coefficients (−1)ᵏ(2k−1)!!/((2k)!!(2k+1)). Valid
// for t ≤ farT; one polynomial replaces the logarithm that dominates the
// assembly profile for far (image, Gauss point) pairs.
func asinhRatio(t float64) float64 {
	return 1 + t*(-1.0/6+t*(3.0/40+t*(-15.0/336+t*(105.0/3456+
		t*(-945.0/42240+t*(10395.0/599040+t*(-135135.0/9676800+
			t*(2027025.0/175472640))))))))
}

// geomKeyBits is the mantissa precision the quantized pair evaluation keeps
// of every translation-dependent geometric input (horizontal offsets, the
// source direction cosines and lengths). Rounding to 2⁻³⁰ relative perturbs
// the elemental integrals by ≲ 1e-9 relative — two orders below the tightest
// block tolerance the H-matrix tier accepts the cache at (ε ≥ 1e-7) — while
// the rounding cells stay ~4 orders wider than the coordinate round-off
// scatter between congruent element pairs, so lattice translates of one pair
// collapse onto one key.
const geomKeyBits = 30

// quantGeom rounds x to geomKeyBits significant mantissa bits (round half
// up), the canonicalization both the geometric cache key and the quantized
// kernel evaluation share.
func quantGeom(x float64) float64 {
	if x == 0 {
		return 0 // drop the sign of −0 so both zeros share one key
	}
	const drop = 52 - geomKeyBits
	b := math.Float64bits(x)
	b += 1 << (drop - 1)
	b &^= 1<<drop - 1
	return math.Float64frombits(b)
}

// pairMatrixFlat computes the same elemental matrix as pairMatrixImages from
// the flattened per-depth image tables of the field-evaluation plan
// (fieldeval.go). The legacy kernel re-derives every image-reflected segment
// (im.ApplySegment) and evaluates two asinh calls per (image, Gauss point);
// here the reflection is three precomputed scalars (az, sz, w), the
// observation geometry of each Gauss point is hoisted out of the image loop,
// and the inner integral is evaluated in the cancellation-safe log form of
// logI0. Two structural fast paths cut the transcendental count further:
// equal-weight image groups of horizontal elements fuse their logarithms
// into one call per Gauss point (fusedGroup), and far terms replace the
// logarithm with a Maclaurin polynomial (asinhRatio). Series-group order,
// the per-group tolerance early-exit and the near-pair rule selection mirror
// the legacy path exactly, so truncation decisions agree; the remaining
// difference is ulp-level arithmetic reassociation (grid resistances agree
// to ≤ 1e-10 relative, pinned by the equivalence tests).
func (a *Assembler) pairMatrixFlat(beta, alpha int, out []float64, s *pairScratch) {
	a.pairMatrixFlatOn(beta, alpha, out, s, false)
}

// pairMatrixFlatOn is pairMatrixFlat with an optional canonicalized-geometry
// mode: with quant set, every translation-dependent input (the horizontal
// Gauss-point offsets, the source direction cosines, both lengths) is rounded
// through quantGeom before use, which makes the result an exact function of
// the AppendPairGeomKey signature — the property the H-matrix geometric pair
// cache relies on for schedule-independent reuse. Depth-dependent inputs
// (observation z, image tables) stay raw; they are part of the signature
// verbatim. The dense assembly path always runs with quant false.
func (a *Assembler) pairMatrixFlatOn(beta, alpha int, out []float64, s *pairScratch, quant bool) {
	elA := &a.mesh.Elements[alpha]
	elB := &a.mesh.Elements[beta]
	p := a.Evaluator().plan(a.elemLayer[beta])
	pe := &p.elems[p.byElem[alpha]]
	imgs, grpOff := p.imgs, p.grpOff
	lenB := elB.Seg.Length()

	// Near pairs (self, touching, adjacent) get the refined outer rule —
	// identical selection to the reference kernel. The selection runs on the
	// raw geometry in both modes; the chosen rule is part of the cache key.
	gpPos, gpW, gpShape := a.gpPos[beta], a.gpW, a.gpShape
	if beta == alpha ||
		elB.Seg.DistToSegment(elA.Seg) < 0.5*(lenB+elA.Seg.Length()) {
		gpPos, gpW, gpShape = a.gpPosN[beta], a.gpWN, a.gpShapeN
	}
	ng := len(gpPos)

	l, invL, r2min := pe.l, pe.invL, pe.radius2
	tx, ty := pe.tx, pe.ty
	if quant {
		lenB = quantGeom(lenB)
		l, invL = quantGeom(l), quantGeom(invL)
		tx, ty = quantGeom(tx), quantGeom(ty)
	}

	// Hoist the observation-point geometry and the weight×shape products out
	// of the image loop: every image of the pair sees the same (hxy, dxy², z)
	// per Gauss point because images are affine in z only, and the outer
	// weight gpW·lenB·shape_j never changes within a pair.
	hxy, dxy2, chiZ := s.hxy[:ng], s.dxy2[:ng], s.chiZ[:ng]
	wsh0, wsh1 := s.wsh0[:ng], s.wsh1[:ng]
	for g, chi := range gpPos {
		dx := chi.X - pe.ax
		dy := chi.Y - pe.ay
		if quant {
			dx, dy = quantGeom(dx), quantGeom(dy)
		}
		hxy[g] = dx*tx + dy*ty
		dxy2[g] = dx*dx + dy*dy
		chiZ[g] = chi.Z
		wl := gpW[g] * lenB
		wsh0[g] = wl * gpShape[g][0]
		wsh1[g] = wl * gpShape[g][1]
	}
	linear := a.linear
	group := s.group
	// Horizontal source elements (tz = 0 ⟹ sz = 0 for every image) see the
	// same axial projection pp — and hence q — for all images of the pair:
	// the image sum is then linear in Σw·i0 and Σw·(r1−r0), so groups whose
	// images share one series weight (every MultiLayer group does) fuse
	// their logarithms into a single call via Σ log aᵢ = log Π aᵢ.
	horizontal := pe.tz == 0

	maxAccum := 0.0
	smallGroups := 0
	for gi := pe.grpLo; gi < pe.grpHi; gi++ {
		for i := range group {
			group[i] = 0
		}
		ims := imgs[grpOff[gi]:grpOff[gi+1]]
		fused := horizontal && len(ims) > 1
		if fused {
			for _, im := range ims[1:] {
				//lint:ignore floatcmp exact weight equality is the fusion precondition: Σ w·log aᵢ = w·log Π aᵢ only holds for one shared w
				if im.w != ims[0].w {
					fused = false
					break
				}
			}
		}
		if fused {
			w := ims[0].w
			var t0, t1, t2, t3 float64
			for g := 0; g < ng; g++ {
				pp := hxy[g]
				q := l - pp
				pp2, q2 := pp*pp, q*q
				d2 := dxy2[g]
				z := chiZ[g]
				// One running product per Gauss point: num/den accumulates
				// Π (q+r1)(pp+r0)/ρ² over the group's images, each factor in
				// the same cancellation-rewritten form logI0 uses, so a
				// single logarithm yields Σ i0. i0 > 0 for every image
				// (pp+q = l > 0), so the fused sum has no cancellation.
				num, den := 1.0, 1.0
				sd := 0.0
				for _, im := range ims {
					dz := z - im.az
					rho2 := d2 + dz*dz - pp2
					if rho2 < r2min {
						rho2 = r2min
					}
					r0 := math.Sqrt(rho2 + pp2)
					r1 := math.Sqrt(rho2 + q2)
					if pp >= 0 {
						num *= pp + r0
					} else {
						num *= rho2
						den *= r0 - pp
					}
					if q >= 0 {
						num *= q + r1
					} else {
						num *= rho2
						den *= r1 - q
					}
					den *= rho2
					sd += r1 - r0
				}
				i0 := math.Log(num / den)
				if linear {
					i1 := (sd + pp*i0) * invL
					in0 := i0 - i1
					t0 += wsh0[g] * in0
					t1 += wsh0[g] * i1
					t2 += wsh1[g] * in0
					t3 += wsh1[g] * i1
				} else {
					t0 += wsh0[g] * i0
				}
			}
			if linear {
				group[0] += w * t0
				group[1] += w * t1
				group[2] += w * t2
				group[3] += w * t3
			} else {
				group[0] += w * t0
			}
		} else {
			for _, im := range ims {
				az, sz, w := im.az, im.sz, im.w
				// Accumulate the image's Gauss sum unweighted by w, applying
				// the series weight once per (image, entry) after the point
				// loop.
				var a0, a1, a2, a3 float64
				for g := 0; g < ng; g++ {
					dz := chiZ[g] - az
					pp := hxy[g] + sz*dz
					rho2 := dxy2[g] + dz*dz - pp*pp
					if rho2 < r2min {
						rho2 = r2min
					}
					q := l - pp
					var i0, dr float64
					if pp*pp+q*q < farT*rho2 {
						// Far term: asinh(pp/ρ)+asinh(q/ρ) by Maclaurin
						// polynomial — no logarithm.
						invRho := 1 / math.Sqrt(rho2)
						xp, xq := pp*invRho, q*invRho
						i0 = xp*asinhRatio(xp*xp) + xq*asinhRatio(xq*xq)
						if linear {
							dr = math.Sqrt(rho2+q*q) - math.Sqrt(rho2+pp*pp)
						}
					} else {
						r0 := math.Sqrt(rho2 + pp*pp)
						r1 := math.Sqrt(rho2 + q*q)
						i0 = logI0(pp, q, r0, r1, rho2)
						dr = r1 - r0
					}
					if linear {
						i1 := (dr + pp*i0) * invL
						in0 := i0 - i1
						a0 += wsh0[g] * in0
						a1 += wsh0[g] * i1
						a2 += wsh1[g] * in0
						a3 += wsh1[g] * i1
					} else {
						a0 += wsh0[g] * i0
					}
				}
				if linear {
					group[0] += w * a0
					group[1] += w * a1
					group[2] += w * a2
					group[3] += w * a3
				} else {
					group[0] += w * a0
				}
			}
		}
		gmax := 0.0
		for i, v := range group {
			out[i] += v
			if av := math.Abs(v); av > gmax {
				gmax = av
			}
			if av := math.Abs(out[i]); av > maxAccum {
				maxAccum = av
			}
		}
		if gmax <= a.opt.SeriesTol*maxAccum {
			smallGroups++
			if smallGroups >= 2 {
				break
			}
		} else {
			smallGroups = 0
		}
	}
	for i := range out {
		out[i] *= pe.pref
	}
}
