package bem

import (
	"context"
	"math"
	"runtime"
	"sync"
	"time"

	"earthing/internal/geom"
	"earthing/internal/quad"
	"earthing/internal/sched"
)

// FieldEvaluator is the batched, allocation-free field evaluation engine for
// the post-processing hot spot (§4.3): dense surface-potential and gradient
// rasters cost O(points × elements × images) kernel evaluations, and the
// legacy per-point path re-derives every image-reflected segment
// im.ApplySegment(el.Seg) for every observation point even though the
// reflected geometry depends only on (element, image).
//
// The evaluator splits that work into a precompute phase and a streaming
// phase. At construction (lazily, per observation layer) it flattens each
// element's grouped image expansion into contiguous arrays. Because every
// image is affine in z only, an image segment shares the (x, y) geometry of
// its source element: three scalars per image — the transformed endpoint
// depth az = Sign·A.Z + Offset, the transformed axial direction component
// sz = Sign·t.z, and the series weight — fully describe it. The per-point
// inner loop then reduces to a cache-friendly scan over flat float64 arrays
// with two square roots and one logarithm per image (the closed form
// asinh(a) + asinh(b) = log((a+√(a²+1))·(b+√(b²+1))) evaluated
// cancellation-safely), preserving the element order, KahanSum accumulation
// and per-group tolerance early-exit of the legacy path to ≪ 1e-10.
//
// Layer pairs without an image expansion (N ≥ 3 layer models outside the
// top layer) keep the exact Gauss-quadrature fallback of the legacy path.
//
// Obtain one with Assembler.Evaluator (cached, concurrency-safe); all batch
// and per-point methods are safe for concurrent use.
type FieldEvaluator struct {
	a *Assembler
	// plans[l-1] is the lazily built flattened plan for observation layer l.
	plans []lazyPlan
}

type lazyPlan struct {
	once sync.Once
	plan *evalPlan
}

// evalPlan holds, for one observation layer, every element's image expansion
// flattened into contiguous arrays (computed once, reused for every point).
type evalPlan struct {
	elems []planElem
	// byElem maps a mesh element index to its position in elems (−1 for
	// quadrature-fallback elements) — the random-access door the flat
	// assembly kernel uses to address one source element's image table.
	byElem []int32
	// quadElems are elements whose (src, obs) layer pair has no image
	// expansion; they fall back to quadrature of Model.PointPotential.
	quadElems []int32

	// imgs is the flattened image stream; one record fully describes an
	// image-reflected segment given its element's shared (x, y) geometry.
	// A single struct stream (rather than parallel arrays) lets the point
	// loop range over subslices bounds-check-free.
	imgs []planImage
	// grpOff[g] is the first image of series group g; group g spans
	// imgs[grpOff[g]:grpOff[g+1]]. Elements own the consecutive group ranges
	// [planElem.grpLo, planElem.grpHi); a trailing sentinel closes the last.
	grpOff []int32
}

// planImage is one image-reflected segment: the transformed endpoint depth
// az = Sign·A.Z + Offset, the transformed axial direction component
// sz = Sign·t.z, and the series weight.
type planImage struct {
	az, sz, w float64
}

// planElem is the per-element header of a plan: the observation-point-
// invariant geometry and prefactors of one source element.
type planElem struct {
	pref    float64 // 1/(4π·γ_src)
	radius2 float64 // conductor radius squared (thin-wire ρ clamp)
	l, invL float64 // element length and its reciprocal
	ax, ay  float64 // segment start (x, y) — shared by every image
	tx, ty  float64 // axial unit direction (x, y) — shared by every image
	tz      float64 // axial unit direction z of the source segment
	dof0    int32
	dof1    int32 // valid only for linear elements
	grpLo   int32
	grpHi   int32
}

// newFieldEvaluator prepares an evaluator; plans are built per observation
// layer on first use.
func newFieldEvaluator(a *Assembler) *FieldEvaluator {
	return &FieldEvaluator{a: a, plans: make([]lazyPlan, a.model.NumLayers())}
}

// Evaluator returns the batched field evaluation engine for this assembler,
// building it on first call. The evaluator shares the assembler's immutable
// precomputed state and is safe for concurrent use.
func (a *Assembler) Evaluator() *FieldEvaluator {
	a.evalOnce.Do(func() { a.eval = newFieldEvaluator(a) })
	return a.eval
}

// plan returns (building on first use) the flattened plan for an observation
// layer.
func (fe *FieldEvaluator) plan(obsLayer int) *evalPlan {
	lp := &fe.plans[obsLayer-1]
	lp.once.Do(func() { lp.plan = buildPlan(fe.a, obsLayer) })
	return lp.plan
}

// buildPlan flattens every element's image expansion for one observation
// layer. This is the precompute half of the engine: ApplySegment and the
// per-element prefactors run once here instead of once per point.
func buildPlan(a *Assembler, obsLayer int) *evalPlan {
	p := &evalPlan{byElem: make([]int32, len(a.mesh.Elements))}
	for e := range a.mesh.Elements {
		el := &a.mesh.Elements[e]
		srcLayer := a.elemLayer[e]
		groups, ok := a.groups[[2]int{srcLayer, obsLayer}]
		if !ok {
			p.byElem[e] = -1
			p.quadElems = append(p.quadElems, int32(e))
			continue
		}
		p.byElem[e] = int32(len(p.elems))
		l := el.Seg.Length()
		t := el.Seg.Dir()
		pe := planElem{
			pref:    1 / (4 * math.Pi * a.model.Conductivity(srcLayer)),
			radius2: el.Radius * el.Radius,
			l:       l,
			ax:      el.Seg.A.X,
			ay:      el.Seg.A.Y,
			tx:      t.X,
			ty:      t.Y,
			tz:      t.Z,
			dof0:    int32(el.DoF[0]),
			grpLo:   int32(len(p.grpOff)),
		}
		if l > 0 {
			pe.invL = 1 / l
		}
		if a.linear {
			pe.dof1 = int32(el.DoF[1])
		}
		for _, grp := range groups {
			p.grpOff = append(p.grpOff, int32(len(p.imgs)))
			for _, im := range grp {
				p.imgs = append(p.imgs, planImage{
					az: im.Sign*el.Seg.A.Z + im.Offset,
					sz: im.Sign * t.Z,
					w:  im.Weight,
				})
			}
		}
		pe.grpHi = int32(len(p.grpOff))
		p.elems = append(p.elems, pe)
	}
	p.grpOff = append(p.grpOff, int32(len(p.imgs)))
	return p
}

// logI0 returns i0 = asinh(q/ρ) + asinh(p/ρ) = log((q+r1)(p+r0)/ρ²), where
// r0 = √(ρ²+p²), r1 = √(ρ²+q²). Negative p or q would cancel against its
// root, so those factors are rewritten as ρ²/(r−|·|). One log replaces the
// two asinh calls of the per-point path; the result agrees to a few ulp.
func logI0(p, q, r0, r1, rho2 float64) float64 {
	u := q + r1
	if q < 0 {
		u = rho2 / (r1 - q)
	}
	v := p + r0
	if p < 0 {
		v = rho2 / (r0 - p)
	}
	return math.Log(u * v / rho2)
}

// PotentialAt evaluates the earth potential V(x) (per unit GPR) from the
// solved DoF vector, matching Assembler.Potential to well below 1e-10. It
// allocates nothing once the observation layer's plan is built, so it is the
// per-point core the batch methods stream over.
func (fe *FieldEvaluator) PotentialAt(x geom.Vec3, sigma []float64) float64 {
	a := fe.a
	p := fe.plan(a.model.LayerOf(math.Max(x.Z, 0)))
	imgs, grpOff := p.imgs, p.grpOff
	linear := a.linear

	var total quad.KahanSum
	for ei := range p.elems {
		pe := &p.elems[ei]
		s0 := sigma[pe.dof0]
		var ds float64
		if linear {
			ds = sigma[pe.dof1] - s0
		}
		dx := x.X - pe.ax
		dy := x.Y - pe.ay
		hxy := dx*pe.tx + dy*pe.ty
		dxy2 := dx*dx + dy*dy
		l, invL, r2min := pe.l, pe.invL, pe.radius2

		var accum float64
		maxAccum := 0.0
		smallGroups := 0
		for g := pe.grpLo; g < pe.grpHi; g++ {
			var gsum float64
			for _, im := range imgs[grpOff[g]:grpOff[g+1]] {
				dz := x.Z - im.az
				pp := hxy + im.sz*dz
				pp2 := pp * pp
				rho2 := dxy2 + dz*dz - pp2
				if rho2 < r2min {
					rho2 = r2min
				}
				q := l - pp
				r0 := math.Sqrt(rho2 + pp2)
				r1 := math.Sqrt(rho2 + q*q)
				i0 := logI0(pp, q, r0, r1, rho2)
				if linear {
					i1 := (r1 - r0 + pp*i0) * invL
					gsum += im.w * (i0*s0 + i1*ds)
				} else {
					gsum += im.w * i0 * s0
				}
			}
			accum += gsum
			if av := math.Abs(accum); av > maxAccum {
				maxAccum = av
			}
			if math.Abs(gsum) <= a.opt.SeriesTol*maxAccum {
				smallGroups++
				if smallGroups >= 2 {
					break
				}
			} else {
				smallGroups = 0
			}
		}
		total.Add(pe.pref * accum)
	}
	for _, e := range p.quadElems {
		total.Add(a.elementPotentialQuadrature(int(e), x, sigma))
	}
	return total.Sum()
}

// GradientAt evaluates ∇V(x) (V/m per unit GPR), matching
// Assembler.GradPotential; like PotentialAt it is allocation-free in steady
// state for image-kernel layer pairs.
func (fe *FieldEvaluator) GradientAt(x geom.Vec3, sigma []float64) geom.Vec3 {
	a := fe.a
	p := fe.plan(a.model.LayerOf(math.Max(x.Z, 0)))
	imgs, grpOff := p.imgs, p.grpOff
	linear := a.linear

	var total geom.Vec3
	for ei := range p.elems {
		pe := &p.elems[ei]
		s0 := sigma[pe.dof0]
		var ds float64
		if linear {
			ds = sigma[pe.dof1] - s0
		}
		dx := x.X - pe.ax
		dy := x.Y - pe.ay
		hxy := dx*pe.tx + dy*pe.ty
		l, invL := pe.l, pe.invL
		minRho := math.Sqrt(pe.radius2)
		tiny := 1e-14 * (1 + l)

		var accX, accY, accZ float64
		maxAccum := 0.0
		smallGroups := 0
		for g := pe.grpLo; g < pe.grpHi; g++ {
			var gx, gy, gz float64
			for _, im := range imgs[grpOff[g]:grpOff[g+1]] {
				szi := im.sz
				dz := x.Z - im.az
				pp := hxy + szi*dz
				// Radial vector from the (image) axis to x; its norm is the
				// true ρ before the thin-wire clamp.
				rx := dx - pe.tx*pp
				ry := dy - pe.ty*pp
				rz := dz - szi*pp
				rhoTrue := math.Sqrt(rx*rx + ry*ry + rz*rz)
				rho := rhoTrue
				clamped := false
				if rho < minRho {
					rho = minRho
					clamped = true
				}
				var hx, hy, hz float64 // ρ̂ (zero on-axis/clamped, as legacy)
				if rhoTrue > tiny && !clamped {
					inv := 1 / rhoTrue
					hx, hy, hz = rx*inv, ry*inv, rz*inv
				}
				rho2 := rho * rho
				q := l - pp
				r0 := math.Sqrt(rho2 + pp*pp)
				r1 := math.Sqrt(rho2 + q*q)
				i0 := logI0(pp, q, r0, r1, rho2)

				di0dp := 1/r0 - 1/r1
				di0drho := -(pp/r0 + q/r1) / rho
				di1dp := (-q/r1 - pp/r0 + i0 + pp*di0dp) * invL
				di1drho := (rho/r1 - rho/r0 + pp*di0drho) * invL

				// g = g0·s0 + g1·(s1−s0) with g_k = t̂·di_k/dp + ρ̂·di_k/dρ.
				coefT := di0dp * s0
				coefR := di0drho * s0
				if linear {
					coefT += di1dp * ds
					coefR += di1drho * ds
				}
				wi := im.w
				gx += wi * (pe.tx*coefT + hx*coefR)
				gy += wi * (pe.ty*coefT + hy*coefR)
				gz += wi * (szi*coefT + hz*coefR)
			}
			accX += gx
			accY += gy
			accZ += gz
			if n := math.Sqrt(accX*accX + accY*accY + accZ*accZ); n > maxAccum {
				maxAccum = n
			}
			if math.Sqrt(gx*gx+gy*gy+gz*gz) <= a.opt.SeriesTol*maxAccum {
				smallGroups++
				if smallGroups >= 2 {
					break
				}
			} else {
				smallGroups = 0
			}
		}
		total.X += pe.pref * accX
		total.Y += pe.pref * accY
		total.Z += pe.pref * accZ
	}
	for _, e := range p.quadElems {
		total = total.Add(a.elementGradByDifferences(int(e), x, sigma))
	}
	return total
}

// BatchOptions configures a batched evaluation.
type BatchOptions struct {
	// Workers is the parallel width; 0 selects GOMAXPROCS, 1 runs
	// sequentially in the calling goroutine.
	Workers int
	// Schedule distributes points over workers (default dynamic,1 — the
	// paper's best schedule; raster points near conductors cost more series
	// groups than far ones, so dynamic balancing matters here too).
	Schedule sched.Schedule
}

func (o BatchOptions) withDefaults() BatchOptions {
	if o.Schedule.IsZero() {
		o.Schedule = sched.Schedule{Kind: sched.Dynamic, Chunk: 1}
	}
	return o
}

// BatchStats describes how a batched evaluation ran.
type BatchStats struct {
	// Sched reports the work distribution of the point loop.
	Sched sched.Stats
	// Busy is the per-worker busy time.
	Busy []time.Duration
	// Wall is the total wall-clock time of the batch.
	Wall time.Duration
}

// PredictedSpeedup returns Σbusy/max(busy) — the load-balance-limited
// speed-up the schedule would achieve with one core per worker, the same
// quantity the matrix-generation tables report.
func (s BatchStats) PredictedSpeedup() float64 {
	var sum, max time.Duration
	for _, b := range s.Busy {
		sum += b
		if b > max {
			max = b
		}
	}
	if max == 0 {
		return 1
	}
	return float64(sum) / float64(max)
}

// PointsPerSec returns the aggregate evaluation throughput of the batch.
func (s BatchStats) PointsPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Sched.Iterations) / s.Wall.Seconds()
}

// PotentialBatch evaluates scale·V(points[i]) into out[i] for every point,
// distributing points over workers. out must have len(points). The per-point
// arithmetic is identical to PotentialAt regardless of worker count, so
// results are bit-identical across schedules and parallel widths.
func (fe *FieldEvaluator) PotentialBatch(points []geom.Vec3, sigma []float64, scale float64, out []float64, opt BatchOptions) BatchStats {
	//lint:ignore errdrop background context never cancels, so the error is always nil
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	st, _ := fe.PotentialBatchCtx(context.Background(), points, sigma, scale, out, opt)
	return st
}

// PotentialBatchCtx is PotentialBatch with cooperative cancellation at point
// (chunk) boundaries. On cancellation out is partially filled and ctx.Err()
// is returned; callers must discard the raster.
func (fe *FieldEvaluator) PotentialBatchCtx(ctx context.Context, points []geom.Vec3, sigma []float64, scale float64, out []float64, opt BatchOptions) (BatchStats, error) {
	return fe.runBatch(ctx, len(points), opt, func(i int) {
		out[i] = scale * fe.PotentialAt(points[i], sigma)
	})
}

// GradBatch evaluates ∇V(points[i]) (per unit GPR, unscaled) into out[i].
// out must have len(points).
func (fe *FieldEvaluator) GradBatch(points []geom.Vec3, sigma []float64, out []geom.Vec3, opt BatchOptions) BatchStats {
	//lint:ignore errdrop background context never cancels, so the error is always nil
	//lint:ignore ctxflow synchronous compatibility wrapper; the ctx-first variant is the primary API
	st, _ := fe.GradBatchCtx(context.Background(), points, sigma, out, opt)
	return st
}

// GradBatchCtx is GradBatch with cooperative cancellation, mirroring
// PotentialBatchCtx.
func (fe *FieldEvaluator) GradBatchCtx(ctx context.Context, points []geom.Vec3, sigma []float64, out []geom.Vec3, opt BatchOptions) (BatchStats, error) {
	return fe.runBatch(ctx, len(points), opt, func(i int) {
		out[i] = fe.GradientAt(points[i], sigma)
	})
}

// runBatch distributes body over n points with per-worker busy tracking.
func (fe *FieldEvaluator) runBatch(ctx context.Context, n int, opt BatchOptions, body func(i int)) (BatchStats, error) {
	opt = opt.withDefaults()
	maxW := opt.Workers
	if maxW <= 0 {
		maxW = runtime.GOMAXPROCS(0)
	}
	busy := make([]time.Duration, maxW+1)
	start := time.Now()
	st, err := sched.ForStatsCtx(ctx, n, opt.Workers, opt.Schedule, func(i, wk int) {
		t0 := time.Now()
		body(i)
		if wk >= len(busy) {
			wk = len(busy) - 1
		}
		busy[wk] += time.Since(t0)
	})
	return BatchStats{Sched: st, Busy: busy[:st.Workers], Wall: time.Since(start)}, err
}
