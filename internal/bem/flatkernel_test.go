package bem

import (
	"math"
	"testing"

	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/soil"
)

// flatFixtureModels returns the soil models the flat-kernel equivalence runs
// under: uniform, two-layer, and a three-layer model whose deep elements
// exercise the mixed image/quadrature dispatch.
func flatFixtureModels(t *testing.T) map[string]soil.Model {
	t.Helper()
	ml, err := soil.NewMultiLayer([]float64{0.004, 0.02, 0.01}, []float64{1.0, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	ml.Tol = 1e-6
	return map[string]soil.Model{
		"uniform":    soil.NewUniform(0.01),
		"two-layer":  soil.NewTwoLayer(0.005, 0.016, 1.0),
		"multilayer": ml,
	}
}

func flatFixtureMesh(t *testing.T, model soil.Model, kind grid.ElementKind) *grid.Mesh {
	t.Helper()
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	g.AddRod(5, 5, 0.8, 2.5, 0.007)
	var depths []float64
	if model.NumLayers() > 1 {
		depths = []float64{1.0, 3.0}
	}
	m, err := grid.Discretize(g.SplitAtDepths(depths...), kind, 0)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFlatKernelMatchesReference pins the flat assembly kernel to the
// reference: every global matrix entry agrees to ≤ 1e-12 relative and the
// equivalent resistance of the solved system to ≤ 1e-10 relative (the
// acceptance bar), across soil models and element kinds.
func TestFlatKernelMatchesReference(t *testing.T) {
	for name, model := range flatFixtureModels(t) {
		for _, kind := range []grid.ElementKind{grid.Linear, grid.Constant} {
			m := flatFixtureMesh(t, model, kind)
			ref, err := New(m, model, Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			flat, err := New(m, model, Options{Workers: 1, Kernel: FlatKernel})
			if err != nil {
				t.Fatal(err)
			}
			rRef, _, err := ref.Matrix()
			if err != nil {
				t.Fatal(err)
			}
			rFlat, _, err := flat.Matrix()
			if err != nil {
				t.Fatal(err)
			}
			n := rRef.Order()
			scale := rRef.MaxAbs()
			for i := 0; i < n; i++ {
				for j := 0; j <= i; j++ {
					d := math.Abs(rRef.At(i, j) - rFlat.At(i, j))
					if d > 1e-12*scale {
						t.Fatalf("%s/%v: entry (%d,%d): reference %v flat %v (Δ %g vs scale %g)",
							name, kind, i, j, rRef.At(i, j), rFlat.At(i, j), d, scale)
					}
				}
			}
			reqRef := solveStoreReq(t, m, rRef)
			reqFlat := solveStoreReq(t, m, rFlat)
			if rel := math.Abs(reqRef-reqFlat) / reqRef; rel > 1e-10 {
				t.Fatalf("%s/%v: Req reference %v flat %v (rel Δ %g > 1e-10)",
					name, kind, reqRef, reqFlat, rel)
			}
		}
	}
}

func solveStoreReq(t *testing.T, m *grid.Mesh, r *linalg.SymMatrix) float64 {
	t.Helper()
	ch, err := linalg.NewCholesky(r)
	if err != nil {
		t.Fatal(err)
	}
	x, err := ch.Solve(RHS(m))
	if err != nil {
		t.Fatal(err)
	}
	return 1 / TotalCurrent(m, x)
}

// TestFlatKernelColumnsMatchMatrix pins the column API under the flat kernel:
// ComputeColumn + AssembleStore must reproduce MatrixCtx bit for bit, the
// invariant the sweep engine's interleaved assembly relies on.
func TestFlatKernelColumnsMatchMatrix(t *testing.T) {
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)
	m := flatFixtureMesh(t, model, grid.Linear)
	a, err := New(m, model, Options{Workers: 1, Kernel: FlatKernel})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := a.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	store := make([]float64, a.StoreSize())
	var ar Arena
	for beta := 0; beta < a.NumColumns(); beta++ {
		a.ComputeColumn(beta, store, a.ColumnScratchFromArena(&ar))
	}
	got := a.AssembleStore(store)
	n := want.Order()
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			if want.At(i, j) != got.At(i, j) {
				t.Fatalf("entry (%d,%d): Matrix %v, column path %v", i, j, want.At(i, j), got.At(i, j))
			}
		}
	}
}

// TestFlatKernelColumnZeroAllocs proves the arena contract: once the plan and
// the arena scratch are warm, computing a column allocates nothing, for both
// kernels.
func TestFlatKernelColumnZeroAllocs(t *testing.T) {
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)
	m := flatFixtureMesh(t, model, grid.Linear)
	for _, kernel := range []KernelStrategy{ReferenceKernel, FlatKernel} {
		a, err := New(m, model, Options{Workers: 1, Kernel: kernel})
		if err != nil {
			t.Fatal(err)
		}
		store := make([]float64, a.StoreSize())
		var ar Arena
		cs := a.ColumnScratchFromArena(&ar)
		beta := a.NumColumns() - 1
		a.ComputeColumn(beta, store, cs) // warm the lazy plan
		allocs := testing.AllocsPerRun(10, func() {
			a.ComputeColumn(beta, store, a.ColumnScratchFromArena(&ar))
		})
		if allocs != 0 {
			t.Fatalf("kernel %v: %v allocations per warmed column", kernel, allocs)
		}
	}
}

// TestArenaReuseAcrossAssemblers pins the cross-job reuse the sweep workers
// depend on: assemblers with matching scratch dimensions share the cached
// scratch, and a dimension change rebuilds it without corrupting results.
func TestArenaReuseAcrossAssemblers(t *testing.T) {
	modelA := soil.NewUniform(0.01)
	modelB := soil.NewTwoLayer(0.005, 0.016, 1.0)
	mA := flatFixtureMesh(t, modelA, grid.Linear)
	mB := flatFixtureMesh(t, modelB, grid.Linear)
	aA, err := New(mA, modelA, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	aB, err := New(mB, modelB, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var ar Arena
	csA := aA.ColumnScratchFromArena(&ar)
	if aB.ColumnScratchFromArena(&ar) != csA {
		t.Fatal("same-dimension assemblers did not share the arena scratch")
	}
	// A constant-element mesh has k=1: dimensions change, scratch rebuilds.
	mC, err := grid.Discretize(grid.RectMesh(0, 0, 10, 10, 2, 2, 0.6, 0.006), grid.Constant, 0)
	if err != nil {
		t.Fatal(err)
	}
	aC, err := New(mC, modelA, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	csC := aC.ColumnScratchFromArena(&ar)
	if csC == csA {
		t.Fatal("dimension change did not rebuild the scratch")
	}
	// And the rebuilt scratch still computes correct columns.
	store := make([]float64, aC.StoreSize())
	aC.ComputeColumn(0, store, csC)
	want, _, err := aC.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	for beta := 1; beta < aC.NumColumns(); beta++ {
		aC.ComputeColumn(beta, store, aC.ColumnScratchFromArena(&ar))
	}
	got := aC.AssembleStore(store)
	for i := 0; i < want.Order(); i++ {
		if want.At(i, i) != got.At(i, i) {
			t.Fatalf("arena-backed column %d diverged from Matrix", i)
		}
	}
}

func assemblyBenchAssembler(b *testing.B, kernel KernelStrategy) *Assembler {
	b.Helper()
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)
	g := grid.RectMesh(0, 0, 30, 30, 4, 4, 0.8, 0.006)
	m, err := grid.Discretize(g.SplitAtDepths(1.0), grid.Linear, 1.5)
	if err != nil {
		b.Fatal(err)
	}
	a, err := New(m, model, Options{Workers: 1, Kernel: kernel})
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// BenchmarkAssemblyReference / BenchmarkAssemblyFlat are the CI bench smoke
// pair for the matrix-generation kernel rewrite (single-thread).
func BenchmarkAssemblyReference(b *testing.B) {
	a := assemblyBenchAssembler(b, ReferenceKernel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.Matrix(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAssemblyFlat(b *testing.B) {
	a := assemblyBenchAssembler(b, FlatKernel)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := a.Matrix(); err != nil {
			b.Fatal(err)
		}
	}
}
