package bem

// Arena is a per-worker scratch reservoir for column assembly across many
// assemblers. The sweep engine streams columns of different jobs through each
// worker goroutine; giving every (job, worker) combination its own
// ColumnScratch multiplies allocations by the job count, even though at any
// instant a worker uses exactly one. An Arena caches the most recently built
// scratch together with its float64 backing storage: consecutive columns of
// assemblers with the same element kind and integration orders (the common
// sweep case — same mesh family, different soils) reuse the scratch as-is,
// and a switch to different dimensions re-slices the backing without
// reallocating when capacity suffices. The zero value is ready to use.
//
// An Arena must not be shared between concurrent workers, exactly like the
// ColumnScratch it vends.
type Arena struct {
	buf    []float64
	kk, ng int
	cs     *ColumnScratch
}

// ColumnScratchFromArena returns a ColumnScratch for this assembler backed by
// the arena, building (or re-slicing) it only when the cached one has the
// wrong dimensions. In steady state this is a two-comparison hit and column
// computation allocates nothing.
func (a *Assembler) ColumnScratchFromArena(ar *Arena) *ColumnScratch {
	kk := a.k * a.k
	ng := a.maxGauss()
	if ar.cs != nil && ar.kk == kk && ar.ng == ng {
		return ar.cs
	}
	need := 2*kk + a.k + 5*ng
	if cap(ar.buf) < need {
		ar.buf = make([]float64, need)
	}
	b := ar.buf[:need]
	for i := range b {
		b[i] = 0
	}
	o1 := kk
	o2 := 2 * kk
	o3 := o2 + a.k
	o4 := o3 + ng
	o5 := o4 + ng
	o6 := o5 + ng
	o7 := o6 + ng
	ar.cs = &ColumnScratch{s: &pairScratch{
		elemental: b[0:o1:o1],
		group:     b[o1:o2:o2],
		inner:     b[o2:o3:o3],
		hxy:       b[o3:o4:o4],
		dxy2:      b[o4:o5:o5],
		chiZ:      b[o5:o6:o6],
		wsh0:      b[o6:o7:o7],
		wsh1:      b[o7:need:need],
	}}
	ar.kk, ar.ng = kk, ng
	return ar.cs
}
