package bem

import (
	"math"
	"math/rand"
	"testing"

	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/soil"
)

// TestSegmentIntegralGradsMatchDifferences verifies the closed-form
// gradients against central finite differences of segmentIntegrals.
func TestSegmentIntegralGradsMatchDifferences(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	const h = 1e-6
	for trial := 0; trial < 300; trial++ {
		a := geom.V(r.NormFloat64()*2, r.NormFloat64()*2, 1+r.Float64())
		b := a.Add(geom.V(r.NormFloat64(), r.NormFloat64(), r.Float64()).Scale(3))
		if b.Sub(a).Norm() < 0.2 {
			continue
		}
		x := geom.V(r.NormFloat64()*5, r.NormFloat64()*5, r.Float64()*4)
		if geom.Seg(a, b).AxialDistToPoint(x) < 0.05 {
			continue // stay away from the clamp region where ∇ is defined ≡ 0 radially
		}
		g0, g1 := segmentIntegralGrads(x, a, b, 0.001)

		for dim := 0; dim < 3; dim++ {
			var e geom.Vec3
			switch dim {
			case 0:
				e = geom.V(h, 0, 0)
			case 1:
				e = geom.V(0, h, 0)
			default:
				e = geom.V(0, 0, h)
			}
			i0p, i1p := segmentIntegrals(x.Add(e), a, b, 0.001)
			i0m, i1m := segmentIntegrals(x.Sub(e), a, b, 0.001)
			fd0 := (i0p - i0m) / (2 * h)
			fd1 := (i1p - i1m) / (2 * h)
			var a0, a1 float64
			switch dim {
			case 0:
				a0, a1 = g0.X, g1.X
			case 1:
				a0, a1 = g0.Y, g1.Y
			default:
				a0, a1 = g0.Z, g1.Z
			}
			scale := 1 + math.Abs(fd0) + math.Abs(fd1)
			if math.Abs(a0-fd0) > 2e-4*scale || math.Abs(a1-fd1) > 2e-4*scale {
				t.Fatalf("trial %d dim %d: analytic (%v, %v) vs FD (%v, %v)\nx=%v seg=%v->%v",
					trial, dim, a0, a1, fd0, fd1, x, a, b)
			}
		}
	}
}

// solvedAssembler returns a solved small system for gradient tests.
func solvedAssembler(t *testing.T, model soil.Model) (*Assembler, []float64) {
	t.Helper()
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	m, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(m, model, Options{SeriesTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := a.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-12})
	if err != nil || !res.Converged {
		t.Fatalf("CG: %v", err)
	}
	return a, res.X
}

// TestGradPotentialMatchesDifferences validates the assembled ∇V against
// finite differences of the assembled V for both soil families.
func TestGradPotentialMatchesDifferences(t *testing.T) {
	for _, model := range []soil.Model{
		soil.NewUniform(0.016),
		soil.NewTwoLayer(0.005, 0.016, 1.2),
	} {
		a, sigma := solvedAssembler(t, model)
		const h = 1e-5
		for _, x := range []geom.Vec3{
			geom.V(25, 10, 0.3), geom.V(10, 10, 2.0), geom.V(-5, -5, 0.5), geom.V(30, 30, 3),
		} {
			g := a.GradPotential(x, sigma)
			fd := geom.V(
				(a.Potential(x.Add(geom.V(h, 0, 0)), sigma)-a.Potential(x.Add(geom.V(-h, 0, 0)), sigma))/(2*h),
				(a.Potential(x.Add(geom.V(0, h, 0)), sigma)-a.Potential(x.Add(geom.V(0, -h, 0)), sigma))/(2*h),
				(a.Potential(x.Add(geom.V(0, 0, h)), sigma)-a.Potential(x.Add(geom.V(0, 0, -h)), sigma))/(2*h),
			)
			if !g.ApproxEqual(fd, 1e-4*(1+fd.Norm())) {
				t.Errorf("%s at %v: analytic %v vs FD %v", model.Describe(), x, g, fd)
			}
		}
	}
}

// TestSurfaceFieldIsHorizontal checks the boundary condition σᵀn = 0 on the
// earth surface: the current density (and E) must have no vertical
// component at z = 0.
func TestSurfaceFieldIsHorizontal(t *testing.T) {
	a, sigma := solvedAssembler(t, soil.NewTwoLayer(0.005, 0.016, 1.2))
	for _, x := range []geom.Vec3{geom.V(25, 10, 0), geom.V(-3, 5, 0), geom.V(10, 40, 0)} {
		e := a.ElectricField(x, sigma)
		if math.Abs(e.Z) > 1e-3*(1+e.Norm()) {
			t.Errorf("vertical E at surface point %v: %v", x, e)
		}
	}
}

// TestCurrentDensityRespectsOhm checks J = −γ∇V with the local layer
// conductivity, including the jump of J's magnitude across the interface
// while the tangential E stays continuous.
func TestCurrentDensityRespectsOhm(t *testing.T) {
	model := soil.NewTwoLayer(0.005, 0.016, 1.2)
	a, sigma := solvedAssembler(t, model)
	x := geom.V(25, 10, 0.5)
	j := a.CurrentDensity(x, sigma)
	e := a.ElectricField(x, sigma)
	want := e.Scale(model.Conductivity(1))
	if !j.ApproxEqual(want, 1e-12*(1+want.Norm())) {
		t.Errorf("J = %v, γE = %v", j, e.Scale(model.Conductivity(1)))
	}
	// Normal current continuity across the interface: Jz just above equals
	// Jz just below (eq. 2.3's transmission condition).
	const eps = 1e-3
	jUp := a.CurrentDensity(geom.V(25, 10, 1.2-eps), sigma)
	jDn := a.CurrentDensity(geom.V(25, 10, 1.2+eps), sigma)
	if math.Abs(jUp.Z-jDn.Z) > 5e-3*(1+math.Abs(jUp.Z)) {
		t.Errorf("normal current jump across interface: %v vs %v", jUp.Z, jDn.Z)
	}
}

// TestFieldPointsTowardElectrodeAtDepth: below the grid the potential
// decreases away from the conductors, so E points away from the grid
// (current flows outward from the electrode).
func TestFieldDirection(t *testing.T) {
	a, sigma := solvedAssembler(t, soil.NewUniform(0.016))
	// Far to the +x side at electrode depth: E should point mainly +x.
	e := a.ElectricField(geom.V(60, 10, 0.8), sigma)
	if e.X <= 0 {
		t.Errorf("E at +x side points inward: %v", e)
	}
	if math.Abs(e.Y) > e.X {
		t.Errorf("unexpected transverse field: %v", e)
	}
}

// TestGradFallbackForHankelModels checks the finite-difference fallback is
// wired for multilayer models.
func TestGradFallbackForHankelModels(t *testing.T) {
	if testing.Short() {
		t.Skip("multilayer assembly is slow")
	}
	ml, err := soil.NewMultiLayer([]float64{0.005, 0.016}, []float64{1.2})
	if err != nil {
		t.Fatal(err)
	}
	ml.Tol = 1e-6
	g := grid.RectMesh(0, 0, 10, 10, 2, 2, 0.8, 0.006)
	m, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(m, ml, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := a.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	grad := a.GradPotential(geom.V(15, 5, 0.5), res.X)
	if grad.Norm() == 0 || !grad.IsFinite() {
		t.Errorf("fallback gradient = %v", grad)
	}
	// Away from the grid on +x, V decreases with x.
	if grad.X >= 0 {
		t.Errorf("potential not decaying: grad %v", grad)
	}
}

func BenchmarkGradPotential(b *testing.B) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	m, _ := grid.Discretize(g, grid.Linear, 0)
	a, err := New(m, soil.NewTwoLayer(0.005, 0.016, 1.0), Options{})
	if err != nil {
		b.Fatal(err)
	}
	r, _, _ := a.Matrix()
	res, _ := linalg.SolveCG(r, RHS(m), linalg.CGOptions{})
	x := geom.V(25, 10, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.GradPotential(x, res.X)
	}
}
