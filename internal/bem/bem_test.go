package bem

import (
	"math"
	"math/rand"
	"testing"

	"earthing/internal/geom"
	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/quad"
	"earthing/internal/sched"
	"earthing/internal/soil"
)

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

// solveReq assembles and solves a grid under the given model, returning the
// equivalent resistance for a unit GPR.
func solveReq(t *testing.T, g *grid.Grid, model soil.Model, maxElem float64, opt Options) float64 {
	t.Helper()
	m, err := grid.Discretize(g, grid.Linear, maxElem)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(m, model, opt)
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := a.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %v", res.Residual)
	}
	i := TotalCurrent(m, res.X)
	if i <= 0 {
		t.Fatalf("non-positive total current %v", i)
	}
	return 1 / i
}

// TestSegmentIntegralsAgainstQuadrature verifies the closed forms of the
// inner integrals against adaptive numeric integration for random segments
// and field points.
func TestSegmentIntegralsAgainstQuadrature(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 300; trial++ {
		a := geom.V(r.NormFloat64()*3, r.NormFloat64()*3, r.Float64()*2)
		b := a.Add(geom.V(r.NormFloat64(), r.NormFloat64(), r.Float64()).Scale(2))
		if b.Sub(a).Norm() < 0.1 {
			continue
		}
		x := geom.V(r.NormFloat64()*4, r.NormFloat64()*4, r.Float64()*3)
		if geom.Seg(a, b).DistToPoint(x) < 0.05 {
			continue // quadrature reference becomes unreliable when singular
		}
		i0, i1 := segmentIntegrals(x, a, b, 0)
		l := b.Sub(a).Norm()
		q0 := quad.AdaptiveSimpson(func(s float64) float64 {
			return 1 / x.Dist(a.Lerp(b, s/l))
		}, 0, l, 1e-12, 40)
		q1 := quad.AdaptiveSimpson(func(s float64) float64 {
			return (s / l) / x.Dist(a.Lerp(b, s/l))
		}, 0, l, 1e-12, 40)
		if relDiff(i0, q0) > 1e-8 || relDiff(i1, q1) > 1e-8 {
			t.Fatalf("analytic (%v, %v) vs quadrature (%v, %v) for x=%v seg=%v->%v",
				i0, i1, q0, q1, x, a, b)
		}
	}
}

func TestSegmentIntegralsOnAxisClamped(t *testing.T) {
	// A field point exactly on the axis must produce finite integrals equal
	// to those of a point on the conductor surface.
	a, b := geom.V(0, 0, 1), geom.V(2, 0, 1)
	const radius = 0.01
	onAxis0, onAxis1 := segmentIntegrals(geom.V(1, 0, 1), a, b, radius)
	onSurf0, onSurf1 := segmentIntegrals(geom.V(1, radius, 1), a, b, radius)
	if math.IsInf(onAxis0, 0) || math.IsNaN(onAxis0) {
		t.Fatal("on-axis integral not finite")
	}
	if relDiff(onAxis0, onSurf0) > 1e-12 || relDiff(onAxis1, onSurf1) > 1e-12 {
		t.Errorf("clamp mismatch: axis (%v,%v) surface (%v,%v)", onAxis0, onAxis1, onSurf0, onSurf1)
	}
	// Shape split must sum to the constant integral.
	out := make([]float64, 2)
	shapeIntegrals(geom.V(0.3, 0.5, 1), a, b, radius, true, out)
	i0, _ := segmentIntegrals(geom.V(0.3, 0.5, 1), a, b, radius)
	if relDiff(out[0]+out[1], i0) > 1e-12 {
		t.Error("linear shape integrals do not sum to constant integral")
	}
}

func TestMatrixSPDAndSolvable(t *testing.T) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	m, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)
	a, err := New(m, model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, _, err := a.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	// Positive definite: Cholesky must succeed.
	ch, err := linalg.NewCholesky(r)
	if err != nil {
		t.Fatalf("Galerkin matrix not SPD: %v", err)
	}
	// Direct and PCG solutions agree (§4.3).
	xd, err := ch.Solve(RHS(m))
	if err != nil {
		t.Fatal(err)
	}
	res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-12})
	if err != nil || !res.Converged {
		t.Fatalf("CG: %v %+v", err, res)
	}
	for i := range xd {
		if relDiff(xd[i], res.X[i]) > 1e-6 {
			t.Fatalf("direct vs CG mismatch at %d: %v vs %v", i, xd[i], res.X[i])
		}
	}
	// Physical sanity: all nodal leakage densities positive for a convex grid.
	for i, s := range res.X {
		if s <= 0 {
			t.Errorf("non-positive leakage density at node %d: %v", i, s)
		}
	}
}

// TestParallelVariantsIdentical is the core parallel-correctness test: every
// loop strategy × schedule × assembly mode × worker count must produce the
// same matrix as the sequential reference (the paper's transformation
// guarantees identical elemental matrices; assembly order may differ only
// by float association, so compare with a tight tolerance).
func TestParallelVariantsIdentical(t *testing.T) {
	g := grid.RectMesh(0, 0, 30, 30, 4, 4, 0.8, 0.006)
	m, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := soil.NewTwoLayer(0.005, 0.016, 1.0)

	ref, err := New(m, model, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rRef, _, err := ref.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	scale := rRef.MaxAbs()

	variants := []Options{
		{Workers: 4, Loop: OuterLoop, Schedule: sched.Schedule{Kind: sched.Dynamic, Chunk: 1}},
		{Workers: 4, Loop: OuterLoop, Schedule: sched.Schedule{Kind: sched.Static, Chunk: 16}},
		{Workers: 4, Loop: OuterLoop, Schedule: sched.Schedule{Kind: sched.Guided, Chunk: 1}},
		{Workers: 3, Loop: InnerLoop, Schedule: sched.Schedule{Kind: sched.Dynamic, Chunk: 4}},
		{Workers: 4, Loop: OuterLoop, Assembly: MutexAssemble},
		{Workers: 2, Loop: InnerLoop, Assembly: MutexAssemble},
		{Workers: 8, Loop: OuterLoop, Schedule: sched.Schedule{Kind: sched.Static}},
	}
	for _, opt := range variants {
		a, err := New(m, model, opt)
		if err != nil {
			t.Fatal(err)
		}
		r, stats, err := a.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		if stats.Iterations == 0 {
			t.Errorf("%v/%v: no stats recorded", opt.Loop, opt.Schedule)
		}
		for i := 0; i < r.Order(); i++ {
			for j := 0; j <= i; j++ {
				if d := math.Abs(r.At(i, j) - rRef.At(i, j)); d > 1e-12*scale {
					t.Fatalf("%v/%v/%v: entry (%d,%d) differs by %v",
						opt.Loop, opt.Schedule, opt.Assembly, i, j, d)
				}
			}
		}
	}
}

// TestRodResistanceMatchesDwight validates the full pipeline against the
// classical driven-rod formula R = ρ/(2πL)·(ln(8L/d) − 1).
func TestRodResistanceMatchesDwight(t *testing.T) {
	const (
		gamma  = 0.01 // ρ = 100 Ω·m
		length = 3.0
		radius = 0.0075
	)
	g := grid.SingleRod(0, 0, 0, length, radius)
	req := solveReq(t, g, soil.NewUniform(gamma), 0.15, Options{})
	rho := 1 / gamma
	want := rho / (2 * math.Pi * length) * (math.Log(8*length/(2*radius)) - 1)
	if relDiff(req, want) > 0.03 {
		t.Errorf("rod Req = %.4f Ω, Dwight formula %.4f Ω", req, want)
	}
}

// TestWireResistanceMatchesSunde validates a buried horizontal wire against
// R = ρ/(πL)·(ln(2L/√(2·a·s)) − 1) (Sunde, wire of radius a at depth s).
func TestWireResistanceMatchesSunde(t *testing.T) {
	const (
		gamma  = 0.02
		length = 20.0
		radius = 0.005
		depth  = 0.8
	)
	g := grid.HorizontalWire(0, 0, depth, length, radius)
	req := solveReq(t, g, soil.NewUniform(gamma), 0.5, Options{})
	rho := 1 / gamma
	want := rho / (math.Pi * length) * (math.Log(2*length/math.Sqrt(2*radius*depth)) - 1)
	if relDiff(req, want) > 0.05 {
		t.Errorf("wire Req = %.4f Ω, Sunde formula %.4f Ω", req, want)
	}
}

// TestTwoLayerDegenerateMatchesUniformSystem checks that the full assembled
// system for K = 0 equals the uniform-soil system.
func TestTwoLayerDegenerateMatchesUniformSystem(t *testing.T) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	m, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	aU, err := New(m, soil.NewUniform(0.016), Options{})
	if err != nil {
		t.Fatal(err)
	}
	aT, err := New(m, soil.NewTwoLayer(0.016, 0.016, 1.0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rU, _, _ := aU.Matrix()
	rT, _, _ := aT.Matrix()
	scale := rU.MaxAbs()
	for i := 0; i < rU.Order(); i++ {
		for j := 0; j <= i; j++ {
			if math.Abs(rU.At(i, j)-rT.At(i, j)) > 1e-9*scale {
				t.Fatalf("entry (%d,%d): uniform %v vs K=0 two-layer %v", i, j, rU.At(i, j), rT.At(i, j))
			}
		}
	}
}

// TestBoundaryConditionRecovered solves a small grid and checks the computed
// potential on the electrode surface equals the imposed GPR (V = 1) — the
// defining equation (3.3) of the method.
func TestBoundaryConditionRecovered(t *testing.T) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	m, err := grid.Discretize(g, grid.Linear, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, model := range []soil.Model{
		soil.NewUniform(0.016),
		soil.NewTwoLayer(0.005, 0.016, 1.2),
	} {
		a, err := New(m, model, Options{GaussOrder: 6, SeriesTol: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		r, _, err := a.Matrix()
		if err != nil {
			t.Fatal(err)
		}
		res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-12})
		if err != nil || !res.Converged {
			t.Fatalf("CG: %v %+v", err, res)
		}
		// Sample the potential on several conductor surface points (mid
		// elements, offset by the radius).
		for _, e := range []int{0, 5, 11} {
			el := m.Elements[e]
			p := surfacePoint(el.Seg.Midpoint(), &el)
			v := a.Potential(p, res.X)
			if math.Abs(v-1) > 0.05 {
				t.Errorf("%s: V on electrode surface = %v, want 1", model.Describe(), v)
			}
		}
	}
}

// TestPotentialFarField checks V(x) → IΓ/(2πγ|x|) far from the grid
// (half-space monopole).
func TestPotentialFarField(t *testing.T) {
	const gamma = 0.016
	g := grid.RectMesh(0, 0, 10, 10, 2, 2, 0.8, 0.006)
	m, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(m, soil.NewUniform(gamma), Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, _, _ := a.Matrix()
	res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	iTot := TotalCurrent(m, res.X)
	for _, d := range []float64{300, 1000} {
		x := geom.V(5+d, 5, 0)
		got := a.Potential(x, res.X)
		want := iTot / (2 * math.Pi * gamma * d)
		if relDiff(got, want) > 0.02 {
			t.Errorf("far field at %v: %v want %v", d, got, want)
		}
	}
}

// TestQuadratureFallbackMatchesImages compares the Hankel-model assembly
// (quadrature path) against the image-series assembly on the same two-layer
// soil.
func TestQuadratureFallbackMatchesImages(t *testing.T) {
	if testing.Short() {
		t.Skip("multilayer quadrature assembly is slow")
	}
	g := grid.RectMesh(0, 0, 10, 10, 2, 2, 0.8, 0.006)
	m, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	tl := soil.NewTwoLayer(0.005, 0.016, 1.2)
	ml, err := soil.NewMultiLayer([]float64{0.005, 0.016}, []float64{1.2})
	if err != nil {
		t.Fatal(err)
	}
	ml.Tol = 1e-7
	aI, err := New(m, tl, Options{GaussOrder: 6})
	if err != nil {
		t.Fatal(err)
	}
	aQ, err := New(m, ml, Options{GaussOrder: 6})
	if err != nil {
		t.Fatal(err)
	}
	rI, _, _ := aI.Matrix()
	rQ, _, _ := aQ.Matrix()
	// Compare resulting equivalent resistances (matrix entries differ more
	// because the self terms use different regularization paths).
	solve := func(r *linalg.SymMatrix) float64 {
		res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-11})
		if err != nil || !res.Converged {
			t.Fatalf("CG: %v", err)
		}
		return 1 / TotalCurrent(m, res.X)
	}
	reqI, reqQ := solve(rI), solve(rQ)
	if relDiff(reqI, reqQ) > 0.02 {
		t.Errorf("image Req %v vs quadrature Req %v", reqI, reqQ)
	}
}

func TestElementSpanningInterfaceRejected(t *testing.T) {
	g := grid.SingleRod(0, 0, 0.5, 2.0, 0.007) // crosses z = 1 interface
	m, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(m, soil.NewTwoLayer(0.005, 0.016, 1.0), Options{})
	if err == nil {
		t.Fatal("interface-spanning element accepted")
	}
	// After splitting, it must be accepted.
	gs := g.SplitAtDepths(1.0)
	if len(gs.Conductors) != 2 {
		t.Fatalf("split produced %d conductors", len(gs.Conductors))
	}
	ms, err := grid.Discretize(gs, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(ms, soil.NewTwoLayer(0.005, 0.016, 1.0), Options{}); err != nil {
		t.Fatalf("split mesh rejected: %v", err)
	}
}

func TestRHSAndTotalCurrent(t *testing.T) {
	g := grid.HorizontalWire(0, 0, 0.8, 10, 0.005)
	m, err := grid.Discretize(g, grid.Linear, 2.5) // 4 elements, 5 nodes
	if err != nil {
		t.Fatal(err)
	}
	nu := RHS(m)
	// End nodes carry L/2 = 1.25, interior nodes 2×1.25.
	if relDiff(nu[0], 1.25) > 1e-12 || relDiff(nu[1], 2.5) > 1e-12 {
		t.Errorf("nu = %v", nu)
	}
	if relDiff(linalg.Sum(nu), 10) > 1e-12 {
		t.Errorf("Σν = %v, want total length", linalg.Sum(nu))
	}
	// Uniform density of 2 A/m over 10 m → 20 A.
	sigma := make([]float64, m.NumDoF)
	for i := range sigma {
		sigma[i] = 2
	}
	if got := TotalCurrent(m, sigma); relDiff(got, 20) > 1e-12 {
		t.Errorf("TotalCurrent = %v", got)
	}
	// Constant-element variant.
	mc, err := grid.Discretize(g, grid.Constant, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	nuc := RHS(mc)
	for _, v := range nuc {
		if relDiff(v, 2.5) > 1e-12 {
			t.Errorf("constant nu = %v", nuc)
		}
	}
	sigc := make([]float64, mc.NumDoF)
	for i := range sigc {
		sigc[i] = 2
	}
	if got := TotalCurrent(mc, sigc); relDiff(got, 20) > 1e-12 {
		t.Errorf("constant TotalCurrent = %v", got)
	}
}

func TestConstantElementsSolveToo(t *testing.T) {
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	mC, err := grid.Discretize(g, grid.Constant, 0)
	if err != nil {
		t.Fatal(err)
	}
	mL, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	model := soil.NewUniform(0.016)
	reqOf := func(m *grid.Mesh) float64 {
		a, err := New(m, model, Options{})
		if err != nil {
			t.Fatal(err)
		}
		r, _, _ := a.Matrix()
		res, err := linalg.SolveCG(r, RHS(m), linalg.CGOptions{Tol: 1e-11})
		if err != nil || !res.Converged {
			t.Fatalf("CG: %v", err)
		}
		return 1 / TotalCurrent(m, res.X)
	}
	rc, rl := reqOf(mC), reqOf(mL)
	// The two element families must agree at the few-percent level on the
	// same mesh.
	if relDiff(rc, rl) > 0.05 {
		t.Errorf("constant Req %v vs linear Req %v", rc, rl)
	}
}

func TestLeakageDensityInterpolation(t *testing.T) {
	g := grid.HorizontalWire(0, 0, 0.8, 10, 0.005)
	m, _ := grid.Discretize(g, grid.Linear, 5)
	a, err := New(m, soil.NewUniform(0.02), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sigma := make([]float64, m.NumDoF)
	sigma[m.Elements[0].DoF[0]] = 1
	sigma[m.Elements[0].DoF[1]] = 3
	if got := a.LeakageDensity(0, 0.5, sigma); got != 2 {
		t.Errorf("LeakageDensity = %v", got)
	}
	if got := a.LeakageDensity(0, 0, sigma); got != 1 {
		t.Errorf("LeakageDensity(0) = %v", got)
	}
}

func BenchmarkPairMatrixTwoLayer(b *testing.B) {
	m, err := grid.BarberaMesh()
	if err != nil {
		b.Fatal(err)
	}
	a, err := New(m, soil.NewTwoLayer(0.005, 0.016, 1.0), Options{})
	if err != nil {
		b.Fatal(err)
	}
	s := a.newScratch()
	out := make([]float64, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.pairMatrix(i%200, (i*7)%150, out, s)
	}
}
