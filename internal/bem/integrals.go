// Package bem implements the approximated 1-D Galerkin boundary element
// formulation of §4 of the paper: linear (or constant) leakage-current
// elements on the electrode axes, closed-form inner integrals of the 1/r
// image kernels, Gauss outer integration, symmetric matrix generation over
// the M(M+1)/2 element-pair triangle, and potential evaluation (eq. 4.2).
package bem

import (
	"math"

	"earthing/internal/geom"
)

// segmentIntegrals returns the closed-form line integrals over the segment
// [A, B] of the thin-wire kernel 1/r against the constant and linear shape
// functions:
//
//	i0 = ∫₀^L     ds / r(x, P(s))
//	i1 = ∫₀^L s/L ds / r(x, P(s))
//
// where P(s) = A + s·t̂. With p the axial coordinate of x, ρ its distance to
// the segment axis and R(s) = √(ρ² + (s−p)²):
//
//	i0 = asinh((L−p)/ρ) + asinh(p/ρ)
//	i1 = ( R(L) − R(0) + p·i0 ) / L
//
// The thin-wire (circumferential uniformity) hypothesis of §4.2 enters
// through minRho: the radial distance is clamped from below by the conductor
// radius, which places field points that fall on or inside the conductor
// onto its surface. These are the "highly efficient analytical integration
// techniques" referenced by the paper [4, 5, 6].
func segmentIntegrals(x geom.Vec3, a, b geom.Vec3, minRho float64) (i0, i1 float64) {
	ab := b.Sub(a)
	l := ab.Norm()
	if l == 0 {
		return 0, 0
	}
	t := ab.Scale(1 / l)
	xa := x.Sub(a)
	p := xa.Dot(t)
	rho2 := xa.Norm2() - p*p
	if rho2 < minRho*minRho {
		rho2 = minRho * minRho
	}
	rho := math.Sqrt(rho2)
	i0 = math.Asinh((l-p)/rho) + math.Asinh(p/rho)
	r0 := math.Sqrt(rho2 + p*p)
	r1 := math.Sqrt(rho2 + (l-p)*(l-p))
	i1 = (r1 - r0 + p*i0) / l
	return i0, i1
}

// shapeIntegrals returns the inner integrals of every shape function of the
// element over the (possibly image) segment [a, b]: for linear elements
// out = [∫N_A/r, ∫N_B/r] with N_A = 1−s/L and N_B = s/L; for constant
// elements out = [∫1/r].
func shapeIntegrals(x geom.Vec3, a, b geom.Vec3, minRho float64, linear bool, out []float64) {
	i0, i1 := segmentIntegrals(x, a, b, minRho)
	if linear {
		out[0] = i0 - i1
		out[1] = i1
	} else {
		out[0] = i0
	}
}
