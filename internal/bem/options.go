package bem

import (
	"fmt"

	"earthing/internal/sched"
)

// LoopStrategy selects which of the two nested matrix-generation loops is
// parallelized — the comparison of Figure 6.1 of the paper.
type LoopStrategy int

const (
	// OuterLoop distributes the β cycles (columns of the element-pair
	// triangle) among workers. Bigger granularity; the paper's winner.
	OuterLoop LoopStrategy = iota
	// InnerLoop runs the β cycles sequentially and distributes each column's
	// α rows among workers, paying a synchronization barrier per column.
	InnerLoop
)

// String implements fmt.Stringer.
func (l LoopStrategy) String() string {
	switch l {
	case OuterLoop:
		return "outer"
	case InnerLoop:
		return "inner"
	default:
		return fmt.Sprintf("LoopStrategy(%d)", int(l))
	}
}

// KernelStrategy selects the arithmetic used for the image-series inner
// integrals of matrix generation.
type KernelStrategy int

const (
	// ReferenceKernel evaluates every image-reflected segment through the
	// closed-form asinh inner integrals (segmentIntegrals), re-deriving the
	// reflected geometry per image. This is the bit-exact reference path and
	// the default.
	ReferenceKernel KernelStrategy = iota
	// FlatKernel streams the per-depth image coefficient tables of the field
	// evaluation plan (three scalars per image) through a hoisted
	// log-form inner integral: one logarithm and two square roots per
	// (image, Gauss point) instead of two asinh calls and the full segment
	// reflection. Elemental matrices agree with ReferenceKernel to a few ulp
	// (grid resistances to ≤ 1e-10 relative); select it for speed, the
	// reference for transcript-exact reproducibility.
	FlatKernel
)

// String implements fmt.Stringer.
func (k KernelStrategy) String() string {
	switch k {
	case ReferenceKernel:
		return "reference"
	case FlatKernel:
		return "flat"
	default:
		return fmt.Sprintf("KernelStrategy(%d)", int(k))
	}
}

// AssemblyMode selects how elemental matrices reach the global matrix.
type AssemblyMode int

const (
	// StoreThenAssemble computes and stores all elemental matrices in the
	// parallel loop and assembles them sequentially afterwards — the paper's
	// dependency-breaking transformation (§6.2), costing roughly twice the
	// matrix memory.
	StoreThenAssemble AssemblyMode = iota
	// MutexAssemble assembles each elemental matrix into the global matrix
	// under a lock as soon as it is computed — the ablation baseline whose
	// contention the paper's transformation avoids.
	MutexAssemble
)

// String implements fmt.Stringer.
func (a AssemblyMode) String() string {
	switch a {
	case StoreThenAssemble:
		return "store-then-assemble"
	case MutexAssemble:
		return "mutex"
	default:
		return fmt.Sprintf("AssemblyMode(%d)", int(a))
	}
}

// Options configures matrix generation and potential evaluation. The zero
// value selects the defaults documented on each field.
type Options struct {
	// GaussOrder is the outer (Galerkin test) integration order per element.
	// Default 4; raise it for close, strongly graded meshes.
	GaussOrder int
	// NearGaussOrder is the outer order used for element pairs closer than
	// half their combined length (self, touching and adjacent pairs), where
	// the inner analytic integral varies fastest along the test element.
	// Default 2·GaussOrder, capped at 16. Set equal to GaussOrder to
	// disable near-field refinement.
	NearGaussOrder int
	// SeriesTol truncates the image-series accumulation of an elemental
	// matrix once a whole series group contributes less than
	// SeriesTol·|accumulated| for two consecutive groups. Default 1e-7.
	SeriesTol float64
	// MaxGroups caps the image series (the paper's "upper limit of
	// summands"). Default 256.
	MaxGroups int
	// Workers is the parallel width; 0 selects GOMAXPROCS, 1 runs the
	// sequential code path.
	Workers int
	// Schedule is the work-sharing schedule for the parallelized loop.
	// Default {Dynamic, 1}, the paper's best performer (Table 6.2).
	Schedule sched.Schedule
	// Loop selects outer- or inner-loop parallelization (Figure 6.1).
	Loop LoopStrategy
	// Assembly selects deferred or mutex assembly (§6.2).
	Assembly AssemblyMode
	// Kernel selects the inner-integral arithmetic: the bit-exact reference
	// (default) or the flat precomputed-image fast path.
	Kernel KernelStrategy
}

func (o Options) withDefaults() Options {
	if o.GaussOrder <= 0 {
		o.GaussOrder = 4
	}
	if o.NearGaussOrder <= 0 {
		o.NearGaussOrder = 2 * o.GaussOrder
		if o.NearGaussOrder > 16 {
			o.NearGaussOrder = 16
		}
	}
	if o.NearGaussOrder < o.GaussOrder {
		o.NearGaussOrder = o.GaussOrder
	}
	if o.SeriesTol <= 0 {
		o.SeriesTol = 1e-7
	}
	if o.MaxGroups <= 0 {
		o.MaxGroups = 256
	}
	if o.Schedule.IsZero() {
		o.Schedule = sched.Schedule{Kind: sched.Dynamic, Chunk: 1}
	}
	return o
}
