package bem

import (
	"earthing/internal/faultinject"
	"earthing/internal/linalg"
)

// Column-level assembly API: the sweep engine interleaves the columns of
// many assemblers' element-pair triangles on one shared parallel loop, so
// matrix generation is exposed one column at a time. The store layout, the
// per-pair arithmetic (pairMatrix) and the sequential scatter order
// (assemblePair) are exactly those of MatrixCtx's StoreThenAssemble path,
// which is what makes sweep-assembled systems bit-identical to Matrix ones.

// ColumnScratch is the per-worker scratch of ComputeColumn. A scratch must
// not be shared between concurrent workers; allocate one per worker with
// NewColumnScratch.
type ColumnScratch struct {
	s *pairScratch
}

// NewColumnScratch allocates the per-worker buffers for ComputeColumn.
func (a *Assembler) NewColumnScratch() *ColumnScratch {
	return &ColumnScratch{s: a.newScratch()}
}

// NumColumns returns the number of columns of the element-pair triangle
// (= the number of elements M); column β holds the pairs (β, α ≤ β).
func (a *Assembler) NumColumns() int { return len(a.mesh.Elements) }

// StoreSize returns the length of the flat elemental-matrix store that
// ComputeColumn writes into: NumPairs · k², with the pair (β, α) at offset
// (β(β+1)/2 + α)·k².
func (a *Assembler) StoreSize() int { return a.NumPairs() * a.k * a.k }

// ComputeColumn computes the elemental matrices of every pair of column beta
// into store (length StoreSize). Distinct columns touch disjoint store
// ranges, so concurrent workers may fill different columns of the same store
// without synchronization.
func (a *Assembler) ComputeColumn(beta int, store []float64, cs *ColumnScratch) {
	k := a.k
	for alpha := 0; alpha <= beta; alpha++ {
		idx := (beta*(beta+1)/2 + alpha) * k * k
		a.pairMatrix(beta, alpha, store[idx:idx+k*k], cs.s)
	}
	faultinject.Fire(faultinject.AssemblyColumn, beta, a.ColumnRange(beta, store))
}

// PairMatrix computes the elemental matrix of the ordered element pair
// (beta, alpha) into out (row-major k×k, out[j·k+i] = ∫_β w_j ∫_α N_i G) with
// exactly the kernel arithmetic of the Matrix pair loop. This is the per-pair
// unit the H-matrix entry generator composes global matrix entries from; cs
// must not be shared between concurrent workers.
func (a *Assembler) PairMatrix(beta, alpha int, out []float64, cs *ColumnScratch) {
	a.pairMatrix(beta, alpha, out, cs.s)
}

// ColumnRange returns the sub-slice of store that column beta writes — the
// elemental matrices of the pairs (β, α ≤ β). Exposed so batch engines can
// address one column's results (e.g. for fault-injection targeting) without
// knowing the per-pair layout.
func (a *Assembler) ColumnRange(beta int, store []float64) []float64 {
	kk := a.k * a.k
	lo := beta * (beta + 1) / 2 * kk
	hi := (beta + 1) * (beta + 2) / 2 * kk
	return store[lo:hi]
}

// AssembleStore scatters a fully computed store into a fresh global matrix,
// in the same sequential order as Matrix's StoreThenAssemble path — the
// result is bit-identical to what MatrixCtx returns for this assembler.
func (a *Assembler) AssembleStore(store []float64) *linalg.SymMatrix {
	m := len(a.mesh.Elements)
	k := a.k
	r := linalg.NewSymMatrix(a.mesh.NumDoF)
	for beta := 0; beta < m; beta++ {
		for alpha := 0; alpha <= beta; alpha++ {
			idx := (beta*(beta+1)/2 + alpha) * k * k
			a.assemblePair(r, beta, alpha, store[idx:idx+k*k])
		}
	}
	return r
}
