package faultinject

import (
	"math"
	"sync"
	"testing"
	"time"
)

// TestFireInactive: with no hook installed anywhere, Fire is a no-op and
// Active reports false — the fast path production code rides on.
func TestFireInactive(t *testing.T) {
	Reset()
	if Active() {
		t.Fatal("Active() = true with no hooks installed")
	}
	data := []float64{1, 2, 3}
	Fire(AssemblyColumn, 0, data)
	for i, v := range data {
		if v != float64(i+1) {
			t.Fatalf("Fire mutated data with no hook: %v", data)
		}
	}
}

// TestSetRestore: Set installs at one point only, the returned restore
// reinstates the previous hook (including "none"), and restores nest.
func TestSetRestore(t *testing.T) {
	Reset()
	calls := 0
	restore := Set(Solve, func(int, []float64) { calls++ })
	if !Active() {
		t.Fatal("Active() = false after Set")
	}
	Fire(Solve, 0, nil)
	Fire(CacheGet, 0, nil) // different point: must not invoke the hook
	if calls != 1 {
		t.Fatalf("hook fired %d times, want 1", calls)
	}

	inner := 0
	restoreInner := Set(Solve, func(int, []float64) { inner++ })
	Fire(Solve, 0, nil)
	if calls != 1 || inner != 1 {
		t.Fatalf("replacement hook: outer=%d inner=%d, want 1, 1", calls, inner)
	}
	restoreInner()
	Fire(Solve, 0, nil)
	if calls != 2 || inner != 1 {
		t.Fatalf("after inner restore: outer=%d inner=%d, want 2, 1", calls, inner)
	}
	restore()
	Fire(Solve, 0, nil)
	if calls != 2 {
		t.Fatalf("hook fired after restore: %d calls", calls)
	}
	if Active() {
		t.Fatal("Active() = true after full restore")
	}
}

// TestSetNilClears: Set(p, nil) removes the hook at p.
func TestSetNilClears(t *testing.T) {
	Reset()
	Set(Admission, Panic("boom"))
	Set(Admission, nil)
	Fire(Admission, 0, nil) // must not panic
	if Active() {
		t.Fatal("Active() = true after clearing the only hook")
	}
}

// TestReset removes every hook across points.
func TestReset(t *testing.T) {
	Set(Solve, Panic("a"))
	Set(CacheGet, Panic("b"))
	Reset()
	Fire(Solve, 0, nil)
	Fire(CacheGet, 0, nil)
	if Active() {
		t.Fatal("Active() = true after Reset")
	}
}

// TestPanicHook pins that Panic carries its message as the panic value.
func TestPanicHook(t *testing.T) {
	defer func() {
		if v := recover(); v != "injected fault" {
			t.Fatalf("panic value = %v, want %q", v, "injected fault")
		}
	}()
	Panic("injected fault")(0, nil)
}

// TestPoisonNaN writes NaN into data[0] and tolerates nil/empty buffers.
func TestPoisonNaN(t *testing.T) {
	h := PoisonNaN()
	data := []float64{4, 5}
	h(0, data)
	if !math.IsNaN(data[0]) || data[1] != 5 {
		t.Fatalf("PoisonNaN wrote %v, want [NaN 5]", data)
	}
	h(0, nil) // must not panic
}

// TestCountedExactlyOnce: under concurrent firing, Counted(n) invokes the
// wrapped hook on exactly the n-th call — one worker takes the fault.
func TestCountedExactlyOnce(t *testing.T) {
	var mu sync.Mutex
	hits := 0
	h := Counted(10, func(int, []float64) {
		mu.Lock()
		hits++
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 25; k++ {
				h(k, nil)
			}
		}()
	}
	wg.Wait()
	if hits != 1 {
		t.Fatalf("Counted(10) fired %d times over 200 calls, want 1", hits)
	}
}

// TestAt fires only on the matching site index.
func TestAt(t *testing.T) {
	hits := 0
	h := At(7, func(i int, _ []float64) {
		hits++
		if i != 7 {
			t.Fatalf("wrapped hook saw i = %d, want 7", i)
		}
	})
	for i := 0; i < 20; i++ {
		h(i, nil)
	}
	if hits != 1 {
		t.Fatalf("At(7) fired %d times, want 1", hits)
	}
}

// TestOnce only passes through the first firing.
func TestOnce(t *testing.T) {
	hits := 0
	h := Once(func(int, []float64) { hits++ })
	for i := 0; i < 5; i++ {
		h(i, nil)
	}
	if hits != 1 {
		t.Fatalf("Once fired %d times, want 1", hits)
	}
}

// TestCall invokes the wrapped func on every firing — the cancellation shim.
func TestCall(t *testing.T) {
	n := 0
	h := Call(func() { n++ })
	h(0, nil)
	h(1, nil)
	if n != 2 {
		t.Fatalf("Call fired %d times, want 2", n)
	}
}

// TestDelay sleeps for at least the configured duration.
func TestDelay(t *testing.T) {
	start := time.Now()
	Delay(20*time.Millisecond)(0, nil)
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("Delay slept %v, want ≥ 20ms", d)
	}
}

// TestFireConcurrentWithSet: Fire racing Set/Reset must be safe (the map is
// copy-on-write). Run with -race to make this meaningful.
func TestFireConcurrentWithSet(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				Fire(Quadrature, 0, nil)
			}
		}
	}()
	for i := 0; i < 200; i++ {
		restore := Set(Quadrature, func(int, []float64) {})
		restore()
	}
	close(done)
	wg.Wait()
}
