// Package faultinject is a deterministic fault-injection registry for the
// resilience test suites. Production code is instrumented with named
// injection points (Fire calls) at the places the chaos tests need to break:
// assembly columns, quadrature kernels, the server cache and the admission
// path. Tests install hooks that panic, poison buffers with NaN, delay, or
// cancel contexts at an exact, reproducible firing — which is what makes
// graceful degradation testable under -race.
//
// The registry is stdlib-only and always compiled in. When no hook is
// installed the per-call cost of an instrumented site is a single atomic
// load and a predictable branch, so the hot loops (element-pair kernels at
// ~µs per call) are unaffected in production.
//
// Hooks are process-global; tests that install them must not run in
// parallel with each other and must restore on exit:
//
//	defer faultinject.Set(faultinject.AssemblyColumn,
//		faultinject.Counted(3, faultinject.Panic("injected")))()
package faultinject

import (
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site compiled into production code.
type Point string

// The instrumented sites.
const (
	// AssemblyColumn fires once per element-pair-triangle column inside
	// Assembler.ComputeColumn, with i = column index and data = the column's
	// slice of the elemental store (poisonable).
	AssemblyColumn Point = "bem.assembly.column"
	// AssemblyPair fires once per element pair inside the Matrix pair loop,
	// with i = pair column β and data = the pair's elemental matrix.
	AssemblyPair Point = "bem.assembly.pair"
	// Quadrature fires on entry of the slow quadrature kernel (models
	// without an image expansion), with i = pair column β and data = the
	// elemental output buffer.
	Quadrature Point = "bem.quadrature"
	// SweepColumn fires once per global sweep column, with i = the global
	// interleaved column index and data = that column's store slice.
	SweepColumn Point = "sweep.column"
	// Solve fires on entry of the linear-system-solving stage, with
	// i = system order and data = the RHS vector.
	Solve Point = "core.solve"
	// CholeskyPanel fires once per panel of the blocked factorization
	// (linalg.NewCholeskyBlocked), before the panel is factored, with
	// i = panel index and data = the panel's leading diagonal entry
	// (poisonable: a NaN there surfaces as ErrNotPositiveDefinite, the
	// typed per-scenario failure the sweep isolates).
	CholeskyPanel Point = "linalg.cholesky.panel"
	// HMatrixACABlock fires once per admissible block inside the ACA loop
	// (hmatrix build), after the first cross row is generated, with
	// i = block index and data = the generated row (poisonable: a NaN there
	// surfaces as the typed hmatrix.ErrNonFinite build failure the sweep
	// isolates per scenario).
	HMatrixACABlock Point = "hmatrix.ACABlock"
	// HMatrixCGIter fires once per H-matrix operator application of the
	// compressed CG solve, with i = the application count and data = the
	// product vector y (poisonable: a NaN there breaks the CG recurrence
	// into the typed linalg.ErrCGBreakdown).
	HMatrixCGIter Point = "hmatrix.CGIter"
	// OptimizeCandidate fires once per unique candidate evaluation of the
	// design-synthesis engine (internal/designopt), after the candidate's
	// voltages are extracted and before the objective is scored, with
	// i = the candidate's evaluation ordinal and data = the four scored
	// values [cost, maxStep, maxTouch, maxMesh] (poisonable: a NaN there
	// fails that one candidate with the penalty objective while the rest of
	// the search continues).
	OptimizeCandidate Point = "designopt.candidate"
	// CacheGet fires on every server cache lookup (i = 0, data = nil).
	CacheGet Point = "server.cache.get"
	// Admission fires on every server admission attempt (i = 0, data = nil).
	Admission Point = "server.admission"
	// StoreRead fires once per record decoded during scenario-store replay,
	// with i = the record ordinal and data = a one-element scratch. Delay
	// hooks open a deterministic mid-replay window for readiness tests.
	StoreRead Point = "store.read"
	// StoreWrite fires once per record the store's write-behind loop is
	// about to commit, with i = the write ordinal and data = a one-element
	// scratch: setting data[0] != 0 (e.g. PoisonNaN) simulates a failed
	// disk write (ENOSPC), and a panicking hook is recovered and counted —
	// either way the record survives in memory and no request is harmed.
	StoreWrite Point = "store.write"
	// ClusterPeerFetch fires once per peer-fetch attempt on the requesting
	// node, with i = the attempt number (1-based) and data = a one-element
	// scratch. Delay hooks simulate a slow peer to drive the per-attempt
	// timeout, retry and local-solve fallback ladder.
	ClusterPeerFetch Point = "cluster.peer.fetch"
	// ClusterPeerRespond fires in the owning node's /internal/v1/entry
	// handler before the encoded record goes on the wire, with i = 0 and
	// data = a one-element scratch: setting data[0] != 0 (e.g. PoisonNaN)
	// flips a byte of the transmitted copy, simulating a poisoned peer whose
	// response must fail the requester's checksum verification.
	ClusterPeerRespond Point = "cluster.peer.respond"
)

// Hook is an injected fault. i is a site-specific index (column, pair or
// iteration); data, when non-nil, is a mutable view of the numeric buffer
// the site is about to commit, so hooks can poison results in place.
type Hook func(i int, data []float64)

// registry is the installed hook set, copy-on-write so Fire never locks.
var (
	mu        sync.Mutex
	installed atomic.Int64                   // fast-path guard: number of installed hooks
	hooks     atomic.Pointer[map[Point]Hook] // current hook map, replaced wholesale on Set/Clear
)

// Active reports whether any hook is installed. Instrumented call sites may
// use it to skip argument preparation, but Fire itself is already cheap when
// inactive.
func Active() bool { return installed.Load() > 0 }

// Fire invokes the hook installed at p, if any. When no hook is installed
// anywhere the cost is one atomic load.
func Fire(p Point, i int, data []float64) {
	if installed.Load() == 0 {
		return
	}
	if m := hooks.Load(); m != nil {
		if h, ok := (*m)[p]; ok {
			h(i, data)
		}
	}
}

// Set installs h at point p, replacing any previous hook there, and returns
// a restore func that reinstates the previous state. Passing a nil h clears
// the point.
func Set(p Point, h Hook) (restore func()) {
	mu.Lock()
	defer mu.Unlock()
	old := hooks.Load()
	var prev Hook
	next := map[Point]Hook{}
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
		prev = next[p]
	}
	if h == nil {
		delete(next, p)
	} else {
		next[p] = h
	}
	hooks.Store(&next)
	installed.Store(int64(len(next)))
	return func() { Set(p, prev) }
}

// Reset removes every installed hook.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	empty := map[Point]Hook{}
	hooks.Store(&empty)
	installed.Store(0)
}

// --- hook combinators ---

// Panic returns a hook that panics with msg every time it fires.
func Panic(msg string) Hook {
	return func(int, []float64) { panic(msg) }
}

// PoisonNaN returns a hook that writes NaN into the first element of the
// site's data buffer, silently corrupting the numeric result the way a bad
// kernel evaluation would.
func PoisonNaN() Hook {
	nan := func() float64 {
		var z float64
		return z / z
	}()
	return func(_ int, data []float64) {
		if len(data) > 0 {
			data[0] = nan
		}
	}
}

// Delay returns a hook that sleeps for d every time it fires, for exercising
// deadline and cancellation paths deterministically.
func Delay(d time.Duration) Hook {
	return func(int, []float64) { time.Sleep(d) }
}

// Call returns a hook that invokes f (e.g. a context.CancelFunc) every time
// it fires.
func Call(f func()) Hook {
	return func(int, []float64) { f() }
}

// Counted wraps h so that only the n-th firing (1-based) invokes it; every
// other firing is a no-op. The count is shared across goroutines, so under a
// parallel loop exactly one worker takes the fault.
func Counted(n int64, h Hook) Hook {
	var calls atomic.Int64
	return func(i int, data []float64) {
		if calls.Add(1) == n {
			h(i, data)
		}
	}
}

// At wraps h so it fires only when the site index equals i — e.g. exactly
// the global sweep column that belongs to one scenario's job.
func At(i int, h Hook) Hook {
	return func(j int, data []float64) {
		if j == i {
			h(j, data)
		}
	}
}

// Once wraps h so only its first firing invokes it.
func Once(h Hook) Hook { return Counted(1, h) }
