package safety

import (
	"math"
	"testing"
)

// TestCopperSizingMatchesKcmilRule checks the metric evaluation against the
// standard's tabulated Kf factor for soft-drawn copper (Kf ≈ 7.00,
// A_kcmil = I_kA·Kf·√t, 1 kcmil = 0.5067 mm²).
func TestCopperSizingMatchesKcmilRule(t *testing.T) {
	a, err := ConductorSection(CopperAnnealed, 20_000, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	want := 20 * 7.00 * 0.5067 // ≈ 70.9 mm²
	if math.Abs(a-want)/want > 0.02 {
		t.Errorf("A = %.2f mm², kcmil rule %.2f", a, want)
	}
}

func TestSizingScalesWithCurrentAndTime(t *testing.T) {
	a1, _ := ConductorSection(CopperAnnealed, 10_000, 0.5, 40)
	a2, _ := ConductorSection(CopperAnnealed, 20_000, 0.5, 40)
	if math.Abs(a2-2*a1) > 1e-9 {
		t.Error("section not linear in current")
	}
	a4, _ := ConductorSection(CopperAnnealed, 10_000, 2.0, 40)
	if math.Abs(a4-2*a1) > 1e-9 { // √(t ratio 4) = 2
		t.Error("section not ∝ √t")
	}
}

func TestSteelNeedsMoreSectionThanCopper(t *testing.T) {
	cu, _ := ConductorSection(CopperAnnealed, 15_000, 0.5, 40)
	st, _ := ConductorSection(SteelZincCoated, 15_000, 0.5, 40)
	al, _ := ConductorSection(AluminumEC, 15_000, 0.5, 40)
	if !(st > al && al > cu) {
		t.Errorf("material ordering wrong: cu=%v al=%v steel=%v", cu, al, st)
	}
}

func TestConductorDiameter(t *testing.T) {
	d, err := ConductorDiameter(CopperAnnealed, 20_000, 1, 40)
	if err != nil {
		t.Fatal(err)
	}
	// ≈ 70.9 mm² → d ≈ 9.5 mm.
	if d < 0.008 || d > 0.011 {
		t.Errorf("diameter = %v m", d)
	}
	// The paper's grids use 11.28–14 mm conductors; a 0.5 s 20 kA fault
	// requires less than that — the installed sizes carry margin.
	need, _ := ConductorDiameter(CopperAnnealed, 20_000, 0.5, 40)
	if need > 0.01285 {
		t.Errorf("required diameter %v m exceeds the Barberá conductor", need)
	}
}

func TestSizingValidation(t *testing.T) {
	if _, err := ConductorSection(CopperAnnealed, -1, 1, 40); err == nil {
		t.Error("negative current accepted")
	}
	if _, err := ConductorSection(CopperAnnealed, 1, 0, 40); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := ConductorSection(SteelZincCoated, 1, 1, 500); err == nil {
		t.Error("ambient above limit accepted")
	}
}
