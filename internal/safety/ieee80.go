// Package safety implements the IEEE Std 80 tolerable-voltage criteria the
// paper's introduction frames the whole design problem around: "the values
// of electrical potentials between close points on earth surface that can be
// connected by a person must be kept under certain maximum safe limits
// (step, touch and mesh voltages)" [1, 2].
//
// The limits implement the standard's body-current model: a body weight
// class (50 kg or 70 kg), a fault clearing time, the surface material
// resistivity and its derating factor Cs.
package safety

import (
	"fmt"
	"math"
)

// BodyWeight selects the IEEE Std 80 body model.
type BodyWeight int

const (
	// Body50kg is the conservative 50 kg model (k = 0.116).
	Body50kg BodyWeight = iota
	// Body70kg is the 70 kg model (k = 0.157).
	Body70kg
)

// k returns the body-current constant of the weight class.
func (b BodyWeight) k() float64 {
	if b == Body70kg {
		return 0.157
	}
	return 0.116
}

// String implements fmt.Stringer.
func (b BodyWeight) String() string {
	if b == Body70kg {
		return "70kg"
	}
	return "50kg"
}

// Criteria describes the installation properties entering the tolerable
// limits.
type Criteria struct {
	// FaultDuration is the shock/clearing time t_s in seconds (0.03–3 s per
	// the standard).
	FaultDuration float64
	// SoilRho is the native soil resistivity ρ at the surface, Ω·m.
	SoilRho float64
	// SurfaceRho is the resistivity ρ_s of the high-resistivity surface
	// layer (e.g. crushed rock), Ω·m. Zero means no surface layer.
	SurfaceRho float64
	// SurfaceThickness is the surface layer thickness h_s in metres.
	SurfaceThickness float64
	// Weight selects the 50 kg (default) or 70 kg body model.
	Weight BodyWeight
}

// Validate reports configuration errors.
func (c Criteria) Validate() error {
	if c.FaultDuration <= 0 {
		return fmt.Errorf("safety: fault duration %g s must be positive", c.FaultDuration)
	}
	if c.SoilRho < 0 || c.SurfaceRho < 0 || c.SurfaceThickness < 0 {
		return fmt.Errorf("safety: negative resistivity or thickness")
	}
	if c.SurfaceRho > 0 && c.SurfaceRho < c.SoilRho {
		return fmt.Errorf("safety: surface layer (%g) less resistive than soil (%g)", c.SurfaceRho, c.SoilRho)
	}
	return nil
}

// Cs returns the surface-layer derating factor (IEEE Std 80-2000 eq. 27):
//
//	Cs = 1 − 0.09·(1 − ρ/ρs) / (2·hs + 0.09)
//
// Cs = 1 when no surface layer is present.
func (c Criteria) Cs() float64 {
	if c.SurfaceRho <= 0 || c.SurfaceThickness <= 0 {
		return 1
	}
	return 1 - 0.09*(1-c.SoilRho/c.SurfaceRho)/(2*c.SurfaceThickness+0.09)
}

// effectiveRho is the foot-contact resistivity: the surface layer when
// present, the soil otherwise.
func (c Criteria) effectiveRho() float64 {
	if c.SurfaceRho > 0 {
		return c.SurfaceRho
	}
	return c.SoilRho
}

// StepLimit returns the tolerable step voltage in volts
// (IEEE Std 80-2000 eq. 29/30): E_step = (1000 + 6·Cs·ρs)·k/√t.
func (c Criteria) StepLimit() float64 {
	return (1000 + 6*c.Cs()*c.effectiveRho()) * c.Weight.k() / math.Sqrt(c.FaultDuration)
}

// TouchLimit returns the tolerable touch (and mesh) voltage in volts
// (IEEE Std 80-2000 eq. 32/33): E_touch = (1000 + 1.5·Cs·ρs)·k/√t.
func (c Criteria) TouchLimit() float64 {
	return (1000 + 1.5*c.Cs()*c.effectiveRho()) * c.Weight.k() / math.Sqrt(c.FaultDuration)
}

// DecrementFactor returns the IEEE Std 80 decrement factor Df accounting
// for the DC offset of an asymmetrical fault current:
//
//	Df = √(1 + (Ta/tf)·(1 − e^{−2·tf/Ta}))
//
// where tf is the fault duration and Ta = X/(ω·R) the DC offset time
// constant of the X/R ratio at the fault location (ω = 2πf). The effective
// (design) current is Df times the symmetrical RMS fault current.
func DecrementFactor(faultDuration, xOverR, freqHz float64) float64 {
	if faultDuration <= 0 || xOverR <= 0 || freqHz <= 0 {
		return 1
	}
	ta := xOverR / (2 * math.Pi * freqHz)
	df := math.Sqrt(1 + ta/faultDuration*(1-math.Exp(-2*faultDuration/ta)))
	if math.IsNaN(df) {
		// For vanishing tf/Ta the product above is the 0·∞ form of its
		// full-offset limit 2 (asymmetrical RMS √3): return that instead of
		// letting the NaN poison the design current.
		return math.Sqrt(3)
	}
	return df
}

// Verdict is the outcome of checking computed voltages against the limits.
type Verdict struct {
	StepLimit, TouchLimit   float64
	StepActual, TouchActual float64
	MeshActual              float64
	StepOK, TouchOK, MeshOK bool
}

// Check compares computed step/touch/mesh voltages with the criteria.
func (c Criteria) Check(step, touch, mesh float64) (Verdict, error) {
	if err := c.Validate(); err != nil {
		return Verdict{}, err
	}
	v := Verdict{
		StepLimit:   c.StepLimit(),
		TouchLimit:  c.TouchLimit(),
		StepActual:  step,
		TouchActual: touch,
		MeshActual:  mesh,
	}
	v.StepOK = step <= v.StepLimit
	v.TouchOK = touch <= v.TouchLimit
	v.MeshOK = mesh <= v.TouchLimit // mesh voltage uses the touch limit
	return v, nil
}

// Safe reports whether every criterion passed.
func (v Verdict) Safe() bool { return v.StepOK && v.TouchOK && v.MeshOK }

// FractionExceeding returns the fraction of sampled values above limit —
// the hazard-area estimator for raster checks: fed a step- or touch-voltage
// map, it reports how much of the surveyed surface breaks the tolerable
// limit rather than just whether the single worst point does.
func FractionExceeding(values []float64, limit float64) float64 {
	if len(values) == 0 {
		return 0
	}
	n := 0
	for _, v := range values {
		if v > limit {
			n++
		}
	}
	return float64(n) / float64(len(values))
}

// String summarises the verdict.
func (v Verdict) String() string {
	status := func(ok bool) string {
		if ok {
			return "OK"
		}
		return "EXCEEDED"
	}
	return fmt.Sprintf("step %.0f/%.0f V %s; touch %.0f/%.0f V %s; mesh %.0f/%.0f V %s",
		v.StepActual, v.StepLimit, status(v.StepOK),
		v.TouchActual, v.TouchLimit, status(v.TouchOK),
		v.MeshActual, v.TouchLimit, status(v.MeshOK))
}
