package safety

import (
	"math"
	"strings"
	"testing"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCsNoSurfaceLayer(t *testing.T) {
	c := Criteria{FaultDuration: 0.5, SoilRho: 100}
	if c.Cs() != 1 {
		t.Errorf("Cs = %v, want 1 without surface layer", c.Cs())
	}
}

func TestCsKnownValue(t *testing.T) {
	// IEEE Std 80 worked example style: ρ = 100, ρs = 2500, hs = 0.102 m:
	// Cs = 1 − 0.09·(1 − 100/2500)/(2·0.102 + 0.09) ≈ 0.706.
	c := Criteria{FaultDuration: 0.5, SoilRho: 100, SurfaceRho: 2500, SurfaceThickness: 0.102}
	if !almostEq(c.Cs(), 0.7061, 5e-4) {
		t.Errorf("Cs = %v, want ≈0.706", c.Cs())
	}
}

func TestLimits50kg(t *testing.T) {
	// With Cs ≈ 0.706, ρs = 2500, t = 0.5 s, 50 kg:
	// E_step = (1000 + 6·0.706·2500)·0.116/√0.5 ≈ 1901.
	// E_touch = (1000 + 1.5·0.706·2500)·0.116/√0.5 ≈ 598.
	c := Criteria{FaultDuration: 0.5, SoilRho: 100, SurfaceRho: 2500, SurfaceThickness: 0.102}
	if !almostEq(c.StepLimit(), 1901, 15) {
		t.Errorf("StepLimit = %v", c.StepLimit())
	}
	if !almostEq(c.TouchLimit(), 598, 10) {
		t.Errorf("TouchLimit = %v", c.TouchLimit())
	}
}

func TestLimits70kgHigher(t *testing.T) {
	base := Criteria{FaultDuration: 1, SoilRho: 60}
	heavier := base
	heavier.Weight = Body70kg
	if heavier.TouchLimit() <= base.TouchLimit() {
		t.Error("70 kg limit should exceed 50 kg limit")
	}
	if !almostEq(heavier.TouchLimit()/base.TouchLimit(), 0.157/0.116, 1e-12) {
		t.Error("weight ratio wrong")
	}
}

func TestLimitsScaleWithTime(t *testing.T) {
	short := Criteria{FaultDuration: 0.25, SoilRho: 60}
	long := Criteria{FaultDuration: 1.0, SoilRho: 60}
	if !almostEq(short.StepLimit(), 2*long.StepLimit(), 1e-9) {
		t.Error("limits must scale as 1/√t")
	}
}

func TestStepLimitAboveTouchLimit(t *testing.T) {
	// The step limit always exceeds the touch limit (6ρ vs 1.5ρ term).
	c := Criteria{FaultDuration: 0.5, SoilRho: 200}
	if c.StepLimit() <= c.TouchLimit() {
		t.Error("step limit must exceed touch limit")
	}
}

func TestValidate(t *testing.T) {
	if (Criteria{FaultDuration: 0}).Validate() == nil {
		t.Error("zero duration accepted")
	}
	if (Criteria{FaultDuration: 1, SoilRho: -1}).Validate() == nil {
		t.Error("negative resistivity accepted")
	}
	if (Criteria{FaultDuration: 1, SoilRho: 500, SurfaceRho: 100, SurfaceThickness: 0.1}).Validate() == nil {
		t.Error("surface layer less resistive than soil accepted")
	}
	if err := (Criteria{FaultDuration: 1, SoilRho: 100}).Validate(); err != nil {
		t.Errorf("valid criteria rejected: %v", err)
	}
}

func TestCheckVerdict(t *testing.T) {
	c := Criteria{FaultDuration: 0.5, SoilRho: 62.5}
	v, err := c.Check(100, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Safe() {
		t.Errorf("low voltages should pass: %v", v)
	}
	v, err = c.Check(1e6, 50, 50)
	if err != nil {
		t.Fatal(err)
	}
	if v.Safe() || v.StepOK {
		t.Errorf("huge step voltage passed: %v", v)
	}
	if !strings.Contains(v.String(), "EXCEEDED") {
		t.Errorf("verdict string: %q", v.String())
	}
	if _, err := (Criteria{}).Check(1, 1, 1); err == nil {
		t.Error("invalid criteria accepted by Check")
	}
}

func TestDecrementFactor(t *testing.T) {
	// IEEE Std 80-2000 Table 10 reference values (60 Hz): X/R = 10,
	// tf = 0.05 s → Df ≈ 1.232; X/R = 20, tf = 0.5 s → Df ≈ 1.052.
	if got := DecrementFactor(0.05, 10, 60); !almostEq(got, 1.232, 0.01) {
		t.Errorf("Df(0.05, X/R=10) = %v", got)
	}
	if got := DecrementFactor(0.5, 20, 60); !almostEq(got, 1.052, 0.01) {
		t.Errorf("Df(0.5, X/R=20) = %v", got)
	}
	// Long faults → Df → 1.
	if got := DecrementFactor(10, 10, 60); got > 1.01 {
		t.Errorf("long-fault Df = %v", got)
	}
	// Degenerate inputs fall back to 1.
	if DecrementFactor(0, 10, 60) != 1 || DecrementFactor(1, 0, 60) != 1 {
		t.Error("degenerate Df not 1")
	}
	// Df is always ≥ 1 and decreasing in fault duration.
	prev := math.Inf(1)
	for _, tf := range []float64{0.05, 0.1, 0.25, 0.5, 1, 3} {
		df := DecrementFactor(tf, 15, 50)
		if df < 1 || df > prev {
			t.Errorf("Df(%v) = %v not monotone ≥ 1", tf, df)
		}
		prev = df
	}
}

func TestMeshUsesTouchLimit(t *testing.T) {
	c := Criteria{FaultDuration: 0.5, SoilRho: 62.5}
	limit := c.TouchLimit()
	v, err := c.Check(0, 0, limit*1.01)
	if err != nil {
		t.Fatal(err)
	}
	if v.MeshOK {
		t.Error("mesh voltage above touch limit passed")
	}
}

func TestFractionExceeding(t *testing.T) {
	if f := FractionExceeding(nil, 10); f != 0 {
		t.Errorf("empty slice: got %v", f)
	}
	vals := []float64{1, 5, 10, 15, 20}
	if f := FractionExceeding(vals, 10); f != 0.4 {
		t.Errorf("limit 10: got %v, want 0.4 (strict >)", f)
	}
	if f := FractionExceeding(vals, 0); f != 1 {
		t.Errorf("limit 0: got %v, want 1", f)
	}
	if f := FractionExceeding(vals, 100); f != 0 {
		t.Errorf("limit 100: got %v, want 0", f)
	}
}

// TestCheckExactlyAtLimit pins the boundary semantics: a voltage exactly at
// its limit passes (the standard's limits are tolerable maxima, "must be
// kept under certain maximum safe limits" inclusive), and the next
// representable value above fails.
func TestCheckExactlyAtLimit(t *testing.T) {
	c := Criteria{FaultDuration: 0.5, SoilRho: 100, SurfaceRho: 3000, SurfaceThickness: 0.1}
	step, touch := c.StepLimit(), c.TouchLimit()
	v, err := c.Check(step, touch, touch)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Safe() {
		t.Errorf("exactly-at-limit voltages must pass: %v", v)
	}
	above := func(x float64) float64 { return math.Nextafter(x, math.Inf(1)) }
	v, err = c.Check(above(step), above(touch), above(touch))
	if err != nil {
		t.Fatal(err)
	}
	if v.StepOK || v.TouchOK || v.MeshOK {
		t.Errorf("one ULP above the limit must fail every criterion: %v", v)
	}
}

// TestCheckNaNVoltagesFail pins the poisoned-input behaviour: a NaN voltage
// compares false against any limit, so the verdict is unsafe rather than
// silently passing a corrupted analysis.
func TestCheckNaNVoltagesFail(t *testing.T) {
	c := Criteria{FaultDuration: 0.5, SoilRho: 100}
	nan := math.NaN()
	v, err := c.Check(nan, nan, nan)
	if err != nil {
		t.Fatal(err)
	}
	if v.StepOK || v.TouchOK || v.MeshOK || v.Safe() {
		t.Errorf("NaN voltages must not pass: %v", v)
	}
}

// TestFractionExceedingEmpty pins the empty-raster contract: no samples means
// no measured hazard area (0), not NaN from a 0/0 division.
func TestFractionExceedingEmpty(t *testing.T) {
	if got := FractionExceeding(nil, 100); got != 0 {
		t.Errorf("FractionExceeding(nil) = %v, want 0", got)
	}
	if got := FractionExceeding([]float64{}, 100); got != 0 {
		t.Errorf("FractionExceeding(empty) = %v, want 0", got)
	}
}

// TestFractionExceedingNaN pins the NaN-sample behaviour: NaN > limit is
// false, so poisoned samples count as not exceeding — the hazard fraction
// stays well-defined and the boundary sample at the limit is not counted.
func TestFractionExceedingNaN(t *testing.T) {
	limit := 100.0
	vals := []float64{math.NaN(), 50, 150, limit}
	if got, want := FractionExceeding(vals, limit), 0.25; got != want {
		t.Errorf("FractionExceeding = %v, want %v (only the 150 sample exceeds)", got, want)
	}
	if got := FractionExceeding([]float64{math.NaN()}, limit); got != 0 {
		t.Errorf("all-NaN raster: got %v, want 0", got)
	}
}

// TestDecrementFactorDegenerate pins the degenerate fault durations: zero,
// negative and NaN-producing inputs return the symmetrical factor 1 rather
// than propagating Inf/NaN into the design current.
func TestDecrementFactorDegenerate(t *testing.T) {
	cases := []struct{ t, xr, f float64 }{
		{0, 10, 50},
		{-1, 10, 50},
		{0.5, 0, 50},
		{0.5, -3, 50},
		{0.5, 10, 0},
	}
	for _, tc := range cases {
		if got := DecrementFactor(tc.t, tc.xr, tc.f); got != 1 {
			t.Errorf("DecrementFactor(%g, %g, %g) = %v, want 1", tc.t, tc.xr, tc.f, got)
		}
	}
}

// TestDecrementFactorLimits pins the asymptotics: Df → 1 for long faults
// (the offset decays away), grows as the fault shortens, and approaches the
// full-offset bound √3 — finitely — for vanishing durations, where the raw
// formula's Ta/tf·(1 − e^{−2tf/Ta}) term degenerates to the 0·∞ form.
func TestDecrementFactorLimits(t *testing.T) {
	long := DecrementFactor(3, 10, 50)
	short := DecrementFactor(0.03, 10, 50)
	if long < 1 || long > 1.02 {
		t.Errorf("long-fault Df = %v, want ≈ 1", long)
	}
	if short <= long {
		t.Errorf("short-fault Df %v must exceed long-fault Df %v", short, long)
	}
	bound := math.Sqrt(3)
	if short > bound {
		t.Errorf("Df %v exceeds the √3 full-offset bound", short)
	}
	df := DecrementFactor(math.SmallestNonzeroFloat64, 10, 50)
	if math.IsNaN(df) || df > bound {
		t.Errorf("denormal fault duration: Df = %v, want finite ≤ √3", df)
	}
}
