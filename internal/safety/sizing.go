package safety

import (
	"fmt"
	"math"
)

// Material holds the thermal constants of a grounding-conductor material
// for the IEEE Std 80 symmetrical-current sizing equation.
type Material struct {
	Name string
	// AlphaR is the thermal coefficient of resistivity at Tref (1/°C).
	AlphaR float64
	// K0 is 1/α0 at 0 °C (°C).
	K0 float64
	// TmMax is the fusing (or limiting joint) temperature (°C).
	TmMax float64
	// RhoR is the resistivity at Tref (µΩ·cm).
	RhoR float64
	// TCAP is the thermal capacity factor (J/(cm³·°C)).
	TCAP float64
}

// Standard materials (IEEE Std 80-2000 Table 1).
var (
	CopperAnnealed = Material{
		Name: "copper, annealed soft-drawn", AlphaR: 0.00393, K0: 234,
		TmMax: 1083, RhoR: 1.72, TCAP: 3.42,
	}
	CopperCommercial = Material{
		Name: "copper, commercial hard-drawn", AlphaR: 0.00381, K0: 242,
		TmMax: 1084, RhoR: 1.78, TCAP: 3.42,
	}
	CopperCladSteel40 = Material{
		Name: "copper-clad steel, 40%", AlphaR: 0.00378, K0: 245,
		TmMax: 1084, RhoR: 4.40, TCAP: 3.85,
	}
	AluminumEC = Material{
		Name: "aluminum, EC grade", AlphaR: 0.00403, K0: 228,
		TmMax: 657, RhoR: 2.86, TCAP: 2.56,
	}
	SteelZincCoated = Material{
		Name: "steel, zinc-coated", AlphaR: 0.0032, K0: 293,
		TmMax: 419, RhoR: 20.1, TCAP: 3.93,
	}
)

// ConductorSection returns the minimum conductor cross-section in mm²
// that carries the symmetrical fault current I (amperes) for duration t
// (seconds) without exceeding the material's limiting temperature,
// starting from ambient Ta (°C) — IEEE Std 80-2000 eq. 37:
//
//	A_mm² = I / √( (TCAP·10⁻⁴)/(t·αr·ρr) · ln( (K0+Tm)/(K0+Ta) ) )
func ConductorSection(m Material, currentA, durationS, ambientC float64) (float64, error) {
	switch {
	case currentA <= 0:
		return 0, fmt.Errorf("safety: non-positive fault current %g", currentA)
	case durationS <= 0:
		return 0, fmt.Errorf("safety: non-positive duration %g", durationS)
	case ambientC >= m.TmMax:
		return 0, fmt.Errorf("safety: ambient %g °C at or above the material limit %g °C", ambientC, m.TmMax)
	}
	arg := (m.TCAP * 1e-4) / (durationS * m.AlphaR * m.RhoR) *
		math.Log((m.K0+m.TmMax)/(m.K0+ambientC))
	return currentA / 1000 / math.Sqrt(arg), nil
}

// ConductorDiameter returns the minimum diameter in metres of a solid round
// conductor with the section returned by ConductorSection.
func ConductorDiameter(m Material, currentA, durationS, ambientC float64) (float64, error) {
	a, err := ConductorSection(m, currentA, durationS, ambientC)
	if err != nil {
		return 0, err
	}
	// A[mm²] → d[m]: d = 2·√(A/π) in mm.
	return 2 * math.Sqrt(a/math.Pi) / 1000, nil
}
