// Package geom provides the small 3-D vector and segment kernel used by the
// boundary-element grounding solver.
//
// The coordinate convention throughout the module is:
//
//   - x, y span the (horizontal) earth surface plane,
//   - z is depth, positive downwards, with z = 0 on the earth surface.
//
// Horizontal layer interfaces are therefore planes of constant z, and the
// "method of images" used by the layered-soil Green's functions reduces to
// reflections across such planes (see Mirror and Segment.Mirror).
package geom

import "math"

// Vec3 is a point or displacement in 3-D space. The zero value is the origin.
type Vec3 struct {
	X, Y, Z float64
}

// V constructs a Vec3. It exists to keep call sites short in numeric code.
func V(x, y, z float64) Vec3 { return Vec3{x, y, z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the Euclidean inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length v·v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Dist returns |v − w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Unit returns v/|v|. It returns the zero vector when |v| is exactly zero so
// that degenerate inputs stay finite rather than producing NaNs.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// Lerp returns the affine interpolation (1−t)·v + t·w.
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + t*(w.X-v.X),
		v.Y + t*(w.Y-v.Y),
		v.Z + t*(w.Z-v.Z),
	}
}

// Mirror returns the reflection of v across the horizontal plane z = planeZ.
// This is the elementary operation of the method of images for horizontally
// stratified soils: the image of a current source at depth z with respect to
// the earth surface (planeZ = 0) or a layer interface (planeZ = h).
func (v Vec3) Mirror(planeZ float64) Vec3 {
	return Vec3{v.X, v.Y, 2*planeZ - v.Z}
}

// WithZ returns a copy of v with its depth coordinate replaced by z.
func (v Vec3) WithZ(z float64) Vec3 { return Vec3{v.X, v.Y, z} }

// HorizontalDist returns the distance between the projections of v and w on
// the earth-surface plane.
func (v Vec3) HorizontalDist(w Vec3) float64 {
	dx, dy := v.X-w.X, v.Y-w.Y
	return math.Hypot(dx, dy)
}

// ApproxEqual reports whether v and w agree within tol in every component.
func (v Vec3) ApproxEqual(w Vec3, tol float64) bool {
	return math.Abs(v.X-w.X) <= tol && math.Abs(v.Y-w.Y) <= tol && math.Abs(v.Z-w.Z) <= tol
}

// IsFinite reports whether all components are finite (no NaN, no ±Inf).
func (v Vec3) IsFinite() bool {
	return !math.IsNaN(v.X) && !math.IsInf(v.X, 0) &&
		!math.IsNaN(v.Y) && !math.IsInf(v.Y, 0) &&
		!math.IsNaN(v.Z) && !math.IsInf(v.Z, 0)
}
