package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randVec(r *rand.Rand) Vec3 {
	return Vec3{r.NormFloat64() * 10, r.NormFloat64() * 10, r.NormFloat64() * 10}
}

func TestVecBasicOps(t *testing.T) {
	v := V(1, 2, 3)
	w := V(4, -5, 6)
	if got := v.Add(w); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); got != 1*4+2*(-5)+3*6 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Norm(); !almostEq(got, math.Sqrt(14), 1e-15) {
		t.Errorf("Norm = %v", got)
	}
	if got := v.Norm2(); got != 14 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	v := V(1, 2, 3)
	w := V(-2, 0.5, 4)
	c := v.Cross(w)
	if !almostEq(c.Dot(v), 0, 1e-12) || !almostEq(c.Dot(w), 0, 1e-12) {
		t.Errorf("cross product not orthogonal: %v", c)
	}
	// |v×w|² + (v·w)² = |v|²|w|² (Lagrange identity)
	lhs := c.Norm2() + v.Dot(w)*v.Dot(w)
	rhs := v.Norm2() * w.Norm2()
	if !almostEq(lhs, rhs, 1e-9*rhs) {
		t.Errorf("Lagrange identity violated: %v vs %v", lhs, rhs)
	}
}

func TestUnitZeroSafe(t *testing.T) {
	if got := (Vec3{}).Unit(); got != (Vec3{}) {
		t.Errorf("Unit of zero vector = %v, want zero", got)
	}
	u := V(3, 4, 0).Unit()
	if !almostEq(u.Norm(), 1, 1e-15) {
		t.Errorf("|Unit| = %v", u.Norm())
	}
}

func TestMirrorInvolution(t *testing.T) {
	f := func(x, y, z, plane float64) bool {
		// Map arbitrary float64 inputs into a physically sensible range so
		// the identity is not defeated by overflow of 2*plane − z.
		x, y, z, plane = math.Mod(x, 1e3), math.Mod(y, 1e3), math.Mod(z, 1e3), math.Mod(plane, 1e3)
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) || math.IsNaN(plane) {
			return true
		}
		v := Vec3{x, y, z}
		m := v.Mirror(plane)
		// Mirroring twice restores the point (up to roundoff); x,y unchanged;
		// the midpoint of v and its image lies on the plane.
		tol := 1e-9 * (1 + math.Abs(z) + math.Abs(plane))
		return m.Mirror(plane).ApproxEqual(v, tol) &&
			m.X == v.X && m.Y == v.Y &&
			almostEq((m.Z+v.Z)/2, plane, tol)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMirrorPreservesDistances(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		a, b := randVec(r), randVec(r)
		plane := r.NormFloat64() * 5
		d0 := a.Dist(b)
		d1 := a.Mirror(plane).Dist(b.Mirror(plane))
		if !almostEq(d0, d1, 1e-9*(1+d0)) {
			t.Fatalf("mirror changed distance: %v vs %v", d0, d1)
		}
	}
}

func TestLerpEndpoints(t *testing.T) {
	a, b := V(1, 2, 3), V(-4, 5, 9)
	if a.Lerp(b, 0) != a || a.Lerp(b, 1) != b {
		t.Error("Lerp endpoints wrong")
	}
	mid := a.Lerp(b, 0.5)
	want := a.Add(b).Scale(0.5)
	if !mid.ApproxEqual(want, 1e-15) {
		t.Errorf("Lerp midpoint = %v want %v", mid, want)
	}
}

func TestHorizontalDist(t *testing.T) {
	a := V(0, 0, 100)
	b := V(3, 4, -7)
	if got := a.HorizontalDist(b); !almostEq(got, 5, 1e-15) {
		t.Errorf("HorizontalDist = %v", got)
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if (Vec3{math.NaN(), 0, 0}).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if (Vec3{0, math.Inf(1), 0}).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz, cx, cy, cz float64) bool {
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		c := Vec3{cx, cy, cz}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9*(1+a.Dist(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
