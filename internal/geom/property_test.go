package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// rotateZ rotates a vector about the z axis (the only rigid rotation that
// preserves the horizontal-layer structure of the solver).
func rotateZ(v Vec3, theta float64) Vec3 {
	c, s := math.Cos(theta), math.Sin(theta)
	return Vec3{c*v.X - s*v.Y, s*v.X + c*v.Y, v.Z}
}

// TestQuickDistancesInvariantUnderRigidMotion: segment-point and
// segment-segment distances are invariant under z-rotations and
// translations.
func TestQuickDistancesInvariantUnderRigidMotion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Seg(randVec(r), randVec(r))
		u := Seg(randVec(r), randVec(r))
		p := randVec(r)
		theta := r.Float64() * 2 * math.Pi
		d := V(r.NormFloat64()*5, r.NormFloat64()*5, r.NormFloat64()*5)

		move := func(v Vec3) Vec3 { return rotateZ(v, theta).Add(d) }
		s2 := Seg(move(s.A), move(s.B))
		u2 := Seg(move(u.A), move(u.B))
		p2 := move(p)

		tol := 1e-9 * (1 + s.DistToPoint(p))
		if math.Abs(s.DistToPoint(p)-s2.DistToPoint(p2)) > tol {
			return false
		}
		tol = 1e-9 * (1 + s.DistToSegment(u))
		return math.Abs(s.DistToSegment(u)-s2.DistToSegment(u2)) <= tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickDistToSegmentBounds: the distance is bounded below by the
// distance of supporting-line projections and above by midpoint distance.
func TestQuickDistToSegmentBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Seg(randVec(r), randVec(r))
		u := Seg(randVec(r), randVec(r))
		d := s.DistToSegment(u)
		if d < 0 {
			return false
		}
		if d > s.Midpoint().Dist(u.Midpoint())+1e-9 {
			return false
		}
		// Sampling both segments never produces a smaller distance.
		for i := 0; i <= 8; i++ {
			for j := 0; j <= 8; j++ {
				p := s.Point(float64(i) / 8)
				q := u.Point(float64(j) / 8)
				if p.Dist(q) < d-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickAxialVsEuclidean: the axial (infinite-line) distance never
// exceeds the segment distance.
func TestQuickAxialVsEuclidean(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := Seg(randVec(r), randVec(r))
		if s.Length() < 1e-9 {
			return true
		}
		p := randVec(r)
		return s.AxialDistToPoint(p) <= s.DistToPoint(p)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
