package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSegmentLengthDir(t *testing.T) {
	s := Seg(V(0, 0, 0), V(3, 4, 0))
	if !almostEq(s.Length(), 5, 1e-15) {
		t.Errorf("Length = %v", s.Length())
	}
	d := s.Dir()
	if !d.ApproxEqual(V(0.6, 0.8, 0), 1e-15) {
		t.Errorf("Dir = %v", d)
	}
	if !s.Midpoint().ApproxEqual(V(1.5, 2, 0), 1e-15) {
		t.Errorf("Midpoint = %v", s.Midpoint())
	}
}

func TestSegmentMirrorPreservesLength(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		s := Seg(randVec(r), randVec(r))
		plane := r.NormFloat64() * 3
		m := s.Mirror(plane)
		if !almostEq(s.Length(), m.Length(), 1e-12*(1+s.Length())) {
			t.Fatalf("mirror changed segment length")
		}
		// Images of horizontal segments stay horizontal.
		h := Seg(V(0, 0, 2), V(5, 1, 2)).Mirror(plane)
		if !h.IsHorizontal(1e-12) {
			t.Fatal("mirror broke horizontality")
		}
	}
}

func TestDistToPoint(t *testing.T) {
	s := Seg(V(0, 0, 0), V(10, 0, 0))
	cases := []struct {
		p    Vec3
		want float64
	}{
		{V(5, 3, 0), 3},  // perpendicular interior
		{V(-4, 3, 0), 5}, // beyond A
		{V(13, 4, 0), 5}, // beyond B
		{V(5, 0, 0), 0},  // on segment
		{V(2, 0, 7), 7},  // above
		{V(0, 0, 0), 0},  // endpoint
	}
	for _, c := range cases {
		if got := s.DistToPoint(c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("DistToPoint(%v) = %v want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment behaves like a point.
	d := Seg(V(1, 1, 1), V(1, 1, 1))
	if got := d.DistToPoint(V(1, 1, 4)); !almostEq(got, 3, 1e-12) {
		t.Errorf("degenerate DistToPoint = %v", got)
	}
}

func TestAxialDistToPoint(t *testing.T) {
	s := Seg(V(0, 0, 0), V(1, 0, 0))
	// Axial distance ignores the segment extent: a point far beyond B but
	// close to the supporting line has a small axial distance.
	if got := s.AxialDistToPoint(V(100, 2, 0)); !almostEq(got, 2, 1e-9) {
		t.Errorf("AxialDistToPoint = %v want 2", got)
	}
	if got := s.AxialDistToPoint(V(0.5, 0, 0)); !almostEq(got, 0, 1e-12) {
		t.Errorf("on-axis AxialDistToPoint = %v want 0", got)
	}
}

func TestDistToSegment(t *testing.T) {
	cases := []struct {
		s, u Segment
		want float64
	}{
		// Crossing perpendicular segments separated vertically.
		{Seg(V(-1, 0, 0), V(1, 0, 0)), Seg(V(0, -1, 2), V(0, 1, 2)), 2},
		// Parallel segments.
		{Seg(V(0, 0, 0), V(10, 0, 0)), Seg(V(0, 3, 0), V(10, 3, 0)), 3},
		// Collinear, disjoint.
		{Seg(V(0, 0, 0), V(1, 0, 0)), Seg(V(4, 0, 0), V(6, 0, 0)), 3},
		// Touching at an endpoint.
		{Seg(V(0, 0, 0), V(1, 0, 0)), Seg(V(1, 0, 0), V(1, 5, 0)), 0},
		// Intersecting.
		{Seg(V(-1, -1, 0), V(1, 1, 0)), Seg(V(-1, 1, 0), V(1, -1, 0)), 0},
		// Endpoint-to-interior.
		{Seg(V(0, 0, 0), V(10, 0, 0)), Seg(V(5, 2, 0), V(5, 9, 0)), 2},
	}
	for i, c := range cases {
		if got := c.s.DistToSegment(c.u); !almostEq(got, c.want, 1e-9) {
			t.Errorf("case %d: DistToSegment = %v want %v", i, got, c.want)
		}
		// Symmetry.
		if got, rev := c.s.DistToSegment(c.u), c.u.DistToSegment(c.s); !almostEq(got, rev, 1e-9) {
			t.Errorf("case %d: asymmetric distance %v vs %v", i, got, rev)
		}
	}
}

func TestDistToSegmentLowerBound(t *testing.T) {
	// The segment-segment distance never exceeds any endpoint-to-segment
	// distance, and is never negative.
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		s := Seg(randVec(r), randVec(r))
		u := Seg(randVec(r), randVec(r))
		d := s.DistToSegment(u)
		if d < 0 {
			t.Fatal("negative distance")
		}
		ub := math.Min(
			math.Min(u.DistToPoint(s.A), u.DistToPoint(s.B)),
			math.Min(s.DistToPoint(u.A), s.DistToPoint(u.B)),
		)
		if d > ub+1e-9 {
			t.Fatalf("distance %v exceeds endpoint bound %v", d, ub)
		}
	}
}

func TestHorizontalVerticalClassification(t *testing.T) {
	if !Seg(V(0, 0, 0.8), V(5, 3, 0.8)).IsHorizontal(1e-12) {
		t.Error("horizontal segment misclassified")
	}
	if !Seg(V(2, 2, 0.8), V(2, 2, 2.3)).IsVertical(1e-12) {
		t.Error("vertical segment misclassified")
	}
	if Seg(V(0, 0, 0), V(1, 0, 1)).IsHorizontal(1e-12) {
		t.Error("slanted segment classified horizontal")
	}
}

func TestAABB(t *testing.T) {
	b := EmptyAABB()
	if !b.IsEmpty() {
		t.Fatal("EmptyAABB not empty")
	}
	b = b.ExtendSegment(Seg(V(1, 2, 3), V(-1, 5, 0)))
	b = b.Extend(V(0, 0, 10))
	if b.IsEmpty() {
		t.Fatal("extended box still empty")
	}
	if b.Min != (Vec3{-1, 0, 0}) || b.Max != (Vec3{1, 5, 10}) {
		t.Errorf("box = %+v", b)
	}
	if got := b.Size(); got != (Vec3{2, 5, 10}) {
		t.Errorf("Size = %v", got)
	}
	if got := b.Center(); !got.ApproxEqual(V(0, 2.5, 5), 1e-15) {
		t.Errorf("Center = %v", got)
	}
}

func TestSegmentPointParam(t *testing.T) {
	s := Seg(V(0, 0, 0), V(2, 4, 6))
	if got := s.Point(0.25); !got.ApproxEqual(V(0.5, 1, 1.5), 1e-15) {
		t.Errorf("Point(0.25) = %v", got)
	}
	if s.Reverse().A != s.B || s.Reverse().B != s.A {
		t.Error("Reverse wrong")
	}
}
