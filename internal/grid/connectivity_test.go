package grid

import (
	"errors"
	"testing"

	"earthing/internal/geom"
)

func TestConnectedComponentsSingleNetwork(t *testing.T) {
	g := RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	if got := g.ConnectedComponents(); got != 1 {
		t.Errorf("rect mesh components = %d", got)
	}
	if err := g.CheckBonding(); err != nil {
		t.Errorf("bonded grid rejected: %v", err)
	}
	if (&Grid{}).ConnectedComponents() != 0 {
		t.Error("empty grid components wrong")
	}
}

func TestConnectedComponentsDetectsFloatingRod(t *testing.T) {
	g := RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	// Rod bonded to a lattice node.
	g.AddRod(0, 0, 0.8, 2, 0.007)
	if got := g.ConnectedComponents(); got != 1 {
		t.Fatalf("bonded rod made %d components", got)
	}
	// Rod floating 5 m outside the grid.
	g.AddRod(30, 30, 0.8, 2, 0.007)
	if got := g.ConnectedComponents(); got != 2 {
		t.Fatalf("floating rod not detected: %d components", got)
	}
	err := g.CheckBonding()
	var be *BondingError
	if !errors.As(err, &be) || be.Components != 2 {
		t.Errorf("CheckBonding = %v", err)
	}
}

func TestConnectedComponentsChains(t *testing.T) {
	// Two chains sharing no nodes.
	g := &Grid{}
	g.AddConductor(geom.V(0, 0, 1), geom.V(5, 0, 1), 0.005)
	g.AddConductor(geom.V(5, 0, 1), geom.V(10, 0, 1), 0.005)
	g.AddConductor(geom.V(0, 10, 1), geom.V(5, 10, 1), 0.005)
	if got := g.ConnectedComponents(); got != 2 {
		t.Errorf("components = %d, want 2", got)
	}
	// Bridge them.
	g.AddConductor(geom.V(10, 0, 1), geom.V(5, 10, 1), 0.005)
	if got := g.ConnectedComponents(); got != 1 {
		t.Errorf("bridged components = %d, want 1", got)
	}
}

func TestPaperGridsAreBonded(t *testing.T) {
	if err := Barbera().CheckBonding(); err != nil {
		t.Errorf("Barberá: %v", err)
	}
	// Balaidos rods attach mid-span of perimeter conductors; the
	// endpoint-on-span bonding pass must recognize them.
	if err := Balaidos().CheckBonding(); err != nil {
		t.Errorf("Balaidos: %v", err)
	}
}

func TestMidSpanAttachmentBonds(t *testing.T) {
	g := &Grid{}
	g.AddConductor(geom.V(0, 0, 0.8), geom.V(10, 0, 0.8), 0.006)
	g.AddRod(5, 0, 0.8, 2, 0.007) // top at mid-span of the conductor
	if got := g.ConnectedComponents(); got != 1 {
		t.Errorf("mid-span rod not bonded: %d components", got)
	}
}
