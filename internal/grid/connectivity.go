package grid

import "fmt"

// ConnectedComponents returns the number of electrically distinct conductor
// groups in the grid, treating conductors whose endpoints coincide (within
// the meshing node tolerance) as bonded.
//
// The BEM formulation imposes the same potential on every electrode (the
// equipotential hypothesis of §2), which physically requires the grid to be
// a single bonded network; a floating rod in a grid file is almost always a
// data-entry error. Components > 1 is therefore worth a warning before an
// analysis — see CheckBonding.
func (g *Grid) ConnectedComponents() int {
	n := len(g.Conductors)
	if n == 0 {
		return 0
	}
	// Union-find over conductor endpoints.
	parent := make([]int, 2*n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	// Conductor i's endpoints are vertices 2i and 2i+1, always bonded.
	nodes := map[nodeKey]int{}
	vertex := func(i int, isB bool) int {
		v := 2 * i
		if isB {
			v++
		}
		return v
	}
	for i, c := range g.Conductors {
		union(vertex(i, false), vertex(i, true))
		for _, end := range []struct {
			key nodeKey
			v   int
		}{
			{keyOf(c.Seg.A), vertex(i, false)},
			{keyOf(c.Seg.B), vertex(i, true)},
		} {
			if first, ok := nodes[end.key]; ok {
				union(first, end.v)
			} else {
				nodes[end.key] = end.v
			}
		}
	}
	// Endpoints landing mid-span of another conductor (e.g. rod tops welded
	// to a perimeter conductor between its lattice nodes) also bond.
	const tol = 1e-6
	for i, c := range g.Conductors {
		for j, d := range g.Conductors {
			if i == j {
				continue
			}
			if d.Seg.DistToPoint(c.Seg.A) <= tol {
				union(vertex(i, false), vertex(j, false))
			}
			if d.Seg.DistToPoint(c.Seg.B) <= tol {
				union(vertex(i, true), vertex(j, false))
			}
		}
	}
	roots := map[int]bool{}
	for i := 0; i < n; i++ {
		roots[find(vertex(i, false))] = true
	}
	return len(roots)
}

// CheckBonding returns nil when the grid is a single bonded network and a
// descriptive error otherwise. It does not detect conductors that merely
// cross mid-span (the meshers bond only shared endpoints); split such
// conductors at their crossing points first.
func (g *Grid) CheckBonding() error {
	if n := g.ConnectedComponents(); n > 1 {
		return &BondingError{Components: n}
	}
	return nil
}

// BondingError reports an electrically fragmented grid.
type BondingError struct{ Components int }

// Error implements error.
func (e *BondingError) Error() string {
	return fmt.Sprintf("grid: conductors form %d disconnected groups; the equipotential hypothesis assumes a single bonded network", e.Components)
}
