package grid

import (
	"fmt"
	"math"

	"earthing/internal/geom"
)

// ConnectedComponents returns the number of electrically distinct conductor
// groups in the grid, treating conductors whose endpoints coincide (within
// the meshing node tolerance) as bonded.
//
// The BEM formulation imposes the same potential on every electrode (the
// equipotential hypothesis of §2), which physically requires the grid to be
// a single bonded network; a floating rod in a grid file is almost always a
// data-entry error. Components > 1 is therefore worth a warning before an
// analysis — see CheckBonding.
func (g *Grid) ConnectedComponents() int {
	n := len(g.Conductors)
	if n == 0 {
		return 0
	}
	// Union-find over conductor endpoints.
	parent := make([]int, 2*n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	// Conductor i's endpoints are vertices 2i and 2i+1, always bonded.
	nodes := map[nodeKey]int{}
	vertex := func(i int, isB bool) int {
		v := 2 * i
		if isB {
			v++
		}
		return v
	}
	for i, c := range g.Conductors {
		union(vertex(i, false), vertex(i, true))
		for _, end := range []struct {
			key nodeKey
			v   int
		}{
			{keyOf(c.Seg.A), vertex(i, false)},
			{keyOf(c.Seg.B), vertex(i, true)},
		} {
			if first, ok := nodes[end.key]; ok {
				union(first, end.v)
			} else {
				nodes[end.key] = end.v
			}
		}
	}
	// Endpoints landing mid-span of another conductor (e.g. rod tops welded
	// to a perimeter conductor between its lattice nodes) also bond. A
	// spatial hash over segment bounding boxes keeps this near-linear: a
	// segment within tol of a point is registered in the point's cell, so
	// only that cell's candidates need the exact distance test.
	const tol = 1e-6
	h := newSegHash(g.Conductors, tol)
	for i, c := range g.Conductors {
		for _, end := range []struct {
			p geom.Vec3
			v int
		}{
			{c.Seg.A, vertex(i, false)},
			{c.Seg.B, vertex(i, true)},
		} {
			for _, j := range h.near(end.p) {
				if j == i {
					continue
				}
				if g.Conductors[j].Seg.DistToPoint(end.p) <= tol {
					union(end.v, vertex(j, false))
				}
			}
		}
	}
	roots := map[int]bool{}
	for i := 0; i < n; i++ {
		roots[find(vertex(i, false))] = true
	}
	return len(roots)
}

// segHash buckets conductor segments by the grid cells their tol-inflated
// bounding boxes overlap. The cell size tracks the mean segment length, so a
// lattice conductor lands in O(1) cells and a point query inspects O(1)
// candidates; one very long segment degrades gracefully to length/cell
// entries.
type segHash struct {
	cell    float64
	buckets map[[3]int][]int
}

func newSegHash(conductors []Conductor, tol float64) *segHash {
	var total float64
	for _, c := range conductors {
		total += c.Seg.B.Sub(c.Seg.A).Norm()
	}
	cell := total / float64(len(conductors))
	if cell < 1e-3 {
		cell = 1e-3
	}
	h := &segHash{cell: cell, buckets: map[[3]int][]int{}}
	for i, c := range conductors {
		lo, hi := segCellRange(c.Seg.A, c.Seg.B, tol, cell)
		for x := lo[0]; x <= hi[0]; x++ {
			for y := lo[1]; y <= hi[1]; y++ {
				for z := lo[2]; z <= hi[2]; z++ {
					k := [3]int{x, y, z}
					h.buckets[k] = append(h.buckets[k], i)
				}
			}
		}
	}
	return h
}

// near returns the candidate segment indices whose inflated boxes cover p's
// cell; every segment within tol of p is among them.
func (h *segHash) near(p geom.Vec3) []int {
	k := [3]int{
		int(math.Floor(p.X / h.cell)),
		int(math.Floor(p.Y / h.cell)),
		int(math.Floor(p.Z / h.cell)),
	}
	return h.buckets[k]
}

func segCellRange(a, b geom.Vec3, tol, cell float64) (lo, hi [3]int) {
	min3 := func(u, v float64) float64 { return math.Min(u, v) }
	max3 := func(u, v float64) float64 { return math.Max(u, v) }
	mins := [3]float64{min3(a.X, b.X) - tol, min3(a.Y, b.Y) - tol, min3(a.Z, b.Z) - tol}
	maxs := [3]float64{max3(a.X, b.X) + tol, max3(a.Y, b.Y) + tol, max3(a.Z, b.Z) + tol}
	for d := 0; d < 3; d++ {
		lo[d] = int(math.Floor(mins[d] / cell))
		hi[d] = int(math.Floor(maxs[d] / cell))
	}
	return lo, hi
}

// CheckBonding returns nil when the grid is a single bonded network and a
// descriptive error otherwise. It does not detect conductors that merely
// cross mid-span (the meshers bond only shared endpoints); split such
// conductors at their crossing points first.
func (g *Grid) CheckBonding() error {
	if n := g.ConnectedComponents(); n > 1 {
		return &BondingError{Components: n}
	}
	return nil
}

// BondingError reports an electrically fragmented grid.
type BondingError struct{ Components int }

// Error implements error.
func (e *BondingError) Error() string {
	return fmt.Sprintf("grid: conductors form %d disconnected groups; the equipotential hypothesis assumes a single bonded network", e.Components)
}
