// Package grid models grounding grids — meshes of interconnected bare
// cylindrical conductors, horizontally buried and supplemented by vertical
// ground rods (§1 of the paper) — and their discretization into the 1-D
// boundary elements used by the solver.
//
// It also provides generators for the two real grids of the paper's
// evaluation: the Barberá right-triangle grid (Fig 5.1) and the Balaidos
// grid with vertical rods (Fig 5.3), plus generic rectangular-mesh builders,
// and a small text file format for grid exchange.
package grid

import (
	"errors"
	"fmt"
	"math"

	"earthing/internal/geom"
)

// Conductor is one straight bare cylindrical electrode: a segment of the
// grid axis with a radius. The thin-wire BEM assumes Radius ≪ Length
// (the paper quotes diameter/length ∼ 10⁻³).
type Conductor struct {
	Seg    geom.Segment
	Radius float64 // m
}

// Length returns the conductor axis length.
func (c Conductor) Length() float64 { return c.Seg.Length() }

// Grid is a grounding grid: a named set of conductors, all expected to be
// buried (z ≥ 0, z positive downwards).
type Grid struct {
	Name       string
	Conductors []Conductor
}

// Validate checks the grid for modelling errors: empty grids, non-positive
// radii, degenerate (zero-length) conductors, electrodes above the earth
// surface, and radii too large for the thin-wire hypothesis.
func (g *Grid) Validate() error {
	if len(g.Conductors) == 0 {
		return errors.New("grid: no conductors")
	}
	for i, c := range g.Conductors {
		l := c.Length()
		switch {
		case !(c.Radius > 0):
			return fmt.Errorf("grid: conductor %d has non-positive radius %g", i, c.Radius)
		case l == 0:
			return fmt.Errorf("grid: conductor %d has zero length", i)
		case c.Seg.A.Z < 0 || c.Seg.B.Z < 0:
			return fmt.Errorf("grid: conductor %d is above the earth surface (z < 0)", i)
		case c.Radius >= l/2:
			return fmt.Errorf("grid: conductor %d radius %g violates thin-wire assumption (length %g)",
				i, c.Radius, l)
		case !c.Seg.A.IsFinite() || !c.Seg.B.IsFinite():
			return fmt.Errorf("grid: conductor %d has non-finite coordinates", i)
		}
	}
	return nil
}

// TotalLength returns the summed axis length of all conductors.
func (g *Grid) TotalLength() float64 {
	var t float64
	for _, c := range g.Conductors {
		t += c.Length()
	}
	return t
}

// Bounds returns the axis-aligned bounding box of the grid.
func (g *Grid) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for _, c := range g.Conductors {
		b = b.ExtendSegment(c.Seg)
	}
	return b
}

// PlanArea returns the area of the bounding rectangle of the grid's
// horizontal projection — a convenient scale for IEEE-style estimates (the
// true protected area depends on the grid outline).
func (g *Grid) PlanArea() float64 {
	b := g.Bounds()
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X * s.Y
}

// DepthRange returns the minimum and maximum electrode depths.
func (g *Grid) DepthRange() (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, c := range g.Conductors {
		min = math.Min(min, math.Min(c.Seg.A.Z, c.Seg.B.Z))
		max = math.Max(max, math.Max(c.Seg.A.Z, c.Seg.B.Z))
	}
	return min, max
}

// NumRods counts vertical conductors (rods).
func (g *Grid) NumRods() int {
	n := 0
	for _, c := range g.Conductors {
		if c.Seg.IsVertical(1e-9) {
			n++
		}
	}
	return n
}

// AddConductor appends a conductor between two points.
func (g *Grid) AddConductor(a, b geom.Vec3, radius float64) {
	g.Conductors = append(g.Conductors, Conductor{Seg: geom.Seg(a, b), Radius: radius})
}

// AddRod appends a vertical rod with its top at (x, y, top) extending down
// by length.
func (g *Grid) AddRod(x, y, top, length, radius float64) {
	g.AddConductor(geom.V(x, y, top), geom.V(x, y, top+length), radius)
}

// SplitAtDepths returns a copy of the grid in which every conductor that
// crosses one of the given horizontal planes is split at the crossing
// points. The BEM kernels require each source element to lie wholly within
// one soil layer, so grids must be split at the layer interface depths
// before discretization (e.g. the Balaidos model C rods, which straddle the
// 1 m interface, §5.2).
func (g *Grid) SplitAtDepths(depths ...float64) *Grid {
	out := &Grid{Name: g.Name}
	for _, c := range g.Conductors {
		za, zb := c.Seg.A.Z, c.Seg.B.Z
		lo, hi := math.Min(za, zb), math.Max(za, zb)
		// Collect interior crossing parameters.
		var ts []float64
		for _, d := range depths {
			if d <= lo || d >= hi {
				continue
			}
			t := (d - za) / (zb - za)
			if t > 1e-9 && t < 1-1e-9 {
				ts = append(ts, t)
			}
		}
		if len(ts) == 0 {
			out.Conductors = append(out.Conductors, c)
			continue
		}
		sortFloats(ts)
		prev := 0.0
		for _, t := range ts {
			out.AddConductor(c.Seg.Point(prev), c.Seg.Point(t), c.Radius)
			prev = t
		}
		out.AddConductor(c.Seg.Point(prev), c.Seg.B, c.Radius)
	}
	return out
}

// sortFloats sorts a tiny slice in place (insertion sort; crossing lists
// rarely exceed two or three entries).
func sortFloats(x []float64) {
	for i := 1; i < len(x); i++ {
		for j := i; j > 0 && x[j] < x[j-1]; j-- {
			x[j], x[j-1] = x[j-1], x[j]
		}
	}
}
