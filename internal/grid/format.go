package grid

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"earthing/internal/geom"
)

// The grid text format is line oriented:
//
//	# comment (also after '#' anywhere on a line)
//	name <grid name>
//	conductor <x1> <y1> <z1> <x2> <y2> <z2> <radius>
//	rod <x> <y> <top-depth> <length> <radius>
//
// Lengths are metres; z is depth, positive downwards. Blank lines are
// ignored.

// Write serializes the grid in the text format.
func Write(w io.Writer, g *Grid) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# grounding grid, %d conductors, total length %.2f m\n",
		len(g.Conductors), g.TotalLength())
	if g.Name != "" {
		fmt.Fprintf(bw, "name %s\n", g.Name)
	}
	for _, c := range g.Conductors {
		if c.Seg.IsVertical(1e-9) && c.Seg.B.Z > c.Seg.A.Z {
			fmt.Fprintf(bw, "rod %.6g %.6g %.6g %.6g %.6g\n",
				c.Seg.A.X, c.Seg.A.Y, c.Seg.A.Z, c.Seg.Length(), c.Radius)
			continue
		}
		fmt.Fprintf(bw, "conductor %.6g %.6g %.6g %.6g %.6g %.6g %.6g\n",
			c.Seg.A.X, c.Seg.A.Y, c.Seg.A.Z,
			c.Seg.B.X, c.Seg.B.Y, c.Seg.B.Z, c.Radius)
	}
	return bw.Flush()
}

// Read parses a grid from the text format.
func Read(r io.Reader) (*Grid, error) {
	g := &Grid{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "name":
			if len(fields) < 2 {
				return nil, fmt.Errorf("grid: line %d: name requires a value", lineNo)
			}
			g.Name = strings.Join(fields[1:], " ")
		case "conductor":
			v, err := parseFloats(fields[1:], 7)
			if err != nil {
				return nil, fmt.Errorf("grid: line %d: conductor: %v", lineNo, err)
			}
			g.AddConductor(geom.V(v[0], v[1], v[2]), geom.V(v[3], v[4], v[5]), v[6])
		case "rod":
			v, err := parseFloats(fields[1:], 5)
			if err != nil {
				return nil, fmt.Errorf("grid: line %d: rod: %v", lineNo, err)
			}
			g.AddRod(v[0], v[1], v[2], v[3], v[4])
		default:
			return nil, fmt.Errorf("grid: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, g.Validate()
}

func parseFloats(fields []string, n int) ([]float64, error) {
	if len(fields) != n {
		return nil, fmt.Errorf("want %d values, got %d", n, len(fields))
	}
	out := make([]float64, n)
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out[i] = v
	}
	return out, nil
}
