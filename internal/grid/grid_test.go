package grid

import (
	"math"
	"strings"
	"testing"

	"earthing/internal/geom"
)

func TestValidate(t *testing.T) {
	g := &Grid{}
	if g.Validate() == nil {
		t.Error("empty grid accepted")
	}
	g.AddConductor(geom.V(0, 0, 0.8), geom.V(10, 0, 0.8), 0.006)
	if err := g.Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
	bad := &Grid{}
	bad.AddConductor(geom.V(0, 0, 0.8), geom.V(10, 0, 0.8), -1)
	if bad.Validate() == nil {
		t.Error("negative radius accepted")
	}
	bad = &Grid{}
	bad.AddConductor(geom.V(0, 0, 0.8), geom.V(0, 0, 0.8), 0.006)
	if bad.Validate() == nil {
		t.Error("zero-length conductor accepted")
	}
	bad = &Grid{}
	bad.AddConductor(geom.V(0, 0, -0.5), geom.V(10, 0, 0.8), 0.006)
	if bad.Validate() == nil {
		t.Error("above-surface conductor accepted")
	}
	bad = &Grid{}
	bad.AddConductor(geom.V(0, 0, 0.8), geom.V(0.01, 0, 0.8), 0.006)
	if bad.Validate() == nil {
		t.Error("thin-wire violation accepted")
	}
}

func TestGridGeometryQueries(t *testing.T) {
	g := &Grid{}
	g.AddConductor(geom.V(0, 0, 0.8), geom.V(10, 0, 0.8), 0.006)
	g.AddRod(5, 0, 0.8, 1.5, 0.007)
	if math.Abs(g.TotalLength()-11.5) > 1e-12 {
		t.Errorf("TotalLength = %v", g.TotalLength())
	}
	if g.NumRods() != 1 {
		t.Errorf("NumRods = %d", g.NumRods())
	}
	min, max := g.DepthRange()
	if min != 0.8 || max != 2.3 {
		t.Errorf("DepthRange = %v, %v", min, max)
	}
	if g.PlanArea() != 0 { // zero-height bounding rectangle
		t.Errorf("PlanArea = %v", g.PlanArea())
	}
}

func TestRectMeshCounts(t *testing.T) {
	g := RectMesh(0, 0, 30, 20, 4, 3, 0.8, 0.006)
	// 4 lines with 2 spans each (y) + 3 lines with 3 spans each (x).
	if want := 4*2 + 3*3; len(g.Conductors) != want {
		t.Errorf("conductors = %d want %d", len(g.Conductors), want)
	}
	m, err := Discretize(g, Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDoF != 12 { // 4×3 crossings
		t.Errorf("DoF = %d want 12", m.NumDoF)
	}
	if g.PlanArea() != 600 {
		t.Errorf("PlanArea = %v", g.PlanArea())
	}
}

func TestBarberaMatchesPaperCounts(t *testing.T) {
	g := Barbera()
	m, err := BarberaMesh()
	if err != nil {
		t.Fatal(err)
	}
	// The paper: 408 segments, 408 linear elements.
	if len(g.Conductors) != 408 || len(m.Elements) != 408 {
		t.Errorf("Barberá segments = %d, elements = %d, want 408", len(g.Conductors), len(m.Elements))
	}
	// Published DoF is 238; the synthesized lattice yields a close count.
	if m.NumDoF < 200 || m.NumDoF > 260 {
		t.Errorf("Barberá DoF = %d, want ≈238", m.NumDoF)
	}
	// Triangle 143 × 89 m, all at 0.8 m depth.
	b := g.Bounds()
	if math.Abs(b.Size().X-89) > 1e-9 || math.Abs(b.Size().Y-143) > 1e-9 {
		t.Errorf("Barberá plan size = %v", b.Size())
	}
	min, max := g.DepthRange()
	if min != 0.8 || max != 0.8 {
		t.Errorf("Barberá depth range %v–%v", min, max)
	}
	if g.NumRods() != 0 {
		t.Error("Barberá should have no rods")
	}
	// Every conductor strictly inside the triangle x/89 + y/143 ≤ 1.
	for _, c := range g.Conductors {
		for _, p := range []geom.Vec3{c.Seg.A, c.Seg.B} {
			if p.X/89+p.Y/143 > 1+1e-9 {
				t.Fatalf("conductor endpoint outside triangle: %v", p)
			}
		}
	}
}

func TestBalaidosMatchesPaperCounts(t *testing.T) {
	g := Balaidos()
	rods := g.NumRods()
	horiz := len(g.Conductors) - rods
	if horiz != 107 {
		t.Errorf("Balaidos horizontal conductors = %d, want 107", horiz)
	}
	if rods != 67 {
		t.Errorf("Balaidos rods = %d, want 67", rods)
	}
	m, err := BalaidosMesh()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Elements) != 241 { // 107 + 2·67, the paper's discretization
		t.Errorf("Balaidos elements = %d, want 241", len(m.Elements))
	}
	// Rod geometry: 1.5 m long, diameter 14 mm, tops at grid depth.
	for _, c := range g.Conductors {
		if !c.Seg.IsVertical(1e-9) {
			continue
		}
		if math.Abs(c.Length()-1.5) > 1e-9 || math.Abs(c.Radius-0.007) > 1e-12 {
			t.Fatalf("rod geometry wrong: len=%v r=%v", c.Length(), c.Radius)
		}
		if c.Seg.A.Z != 0.8 {
			t.Fatalf("rod top depth = %v", c.Seg.A.Z)
		}
	}
}

func TestDiscretizeSubdivision(t *testing.T) {
	g := HorizontalWire(0, 0, 0.8, 10, 0.006)
	m, err := Discretize(g, Linear, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Elements) != 4 {
		t.Errorf("elements = %d want 4", len(m.Elements))
	}
	if m.NumDoF != 5 {
		t.Errorf("DoF = %d want 5", m.NumDoF)
	}
	// Elements must chain: each interior node shared by two elements.
	if m.Elements[0].DoF[1] != m.Elements[1].DoF[0] {
		t.Error("adjacent elements do not share a node")
	}
	// Total length preserved.
	if math.Abs(m.TotalLength()-10) > 1e-9 {
		t.Errorf("TotalLength = %v", m.TotalLength())
	}
}

func TestDiscretizeConstantKind(t *testing.T) {
	g := RectMesh(0, 0, 10, 10, 2, 2, 0.8, 0.006)
	m, err := Discretize(g, Constant, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDoF != len(m.Elements) {
		t.Errorf("constant mesh DoF %d ≠ elements %d", m.NumDoF, len(m.Elements))
	}
	for i, e := range m.Elements {
		if e.DoF[0] != i {
			t.Errorf("element %d DoF = %d", i, e.DoF[0])
		}
		if m.NodePos[i] != e.Seg.Midpoint() {
			t.Errorf("constant node position not at midpoint")
		}
	}
	if m.DoFCount() != 1 {
		t.Error("DoFCount wrong for constant")
	}
}

func TestNodeSharingAtCrossings(t *testing.T) {
	// A plus-shaped grid: 4 conductors meeting at the center.
	g := &Grid{}
	c := geom.V(0, 0, 0.8)
	for _, p := range []geom.Vec3{geom.V(5, 0, 0.8), geom.V(-5, 0, 0.8), geom.V(0, 5, 0.8), geom.V(0, -5, 0.8)} {
		g.AddConductor(c, p, 0.006)
	}
	m, err := Discretize(g, Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumDoF != 5 { // center + 4 tips
		t.Errorf("DoF = %d want 5", m.NumDoF)
	}
	center := m.Elements[0].DoF[0]
	for _, e := range m.Elements[1:] {
		if e.DoF[0] != center {
			t.Error("center node not shared")
		}
	}
}

func TestMeshStats(t *testing.T) {
	m, err := BalaidosMesh()
	if err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Elements != 241 || s.DoF != m.NumDoF {
		t.Errorf("stats = %+v", s)
	}
	if s.MinLen <= 0 || s.MaxLen < s.MinLen {
		t.Errorf("length stats = %+v", s)
	}
	if s.MinDepth != 0.8 || math.Abs(s.MaxDepth-2.3) > 1e-12 {
		t.Errorf("depth stats = %+v", s)
	}
	if math.Abs(s.TotalLength-m.TotalLength()) > 1e-9 {
		t.Error("TotalLength mismatch")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	g := Balaidos()
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name {
		t.Errorf("name = %q want %q", back.Name, g.Name)
	}
	if len(back.Conductors) != len(g.Conductors) {
		t.Fatalf("conductors = %d want %d", len(back.Conductors), len(g.Conductors))
	}
	if back.NumRods() != g.NumRods() {
		t.Errorf("rods = %d want %d", back.NumRods(), g.NumRods())
	}
	if math.Abs(back.TotalLength()-g.TotalLength()) > 1e-3 {
		t.Errorf("total length %v vs %v", back.TotalLength(), g.TotalLength())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"conductor 1 2 3",                    // wrong arity
		"wombat 1 2 3",                       // unknown directive
		"conductor 0 0 0.8 10 0 0.8 notanum", // bad float
		"name",                               // missing value
		"rod 0 0 0.8 1.5 -0.007",             // fails validation
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	in := `
# a header comment
name test # trailing comment
conductor 0 0 0.8 10 0 0.8 0.006  # inline
rod 5 0 0.8 1.5 0.007
`
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "test" || len(g.Conductors) != 2 {
		t.Errorf("parsed %+v", g)
	}
}

func TestPerimeterPoint(t *testing.T) {
	w, h := 80.0, 60.0
	cases := []struct {
		s    float64
		x, y float64
	}{
		{0, 0, 0}, {40, 40, 0}, {80, 80, 0}, {110, 80, 30},
		{140, 80, 60}, {180, 40, 60}, {220, 0, 60}, {250, 0, 30},
		{280, 0, 0}, // wraps
	}
	for _, c := range cases {
		x, y := perimeterPoint(w, h, c.s)
		if math.Abs(x-c.x) > 1e-9 || math.Abs(y-c.y) > 1e-9 {
			t.Errorf("perimeterPoint(%v) = (%v,%v), want (%v,%v)", c.s, x, y, c.x, c.y)
		}
	}
}

func TestGradedSpacings(t *testing.T) {
	xs := gradedSpace(0, 100, 11, 0.5)
	if xs[0] != 0 || math.Abs(xs[10]-100) > 1e-12 {
		t.Fatalf("endpoints wrong: %v", xs)
	}
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("not monotone at %d: %v", i, xs)
		}
	}
	// Edge spacings smaller than the central one.
	edge := xs[1] - xs[0]
	center := xs[6] - xs[5]
	if edge >= center {
		t.Errorf("edge spacing %v not below center %v", edge, center)
	}
	// β = 0 degenerates to linspace.
	lin := linspace(0, 100, 11)
	for i, v := range gradedSpace(0, 100, 11, 0) {
		if math.Abs(v-lin[i]) > 1e-12 {
			t.Fatal("beta=0 is not linspace")
		}
	}
}

func TestGradedMeshesKeepTopology(t *testing.T) {
	flat := RectMesh(0, 0, 40, 30, 5, 4, 0.8, 0.006)
	graded := RectMeshGraded(0, 0, 40, 30, 5, 4, 0.8, 0.006, 0.5)
	if len(graded.Conductors) != len(flat.Conductors) {
		t.Errorf("conductor counts differ: %d vs %d", len(graded.Conductors), len(flat.Conductors))
	}
	if graded.Bounds().Size() != flat.Bounds().Size() {
		t.Error("grading changed the outline")
	}
	// The Barberá-sized graded triangle keeps the 408 segments.
	gt := TriangleMeshGraded(89, 143, 16, 28, 0.8, 0.0064, 0.6)
	if len(gt.Conductors) != 408 {
		t.Errorf("graded triangle conductors = %d", len(gt.Conductors))
	}
}

func TestGradedPanicsOnBadBeta(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for beta ≥ 1")
		}
	}()
	gradedSpace(0, 1, 5, 1.0)
}

func TestSingleRodAndWireBuilders(t *testing.T) {
	r := SingleRod(1, 2, 0, 3, 0.01)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.NumRods() != 1 || r.TotalLength() != 3 {
		t.Error("SingleRod wrong")
	}
	w := HorizontalWire(0, 0, 0.6, 20, 0.005)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Conductors[0].Seg.A.Z != 0.6 || w.TotalLength() != 20 {
		t.Error("HorizontalWire wrong")
	}
}
