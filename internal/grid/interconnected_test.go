package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"strings"
	"testing"
)

func gridDigest(t *testing.T, g *Grid) string {
	t.Helper()
	var sb strings.Builder
	if err := Write(&sb, g); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte(sb.String()))
	return hex.EncodeToString(sum[:8])
}

// TestInterconnectedSeedStable pins the large-grid generator contract the
// benches rely on: the same (n, seed) builds the bit-identical geometry, a
// different seed builds a different one, the 10k-DoF configuration really
// crosses 10k elements, and the whole system is electrically bonded.
func TestInterconnectedSeedStable(t *testing.T) {
	a := Interconnected(10_000, 3)
	b := Interconnected(10_000, 3)
	da, db := gridDigest(t, a), gridDigest(t, b)
	if da != db {
		t.Fatalf("same (n, seed) built different grids: %s vs %s", da, db)
	}
	if dc := gridDigest(t, Interconnected(10_000, 4)); dc == da {
		t.Errorf("seeds 3 and 4 built the identical grid %s", da)
	}
	if err := a.CheckBonding(); err != nil {
		t.Errorf("interconnected grid not bonded: %v", err)
	}
	m, err := Discretize(a, Linear, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Elements) < 10_000 {
		t.Errorf("n=10000 discretizes to %d elements, want ≥ 10000", len(m.Elements))
	}
	if rel := math.Abs(float64(m.NumDoF)-10_000) / 10_000; rel > 0.10 {
		t.Errorf("n=10000 yields %d DoF (off by %.1f%%), want within 10%%", m.NumDoF, 100*rel)
	}
}

// TestInterconnectedSizes checks the DoF targeting across the bench ladder
// and that small requests stay valid grids.
func TestInterconnectedSizes(t *testing.T) {
	for _, n := range []int{1000, 2500, 5000, 20000} {
		g := Interconnected(n, 1)
		m, err := Discretize(g, Linear, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if rel := math.Abs(float64(m.NumDoF)-float64(n)) / float64(n); rel > 0.10 {
			t.Errorf("n=%d yields %d DoF (off by %.1f%%)", n, m.NumDoF, 100*rel)
		}
		if err := g.CheckBonding(); err != nil {
			t.Errorf("n=%d: not bonded: %v", n, err)
		}
	}
	if g := Interconnected(1, 1); len(g.Conductors) == 0 {
		t.Error("tiny n built an empty grid")
	}
}
