package grid

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"
	"testing"
)

// The built-in paper grids must be bit-stable: the reproduction quality of
// EXPERIMENTS.md depends on these exact geometries. If a deliberate
// generator change alters them, update the digests and re-run
// cmd/paperbench to refresh the recorded numbers.
func TestGoldenGeometries(t *testing.T) {
	digest := func(g *Grid) string {
		var sb strings.Builder
		if err := Write(&sb, g); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256([]byte(sb.String()))
		return hex.EncodeToString(sum[:8])
	}
	if got := digest(Barbera()); got != "bf2b2741caaca1dd" {
		t.Errorf("Barberá geometry changed: digest %s", got)
	}
	if got := digest(Balaidos()); got != "f177e5e56df4a46f" {
		t.Errorf("Balaidos geometry changed: digest %s", got)
	}
}
