package grid

import (
	"fmt"
	"math"
	"math/rand"

	"earthing/internal/geom"
)

// RectMesh builds a rectangular grounding mesh: nx equally spaced lines
// parallel to the y axis and ny lines parallel to the x axis, spanning
// width × height metres with the lower-left corner at (x0, y0), buried at
// the given depth. Every span between adjacent crossings becomes one
// conductor, which is the natural unit for the paper's per-segment
// discretization. nx, ny ≥ 2.
func RectMesh(x0, y0, width, height float64, nx, ny int, depth, radius float64) *Grid {
	if nx < 2 || ny < 2 {
		panic(fmt.Sprintf("grid: RectMesh needs nx, ny ≥ 2, got %d×%d", nx, ny))
	}
	g := &Grid{Name: fmt.Sprintf("rect-%dx%d", nx, ny)}
	xs := linspace(x0, x0+width, nx)
	ys := linspace(y0, y0+height, ny)
	for _, x := range xs {
		for j := 0; j+1 < ny; j++ {
			g.AddConductor(geom.V(x, ys[j], depth), geom.V(x, ys[j+1], depth), radius)
		}
	}
	for _, y := range ys {
		for i := 0; i+1 < nx; i++ {
			g.AddConductor(geom.V(xs[i], y, depth), geom.V(xs[i+1], y, depth), radius)
		}
	}
	return g
}

// TriangleMesh builds a right-triangle grounding mesh with legs legX (along
// x) and legY (along y), the right angle at the origin, and the hypotenuse
// from (legX, 0) to (0, legY). The nx × ny crossing lattice is clipped to
// the triangle; spans whose endpoints both survive the clip become
// conductors. This is the Barberá plan shape (Fig 5.1).
func TriangleMesh(legX, legY float64, nx, ny int, depth, radius float64) *Grid {
	if nx < 2 || ny < 2 {
		panic(fmt.Sprintf("grid: TriangleMesh needs nx, ny ≥ 2, got %d×%d", nx, ny))
	}
	g := &Grid{Name: fmt.Sprintf("triangle-%dx%d", nx, ny)}
	xs := linspace(0, legX, nx)
	ys := linspace(0, legY, ny)
	const eps = 1e-9
	keep := func(x, y float64) bool { return x/legX+y/legY <= 1+eps }
	for i, x := range xs {
		for j, y := range ys {
			if !keep(x, y) {
				continue
			}
			if i+1 < nx && keep(xs[i+1], y) {
				g.AddConductor(geom.V(x, y, depth), geom.V(xs[i+1], y, depth), radius)
			}
			if j+1 < ny && keep(x, ys[j+1]) {
				g.AddConductor(geom.V(x, y, depth), geom.V(x, ys[j+1], depth), radius)
			}
		}
	}
	return g
}

// Barbera builds the Barberá substation grounding grid of Example 1
// (§5.1): a right-angled-triangle grid of 143 × 89 m protecting ≈ 6600 m²,
// conductor diameter 12.85 mm, buried at 0.8 m. The published plan gives the
// outline and segment count (408 segments, 238 DoF with linear elements);
// the interior lattice spacing is synthesized as a uniform clipped lattice
// with matching leg lengths — see DESIGN.md §4 for the substitution note.
func Barbera() *Grid {
	// A 16 × 28 clipped lattice yields exactly the paper's 408 conductor
	// segments (226 shared nodes vs the paper's 238 — the unpublished
	// interior spacing differs slightly).
	g := TriangleMesh(89, 143, 16, 28, 0.80, 12.85e-3/2)
	g.Name = "barbera"
	return g
}

// Balaidos builds the Balaidos substation grounding grid of Example 2
// (§5.2): 107 grid conductors (diameter 11.28 mm) buried at 0.8 m,
// supplemented by 67 vertical rods of 1.5 m length and 14.0 mm diameter.
// The conductor mesh is a 9 × 7 line lattice over 80 × 60 m with a clipped
// corner and one omitted edge span (107 spans exactly); the 67 rods are
// distributed uniformly along the perimeter, their tops at grid depth.
func Balaidos() *Grid {
	const (
		depth      = 0.80
		condRadius = 11.28e-3 / 2
		rodRadius  = 14.0e-3 / 2
		rodLen     = 1.5
		w, h       = 80.0, 60.0
	)
	g := &Grid{Name: "balaidos"}
	xs := linspace(0, w, 9)
	ys := linspace(0, h, 7)
	removedNode := geom.V(w, h, depth) // clipped corner
	skip := func(a, b geom.Vec3) bool {
		if a.ApproxEqual(removedNode, 1e-9) || b.ApproxEqual(removedNode, 1e-9) {
			return true
		}
		// One omitted span on the west edge (real plans are rarely full
		// lattices; this lands the count at exactly 107).
		if a.ApproxEqual(geom.V(0, 50, depth), 1e-9) && b.ApproxEqual(geom.V(0, 60, depth), 1e-9) {
			return true
		}
		return false
	}
	for _, x := range xs {
		for j := 0; j+1 < len(ys); j++ {
			a, b := geom.V(x, ys[j], depth), geom.V(x, ys[j+1], depth)
			if !skip(a, b) {
				g.AddConductor(a, b, condRadius)
			}
		}
	}
	for _, y := range ys {
		for i := 0; i+1 < len(xs); i++ {
			a, b := geom.V(xs[i], y, depth), geom.V(xs[i+1], y, depth)
			if !skip(a, b) {
				g.AddConductor(a, b, condRadius)
			}
		}
	}
	// 67 rods equally spaced along the perimeter stretches that carry a
	// conductor (the clipped corner and the omitted west span have none —
	// a rod there would be electrically floating). In arc length from the
	// origin, counter-clockwise, the missing stretches are s ∈ [130, 150]
	// (around the clipped corner) and s ∈ [220, 230] (the omitted span).
	perim := 2 * (w + h) // 280 m
	excluded := [][2]float64{{130, 150}, {220, 230}}
	available := perim
	for _, e := range excluded {
		available -= e[1] - e[0]
	}
	for k := 0; k < 67; k++ {
		u := available * float64(k) / 67
		s := u
		for _, e := range excluded {
			if s >= e[0] {
				s += e[1] - e[0]
			}
		}
		x, y := perimeterPoint(w, h, s)
		g.AddRod(x, y, depth, rodLen, rodRadius)
	}
	return g
}

// BarberaMesh discretizes the Barberá grid the way the paper does: one
// linear element per conductor segment (408 elements).
func BarberaMesh() (*Mesh, error) {
	return Discretize(Barbera(), Linear, 0)
}

// BalaidosMesh discretizes the Balaidos grid the way the paper does: one
// linear element per grid span and two per vertical rod, 241 elements total.
func BalaidosMesh() (*Mesh, error) {
	return DiscretizeN(Balaidos(), Linear, func(c Conductor) int {
		if c.Seg.IsVertical(1e-9) {
			return 2
		}
		return 1
	})
}

// perimeterPoint maps arc length s (from the origin, counter-clockwise) to a
// point on the w × h rectangle boundary.
func perimeterPoint(w, h, s float64) (x, y float64) {
	s = math.Mod(s, 2*(w+h))
	switch {
	case s < w:
		return s, 0
	case s < w+h:
		return w, s - w
	case s < 2*w+h:
		return w - (s - w - h), h
	default:
		return 0, h - (s - 2*w - h)
	}
}

// Interconnected builds a deterministic multi-substation grounding system of
// approximately n degrees of freedom under the one-linear-element-per-span
// discretization: several rectangular lattice grids of seeded size and
// spacing ("substations") laid out along x, bonded end to end by tie
// conductors between facing lattice nodes, with vertical rods at every
// substation corner. The same (n, seed) always yields the identical
// geometry — math/rand with an explicit source, no map iteration, no time —
// so benches and tests can share large grids by naming two integers instead
// of shipping megabyte geometry files. Pinned by a golden transcript in
// cmd/gridgen and a 10k-element digest test in this package.
//
// The DoF count tracks n through the node budget (lattice crossings plus rod
// bottoms); lattice rounding keeps it within a few percent of n.
func Interconnected(n int, seed int64) *Grid {
	if n < 16 {
		n = 16
	}
	rng := rand.New(rand.NewSource(seed))
	substations := 2
	switch {
	case n >= 12000:
		substations = 5
	case n >= 6000:
		substations = 4
	case n >= 1500:
		substations = 3
	}
	const (
		condRadius = 0.006
		rodRadius  = 0.007
		rodLen     = 3.0
	)
	// One burial depth for the whole system: the ties are horizontal runs
	// between lattices, so mixed depths would leave them unbonded.
	depth := 0.6 + 0.4*rng.Float64()
	g := &Grid{Name: fmt.Sprintf("interconnected-n%d-s%d", n, seed)}

	// Seeded share of the node budget per substation (rod bottoms take
	// four nodes each).
	shares := make([]float64, substations)
	var sum float64
	for i := range shares {
		shares[i] = 0.75 + 0.5*rng.Float64()
		sum += shares[i]
	}
	budget := float64(n - 4*substations)

	x0 := 0.0
	var prevXMax float64
	var prevYs []float64
	for i := 0; i < substations; i++ {
		target := budget * shares[i] / sum
		aspect := 0.7 + 0.6*rng.Float64()
		nx := int(math.Round(math.Sqrt(target * aspect)))
		if nx < 2 {
			nx = 2
		}
		ny := int(math.Round(target / float64(nx)))
		if ny < 2 {
			ny = 2
		}
		pitch := 3 + 4*rng.Float64()
		width := float64(nx-1) * pitch
		height := float64(ny-1) * pitch
		yOff := (rng.Float64() - 0.5) * 0.3 * height
		xs := linspace(x0, x0+width, nx)
		ys := linspace(yOff, yOff+height, ny)
		for _, x := range xs {
			for j := 0; j+1 < ny; j++ {
				g.AddConductor(geom.V(x, ys[j], depth), geom.V(x, ys[j+1], depth), condRadius)
			}
		}
		for _, y := range ys {
			for m := 0; m+1 < nx; m++ {
				g.AddConductor(geom.V(xs[m], y, depth), geom.V(xs[m+1], y, depth), condRadius)
			}
		}
		for _, cx := range []float64{xs[0], xs[nx-1]} {
			for _, cy := range []float64{ys[0], ys[ny-1]} {
				g.AddRod(cx, cy, depth, rodLen, rodRadius)
			}
		}
		// Two ties to the previous substation, attached at the quarter and
		// three-quarter rows of each facing edge: both endpoints coincide
		// with lattice nodes, so the mesh merges them and the system is
		// electrically bonded end to end.
		if i > 0 {
			for _, q := range []float64{0.25, 0.75} {
				jp := int(q * float64(len(prevYs)-1))
				jc := int(q * float64(ny-1))
				g.AddConductor(geom.V(prevXMax, prevYs[jp], depth), geom.V(xs[0], ys[jc], depth), condRadius)
			}
		}
		prevXMax = xs[nx-1]
		prevYs = ys
		x0 = xs[nx-1] + 10 + 8*rng.Float64()
	}
	return g
}

// SingleRod builds a grid consisting of one vertical rod — the classical
// configuration with a textbook resistance formula, used for validation.
func SingleRod(x, y, top, length, radius float64) *Grid {
	g := &Grid{Name: "rod"}
	g.AddRod(x, y, top, length, radius)
	return g
}

// HorizontalWire builds a single buried horizontal conductor along x.
func HorizontalWire(x0, y, depth, length, radius float64) *Grid {
	g := &Grid{Name: "wire"}
	g.AddConductor(geom.V(x0, y, depth), geom.V(x0+length, y, depth), radius)
	return g
}

// linspace returns n evenly spaced values from a to b inclusive.
func linspace(a, b float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	return out
}

// gradedSpace returns n values from a to b with spacing compressed toward
// both ends by the smooth map t ← t − β·sin(2πt)/(2π): the end spacings
// shrink by the factor (1 − β) while the count and the end points stay
// fixed. β = 0 is linspace; β must be < 1.
//
// Practical grounding meshes are graded this way because the leakage
// density — and with it the touch-voltage risk — concentrates at the grid
// perimeter (see post.ComputeLeakage); the published Barberá plan
// (Fig 5.1) visibly uses unequal spacings.
func gradedSpace(a, b float64, n int, beta float64) []float64 {
	if beta < 0 || beta >= 1 {
		panic(fmt.Sprintf("grid: grading factor %g outside [0, 1)", beta))
	}
	out := make([]float64, n)
	for i := range out {
		t := float64(i) / float64(n-1)
		g := t - beta*math.Sin(2*math.Pi*t)/(2*math.Pi)
		out[i] = a + (b-a)*g
	}
	return out
}

// RectMeshGraded is RectMesh with edge-compressed line spacings (grading
// factor beta ∈ [0, 1)).
func RectMeshGraded(x0, y0, width, height float64, nx, ny int, depth, radius, beta float64) *Grid {
	if nx < 2 || ny < 2 {
		panic(fmt.Sprintf("grid: RectMeshGraded needs nx, ny ≥ 2, got %d×%d", nx, ny))
	}
	g := &Grid{Name: fmt.Sprintf("rect-graded-%dx%d", nx, ny)}
	xs := gradedSpace(x0, x0+width, nx, beta)
	ys := gradedSpace(y0, y0+height, ny, beta)
	for _, x := range xs {
		for j := 0; j+1 < ny; j++ {
			g.AddConductor(geom.V(x, ys[j], depth), geom.V(x, ys[j+1], depth), radius)
		}
	}
	for _, y := range ys {
		for i := 0; i+1 < nx; i++ {
			g.AddConductor(geom.V(xs[i], y, depth), geom.V(xs[i+1], y, depth), radius)
		}
	}
	return g
}

// TriangleMeshGraded is TriangleMesh with edge-compressed spacings. The
// clip keeps lattice nodes with x/legX + y/legY ≤ 1, so the element count
// may differ slightly from the ungraded lattice.
func TriangleMeshGraded(legX, legY float64, nx, ny int, depth, radius, beta float64) *Grid {
	if nx < 2 || ny < 2 {
		panic(fmt.Sprintf("grid: TriangleMeshGraded needs nx, ny ≥ 2, got %d×%d", nx, ny))
	}
	g := &Grid{Name: fmt.Sprintf("triangle-graded-%dx%d", nx, ny)}
	xs := gradedSpace(0, legX, nx, beta)
	ys := gradedSpace(0, legY, ny, beta)
	const eps = 1e-9
	keep := func(x, y float64) bool { return x/legX+y/legY <= 1+eps }
	for i, x := range xs {
		for j, y := range ys {
			if !keep(x, y) {
				continue
			}
			if i+1 < nx && keep(xs[i+1], y) {
				g.AddConductor(geom.V(x, y, depth), geom.V(xs[i+1], y, depth), radius)
			}
			if j+1 < ny && keep(x, ys[j+1]) {
				g.AddConductor(geom.V(x, y, depth), geom.V(x, ys[j+1], depth), radius)
			}
		}
	}
	return g
}
