package grid

import (
	"fmt"
	"math"

	"earthing/internal/geom"
)

// ElementKind selects the trial/test function family of the discretization
// (§4.1 of the paper: "for given sets of N trial functions…").
type ElementKind int

const (
	// Linear elements carry two nodal degrees of freedom with hat shape
	// functions; nodes shared between connected elements make the leakage
	// density continuous across junctions. This is the discretization of the
	// paper's examples (Barberá: 408 linear elements → 238 DoF).
	Linear ElementKind = iota
	// Constant elements carry one degree of freedom each (piecewise-constant
	// leakage density).
	Constant
)

// String implements fmt.Stringer.
func (k ElementKind) String() string {
	switch k {
	case Linear:
		return "linear"
	case Constant:
		return "constant"
	default:
		return fmt.Sprintf("ElementKind(%d)", int(k))
	}
}

// Element is one 1-D boundary element on a conductor axis.
type Element struct {
	Seg    geom.Segment
	Radius float64
	// DoF holds the global degree-of-freedom indices: both entries for
	// Linear (DoF[0] at Seg.A, DoF[1] at Seg.B), only DoF[0] for Constant.
	DoF [2]int
}

// Mesh is a discretized grid: the elements plus the global DoF numbering.
type Mesh struct {
	Kind     ElementKind
	Elements []Element
	// NumDoF is the order N of the linear system (4.4).
	NumDoF int
	// NodePos[d] is the position of DoF d: the shared node for Linear
	// meshes, the element midpoint for Constant meshes.
	NodePos []geom.Vec3
}

// nodeKey quantizes a coordinate for node deduplication. Grid coordinates
// are metres; 10 µm resolution is far below any construction tolerance.
type nodeKey struct{ x, y, z int64 }

func keyOf(p geom.Vec3) nodeKey {
	const q = 1e5 // 10 µm
	return nodeKey{
		x: int64(math.Round(p.X * q)),
		y: int64(math.Round(p.Y * q)),
		z: int64(math.Round(p.Z * q)),
	}
}

// Discretize builds a mesh from the grid. Each conductor is subdivided into
// ceil(length/maxElemLen) equal elements; maxElemLen ≤ 0 keeps one element
// per conductor (the paper's discretization). For Linear meshes, element
// endpoints that coincide (within 10 µm) share a degree of freedom, which is
// how the 408 Barberá elements collapse to 238 unknowns.
func Discretize(g *Grid, kind ElementKind, maxElemLen float64) (*Mesh, error) {
	return DiscretizeN(g, kind, func(c Conductor) int {
		if maxElemLen <= 0 {
			return 1
		}
		n := int(math.Ceil(c.Length() / maxElemLen))
		if n < 1 {
			n = 1
		}
		return n
	})
}

// DiscretizeN is Discretize with an explicit per-conductor subdivision
// count. It allows mixed discretizations such as the paper's Balaidos model
// (one element per grid span, two per vertical rod → 241 elements).
func DiscretizeN(g *Grid, kind ElementKind, nFor func(Conductor) int) (*Mesh, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	m := &Mesh{Kind: kind}
	nodeIDs := map[nodeKey]int{}
	nodeAt := func(p geom.Vec3) int {
		k := keyOf(p)
		if id, ok := nodeIDs[k]; ok {
			return id
		}
		id := len(m.NodePos)
		nodeIDs[k] = id
		m.NodePos = append(m.NodePos, p)
		return id
	}

	for _, c := range g.Conductors {
		n := nFor(c)
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			a := c.Seg.Point(float64(i) / float64(n))
			b := c.Seg.Point(float64(i+1) / float64(n))
			el := Element{Seg: geom.Seg(a, b), Radius: c.Radius}
			switch kind {
			case Linear:
				el.DoF[0] = nodeAt(a)
				el.DoF[1] = nodeAt(b)
				if el.DoF[0] == el.DoF[1] {
					return nil, fmt.Errorf("grid: element shorter than node tolerance on conductor %v", c.Seg)
				}
			case Constant:
				el.DoF[0] = len(m.Elements)
			default:
				return nil, fmt.Errorf("grid: unknown element kind %v", kind)
			}
			m.Elements = append(m.Elements, el)
		}
	}

	switch kind {
	case Linear:
		m.NumDoF = len(m.NodePos)
	case Constant:
		m.NumDoF = len(m.Elements)
		m.NodePos = make([]geom.Vec3, len(m.Elements))
		for i, el := range m.Elements {
			m.NodePos[i] = el.Seg.Midpoint()
		}
	}
	return m, nil
}

// DoFCount returns the number of degrees of freedom per element for the
// mesh's element kind (2 for Linear, 1 for Constant).
func (m *Mesh) DoFCount() int {
	if m.Kind == Linear {
		return 2
	}
	return 1
}

// Bounds returns the axis-aligned bounding box of all elements.
func (m *Mesh) Bounds() geom.AABB {
	b := geom.EmptyAABB()
	for _, e := range m.Elements {
		b = b.ExtendSegment(e.Seg)
	}
	return b
}

// TotalLength returns the summed length of all elements.
func (m *Mesh) TotalLength() float64 {
	var t float64
	for _, e := range m.Elements {
		t += e.Seg.Length()
	}
	return t
}

// Stats summarises a mesh for reports.
type Stats struct {
	Elements, DoF      int
	MinLen, MaxLen     float64
	TotalLength        float64
	MinDepth, MaxDepth float64
}

// Stats computes mesh statistics.
func (m *Mesh) Stats() Stats {
	s := Stats{
		Elements: len(m.Elements),
		DoF:      m.NumDoF,
		MinLen:   math.Inf(1),
		MinDepth: math.Inf(1),
		MaxDepth: math.Inf(-1),
	}
	for _, e := range m.Elements {
		l := e.Seg.Length()
		s.TotalLength += l
		s.MinLen = math.Min(s.MinLen, l)
		s.MaxLen = math.Max(s.MaxLen, l)
		s.MinDepth = math.Min(s.MinDepth, math.Min(e.Seg.A.Z, e.Seg.B.Z))
		s.MaxDepth = math.Max(s.MaxDepth, math.Max(e.Seg.A.Z, e.Seg.B.Z))
	}
	return s
}
