package grid

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"earthing/internal/geom"
)

// TestReadNeverPanics feeds randomly corrupted inputs to the parser: it may
// reject them, but must never panic.
func TestReadNeverPanics(t *testing.T) {
	tokens := []string{
		"conductor", "rod", "name", "#", "\n", " ", "0", "-1", "1e308", "NaN",
		"0.8", "10", "abc", "1e-12", "Inf", "-Inf", "conductor 0 0 0.8 10 0 0.8 0.006\n",
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		for i := 0; i < r.Intn(40); i++ {
			sb.WriteString(tokens[r.Intn(len(tokens))])
			if r.Intn(3) == 0 {
				sb.WriteByte('\n')
			} else {
				sb.WriteByte(' ')
			}
		}
		defer func() {
			if p := recover(); p != nil {
				t.Fatalf("Read panicked on %q: %v", sb.String(), p)
			}
		}()
		_, _ = Read(strings.NewReader(sb.String()))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestReadRejectsNonFiniteCoordinates ensures NaN/Inf coordinates are caught
// by validation rather than propagating into the solver.
func TestReadRejectsNonFiniteCoordinates(t *testing.T) {
	cases := []string{
		"conductor NaN 0 0.8 10 0 0.8 0.006",
		"conductor 0 0 0.8 Inf 0 0.8 0.006",
		"rod 0 0 0.8 +Inf 0.007",
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

// TestSplitAtDepthsProperties: splitting preserves total length and never
// leaves a conductor crossing a split plane.
func TestSplitAtDepthsProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := &Grid{}
		for i := 0; i < 1+r.Intn(8); i++ {
			x, y := r.Float64()*50, r.Float64()*50
			z1, z2 := r.Float64()*4, r.Float64()*4
			if z1 == z2 {
				z2 += 0.5
			}
			g.AddConductor(
				geom.V(x, y, z1),
				geom.V(x+0.5+r.Float64()*10, y+r.Float64()*10, z2),
				0.005,
			)
		}
		depths := []float64{0.5 + r.Float64()*1.5, 2 + r.Float64()}
		s := g.SplitAtDepths(depths...)
		if diff := s.TotalLength() - g.TotalLength(); diff > 1e-9 || diff < -1e-9 {
			return false
		}
		for _, c := range s.Conductors {
			lo, hi := c.Seg.A.Z, c.Seg.B.Z
			if lo > hi {
				lo, hi = hi, lo
			}
			for _, d := range depths {
				if d > lo+1e-9 && d < hi-1e-9 {
					return false // still crosses a plane
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
