package grid

import (
	"math"
	"strings"
	"testing"
)

// FuzzParseGrid is the native-fuzzing counterpart of TestReadNeverPanics:
// arbitrary byte soup through the text parser. Properties: no panic; an
// accepted grid validates, round-trips through Write/Read, and carries only
// finite geometry.
func FuzzParseGrid(f *testing.F) {
	f.Add("conductor 0 0 0.8 10 0 0.8 0.006\n")
	f.Add("rod 5 5 0.8 2.5 0.007\n")
	f.Add("name barbera\n# comment\nconductor 0 0 0.8 10 0 0.8 0.006\nrod 0 0 0.8 1.5 0.007\n")
	f.Add("conductor NaN 0 0.8 10 0 0.8 0.006")
	f.Add("conductor 0 0 0.8 10 0 0.8 -0.006")
	f.Add("conductor 1e308 0 0.8 -1e308 0 0.8 0.006")
	f.Add("rod 0 0 0.8\nconductor 1 2 3")
	f.Add("\x00\xff conductor")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("Read accepted a grid that fails Validate: %v\ninput: %q", verr, input)
		}
		for i, c := range g.Conductors {
			for _, v := range []float64{c.Seg.A.X, c.Seg.A.Y, c.Seg.A.Z, c.Seg.B.X, c.Seg.B.Y, c.Seg.B.Z, c.Radius} {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("conductor %d has non-finite geometry %g\ninput: %q", i, v, input)
				}
			}
		}
		// Round trip: the serialization of an accepted grid must parse back
		// to the same conductor count (Write output is canonical).
		var sb strings.Builder
		if werr := Write(&sb, g); werr != nil {
			t.Fatalf("Write failed on accepted grid: %v", werr)
		}
		g2, rerr := Read(strings.NewReader(sb.String()))
		if rerr != nil {
			t.Fatalf("round trip failed: %v\nserialized: %q", rerr, sb.String())
		}
		if len(g2.Conductors) != len(g.Conductors) {
			t.Fatalf("round trip changed conductor count %d → %d", len(g.Conductors), len(g2.Conductors))
		}
	})
}
