package analysis

import (
	"strings"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		reason   string
		ok       bool
	}{
		{"//lint:ignore errdrop the writer latches errors", "errdrop", "the writer latches errors", true},
		{"// lint:ignore errdrop spaced prefix still parses", "errdrop", "spaced prefix still parses", true},
		{"//lint:ignore errdrop", "errdrop", "", true},
		{"//lint:ignore", "", "", true},
		{"//lint:ignore\tfloatcmp\ttabs separate fields too", "floatcmp", "tabs separate fields too", true},
		{"//lint:ignoreX not a directive", "", "", false},
		{"// just a comment", "", "", false},
		{"/* lint:ignore errdrop block comments do not count */", "", "", false},
	}
	for _, c := range cases {
		analyzer, reason, ok := parseDirective(c.text)
		if analyzer != c.analyzer || reason != c.reason || ok != c.ok {
			t.Errorf("parseDirective(%q) = (%q, %q, %v), want (%q, %q, %v)",
				c.text, analyzer, reason, ok, c.analyzer, c.reason, c.ok)
		}
	}
}

// FuzzDirectiveParse checks the parser's invariants on arbitrary comment
// text: no panics, directives recognized only inside //-comments that lead
// with the exact keyword, a whitespace-free analyzer token, and a canonical
// re-rendering that round-trips.
func FuzzDirectiveParse(f *testing.F) {
	f.Add("//lint:ignore errdrop a perfectly ordinary reason")
	f.Add("//lint:ignore floatcmp")
	f.Add("//lint:ignore")
	f.Add("//  lint:ignore  sharedwrite   extra   spacing")
	f.Add("//lint:ignoreX suffix fused onto the keyword")
	f.Add("/*lint:ignore errdrop block*/")
	f.Add("//lint:ignore\tctxflow\ttabbed")
	f.Add("")
	f.Add("//")
	f.Add("//lint:ignore \x00odd bytes")
	f.Fuzz(func(t *testing.T, text string) {
		analyzer, reason, ok := parseDirective(text)
		if !ok {
			if analyzer != "" || reason != "" {
				t.Fatalf("parseDirective(%q): non-directive returned fields (%q, %q)", text, analyzer, reason)
			}
			return
		}
		if !strings.HasPrefix(text, "//") {
			t.Fatalf("parseDirective(%q): directive out of a non-// comment", text)
		}
		if strings.IndexFunc(analyzer, func(r rune) bool { return r == ' ' || r == '\t' || r == '\n' }) >= 0 {
			t.Fatalf("parseDirective(%q): analyzer %q contains whitespace", text, analyzer)
		}
		if analyzer == "" && reason != "" {
			t.Fatalf("parseDirective(%q): reason %q without an analyzer", text, reason)
		}
		if analyzer == "" || reason == "" {
			return // malformed directives have no canonical form
		}
		canonical := "//lint:ignore " + analyzer + " " + reason
		a2, r2, ok2 := parseDirective(canonical)
		if !ok2 || a2 != analyzer || r2 != reason {
			t.Fatalf("round-trip of %q via %q = (%q, %q, %v)", text, canonical, a2, r2, ok2)
		}
	})
}
