package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockDisciplineAnalyzer mechanizes the locking rules the serving stack's
// concurrent structures (cache, metrics, sweep plan, faultinject registry)
// follow by hand:
//
//   - values whose type contains a sync.Mutex, sync.RWMutex or
//     sync.WaitGroup must never be copied: assignment from an existing
//     location, passing by value, returning by value, range-copying, and
//     value receivers all silently fork the lock state;
//   - a Lock/RLock acquired in a function must be released in that same
//     function, on every path: a receiver with Lock calls but no matching
//     Unlock is flagged, as is a return statement that executes while the
//     lock is still held when no deferred Unlock covers it (a linear,
//     position-ordered approximation of path coverage — defer is both the
//     fix and the idiom the tree already uses);
//   - a struct field accessed through sync/atomic (atomic.AddInt64(&s.n,
//     …)) must not also be read or written plainly in the same package:
//     mixed access is exactly the race the atomics were bought to prevent.
//     Locals are exempt — the declare/atomically-fill/read-after-join
//     pattern the sched tests use is ordered by the loop join, and a local
//     never escapes the function that can see the whole story.
//
// Like sharedwrite, this analyzer runs on _test.go files too — a copied
// WaitGroup in a chaos suite deadlocks the suite just as surely.
var LockDisciplineAnalyzer = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no copied locks, no Lock without Unlock on all paths, no mixed atomic/plain field access",
	Run:  runLockDiscipline,
}

func runLockDiscipline(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		checkLockCopies(pass, file)
		checkLockPairs(pass, file)
	}
	checkAtomicMix(pass)
}

// containsLock reports whether a value of type t embeds a sync.Mutex,
// sync.RWMutex or sync.WaitGroup (directly, via struct fields, or via
// array elements — the shapes a value copy duplicates).
func containsLock(t types.Type) bool {
	return containsLockRec(t, map[types.Type]bool{})
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex", "WaitGroup":
				return true
			}
		}
		return containsLockRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLockRec(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(t.Elem(), seen)
	}
	return false
}

// isLocation reports whether e denotes an existing addressable location
// (so copying it duplicates live lock state). Fresh composite literals and
// call results are not locations.
func isLocation(e ast.Expr) bool {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t.Name != "_"
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			return false
		}
	}
}

// lockCopy flags e when it copies a lock-containing value out of an
// existing location.
func lockCopy(pass *Pass, e ast.Expr, verb string) {
	if e == nil || !isLocation(e) {
		return
	}
	t := pass.TypeOf(e)
	if t == nil || !containsLock(t) {
		return
	}
	pass.Reportf(e.Pos(), "%s copies %s, which contains a sync lock; use a pointer", verb, exprName(e))
}

func checkLockCopies(pass *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				lockCopy(pass, rhs, "assignment")
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				lockCopy(pass, arg, "argument")
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				lockCopy(pass, res, "return")
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := pass.TypeOf(n.Value); t != nil && containsLock(t) {
					pass.Reportf(n.Value.Pos(), "range copies elements containing a sync lock; iterate by index")
				}
			}
		case *ast.FuncDecl:
			if n.Recv != nil && len(n.Recv.List) == 1 {
				recvType := pass.TypeOf(n.Recv.List[0].Type)
				if _, isPtr := recvType.(*types.Pointer); !isPtr && recvType != nil && containsLock(recvType) {
					pass.Reportf(n.Recv.List[0].Pos(),
						"method %s has a value receiver containing a sync lock; every call copies it — use a pointer receiver", n.Name.Name)
				}
			}
		}
		return true
	})
}

// A lockOp is one Lock/Unlock-family call inside a single function body.
type lockOp struct {
	recv     string // rendered receiver expression, e.g. "c.mu"
	name     string // Lock, Unlock, RLock, RUnlock
	pos      token.Pos
	deferred bool
}

// checkLockPairs verifies per-function acquire/release pairing. Each
// function literal is its own scope: a lock acquired in an outer function
// and released in a nested goroutine is a handoff this lexical check does
// not try to model (and the tree does not use).
func checkLockPairs(pass *Pass, file *ast.File) {
	var fns []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fns = append(fns, n)
			}
		case *ast.FuncLit:
			fns = append(fns, n)
		}
		return true
	})
	for _, fn := range fns {
		checkLockPairsIn(pass, fn)
	}
}

// syncLockMethod matches a call to Lock/Unlock/RLock/RUnlock on a sync
// type and returns the rendered receiver plus the method name.
func syncLockMethod(pass *Pass, call *ast.CallExpr) (recv, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprName(sel.X), sel.Sel.Name, true
}

func checkLockPairsIn(pass *Pass, fn ast.Node) {
	var body *ast.BlockStmt
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body = fn.Body
	case *ast.FuncLit:
		body = fn.Body
	}

	var ops []lockOp
	var returns []token.Pos
	// Walk the body but stop at nested function literals — they are
	// analyzed as their own scopes.
	var walk func(n ast.Node, deferred bool)
	walk = func(root ast.Node, deferred bool) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return n == root // descend only into the root itself
			case *ast.DeferStmt:
				if recv, name, ok := syncLockMethod(pass, n.Call); ok {
					ops = append(ops, lockOp{recv: recv, name: name, pos: n.Pos(), deferred: true})
					return false
				}
				// defer func() { mu.Unlock() }() — the literal runs at
				// function exit, so its ops count as deferred here.
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					walk(lit, true)
					return false
				}
			case *ast.CallExpr:
				if recv, name, ok := syncLockMethod(pass, n); ok {
					ops = append(ops, lockOp{recv: recv, name: name, pos: n.Pos(), deferred: deferred})
				}
			case *ast.ReturnStmt:
				// Returns inside a deferred cleanup literal leave that
				// literal, not the function under analysis.
				if !deferred {
					returns = append(returns, n.Pos())
				}
			}
			return true
		})
	}
	walk(body, false)

	byRecv := map[string][]lockOp{}
	for _, op := range ops {
		byRecv[op.recv] = append(byRecv[op.recv], op)
	}
	recvs := make([]string, 0, len(byRecv))
	for r := range byRecv {
		recvs = append(recvs, r)
	}
	sort.Strings(recvs)
	for _, r := range recvs {
		checkPairing(pass, r, byRecv[r], "Lock", "Unlock", returns)
		checkPairing(pass, r, byRecv[r], "RLock", "RUnlock", returns)
	}
}

// checkPairing enforces acquire/release pairing for one receiver and one
// lock flavor inside one function.
func checkPairing(pass *Pass, recv string, ops []lockOp, lock, unlock string, returns []token.Pos) {
	var locks []lockOp
	var unlocks []lockOp
	deferredUnlock := false
	for _, op := range ops {
		switch op.name {
		case lock:
			locks = append(locks, op)
		case unlock:
			unlocks = append(unlocks, op)
			if op.deferred {
				deferredUnlock = true
			}
		}
	}
	if len(locks) == 0 {
		return
	}
	if len(unlocks) == 0 {
		pass.Reportf(locks[0].pos,
			"%s.%s has no matching %s in this function; release on every path (defer %s.%s())",
			recv, lock, unlock, recv, unlock)
		return
	}
	if deferredUnlock {
		return // a deferred release covers every path out
	}
	// Linear position-ordered hold simulation: a return while the counter
	// is positive escapes with the lock held on that path.
	held := 0
	type event struct {
		pos  token.Pos
		kind int // 0 lock, 1 unlock, 2 return
	}
	var evs []event
	for _, op := range locks {
		evs = append(evs, event{op.pos, 0})
	}
	for _, op := range unlocks {
		evs = append(evs, event{op.pos, 1})
	}
	for _, p := range returns {
		evs = append(evs, event{p, 2})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].pos < evs[j].pos })
	for _, ev := range evs {
		switch ev.kind {
		case 0:
			held++
		case 1:
			if held > 0 {
				held--
			}
		case 2:
			if held > 0 {
				pass.Reportf(ev.pos,
					"return while %s may still be %sed; release before returning or defer %s.%s()",
					recv, lock, recv, unlock)
				return // one finding per receiver/flavor is enough
			}
		}
	}
}

// checkAtomicMix cross-references atomic and plain accesses per package.
func checkAtomicMix(pass *Pass) {
	atomicVars := map[types.Object]bool{}
	type span struct{ lo, hi token.Pos }
	var exempt []span
	inExempt := func(pos token.Pos) bool {
		for _, s := range exempt {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	// First walk: record the variables handed to sync/atomic by address and
	// the argument spans of those calls (uses inside them are the atomic
	// accesses themselves, not violations).
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			// Only package-level functions (atomic.AddInt64(&x, …)) treat a
			// pointer argument as the atomic cell. Methods on the typed
			// atomics (v.Store(&next)) receive plain values — the cell is
			// the receiver, and the type system already forbids mixing it.
			if fn, isFn := obj.(*types.Func); !isFn || fn.Type().(*types.Signature).Recv() != nil {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				if v := locationVar(pass, un.X); v != nil {
					atomicVars[v] = true
					exempt = append(exempt, span{arg.Pos(), arg.End()})
				}
			}
			return true
		})
	}
	if len(atomicVars) == 0 {
		return
	}

	// Second walk: any other read or write of those variables is mixed
	// access. Skipped as non-accesses: declarations (Defs), composite
	// literal keys, and the Sel half of selectors (the selector node
	// itself carries the report).
	for _, file := range pass.Pkg.Files {
		skip := map[token.Pos]bool{}
		report := func(pos token.Pos, name string) {
			if !inExempt(pos) {
				pass.Reportf(pos,
					"plain access to %s, which is elsewhere accessed through sync/atomic; use the atomic API everywhere or a mutex",
					name)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							skip[id.Pos()] = true
						}
					}
				}
			case *ast.SelectorExpr:
				skip[n.Sel.Pos()] = true
				if obj := pass.ObjectOf(n.Sel); obj != nil && atomicVars[obj] {
					report(n.Pos(), exprName(n))
				}
			case *ast.Ident:
				if skip[n.Pos()] || pass.Pkg.Info.Defs[n] != nil {
					return true
				}
				if obj := pass.ObjectOf(n); obj != nil && atomicVars[obj] {
					report(n.Pos(), n.Name)
				}
			}
			return true
		})
	}
}

// locationVar resolves the struct-field object behind an addressable
// expression like s.n. Locals and package variables return nil — the
// mixed-access rule is scoped to fields (see the analyzer doc).
func locationVar(pass *Pass, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if v, ok := pass.ObjectOf(e.Sel).(*types.Var); ok && v.IsField() {
			return v
		}
	case *ast.IndexExpr:
		return locationVar(pass, e.X)
	case *ast.ParenExpr:
		return locationVar(pass, e.X)
	}
	return nil
}
