package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testFindings(root string) []Finding {
	return []Finding{
		{Pos: token.Position{Filename: filepath.Join(root, "internal", "pkg", "a.go"), Line: 10, Column: 2},
			Analyzer: "errdrop", Message: "call to f drops its error result"},
		{Pos: token.Position{Filename: filepath.Join(root, "internal", "pkg", "a.go"), Line: 20, Column: 2},
			Analyzer: "errdrop", Message: "call to f drops its error result"},
		{Pos: token.Position{Filename: filepath.Join(root, "cmd", "b.go"), Line: 5, Column: 1},
			Analyzer: "ctxflow", Message: "context.Background mints a fresh root context"},
	}
}

func TestNewReportRelativizesPaths(t *testing.T) {
	root := t.TempDir()
	r := NewReport(root, testFindings(root))
	if r.Tool != "gridvet" || r.Count != 3 || len(r.Findings) != 3 {
		t.Fatalf("report header = %q/%d with %d findings", r.Tool, r.Count, len(r.Findings))
	}
	if got := r.Findings[0].File; got != "internal/pkg/a.go" {
		t.Errorf("relative path = %q, want internal/pkg/a.go", got)
	}
	outside := []Finding{{Pos: token.Position{Filename: "/elsewhere/x.go", Line: 1, Column: 1}, Analyzer: "errdrop", Message: "m"}}
	if got := NewReport(root, outside).Findings[0].File; strings.HasPrefix(got, "..") {
		t.Errorf("out-of-module path relativized to %q; want it left absolute", got)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	r := NewReport(root, testFindings(root))

	path := filepath.Join(root, "baseline.json")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	baseline, err := ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}

	// The identical report against its own baseline: nothing fresh, all
	// findings marked, even though lines differ from the baseline's.
	moved := NewReport(root, testFindings(root))
	for i := range moved.Findings {
		moved.Findings[i].Line += 100
	}
	if fresh := moved.ApplyBaseline(baseline); len(fresh) != 0 {
		t.Errorf("identical (line-shifted) report has %d fresh findings: %v", len(fresh), fresh)
	}
	for _, f := range moved.Findings {
		if !f.Baselined {
			t.Errorf("finding %v not marked baselined", f)
		}
	}

	// Multiset budget: a third copy of a finding the baseline holds twice is
	// new, as is a finding the baseline never saw.
	grown := NewReport(root, append(testFindings(root),
		Finding{Pos: token.Position{Filename: filepath.Join(root, "internal", "pkg", "a.go"), Line: 30, Column: 2},
			Analyzer: "errdrop", Message: "call to f drops its error result"},
		Finding{Pos: token.Position{Filename: filepath.Join(root, "new.go"), Line: 1, Column: 1},
			Analyzer: "goleak", Message: "goroutine has no visible termination path"},
	))
	fresh := grown.ApplyBaseline(baseline)
	if len(fresh) != 2 {
		t.Fatalf("grown report has %d fresh findings, want 2: %v", len(fresh), fresh)
	}
	if fresh[0].Analyzer != "errdrop" || fresh[1].Analyzer != "goleak" {
		t.Errorf("fresh findings = %v, want the third errdrop copy and the goleak one", fresh)
	}
}

func TestReadBaselineRejectsWrongTool(t *testing.T) {
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, []byte(`{"tool":"othervet","count":0,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBaseline(path); err == nil || !strings.Contains(err.Error(), "othervet") {
		t.Errorf("ReadBaseline error = %v, want a wrong-tool complaint", err)
	}
}

func TestVerifyBaseline(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "present.go"), []byte("package p\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := Report{Tool: "gridvet", Count: 1, Findings: []ReportFinding{
		{File: "present.go", Line: 1, Col: 1, Analyzer: "errdrop", Message: "m"},
		{File: "present.go", Line: 2, Col: 1, Analyzer: "ignorehygiene", Message: "m"},
	}}
	if err := VerifyBaseline(root, ok, Analyzers()); err != nil {
		t.Errorf("coherent baseline rejected: %v", err)
	}

	bad := Report{Tool: "gridvet", Findings: []ReportFinding{
		{File: "present.go", Analyzer: "nosuchvet", Message: "m"},
		{File: "gone.go", Analyzer: "errdrop", Message: "m"},
		{File: "/abs/path.go", Analyzer: "errdrop", Message: "m"},
		{File: "../escape.go", Analyzer: "errdrop", Message: "m"},
	}}
	err := VerifyBaseline(root, bad, Analyzers())
	if err == nil {
		t.Fatal("stale baseline accepted")
	}
	for _, want := range []string{`unknown analyzer "nosuchvet"`, "missing file gone.go", `non-relative path "/abs/path.go"`, `non-relative path "../escape.go"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("VerifyBaseline error %q missing %q", err, want)
		}
	}
}

func TestWriteSARIF(t *testing.T) {
	root := t.TempDir()
	r := NewReport(root, testFindings(root))
	r.Findings[0].Baselined = true

	var buf bytes.Buffer
	if err := r.WriteSARIF(&buf, Analyzers()); err != nil {
		t.Fatalf("WriteSARIF: %v", err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q with %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "gridvet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	// One rule per registry analyzer plus the two pseudo-analyzers.
	if want := len(Analyzers()) + 2; len(run.Tool.Driver.Rules) != want {
		t.Errorf("%d rules, want %d", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 3 {
		t.Fatalf("%d results, want 3", len(run.Results))
	}
	if run.Results[0].Level != "note" || run.Results[1].Level != "warning" {
		t.Errorf("levels = %q/%q, want note (baselined) then warning", run.Results[0].Level, run.Results[1].Level)
	}
}
