package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SharedWriteAnalyzer mechanizes the paper's §6.2 dependency-breaking
// discipline: a loop body handed to sched.For/ForStats — or launched with a
// go statement — runs concurrently on several workers, so a write to a
// closure-captured variable is a data race unless it is partitioned or
// guarded. A write is accepted when
//
//   - the written location is an element access whose index expression
//     references the body's own parameters or locals (index-partitioned,
//     e.g. y[i] = sum or st.PerWorker[w] = count), or
//   - the function literal acquires a sync primitive (a Lock/RLock call on
//     a sync.Mutex/RWMutex), in which case all its captured writes are
//     treated as guarded — a deliberately coarse rule: the analyzer checks
//     lock presence, not lock coverage.
//
// Writes performed through helpers declared outside the literal are not
// seen; the analyzer is a lexical check on the parallel region itself.
// Unlike the other analyzers it also runs on _test.go files, because tests
// and benchmarks launch parallel loops too.
var SharedWriteAnalyzer = &Analyzer{
	Name: "sharedwrite",
	Doc:  "writes to closure-captured variables in parallel loop bodies (§6.2 hazard)",
	Run:  runSharedWrite,
}

func runSharedWrite(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isSchedParallelCall(pass, n) {
					for _, arg := range n.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							checkParallelBody(pass, lit)
						}
					}
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkParallelBody(pass, lit)
				}
			}
			return true
		})
	}
}

// isSchedParallelCall reports whether call invokes For or ForStats from a
// package whose import path ends in "sched" (the repo's loop runner; the
// suffix form also matches the stub package the fixtures use).
func isSchedParallelCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	if obj.Name() != "For" && obj.Name() != "ForStats" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sched" || strings.HasSuffix(path, "/sched")
}

// checkParallelBody flags writes to captured variables inside lit.
func checkParallelBody(pass *Pass, lit *ast.FuncLit) {
	if acquiresSyncLock(pass, lit) {
		return
	}
	isLocal := func(id *ast.Ident) bool {
		obj := pass.ObjectOf(id)
		if obj == nil {
			return true // be conservative: unresolved means no finding
		}
		return obj.Pos() >= lit.Pos() && obj.Pos() < lit.End()
	}

	check := func(lhs ast.Expr, verb string) {
		root, partitioned := rootOfWrite(pass, lhs, isLocal)
		if root == nil || partitioned {
			return
		}
		if _, ok := pass.ObjectOf(root).(*types.Var); !ok {
			return
		}
		if isLocal(root) {
			return
		}
		pass.Reportf(lhs.Pos(),
			"%s to captured %q is shared across parallel workers; partition it by the loop index or guard it with a sync primitive (§6.2)",
			verb, root.Name)
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				check(lhs, "write")
			}
		case *ast.IncDecStmt:
			check(n.X, "increment/decrement")
		}
		return true
	})
}

// rootOfWrite walks an assignment target down to its base identifier. It
// reports partitioned=true as soon as any index along the way references a
// variable local to the literal (parameters included).
func rootOfWrite(pass *Pass, e ast.Expr, isLocal func(*ast.Ident) bool) (root *ast.Ident, partitioned bool) {
	for {
		switch t := e.(type) {
		case *ast.Ident:
			return t, partitioned
		case *ast.IndexExpr:
			if indexUsesLocal(t.Index, isLocal) {
				partitioned = true
			}
			e = t.X
		case *ast.SelectorExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		case *ast.ParenExpr:
			e = t.X
		default:
			// Writes through call results, slices of composites, etc. are
			// outside the lexical patterns this analyzer understands.
			return nil, partitioned
		}
	}
}

// indexUsesLocal reports whether the index expression mentions an
// identifier declared inside the literal (a parameter or body local).
func indexUsesLocal(idx ast.Expr, isLocal func(*ast.Ident) bool) bool {
	found := false
	ast.Inspect(idx, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !found {
			if id.Name != "_" && isLocal(id) {
				found = true
			}
		}
		return !found
	})
	return found
}

// acquiresSyncLock reports whether the literal calls Lock or RLock on a
// value from package sync.
func acquiresSyncLock(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		obj := pass.ObjectOf(sel.Sel)
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			found = true
		}
		return !found
	})
	return found
}
