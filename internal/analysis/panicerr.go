package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// PanicErrAnalyzer polices the resilience layer's containment contract
// (DESIGN.md §12). The panic-recovering runtime turns a worker crash into a
// typed error — *sched.PanicError from sched.ForCtx/ForStatsCtx, failed
// sweep columns from sweep.Run/Stream, *core.HealthError from the health
// checks — and the whole containment story collapses if a caller drops that
// error or matches it in a way that breaks through wrapping:
//
//   - the error results of sched.ForCtx/ForStatsCtx, sweep.Run/Stream and
//     the earthing facade must not be discarded (neither as an ignored call
//     statement nor via the blank identifier);
//   - *sched.PanicError and *core.HealthError must be matched with
//     errors.As (or errors.Is), never a direct type assertion, a type
//     switch case, or pointer comparison — the facade and server wrap
//     errors with %w, so a direct match silently stops working.
//
// Unlike errdrop this analyzer runs on _test.go files and package main too:
// the chaos/acceptance suites and the example programs are exactly where a
// dropped containment error hides a swallowed panic.
var PanicErrAnalyzer = &Analyzer{
	Name: "panicerr",
	Doc:  "containment errors (sched/sweep/earthing) must be checked and matched via errors.As/Is",
	Run:  runPanicErr,
}

func runPanicErr(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkContainmentDrop(pass, call, "")
				}
			case *ast.DeferStmt:
				checkContainmentDrop(pass, n.Call, "deferred ")
			case *ast.AssignStmt:
				checkContainmentBlank(pass, n)
			case *ast.TypeAssertExpr:
				checkDirectAssert(pass, n)
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, n)
			case *ast.BinaryExpr:
				checkPointerCompare(pass, n)
			}
			return true
		})
	}
}

// containmentCall reports whether call invokes one of the error-bearing
// containment APIs: ForCtx/ForStatsCtx from a sched package, Run/Stream
// from a sweep package, or any exported function of the earthing facade.
func containmentCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	name := obj.Name()
	switch {
	case pkgPathIs(obj.Pkg().Path(), "sched") && (name == "ForCtx" || name == "ForStatsCtx"):
		return "sched." + name, true
	case pkgPathIs(obj.Pkg().Path(), "sweep") && (name == "Run" || name == "Stream"):
		return "sweep." + name, true
	case pkgPathIs(obj.Pkg().Path(), "earthing") && ast.IsExported(name):
		return "earthing." + name, true
	}
	return "", false
}

// pkgPathIs reports whether path is base or ends in "/base".
func pkgPathIs(path, base string) bool {
	return path == base || strings.HasSuffix(path, "/"+base)
}

// checkContainmentDrop flags a containment call used as a bare statement.
func checkContainmentDrop(pass *Pass, call *ast.CallExpr, kind string) {
	name, ok := containmentCall(pass, call)
	if !ok || !resultsIncludeError(pass, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"%scall to %s drops its containment error (panic/health failures vanish); check it", kind, name)
}

// checkContainmentBlank flags blank-identifier discards of containment
// errors, e.g. st, _ := sched.ForStatsCtx(…).
func checkContainmentBlank(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, ok := containmentCall(pass, call)
	if !ok {
		return
	}
	tuple, ok := pass.TypeOf(call).(*types.Tuple)
	if !ok {
		// Single error result assigned to _.
		if id, ok := assign.Lhs[0].(*ast.Ident); ok && id.Name == "_" && isErrorType(pass.TypeOf(call)) {
			pass.Reportf(id.Pos(), "containment error of %s discarded via _; check it", name)
		}
		return
	}
	for i := 0; i < tuple.Len() && i < len(assign.Lhs); i++ {
		id, ok := assign.Lhs[i].(*ast.Ident)
		if ok && id.Name == "_" && isErrorType(tuple.At(i).Type()) {
			pass.Reportf(id.Pos(), "containment error of %s discarded via _; check it", name)
		}
	}
}

// targetErrType reports whether t is *sched.PanicError or *core.HealthError
// (by package-path suffix, so the fixture stubs match too), returning a
// printable name.
func targetErrType(t types.Type) (string, bool) {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case pkgPathIs(path, "sched") && name == "PanicError":
		return "*sched.PanicError", true
	case pkgPathIs(path, "core") && name == "HealthError":
		return "*core.HealthError", true
	}
	return "", false
}

// isErrorIface reports whether t is the error interface.
func isErrorIface(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// checkDirectAssert flags err.(*sched.PanicError)-style assertions on error
// values. Assertions on plain interface{}/any values (e.g. the result of
// recover()) are fine — errors.As does not apply there.
func checkDirectAssert(pass *Pass, ta *ast.TypeAssertExpr) {
	if ta.Type == nil || !isErrorIface(pass.TypeOf(ta.X)) {
		return
	}
	if name, ok := targetErrType(pass.TypeOf(ta.Type)); ok {
		pass.Reportf(ta.Pos(), "direct type assertion to %s misses wrapped errors; use errors.As", name)
	}
}

// checkTypeSwitch flags type-switch cases naming the containment error
// types when switching on an error value.
func checkTypeSwitch(pass *Pass, sw *ast.TypeSwitchStmt) {
	var subject ast.Expr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		if ta, ok := s.X.(*ast.TypeAssertExpr); ok {
			subject = ta.X
		}
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			if ta, ok := s.Rhs[0].(*ast.TypeAssertExpr); ok {
				subject = ta.X
			}
		}
	}
	if subject == nil || !isErrorIface(pass.TypeOf(subject)) {
		return
	}
	for _, clause := range sw.Body.List {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, typ := range cc.List {
			if name, ok := targetErrType(pass.TypeOf(typ)); ok {
				pass.Reportf(typ.Pos(), "type-switch case %s misses wrapped errors; use errors.As", name)
			}
		}
	}
}

// checkPointerCompare flags ==/!= between an error value and a containment
// error pointer (or two such pointers): identity comparison breaks through
// wrapping and is never the intended match.
func checkPointerCompare(pass *Pass, b *ast.BinaryExpr) {
	if b.Op != token.EQL && b.Op != token.NEQ {
		return
	}
	tx, ty := pass.TypeOf(b.X), pass.TypeOf(b.Y)
	if isUntypedNil(tx) || isUntypedNil(ty) {
		return // pe == nil is the correct presence check
	}
	name, okx := targetErrType(tx)
	if !okx {
		name, okx = targetErrType(ty)
	}
	if !okx {
		return
	}
	pass.Reportf(b.OpPos, "%s comparison with %s misses wrapped errors; use errors.Is or errors.As", b.Op, name)
}

// isUntypedNil reports whether t is the type of a nil literal.
func isUntypedNil(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Kind() == types.UntypedNil
}
