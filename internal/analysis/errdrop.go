package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDropAnalyzer flags discarded error values outside _test.go files:
// call statements (plain or deferred) whose callee returns an error that
// nobody reads, and assignments that send an error into the blank
// identifier.
//
// Exemptions, chosen so real findings are not buried under convention:
//
//   - fmt.Print/Printf/Println, and fmt.Fprint* writing to os.Stdout or
//     os.Stderr — console output whose error has no receiver that could act
//     on it;
//   - calls writing to a *bufio.Writer, *strings.Builder or *bytes.Buffer,
//     whether as the fmt.Fprint* destination or as the method receiver:
//     strings.Builder and bytes.Buffer never return a non-nil error, and
//     bufio.Writer latches its first error for the Flush call to report —
//     the repo's writer functions end in "return bw.Flush()", which is the
//     checked path.
//
// Go statements are not flagged: a goroutine's error needs a channel, not a
// check at the call site, and that design is beyond a lexical lint.
var ErrDropAnalyzer = &Analyzer{
	Name: "errdrop",
	Doc:  "error return values discarded via _ or ignored call statements",
	Run:  runErrDrop,
}

func runErrDrop(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkIgnoredCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkIgnoredCall(pass, n.Call, "deferred ")
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, n)
			}
			return true
		})
	}
}

// checkIgnoredCall flags a call statement whose results include an error.
func checkIgnoredCall(pass *Pass, call *ast.CallExpr, kind string) {
	if pass.InTestFile(call.Pos()) || !resultsIncludeError(pass, call) || exemptWriter(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "%scall to %s drops its error result; check it or propagate it", kind, calleeName(call))
}

// checkBlankErrAssign flags error values assigned to the blank identifier.
func checkBlankErrAssign(pass *Pass, assign *ast.AssignStmt) {
	if pass.InTestFile(assign.Pos()) {
		return
	}
	blankAt := func(i int) bool {
		id, ok := assign.Lhs[i].(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(assign.Rhs) == 1 && len(assign.Lhs) > 1 {
		// x, _ := f() — match tuple components to targets.
		tuple, ok := pass.TypeOf(assign.Rhs[0]).(*types.Tuple)
		if !ok {
			return
		}
		if call, ok := assign.Rhs[0].(*ast.CallExpr); ok && exemptWriter(pass, call) {
			return
		}
		for i := 0; i < tuple.Len() && i < len(assign.Lhs); i++ {
			if blankAt(i) && isErrorType(tuple.At(i).Type()) {
				pass.Reportf(assign.Lhs[i].Pos(), "error result of %s discarded via _; check it or propagate it", exprName(assign.Rhs[0]))
			}
		}
		return
	}
	for i, rhs := range assign.Rhs {
		if i >= len(assign.Lhs) || !blankAt(i) {
			continue
		}
		if isErrorType(pass.TypeOf(rhs)) {
			pass.Reportf(assign.Lhs[i].Pos(), "error value %s discarded via _; check it or propagate it", exprName(rhs))
		}
	}
}

// resultsIncludeError reports whether the call yields at least one error.
func resultsIncludeError(pass *Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// exemptWriter implements the console/sticky-writer exemptions documented on
// ErrDropAnalyzer.
func exemptWriter(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "fmt":
		switch obj.Name() {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) == 0 {
				return false
			}
			return isStdStream(pass, call.Args[0]) || isStickyWriter(pass.TypeOf(call.Args[0]))
		}
		return false
	}
	// Methods on sticky writers (bw.WriteByte, sb.WriteString, …).
	if recv := pass.Pkg.Info.Selections[sel]; recv != nil {
		return isStickyWriter(recv.Recv())
	}
	return false
}

// isStdStream matches the selector expressions os.Stdout and os.Stderr.
func isStdStream(pass *Pass, e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "os" &&
		(obj.Name() == "Stdout" || obj.Name() == "Stderr")
}

// isStickyWriter reports whether t is *bufio.Writer, *strings.Builder,
// *bytes.Buffer or one of those values.
func isStickyWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "bufio.Writer", "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

// calleeName renders the called function for the diagnostic.
func calleeName(call *ast.CallExpr) string {
	return exprName(call.Fun)
}

// exprName renders a compact name for an expression (selector chains and
// identifiers; anything else becomes "expression").
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun)
	case *ast.IndexExpr:
		return exprName(e.X)
	case *ast.ParenExpr:
		return exprName(e.X)
	case *ast.StarExpr:
		return exprName(e.X)
	}
	return "expression"
}
