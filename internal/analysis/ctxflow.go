package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxFlowAnalyzer encodes the context discipline the facade's context-first
// refactor (DESIGN.md §11) committed the library to: cancellation must flow
// from the caller down to every blocking callee, never be severed by a
// context minted mid-library. Three rules, all scoped to non-main, non-test
// library code:
//
//   - no calls to context.Background() or context.TODO() — a fresh root
//     context in a library function detaches everything below it from the
//     request that is paying for the work. Background belongs in package
//     main and in tests;
//   - in exported functions, a context.Context parameter must come first
//     (the convention every callee in the tree relies on when threading);
//   - a function that accepts a ctx must actually thread it: if the body
//     calls at least one function that accepts a context.Context but never
//     mentions its own ctx parameter, the chain is severed.
//
// Functions whose doc comment carries a "Deprecated:" marker are exempt in
// full: the sanctioned compatibility shims (Analyze → AnalyzeCtx era) exist
// precisely to bridge ctx-free callers onto the ctx-first API.
var CtxFlowAnalyzer = &Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context must be first, threaded to callees, and never minted in library code",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if pass.InMainPackage() {
		return
	}
	for _, file := range pass.Pkg.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		deprecated := deprecatedRanges(file)
		exempt := func(pos token.Pos) bool {
			for _, r := range deprecated {
				if pos >= r[0] && pos < r[1] {
					return true
				}
			}
			return false
		}

		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !exempt(n.Pos()) && isContextRootCall(pass, n) {
					pass.Reportf(n.Pos(),
						"%s mints a fresh root context in library code; thread the caller's ctx instead (Background/TODO belong in main and tests)",
						exprName(n.Fun))
				}
			case *ast.FuncDecl:
				if exempt(n.Pos()) {
					return false
				}
				checkCtxPosition(pass, n)
				checkCtxThreaded(pass, n)
			}
			return true
		})
	}
}

// deprecatedRanges returns the [pos,end) extents of functions documented as
// Deprecated.
func deprecatedRanges(file *ast.File) [][2]token.Pos {
	var out [][2]token.Pos
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		if strings.Contains(fd.Doc.Text(), "Deprecated:") {
			out = append(out, [2]token.Pos{fd.Pos(), fd.End()})
		}
	}
	return out
}

// isContextRootCall matches context.Background() and context.TODO().
func isContextRootCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if sel.Sel.Name != "Background" && sel.Sel.Name != "TODO" {
		return false
	}
	obj := pass.ObjectOf(sel.Sel)
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// ctxParams returns the flattened parameter index of every context.Context
// parameter of fd along with the parameter objects (nil for unnamed or
// blank parameters).
func ctxParams(pass *Pass, fd *ast.FuncDecl) (indices []int, objs []types.Object) {
	i := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1 // unnamed parameter still occupies a slot
		}
		if isContextType(pass.TypeOf(field.Type)) {
			for k := 0; k < n; k++ {
				indices = append(indices, i+k)
				if k < len(field.Names) && field.Names[k].Name != "_" {
					objs = append(objs, pass.ObjectOf(field.Names[k]))
				} else {
					objs = append(objs, nil)
				}
			}
		}
		i += n
	}
	return indices, objs
}

// checkCtxPosition enforces ctx-first on exported functions and methods.
func checkCtxPosition(pass *Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() {
		return
	}
	indices, _ := ctxParams(pass, fd)
	for _, idx := range indices {
		if idx != 0 {
			pass.Reportf(fd.Name.Pos(),
				"exported %s takes a context.Context as parameter %d; ctx must be the first parameter", fd.Name.Name, idx+1)
		}
	}
}

// checkCtxThreaded flags a ctx parameter that is never referenced while the
// body calls at least one context-accepting function: the cancellation
// chain is severed exactly where this function sits.
func checkCtxThreaded(pass *Pass, fd *ast.FuncDecl) {
	if fd.Body == nil {
		return
	}
	_, objs := ctxParams(pass, fd)
	var ctxObj types.Object
	for _, o := range objs {
		if o != nil {
			ctxObj = o
			break
		}
	}
	if ctxObj == nil {
		return
	}
	used := false
	var ctxCallee ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if used {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if pass.Pkg.Info.Uses[n] == ctxObj {
				used = true
			}
		case *ast.CallExpr:
			if ctxCallee == nil && calleeAcceptsContext(pass, n) {
				ctxCallee = n.Fun
			}
		}
		return !used
	})
	if !used && ctxCallee != nil {
		pass.Reportf(fd.Name.Pos(),
			"%s accepts a ctx but never uses it while calling %s, which accepts a context.Context; thread the ctx through",
			fd.Name.Name, exprName(ctxCallee))
	}
}

// calleeAcceptsContext reports whether the called function's signature has a
// context.Context parameter.
func calleeAcceptsContext(pass *Pass, call *ast.CallExpr) bool {
	sig, ok := pass.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}
