package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// NaiveSumAnalyzer flags naive floating-point accumulation of kernel terms
// in the numerical core: inside packages soil and bem (where the paper's
// series summations live, §4.3), a loop statement of the form
//
//	sum += f(...)   // or -=
//
// onto a scalar float accumulator whose added term comes from a function
// call is a kernel-series accumulation and should run through the
// compensated quad.KahanSum helper. Element-wise updates (indexed targets
// like out[i] += v), pure arithmetic accumulation without calls (loop-
// carried recurrences such as z += t), and _test.go files are not flagged —
// the analyzer aims at the long image/integral series, where naive
// summation loses digits as the term count grows.
var NaiveSumAnalyzer = &Analyzer{
	Name: "naivesum",
	Doc:  "naive += accumulation of kernel terms in soil/bem; use quad.KahanSum",
	Run:  runNaiveSum,
}

func runNaiveSum(pass *Pass) {
	base := pass.Pkg.Path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	if base != "soil" && base != "bem" {
		return
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			checkLoopBody(pass, body)
			return true
		})
	}
}

// checkLoopBody flags naive float accumulations in one loop body. Nested
// loops are reached through the enclosing ast.Inspect, so this only looks
// at the statements of body itself and non-loop constructs below it.
func checkLoopBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false // the enclosing Inspect visits these on its own
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if assign.Tok != token.ADD_ASSIGN && assign.Tok != token.SUB_ASSIGN {
			return true
		}
		if pass.InTestFile(assign.Pos()) || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			return true
		}
		if !isScalarFloatTarget(assign.Lhs[0]) || !isFloat(pass.TypeOf(assign.Lhs[0])) {
			return true
		}
		if !containsRealCall(pass, assign.Rhs[0]) {
			return true
		}
		pass.Reportf(assign.Pos(), "naive %s accumulation of kernel terms in a loop; run the series through quad.KahanSum", assign.Tok)
		return true
	})
}

// isScalarFloatTarget accepts identifiers and field selectors — scalar
// accumulators — and rejects indexed element updates.
func isScalarFloatTarget(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name != "_"
	case *ast.SelectorExpr:
		return true
	case *ast.ParenExpr:
		return isScalarFloatTarget(e.X)
	}
	return false
}

// containsRealCall reports whether e contains a genuine function or method
// call — a kernel-term evaluation — as opposed to type conversions and
// builtins.
func containsRealCall(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.Pkg.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
			return true // conversion like float64(x), or len/min/max
		}
		found = true
		return false
	})
	return found
}
