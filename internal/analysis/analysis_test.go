package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture tests. Each module under testdata/src/<name> marks the findings it
// expects with trailing comments:
//
//	code // want "substring"
//
// matched against `[analyzer] message` of a finding on the same line. A
// marker of the form `// want-next "substring"` expects the finding on the
// line below it — used where the finding position is itself a comment (a
// //lint:ignore directive), which cannot carry a second comment.
var wantRE = regexp.MustCompile(`// want(-next)? "([^"]*)"`)

type expectation struct {
	file   string // base name
	line   int
	substr string
}

// wants scans the fixture sources for want markers.
func wants(t *testing.T, dir string) []expectation {
	t.Helper()
	var out []expectation
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				ln := i + 1
				if m[1] == "-next" {
					ln++
				}
				out = append(out, expectation{file: filepath.Base(path), line: ln, substr: m[2]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning %s: %v", dir, err)
	}
	return out
}

// runFixture loads testdata/src/<fixture> with test files folded in, runs
// the analyzers through the full Run pipeline (so //lint:ignore handling
// applies), and checks the findings against the fixture's want markers in
// both directions. Loading with Tests on lets fixtures assert per-analyzer
// test-file policy: a marker in a _test.go file proves the analyzer runs
// there, an unmarked scenario proves it skips.
func runFixture(t *testing.T, fixture string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	pkgs, err := LoadModuleOpts(dir, LoadOptions{Tests: true})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", fixture, err)
	}
	findings := Run(pkgs, analyzers)
	expected := wants(t, dir)

	matched := make([]bool, len(expected))
	for _, f := range findings {
		ok := false
		rendered := "[" + f.Analyzer + "] " + f.Message
		for i, w := range expected {
			if filepath.Base(f.Pos.Filename) == w.file && f.Pos.Line == w.line &&
				strings.Contains(rendered, w.substr) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for i, w := range expected {
		if !matched[i] {
			t.Errorf("%s:%d: no finding matching %q", w.file, w.line, w.substr)
		}
	}
}

func TestErrDrop(t *testing.T)  { runFixture(t, "errdrop", []*Analyzer{ErrDropAnalyzer}) }
func TestFloatCmp(t *testing.T) { runFixture(t, "floatcmp", []*Analyzer{FloatCmpAnalyzer}) }
func TestNaiveSum(t *testing.T) { runFixture(t, "naivesum", []*Analyzer{NaiveSumAnalyzer}) }
func TestPowConst(t *testing.T) { runFixture(t, "powconst", []*Analyzer{PowConstAnalyzer}) }
func TestSharedWrite(t *testing.T) {
	runFixture(t, "sharedwrite", []*Analyzer{SharedWriteAnalyzer})
}
func TestCtxFlow(t *testing.T)  { runFixture(t, "ctxflow", []*Analyzer{CtxFlowAnalyzer}) }
func TestPanicErr(t *testing.T) { runFixture(t, "panicerr", []*Analyzer{PanicErrAnalyzer}) }
func TestGoLeak(t *testing.T)   { runFixture(t, "goleak", []*Analyzer{GoLeakAnalyzer}) }
func TestLockDiscipline(t *testing.T) {
	runFixture(t, "lockdiscipline", []*Analyzer{LockDisciplineAnalyzer})
}

// TestIgnoreDirectives runs the full registry so the "wrong analyzer name"
// scenario names an analyzer that is known but different from the reporter.
func TestIgnoreDirectives(t *testing.T) { runFixture(t, "ignore", Analyzers()) }

// TestLoadModule checks package discovery, module-local import resolution
// and the test-file policy in both loader modes: by default _test.go files
// stay out entirely; with Tests on, in-package test files join the package
// while external test packages are still skipped (the loader fixture's
// external file would fail type-checking if it were included).
func TestLoadModule(t *testing.T) {
	load := func(t *testing.T, opt LoadOptions) (*Package, []string) {
		t.Helper()
		pkgs, err := LoadModuleOpts(filepath.Join("testdata", "src", "loader"), opt)
		if err != nil {
			t.Fatalf("LoadModuleOpts(%+v): %v", opt, err)
		}
		byPath := map[string]*Package{}
		for _, p := range pkgs {
			byPath[p.Path] = p
		}
		if len(pkgs) != 2 || byPath["fixture"] == nil || byPath["fixture/sub"] == nil {
			t.Fatalf("got packages %v, want [fixture fixture/sub]", byPath)
		}
		root := byPath["fixture"]
		var names []string
		for _, f := range root.Files {
			names = append(names, filepath.Base(root.Fset.Position(f.Pos()).Filename))
		}
		return root, names
	}
	has := func(names []string, name string) bool {
		for _, n := range names {
			if n == name {
				return true
			}
		}
		return false
	}

	root, names := load(t, LoadOptions{})
	if !has(names, "a.go") {
		t.Errorf("default load: root package files %v missing a.go", names)
	}
	if has(names, "a_internal_test.go") || has(names, "a_external_test.go") {
		t.Errorf("default load: root package files %v include test files", names)
	}
	if root.Types.Scope().Lookup("Describe") == nil {
		t.Errorf("type-checked package lacks Describe")
	}

	_, names = load(t, LoadOptions{Tests: true})
	if !has(names, "a.go") || !has(names, "a_internal_test.go") {
		t.Errorf("Tests load: root package files %v missing a.go or the in-package test file", names)
	}
	if has(names, "a_external_test.go") {
		t.Errorf("Tests load: root package files %v include the external test package file", names)
	}
}

// TestRepoIsClean is the dogfooding gate: the full analyzer registry over
// the whole module — test files included, as CI's gridvet -tests run
// enforces — must report nothing.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the entire module")
	}
	pkgs, err := LoadModuleOpts(filepath.Join("..", ".."), LoadOptions{Tests: true})
	if err != nil {
		t.Fatalf("LoadModuleOpts: %v", err)
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", f)
	}
}
