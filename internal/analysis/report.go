package analysis

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Machine-readable reporting and CI baselines.
//
// gridvet -format json emits a Report; -format sarif emits the same
// findings as minimal SARIF 2.1.0 (the schema CI annotation tooling
// consumes). A committed Report doubles as a baseline: -baseline loads it
// and gridvet fails only on findings not in it, so CI can ratchet a large
// finding set down instead of big-banging to zero. Baseline matching
// deliberately ignores line and column — refactors move findings around —
// and matches on (file, analyzer, message) as a multiset: if the baseline
// records two identical findings in a file and a third appears, the third
// is new.

// A Report is the machine-readable form of one gridvet run.
type Report struct {
	// Tool is always "gridvet".
	Tool string `json:"tool"`
	// Count is len(Findings), denormalized for cheap shell checks.
	Count int `json:"count"`
	// Findings are sorted by file, line, column, analyzer.
	Findings []ReportFinding `json:"findings"`
}

// A ReportFinding is one finding with a module-root-relative, slash-
// separated path (stable across machines, unlike the absolute paths in
// token.Position).
type ReportFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	// Baselined marks findings matched by the -baseline file; they are
	// reported for visibility but do not fail the run.
	Baselined bool `json:"baselined,omitempty"`
}

// NewReport converts findings (already sorted by Run) into a Report with
// paths relativized against the module root.
func NewReport(root string, findings []Finding) Report {
	r := Report{Tool: "gridvet", Count: len(findings), Findings: []ReportFinding{}}
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = filepath.ToSlash(rel)
		}
		r.Findings = append(r.Findings, ReportFinding{
			File:     name,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
		})
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// baselineKey is the line-insensitive identity used for baseline matching.
func (f ReportFinding) baselineKey() string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// ReadBaseline parses a committed Report from path.
func ReadBaseline(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("baseline %s: %w", path, err)
	}
	if r.Tool != "gridvet" {
		return Report{}, fmt.Errorf("baseline %s: tool is %q, want \"gridvet\"", path, r.Tool)
	}
	return r, nil
}

// ApplyBaseline marks every finding of r that the baseline covers and
// returns the findings that remain new. Matching is a multiset over
// (file, analyzer, message).
func (r *Report) ApplyBaseline(baseline Report) []ReportFinding {
	budget := map[string]int{}
	for _, f := range baseline.Findings {
		budget[f.baselineKey()]++
	}
	var fresh []ReportFinding
	for i := range r.Findings {
		key := r.Findings[i].baselineKey()
		if budget[key] > 0 {
			budget[key]--
			r.Findings[i].Baselined = true
		} else {
			fresh = append(fresh, r.Findings[i])
		}
	}
	return fresh
}

// VerifyBaseline checks that a baseline is still coherent with the tree:
// every entry's file must exist under root and every analyzer name must be
// in the running set (plus the two pseudo-analyzers). A baseline entry for
// a deleted file is dead weight that would silently excuse a finding if
// the path ever comes back.
func VerifyBaseline(root string, baseline Report, analyzers []*Analyzer) error {
	known := map[string]bool{ignoreName: true, hygieneName: true}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var problems []string
	seen := map[string]bool{}
	for _, f := range baseline.Findings {
		if !known[f.Analyzer] {
			problems = append(problems, fmt.Sprintf("unknown analyzer %q", f.Analyzer))
			continue
		}
		if filepath.IsAbs(f.File) || strings.HasPrefix(f.File, "..") {
			problems = append(problems, fmt.Sprintf("non-relative path %q", f.File))
			continue
		}
		if seen[f.File] {
			continue
		}
		seen[f.File] = true
		if _, err := os.Stat(filepath.Join(root, filepath.FromSlash(f.File))); err != nil {
			problems = append(problems, fmt.Sprintf("entry for missing file %s", f.File))
		}
	}
	if len(problems) > 0 {
		sort.Strings(problems)
		return fmt.Errorf("baseline is stale:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// SARIF 2.1.0 — the minimal subset: one run, one rule per analyzer, one
// result per finding with a physical location relative to %SRCROOT%.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// WriteSARIF writes the report as SARIF 2.1.0. Baselined findings are
// emitted at level "note", new ones at "warning".
func (r Report) WriteSARIF(w io.Writer, analyzers []*Analyzer) error {
	driver := sarifDriver{Name: "gridvet"}
	for _, a := range analyzers {
		driver.Rules = append(driver.Rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	driver.Rules = append(driver.Rules,
		sarifRule{ID: ignoreName, ShortDescription: sarifText{Text: "malformed or unknown //lint:ignore directives"}},
		sarifRule{ID: hygieneName, ShortDescription: sarifText{Text: "//lint:ignore directives that suppress nothing"}},
	)
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, f := range r.Findings {
		level := "warning"
		if f.Baselined {
			level = "note"
		}
		run.Results = append(run.Results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   level,
			Message: sarifText{Text: f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File, URIBaseID: "%SRCROOT%"},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
			}}},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
