package sub

func Answer() int { return 42 }
