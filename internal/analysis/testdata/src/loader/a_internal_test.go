// In-package test file: LoadModule must fold it into the package.
package fixroot

func doubled() int { return 2 * 21 }
