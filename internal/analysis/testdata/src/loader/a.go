// Fixture for LoadModule: a root package importing a module-local
// subpackage and the standard library.
package fixroot

import (
	"fmt"

	"fixture/sub"
)

func Describe() string {
	return fmt.Sprintf("answer is %d", sub.Answer())
}
