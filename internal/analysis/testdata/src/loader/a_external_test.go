// External test package: LoadModule must skip this file.
package fixroot_test

func external() int { return undefinedOnPurpose() }

func undefinedOnPurpose() int { return 0 }
