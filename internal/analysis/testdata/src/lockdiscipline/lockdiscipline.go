// Fixture for the lockdiscipline analyzer: copied locks, unbalanced
// Lock/Unlock pairs, and mixed atomic/plain field access are flagged;
// deferred releases, linear pairs and atomically-filled locals are not.
package fixture

import (
	"sync"
	"sync/atomic"
)

// Guarded contains a mutex, so values must never be copied.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// pool embeds Guarded through an array: the containment check is recursive.
type pool struct {
	slots [2]Guarded
}

func copies(g *Guarded, all []Guarded) {
	cp := *g // want "assignment copies g, which contains a sync lock"
	cp.n++
	for _, it := range all { // want "range copies elements containing a sync lock"
		it.n++
	}
}

func fetch(p *pool) Guarded {
	return p.slots[0] // want "return copies p.slots, which contains a sync lock"
}

func (g Guarded) Count() int { // want "method Count has a value receiver containing a sync lock"
	return g.n
}

func waitAll(wg sync.WaitGroup) {
	wg.Wait()
}

func joins() {
	var wg sync.WaitGroup
	waitAll(wg) // want "argument copies wg, which contains a sync lock"
	wg.Wait()
}

func (g *Guarded) leakLock() {
	g.mu.Lock() // want "g.mu.Lock has no matching Unlock in this function"
	g.n++
}

func (g *Guarded) escape(flag bool) int {
	g.mu.Lock()
	if flag {
		return g.n // want "return while g.mu may still be Locked"
	}
	g.mu.Unlock()
	return 0
}

func (g *Guarded) deferred() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func (g *Guarded) linear() {
	g.mu.Lock()
	g.n++
	g.mu.Unlock()
}

// RGuarded exercises the RLock/RUnlock flavor.
type RGuarded struct {
	mu sync.RWMutex
	m  map[string]int
}

func (r *RGuarded) get(k string) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.m[k]
}

// counters mixes atomic and plain access to hits — exactly the race the
// atomics were bought to prevent.
type counters struct {
	hits  int64
	reads int64
}

func (c *counters) touch() {
	atomic.AddInt64(&c.hits, 1)
	c.hits++ // want "plain access to c.hits"
}

func (c *counters) bump() {
	atomic.AddInt64(&c.reads, 1)
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.reads) // atomic everywhere: fine
}

func localTally(parts []int64) int64 {
	var n int64
	for range parts {
		atomic.AddInt64(&n, 1)
	}
	return n // locals are exempt: the read is ordered by the caller's join
}

func (g *Guarded) snapshot() Guarded {
	//lint:ignore lockdiscipline fixture demonstrates a justified suppression
	return *g
}
