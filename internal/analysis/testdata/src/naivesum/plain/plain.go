// Fixture negative for the naivesum analyzer: the same accumulation pattern
// outside the soil/bem kernel packages is not flagged.
package plain

func term(i int) float64 { return 1 / float64(i+1) }

func Sum(n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += term(i) // not a kernel package
	}
	return sum
}
