// Fixture for the naivesum analyzer, in a package named soil so the
// kernel-package gate admits it.
package soil

func term(i int) float64 { return 1 / float64(i+1) }

func Naive(n int, out []float64) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += term(i) // want "naive += accumulation"
	}
	for i := 0; i < n; i++ {
		sum -= term(i) // want "naive -= accumulation"
	}
	for i := range out {
		out[i] += term(i) // indexed element update: partitioned, not a series
	}
	z := 1.0
	for i := 0; i < n; i++ {
		z += float64(i) // conversion, not a kernel-term call
	}
	sum += term(n) // outside any loop
	return sum + z
}
