// Fixture for the floatcmp analyzer: tolerance-free float equality is
// flagged, exact-zero sentinel compares and integer compares are not.
package fixture

const eps = 1e-12

const zero = 0.0

func cmp(a, b float64, f float32, n int) bool {
	if a == b { // want "floating-point == comparison"
		return true
	}
	if f != float32(b) { // want "floating-point != comparison"
		return false
	}
	if a == 0 { // exact-zero sentinel: exempt
		return false
	}
	if zero == b { // named zero constant: exempt
		return false
	}
	if n == 3 { // integers compare exactly
		return true
	}
	return a-b < eps
}
