// Package earthing stubs the facade: every exported error-bearing function
// is a containment API in panicerr's eyes.
package earthing

import "context"

type Report struct{ Req float64 }

func Analyze(ctx context.Context) (Report, error) {
	_ = ctx
	return Report{}, nil
}

func Check(ctx context.Context) error {
	_ = ctx
	return nil
}
