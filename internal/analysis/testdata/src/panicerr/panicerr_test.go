package fixture

import (
	"testing"

	"fixture/sched"
)

// Unlike most analyzers, panicerr runs on _test.go files too: a dropped
// containment error in a chaos suite hides a swallowed panic.
func TestDropFlaggedInTests(t *testing.T) {
	sched.ForCtx(nil, 1, func(int) {}) // want "call to sched.ForCtx drops its containment error"
	t.Log("the line above is the scenario under test")
}
