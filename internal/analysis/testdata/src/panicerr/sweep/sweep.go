// Package sweep stubs the batch-solve surface panicerr matches by
// package-path suffix.
package sweep

import "context"

type Scenario struct{ GPR float64 }

type Result struct{ Req float64 }

func Run(ctx context.Context, scens []Scenario) ([]Result, error) {
	_ = ctx
	_ = scens
	return nil, nil
}

func Stream(ctx context.Context, scens []Scenario, fn func(Result) error) error {
	_ = ctx
	_ = scens
	_ = fn
	return nil
}
