// Package core stubs the health-check error type panicerr matches by
// package-path suffix.
package core

// HealthError mirrors the real health-check failure.
type HealthError struct{ Probe string }

func (e *HealthError) Error() string { return "health: " + e.Probe }
