// Package sched stubs the scheduler surface panicerr matches by
// package-path suffix: the containment loops and their typed panic error.
package sched

import "context"

// PanicError mirrors the real containment error.
type PanicError struct{ Value any }

func (e *PanicError) Error() string { return "panic in worker" }

// Stats mirrors the loop statistics record.
type Stats struct{ Workers int }

func ForCtx(ctx context.Context, n int, body func(int)) error {
	_ = ctx
	_ = n
	_ = body
	return nil
}

func ForStatsCtx(ctx context.Context, n int, body func(int)) (Stats, error) {
	_ = ctx
	_ = n
	_ = body
	return Stats{}, nil
}
