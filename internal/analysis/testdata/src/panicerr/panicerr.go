// Fixture for the panicerr analyzer: containment errors from the
// sched/sweep/earthing stubs must be checked, and the typed errors must be
// matched through errors.As/Is rather than direct assertions or identity.
package fixture

import (
	"errors"
	"fmt"

	"fixture/core"
	"fixture/earthing"
	"fixture/sched"
	"fixture/sweep"
)

func dropped(work func(int)) {
	sched.ForCtx(nil, 4, work) // want "call to sched.ForCtx drops its containment error"
	defer sweep.Run(nil, nil)  // want "deferred call to sweep.Run drops its containment error"
	earthing.Analyze(nil)      // want "call to earthing.Analyze drops its containment error"
}

func blanked(work func(int)) {
	_, _ = sched.ForStatsCtx(nil, 4, work) // want "containment error of sched.ForStatsCtx discarded via _"
	_ = earthing.Check(nil)                // want "containment error of earthing.Check discarded via _"
	res, _ := sweep.Run(nil, nil)          // want "containment error of sweep.Run discarded via _"
	_ = res
}

func matches(err error) {
	if pe, ok := err.(*sched.PanicError); ok { // want "direct type assertion to *sched.PanicError misses wrapped errors"
		_ = pe
	}
	switch err.(type) {
	case *core.HealthError: // want "type-switch case *core.HealthError misses wrapped errors"
	default:
	}
	var pe *sched.PanicError
	if err == pe { // want "== comparison with *sched.PanicError misses wrapped errors"
		return
	}
}

func good(err error) bool {
	var pe *sched.PanicError
	if errors.As(err, &pe) {
		return pe != nil // nil checks on the concrete pointer are fine
	}
	var he *core.HealthError
	return errors.As(err, &he)
}

func recovered() {
	defer func() {
		if r := recover(); r != nil {
			// Asserting on recover()'s any is fine: errors.As does not
			// apply to non-error values.
			if pe, ok := r.(*sched.PanicError); ok {
				fmt.Println(pe)
			}
		}
	}()
}

func excused() {
	//lint:ignore panicerr fixture demonstrates a justified suppression
	_ = earthing.Check(nil)
}
