// Fixture for the powconst analyzer: small constant integer exponents are
// flagged, fractional / variable / large exponents are not.
package fixture

import "math"

func eval(x, y float64) float64 {
	a := math.Pow(x, 2)   // want "with a small constant exponent"
	b := math.Pow(x, 3.0) // want "with a small constant exponent"
	c := math.Pow(x, -2)  // want "with a small constant exponent"
	d := math.Pow(x, 0.5) // fractional exponent: no cheap rewrite
	e := math.Pow(x, y)   // runtime exponent
	f := math.Pow(x, 12)  // above the rewrite threshold
	return a + b + c + d + e + f
}
