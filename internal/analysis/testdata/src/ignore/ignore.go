// Fixture for //lint:ignore handling: correct directives suppress, wrong or
// malformed ones do not and surface as "ignore" findings, and a well-formed
// directive that suppresses nothing surfaces as "ignorehygiene".
package fixture

func scenarios(a, b float64) bool {
	// Correct usage on the line above: the floatcmp finding is suppressed.
	//lint:ignore floatcmp fixture demonstrates suppression
	r := a == b

	// Correct usage trailing the offending line also suppresses.
	r = a == b //lint:ignore floatcmp same-line directive

	// A directive naming a different (known) analyzer does not suppress —
	// and, having suppressed nothing, is itself stale.
	// want-next "directive for errdrop suppresses no finding"
	//lint:ignore errdrop reason that applies to nothing here
	r = a == b // want "floating-point == comparison"

	// An unknown analyzer name is itself reported and suppresses nothing.
	// want-next "unknown analyzer"
	//lint:ignore nosuchanalyzer some reason text
	r = a != b // want "floating-point != comparison"

	// A directive without the mandatory reason suppresses nothing.
	// want-next "missing the mandatory reason"
	//lint:ignore floatcmp
	r = a == b // want "floating-point == comparison"

	// A directive without even an analyzer name is malformed.
	// want-next "malformed directive"
	//lint:ignore
	r = a == b // want "floating-point == comparison"

	return r
}
