// Package sched mirrors the runner's For/ForStats entry points so the
// sharedwrite fixture exercises detection by import-path suffix, exactly as
// the real earthing/internal/sched package matches.
package sched

func For(workers, n int, body func(i int)) {
	for i := 0; i < n; i++ {
		body(i)
	}
}

func ForStats(workers, n int, body func(i int)) int {
	For(workers, n, body)
	return n
}
