// Fixture for the sharedwrite analyzer: unguarded writes to captured state
// in parallel bodies are flagged; index-partitioned, lock-guarded and
// literal-local writes are accepted.
package fixture

import (
	"sync"

	"fixture/sched"
)

func Parallel(n int, x, y []float64) float64 {
	sum := 0.0
	sched.For(4, n, func(i int) {
		sum += x[i] // want "write to captured"
	})

	sched.For(4, n, func(i int) {
		y[i] = 2 * x[i] // partitioned by the loop index
	})

	var mu sync.Mutex
	guarded := 0.0
	sched.For(4, n, func(i int) {
		mu.Lock()
		guarded += x[i] // the body acquires a sync lock
		mu.Unlock()
	})

	count := 0
	go func() {
		count++ // want "increment/decrement to captured"
	}()

	total := sched.ForStats(4, n, func(i int) {
		local := x[i]
		local *= 2 // local to the literal
		y[i] = local
	})

	return sum + guarded + float64(count) + float64(total)
}
