package fixture

import "testing"

// Test goroutines are the harness's to reap: goleak skips _test.go files.
func TestGoroutineAllowedInTests(t *testing.T) {
	go spin()
	t.Log("spawned")
}
