// Fixture for the goleak analyzer: library goroutines with no visible
// termination path are flagged; ctx, channels and WaitGroup joins are the
// accepted stop signals.
package fixture

import (
	"context"
	"sync"
)

func spin() {}

func leakLiteral() {
	go func() { // want "goroutine has no visible termination path"
		for {
		}
	}()
}

func leakNamed() {
	go spin() // want "goroutine has no visible termination path"
}

func watch(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

func pump(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func run(ctx context.Context, f func(context.Context)) {
	go f(ctx) // the ctx argument is the stop signal
}

func fanout(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func excused() {
	//lint:ignore goleak fixture demonstrates a justified suppression
	go spin()
}
