// Package main owns process-lifetime goroutines: goleak skips main packages.
package main

func main() {
	go func() {
		select {}
	}()
}
