// Fixture for the errdrop analyzer: dropped errors are flagged, console
// output and sticky writers are exempt.
package fixture

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

type closer struct{}

func (closer) Close() error { return nil }

func mayFail() error { return nil }

func value() (int, error) { return 0, nil }

func bad(w io.Writer) {
	mayFail()       // want "call to mayFail drops its error result"
	defer mayFail() // want "deferred call to mayFail drops its error result"
	v, _ := value() // want "error result of value discarded via _"
	_ = v
	_ = mayFail()               // want "error value mayFail discarded via _"
	fmt.Fprintf(w, "x %d\n", 1) // want "call to fmt.Fprintf drops its error result"
	var c closer
	defer c.Close() // want "deferred call to c.Close drops its error result"
}

func good(bw *bufio.Writer, sb *strings.Builder, buf *bytes.Buffer) error {
	fmt.Println("console output carries no actionable error")
	fmt.Fprintf(os.Stderr, "neither does a diagnostic on stderr\n")
	fmt.Fprintf(bw, "row %d\n", 1) // bufio latches the error for Flush
	bw.WriteByte('\n')
	sb.WriteString("strings.Builder never fails")
	buf.WriteString("nor does bytes.Buffer")
	go mayFail() // a goroutine's error needs a channel, not a lint
	if err := mayFail(); err != nil {
		return err
	}
	return bw.Flush()
}
