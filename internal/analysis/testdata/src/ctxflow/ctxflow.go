// Fixture for the ctxflow analyzer: root contexts minted in library code,
// ctx parameters out of first position, and severed threading are flagged;
// deprecated shims, tests and package main are exempt.
package fixture

import "context"

// doCtx is a context-accepting callee for the threading scenarios.
func doCtx(ctx context.Context) error {
	<-ctx.Done()
	return nil
}

func mints() {
	ctx := context.Background() // want "context.Background mints a fresh root context"
	_ = doCtx(ctx)
	_ = doCtx(context.TODO()) // want "context.TODO mints a fresh root context"
}

// Fetch takes its ctx in the wrong slot.
func Fetch(name string, ctx context.Context) error { // want "exported Fetch takes a context.Context as parameter 2"
	_ = name
	return doCtx(ctx)
}

// Severed accepts a ctx but hands its callee a nil one.
func Severed(ctx context.Context, name string) error { // want "Severed accepts a ctx but never uses it while calling doCtx"
	_ = name
	return doCtx(nil)
}

// Threaded does it right: ctx first, passed down.
func Threaded(ctx context.Context) error {
	return doCtx(ctx)
}

// Old bridges ctx-free callers onto the ctx-first API.
//
// Deprecated: use Threaded.
func Old() error {
	return doCtx(context.Background())
}

func sanctioned() error {
	//lint:ignore ctxflow fixture demonstrates a justified suppression
	return doCtx(context.Background())
}
