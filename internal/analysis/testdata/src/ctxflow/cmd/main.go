// Package main may mint root contexts: ctxflow skips main packages.
package main

import "context"

func main() {
	ctx := context.Background()
	<-ctx.Done()
}
