package fixture

import (
	"context"
	"testing"
)

// Tests may mint root contexts freely: ctxflow skips _test.go files.
func TestBackgroundAllowedInTests(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := doCtx(ctx); err != nil {
		t.Fatal(err)
	}
}
