package analysis

import (
	"go/ast"
	"go/types"
)

// GoLeakAnalyzer is the lexical ("goleak-lite") version of the
// no-goroutine-leak property the chaos suites assert dynamically: a
// goroutine launched in library code must have a termination story visible
// at the launch site. Accepted shapes:
//
//   - the call passes a context.Context or a channel argument (the
//     goroutine can be told to stop);
//   - the goroutine is a function literal whose body mentions a
//     context.Context value, a channel (send, receive, select or close all
//     count, including captured done/quit channels), or joins through
//     sync.WaitGroup's Done/Wait.
//
// A go statement with none of those is a leak candidate: nothing can stop
// it and nothing observes its exit. Package main and _test.go files are
// exempt — process- and test-lifetime goroutines are the runtime's and the
// test harness's to reap (and the server suites check leaks dynamically).
var GoLeakAnalyzer = &Analyzer{
	Name: "goleak",
	Doc:  "library goroutines need a ctx, a done/quit channel, or a WaitGroup join",
	Run:  runGoLeak,
}

func runGoLeak(pass *Pass) {
	if pass.InMainPackage() {
		return
	}
	for _, file := range pass.Pkg.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if goroutineHasTermination(pass, gs.Call) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine has no visible termination path (no ctx, done channel, or WaitGroup join); it can leak")
			return true
		})
	}
}

// goroutineHasTermination applies the acceptance rules documented on
// GoLeakAnalyzer.
func goroutineHasTermination(pass *Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if isStoppableType(pass.TypeOf(arg)) {
			return true
		}
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := pass.ObjectOf(n); obj != nil && isStoppableType(obj.Type()) {
				found = true
			}
		case *ast.SelectorExpr:
			if isStoppableType(pass.TypeOf(n)) {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok &&
				(sel.Sel.Name == "Done" || sel.Sel.Name == "Wait") {
				if obj := pass.ObjectOf(sel.Sel); obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isStoppableType reports whether t is a context.Context or a channel —
// the two types that give a goroutine an external stop signal.
func isStoppableType(t types.Type) bool {
	if t == nil {
		return false
	}
	if isContextType(t) {
		return true
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}
