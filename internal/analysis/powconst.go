package analysis

import (
	"go/ast"
	"go/constant"
	"math"
)

// maxPowExponent is the largest |exponent| powconst rewrites by hand; above
// it repeated multiplication stops being obviously better than math.Pow.
const maxPowExponent = 8

// PowConstAnalyzer flags math.Pow(x, c) where c is a small integer constant,
// in non-test code. Inside the kernel series these calls sit in the hot
// element-pair loop, and x*x (or a squaring chain) is both faster and
// bit-reproducible, while math.Pow goes through the general exp/log path.
var PowConstAnalyzer = &Analyzer{
	Name: "powconst",
	Doc:  "math.Pow with a small constant integer exponent in hot paths",
	Run:  runPowConst,
}

func runPowConst(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 || pass.InTestFile(call.Pos()) {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.ObjectOf(sel.Sel)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "math" || obj.Name() != "Pow" {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[call.Args[1]]
			if !ok || tv.Value == nil {
				return true
			}
			v := constant.ToFloat(tv.Value)
			if v.Kind() != constant.Float {
				return true
			}
			f, _ := constant.Float64Val(v)
			//lint:ignore floatcmp integrality test on a compile-time constant; Trunc compares exactly by design
			if f != math.Trunc(f) || math.Abs(f) > maxPowExponent {
				return true
			}
			pass.Reportf(call.Pos(), "math.Pow(x, %v) with a small constant exponent; use explicit multiplication in hot paths", f)
			return true
		})
	}
}
