// Package analysis is a small static-analysis framework over the Go
// standard library only (go/parser, go/ast, go/types, go/importer — no
// external dependencies, matching the repo's from-scratch ethos). It loads
// every package of the module, type-checks it, and runs a registry of
// repo-specific analyzers whose findings cmd/gridvet reports as
// "file:line:col: [analyzer] message".
//
// The flagship analyzer, sharedwrite, mechanizes the §6.2 discipline the
// paper's parallelization depends on: loop bodies handed to
// sched.For/ForStats (or launched with go) must not write closure-captured
// state unless the write is partitioned by the loop index or guarded by a
// sync primitive. The first-wave analyzers encode numerical-kernel
// discipline: no floating-point ==, no dropped errors, no naive kernel-term
// accumulation where the Kahan helper exists, no math.Pow with small
// constant exponents in hot paths. The second wave mechanizes the
// concurrency- and context-discipline invariants the serving stack
// introduced: ctxflow (contexts are threaded, never minted mid-library),
// panicerr (containment errors from sched/sweep/the facade are checked and
// matched through errors.As/Is), lockdiscipline (locks are not copied,
// are released on every path, and fields are not accessed both atomically
// and plainly), and goleak (library goroutines carry a ctx, a done
// channel, or a WaitGroup join).
//
// Deliberate violations are annotated in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line directly above it; see ignore.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check run over every loaded package.
type Analyzer struct {
	// Name is the identifier used in findings and //lint:ignore directives.
	Name string
	// Doc is a one-line description for gridvet -list.
	Doc string
	// Run inspects the package behind pass and reports findings.
	Run func(pass *Pass)
}

// A Finding is one diagnostic at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the canonical gridvet output form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	report func(Finding)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Finding{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expr, or nil if the type checker did not
// record one.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.Pkg.Info.TypeOf(expr)
}

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.Pkg.Info.ObjectOf(id)
}

// InTestFile reports whether pos lies in a *_test.go file. Analyzers that
// police production code only (floatcmp, errdrop, naivesum, powconst) skip
// such positions; sharedwrite deliberately does not, since test helpers
// launch parallel loops too.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// InMainPackage reports whether the package under analysis is a command
// (package main). The context- and goroutine-discipline analyzers exempt
// commands: main is exactly where context.Background belongs and where
// process-lifetime goroutines are legitimate.
func (p *Pass) InMainPackage() bool {
	return p.Pkg.Types.Name() == "main"
}

// Analyzers returns the full registry, ordered by name. Two pseudo-analyzers
// ride alongside the registry inside Run itself: "ignore" (malformed or
// unknown-name suppression directives) and "ignorehygiene" (well-formed
// directives that suppress nothing). Neither can be suppressed.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CtxFlowAnalyzer,
		ErrDropAnalyzer,
		FloatCmpAnalyzer,
		GoLeakAnalyzer,
		LockDisciplineAnalyzer,
		NaiveSumAnalyzer,
		PanicErrAnalyzer,
		PowConstAnalyzer,
		SharedWriteAnalyzer,
	}
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppression, and returns the surviving findings sorted by position.
// Malformed or unknown-analyzer directives surface as findings of the
// pseudo-analyzer "ignore", and well-formed directives that suppressed
// nothing as findings of "ignorehygiene"; neither pseudo-analyzer can
// itself be suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var raw []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				report:   func(f Finding) { raw = append(raw, f) },
			}
			a.Run(pass)
		}
	}

	var out []Finding
	var dirs []*directive
	byFile := map[string]map[int][]*directive{}
	for _, pkg := range pkgs {
		pkgDirs := directives(pkg)
		dirs = append(dirs, pkgDirs...)
		for _, d := range pkgDirs {
			if byFile[d.pos.Filename] == nil {
				byFile[d.pos.Filename] = map[int][]*directive{}
			}
			byFile[d.pos.Filename][d.pos.Line] = append(byFile[d.pos.Filename][d.pos.Line], d)
		}
	}
	for _, f := range raw {
		if suppressed(f, byFile) {
			continue
		}
		out = append(out, f)
	}
	out = append(out, checkDirectives(dirs, known)...)
	out = append(out, staleDirectives(dirs, known)...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
