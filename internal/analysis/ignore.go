package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// Suppression directives.
//
// A finding is suppressed by a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// placed either on the same line as the finding or on the line directly
// above it. The analyzer name must match the reporting analyzer exactly and
// a non-empty reason is mandatory — gridvet reports a directive that names
// an unknown analyzer or omits the reason as a finding of the
// pseudo-analyzer "ignore", which cannot itself be suppressed. A
// well-formed directive that matches no finding is tolerated (the analyzers
// are heuristic; a directive may outlive the pattern it excused).

const ignoreName = "ignore"

// directivePrefix is what a suppression comment starts with after "//".
const directivePrefix = "lint:ignore"

// A directive is one parsed //lint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string // "" when malformed
	reason   string // "" when missing
}

// directives extracts every //lint:ignore comment of the package.
func directives(pkg *Package) []directive {
	var out []directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments do not carry directives
				}
				rest, ok := strings.CutPrefix(strings.TrimSpace(text), directivePrefix)
				if !ok {
					continue
				}
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. "lint:ignoreXXX" is not a directive
				}
				fields := strings.Fields(rest)
				d := directive{pos: pkg.Fset.Position(c.Pos())}
				if len(fields) > 0 {
					d.analyzer = fields[0]
				}
				if len(fields) > 1 {
					d.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// checkDirectives reports malformed directives and directives naming
// analyzers outside the known set.
func checkDirectives(dirs []directive, known map[string]bool) []Finding {
	var out []Finding
	for _, d := range dirs {
		switch {
		case d.analyzer == "":
			out = append(out, Finding{Pos: d.pos, Analyzer: ignoreName,
				Message: `malformed directive: want "//lint:ignore <analyzer> <reason>"`})
		case d.reason == "":
			out = append(out, Finding{Pos: d.pos, Analyzer: ignoreName,
				Message: "directive for " + d.analyzer + " is missing the mandatory reason"})
		case !known[d.analyzer]:
			out = append(out, Finding{Pos: d.pos, Analyzer: ignoreName,
				Message: "directive names unknown analyzer " + strconv.Quote(d.analyzer)})
		}
	}
	return out
}

// suppressed reports whether a well-formed directive for f's analyzer sits
// on the finding's line or the line directly above it.
func suppressed(f Finding, byFile map[string]map[int][]directive) bool {
	lines := byFile[f.Pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range lines[line] {
			if d.analyzer == f.Analyzer && d.reason != "" {
				return true
			}
		}
	}
	return false
}
