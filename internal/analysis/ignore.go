package analysis

import (
	"go/token"
	"strconv"
	"strings"
)

// Suppression directives.
//
// A finding is suppressed by a comment of the form
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the same line as the finding or on the line directly above it.
// Several directives may be stacked on consecutive lines above one finding
// (a line needs one directive per analyzer that fires on it); the stack is
// contiguous — a blank or code line ends it. The analyzer name must match
// the reporting analyzer exactly and a non-empty reason is mandatory —
// gridvet reports a directive that names an unknown analyzer or omits the
// reason as a finding of the pseudo-analyzer "ignore", which cannot itself
// be suppressed.
//
// A well-formed directive that suppresses zero findings is reported by the
// second pseudo-analyzer, "ignorehygiene" (also non-suppressible): a stale
// directive is a latent hole in the lint wall, silently excusing the next
// real violation that lands on its line. Hygiene findings are only raised
// for directives whose analyzer is part of the running set, so vetting a
// package subset or a single analyzer does not misreport directives that
// belong to the others.

const ignoreName = "ignore"

// hygieneName is the pseudo-analyzer reporting stale directives.
const hygieneName = "ignorehygiene"

// directivePrefix is what a suppression comment starts with after "//".
const directivePrefix = "lint:ignore"

// A directive is one parsed //lint:ignore comment.
type directive struct {
	pos      token.Position
	analyzer string // "" when malformed
	reason   string // "" when missing
	used     bool   // set when the directive suppresses at least one finding
}

// parseDirective parses one raw comment ("//..." or "/*...*/" text as
// returned by ast.Comment.Text) as a suppression directive. ok is false
// when the comment is not a directive at all; a malformed directive (no
// analyzer, or no reason) still parses with the missing fields empty so the
// caller can diagnose it.
func parseDirective(text string) (analyzer, reason string, ok bool) {
	body, ok := strings.CutPrefix(text, "//")
	if !ok {
		return "", "", false // /* */ comments do not carry directives
	}
	rest, ok := strings.CutPrefix(strings.TrimSpace(body), directivePrefix)
	if !ok {
		return "", "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false // e.g. "lint:ignoreXXX" is not a directive
	}
	fields := strings.Fields(rest)
	if len(fields) > 0 {
		analyzer = fields[0]
	}
	if len(fields) > 1 {
		reason = strings.Join(fields[1:], " ")
	}
	return analyzer, reason, true
}

// directives extracts every //lint:ignore comment of the package.
func directives(pkg *Package) []*directive {
	var out []*directive
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				analyzer, reason, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				out = append(out, &directive{
					pos:      pkg.Fset.Position(c.Pos()),
					analyzer: analyzer,
					reason:   reason,
				})
			}
		}
	}
	return out
}

// checkDirectives reports malformed directives and directives naming
// analyzers outside the known set.
func checkDirectives(dirs []*directive, known map[string]bool) []Finding {
	var out []Finding
	for _, d := range dirs {
		switch {
		case d.analyzer == "":
			out = append(out, Finding{Pos: d.pos, Analyzer: ignoreName,
				Message: `malformed directive: want "//lint:ignore <analyzer> <reason>"`})
		case d.reason == "":
			out = append(out, Finding{Pos: d.pos, Analyzer: ignoreName,
				Message: "directive for " + d.analyzer + " is missing the mandatory reason"})
		case !known[d.analyzer]:
			out = append(out, Finding{Pos: d.pos, Analyzer: ignoreName,
				Message: "directive names unknown analyzer " + strconv.Quote(d.analyzer)})
		}
	}
	return out
}

// suppressed reports whether a well-formed directive for f's analyzer sits
// on the finding's line or in the contiguous stack of directive lines
// directly above it, and marks every matching directive as used.
func suppressed(f Finding, byFile map[string]map[int][]*directive) bool {
	lines := byFile[f.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	match := func(line int) {
		for _, d := range lines[line] {
			if d.analyzer == f.Analyzer && d.reason != "" {
				d.used = true
				hit = true
			}
		}
	}
	match(f.Pos.Line)
	for line := f.Pos.Line - 1; len(lines[line]) > 0; line-- {
		match(line)
	}
	return hit
}

// staleDirectives reports every well-formed directive whose analyzer ran
// but which suppressed nothing.
func staleDirectives(dirs []*directive, known map[string]bool) []Finding {
	var out []Finding
	for _, d := range dirs {
		if d.used || d.analyzer == "" || d.reason == "" || !known[d.analyzer] {
			continue
		}
		out = append(out, Finding{Pos: d.pos, Analyzer: hygieneName,
			Message: "directive for " + d.analyzer + " suppresses no finding; delete it or restore the code it excused"})
	}
	return out
}
