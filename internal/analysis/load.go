package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the module.
type Package struct {
	// Path is the import path ("earthing/internal/bem").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Fset is shared by every package of one LoadModule call.
	Fset *token.FileSet
	// Files holds the parsed sources: all non-test files, plus in-package
	// _test.go files when LoadOptions.Tests is set. External test packages
	// (package foo_test) are always skipped — they would form a second
	// package per directory and none of the analyzers need them.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// LoadOptions configures LoadModuleOpts.
type LoadOptions struct {
	// Tests folds in-package _test.go files into their package so the
	// analyzers vet the chaos/acceptance suites too. Off by default (a
	// lint run over production code should not churn when only tests
	// change); CI runs with it on. External test packages (package
	// foo_test) are skipped either way.
	Tests bool
}

// loader resolves module-local imports from source while delegating the
// standard library to go/importer's source-mode importer. It implements
// types.ImporterFrom so the type checker can hand it any import path.
type loader struct {
	fset       *token.FileSet
	modulePath string
	root       string
	opt        LoadOptions
	dirs       map[string]string // import path → directory
	pkgs       map[string]*Package
	state      map[string]int // 0 unseen, 1 loading (cycle guard), 2 done
	std        types.ImporterFrom
	errs       []error
}

// LoadModule is LoadModuleOpts with the default options (no test files).
func LoadModule(root string) ([]*Package, error) {
	return LoadModuleOpts(root, LoadOptions{})
}

// LoadModuleOpts discovers, parses and type-checks every package under the
// module rooted at root (the directory containing go.mod). Directories named
// testdata, vendor, or starting with "." or "_" are skipped, as the go tool
// does. Type-check or parse errors are aggregated into the returned error;
// packages that loaded cleanly are still returned.
func LoadModuleOpts(root string, opt LoadOptions) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	l := &loader{
		fset:       token.NewFileSet(),
		modulePath: modPath,
		root:       root,
		opt:        opt,
		dirs:       map[string]string{},
		pkgs:       map[string]*Package{},
		state:      map[string]int{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil).(types.ImporterFrom)

	if err := l.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, p := range paths {
		pkg, err := l.load(p)
		if err != nil {
			l.errs = append(l.errs, err)
			continue
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(l.errs) > 0 {
		msgs := make([]string, len(l.errs))
		for i, e := range l.errs {
			msgs[i] = e.Error()
		}
		return pkgs, fmt.Errorf("analysis: load errors:\n  %s", strings.Join(msgs, "\n  "))
	}
	return pkgs, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module declaration in %s", gomod)
}

// discover maps every package directory under root to its import path.
func (l *loader) discover() error {
	return filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		hasGo := false
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		imp := l.modulePath
		if rel != "." {
			imp = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
}

// load parses and type-checks the package with the given import path,
// memoized and cycle-guarded.
func (l *loader) load(path string) (*Package, error) {
	if l.state[path] == 2 {
		return l.pkgs[path], nil
	}
	if l.state[path] == 1 {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.state[path] = 1
	defer func() { l.state[path] = 2 }()

	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: no package %s under %s", path, l.root)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files, testFiles []*ast.File
	pkgName := ""
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.opt.Tests {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(name, "_test.go") {
			testFiles = append(testFiles, f)
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: conflicting package names %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	// In-package test files join the package; external (foo_test) are skipped.
	for _, f := range testFiles {
		if f.Name.Name == pkgName {
			files = append(files, f)
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var checkErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { checkErrs = append(checkErrs, err) },
	}
	tpkg, cerr := conf.Check(path, l.fset, files, info)
	if cerr != nil && len(checkErrs) == 0 {
		// The Error callback swallows most problems; a hard checker failure
		// (e.g. an import that could not be resolved) only comes back here.
		checkErrs = append(checkErrs, cerr)
	}
	if len(checkErrs) > 0 {
		msgs := make([]string, 0, len(checkErrs))
		for _, e := range checkErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type errors in %s:\n    %s", path, strings.Join(msgs, "\n    "))
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.root, 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths resolve
// through the loader, everything else through the source importer.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}
