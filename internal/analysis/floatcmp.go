package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer flags == and != between floating-point operands outside
// _test.go files. Exact equality on computed floats is almost always a
// rounding bug in a BEM kernel; comparisons against an exact-zero constant
// are accepted, because zero is the one value the kernels use as a genuine
// sentinel (unset parameter, empty span, degenerate geometry) and
// IEEE-754 zero compares are exact.
var FloatCmpAnalyzer = &Analyzer{
	Name: "floatcmp",
	Doc:  "floating-point == / != comparisons (tolerance-free equality)",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if pass.InTestFile(be.Pos()) {
				return true
			}
			if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
				return true
			}
			if isExactZero(pass, be.X) || isExactZero(pass, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison; compare against a tolerance (exact-zero sentinel compares are exempt)", be.Op)
			return true
		})
	}
}

// isFloat reports whether t's underlying type is a floating-point basic type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isExactZero reports whether e is a constant whose numeric value is
// exactly zero (literal 0, 0.0, or a named zero constant).
func isExactZero(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float {
		return false
	}
	f, _ := constant.Float64Val(v)
	return f == 0
}
