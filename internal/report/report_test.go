package report

import (
	"strings"
	"testing"

	"earthing/internal/core"
	"earthing/internal/grid"
	"earthing/internal/safety"
	"earthing/internal/soil"
)

func buildSample(t *testing.T) (*core.Result, *grid.Grid) {
	t.Helper()
	g := grid.RectMesh(0, 0, 20, 20, 3, 3, 0.8, 0.006)
	g.AddRod(0, 0, 0.8, 2, 0.007)
	res, err := core.Analyze(g, soil.NewTwoLayer(0.005, 0.016, 1.0), core.Config{GPR: 5000})
	if err != nil {
		t.Fatal(err)
	}
	return res, g
}

func TestBuildHTML(t *testing.T) {
	res, g := buildSample(t)
	var sb strings.Builder
	err := BuildHTML(&sb, res, g, Options{
		Title:      "Test substation",
		SurfaceNX:  16,
		SurfaceNY:  16,
		TopLeakage: 5,
		Criteria: safety.Criteria{
			FaultDuration: 0.5,
			SoilRho:       200,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"Test substation",
		"Equivalent resistance",
		"IEEE Std 80 verdict",
		"Leakage distribution",
		"<svg",          // embedded figures
		"equipotential", // contour caption
		"Matrix generation",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Two embedded SVGs: plan + contours.
	if n := strings.Count(out, "<svg"); n != 2 {
		t.Errorf("embedded svg count = %d", n)
	}
	// The verdict renders as pass or fail, never both.
	pass := strings.Contains(out, "DESIGN PASSES")
	fail := strings.Contains(out, "DESIGN FAILS")
	if pass == fail {
		t.Errorf("verdict rendering wrong: pass=%v fail=%v", pass, fail)
	}
}

func TestBuildHTMLWithoutSafety(t *testing.T) {
	res, g := buildSample(t)
	var sb strings.Builder
	if err := BuildHTML(&sb, res, g, Options{SurfaceNX: 12, SurfaceNY: 12}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "IEEE Std 80 verdict") {
		t.Error("safety section rendered without criteria")
	}
	if !strings.Contains(sb.String(), "Grounding system analysis") {
		t.Error("default title missing")
	}
}
