// Package report renders a complete grounding-design report as a standalone
// HTML document: design parameters, stage timings, IEEE Std 80 verdicts,
// leakage tables and embedded SVG potential contours — the deliverable the
// "Computer Aided Design system for grounding analysis" of §5 produces for
// a design review.
package report

import (
	"bytes"
	"fmt"
	"html/template"
	"io"

	"earthing/internal/core"
	"earthing/internal/experiments"
	"earthing/internal/grid"
	"earthing/internal/post"
	"earthing/internal/safety"
)

// Options configures BuildHTML.
type Options struct {
	// Title heads the document (default "Grounding system analysis").
	Title string
	// Criteria, when FaultDuration > 0, adds the IEEE Std 80 verdict
	// section; the voltages are computed from the result.
	Criteria safety.Criteria
	// SurfaceNX/NY control the embedded contour raster (default 48).
	SurfaceNX, SurfaceNY int
	// ContourLevels is the number of equipotential lines (default 12).
	ContourLevels int
	// TopLeakage is the number of rows in the leakage table (default 10).
	TopLeakage int
	// VoltageRes is the touch/step sampling resolution in metres
	// (default 2).
	VoltageRes float64
}

func (o Options) withDefaults() Options {
	if o.Title == "" {
		o.Title = "Grounding system analysis"
	}
	if o.SurfaceNX <= 0 {
		o.SurfaceNX = 48
	}
	if o.SurfaceNY <= 0 {
		o.SurfaceNY = 48
	}
	if o.ContourLevels <= 0 {
		o.ContourLevels = 12
	}
	if o.TopLeakage <= 0 {
		o.TopLeakage = 10
	}
	if o.VoltageRes <= 0 {
		o.VoltageRes = 2
	}
	return o
}

// page is the template payload.
type page struct {
	Title      string
	Soil       string
	Elements   int
	DoF        int
	TotalLen   string
	GPR        string
	Req        string
	Current    string
	Timings    []kv
	HasSafety  bool
	Verdict    string
	VerdictOK  bool
	StepRow    string
	TouchRow   string
	MeshRow    string
	Leakage    []leakRow
	RodShare   string
	PlanSVG    template.HTML
	ContourSVG template.HTML
}

type kv struct{ K, V string }

type leakRow struct {
	Rank     int
	Kind     string
	Position string
	Current  string
	Share    string
}

// BuildHTML computes the report sections from a solved analysis and renders
// the document.
func BuildHTML(w io.Writer, res *core.Result, g *grid.Grid, opt Options) error {
	opt = opt.withDefaults()
	p := page{
		Title:    opt.Title,
		Soil:     res.Model.Describe(),
		Elements: len(res.Mesh.Elements),
		DoF:      res.Mesh.NumDoF,
		TotalLen: fmt.Sprintf("%.1f m", res.Mesh.TotalLength()),
		GPR:      fmt.Sprintf("%.0f V", res.GPR),
		Req:      fmt.Sprintf("%.4f Ω", res.Req),
		Current:  fmt.Sprintf("%.2f kA", res.Current/1000),
		Timings: []kv{
			{"Data input", res.Timings.Input.String()},
			{"Preprocessing", res.Timings.Preprocess.String()},
			{"Matrix generation", res.Timings.MatrixGen.String()},
			{"Linear solve", res.Timings.Solve.String()},
			{"Results", res.Timings.Results.String()},
		},
	}

	// Plan drawing.
	var plan bytes.Buffer
	if err := experiments.PlanSVG(&plan, g); err != nil {
		return err
	}
	p.PlanSVG = template.HTML(plan.String()) //nolint:gosec // generated internally

	// Surface potential contours.
	raster := post.SurfacePotential(res.Assembler(), res.Mesh, res.Sigma, res.GPR,
		post.SurfaceOptions{NX: opt.SurfaceNX, NY: opt.SurfaceNY})
	lines := post.Contours(raster, post.EquallySpacedLevels(raster, opt.ContourLevels))
	var contours bytes.Buffer
	if err := post.WriteSVG(&contours, raster, lines); err != nil {
		return err
	}
	p.ContourSVG = template.HTML(contours.String()) //nolint:gosec // generated internally

	// Leakage.
	rep := post.ComputeLeakage(res.Mesh, res.Sigma, res.GPR)
	p.RodShare = fmt.Sprintf("%.1f%%", 100*rep.RodShare)
	n := opt.TopLeakage
	if n > len(rep.Elements) {
		n = len(rep.Elements)
	}
	for i, e := range rep.Elements[:n] {
		kind := "grid"
		if e.Vertical {
			kind = "rod"
		}
		p.Leakage = append(p.Leakage, leakRow{
			Rank:     i + 1,
			Kind:     kind,
			Position: fmt.Sprintf("(%.1f, %.1f, %.2f)", e.Midpoint.X, e.Midpoint.Y, e.Midpoint.Z),
			Current:  fmt.Sprintf("%.1f A", e.Current),
			Share:    fmt.Sprintf("%.2f%%", 100*e.Share),
		})
	}

	// Safety section.
	if opt.Criteria.FaultDuration > 0 {
		v := post.ComputeVoltages(res.Assembler(), res.Mesh, res.Sigma, res.GPR, opt.VoltageRes)
		verdict, err := opt.Criteria.Check(v.MaxStep, v.MaxTouch, v.MaxMesh)
		if err != nil {
			return err
		}
		p.HasSafety = true
		p.Verdict = verdict.String()
		p.VerdictOK = verdict.Safe()
		p.StepRow = fmt.Sprintf("%.0f / %.0f V", verdict.StepActual, verdict.StepLimit)
		p.TouchRow = fmt.Sprintf("%.0f / %.0f V", verdict.TouchActual, verdict.TouchLimit)
		p.MeshRow = fmt.Sprintf("%.0f / %.0f V", verdict.MeshActual, verdict.TouchLimit)
	}

	return tmpl.Execute(w, p)
}

var tmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>{{.Title}}</title>
<style>
 body{font:14px/1.5 system-ui,sans-serif;margin:2rem auto;max-width:60rem;color:#222}
 h1{font-size:1.5rem} h2{font-size:1.15rem;margin-top:2rem;border-bottom:1px solid #ddd}
 table{border-collapse:collapse;margin:.5rem 0} td,th{border:1px solid #ccc;padding:.25rem .6rem;text-align:left}
 .ok{color:#0a6} .bad{color:#c22;font-weight:bold}
 .figs{display:flex;gap:2rem;flex-wrap:wrap} .figs svg{max-width:28rem;height:auto;border:1px solid #eee}
</style></head><body>
<h1>{{.Title}}</h1>
<h2>Design parameters</h2>
<table>
<tr><th>Soil model</th><td>{{.Soil}}</td></tr>
<tr><th>Discretization</th><td>{{.Elements}} elements, {{.DoF}} degrees of freedom</td></tr>
<tr><th>Electrode length</th><td>{{.TotalLen}}</td></tr>
<tr><th>Ground potential rise</th><td>{{.GPR}}</td></tr>
<tr><th>Equivalent resistance R<sub>eq</sub></th><td><b>{{.Req}}</b></td></tr>
<tr><th>Fault current I<sub>Γ</sub></th><td><b>{{.Current}}</b></td></tr>
</table>
{{if .HasSafety}}
<h2>IEEE Std 80 verdict</h2>
<p class="{{if .VerdictOK}}ok{{else}}bad{{end}}">{{if .VerdictOK}}DESIGN PASSES{{else}}DESIGN FAILS{{end}}: {{.Verdict}}</p>
<table>
<tr><th>Quantity</th><th>computed / limit</th></tr>
<tr><td>Step voltage</td><td>{{.StepRow}}</td></tr>
<tr><td>Touch voltage</td><td>{{.TouchRow}}</td></tr>
<tr><td>Mesh voltage</td><td>{{.MeshRow}}</td></tr>
</table>
{{end}}
<h2>Plan and surface potential</h2>
<div class="figs">
<figure>{{.PlanSVG}}<figcaption>Grid plan (rods as dots)</figcaption></figure>
<figure>{{.ContourSVG}}<figcaption>Earth-surface equipotentials at GPR</figcaption></figure>
</div>
<h2>Leakage distribution</h2>
<p>Vertical rods carry {{.RodShare}} of the fault current.</p>
<table>
<tr><th>#</th><th>kind</th><th>midpoint (x, y, z)</th><th>current</th><th>share</th></tr>
{{range .Leakage}}<tr><td>{{.Rank}}</td><td>{{.Kind}}</td><td>{{.Position}}</td><td>{{.Current}}</td><td>{{.Share}}</td></tr>
{{end}}</table>
<h2>Solver stages</h2>
<table>
{{range .Timings}}<tr><th>{{.K}}</th><td>{{.V}}</td></tr>
{{end}}</table>
<p><small>Generated by the earthing BEM solver (reproduction of Colominas et
al., ICPP 2000). Not a substitute for a licensed engineering review.</small></p>
</body></html>
`))
