package backoff

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

// TestWaitDeterministicSeed pins the exact schedule for a fixed seed: the
// same Policy and seed must reproduce the same waits forever (the property
// the chaos suites lean on to make retry timing reproducible).
func TestWaitDeterministicSeed(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Cap: time.Second, Factor: 2}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for attempt := 1; attempt <= 6; attempt++ {
		wa, wb := p.Wait(attempt, a), p.Wait(attempt, b)
		if wa != wb {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", attempt, wa, wb)
		}
	}
}

// TestWaitEnvelope: every jittered wait lies in [w/2, w) of the un-jittered
// exponential, and the exponential itself doubles up to the cap.
func TestWaitEnvelope(t *testing.T) {
	p := Policy{Base: 80 * time.Millisecond, Cap: 500 * time.Millisecond, Factor: 2}
	rng := rand.New(rand.NewSource(7))
	want := []time.Duration{
		80 * time.Millisecond,
		160 * time.Millisecond,
		320 * time.Millisecond,
		500 * time.Millisecond, // capped
		500 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Wait(i+1, nil); got != w {
			t.Errorf("attempt %d un-jittered wait = %v, want %v", i+1, got, w)
		}
		for trial := 0; trial < 50; trial++ {
			got := p.Wait(i+1, rng)
			if got < w/2 || got >= w {
				t.Fatalf("attempt %d jittered wait %v outside [%v, %v)", i+1, got, w/2, w)
			}
		}
	}
}

// TestWaitZeroValue: the zero Policy behaves as Default().
func TestWaitZeroValue(t *testing.T) {
	var z Policy
	if got, want := z.Wait(1, nil), Default().Wait(1, nil); got != want {
		t.Errorf("zero-value Wait(1) = %v, want default %v", got, want)
	}
	if got := z.Wait(0, nil); got != 250*time.Millisecond {
		t.Errorf("Wait(0) = %v, want clamped first attempt", got)
	}
}

// TestJitterBounds: Jitter stays inside [w/2, w) and passes tiny or nil
// inputs through unchanged.
func TestJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := 64 * time.Millisecond
	for i := 0; i < 200; i++ {
		j := Jitter(w, rng)
		if j < w/2 || j >= w {
			t.Fatalf("jitter %v outside [%v, %v)", j, w/2, w)
		}
	}
	if got := Jitter(w, nil); got != w {
		t.Errorf("nil rng jitter = %v, want passthrough %v", got, w)
	}
	if got := Jitter(1, rng); got != 1 {
		t.Errorf("1ns jitter = %v, want passthrough", got)
	}
	if got := Jitter(0, rng); got != 0 {
		t.Errorf("zero jitter = %v, want passthrough", got)
	}
}

// TestSleepHonorsContext: a cancelled context interrupts the wait promptly
// and surfaces the context error.
func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Sleep(ctx, 10*time.Second); err != context.Canceled {
		t.Fatalf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Sleep took %v on a cancelled context", elapsed)
	}
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Sleep(1ms) = %v, want nil", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("Sleep(0) = %v, want nil", err)
	}
}
