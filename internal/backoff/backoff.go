// Package backoff implements the jittered exponential retry schedule the
// groundd ecosystem uses whenever one party must wait out another: clients
// absorbing 429 load-shed responses (examples/pipeline) and cluster nodes
// retrying a slow peer before falling back to a local solve
// (internal/server fleet mode).
//
// The schedule doubles a base wait per attempt up to a cap, then jitters the
// result uniformly over [w/2, w) so a burst of independent retriers does not
// re-arrive in lockstep — the classic retry-storm failure mode. A server
// hint (Retry-After) can override the exponential base for one attempt while
// keeping the jitter.
//
// All randomness flows through an explicit *rand.Rand so tests can pin a
// seed and assert the exact schedule; rand.Rand is not goroutine-safe, so
// concurrent retriers each use their own (see examples/pipeline).
package backoff

import (
	"context"
	"math/rand"
	"time"
)

// Policy is a jittered exponential backoff schedule. The zero value is
// usable and equals Default().
type Policy struct {
	// Base is the un-jittered wait before the first retry (default 250 ms).
	Base time.Duration
	// Cap bounds the un-jittered wait (default 30 s).
	Cap time.Duration
	// Factor is the per-attempt growth (default 2).
	Factor float64
}

// Default returns the schedule groundd components share: 250 ms base,
// doubling, capped at 30 s.
func Default() Policy {
	return Policy{Base: 250 * time.Millisecond, Cap: 30 * time.Second, Factor: 2}
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 250 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 30 * time.Second
	}
	if p.Factor < 1 {
		p.Factor = 2
	}
	return p
}

// Wait returns the jittered wait before retry attempt (1-based): the
// exponential Base·Factor^(attempt-1), capped, then jittered over [w/2, w).
// A nil rng disables jitter and returns the deterministic upper bound —
// callers that want decorrelation must bring their own source.
func (p Policy) Wait(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	w := float64(p.Base)
	for i := 1; i < attempt; i++ {
		w *= p.Factor
		if w >= float64(p.Cap) {
			w = float64(p.Cap)
			break
		}
	}
	if w > float64(p.Cap) {
		w = float64(p.Cap)
	}
	return Jitter(time.Duration(w), rng)
}

// Jitter spreads w uniformly over [w/2, w). A nil rng or a non-positive w
// returns w unchanged.
func Jitter(w time.Duration, rng *rand.Rand) time.Duration {
	if rng == nil || w <= 1 {
		return w
	}
	return w/2 + time.Duration(rng.Int63n(int64(w/2)))
}

// Sleep waits for d or until ctx is done, whichever comes first, reporting
// ctx.Err() when the context won. It replaces bare time.Sleep in retry loops
// so a cancelled request stops waiting on a peer immediately.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
