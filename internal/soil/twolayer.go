package soil

import (
	"fmt"
	"math"

	"earthing/internal/geom"
	"earthing/internal/quad"
)

// TwoLayer is the two-layer stratified soil model: a top layer of
// conductivity Gamma1 and thickness H over an infinite lower layer of
// conductivity Gamma2. Its kernels are infinite series of images obtained by
// repeated reflection across the earth surface (coefficient +1, air as a
// perfect insulator) and the layer interface (coefficient K, eq. 3.2).
//
// K = (γ1 − γ2)/(γ1 + γ2) is the ratio κ of the paper; the series converge
// geometrically with ratio |K|, which is why grounding analysis becomes
// expensive when the layer contrast is large (|K| → 1).
type TwoLayer struct {
	Gamma1, Gamma2 float64 // layer conductivities, (Ω·m)⁻¹
	H              float64 // top-layer thickness, m
	Control        SeriesControl
}

// NewTwoLayer validates and returns a two-layer model.
func NewTwoLayer(gamma1, gamma2, h float64) *TwoLayer {
	if gamma1 <= 0 || gamma2 <= 0 || math.IsNaN(gamma1) || math.IsNaN(gamma2) {
		panic(fmt.Sprintf("soil: non-positive conductivity (γ1=%g, γ2=%g)", gamma1, gamma2))
	}
	if h <= 0 || math.IsNaN(h) {
		panic(fmt.Sprintf("soil: non-positive layer thickness %g", h))
	}
	return &TwoLayer{Gamma1: gamma1, Gamma2: gamma2, H: h}
}

// K returns the reflection coefficient (γ1 − γ2)/(γ1 + γ2) ∈ (−1, 1).
func (m *TwoLayer) K() float64 {
	return (m.Gamma1 - m.Gamma2) / (m.Gamma1 + m.Gamma2)
}

// NumLayers implements Model.
func (*TwoLayer) NumLayers() int { return 2 }

// LayerOf implements Model. The interface depth itself belongs to layer 1.
func (m *TwoLayer) LayerOf(z float64) int {
	if z <= m.H {
		return 1
	}
	return 2
}

// Conductivity implements Model.
func (m *TwoLayer) Conductivity(layer int) float64 {
	switch layer {
	case 1:
		return m.Gamma1
	case 2:
		return m.Gamma2
	default:
		panic(fmt.Sprintf("soil: two-layer model has no layer %d", layer))
	}
}

// ImageExpansion implements Model. The four source/observer layer cases
// carry different image ladders (all derived from the Hankel-transform
// solution of problem (2.3); see DESIGN.md §3):
//
//	src=1 obs=1: group 0 = source + surface image (weight 1);
//	             group n ≥ 1 = 4 images at z′ = ±z ± 2nH, weight Kⁿ.
//	src=1 obs=2: group n ≥ 0 = 2 images at z′ = ±z − 2nH, weight (1+K)Kⁿ.
//	src=2 obs=2: group 0 = source (weight 1) + image at 2H−z (weight −K);
//	             group m ≥ 1 = 1 image at z′ = −z + 2(1−m)H,
//	             weight (1−K²)K^{m−1}.
//	src=2 obs=1: group m ≥ 0 = 2 images at z′ = ±(z + 2mH), weight (1−K)K^m.
//
// The kernel prefactor is always 1/(4πγ_src).
func (m *TwoLayer) ImageExpansion(src, obs, maxGroup int) ([]Image, bool) {
	if src < 1 || src > 2 || obs < 1 || obs > 2 {
		panic(fmt.Sprintf("soil: invalid layer pair (%d, %d)", src, obs))
	}
	k := m.K()
	h := m.H
	var out []Image
	switch {
	case src == 1 && obs == 1:
		out = append(out,
			Image{Sign: +1, Offset: 0, Weight: 1, Group: 0},
			Image{Sign: -1, Offset: 0, Weight: 1, Group: 0},
		)
		kn := 1.0
		for n := 1; n <= maxGroup; n++ {
			kn *= k
			c := 2 * float64(n) * h
			out = append(out,
				Image{Sign: +1, Offset: +c, Weight: kn, Group: n},
				Image{Sign: +1, Offset: -c, Weight: kn, Group: n},
				Image{Sign: -1, Offset: +c, Weight: kn, Group: n},
				Image{Sign: -1, Offset: -c, Weight: kn, Group: n},
			)
		}
	case src == 1 && obs == 2:
		kn := 1.0
		for n := 0; n <= maxGroup; n++ {
			c := -2 * float64(n) * h
			w := (1 + k) * kn
			out = append(out,
				Image{Sign: +1, Offset: c, Weight: w, Group: n},
				Image{Sign: -1, Offset: c, Weight: w, Group: n},
			)
			kn *= k
		}
	case src == 2 && obs == 2:
		out = append(out,
			Image{Sign: +1, Offset: 0, Weight: 1, Group: 0},
			Image{Sign: -1, Offset: 2 * h, Weight: -k, Group: 0},
		)
		km := 1.0 // K^{m−1} for m = 1
		for mm := 1; mm <= maxGroup; mm++ {
			c := 2 * (1 - float64(mm)) * h
			out = append(out, Image{Sign: -1, Offset: c, Weight: (1 - k*k) * km, Group: mm})
			km *= k
		}
	case src == 2 && obs == 1:
		km := 1.0
		for mm := 0; mm <= maxGroup; mm++ {
			c := 2 * float64(mm) * h
			w := (1 - k) * km
			out = append(out,
				Image{Sign: +1, Offset: +c, Weight: w, Group: mm},
				Image{Sign: -1, Offset: -c, Weight: w, Group: mm},
			)
			km *= k
		}
	}
	return out, true
}

// PointPotential implements Model by summing the image series with the
// model's SeriesControl truncation.
func (m *TwoLayer) PointPotential(x, xi geom.Vec3) float64 {
	ctl := m.Control.withDefaults()
	src := m.LayerOf(xi.Z)
	obs := m.LayerOf(x.Z)
	images, _ := m.ImageExpansion(src, obs, ctl.MaxGroups)
	var sum, groupSum quad.KahanSum
	group := 0
	smallGroups := 0
	for _, im := range images {
		if im.Group != group {
			g := groupSum.Sum()
			sum.Add(g)
			if math.Abs(g) <= ctl.Tol*math.Abs(sum.Sum()) {
				smallGroups++
				if smallGroups >= 2 {
					break
				}
			} else {
				smallGroups = 0
			}
			groupSum.Reset()
			group = im.Group
		}
		groupSum.Add(im.Weight / x.Dist(im.Apply(xi)))
	}
	sum.Add(groupSum.Sum())
	return sum.Sum() / (4 * math.Pi * m.Conductivity(src))
}

// Describe implements Model.
func (m *TwoLayer) Describe() string {
	return fmt.Sprintf("two-layer soil, γ1 = %g, γ2 = %g (Ω·m)⁻¹, h = %g m (K = %.4f)",
		m.Gamma1, m.Gamma2, m.H, m.K())
}
