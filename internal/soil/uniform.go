package soil

import (
	"fmt"
	"math"

	"earthing/internal/geom"
)

// Uniform is the single-layer (homogeneous, isotropic) soil model. Its image
// expansion has exactly two terms — the source and its reflection across the
// earth surface — which is why uniform-soil grounding analysis "runs in real
// time in personal computers" (§1 of the paper).
type Uniform struct {
	// Gamma is the apparent scalar soil conductivity in (Ω·m)⁻¹.
	Gamma float64
}

// NewUniform returns a uniform soil model; gamma must be positive.
func NewUniform(gamma float64) Uniform {
	if gamma <= 0 || math.IsNaN(gamma) {
		panic(fmt.Sprintf("soil: non-positive conductivity %g", gamma))
	}
	return Uniform{Gamma: gamma}
}

// NumLayers implements Model.
func (Uniform) NumLayers() int { return 1 }

// LayerOf implements Model.
func (Uniform) LayerOf(float64) int { return 1 }

// Conductivity implements Model.
func (u Uniform) Conductivity(layer int) float64 {
	if layer != 1 {
		panic(fmt.Sprintf("soil: uniform model has no layer %d", layer))
	}
	return u.Gamma
}

// ImageExpansion implements Model: the primary source plus its mirror image
// across the earth surface, both with unit weight (the air above is a
// perfect insulator, so the surface reflection coefficient is +1).
func (u Uniform) ImageExpansion(src, obs, maxGroup int) ([]Image, bool) {
	if maxGroup < 0 {
		return nil, true
	}
	return []Image{
		{Sign: +1, Offset: 0, Weight: 1, Group: 0},
		{Sign: -1, Offset: 0, Weight: 1, Group: 0},
	}, true
}

// PointPotential implements Model: V = (1/4πγ)(1/r + 1/r′) with r′ the
// distance to the surface image.
func (u Uniform) PointPotential(x, xi geom.Vec3) float64 {
	r := x.Dist(xi)
	rImg := x.Dist(xi.Mirror(0))
	return (1/r + 1/rImg) / (4 * math.Pi * u.Gamma)
}

// Describe implements Model.
func (u Uniform) Describe() string {
	return fmt.Sprintf("uniform soil, γ = %g (Ω·m)⁻¹", u.Gamma)
}
