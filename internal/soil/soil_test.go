package soil

import (
	"math"
	"math/rand"
	"testing"

	"earthing/internal/geom"
)

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Max(math.Abs(a), math.Abs(b)))
}

func TestUniformPointPotential(t *testing.T) {
	u := NewUniform(0.02)
	xi := geom.V(0, 0, 1)
	x := geom.V(3, 0, 1)
	want := (1/3.0 + 1/math.Sqrt(9+4)) / (4 * math.Pi * 0.02)
	if got := u.PointPotential(x, xi); relDiff(got, want) > 1e-12 {
		t.Errorf("PointPotential = %v want %v", got, want)
	}
}

func TestUniformImageExpansion(t *testing.T) {
	u := NewUniform(0.01)
	imgs, ok := u.ImageExpansion(1, 1, 100)
	if !ok || len(imgs) != 2 {
		t.Fatalf("expansion = %v ok=%v", imgs, ok)
	}
	// Source at depth 2: primary at z=2, surface image at z=−2.
	p := geom.V(1, 1, 2)
	if got := imgs[0].Apply(p); got != p {
		t.Errorf("primary image moved the source: %v", got)
	}
	if got := imgs[1].Apply(p); got != geom.V(1, 1, -2) {
		t.Errorf("surface image = %v, want (1,1,-2)", got)
	}
}

func TestUniformLayerQueries(t *testing.T) {
	u := NewUniform(0.01)
	if u.NumLayers() != 1 || u.LayerOf(5) != 1 || u.Conductivity(1) != 0.01 {
		t.Error("uniform layer queries wrong")
	}
}

func TestNewUniformPanicsOnBadGamma(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewUniform(-1)
}

func TestTwoLayerReducesToUniform(t *testing.T) {
	gamma := 0.016
	tl := NewTwoLayer(gamma, gamma, 1.0)
	u := NewUniform(gamma)
	if k := tl.K(); k != 0 {
		t.Fatalf("K = %v", k)
	}
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		x := geom.V(r.Float64()*20-10, r.Float64()*20-10, r.Float64()*5)
		xi := geom.V(r.Float64()*20-10, r.Float64()*20-10, 0.1+r.Float64()*3)
		if x.Dist(xi) < 0.05 {
			continue
		}
		got := tl.PointPotential(x, xi)
		want := u.PointPotential(x, xi)
		if relDiff(got, want) > 1e-10 {
			t.Fatalf("x=%v xi=%v: two-layer %v vs uniform %v", x, xi, got, want)
		}
	}
}

func TestTwoLayerLayerOf(t *testing.T) {
	tl := NewTwoLayer(0.005, 0.016, 1.0)
	if tl.LayerOf(0.5) != 1 || tl.LayerOf(1.0) != 1 || tl.LayerOf(1.5) != 2 {
		t.Error("LayerOf wrong")
	}
	if tl.NumLayers() != 2 {
		t.Error("NumLayers wrong")
	}
	if tl.Conductivity(1) != 0.005 || tl.Conductivity(2) != 0.016 {
		t.Error("Conductivity wrong")
	}
}

func TestTwoLayerKSign(t *testing.T) {
	// Resistive top layer over conductive bottom → K < 0 (Barberá case).
	if k := NewTwoLayer(0.005, 0.016, 1.0).K(); k >= 0 || relDiff(k, -11.0/21) > 1e-12 {
		t.Errorf("K = %v", k)
	}
	// Conductive top over resistive bottom → K > 0.
	if k := NewTwoLayer(0.02, 0.005, 1.0).K(); k <= 0 {
		t.Errorf("K = %v", k)
	}
}

// TestTwoLayerReciprocity exercises the fundamental Green's-function symmetry
// G(x, ξ) = G(ξ, x), including across layers, which fixes the relative
// weights (1+K)/γ1 = (1−K)/γ2 of the cross-layer expansions.
func TestTwoLayerReciprocity(t *testing.T) {
	tl := NewTwoLayer(0.005, 0.016, 1.0)
	cases := []struct{ x, xi geom.Vec3 }{
		{geom.V(2, 1, 0.5), geom.V(0, 0, 0.8)}, // both layer 1
		{geom.V(2, 1, 3.0), geom.V(0, 0, 2.5)}, // both layer 2
		{geom.V(2, 1, 0.4), geom.V(0, 0, 2.5)}, // cross layer
		{geom.V(5, -3, 1.8), geom.V(1, 1, 0.2)},
	}
	for _, c := range cases {
		a := tl.PointPotential(c.x, c.xi)
		b := tl.PointPotential(c.xi, c.x)
		if relDiff(a, b) > 1e-8 {
			t.Errorf("reciprocity violated at %v/%v: %v vs %v", c.x, c.xi, a, b)
		}
	}
}

// TestTwoLayerSurfaceFlux checks the natural boundary condition σᵀn = 0 on
// the earth surface: ∂V/∂z must vanish at z = 0.
func TestTwoLayerSurfaceFlux(t *testing.T) {
	tl := NewTwoLayer(0.005, 0.016, 1.0)
	xi := geom.V(0, 0, 0.8)
	const dz = 1e-5
	for _, rr := range []float64{0.5, 2, 5, 20} {
		v0 := tl.PointPotential(geom.V(rr, 0, 0), xi)
		v1 := tl.PointPotential(geom.V(rr, 0, dz), xi)
		grad := (v1 - v0) / dz
		scale := v0 / rr // characteristic potential gradient magnitude
		if math.Abs(grad) > 1e-3*math.Abs(scale) {
			t.Errorf("r=%v: surface flux %v not ≈ 0 (scale %v)", rr, grad, scale)
		}
	}
}

// TestTwoLayerInterfaceConditions checks continuity of potential and of the
// normal current density γ·∂V/∂z across the layer interface.
func TestTwoLayerInterfaceConditions(t *testing.T) {
	tl := NewTwoLayer(0.005, 0.016, 1.0)
	tl.Control = SeriesControl{Tol: 1e-12, MaxGroups: 2000}
	for _, src := range []geom.Vec3{{X: 0, Y: 0, Z: 0.8}, {X: 0, Y: 0, Z: 2.2}} {
		for _, rr := range []float64{0.7, 3, 10} {
			const eps = 1e-6
			h := tl.H
			vUp := tl.PointPotential(geom.V(rr, 0, h-eps), src)
			vDn := tl.PointPotential(geom.V(rr, 0, h+eps), src)
			if relDiff(vUp, vDn) > 1e-4 {
				t.Errorf("src=%v r=%v: potential jump %v vs %v", src, rr, vUp, vDn)
			}
			const dz = 1e-4
			gUp := (vUp - tl.PointPotential(geom.V(rr, 0, h-eps-dz), src)) / dz
			gDn := (tl.PointPotential(geom.V(rr, 0, h+eps+dz), src) - vDn) / dz
			fUp := tl.Gamma1 * gUp
			fDn := tl.Gamma2 * gDn
			scale := math.Abs(tl.Gamma1*vUp/rr) + math.Abs(fUp) + math.Abs(fDn)
			if math.Abs(fUp-fDn) > 2e-2*scale {
				t.Errorf("src=%v r=%v: flux jump γ1·%v=%v vs γ2·%v=%v", src, rr, gUp, fUp, gDn, fDn)
			}
		}
	}
}

// TestTwoLayerMatchesMultiLayer cross-validates the image-series kernels
// against the completely independent Hankel-transform evaluation.
func TestTwoLayerMatchesMultiLayer(t *testing.T) {
	tl := NewTwoLayer(0.005, 0.016, 1.0)
	tl.Control = SeriesControl{Tol: 1e-12, MaxGroups: 4000}
	ml, err := NewMultiLayer([]float64{0.005, 0.016}, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	ml.Tol = 1e-10
	cases := []struct{ x, xi geom.Vec3 }{
		{geom.V(3, 0, 0.0), geom.V(0, 0, 0.8)},  // surface observer, src layer 1
		{geom.V(1, 2, 0.5), geom.V(0, 0, 0.8)},  // both layer 1
		{geom.V(2, 0, 2.5), geom.V(0, 0, 0.8)},  // src 1 → obs 2
		{geom.V(4, 0, 3.0), geom.V(0, 0, 2.2)},  // both layer 2
		{geom.V(2, 0, 0.3), geom.V(0, 0, 2.2)},  // src 2 → obs 1
		{geom.V(10, 0, 0.0), geom.V(0, 0, 1.9)}, // surface observer, src layer 2
	}
	for _, c := range cases {
		img := tl.PointPotential(c.x, c.xi)
		hank := ml.PointPotential(c.x, c.xi)
		if relDiff(img, hank) > 5e-6 {
			t.Errorf("x=%v xi=%v: image %v vs Hankel %v (rel %v)",
				c.x, c.xi, img, hank, relDiff(img, hank))
		}
	}
}

func TestMultiLayerReducesToUniform(t *testing.T) {
	ml, err := NewMultiLayer([]float64{0.02, 0.02, 0.02}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	u := NewUniform(0.02)
	cases := []struct{ x, xi geom.Vec3 }{
		{geom.V(2, 0, 0.5), geom.V(0, 0, 0.8)},
		{geom.V(1, 1, 4), geom.V(0, 0, 2)},
		{geom.V(3, 0, 0), geom.V(0, 0, 5)},
	}
	for _, c := range cases {
		got := ml.PointPotential(c.x, c.xi)
		want := u.PointPotential(c.x, c.xi)
		if relDiff(got, want) > 1e-6 {
			t.Errorf("x=%v xi=%v: %v vs uniform %v", c.x, c.xi, got, want)
		}
	}
}

func TestThreeLayerDegenerateMatchesTwoLayer(t *testing.T) {
	// γ2 = γ3 makes the third layer invisible.
	ml, err := NewMultiLayer([]float64{0.005, 0.016, 0.016}, []float64{1.0, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTwoLayer(0.005, 0.016, 1.0)
	tl.Control = SeriesControl{Tol: 1e-12, MaxGroups: 4000}
	cases := []struct{ x, xi geom.Vec3 }{
		{geom.V(2, 0, 0), geom.V(0, 0, 0.8)},
		{geom.V(1, 0, 2.0), geom.V(0, 0, 0.5)},
		{geom.V(3, 1, 5.0), geom.V(0, 0, 4.5)},
	}
	for _, c := range cases {
		got := ml.PointPotential(c.x, c.xi)
		want := tl.PointPotential(c.x, c.xi)
		if relDiff(got, want) > 1e-5 {
			t.Errorf("x=%v xi=%v: 3-layer %v vs 2-layer %v", c.x, c.xi, got, want)
		}
	}
}

func TestThreeLayerReciprocity(t *testing.T) {
	ml, err := NewMultiLayer([]float64{0.004, 0.02, 0.008}, []float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, xi geom.Vec3 }{
		{geom.V(2, 0, 0.5), geom.V(0, 0, 2.0)}, // layers 1 and 2
		{geom.V(2, 0, 0.5), geom.V(0, 0, 4.0)}, // layers 1 and 3
		{geom.V(1, 1, 1.8), geom.V(0, 0, 5.0)}, // layers 2 and 3
		{geom.V(4, 0, 2.5), geom.V(0, 0, 1.2)}, // both layer 2
	}
	for _, c := range cases {
		a := ml.PointPotential(c.x, c.xi)
		b := ml.PointPotential(c.xi, c.x)
		if relDiff(a, b) > 1e-5 {
			t.Errorf("reciprocity: %v vs %v at %v/%v", a, b, c.x, c.xi)
		}
	}
}

func TestMultiLayerLayerOf(t *testing.T) {
	ml, err := NewMultiLayer([]float64{1, 2, 3}, []float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		z    float64
		want int
	}{{0, 1}, {0.5, 1}, {1.0, 1}, {1.5, 2}, {3.0, 2}, {3.5, 3}, {100, 3}} {
		if got := ml.LayerOf(c.z); got != c.want {
			t.Errorf("LayerOf(%v) = %d want %d", c.z, got, c.want)
		}
	}
}

func TestNewMultiLayerValidation(t *testing.T) {
	if _, err := NewMultiLayer(nil, nil); err == nil {
		t.Error("empty model accepted")
	}
	if _, err := NewMultiLayer([]float64{1, 2}, nil); err == nil {
		t.Error("missing thickness accepted")
	}
	if _, err := NewMultiLayer([]float64{1, -2}, []float64{1}); err == nil {
		t.Error("negative conductivity accepted")
	}
	if _, err := NewMultiLayer([]float64{1, 2}, []float64{0}); err == nil {
		t.Error("zero thickness accepted")
	}
	if _, err := NewMultiLayer([]float64{1, 2, 3}, []float64{1, 4}); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestImageGroupStructure(t *testing.T) {
	tl := NewTwoLayer(0.005, 0.016, 1.0)
	k := tl.K()
	imgs, ok := tl.ImageExpansion(1, 1, 3)
	if !ok {
		t.Fatal("no expansion")
	}
	// 2 primary-group images + 4 per group for groups 1..3.
	if len(imgs) != 2+4*3 {
		t.Fatalf("len = %d", len(imgs))
	}
	for _, im := range imgs {
		wantW := math.Pow(k, float64(im.Group))
		if im.Group == 0 {
			wantW = 1
		}
		if relDiff(im.Weight, wantW) > 1e-12 {
			t.Errorf("group %d weight %v want %v", im.Group, im.Weight, wantW)
		}
		if im.Sign != 1 && im.Sign != -1 {
			t.Errorf("bad sign %v", im.Sign)
		}
	}
	// Cross-layer expansions.
	imgs12, _ := tl.ImageExpansion(1, 2, 2)
	if len(imgs12) != 6 {
		t.Errorf("src1→obs2 len = %d", len(imgs12))
	}
	for _, im := range imgs12 {
		wantW := (1 + k) * math.Pow(k, float64(im.Group))
		if relDiff(im.Weight, wantW) > 1e-12 {
			t.Errorf("12 group %d weight %v want %v", im.Group, im.Weight, wantW)
		}
	}
	imgs21, _ := tl.ImageExpansion(2, 1, 2)
	for _, im := range imgs21 {
		wantW := (1 - k) * math.Pow(k, float64(im.Group))
		if relDiff(im.Weight, wantW) > 1e-12 {
			t.Errorf("21 group %d weight %v want %v", im.Group, im.Weight, wantW)
		}
	}
}

func TestImageApplySegment(t *testing.T) {
	im := Image{Sign: -1, Offset: 2, Weight: 0.5}
	s := geom.Seg(geom.V(0, 0, 0.5), geom.V(1, 0, 0.5))
	got := im.ApplySegment(s)
	if got.A != geom.V(0, 0, 1.5) || got.B != geom.V(1, 0, 1.5) {
		t.Errorf("ApplySegment = %v", got)
	}
	if got.Length() != s.Length() {
		t.Error("image changed segment length")
	}
}

func TestPotentialDecay(t *testing.T) {
	// Potential decreases monotonically with horizontal distance in every
	// model (fixed depths).
	models := []Model{
		NewUniform(0.02),
		NewTwoLayer(0.005, 0.016, 1.0),
	}
	ml, _ := NewMultiLayer([]float64{0.004, 0.02, 0.008}, []float64{1, 2})
	models = append(models, ml)
	xi := geom.V(0, 0, 0.8)
	for _, m := range models {
		prev := math.Inf(1)
		for _, r := range []float64{1, 2, 4, 8, 16, 32} {
			v := m.PointPotential(geom.V(r, 0, 0), xi)
			if v <= 0 || v >= prev {
				t.Errorf("%s: potential not decaying: V(%v)=%v prev=%v", m.Describe(), r, v, prev)
			}
			prev = v
		}
	}
}

func TestDescribe(t *testing.T) {
	for _, m := range []Model{NewUniform(0.02), NewTwoLayer(0.005, 0.016, 1)} {
		if m.Describe() == "" {
			t.Error("empty description")
		}
	}
}

func BenchmarkTwoLayerPointPotential(b *testing.B) {
	tl := NewTwoLayer(0.005, 0.016, 1.0)
	x := geom.V(3, 1, 0)
	xi := geom.V(0, 0, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tl.PointPotential(x, xi)
	}
}

func BenchmarkMultiLayerPointPotential(b *testing.B) {
	ml, _ := NewMultiLayer([]float64{0.005, 0.016}, []float64{1.0})
	x := geom.V(3, 1, 0)
	xi := geom.V(0, 0, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ml.PointPotential(x, xi)
	}
}
