package soil

import (
	"fmt"
	"math"
	"sync"

	"earthing/internal/geom"
	"earthing/internal/quad"
)

// MultiLayer is the general C-layer horizontally stratified soil model. It
// has no closed-form image expansion; PointPotential evaluates the layered-
// earth Green's function by a numeric Hankel transform
//
//	V(r, z) = 1/(4πγ_b) · ( 1/R + ∫₀^∞ φ_c(λ, z) · J0(λr) dλ )
//
// where the secondary kernel φ_c is obtained for each λ by solving the
// small linear system expressing the surface condition and the continuity
// of potential and normal current across every interface. This realizes the
// paper's statement (§4.2) that the BEM formulation "can be applied to any
// other case with a higher number of layers" at growing cost: each kernel
// evaluation is far more expensive than an image-series term.
type MultiLayer struct {
	gammas []float64 // conductivity per layer, top first
	depths []float64 // interface depths, increasing; len = C−1
	// Tol is the Hankel-integral tolerance (default 1e-8).
	Tol float64
	// MaxIntervals bounds the oscillatory integrator (default 4000).
	MaxIntervals int

	// Cached top-layer image expansion (built on first use).
	expMu       sync.Mutex
	gammaSeries expSeries
	gammaPow    expSeries
	imgCache    [][]Image
}

// NewMultiLayer builds a model from per-layer conductivities (top first) and
// layer thicknesses (all but the last, infinite, layer). It returns an error
// for non-positive conductivities or thicknesses.
func NewMultiLayer(gammas, thicknesses []float64) (*MultiLayer, error) {
	if len(gammas) < 1 {
		return nil, fmt.Errorf("soil: need at least one layer")
	}
	if len(thicknesses) != len(gammas)-1 {
		return nil, fmt.Errorf("soil: %d layers need %d thicknesses, got %d",
			len(gammas), len(gammas)-1, len(thicknesses))
	}
	for i, g := range gammas {
		if g <= 0 || math.IsNaN(g) {
			return nil, fmt.Errorf("soil: layer %d conductivity %g must be positive", i+1, g)
		}
	}
	depths := make([]float64, len(thicknesses))
	z := 0.0
	for i, t := range thicknesses {
		if t <= 0 || math.IsNaN(t) {
			return nil, fmt.Errorf("soil: layer %d thickness %g must be positive", i+1, t)
		}
		z += t
		depths[i] = z
	}
	g := make([]float64, len(gammas))
	copy(g, gammas)
	return &MultiLayer{gammas: g, depths: depths}, nil
}

// NumLayers implements Model.
func (m *MultiLayer) NumLayers() int { return len(m.gammas) }

// LayerOf implements Model; interface depths belong to the upper layer.
func (m *MultiLayer) LayerOf(z float64) int {
	for i, d := range m.depths {
		if z <= d {
			return i + 1
		}
	}
	return len(m.gammas)
}

// Conductivity implements Model.
func (m *MultiLayer) Conductivity(layer int) float64 {
	if layer < 1 || layer > len(m.gammas) {
		panic(fmt.Sprintf("soil: model has no layer %d", layer))
	}
	return m.gammas[layer-1]
}

// ImageExpansion implements Model. For a source and observer both in the
// top layer it expands the recursive reflection coefficient Γ_1(λ) into an
// exponential series and returns the resulting real images — the "double
// series" (three layers), "triple series" (four layers), … of §4.2. Group n
// collects the images of the Γⁿ ladder rung, so the assembler's group-wise
// tolerance truncation applies unchanged. Other layer pairs return
// ok = false and callers fall back to the Hankel-transform kernel.
func (m *MultiLayer) ImageExpansion(src, obs, maxGroup int) ([]Image, bool) {
	if len(m.gammas) == 1 {
		return Uniform{Gamma: m.gammas[0]}.ImageExpansion(src, obs, maxGroup)
	}
	if src != 1 || obs != 1 {
		return nil, false
	}
	m.expandOnce(maxGroup)
	if maxGroup >= len(m.imgCache) {
		maxGroup = len(m.imgCache) - 1
	}
	var out []Image
	for g := 0; g <= maxGroup; g++ {
		out = append(out, m.imgCache[g]...)
	}
	return out, true
}

// expandOnce builds (and caches) the image groups up to maxGroup.
func (m *MultiLayer) expandOnce(maxGroup int) {
	m.expMu.Lock()
	defer m.expMu.Unlock()
	if len(m.imgCache) > maxGroup && len(m.imgCache) > 0 {
		return
	}
	const (
		pruneTol = 1e-10
		maxPow   = 64
	)
	total := m.depths[len(m.depths)-1]
	maxDepth := 400 * (total + 1)
	if m.gammaSeries.c == nil {
		thick := make([]float64, len(m.depths))
		prev := 0.0
		for i, d := range m.depths {
			thick[i] = d - prev
			prev = d
		}
		m.gammaSeries = reflectionSeries(m.gammas, thick, pruneTol, maxDepth, maxPow)
	}
	h1 := m.depths[0]

	// Group 0: primary + surface image.
	if len(m.imgCache) == 0 {
		m.imgCache = append(m.imgCache, []Image{
			{Sign: +1, Offset: 0, Weight: 1, Group: 0},
			{Sign: -1, Offset: 0, Weight: 1, Group: 0},
		})
		m.gammaPow = newExpConst(1)
	}
	for n := len(m.imgCache); n <= maxGroup; n++ {
		m.gammaPow = m.gammaPow.mul(m.gammaSeries).prune(pruneTol, maxDepth)
		if len(m.gammaPow.c) == 0 {
			break
		}
		var grp []Image
		base := 2 * float64(n) * h1
		for i, w := range m.gammaPow.c {
			off := base + m.gammaPow.d[i]
			grp = append(grp,
				Image{Sign: +1, Offset: +off, Weight: w, Group: n},
				Image{Sign: +1, Offset: -off, Weight: w, Group: n},
				Image{Sign: -1, Offset: +off, Weight: w, Group: n},
				Image{Sign: -1, Offset: -off, Weight: w, Group: n},
			)
		}
		m.imgCache = append(m.imgCache, grp)
	}
}

// Describe implements Model.
func (m *MultiLayer) Describe() string {
	return fmt.Sprintf("%d-layer soil (Hankel), γ = %v, interfaces at %v m",
		len(m.gammas), m.gammas, m.depths)
}

// layerBounds returns the [top, bottom] depths of 1-based layer i, with
// +Inf for the bottom of the last layer.
func (m *MultiLayer) layerBounds(i int) (top, bottom float64) {
	if i == 1 {
		top = 0
	} else {
		top = m.depths[i-2]
	}
	if i == len(m.gammas) {
		bottom = math.Inf(1)
	} else {
		bottom = m.depths[i-1]
	}
	return top, bottom
}

// PointPotential implements Model.
func (m *MultiLayer) PointPotential(x, xi geom.Vec3) float64 {
	c := len(m.gammas)
	if c == 1 {
		return Uniform{Gamma: m.gammas[0]}.PointPotential(x, xi)
	}
	d := xi.Z
	// Nudge a source sitting exactly on an interface into its layer so the
	// primary-field derivative at the interface is well defined.
	for _, zj := range m.depths {
		if eps := 1e-9 * (1 + zj); math.Abs(d-zj) < eps {
			d = zj - eps
			break
		}
	}
	z := x.Z
	r := x.HorizontalDist(xi)
	srcLayer := m.LayerOf(d)
	obsLayer := m.LayerOf(z)
	gb := m.gammas[srcLayer-1]

	tol := m.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	maxIv := m.MaxIntervals
	if maxIv <= 0 {
		maxIv = 4000
	}

	sec, err := quad.SemiInfinite(func(lambda float64) float64 {
		return m.secondaryKernel(lambda, z, d, srcLayer, obsLayer) * math.J0(lambda*r)
	}, m.cuts(r, z, d), tol, maxIv)
	if err != nil {
		// Return the best estimate; the engine treats kernel noise at the
		// integration tolerance as acceptable. NaN would poison the matrix,
		// so keep the partial value.
		//lint:ignore errdrop quadrature non-convergence keeps the partial value by design; see the comment above
		_ = err
	}
	return (1/x.Dist(xi) + sec) / (4 * math.Pi * gb)
}

// cuts builds the integration break points: interval widths start small
// enough to resolve the fastest-decaying exponential component and grow
// geometrically, capped by the J0(λr) half-oscillation π/r.
func (m *MultiLayer) cuts(r, z, d float64) func(k int) float64 {
	total := 0.0
	if n := len(m.depths); n > 0 {
		total = m.depths[n-1]
	}
	deltaMax := z + d + 2*total + r
	if deltaMax < 1e-3 {
		deltaMax = 1e-3
	}
	w0 := 2 / deltaMax
	wOsc := math.Inf(1)
	if r > 0 {
		wOsc = math.Pi / r
	}
	// Memoized cumulative cut positions.
	cum := []float64{0}
	return func(k int) float64 {
		for len(cum) <= k {
			i := len(cum) - 1
			w := w0 * math.Pow(1.5, float64(i))
			if w > wOsc {
				w = wOsc
			}
			cum = append(cum, cum[i]+w)
		}
		return cum[k]
	}
}

// secondaryKernel solves the per-λ transfer problem and evaluates the
// secondary (reflected) potential transform φ_obs(λ, z).
//
// In layer i ∈ [z_{i−1}, z_i] the secondary field is expanded in the locally
// scaled basis
//
//	φ_i(z) = a_i·e^{−λ(z−z_{i−1})} + b_i·e^{−λ(z_i−z)}
//
// (b_C ≡ 0 in the infinite bottom layer), so every matrix entry stays in
// (0, 1] and the solve is stable at large λ·h. The primary e^{−λ|z−d|} is
// carried in all layers, so the interface rows only balance the flux jump
// (γ_{i+1}−γ_i)·P′.
func (m *MultiLayer) secondaryKernel(lambda, z, d float64, srcLayer, obsLayer int) float64 {
	c := len(m.gammas)
	n := 2*c - 1 // unknowns a_1,b_1,…,a_{C−1},b_{C−1},a_C
	// Column index helpers.
	ai := func(i int) int { return 2 * (i - 1) }
	bi := func(i int) int { return 2*(i-1) + 1 }

	// E_i = e^{−λ·t_i} for finite layers.
	e := make([]float64, c) // e[i-1] for layer i; last layer unused
	for i := 1; i < c; i++ {
		top, bot := m.layerBounds(i)
		e[i-1] = math.Exp(-lambda * (bot - top))
	}

	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n+1)
	}
	row := 0
	// Surface: −a_1 + E_1·b_1 = −e^{−λd}.
	a[row][ai(1)] = -1
	if c > 1 {
		a[row][bi(1)] = e[0]
	}
	a[row][n] = -math.Exp(-lambda * d)
	row++
	for j := 1; j < c; j++ {
		zj := m.depths[j-1]
		gj, gj1 := m.gammas[j-1], m.gammas[j]
		// Value continuity: a_j·E_j + b_j − a_{j+1} − b_{j+1}·E_{j+1} = 0.
		a[row][ai(j)] = e[j-1]
		a[row][bi(j)] = 1
		a[row][ai(j+1)] = -1
		if j+1 < c {
			a[row][bi(j+1)] = -e[j]
		}
		row++
		// Flux: γ_j(−a_j·E_j + b_j) − γ_{j+1}(−a_{j+1} + b_{j+1}·E_{j+1})
		//       = (γ_{j+1}−γ_j)·(−sign(z_j−d)·e^{−λ|z_j−d|}).
		a[row][ai(j)] = -gj * e[j-1]
		a[row][bi(j)] = gj
		a[row][ai(j+1)] = gj1
		if j+1 < c {
			a[row][bi(j+1)] = -gj1 * e[j]
		}
		sign := 1.0
		if zj < d {
			sign = -1
		}
		a[row][n] = (gj1 - gj) * (-sign * math.Exp(-lambda*math.Abs(zj-d)))
		row++
	}

	u := solveDense(a)

	top, bot := m.layerBounds(obsLayer)
	phi := u[ai(obsLayer)] * math.Exp(-lambda*(z-top))
	if obsLayer < c {
		phi += u[bi(obsLayer)] * math.Exp(-lambda*(bot-z))
	}
	return phi
}

// solveDense performs in-place Gaussian elimination with partial pivoting on
// the augmented system a (n rows, n+1 columns) and returns the solution.
func solveDense(a [][]float64) []float64 {
	n := len(a)
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		piv := a[col][col]
		if piv == 0 {
			// Singular system; return zeros rather than NaNs (the secondary
			// field vanishes in the degenerate λ → limit cases).
			return make([]float64, n)
		}
		inv := 1 / piv
		for r := 0; r < n; r++ {
			if r == col || a[r][col] == 0 {
				continue
			}
			f := a[r][col] * inv
			for k := col; k <= n; k++ {
				a[r][k] -= f * a[col][k]
			}
		}
	}
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = a[i][n] / a[i][i]
	}
	return x
}
