package soil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"earthing/internal/geom"
)

// randThreeLayer draws random physically plausible three-layer models.
func randThreeLayer(r *rand.Rand) *MultiLayer {
	rho := func() float64 {
		return math.Exp(math.Log(10) + r.Float64()*(math.Log(1000)-math.Log(10)))
	}
	m, err := NewMultiLayer(
		[]float64{1 / rho(), 1 / rho(), 1 / rho()},
		[]float64{0.5 + r.Float64()*2, 0.5 + r.Float64()*3},
	)
	if err != nil {
		panic(err)
	}
	m.Tol = 1e-9
	return m
}

// TestQuickThreeLayerImagesMatchHankel: for random three-layer models and
// random top-layer point pairs, the double-series image expansion and the
// Hankel evaluation agree.
func TestQuickThreeLayerImagesMatchHankel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randThreeLayer(r)
		h1 := m.depths[0]
		xi := geom.V(0, 0, 0.1+r.Float64()*0.8*h1)
		x := geom.V(0.5+r.Float64()*8, r.Float64()*4, r.Float64()*0.9*h1)
		if x.Dist(xi) < 0.3 {
			return true
		}
		img, ok := sumImages(m, x, xi, 300)
		if !ok {
			return false
		}
		hank := m.PointPotential(x, xi)
		return math.Abs(img-hank) <= 2e-4*(1+math.Abs(hank))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickThreeLayerReciprocity: the Hankel kernel satisfies G(x,ξ)=G(ξ,x)
// for random models and cross-layer pairs.
func TestQuickThreeLayerReciprocity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randThreeLayer(r)
		total := m.depths[1]
		x := geom.V(r.Float64()*6, r.Float64()*6, r.Float64()*1.5*total)
		xi := geom.V(r.Float64()*6, 0, 0.05+r.Float64()*1.5*total)
		if x.Dist(xi) < 0.3 {
			return true
		}
		a := m.PointPotential(x, xi)
		b := m.PointPotential(xi, x)
		return math.Abs(a-b) <= 1e-4*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
