package soil

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"earthing/internal/geom"
)

// randTwoLayer draws physically plausible random two-layer models.
func randTwoLayer(r *rand.Rand) *TwoLayer {
	// Resistivities 5..2000 Ω·m, thickness 0.3..8 m.
	rho1 := math.Exp(math.Log(5) + r.Float64()*(math.Log(2000)-math.Log(5)))
	rho2 := math.Exp(math.Log(5) + r.Float64()*(math.Log(2000)-math.Log(5)))
	h := 0.3 + r.Float64()*7.7
	return NewTwoLayer(1/rho1, 1/rho2, h)
}

// TestQuickTwoLayerReciprocity: G(x, ξ) = G(ξ, x) for random models and
// random point pairs across all layer combinations.
func TestQuickTwoLayerReciprocity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randTwoLayer(r)
		m.Control = SeriesControl{Tol: 1e-11, MaxGroups: 4000}
		x := geom.V(r.Float64()*10-5, r.Float64()*10-5, r.Float64()*2*m.H)
		xi := geom.V(r.Float64()*10-5, r.Float64()*10-5, 0.05+r.Float64()*2*m.H)
		if x.Dist(xi) < 0.2 {
			return true
		}
		a := m.PointPotential(x, xi)
		b := m.PointPotential(xi, x)
		return math.Abs(a-b) <= 1e-6*(1+math.Abs(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickTwoLayerPositivity: the potential of a positive point source is
// positive everywhere in the ground.
func TestQuickTwoLayerPositivity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randTwoLayer(r)
		xi := geom.V(0, 0, 0.05+r.Float64()*2*m.H)
		x := geom.V(r.Float64()*30-15, r.Float64()*30-15, r.Float64()*3*m.H)
		if x.Dist(xi) < 0.05 {
			return true
		}
		return m.PointPotential(x, xi) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickTwoLayerBracketedByHomogeneous: the layered potential at the
// source's layer lies between the two homogeneous potentials computed with
// γ1 and γ2 at very short range (where the local layer dominates).
func TestQuickTwoLayerLocalLimit(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randTwoLayer(r)
		// Deep in layer 1, short range: behaves like uniform γ1 with the
		// remote boundaries a small correction.
		d := m.H / 2
		xi := geom.V(0, 0, d)
		x := geom.V(m.H/50, 0, d)
		got := m.PointPotential(x, xi)
		// Uniform full-space potential at that distance (no surface image).
		fullspace := 1 / (4 * math.Pi * m.Gamma1 * x.Dist(xi))
		// The correction from surface/interface is bounded by ~1/(4πγ1·h);
		// at range h/50 it is ≤ a few % of the primary.
		return math.Abs(got-fullspace) <= 0.25*fullspace
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickImageWeightsSumRule: the total image weight of the src=obs=1
// expansion controls the far-field: Σ w_l must equal the weight that makes
// V ~ (1+…)/4πγ1·(effective) consistent with charge conservation. For the
// two-layer case the closed form is Σ = 2·(1+K+K²+…)·(1+K)…; rather than a
// brittle closed form, verify the expansion reproduces the kernel at a far
// point to high accuracy — the integral test of all weights at once.
func TestQuickImageExpansionFarField(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randTwoLayer(r)
		if math.Abs(m.K()) > 0.95 {
			return true // pathological contrast: series too slow for a quick test
		}
		m.Control = SeriesControl{Tol: 1e-12, MaxGroups: 3000}
		xi := geom.V(0, 0, 0.4*m.H)
		x := geom.V(40*m.H, 0, 0.2*m.H)
		imgs, ok := m.ImageExpansion(1, 1, 3000)
		if !ok {
			return false
		}
		var sum float64
		for _, im := range imgs {
			sum += im.Weight / x.Dist(im.Apply(xi))
		}
		direct := sum / (4 * math.Pi * m.Gamma1)
		return math.Abs(direct-m.PointPotential(x, xi)) <= 1e-9*(1+direct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
