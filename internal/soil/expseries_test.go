package soil

import (
	"math"
	"testing"

	"earthing/internal/geom"
)

func TestExpSeriesAlgebra(t *testing.T) {
	a := expSeries{c: []float64{2, 3}, d: []float64{0, 1}}
	b := expSeries{c: []float64{0.5}, d: []float64{2}}
	// (2 + 3e^{−λ})·(0.5e^{−2λ}) = e^{−2λ} + 1.5e^{−3λ}.
	p := a.mul(b)
	for _, lambda := range []float64{0, 0.3, 1, 2.5} {
		want := a.eval(lambda) * b.eval(lambda)
		if math.Abs(p.eval(lambda)-want) > 1e-14*(1+math.Abs(want)) {
			t.Errorf("mul at λ=%v: %v want %v", lambda, p.eval(lambda), want)
		}
	}
	s := a.add(b)
	if got, want := s.eval(0.7), a.eval(0.7)+b.eval(0.7); math.Abs(got-want) > 1e-14 {
		t.Errorf("add: %v want %v", got, want)
	}
	sc := a.scale(-2)
	if got := sc.eval(0.5); math.Abs(got+2*a.eval(0.5)) > 1e-14 {
		t.Errorf("scale: %v", got)
	}
	sh := a.shift(3)
	if got, want := sh.eval(1), math.Exp(-3)*a.eval(1); math.Abs(got-want) > 1e-14 {
		t.Errorf("shift: %v want %v", got, want)
	}
}

func TestExpSeriesMergeAndPrune(t *testing.T) {
	// Equal depths merge; cancellation drops terms.
	s := mergeTerms([]float64{1, 2, -3}, []float64{1, 1, 1})
	if len(s.c) != 0 {
		t.Errorf("cancellation not dropped: %+v", s)
	}
	s = mergeTerms([]float64{1, 2}, []float64{2, 1})
	if len(s.c) != 2 || s.d[0] != 1 || s.c[0] != 2 {
		t.Errorf("sort/merge wrong: %+v", s)
	}
	p := expSeries{c: []float64{1, 1e-15, 0.5}, d: []float64{0, 1, 500}}.prune(1e-12, 100)
	if len(p.c) != 1 || p.c[0] != 1 {
		t.Errorf("prune wrong: %+v", p)
	}
}

func TestGeometricInverse(t *testing.T) {
	// 1/(1 + 0.5e^{−λ}) over a λ range.
	s := expSeries{c: []float64{0.5}, d: []float64{1}}
	inv := s.geometricInverse(1e-14, 100, 128)
	for _, lambda := range []float64{0.01, 0.1, 0.5, 1, 3} {
		want := 1 / (1 + s.eval(lambda))
		if got := inv.eval(lambda); math.Abs(got-want) > 1e-10 {
			t.Errorf("λ=%v: %v want %v", lambda, got, want)
		}
	}
}

// TestReflectionSeriesTwoLayer checks Γ_1 of a two-layer medium is the
// constant K12.
func TestReflectionSeriesTwoLayer(t *testing.T) {
	g := reflectionSeries([]float64{0.005, 0.016}, []float64{1.0}, 1e-12, 1e6, 64)
	k := (0.005 - 0.016) / (0.005 + 0.016)
	if len(g.c) != 1 || math.Abs(g.c[0]-k) > 1e-14 || g.d[0] != 0 {
		t.Errorf("two-layer Γ = %+v, want constant %v", g, k)
	}
}

// TestReflectionSeriesThreeLayer checks the expansion against the exact
// rational form Γ = (K12 + K23·x)/(1 + K12·K23·x), x = e^{−2λt2}.
func TestReflectionSeriesThreeLayer(t *testing.T) {
	gammas := []float64{0.004, 0.02, 0.008}
	thick := []float64{1.0, 2.0}
	g := reflectionSeries(gammas, thick, 1e-13, 1e6, 128)
	k12 := (gammas[0] - gammas[1]) / (gammas[0] + gammas[1])
	k23 := (gammas[1] - gammas[2]) / (gammas[1] + gammas[2])
	for _, lambda := range []float64{0.05, 0.2, 0.7, 2, 5} {
		x := math.Exp(-2 * lambda * thick[1])
		want := (k12 + k23*x) / (1 + k12*k23*x)
		if got := g.eval(lambda); math.Abs(got-want) > 1e-9 {
			t.Errorf("λ=%v: Γ = %v want %v", lambda, got, want)
		}
	}
}

// TestReflectionSeriesFourLayer validates the triple-series case against a
// direct numeric evaluation of the recursion.
func TestReflectionSeriesFourLayer(t *testing.T) {
	gammas := []float64{0.004, 0.02, 0.002, 0.05}
	thick := []float64{0.8, 1.5, 3.0}
	g := reflectionSeries(gammas, thick, 1e-12, 1e6, 128)
	exact := func(lambda float64) float64 {
		k := func(j int) float64 { return (gammas[j-1] - gammas[j]) / (gammas[j-1] + gammas[j]) }
		gam := k(3)
		for j := 2; j >= 1; j-- {
			x := gam * math.Exp(-2*lambda*thick[j])
			gam = (k(j) + x) / (1 + k(j)*x)
		}
		return gam
	}
	for _, lambda := range []float64{0.1, 0.4, 1, 3} {
		want := exact(lambda)
		if got := g.eval(lambda); math.Abs(got-want) > 1e-8 {
			t.Errorf("λ=%v: Γ = %v want %v", lambda, got, want)
		}
	}
}

// sumImages evaluates the image expansion of a model directly, for
// cross-validation against the Hankel-based PointPotential.
func sumImages(m Model, x, xi geom.Vec3, maxGroup int) (float64, bool) {
	imgs, ok := m.ImageExpansion(m.LayerOf(xi.Z), m.LayerOf(x.Z), maxGroup)
	if !ok {
		return 0, false
	}
	var sum float64
	for _, im := range imgs {
		sum += im.Weight / x.Dist(im.Apply(xi))
	}
	return sum / (4 * math.Pi * m.Conductivity(m.LayerOf(xi.Z))), true
}

// TestMultiLayerImagesMatchTwoLayer: for C = 2 the generic expansion must
// reproduce the closed-form TwoLayer images.
func TestMultiLayerImagesMatchTwoLayer(t *testing.T) {
	ml, err := NewMultiLayer([]float64{0.005, 0.016}, []float64{1.0})
	if err != nil {
		t.Fatal(err)
	}
	tl := NewTwoLayer(0.005, 0.016, 1.0)
	x := geom.V(3, 0, 0.4)
	xi := geom.V(0, 0, 0.8)
	vm, ok := sumImages(ml, x, xi, 60)
	if !ok {
		t.Fatal("no expansion for 2-layer MultiLayer (1,1)")
	}
	vt, _ := sumImages(tl, x, xi, 60)
	if math.Abs(vm-vt) > 1e-10*(1+math.Abs(vt)) {
		t.Errorf("generic images %v vs two-layer images %v", vm, vt)
	}
}

// TestThreeLayerImagesMatchHankel cross-validates the double-series image
// expansion against the independent Hankel evaluation, for source and
// observer in the top layer.
func TestThreeLayerImagesMatchHankel(t *testing.T) {
	ml, err := NewMultiLayer([]float64{0.004, 0.02, 0.008}, []float64{1.0, 2.0})
	if err != nil {
		t.Fatal(err)
	}
	ml.Tol = 1e-10
	cases := []struct{ x, xi geom.Vec3 }{
		{geom.V(2, 0, 0.0), geom.V(0, 0, 0.8)},
		{geom.V(0.7, 0.5, 0.5), geom.V(0, 0, 0.3)},
		{geom.V(8, 0, 0.9), geom.V(0, 0, 0.8)},
		{geom.V(20, 0, 0.0), geom.V(0, 0, 0.5)},
	}
	for _, c := range cases {
		img, ok := sumImages(ml, c.x, c.xi, 200)
		if !ok {
			t.Fatal("no top-layer expansion for 3-layer model")
		}
		hank := ml.PointPotential(c.x, c.xi)
		if rel := math.Abs(img-hank) / (1 + math.Abs(hank)); rel > 1e-5 {
			t.Errorf("x=%v xi=%v: images %v vs Hankel %v (rel %v)", c.x, c.xi, img, hank, rel)
		}
	}
	// Non-top-layer pairs have no expansion.
	if _, ok := ml.ImageExpansion(2, 1, 10); ok {
		t.Error("unexpected expansion for (2,1)")
	}
	if _, ok := ml.ImageExpansion(1, 2, 10); ok {
		t.Error("unexpected expansion for (1,2)")
	}
}

// TestFourLayerImagesMatchHankel extends the cross-validation to the
// "triple series" four-layer case.
func TestFourLayerImagesMatchHankel(t *testing.T) {
	ml, err := NewMultiLayer([]float64{0.004, 0.02, 0.002, 0.05}, []float64{0.9, 1.5, 3.0})
	if err != nil {
		t.Fatal(err)
	}
	ml.Tol = 1e-10
	x := geom.V(3, 0, 0.2)
	xi := geom.V(0, 0, 0.7)
	img, ok := sumImages(ml, x, xi, 200)
	if !ok {
		t.Fatal("no expansion")
	}
	hank := ml.PointPotential(x, xi)
	if rel := math.Abs(img-hank) / (1 + math.Abs(hank)); rel > 5e-5 {
		t.Errorf("images %v vs Hankel %v (rel %v)", img, hank, rel)
	}
}
