// Package soil implements the layered-earth Green's functions (integral
// kernels) of the grounding formulation: the uniform (single-layer) model,
// the two-layer model via infinite image series (eq. 3.2 of the paper), and
// a general N-layer model evaluated by numeric Hankel transforms.
//
// Conventions: z is depth, positive downwards, z = 0 on the earth surface.
// Layer 1 is the top layer. Conductivities are in (Ω·m)⁻¹, matching the
// units used in the paper's examples.
//
// All models expose the potential produced by a unit point current source;
// the BEM layer (package bem) integrates these kernels over electrode
// segments, analytically when an image expansion exists and by quadrature
// otherwise.
package soil

import "earthing/internal/geom"

// Image is one term of a method-of-images expansion. The image of a source
// point ξ = (x, y, z) is ξ' = (x, y, Sign·z + Offset), and it contributes
// Weight/r(x, ξ') to the kernel series (eq. 3.2: ψ_l / r(x, ξ_l)).
//
// Because reflections across horizontal planes are affine in z only, the
// image of a straight electrode segment is again a straight segment, which
// is what allows closed-form inner integrals in the BEM.
type Image struct {
	Sign   float64 // +1 (translation) or −1 (reflection)
	Offset float64 // added to Sign·z
	Weight float64 // series weight ψ_l
	Group  int     // series group index n (0 = primary + surface image)
}

// Apply maps a source point to this image's location.
func (im Image) Apply(p geom.Vec3) geom.Vec3 {
	return geom.Vec3{X: p.X, Y: p.Y, Z: im.Sign*p.Z + im.Offset}
}

// ApplySegment maps a source segment to its image segment.
func (im Image) ApplySegment(s geom.Segment) geom.Segment {
	return geom.Segment{A: im.Apply(s.A), B: im.Apply(s.B)}
}

// Model describes a horizontally stratified soil and its point-source
// Green's function.
type Model interface {
	// NumLayers returns the number of horizontal layers C ≥ 1.
	NumLayers() int

	// LayerOf returns the 1-based index of the layer containing depth z.
	// Points above the surface (z < 0) report layer 1; interface depths
	// belong to the upper layer.
	LayerOf(z float64) int

	// Conductivity returns γ_c of layer c (1-based) in (Ω·m)⁻¹.
	Conductivity(layer int) float64

	// ImageExpansion returns all images of groups 0..maxGroup for a source
	// in layer src observed in layer obs, and ok = true, when the model has
	// a closed-form image representation. The kernel is then
	//
	//	V(x) = 1/(4π·γ_src) · Σ Weight_l / r(x, ξ_l)
	//
	// Models without an image form (N ≥ 3 layers) return ok = false and
	// callers must fall back to PointPotential quadrature.
	ImageExpansion(src, obs, maxGroup int) (images []Image, ok bool)

	// PointPotential returns the potential (in volts) at x produced by a
	// unit (1 A) point current source at xi. Both points must be in the
	// ground (z ≥ 0).
	PointPotential(x, xi geom.Vec3) float64

	// Describe returns a short human-readable description of the model.
	Describe() string
}

// SeriesControl bounds the truncation of infinite kernel series. The zero
// value selects the defaults below.
type SeriesControl struct {
	// Tol stops summation once a whole group contributes less than
	// Tol·|sum| for two consecutive groups. Default 1e-9.
	Tol float64
	// MaxGroups is the hard cap on series groups. Default 512.
	MaxGroups int
}

// withDefaults fills in unset fields.
func (c SeriesControl) withDefaults() SeriesControl {
	if c.Tol <= 0 {
		c.Tol = 1e-9
	}
	if c.MaxGroups <= 0 {
		c.MaxGroups = 512
	}
	return c
}
