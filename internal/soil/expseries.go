package soil

import (
	"math"
	"sort"

	"earthing/internal/quad"
)

// expSeries represents a finite sum Σ_k c_k·e^{−λ·d_k} with real
// coefficients and non-negative decay depths, the algebra in which the
// recursive layered-earth reflection coefficient
//
//	Γ_j(λ) = (K_j + Γ_{j+1}·e^{−2λt_{j+1}}) / (1 + K_j·Γ_{j+1}·e^{−2λt_{j+1}})
//
// is expanded. Each product of exponentials adds depths, so the expansion of
// Γ_1 over C layers is the (C−1)-fold nested series the paper describes in
// §4.2 ("double series in three-layer models, triple series in four-layer
// models, and so on"); every term becomes a classical image at a real depth.
type expSeries struct {
	c []float64 // coefficients
	d []float64 // decay depths, sorted ascending, deduplicated
}

// expTermLimit caps the term count after pruning; series beyond it keep the
// largest-|c| terms. It bounds the work for extreme layer contrasts.
const expTermLimit = 4096

// newExpConst returns the constant series c·e^{−λ·0}.
func newExpConst(c float64) expSeries {
	if c == 0 {
		return expSeries{}
	}
	return expSeries{c: []float64{c}, d: []float64{0}}
}

// shift returns the series multiplied by e^{−λ·depth}.
func (s expSeries) shift(depth float64) expSeries {
	out := expSeries{c: append([]float64(nil), s.c...), d: make([]float64, len(s.d))}
	for i, di := range s.d {
		out.d[i] = di + depth
	}
	return out
}

// scale returns f·s.
func (s expSeries) scale(f float64) expSeries {
	out := expSeries{c: make([]float64, len(s.c)), d: append([]float64(nil), s.d...)}
	for i, ci := range s.c {
		out.c[i] = f * ci
	}
	return out
}

// add returns s + t with like depths merged.
func (s expSeries) add(t expSeries) expSeries {
	return mergeTerms(append(append([]float64(nil), s.c...), t.c...),
		append(append([]float64(nil), s.d...), t.d...))
}

// mul returns the product s·t (depths add, coefficients multiply).
func (s expSeries) mul(t expSeries) expSeries {
	c := make([]float64, 0, len(s.c)*len(t.c))
	d := make([]float64, 0, len(s.c)*len(t.c))
	for i := range s.c {
		for j := range t.c {
			c = append(c, s.c[i]*t.c[j])
			d = append(d, s.d[i]+t.d[j])
		}
	}
	return mergeTerms(c, d)
}

// mergeTerms sorts by depth, merges equal depths and drops zero terms.
func mergeTerms(c, d []float64) expSeries {
	idx := make([]int, len(c))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d[idx[a]] < d[idx[b]] })
	var out expSeries
	const depthTol = 1e-12
	for _, i := range idx {
		if n := len(out.d); n > 0 && math.Abs(out.d[n-1]-d[i]) <= depthTol*(1+d[i]) {
			out.c[n-1] += c[i]
			continue
		}
		out.c = append(out.c, c[i])
		out.d = append(out.d, d[i])
	}
	// Drop exact zeros produced by cancellation.
	w := 0
	for i := range out.c {
		if out.c[i] != 0 {
			out.c[w], out.d[w] = out.c[i], out.d[i]
			w++
		}
	}
	out.c, out.d = out.c[:w], out.d[:w]
	return out
}

// prune removes terms with |c| < tol·max|c| or depth > maxDepth, then caps
// the term count at expTermLimit keeping the largest coefficients.
func (s expSeries) prune(tol, maxDepth float64) expSeries {
	var cmax float64
	for _, ci := range s.c {
		if a := math.Abs(ci); a > cmax {
			cmax = a
		}
	}
	var out expSeries
	for i, ci := range s.c {
		if math.Abs(ci) >= tol*cmax && s.d[i] <= maxDepth {
			out.c = append(out.c, ci)
			out.d = append(out.d, s.d[i])
		}
	}
	if len(out.c) > expTermLimit {
		idx := make([]int, len(out.c))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return math.Abs(out.c[idx[a]]) > math.Abs(out.c[idx[b]])
		})
		idx = idx[:expTermLimit]
		sort.Ints(idx)
		c := make([]float64, len(idx))
		d := make([]float64, len(idx))
		for k, i := range idx {
			c[k], d[k] = out.c[i], out.d[i]
		}
		out = expSeries{c: c, d: d}
	}
	return out
}

// eval evaluates the series at λ (for tests and cross-validation).
func (s expSeries) eval(lambda float64) float64 {
	var sum quad.KahanSum
	for i, ci := range s.c {
		sum.Add(ci * math.Exp(-lambda*s.d[i]))
	}
	return sum.Sum()
}

// geometricInverse computes 1/(1 + s) as Σ_k (−s)^k, requiring the series
// to have no constant term with |c| ≥ 1 (true for physical reflection
// products, which carry at least one e^{−2λt} factor). Terms are pruned
// with (tol, maxDepth) after each power; the expansion stops when the next
// power contributes nothing after pruning or maxPow is reached.
func (s expSeries) geometricInverse(tol, maxDepth float64, maxPow int) expSeries {
	out := newExpConst(1)
	pow := newExpConst(1)
	for k := 1; k <= maxPow; k++ {
		pow = pow.mul(s.scale(-1)).prune(tol, maxDepth)
		if len(pow.c) == 0 {
			break
		}
		out = out.add(pow)
	}
	return out.prune(tol, maxDepth)
}

// reflectionSeries expands the recursive reflection coefficient Γ_1(λ) of a
// layered halfspace into an exponential series. gammas are the layer
// conductivities (top first), thicknesses the finite-layer thicknesses.
// tol and maxDepth prune the expansion; maxPow bounds the geometric
// inversions.
func reflectionSeries(gammas, thicknesses []float64, tol, maxDepth float64, maxPow int) expSeries {
	c := len(gammas)
	// Γ_{C−1} is the constant reflection at the deepest interface.
	k := func(j int) float64 { // K_{j,j+1}, 1-based j
		return (gammas[j-1] - gammas[j]) / (gammas[j-1] + gammas[j])
	}
	gamma := newExpConst(k(c - 1))
	for j := c - 2; j >= 1; j-- {
		// X = Γ_{j+1}·e^{−2λ·t_{j+1}}.
		x := gamma.shift(2*thicknesses[j]).prune(tol, maxDepth)
		kj := k(j)
		num := newExpConst(kj).add(x)
		den := x.scale(kj) // (1 + K_j·X) − 1
		gamma = num.mul(den.geometricInverse(tol, maxDepth, maxPow)).prune(tol, maxDepth)
	}
	return gamma
}
