package soil

import (
	"fmt"
	"strings"
)

// Parameterized is implemented by models whose result-affecting state is a
// flat list of per-layer conductivities plus interface depths. The sweep
// engine uses it to deduplicate identical models and to detect proportional
// ones (see Proportional); all three concrete models implement it.
type Parameterized interface {
	// LayerParameters returns the conductivities per layer (top first, in
	// (Ω·m)⁻¹) and the interface depths (increasing, len = layers − 1).
	// The returned slices must not be mutated.
	LayerParameters() (gammas, depths []float64)
}

// LayerParameters implements Parameterized.
func (u Uniform) LayerParameters() (gammas, depths []float64) {
	return []float64{u.Gamma}, nil
}

// LayerParameters implements Parameterized.
func (m *TwoLayer) LayerParameters() (gammas, depths []float64) {
	return []float64{m.Gamma1, m.Gamma2}, []float64{m.H}
}

// LayerParameters implements Parameterized.
func (m *MultiLayer) LayerParameters() (gammas, depths []float64) {
	return m.gammas, m.depths
}

// Canonical renders the result-affecting parameters of a model at full
// float64 precision: two models with equal canonical strings produce
// bit-identical kernels. Models that do not implement Parameterized fall
// back to their Describe string prefixed so it cannot collide with a
// parameter rendering.
func Canonical(m Model) string {
	p, ok := m.(Parameterized)
	if !ok {
		return "describe:" + m.Describe()
	}
	gammas, depths := p.LayerParameters()
	var b strings.Builder
	b.WriteString("layers")
	for _, g := range gammas {
		fmt.Fprintf(&b, ";%.17g", g)
	}
	b.WriteString("|")
	for _, d := range depths {
		fmt.Fprintf(&b, ";%.17g", d)
	}
	return b.String()
}

// Proportional reports whether model b is model a with every layer
// conductivity multiplied by one common factor (identical layer geometry),
// returning that factor. The ratio must be exact in float64 — every
// γ_b[i]/γ_a[i] bit-equal — because callers use it to derive b's solution
// from a's by pure scaling (σ_b = s·σ_a, R_b = R_a/s). Models lacking
// LayerParameters never match.
func Proportional(a, b Model) (scale float64, ok bool) {
	pa, okA := a.(Parameterized)
	pb, okB := b.(Parameterized)
	if !okA || !okB {
		return 0, false
	}
	ga, da := pa.LayerParameters()
	gb, db := pb.LayerParameters()
	if len(ga) != len(gb) || len(da) != len(db) {
		return 0, false
	}
	for i := range da {
		//lint:ignore floatcmp bit-equal depths are the contract: a tolerance would admit geometries whose solutions are not exact scalings
		if da[i] != db[i] {
			return 0, false
		}
	}
	scale = gb[0] / ga[0]
	for i := range ga {
		//lint:ignore floatcmp the scale must be the same float64 for every layer or σ_b = s·σ_a does not hold exactly
		if gb[i]/ga[i] != scale {
			return 0, false
		}
	}
	return scale, true
}
