package experiments

import (
	"bytes"
	"strings"
	"testing"

	"earthing/internal/bem"
)

// The writer functions behind cmd/paperbench must produce their headline
// sections and survive end to end; the heavy numerics inside them are
// covered by the focused tests, so these use reduced sizes where available.

func TestBaselineFDMWriter(t *testing.T) {
	var buf bytes.Buffer
	if err := BaselineFDM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"BEM vs finite differences", "rod 3 m", "unknowns"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Both methods appear for both problems.
	if strings.Count(out, "BEM") < 2 || strings.Count(out, "FD") < 2 {
		t.Error("method rows missing")
	}
}

func TestAblationThreeLayerWriter(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationThreeLayer(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "double series") || !strings.Contains(out, "Hankel quadrature") {
		t.Errorf("sections missing:\n%s", out)
	}
	if !strings.Contains(out, "relative Req difference") {
		t.Error("summary line missing")
	}
}

func TestAblationSolverWriter(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationSolver(&buf, Quick()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "cholesky:") || !strings.Contains(out, "pcg:") {
		t.Errorf("solver rows missing:\n%s", out)
	}
}

func TestAblationElementsWriter(t *testing.T) {
	var buf bytes.Buffer
	if err := AblationElements(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "constant") < 1 || strings.Count(out, "linear") < 1 {
		t.Errorf("element rows missing:\n%s", out)
	}
}

func TestFig61Writer(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig61(&buf, Quick(), []int{2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "outer") || !strings.Contains(out, "inner") {
		t.Errorf("loop rows missing:\n%s", out)
	}
}

func TestTable62And63Writers(t *testing.T) {
	if testing.Short() {
		t.Skip("full schedule sweep is slow")
	}
	var buf bytes.Buffer
	if err := Table63(&buf, Quick(), []int{1, 2}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 6.3") {
		t.Error("table header missing")
	}
}

func TestPredictLoopSpeedupShapes(t *testing.T) {
	// Outer with default dynamic,1 on 408 elements: near-perfect.
	if s := PredictLoopSpeedup(408, quickBemOptions(8)); s < 7.9 {
		t.Errorf("outer dynamic,1 at P=8: %v", s)
	}
	// Inner at very high P loses to granularity.
	optInner := quickBemOptions(64)
	optInner.Loop = bem.InnerLoop
	inner := PredictLoopSpeedup(408, optInner)
	outer := PredictLoopSpeedup(408, quickBemOptions(64))
	if inner >= outer {
		t.Errorf("inner (%v) should trail outer (%v) at P=64", inner, outer)
	}
	// P=1 is exactly 1.
	if s := PredictLoopSpeedup(408, quickBemOptions(1)); s != 1 {
		t.Errorf("sequential prediction %v", s)
	}
}

func quickBemOptions(p int) bem.Options {
	return bem.Options{Workers: p}
}
