package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/fsio"
	"earthing/internal/grid"
	"earthing/internal/linalg"
	"earthing/internal/soil"
)

// The H-matrix scaling benchmark (BENCH_hmatrix.json) sweeps interconnected
// multi-substation grids over a DoF ladder and records, per rung, the
// compressed tier's build/solve wall time, memory and rank profile through
// the engine's SolverHMatrix path. On the small rungs the optimized dense
// path (flat kernel assembly + blocked Cholesky) is measured alongside, both
// for the |ΔReq| accuracy contract and as the sample for a power-law fit
// that extrapolates dense cost to the headline rung — measuring dense at
// 10k+ DoF directly would take hours, which is the point of the compressed
// tier.

// HMatrixRung is one DoF rung of the scaling sweep.
type HMatrixRung struct {
	// TargetDoF is the requested ladder point; DoF and Elements describe the
	// generated interconnected system (lattice rounding keeps DoF within a
	// few percent of the target).
	TargetDoF int `json:"target_dof"`
	DoF       int `json:"dof"`
	Elements  int `json:"elements"`

	// Compressed tier, through core.SolverHMatrix.
	BuildMs      float64 `json:"hmatrix_build_ms"`
	SolveMs      float64 `json:"hmatrix_solve_ms"`
	CGIterations int     `json:"cg_iterations"`
	ReqHMatrix   float64 `json:"req_hmatrix_ohm"`

	// Rank profile and memory footprint of the representation.
	DenseBlocks   int     `json:"dense_blocks"`
	LowRankBlocks int     `json:"low_rank_blocks"`
	MaxRank       int     `json:"max_rank"`
	AvgRank       float64 `json:"avg_rank"`
	HMatrixBytes  int64   `json:"hmatrix_bytes"`
	DenseBytes    int64   `json:"dense_equivalent_bytes"`
	Compression   float64 `json:"compression_ratio"`

	// Dense reference, measured only when the rung is at or below the dense
	// cutoff: flat-kernel assembly + blocked Cholesky + triangular solves.
	DenseMeasured   bool    `json:"dense_measured"`
	DenseAssemblyMs float64 `json:"dense_assembly_ms,omitempty"`
	DenseFactorMs   float64 `json:"dense_factor_ms,omitempty"`
	ReqDense        float64 `json:"req_dense_ohm,omitempty"`
	ReqRelErr       float64 `json:"req_rel_err,omitempty"`
}

// HMatrixBench is the BENCH_hmatrix.json record.
type HMatrixBench struct {
	Workers   int     `json:"workers"`
	Eps       float64 `json:"eps"`
	SeriesTol float64 `json:"series_tol"`
	Seed      int64   `json:"seed"`

	Rungs []HMatrixRung `json:"rungs"`

	// Power-law fits t(N) = c·N^p (ms) over the dense-measured rungs, used
	// to extrapolate the dense cost to the headline rung.
	DenseAssemblyExponent float64 `json:"dense_assembly_exponent"`
	DenseFactorExponent   float64 `json:"dense_factor_exponent"`

	// Headline comparison at the largest acceptance rung (10k DoF target):
	// compressed build+solve against the extrapolated dense assembly+factor.
	// Acceptance bars: TimeFraction < 0.10, MemoryFraction < 0.25, and
	// MaxReqRelErr ≤ 10·Eps over the dense-measured rungs.
	HeadlineDoF         int     `json:"headline_dof"`
	HMatrixTotalMs      float64 `json:"headline_hmatrix_total_ms"`
	DenseExtrapolatedMs float64 `json:"headline_dense_extrapolated_ms"`
	TimeFraction        float64 `json:"headline_time_fraction"`
	MemoryFraction      float64 `json:"headline_memory_fraction"`
	MaxReqRelErr        float64 `json:"max_req_rel_err"`
}

// hmatrixLadder returns the DoF ladder, the dense-measurement cutoff and the
// headline target. The full ladder spans 1k–20k with dense measured on the
// four small rungs (the fit sample); quick quality shrinks the sweep to a
// smoke ladder so CI can exercise the full code path in seconds.
func hmatrixLadder(q Quality) (targets []int, denseCutoff, headline int) {
	if q.SeriesTol > Default().SeriesTol {
		return []int{300, 600}, 600, 600
	}
	return []int{600, 1000, 1600, 2400, 5000, 10000, 20000}, 2400, 10000
}

// powerFit fits t = c·N^p by least squares in log-log space and returns
// (c, p). Requires at least two samples; with fewer it degenerates to the
// single sample with the given fallback exponent.
func powerFit(ns []float64, ts []float64, fallbackExp float64) (c, p float64) {
	if len(ns) == 1 {
		return ts[0] / math.Pow(ns[0], fallbackExp), fallbackExp
	}
	var sx, sy, sxx, sxy float64
	for i := range ns {
		x, y := math.Log(ns[i]), math.Log(ts[i])
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(ns))
	p = (n*sxy - sx*sy) / (n*sxx - sx*sx)
	c = math.Exp((sy - p*sx) / n)
	return c, p
}

// runHMatrixRung measures one ladder point.
func runHMatrixRung(target int, seed int64, q Quality, workers, denseCutoff int) (HMatrixRung, error) {
	out := HMatrixRung{TargetDoF: target}
	g := grid.Interconnected(target, seed)
	m, err := grid.Discretize(g, grid.Linear, 0)
	if err != nil {
		return out, err
	}
	out.DoF = m.NumDoF
	out.Elements = len(m.Elements)

	opt := q.bemOptions(workers)
	opt.Kernel = bem.FlatKernel
	model := soil.NewTwoLayer(0.0025, 0.020, 1.0)

	res, err := core.AnalyzeMesh(m, model, core.Config{
		GPR:    10_000,
		Solver: core.SolverHMatrix,
		BEM:    opt,
		// A silent dense fallback would corrupt the timing; fail instead.
		HMatrix: core.HMatrixConfig{DenseFallbackN: -1},
	})
	if err != nil {
		return out, err
	}
	out.BuildMs = ms(res.Timings.MatrixGen)
	out.SolveMs = ms(res.Timings.Solve)
	out.CGIterations = res.CG.Iterations
	out.ReqHMatrix = res.Req
	st := res.HMatrix
	out.DenseBlocks = st.DenseBlocks
	out.LowRankBlocks = st.LowRank
	out.MaxRank = st.MaxRank
	out.AvgRank = st.AvgRank
	out.HMatrixBytes = st.Bytes
	out.DenseBytes = st.DenseBytes
	out.Compression = st.CompressionRatio()

	if target > denseCutoff {
		return out, nil
	}
	out.DenseMeasured = true
	asm, err := bem.New(m, model, opt)
	if err != nil {
		return out, err
	}
	t0 := time.Now()
	r, _, err := asm.Matrix()
	if err != nil {
		return out, err
	}
	out.DenseAssemblyMs = ms(time.Since(t0))
	t0 = time.Now()
	ch, err := linalg.NewCholeskyBlocked(r, linalg.FactorOpts{Workers: workers})
	if err != nil {
		return out, err
	}
	out.DenseFactorMs = ms(time.Since(t0))
	sigma, err := ch.Solve(bem.RHS(m))
	if err != nil {
		return out, err
	}
	out.ReqDense = 1 / bem.TotalCurrent(m, sigma)
	out.ReqRelErr = abs(out.ReqHMatrix-out.ReqDense) / out.ReqDense
	return out, nil
}

// RunHMatrixBench sweeps the DoF ladder and assembles the scaling record.
// workers ≤ 0 selects GOMAXPROCS.
func RunHMatrixBench(q Quality, workers int) (HMatrixBench, error) {
	q = q.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const eps = 1e-6 // hmatrix.Params default, the acceptance tolerance
	const seed = 1
	targets, denseCutoff, headline := hmatrixLadder(q)
	out := HMatrixBench{Workers: workers, Eps: eps, SeriesTol: q.SeriesTol, Seed: seed}

	var fitN, fitAsm, fitFac []float64
	for _, target := range targets {
		rung, err := runHMatrixRung(target, seed, q, workers, denseCutoff)
		if err != nil {
			return out, fmt.Errorf("rung %d: %w", target, err)
		}
		out.Rungs = append(out.Rungs, rung)
		if rung.DenseMeasured {
			fitN = append(fitN, float64(rung.DoF))
			fitAsm = append(fitAsm, rung.DenseAssemblyMs)
			fitFac = append(fitFac, rung.DenseFactorMs)
			if rung.ReqRelErr > out.MaxReqRelErr {
				out.MaxReqRelErr = rung.ReqRelErr
			}
		}
	}

	// Dense extrapolation: power-law fits over the measured rungs (assembly
	// is ~quadratic in pairs with a distance-dependent per-pair cost, the
	// factorization ~cubic; the fit keeps whatever exponent the data shows).
	ca, pa := powerFit(fitN, fitAsm, 2)
	cf, pf := powerFit(fitN, fitFac, 3)
	out.DenseAssemblyExponent = pa
	out.DenseFactorExponent = pf

	for i := range out.Rungs {
		r := &out.Rungs[i]
		if r.TargetDoF != headline {
			continue
		}
		n := float64(r.DoF)
		out.HeadlineDoF = r.DoF
		out.HMatrixTotalMs = r.BuildMs + r.SolveMs
		out.DenseExtrapolatedMs = ca*math.Pow(n, pa) + cf*math.Pow(n, pf)
		out.TimeFraction = out.HMatrixTotalMs / out.DenseExtrapolatedMs
		out.MemoryFraction = r.Compression
	}
	return out, nil
}

// HMatrixScaling prints the compressed-solver scaling benchmark and, when
// jsonPath is non-empty, writes the HMatrixBench record there
// (BENCH_hmatrix.json in the repo convention).
func HMatrixScaling(out io.Writer, q Quality, workers int, jsonPath string) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	hb, err := RunHMatrixBench(q, workers)
	if err != nil {
		return err
	}
	header(w, "H-matrix scaling — interconnected grids, SolverHMatrix vs dense")
	fmt.Fprintf(w, "eps %.0e, series tol %.0e, %d workers, seed %d\n",
		hb.Eps, hb.SeriesTol, hb.Workers, hb.Seed)
	for _, r := range hb.Rungs {
		fmt.Fprintf(w, "n=%5d (%5d elems): build %9.0f ms  solve %6.0f ms  cg %3d  ranks ≤%3d avg %5.1f  mem %.3f×",
			r.DoF, r.Elements, r.BuildMs, r.SolveMs, r.CGIterations, r.MaxRank, r.AvgRank, r.Compression)
		if r.DenseMeasured {
			fmt.Fprintf(w, "  | dense asm %8.0f ms factor %6.0f ms  |ΔReq|/Req %.2e", r.DenseAssemblyMs, r.DenseFactorMs, r.ReqRelErr)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "dense fit: assembly ∝ N^%.2f, factor ∝ N^%.2f (over the measured rungs)\n",
		hb.DenseAssemblyExponent, hb.DenseFactorExponent)
	fmt.Fprintf(w, "headline n=%d: hmatrix %.1f s vs dense extrapolated %.1f s → time %.1f%% (bar <10%%), memory %.1f%% (bar <25%%)\n",
		hb.HeadlineDoF, hb.HMatrixTotalMs/1e3, hb.DenseExtrapolatedMs/1e3,
		100*hb.TimeFraction, 100*hb.MemoryFraction)
	fmt.Fprintf(w, "max |ΔReq|/Req over dense-measured rungs: %.2e (bar ≤ 10·ε = %.0e)\n",
		hb.MaxReqRelErr, 10*hb.Eps)
	if jsonPath == "" {
		return nil
	}
	if err := fsio.WriteFile(jsonPath, func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(hb)
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "JSON written to", jsonPath)
	return nil
}
