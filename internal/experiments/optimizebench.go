package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"earthing/internal/core"
	"earthing/internal/designopt"
	"earthing/internal/fsio"
	"earthing/internal/grid"
	"earthing/internal/safety"
	"earthing/internal/soil"
)

// OptimizeBench records the design-loop benchmark: the grid-synthesis engine
// searching a Balaidos-class site (80 × 60 m, the §5.2 two-layer soil)
// against a naive baseline that solves every requested candidate
// independently. The engine batches each generation's unique candidates
// through the sweep worker pool and serves repeat requests from its
// evaluation cache, so the comparison isolates exactly that amortization.
type OptimizeBench struct {
	// Width, Height are the site plan dimensions in metres.
	Width  float64 `json:"width_m"`
	Height float64 `json:"height_m"`
	// Workers is the parallel width both legs run at.
	Workers int `json:"workers"`
	// Starts and MaxEvals are the search knobs driving the candidate volume.
	Starts   int `json:"starts"`
	MaxEvals int `json:"max_evals"`

	// Requested is the total candidate requests the descents issued
	// (acceptance bar: ≥ 200); Evaluated the unique candidates solved;
	// CacheHits the requests served from the evaluation cache.
	Requested   int     `json:"requested"`
	Evaluated   int     `json:"evaluated"`
	CacheHits   int     `json:"cache_hits"`
	HitRate     float64 `json:"hit_rate"`
	Generations int     `json:"generations"`

	// Feasible and BestCost describe the winning design.
	Feasible bool    `json:"feasible"`
	BestCost float64 `json:"best_cost"`
	BestNX   int     `json:"best_nx"`
	BestNY   int     `json:"best_ny"`
	BestRods int     `json:"best_rods"`

	// EngineMs is the wall time of the full search; CandidatesPerSec is
	// Requested over that wall time (SolvesPerSec counts only the unique
	// candidates actually solved).
	EngineMs         float64 `json:"engine_ms"`
	CandidatesPerSec float64 `json:"candidates_per_sec"`
	SolvesPerSec     float64 `json:"solves_per_sec"`

	// NaivePerCandidateMs is the measured wall time of one independent
	// Analyze of a representative candidate lattice at the same worker count
	// and discretization (mean over small/medium/large family members).
	// NaiveMs estimates a cache-less searcher: NaivePerCandidateMs ×
	// Requested. Speedup = NaiveMs / EngineMs (acceptance bar: ≥ 2).
	NaivePerCandidateMs float64 `json:"naive_per_candidate_ms"`
	NaiveMs             float64 `json:"naive_ms"`
	Speedup             float64 `json:"speedup"`

	// Deterministic reports whether a second search at a different worker
	// count reproduced the winning design byte for byte.
	Deterministic bool `json:"deterministic"`
}

// optimizeWorkload returns the benchmark problem: a Balaidos-class site under
// the §5.2 Balaidos two-layer soil, with bounds sized so the search issues a
// few hundred candidate requests.
func optimizeWorkload(q Quality, workers int) (designopt.Spec, designopt.Options) {
	spec := designopt.Spec{
		Width: 80, Height: 60,
		Model:        soil.NewTwoLayer(0.005, 0.016, 1.0),
		FaultCurrent: 1_000,
		Safety: safety.Criteria{
			FaultDuration:    0.5,
			SoilRho:          200,
			SurfaceRho:       3_000,
			SurfaceThickness: 0.1,
		},
		MinLines: 2, MaxLines: 7,
		MaxRods:    8,
		VoltageRes: 5,
	}
	opt := designopt.Options{
		Starts:   4,
		MaxEvals: 400,
		Seed:     1,
	}
	opt.Config = core.Config{
		RodElements: 2,
		BEM:         q.bemOptions(workers),
	}
	return spec, opt
}

// RunOptimizeBench measures the design loop against the naive baseline,
// honouring ctx cancellation in every leg. workers ≤ 0 selects GOMAXPROCS.
func RunOptimizeBench(ctx context.Context, q Quality, workers int) (OptimizeBench, error) {
	q = q.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	spec, opt := optimizeWorkload(q, workers)
	out := OptimizeBench{
		Width: spec.Width, Height: spec.Height,
		Starts: opt.Starts, MaxEvals: opt.MaxEvals,
	}

	t0 := time.Now()
	best, stats, err := designopt.Run(ctx, spec, opt)
	if err != nil {
		return out, err
	}
	wall := time.Since(t0)

	out.Requested = stats.Requested
	out.Evaluated = stats.Evaluated
	out.CacheHits = stats.CacheHits
	out.HitRate = stats.HitRate
	out.Generations = stats.Generations
	out.Feasible = best.Feasible
	out.BestCost = best.Cost
	out.BestNX, out.BestNY, out.BestRods = best.NX, best.NY, best.Rods
	out.EngineMs = float64(wall.Nanoseconds()) / 1e6
	out.CandidatesPerSec = float64(stats.Requested) / wall.Seconds()
	out.SolvesPerSec = float64(stats.Evaluated) / wall.Seconds()
	out.Workers = opt.Config.BEM.Workers

	// Naive baseline: one independent Analyze per representative family
	// member (smallest, median and largest lattice), each paying its own
	// meshing and assembly. A cache-less searcher pays that for every one of
	// the Requested candidates.
	cfg := opt.Config
	cfg.GPR = 1
	var naive time.Duration
	lines := []int{spec.MinLines, (spec.MinLines + spec.MaxLines) / 2, spec.MaxLines}
	for _, n := range lines {
		g := grid.RectMesh(0, 0, spec.Width, spec.Height, n, n, 0.6, 0.006)
		t := time.Now()
		if _, err := core.AnalyzeCtx(ctx, g, spec.Model, cfg); err != nil {
			return out, err
		}
		naive += time.Since(t)
	}
	out.NaivePerCandidateMs = float64(naive.Nanoseconds()) / 1e6 / float64(len(lines))
	out.NaiveMs = out.NaivePerCandidateMs * float64(stats.Requested)
	out.Speedup = out.NaiveMs / out.EngineMs

	// Determinism probe: the same search at a different worker count must
	// reproduce the winning design byte for byte.
	opt2 := opt
	opt2.Config.BEM.Workers = 1
	if out.Workers == 1 {
		opt2.Config.BEM.Workers = 2
	}
	best2, _, err := designopt.Run(ctx, spec, opt2)
	if err != nil {
		return out, err
	}
	a, err := json.Marshal(best)
	if err != nil {
		return out, err
	}
	b, err := json.Marshal(best2)
	if err != nil {
		return out, err
	}
	out.Deterministic = string(a) == string(b)
	return out, nil
}

// OptimizeLoop prints the design-loop benchmark and, when jsonPath is
// non-empty, writes the OptimizeBench record there as JSON
// (BENCH_optimize.json in the repo convention).
func OptimizeLoop(ctx context.Context, out io.Writer, q Quality, workers int, jsonPath string) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	ob, err := RunOptimizeBench(ctx, q, workers)
	if err != nil {
		return err
	}
	header(w, "Design loop — grid synthesis on a Balaidos-class site")
	fmt.Fprintf(w, "site %.0f × %.0f m, %d starts × %d max evals, %d workers\n",
		ob.Width, ob.Height, ob.Starts, ob.MaxEvals, ob.Workers)
	fmt.Fprintf(w, "search: %d candidates requested, %d solved, %d cache hits (%.0f%% hit rate), %d generations\n",
		ob.Requested, ob.Evaluated, ob.CacheHits, 100*ob.HitRate, ob.Generations)
	fmt.Fprintf(w, "winner: %dx%d lattice, %d rods, cost %.1f, feasible=%v\n",
		ob.BestNX, ob.BestNY, ob.BestRods, ob.BestCost, ob.Feasible)
	fmt.Fprintf(w, "engine:  %10.1f ms  (%.1f candidates/s, %.1f solves/s)\n",
		ob.EngineMs, ob.CandidatesPerSec, ob.SolvesPerSec)
	fmt.Fprintf(w, "naive:   %10.1f ms  (%.1f ms per independent solve × %d candidates, speed-up %.2f×)\n",
		ob.NaiveMs, ob.NaivePerCandidateMs, ob.Requested, ob.Speedup)
	fmt.Fprintf(w, "deterministic across worker counts: %v\n", ob.Deterministic)
	if jsonPath == "" {
		return nil
	}
	if err := fsio.WriteFile(jsonPath, func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(ob)
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "JSON written to", jsonPath)
	return nil
}
