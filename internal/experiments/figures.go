package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/fsio"
	"earthing/internal/grid"
	"earthing/internal/post"
	"earthing/internal/sched"
	"earthing/internal/soil"
)

// soilModelFunc builds one of the named paper soil models.
type soilModelFunc func() soil.Model

// surfaceMap computes the Figure 5.2/5.4-style raster for a solved result,
// in units of ×10 kV like the paper's contour labels.
func surfaceMap(res *core.Result, nx, ny int) *post.Raster {
	r := post.SurfacePotential(res.Assembler(), res.Mesh, res.Sigma, res.GPR/10_000,
		post.SurfaceOptions{NX: nx, NY: ny, Margin: 20})
	return r
}

// writeFigure emits a raster as CSV, ASCII and contour SVG under dir with
// the given base name; dir == "" writes the ASCII art to w only.
func writeFigure(w io.Writer, dir, base string, r *post.Raster) error {
	if err := post.WriteASCII(w, r); err != nil {
		return err
	}
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	err := fsio.WriteFile(filepath.Join(dir, base+".csv"), func(f io.Writer) error {
		return post.WriteCSV(f, r)
	})
	if err != nil {
		return err
	}
	lines := post.Contours(r, post.EquallySpacedLevels(r, 12))
	return fsio.WriteFile(filepath.Join(dir, base+".svg"), func(f io.Writer) error {
		return post.WriteSVG(f, r, lines)
	})
}

// Fig52 regenerates Figure 5.2: the Barberá earth-surface potential
// distribution (×10 kV) for the uniform and the two-layer soil model.
// Artifacts (CSV + contour SVG) go under dir when non-empty.
func Fig52(out io.Writer, q Quality, workers int, dir string, nx, ny int) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	if nx <= 0 {
		nx = 48
	}
	if ny <= 0 {
		ny = 64
	}
	header(w, "Figure 5.2 — Barberá surface potential (×10 kV)")
	for _, c := range []struct {
		name  string
		model soilModelFunc
	}{
		{"uniform", BarberaUniform},
		{"two-layer", BarberaTwoLayer},
	} {
		res, err := AnalyzeBarbera(c.model(), q, workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n-- %s soil model (Req = %.4f ohm) --\n", c.name, res.Req)
		r := surfaceMap(res, nx, ny)
		if err := writeFigure(w, dir, "fig5.2-"+c.name, r); err != nil {
			return err
		}
	}
	return nil
}

// Fig54 regenerates Figure 5.4: the Balaidos surface potential (×10 kV) for
// soil models A, B and C.
func Fig54(out io.Writer, q Quality, workers int, dir string, nx, ny int) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	if nx <= 0 {
		nx = 56
	}
	if ny <= 0 {
		ny = 44
	}
	header(w, "Figure 5.4 — Balaidos surface potential (×10 kV), models A/B/C")
	for _, c := range BalaidosModels() {
		res, err := AnalyzeBalaidos(c, q, workers)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n-- model %s (Req = %.4f ohm) --\n", c.Name, res.Req)
		r := surfaceMap(res, nx, ny)
		if err := writeFigure(w, dir, "fig5.4-"+c.Name, r); err != nil {
			return err
		}
	}
	return nil
}

// Fig61Point is one point of the Figure 6.1 speed-up curves.
type Fig61Point struct {
	Loop      bem.LoopStrategy
	Workers   int
	Wall      time.Duration
	Measured  float64
	Predicted float64
}

// RunFig61 measures the Barberá two-layer matrix-generation speed-up for
// outer- and inner-loop parallelization across worker counts, with the
// paper's Dynamic,1 schedule.
func RunFig61(q Quality, workers []int) ([]Fig61Point, error) {
	q = q.withDefaults()
	m, err := grid.BarberaMesh()
	if err != nil {
		return nil, err
	}
	model := BarberaTwoLayer()
	seq, err := minDuration(q.Repeats, func() (time.Duration, error) {
		d, _, err := matrixGenTime(m, model, q.bemOptions(1))
		return d, err
	})
	if err != nil {
		return nil, err
	}
	var pts []Fig61Point
	for _, loop := range []bem.LoopStrategy{bem.OuterLoop, bem.InnerLoop} {
		for _, p := range workers {
			opt := q.bemOptions(p)
			opt.Loop = loop
			opt.Schedule = sched.Schedule{Kind: sched.Dynamic, Chunk: 1}
			var pred float64
			wall, err := minDuration(q.Repeats, func() (time.Duration, error) {
				d, pd, err := matrixGenTime(m, model, opt)
				pred = pd
				return d, err
			})
			if err != nil {
				return nil, err
			}
			pts = append(pts, Fig61Point{
				Loop: loop, Workers: p, Wall: wall,
				Measured:  float64(seq) / float64(wall),
				Predicted: pred,
			})
		}
	}
	return pts, nil
}

// Fig61 prints the outer-vs-inner speed-up series (paper: outer-loop
// parallelization wins because its granularity is larger, and the gap grows
// with the number of processors).
func Fig61(out io.Writer, q Quality, workers []int) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	pts, err := RunFig61(q, workers)
	if err != nil {
		return err
	}
	header(w, "Figure 6.1 — Barberá two-layer: outer- vs inner-loop speed-up (dynamic,1)")
	fmt.Fprintf(w, "%-8s %8s %14s %10s %10s\n", "loop", "workers", "wall", "measured", "predicted")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8s %8d %14v %10.2f %10.2f\n",
			p.Loop, p.Workers, p.Wall.Round(time.Millisecond), p.Measured, p.Predicted)
	}
	return nil
}

// PlanSVG writes the grid plan (Figures 5.1 / 5.3) as an SVG drawing: the
// horizontal conductors as lines and rods as dots.
func PlanSVG(out io.Writer, g *grid.Grid) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	b := g.Bounds()
	sz := b.Size()
	const scale = 6
	width := sz.X * scale
	height := sz.Y * scale
	fmt.Fprintf(w, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.2f %.2f">`+"\n",
		width+20, height+20, width+20, height+20)
	fmt.Fprintln(w, `<rect width="100%" height="100%" fill="white"/>`)
	px := func(x float64) float64 { return 10 + (x-b.Min.X)*scale }
	py := func(y float64) float64 { return 10 + (b.Max.Y-y)*scale }
	for _, c := range g.Conductors {
		if c.Seg.IsVertical(1e-9) {
			fmt.Fprintf(w, `<circle cx="%.2f" cy="%.2f" r="2.5" fill="black"/>`+"\n",
				px(c.Seg.A.X), py(c.Seg.A.Y))
			continue
		}
		fmt.Fprintf(w, `<line x1="%.2f" y1="%.2f" x2="%.2f" y2="%.2f" stroke="black" stroke-width="1"/>`+"\n",
			px(c.Seg.A.X), py(c.Seg.A.Y), px(c.Seg.B.X), py(c.Seg.B.Y))
	}
	fmt.Fprintln(w, "</svg>")
	return nil
}
