package experiments

import (
	"fmt"
	"io"
	"time"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/grid"
	"earthing/internal/sched"
	"earthing/internal/soil"
)

// BarberaResult carries the §5.1 headline quantities.
type BarberaResult struct {
	UniformReq, UniformCurrent   float64 // Ω, A
	TwoLayerReq, TwoLayerCurrent float64
}

// RunBarberaSummary computes the §5.1 text numbers: Req and IΓ of the
// Barberá grid at 10 kV GPR for the uniform and two-layer soil models
// (paper: 0.3128 Ω / 31.97 kA and 0.3704 Ω / 26.99 kA).
func RunBarberaSummary(q Quality, workers int) (BarberaResult, error) {
	var out BarberaResult
	ru, err := AnalyzeBarbera(BarberaUniform(), q, workers)
	if err != nil {
		return out, err
	}
	rt, err := AnalyzeBarbera(BarberaTwoLayer(), q, workers)
	if err != nil {
		return out, err
	}
	out.UniformReq, out.UniformCurrent = ru.Req, ru.Current
	out.TwoLayerReq, out.TwoLayerCurrent = rt.Req, rt.Current
	return out, nil
}

// BarberaSummary prints the §5.1 comparison.
func BarberaSummary(out io.Writer, q Quality, workers int) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	res, err := RunBarberaSummary(q, workers)
	if err != nil {
		return err
	}
	header(w, "Barberá grounding system (§5.1), GPR = 10 kV")
	fmt.Fprintf(w, "%-20s %18s %18s\n", "Soil Model", "Req (ohm)", "Current (kA)")
	fmt.Fprintf(w, "%-20s %12.4f (paper 0.3128) %8.2f (paper 31.97)\n",
		"uniform", res.UniformReq, res.UniformCurrent/1000)
	fmt.Fprintf(w, "%-20s %12.4f (paper 0.3704) %8.2f (paper 26.99)\n",
		"two-layer", res.TwoLayerReq, res.TwoLayerCurrent/1000)
	return nil
}

// Table51Row is one row of Table 5.1.
type Table51Row struct {
	Model     string
	Req       float64 // Ω
	Current   float64 // A
	PaperReq  float64
	PaperCurr float64 // A
}

// RunTable51 computes Table 5.1: the Balaidos equivalent resistance and
// total current for soil models A, B and C.
func RunTable51(q Quality, workers int) ([]Table51Row, error) {
	paper := map[string][2]float64{
		"A": {0.3366, 29_710},
		"B": {0.3522, 28_390},
		"C": {0.4860, 20_580},
	}
	var rows []Table51Row
	for _, c := range BalaidosModels() {
		res, err := AnalyzeBalaidos(c, q, workers)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", c.Name, err)
		}
		p := paper[c.Name]
		rows = append(rows, Table51Row{
			Model: c.Name, Req: res.Req, Current: res.Current,
			PaperReq: p[0], PaperCurr: p[1],
		})
	}
	return rows, nil
}

// Table51 prints Table 5.1 with the paper's values alongside.
func Table51(out io.Writer, q Quality, workers int) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	rows, err := RunTable51(q, workers)
	if err != nil {
		return err
	}
	header(w, "Table 5.1 — Balaidos: Req and total current per soil model")
	fmt.Fprintf(w, "%-6s %14s %12s %16s %12s\n",
		"Model", "Req (ohm)", "paper", "Current (kA)", "paper")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %14.4f %12.4f %16.2f %12.2f\n",
			r.Model, r.Req, r.PaperReq, r.Current/1000, r.PaperCurr/1000)
	}
	return nil
}

// Table61Result is the per-stage timing breakdown of Table 6.1.
type Table61Result struct {
	Timings core.StageTimings
	// MatrixShare is MatrixGen / Total.
	MatrixShare float64
}

// RunTable61 measures the sequential per-stage times of the Barberá
// two-layer analysis, including the data-input stage by round-tripping the
// grid through its text format.
func RunTable61(q Quality) (Table61Result, error) {
	q = q.withDefaults()
	var out Table61Result
	// Serialize the Barberá grid so the input stage has real work to do.
	pr, pw := io.Pipe()
	//lint:ignore goleak bounded by the pipe: AnalyzeReader drains pr, so CloseWithError returns and the goroutine exits
	go func() {
		//lint:ignore errdrop io.PipeWriter.CloseWithError documents that it always returns nil
		pw.CloseWithError(grid.Write(pw, grid.Barbera()))
	}()
	res, err := core.AnalyzeReader(pr, BarberaTwoLayer(), core.Config{
		GPR: 10_000,
		BEM: func() bem.Options { o := q.bemOptions(1); return o }(),
	})
	if err != nil {
		return out, err
	}
	out.Timings = res.Timings
	if t := res.Timings.Total(); t > 0 {
		out.MatrixShare = float64(res.Timings.MatrixGen) / float64(t)
	}
	return out, nil
}

// Table61 prints the stage breakdown (paper: matrix generation 1723 s of a
// 1724 s total on one O2000 processor — 99.9 % of the work).
func Table61(out io.Writer, q Quality) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	res, err := RunTable61(q)
	if err != nil {
		return err
	}
	header(w, "Table 6.1 — Barberá two-layer: sequential time per pipeline stage")
	fmt.Fprintf(w, "%-24s %14s\n", "Process", "wall time")
	fmt.Fprintf(w, "%-24s %14v\n", "Data Input", res.Timings.Input)
	fmt.Fprintf(w, "%-24s %14v\n", "Data Preprocessing", res.Timings.Preprocess)
	fmt.Fprintf(w, "%-24s %14v\n", "Matrix Generation", res.Timings.MatrixGen)
	fmt.Fprintf(w, "%-24s %14v\n", "Linear System Solving", res.Timings.Solve)
	fmt.Fprintf(w, "%-24s %14v\n", "Results Storage", res.Timings.Results)
	fmt.Fprintf(w, "matrix generation share: %.2f%% (paper: 99.9%%)\n", 100*res.MatrixShare)
	return nil
}

// Table62Schedules lists the schedule rows of Table 6.2 in paper order.
func Table62Schedules() []sched.Schedule {
	return []sched.Schedule{
		{Kind: sched.Static, Chunk: 0},
		{Kind: sched.Static, Chunk: 64},
		{Kind: sched.Static, Chunk: 16},
		{Kind: sched.Static, Chunk: 4},
		{Kind: sched.Static, Chunk: 1},
		{Kind: sched.Dynamic, Chunk: 64},
		{Kind: sched.Dynamic, Chunk: 16},
		{Kind: sched.Dynamic, Chunk: 4},
		{Kind: sched.Dynamic, Chunk: 1},
		{Kind: sched.Guided, Chunk: 64},
		{Kind: sched.Guided, Chunk: 16},
		{Kind: sched.Guided, Chunk: 4},
		{Kind: sched.Guided, Chunk: 1},
	}
}

// SpeedupCell is one measurement of a schedule × worker-count cell.
type SpeedupCell struct {
	Schedule  sched.Schedule
	Workers   int
	Wall      time.Duration
	Measured  float64 // T_seq / Wall
	Predicted float64 // Σ busy / max busy (load-balance bound)
}

// matrixGenTime assembles the given mesh/model once and reports the wall
// time of the matrix-generation stage plus the simulated ideal-machine
// speed-up of its (loop, schedule, workers) configuration.
func matrixGenTime(m *grid.Mesh, model soil.Model, opt bem.Options) (time.Duration, float64, error) {
	a, err := bem.New(m, model, opt)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if _, _, err := a.Matrix(); err != nil {
		return 0, 0, err
	}
	wall := time.Since(start)
	return wall, PredictLoopSpeedup(len(m.Elements), opt), nil
}

// PredictLoopSpeedup simulates the matrix-generation loop of an M-element
// mesh under the options' loop strategy, schedule and worker count on an
// ideal machine (one core per worker, free hand-offs): the host-independent
// load-balance prediction reported alongside measured wall times.
func PredictLoopSpeedup(m int, opt bem.Options) float64 {
	p := opt.Workers
	if p <= 0 {
		p = 1
	}
	s := opt.Schedule
	if s.IsZero() {
		s = sched.Schedule{Kind: sched.Dynamic, Chunk: 1}
	}
	if opt.Loop == bem.OuterLoop {
		return sched.PredictSpeedup(sched.TriangleWork(m), p, s)
	}
	// Inner loop: the rows of each column are shared; a barrier separates
	// columns, so the total makespan is the sum of per-column makespans.
	var total, makespan int64
	unit := make([]int64, m)
	for i := range unit {
		unit[i] = 1
	}
	for beta := m - 1; beta >= 0; beta-- {
		ms, _ := sched.Simulate(unit[:beta+1], p, s)
		makespan += ms
		total += int64(beta + 1)
	}
	if makespan == 0 {
		return 1
	}
	return float64(total) / float64(makespan)
}

// RunTable62 measures the Barberá two-layer matrix-generation speed-up for
// every schedule row of Table 6.2 across the given worker counts (the paper
// uses 1, 2, 4, 8 O2000 processors with outer-loop parallelization).
func RunTable62(q Quality, workers []int) ([]SpeedupCell, error) {
	q = q.withDefaults()
	m, err := grid.BarberaMesh()
	if err != nil {
		return nil, err
	}
	model := BarberaTwoLayer()

	seq, err := minDuration(q.Repeats, func() (time.Duration, error) {
		d, _, err := matrixGenTime(m, model, q.bemOptions(1))
		return d, err
	})
	if err != nil {
		return nil, err
	}

	var cells []SpeedupCell
	for _, s := range Table62Schedules() {
		for _, p := range workers {
			opt := q.bemOptions(p)
			opt.Schedule = s
			var pred float64
			wall, err := minDuration(q.Repeats, func() (time.Duration, error) {
				d, pd, err := matrixGenTime(m, model, opt)
				pred = pd
				return d, err
			})
			if err != nil {
				return nil, err
			}
			cells = append(cells, SpeedupCell{
				Schedule: s, Workers: p, Wall: wall,
				Measured:  float64(seq) / float64(wall),
				Predicted: pred,
			})
		}
	}
	return cells, nil
}

// Table62 prints the schedule × processors speed-up table.
func Table62(out io.Writer, q Quality, workers []int) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	cells, err := RunTable62(q, workers)
	if err != nil {
		return err
	}
	header(w, "Table 6.2 — Barberá two-layer: speed-up per schedule and worker count (outer loop)")
	fmt.Fprintf(w, "%-12s", "Schedule")
	for _, p := range workers {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintf(w, "    (predicted = load-balance bound; measured in parentheses)\n")
	perSched := map[string][]SpeedupCell{}
	for _, c := range cells {
		perSched[c.Schedule.String()] = append(perSched[c.Schedule.String()], c)
	}
	for _, s := range Table62Schedules() {
		fmt.Fprintf(w, "%-12s", s)
		for _, c := range perSched[s.String()] {
			fmt.Fprintf(w, " %8.2f", c.Predicted)
		}
		fmt.Fprint(w, "   (")
		for i, c := range perSched[s.String()] {
			if i > 0 {
				fmt.Fprint(w, " ")
			}
			fmt.Fprintf(w, "%.2f", c.Measured)
		}
		fmt.Fprintln(w, ")")
	}
	return nil
}

// Table63Row is one soil model's row of Table 6.3.
type Table63Row struct {
	Model string
	Cells []SpeedupCell // one per worker count; Wall is the matrix-gen time
}

// RunTable63 measures the Balaidos matrix-generation times and speed-ups
// for soil models A, B and C across worker counts (paper Table 6.3; model A
// is sequential-only there because it is already real-time).
func RunTable63(q Quality, workers []int) ([]Table63Row, error) {
	q = q.withDefaults()
	var rows []Table63Row
	for _, c := range BalaidosModels() {
		// Build the paper-accurate mesh through the engine preprocessing.
		res, err := AnalyzeBalaidos(c, q, 1)
		if err != nil {
			return nil, err
		}
		mesh := res.Mesh
		row := Table63Row{Model: c.Name}
		var seq time.Duration
		for _, p := range workers {
			opt := q.bemOptions(p)
			var pred float64
			wall, err := minDuration(q.Repeats, func() (time.Duration, error) {
				d, pd, err := matrixGenTime(mesh, c.Model, opt)
				pred = pd
				return d, err
			})
			if err != nil {
				return nil, err
			}
			if p == 1 {
				seq = wall
			}
			cell := SpeedupCell{Workers: p, Wall: wall, Predicted: pred}
			if seq > 0 {
				cell.Measured = float64(seq) / float64(wall)
			}
			row.Cells = append(row.Cells, cell)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Table63 prints the Balaidos CPU-time/speed-up table.
func Table63(out io.Writer, q Quality, workers []int) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	rows, err := RunTable63(q, workers)
	if err != nil {
		return err
	}
	header(w, "Table 6.3 — Balaidos: matrix-generation time and speed-up per soil model")
	fmt.Fprintf(w, "%-6s", "Model")
	for _, p := range workers {
		fmt.Fprintf(w, " %22s", fmt.Sprintf("P=%d", p))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s", r.Model)
		for _, c := range r.Cells {
			fmt.Fprintf(w, " %12v (%5.2fx)", c.Wall.Round(time.Millisecond), c.Predicted)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "(speed-up in parentheses is the load-balance prediction; paper model C is slowest\n because rods straddle the interface and cross-layer kernels converge slower)")
	return nil
}
