package experiments

import (
	"testing"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/grid"
)

func benchBalaidosAssembly(b *testing.B, kernel bem.KernelStrategy) {
	benchBalaidosAssemblyCase(b, kernel, 1)
}

func benchBalaidosAssemblyCase(b *testing.B, kernel bem.KernelStrategy, soilCase int) {
	b.Helper()
	c := BalaidosModels()[soilCase]
	mesh, _, err := core.BuildMesh(grid.Balaidos(), c.Model, core.Config{RodElements: c.RodElements})
	if err != nil {
		b.Fatal(err)
	}
	opt := Default().bemOptions(1)
	opt.Kernel = kernel
	asm, err := bem.New(mesh, c.Model, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := asm.Matrix(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBalaidosAssemblyReference(b *testing.B) { benchBalaidosAssembly(b, bem.ReferenceKernel) }
func BenchmarkBalaidosAssemblyFlat(b *testing.B)      { benchBalaidosAssembly(b, bem.FlatKernel) }

func BenchmarkBalaidosAssemblyReferenceC(b *testing.B) {
	benchBalaidosAssemblyCase(b, bem.ReferenceKernel, 2)
}
func BenchmarkBalaidosAssemblyFlatC(b *testing.B) {
	benchBalaidosAssemblyCase(b, bem.FlatKernel, 2)
}
