// Package experiments regenerates every table and figure of the paper's
// evaluation (§5 and §6) on the reproduced system: the Barberá and Balaidos
// analyses, the per-stage timing breakdown (Table 6.1), the schedule
// comparison (Table 6.2), the outer-vs-inner loop comparison (Figure 6.1),
// the Balaidos parallel runs (Table 6.3) and the surface potential maps
// (Figures 5.2 and 5.4).
//
// Each experiment prints the same rows/series the paper reports. Absolute
// times differ from the SGI Origin 2000; EXPERIMENTS.md records the
// shape comparison. Because the reproduction host may expose fewer physical
// cores than configured workers, timing experiments report both the
// measured wall-clock speed-up and the load-balance-predicted speed-up
// (Σ worker busy / max worker busy), which is the schedule property the
// paper's tables isolate.
package experiments

import (
	"bufio"
	"fmt"
	"io"
	"time"

	"earthing/internal/bem"
	"earthing/internal/core"
	"earthing/internal/grid"
	"earthing/internal/soil"
)

// Quality trades fidelity for run time in the heavy experiments.
type Quality struct {
	// SeriesTol is the kernel series tolerance (default 1e-7; quick runs
	// use 1e-5 with <0.5 % effect on Req).
	SeriesTol float64
	// Repeats is the number of timing repetitions; the minimum is reported,
	// following the paper's "minimum of 4 CPU time measures". Default 1.
	Repeats int
	// GaussOrder for outer integration (default 4).
	GaussOrder int
}

// Default returns the full-fidelity quality.
func Default() Quality { return Quality{SeriesTol: 1e-7, Repeats: 1, GaussOrder: 4} }

// Quick returns a reduced-fidelity quality for smoke runs and tests.
func Quick() Quality { return Quality{SeriesTol: 1e-4, Repeats: 1, GaussOrder: 4} }

func (q Quality) withDefaults() Quality {
	d := Default()
	if q.SeriesTol <= 0 {
		q.SeriesTol = d.SeriesTol
	}
	if q.Repeats <= 0 {
		q.Repeats = d.Repeats
	}
	if q.GaussOrder <= 0 {
		q.GaussOrder = d.GaussOrder
	}
	return q
}

// bemOptions builds bem.Options for a given worker count and schedule.
func (q Quality) bemOptions(workers int) bem.Options {
	return bem.Options{
		Workers:    workers,
		SeriesTol:  q.SeriesTol,
		GaussOrder: q.GaussOrder,
	}
}

// SoilCase names a soil model of the evaluation.
type SoilCase struct {
	Name  string
	Model soil.Model
	// RodElements is the engine RodElements setting that lands the paper's
	// 241-element Balaidos discretization for this model.
	RodElements int
}

// BarberaUniform is the §5.1 uniform model: γ = 0.016 (Ω·m)⁻¹.
func BarberaUniform() soil.Model { return soil.NewUniform(0.016) }

// BarberaTwoLayer is the §5.1 two-layer model: γ1 = 0.005, γ2 = 0.016,
// h = 1 m.
func BarberaTwoLayer() soil.Model { return soil.NewTwoLayer(0.005, 0.016, 1.0) }

// BalaidosModels returns the three §5.2 soil models. Model C's rods cross
// the 1 m interface, so the engine's automatic interface split yields the
// two rod elements; models A and B get them via RodElements.
func BalaidosModels() []SoilCase {
	return []SoilCase{
		{Name: "A", Model: soil.NewUniform(0.020), RodElements: 2},
		{Name: "B", Model: soil.NewTwoLayer(0.0025, 0.020, 0.7), RodElements: 2},
		{Name: "C", Model: soil.NewTwoLayer(0.0025, 0.020, 1.0), RodElements: 1},
	}
}

// AnalyzeBarbera runs the Barberá grid under the given model.
func AnalyzeBarbera(model soil.Model, q Quality, workers int) (*core.Result, error) {
	q = q.withDefaults()
	m, err := grid.BarberaMesh()
	if err != nil {
		return nil, err
	}
	return core.AnalyzeMesh(m, model, core.Config{
		GPR: 10_000, BEM: q.bemOptions(workers),
	})
}

// AnalyzeBalaidos runs the Balaidos grid under one of the §5.2 soil cases.
func AnalyzeBalaidos(c SoilCase, q Quality, workers int) (*core.Result, error) {
	q = q.withDefaults()
	return core.Analyze(grid.Balaidos(), c.Model, core.Config{
		GPR:         10_000,
		RodElements: c.RodElements,
		BEM:         q.bemOptions(workers),
	})
}

// minDuration runs f repeats times and returns the minimum duration along
// with the last result, mirroring the paper's minimum-of-four protocol.
func minDuration(repeats int, f func() (time.Duration, error)) (time.Duration, error) {
	best := time.Duration(-1)
	for i := 0; i < repeats; i++ {
		d, err := f()
		if err != nil {
			return 0, err
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best, nil
}

// header prints a section header. It takes the buffered writer every
// experiment writer works through, so the write error is latched for the
// caller's final Flush rather than dropped.
func header(w *bufio.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}

// buffered wraps out for an experiment writer: all output goes through the
// returned bufio.Writer, whose sticky error the deferred flush surfaces
// into the caller's named return value (unless the caller already failed
// for another reason).
func buffered(out io.Writer) (*bufio.Writer, func(*error)) {
	bw := bufio.NewWriter(out)
	return bw, func(err *error) {
		if ferr := bw.Flush(); *err == nil {
			*err = ferr
		}
	}
}
