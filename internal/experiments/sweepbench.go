package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"earthing/internal/core"
	"earthing/internal/fsio"
	"earthing/internal/grid"
	"earthing/internal/soil"
	"earthing/internal/sweep"
)

// SweepBench records the batch-solve benchmark on the Balaidos grid: the
// three §5.2 soil models × three GPR values solved one Analyze at a time
// against a single sweep.Run at the same worker width. The sweep assembles
// one system per distinct soil model and serves the GPR variants from the
// solve-reuse tier, so at 3×3 scenarios it performs a third of the
// sequential assemblies. Wall times are minima over Quality.Repeats.
type SweepBench struct {
	// Scenarios = Models × GPRs.
	Scenarios int `json:"scenarios"`
	Models    int `json:"models"`
	GPRs      int `json:"gprs"`
	// Elements and DoF describe the shared Balaidos discretization.
	Elements int `json:"elements"`
	DoF      int `json:"dof"`
	// Workers is the parallel width both sides run at.
	Workers int `json:"workers"`

	// SequentialMs is the wall time of the Analyze-per-scenario loop;
	// SequentialAssemblies its assembly count (= Scenarios).
	SequentialMs         float64 `json:"sequential_ms"`
	SequentialAssemblies int     `json:"sequential_assemblies"`
	// SweepMs is the wall time of the single sweep.Run; SweepAssemblies its
	// assembly count (= Models).
	SweepMs         float64 `json:"sweep_ms"`
	SweepAssemblies int     `json:"sweep_assemblies"`
	// Speedup = SequentialMs / SweepMs (acceptance bar: ≥ 1.5).
	Speedup float64 `json:"speedup"`

	// BitIdentical reports whether every swept Req and Current equals its
	// sequential counterpart bit for bit (the correctness half of the
	// acceptance criterion; MaxAbsDiffReq must then be exactly 0).
	BitIdentical  bool    `json:"bit_identical"`
	MaxAbsDiffReq float64 `json:"max_abs_diff_req"`
}

// sweepWorkload returns the benchmark scenarios: the three Balaidos soil
// models under one shared discretization (RodElements = 2, so all scenarios
// share a mesh and the comparison isolates assembly amortization) × three
// GPR values around the paper's 10 kV operating point.
func sweepWorkload() []sweep.Scenario {
	soils := []struct {
		name  string
		model soil.Model
	}{
		{"A", soil.NewUniform(0.020)},
		{"B", soil.NewTwoLayer(0.0025, 0.020, 0.7)},
		{"C", soil.NewTwoLayer(0.0025, 0.020, 1.0)},
	}
	gprs := []float64{5_000, 10_000, 15_000}
	var scens []sweep.Scenario
	for _, s := range soils {
		for _, gpr := range gprs {
			scens = append(scens, sweep.Scenario{
				ID:    fmt.Sprintf("%s-%.0fkV", s.name, gpr/1000),
				Model: s.model,
				GPR:   gpr,
			})
		}
	}
	return scens
}

// RunSweepBench measures the sweep engine against the sequential baseline,
// honouring ctx cancellation in both legs. workers ≤ 0 selects GOMAXPROCS on
// both sides.
func RunSweepBench(ctx context.Context, q Quality, workers int) (SweepBench, error) {
	q = q.withDefaults()
	g := grid.Balaidos()
	scens := sweepWorkload()
	cfg := core.Config{
		RodElements: 2,
		BEM:         q.bemOptions(workers),
	}
	out := SweepBench{
		Scenarios: len(scens),
		Models:    3,
		GPRs:      3,
	}

	seqRes := make([]*core.Result, len(scens))
	seqWall, err := minDuration(q.Repeats, func() (time.Duration, error) {
		t0 := time.Now()
		for i, sc := range scens {
			scfg := cfg
			scfg.GPR = sc.GPR
			res, err := core.AnalyzeCtx(ctx, g, sc.Model, scfg)
			if err != nil {
				return 0, err
			}
			seqRes[i] = res
		}
		return time.Since(t0), nil
	})
	if err != nil {
		return out, err
	}

	var swept []sweep.Result
	sweepWall, err := minDuration(q.Repeats, func() (time.Duration, error) {
		t0 := time.Now()
		var err error
		swept, err = sweep.Run(ctx, g, scens, sweep.Options{Config: cfg})
		if err != nil {
			return 0, err
		}
		return time.Since(t0), nil
	})
	if err != nil {
		return out, err
	}

	out.Elements = len(seqRes[0].Mesh.Elements)
	out.DoF = len(seqRes[0].Sigma)
	out.Workers = seqRes[0].LoopStats.Workers
	out.SequentialAssemblies = len(scens)
	out.BitIdentical = true
	for i, r := range swept {
		if r.Reuse == sweep.ReuseAssembled {
			out.SweepAssemblies++
		}
		if d := r.Res.Req - seqRes[i].Req; d != 0 {
			out.BitIdentical = false
			if d < 0 {
				d = -d
			}
			if d > out.MaxAbsDiffReq {
				out.MaxAbsDiffReq = d
			}
		}
		//lint:ignore floatcmp bit-identity is the measured property: the sweep must reproduce the sequential current exactly
		if r.Res.Current != seqRes[i].Current {
			out.BitIdentical = false
		}
	}
	out.SequentialMs = float64(seqWall.Nanoseconds()) / 1e6
	out.SweepMs = float64(sweepWall.Nanoseconds()) / 1e6
	out.Speedup = out.SequentialMs / out.SweepMs
	return out, nil
}

// SweepEngine prints the sweep benchmark and, when jsonPath is non-empty,
// writes the SweepBench record there as JSON (BENCH_sweep.json in the repo
// convention).
func SweepEngine(ctx context.Context, out io.Writer, q Quality, workers int, jsonPath string) (err error) {
	w, flush := buffered(out)
	defer flush(&err)

	sb, err := RunSweepBench(ctx, q, workers)
	if err != nil {
		return err
	}
	header(w, "Sweep engine — Balaidos 3 soils × 3 GPR, sequential vs batched")
	fmt.Fprintf(w, "%d scenarios (%d models × %d GPR values), %d elements, %d DoF, %d workers\n",
		sb.Scenarios, sb.Models, sb.GPRs, sb.Elements, sb.DoF, sb.Workers)
	fmt.Fprintf(w, "sequential Analyze loop: %10.1f ms  (%d assemblies)\n",
		sb.SequentialMs, sb.SequentialAssemblies)
	fmt.Fprintf(w, "sweep.Run batch:         %10.1f ms  (%d assemblies, speed-up %.2f×)\n",
		sb.SweepMs, sb.SweepAssemblies, sb.Speedup)
	fmt.Fprintf(w, "bit-identical Req/Current: %v (max |ΔReq| %.3g Ω)\n",
		sb.BitIdentical, sb.MaxAbsDiffReq)
	if jsonPath == "" {
		return nil
	}
	if err := fsio.WriteFile(jsonPath, func(f io.Writer) error {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		return enc.Encode(sb)
	}); err != nil {
		return err
	}
	fmt.Fprintln(w, "JSON written to", jsonPath)
	return nil
}
