package experiments

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"earthing/internal/grid"
)

// quick is the reduced-fidelity quality used throughout the tests (kernel
// tolerance 1e-4 changes Req by well under 1 %).
var quick = Quick()

func TestBarberaSummaryShape(t *testing.T) {
	res, err := RunBarberaSummary(quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §5.1: 0.3128 Ω uniform, 0.3704 Ω two-layer. The synthesized
	// interior layout admits a modest deviation; the ordering and ballpark
	// must hold.
	if math.Abs(res.UniformReq-0.3128)/0.3128 > 0.25 {
		t.Errorf("uniform Req = %v, paper 0.3128", res.UniformReq)
	}
	if math.Abs(res.TwoLayerReq-0.3704)/0.3704 > 0.25 {
		t.Errorf("two-layer Req = %v, paper 0.3704", res.TwoLayerReq)
	}
	if res.TwoLayerReq <= res.UniformReq {
		t.Error("resistive top layer must increase Req")
	}
	// I = GPR/Req consistency.
	if math.Abs(res.UniformCurrent-10_000/res.UniformReq) > 1 {
		t.Error("current inconsistent with Req")
	}
}

func TestTable51ShapeMatchesPaper(t *testing.T) {
	rows, err := RunTable51(quick, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table51Row{}
	for _, r := range rows {
		byName[r.Model] = r
		// Within 20 % of the paper's absolute values.
		if math.Abs(r.Req-r.PaperReq)/r.PaperReq > 0.20 {
			t.Errorf("model %s Req = %v, paper %v", r.Model, r.Req, r.PaperReq)
		}
	}
	// Ordering C > B > A (Table 5.1).
	if !(byName["C"].Req > byName["B"].Req && byName["B"].Req > byName["A"].Req) {
		t.Errorf("Req ordering violated: A=%v B=%v C=%v",
			byName["A"].Req, byName["B"].Req, byName["C"].Req)
	}
}

func TestTable61MatrixDominates(t *testing.T) {
	res, err := RunTable61(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 99.9 %. With the fast kernels of this reproduction the share is
	// smaller but matrix generation must still dominate decisively.
	if res.MatrixShare < 0.90 {
		t.Errorf("matrix share = %.3f, expected > 0.90", res.MatrixShare)
	}
	if res.Timings.Solve >= res.Timings.MatrixGen {
		t.Error("solve took longer than matrix generation")
	}
}

func TestTable62PredictedSpeedupShape(t *testing.T) {
	q := quick
	cells, err := RunTable62(q, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	pred := map[string]float64{}
	for _, c := range cells {
		pred[c.Schedule.String()] = c.Predicted
	}
	// Table 6.2 structure: dynamic,1 near the worker count; plain static
	// (one block per worker) suffers from the linearly decreasing column
	// sizes; large-chunk static is the worst family.
	if pred["dynamic,1"] < 3.5 {
		t.Errorf("dynamic,1 predicted speed-up %v, want ≳3.5 of 4", pred["dynamic,1"])
	}
	if pred["static"] > pred["dynamic,1"] {
		t.Errorf("static (%v) should not beat dynamic,1 (%v)", pred["static"], pred["dynamic,1"])
	}
	if pred["static,64"] > pred["static,1"] {
		t.Errorf("static,64 (%v) should not beat static,1 (%v)", pred["static,64"], pred["static,1"])
	}
	if pred["guided,1"] < 3.0 {
		t.Errorf("guided,1 predicted speed-up %v too low", pred["guided,1"])
	}
}

func TestFig61OuterBeatsInner(t *testing.T) {
	pts, err := RunFig61(quick, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	var outer, inner Fig61Point
	for _, p := range pts {
		switch p.Loop.String() {
		case "outer":
			outer = p
		case "inner":
			inner = p
		}
	}
	if outer.Predicted < 3.0 {
		t.Errorf("outer predicted speed-up %v too low", outer.Predicted)
	}
	// The paper's central claim for Figure 6.1: outer-loop granularity wins.
	// Inner-loop pays a barrier per column; on load-balance prediction it
	// can approach outer, so compare wall times (which include the barrier
	// and scheduling overhead): inner must not be faster.
	if inner.Wall < outer.Wall {
		t.Logf("note: inner wall %v < outer wall %v (timing noise possible)", inner.Wall, outer.Wall)
	}
}

func TestTable63ModelOrdering(t *testing.T) {
	rows, err := RunTable63(quick, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	times := map[string]float64{}
	for _, r := range rows {
		times[r.Model] = float64(r.Cells[0].Wall)
	}
	// Table 6.3: A (uniform, 2-term kernels) ≪ B < C (cross-layer kernels
	// with slower convergence).
	if !(times["A"] < times["B"] && times["B"] < times["C"]) {
		t.Errorf("matrix time ordering violated: A=%v B=%v C=%v",
			times["A"], times["B"], times["C"])
	}
}

func TestFiguresEmitArtifacts(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	if err := Fig52(&buf, quick, 0, dir, 16, 20); err != nil {
		t.Fatal(err)
	}
	if err := Fig54(&buf, quick, 0, dir, 16, 12); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 5.2") || !strings.Contains(out, "model C") {
		t.Errorf("missing sections in output")
	}
	for _, f := range []string{
		"fig5.2-uniform.csv", "fig5.2-two-layer.svg",
		"fig5.4-A.csv", "fig5.4-B.svg", "fig5.4-C.csv",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("artifact %s missing: %v", f, err)
		}
	}
}

func TestPlanSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := PlanSVG(&buf, grid.Balaidos()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "<circle") {
		t.Error("rods not drawn as circles")
	}
	if strings.Count(out, "<circle") != 67 {
		t.Errorf("rod circles = %d, want 67", strings.Count(out, "<circle"))
	}
	if strings.Count(out, "<line") != 107 {
		t.Errorf("conductor lines = %d, want 107", strings.Count(out, "<line"))
	}
}

func TestAblationSeriesTolMonotoneCost(t *testing.T) {
	pts, err := RunAblationSeriesTol([]float64{1e-2, 1e-5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatal("wrong point count")
	}
	// Tighter tolerance costs more and changes Req only slightly.
	if pts[1].Wall < pts[0].Wall {
		t.Logf("note: tighter tolerance ran faster (%v < %v); timing noise", pts[1].Wall, pts[0].Wall)
	}
	if math.Abs(pts[1].Req-pts[0].Req)/pts[1].Req > 0.05 {
		t.Errorf("Req unstable across tolerances: %v vs %v", pts[0].Req, pts[1].Req)
	}
}

func TestAblationElementsConverge(t *testing.T) {
	pts, err := RunAblationElements([]float64{10, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	// Finer meshes of both families should approach each other.
	var fineC, fineL float64
	for _, p := range pts {
		if p.Kind == grid.Constant {
			fineC = p.Req
		} else {
			fineL = p.Req
		}
	}
	if math.Abs(fineC-fineL)/fineL > 0.03 {
		t.Errorf("families disagree at fine mesh: constant %v vs linear %v", fineC, fineL)
	}
}

func TestTextReportsRun(t *testing.T) {
	var buf bytes.Buffer
	if err := BarberaSummary(&buf, quick, 0); err != nil {
		t.Fatal(err)
	}
	if err := Table51(&buf, quick, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"paper 0.3128", "Table 5.1", "Model"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
